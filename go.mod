module pdspbench

go 1.22
