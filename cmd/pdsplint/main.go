// Command pdsplint is PDSP-Bench's static-analysis gate: a stdlib-only
// linter enforcing the invariants the benchmark's reproducibility
// depends on (deterministic simulation, tracked goroutines, lock and
// error discipline, a closed metric-name registry, layered imports).
//
// Usage:
//
//	pdsplint [-config pdsplint.json] [-rule name[,name]] [packages]
//	pdsplint -list
//
// Packages default to ./... relative to the enclosing module. The exit
// code is 0 when clean, 1 when findings were reported, 2 on load or
// usage errors. Findings print as file:line:col: rule: message; -json
// switches to a machine-readable report (findings plus load and
// per-analyzer timings) for gate artifacts, and -timings prints the
// per-analyzer wall-time table after a human-readable run.
// Suppress a finding with a preceding `//lint:ignore <rule> <reason>`
// comment; the reason is mandatory and stale ignores are findings too.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"pdspbench/internal/lint"
)

// jsonReport is the -json output schema, consumed by scripts/check.sh
// (lint_report.json) and any CI wanting structured results.
type jsonReport struct {
	Root      string             `json:"root"`
	Packages  int                `json:"packages"`
	Analyzers []string           `json:"analyzers"`
	Findings  []jsonFinding      `json:"findings"`
	TimingsMS map[string]float64 `json:"timings_ms"`
	LoadMS    float64            `json:"load_ms"`
	TotalMS   float64            `json:"total_ms"`
}

type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("pdsplint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	configPath := fs.String("config", "", "policy config file (default: pdsplint.json at the module root, if present)")
	list := fs.Bool("list", false, "list rules and exit")
	ruleFilter := fs.String("rule", "", "comma-separated rule names to run (default: all)")
	rootFlag := fs.String("root", "", "tree root to lint (default: the enclosing module root)")
	moduleFlag := fs.String("module", "", "module path of -root trees that carry no go.mod (e.g. lint fixtures)")
	jsonOut := fs.Bool("json", false, "emit a machine-readable JSON report (findings + timings) instead of text")
	timings := fs.Bool("timings", false, "print per-analyzer wall time after the findings")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			scope := "module-wide"
			if len(a.DefaultDirs) > 0 {
				scope = strings.Join(a.DefaultDirs, ", ")
			}
			fmt.Fprintf(stdout, "%-26s [%s]\n    %s\n", a.Name, scope, a.Doc)
		}
		return 0
	}

	root := *rootFlag
	if root == "" {
		var err error
		if root, err = findModuleRoot(); err != nil {
			fmt.Fprintln(stderr, "pdsplint:", err)
			return 2
		}
	} else if abs, err := filepath.Abs(root); err == nil {
		root = abs
	}
	cfg, err := resolveConfig(*configPath, root)
	if err != nil {
		fmt.Fprintln(stderr, "pdsplint:", err)
		return 2
	}
	analyzers := lint.Analyzers()
	if *ruleFilter != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*ruleFilter, ",") {
			a := lint.AnalyzerByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(stderr, "pdsplint: unknown rule %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	start := time.Now()
	loader := &lint.Loader{Root: root, ModulePath: *moduleFlag}
	pkgs, err := loader.Load(patterns...)
	loadTime := time.Since(start)
	if err != nil {
		fmt.Fprintln(stderr, "pdsplint:", err)
		return 2
	}
	if len(pkgs) == 0 {
		fmt.Fprintf(stderr, "pdsplint: no packages matched %s\n", strings.Join(patterns, " "))
		return 2
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(stderr, "pdsplint: warning: %s: %v\n", pkg.Path, terr)
		}
	}

	runner := &lint.Runner{Analyzers: analyzers, Config: cfg, ReportUnusedIgnores: *ruleFilter == ""}
	diags := runner.Run(pkgs)
	relFile := func(name string) string {
		if r, err := filepath.Rel(root, name); err == nil {
			return r
		}
		return name
	}

	if *jsonOut {
		report := jsonReport{
			Root:      root,
			Packages:  len(pkgs),
			Findings:  []jsonFinding{},
			TimingsMS: map[string]float64{},
			LoadMS:    roundMS(loadTime),
		}
		for _, a := range analyzers {
			report.Analyzers = append(report.Analyzers, a.Name)
		}
		for _, d := range diags {
			report.Findings = append(report.Findings, jsonFinding{
				File: relFile(d.Pos.Filename), Line: d.Pos.Line, Col: d.Pos.Column,
				Rule: d.Rule, Message: d.Message,
			})
		}
		for _, rt := range runner.Timings() {
			report.TimingsMS[rt.Rule] = roundMS(rt.Duration)
		}
		report.TotalMS = roundMS(time.Since(start))
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(stderr, "pdsplint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", relFile(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
		}
		if *timings {
			fmt.Fprintf(stdout, "load: %7.1fms  (%d packages)\n", roundMS(loadTime), len(pkgs))
			for _, rt := range runner.Timings() {
				fmt.Fprintf(stdout, "%-26s %7.1fms\n", rt.Rule, roundMS(rt.Duration))
			}
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "pdsplint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// roundMS renders a duration as milliseconds with 0.1ms resolution —
// coarse enough to diff gate artifacts without timing noise in every
// digit.
func roundMS(d time.Duration) float64 {
	return float64(d.Round(100*time.Microsecond)) / float64(time.Millisecond)
}

// resolveConfig loads -config, or the module root's pdsplint.json when
// present, or returns the built-in policy.
func resolveConfig(path, root string) (*lint.Config, error) {
	if path != "" {
		return lint.LoadConfig(path)
	}
	def := filepath.Join(root, "pdsplint.json")
	if _, err := os.Stat(def); err == nil {
		return lint.LoadConfig(def)
	}
	return nil, nil
}

// findModuleRoot walks up from the working directory to go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
