// Command pdspbench is the PDSP-Bench command-line interface: it lists
// the benchmark suite (Table 2), the parameter domain (Table 3) and the
// hardware catalogue (Table 4), runs individual workloads on either the
// real engine or the cluster simulator, regenerates every evaluation
// figure of the paper (Exp-1/2/3), builds ML training corpora, and
// serves the web API (the WUI substitute).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pdspbench/internal/apps"
	"pdspbench/internal/backend"
	"pdspbench/internal/chaos"
	"pdspbench/internal/cluster"
	"pdspbench/internal/controller"
	"pdspbench/internal/core"
	"pdspbench/internal/metrics"
	"pdspbench/internal/ml"
	"pdspbench/internal/mlmanager"
	"pdspbench/internal/queue"
	"pdspbench/internal/server"
	"pdspbench/internal/storage"
	"pdspbench/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// Ctrl-C / SIGTERM cancel the context, so an in-flight run, campaign
	// or server drains cleanly instead of dying mid-measurement; a second
	// signal kills the process the usual way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList()
	case "params":
		err = cmdParams()
	case "clusters":
		err = cmdClusters()
	case "run":
		err = cmdRun(ctx, os.Args[2:])
	case "exec":
		err = cmdExec(ctx, os.Args[2:])
	case "parity":
		err = cmdParity(ctx, os.Args[2:])
	case "exp1":
		err = cmdExp(ctx, 1, os.Args[2:])
	case "exp2":
		err = cmdExp(ctx, 2, os.Args[2:])
	case "exp3":
		err = cmdExp3(ctx, os.Args[2:])
	case "corpus":
		err = cmdCorpus(ctx, os.Args[2:])
	case "ablation":
		err = cmdAblation(ctx, os.Args[2:])
	case "bench":
		err = cmdBench(ctx, os.Args[2:])
	case "sut":
		err = cmdSUT(ctx, os.Args[2:])
	case "dot":
		err = cmdDot(os.Args[2:])
	case "serve":
		err = cmdServe(ctx, os.Args[2:])
	case "storm":
		err = cmdStorm(ctx, os.Args[2:])
	case "worker":
		err = cmdWorker(ctx, os.Args[2:])
	case "jobs":
		err = cmdJobs(ctx, os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "pdspbench: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdspbench:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Println(`pdspbench — benchmarking system for parallel and distributed stream processing

commands:
  list                       application suite (paper Table 2)
  params                     workload parameter domain (paper Table 3)
  clusters                   hardware catalogue (paper Table 4)
  run      [flags]           run one workload on a backend (--backend=sim|real)
  exec     [flags]           execute one application (--backend=real|sim)
  parity   [flags]           cross-backend parity harness (sim vs real)
  exp1     --set S           regenerate Figure 3 (S = synthetic | realworld)
  exp2     --set S           regenerate Figure 4 (S = synthetic | realworld)
  exp3     --part P          regenerate Figure 5 (P = models) or 6 (P = strategies)
  corpus   [flags]           build and store an ML training corpus
  ablation --part P          ablations (P = partitioning | autoscaler)
  bench    --spec F          run a declarative benchmark campaign (JSON spec)
  sut      [flags]           compare SUT profiles on identical workloads
  dot      [flags]           print a query plan in Graphviz DOT
  serve    [flags]           serve the HTTP API and job dispatcher (WUI substitute)
  storm    [flags]           load-harness: storm a dispatcher with mixed-tenant traffic
  worker   [flags]           run a campaign worker daemon against a dispatcher
  jobs     <sub> [flags]     manage the job queue (enqueue | list | workers)

run 'pdspbench <command> -h' for command flags; the HTTP surface is
documented in docs/API.md`)
}

func cmdList() error {
	fmt.Printf("%-6s %-20s %-24s %-4s %s\n", "code", "name", "area", "UDO", "description")
	for _, a := range apps.Registry {
		di := ""
		if a.DataIntensive {
			di = "yes"
		}
		fmt.Printf("%-6s %-20s %-24s %-4s %s\n", a.Code, a.Name, a.Area, di, a.Description)
	}
	fmt.Printf("\nsynthetic query structures (%d):\n", len(workload.Structures))
	for _, s := range workload.Structures {
		fmt.Printf("  %s\n", s)
	}
	return nil
}

func cmdParams() error {
	fmt.Println("workload parameter domain (paper Table 3):")
	fmt.Println("  parallelism degrees:   1 –", core.MaxDegree, " categories:", core.AllCategories)
	fmt.Println("  event rates (ev/s):   ", workload.EventRates)
	fmt.Println("  window duration (ms): ", workload.WindowDurationsMs)
	fmt.Println("  window length (tuple):", workload.WindowLengthsTuples)
	fmt.Println("  slide ratios:         ", workload.SlideRatios)
	fmt.Println("  tuple widths:          1 – 15 × {string, double, int}")
	fmt.Println("  window types/policies: tumbling, sliding × count, time")
	fmt.Println("  aggregate functions:   min, max, avg, mean, sum")
	fmt.Println("  partitioning:          forward, rebalance, hashing")
	fmt.Println("  distributions:        ", workload.Distributions)
	fmt.Println("  parallelism strategies:", strings.Join(workload.StrategyNames, ", "))
	return nil
}

func cmdClusters() error {
	fmt.Printf("%-12s %-6s %-7s %-10s %-34s %-6s %-8s %s\n",
		"node", "cores", "RAM_GB", "storage_GB", "processor", "GHz", "net_Gbps", "rel_speed")
	for _, name := range []string{"m510", "c6525_25g", "c6320"} {
		nt := cluster.Catalogue[name]
		fmt.Printf("%-12s %-6d %-7d %-10d %-34s %-6.1f %-8.0f %.2f\n",
			nt.Name, nt.Cores, nt.RAMGB, nt.StorageGB, nt.Processor, nt.ClockGHz, nt.NetGbps, nt.Speed())
	}
	return nil
}

func clusterByName(c *controller.Controller, name string) (*cluster.Cluster, error) {
	switch name {
	case "m510", "":
		return c.Homogeneous(), nil
	case "c6525_25g":
		return c.HeteroEpyc(), nil
	case "c6320":
		return c.HeteroHaswell(), nil
	case "mixed":
		return c.Mixed(), nil
	default:
		return nil, fmt.Errorf("unknown cluster %q (m510, c6525_25g, c6320, mixed)", name)
	}
}

// backendByName wires the named backend into the controller; the sim
// backend inherits the controller's fidelity and cost configuration.
func backendByName(c *controller.Controller, name string) error {
	if name == "" || name == "sim" {
		return nil // controller default
	}
	b, err := backend.ByName(name)
	if err != nil {
		return err
	}
	c.Backend = b
	return nil
}

// parseDisorder parses the --disorder argument "kind:maxSkewMs"
// (e.g. "bounded:50", "zipfburst:20"); empty means in-order sources.
func parseDisorder(arg string) (*core.DisorderSpec, error) {
	if arg == "" {
		return nil, nil
	}
	kind, skewStr, ok := strings.Cut(arg, ":")
	if !ok {
		return nil, fmt.Errorf("--disorder wants kind:maxSkewMs (e.g. bounded:50), got %q", arg)
	}
	skew, err := strconv.ParseInt(skewStr, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("--disorder skew %q: %v", skewStr, err)
	}
	d := &core.DisorderSpec{Kind: kind, MaxSkewMs: skew}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

func cmdRun(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	app := fs.String("app", "", "application code (e.g. SG); mutually exclusive with --structure")
	structure := fs.String("structure", "", "synthetic structure (e.g. 3-way-join)")
	rate := fs.Float64("rate", 500_000, "source event rate (events/s)")
	par := fs.Int("parallelism", 8, "uniform parallelism degree")
	clusterName := fs.String("cluster", "m510", "cluster: m510, c6525_25g, c6320, mixed")
	backendName := fs.String("backend", "sim", "execution backend: sim | real")
	tuples := fs.Int("tuples", backend.DefaultTuplesPerSource, "tuples per source instance (real backend)")
	fast := fs.Bool("fast", false, "reduced simulation fidelity")
	faults := fs.String("faults", "", "fault plan: 'kind:key=val,...;...' spec or @file.json (see internal/chaos)")
	columnar := fs.Bool("columnar", false, "columnar data plane on the real engine: struct-of-arrays batches + vectorized filter kernels (requires --backend=real)")
	disorder := fs.String("disorder", "", "event-time disorder on every source: kind:maxSkewMs (bounded:50 shuffles within the skew, zipfburst:50 adds a heavy Zipf delay tail)")
	lateness := fs.Int64("lateness", 0, "allowed lateness in ms: windows delay firing by this much watermark progress and drop (and count) tuples later still")
	fs.Parse(args)

	c := controller.New()
	if *fast {
		c = controller.Fast()
	}
	c.EventRate = *rate
	if err := backendByName(c, *backendName); err != nil {
		return err
	}
	if *columnar {
		r, ok := c.Backend.(*backend.Real)
		if !ok {
			return fmt.Errorf("--columnar requires --backend=real (the simulator has no data plane to vectorize)")
		}
		r.Opts.Columnar = true
	}
	cl, err := clusterByName(c, *clusterName)
	if err != nil {
		return err
	}
	var plan *core.PQP
	spec := backend.RunSpec{TuplesPerSource: *tuples, AllowedLatenessMs: *lateness}
	if *faults != "" {
		fp, err := chaos.FromArg(*faults)
		if err != nil {
			return err
		}
		spec.Faults = fp
	}
	dspec, err := parseDisorder(*disorder)
	if err != nil {
		return err
	}
	switch {
	case *app != "":
		a, err := apps.ByCode(*app)
		if err != nil {
			return err
		}
		plan = a.Build(*rate)
		plan.SetUniformParallelism(*par)
		spec.App = a
	case *structure != "":
		s, err := workload.ParseStructure(*structure)
		if err != nil {
			return err
		}
		plan, err = c.SyntheticPlan(s, *par)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("one of --app or --structure is required")
	}
	if dspec != nil {
		for _, src := range plan.Sources() {
			d := *dspec
			src.Source.Disorder = &d
		}
	}
	fmt.Println(plan)
	rec, err := c.MeasureSpec(ctx, plan, cl, spec)
	if err != nil {
		return err
	}
	fmt.Print(metrics.Table([]metrics.RunRecord{*rec}))
	if dspec != nil || spec.AllowedLatenessMs > 0 {
		fmt.Printf("event time: late drops=%d (lateness=%dms)\n", rec.LateDrops, spec.AllowedLatenessMs)
	}
	if c.BackendName() == "sim" {
		// Decompose the mean latency so the user sees where time is spent
		// (attribution only the simulator can make).
		b, err := c.ExplainSim(ctx, plan, cl)
		if err != nil {
			return err
		}
		fmt.Printf("mean latency breakdown: queue=%.1fms service=%.1fms network=%.1fms window=%.1fms other=%.1fms\n",
			b.QueueWait*1000, b.Service*1000, b.Network*1000, b.Window*1000, b.Other*1000)
	}
	return nil
}

func cmdExec(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("exec", flag.ExitOnError)
	app := fs.String("app", "WC", "application code")
	tuples := fs.Int("tuples", backend.DefaultTuplesPerSource, "tuples per source instance")
	par := fs.Int("parallelism", 2, "uniform parallelism degree")
	seed := fs.Int64("seed", 42, "generator seed")
	rate := fs.Float64("rate", backend.DefaultEventRate, "source event rate the plan is built at (events/s)")
	runs := fs.Int("runs", 1, "repetitions (reported record averages over them)")
	backendName := fs.String("backend", "real", "execution backend: real | sim")
	out := fs.String("out", "pdspbench-data", "store directory for the run record (empty to skip)")
	faults := fs.String("faults", "", "fault plan: 'kind:key=val,...;...' spec or @file.json (see internal/chaos)")
	columnar := fs.Bool("columnar", false, "columnar data plane on the real engine: struct-of-arrays batches + vectorized filter kernels (requires --backend=real)")
	disorder := fs.String("disorder", "", "event-time disorder on every source: kind:maxSkewMs (bounded:50 shuffles within the skew, zipfburst:50 adds a heavy Zipf delay tail)")
	lateness := fs.Int64("lateness", 0, "allowed lateness in ms: windows delay firing by this much watermark progress and drop (and count) tuples later still")
	fs.Parse(args)

	a, err := apps.ByCode(*app)
	if err != nil {
		return err
	}
	dspec, err := parseDisorder(*disorder)
	if err != nil {
		return err
	}
	var faultPlan *chaos.Plan
	if *faults != "" {
		if faultPlan, err = chaos.FromArg(*faults); err != nil {
			return err
		}
	}
	b, err := backend.ByName(*backendName)
	if err != nil {
		return err
	}
	if *columnar {
		r, ok := b.(*backend.Real)
		if !ok {
			return fmt.Errorf("--columnar requires --backend=real (the simulator has no data plane to vectorize)")
		}
		r.Opts.Columnar = true
	}
	c := controller.Fast()
	if *out != "" {
		st, err := storage.Open(*out)
		if err != nil {
			return err
		}
		c.Store = st
	}
	rec, err := c.Execute(ctx, b, a, *par, backend.RunSpec{
		Runs:              *runs,
		Seed:              *seed,
		EventRate:         *rate,
		TuplesPerSource:   *tuples,
		Faults:            faultPlan,
		Disorder:          dspec,
		AllowedLatenessMs: *lateness,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%s on the %s backend: in=%d out=%d elapsed=%.3fs\n",
		a.Code, rec.Backend, rec.TuplesIn, rec.TuplesOut, rec.ElapsedSec)
	fmt.Printf("  latency p50=%.3fms p95=%.3fms p99=%.3fms  throughput=%.0f tuples/s\n",
		rec.LatencyP50*1000, rec.LatencyP95*1000, rec.LatencyP99*1000, rec.Throughput)
	if dspec != nil || *lateness > 0 || rec.LateDrops > 0 {
		fmt.Printf("  event time: late drops=%d (lateness=%dms)\n", rec.LateDrops, *lateness)
	}
	if *out != "" {
		fmt.Printf("  record %s stored in %s\n", rec.ID, *out)
	}
	return nil
}

func cmdParity(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("parity", flag.ExitOnError)
	nodes := fs.Int("nodes", 4, "modelled cluster size")
	faults := fs.Bool("faults", false, "also run the fault-injection parity cases")
	fs.Parse(args)

	cases, err := backend.DefaultParityCases()
	if err != nil {
		return err
	}
	if *faults {
		fc, err := backend.FaultParityCases()
		if err != nil {
			return err
		}
		cases = append(cases, fc...)
	}
	var backends []backend.Backend
	for _, name := range backend.Names() {
		b, err := backend.ByName(name)
		if err != nil {
			return err
		}
		backends = append(backends, b)
	}
	cl := cluster.NewHomogeneous("m510", cluster.M510, *nodes)
	results, err := backend.Parity(ctx, backends, cl, cases)
	if err != nil {
		return err
	}
	fmt.Print(backend.FormatParity(results))
	for _, r := range results {
		if !r.OK() {
			return fmt.Errorf("parity violated in case %s", r.Case)
		}
	}
	return nil
}

func cmdExp(ctx context.Context, n int, args []string) error {
	fs := flag.NewFlagSet(fmt.Sprintf("exp%d", n), flag.ExitOnError)
	set := fs.String("set", "synthetic", "workload set: synthetic | realworld")
	fast := fs.Bool("fast", true, "reduced simulation fidelity")
	fs.Parse(args)

	c := controller.New()
	if *fast {
		c = controller.Fast()
	}
	var fig *metrics.Figure
	var err error
	switch {
	case n == 1 && *set == "synthetic":
		fig, err = c.Exp1Synthetic(ctx, nil, nil)
	case n == 1 && *set == "realworld":
		fig, err = c.Exp1RealWorld(ctx, nil, nil)
	case n == 2 && *set == "synthetic":
		fig, err = c.Exp2Synthetic(ctx, nil, nil)
	case n == 2 && *set == "realworld":
		fig, err = c.Exp2RealWorld(ctx, nil)
	default:
		return fmt.Errorf("unknown set %q", *set)
	}
	if err != nil {
		return err
	}
	fmt.Print(fig.Render())
	return nil
}

func cmdExp3(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("exp3", flag.ExitOnError)
	part := fs.String("part", "models", "models (Figure 5) | strategies (Figure 6)")
	queries := fs.Int("queries", 500, "corpus size for --part models")
	fs.Parse(args)

	c := controller.Fast()
	opts := ml.TrainOptions{MaxEpochs: 200, Patience: 15, LearningRate: 3e-3}
	switch *part {
	case "models":
		corpus, err := c.BuildCorpus(ctx, "random", workload.Structures, *queries, c.Homogeneous(), c.Seed)
		if err != nil {
			return err
		}
		fmt.Printf("corpus: %d labeled queries in %s\n\n", corpus.Dataset.Len(), corpus.BuildTime.Round(time.Second))
		fig, evs, err := c.Exp3Models(corpus.Dataset, opts)
		if err != nil {
			return err
		}
		fmt.Print(mlmanager.FormatEvaluations(evs))
		fmt.Println()
		fmt.Print(fig.Render())
	case "strategies":
		curves, err := c.Exp3Strategies(ctx, nil, 0, opts)
		if err != nil {
			return err
		}
		fmt.Print(curves.Fig6a.Render())
		fmt.Println()
		fmt.Print(curves.Fig6b.Render())
	default:
		return fmt.Errorf("unknown part %q", *part)
	}
	return nil
}

func cmdCorpus(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("corpus", flag.ExitOnError)
	strategy := fs.String("strategy", "rule-based", "parallelism enumeration strategy")
	n := fs.Int("n", 100, "number of labeled queries")
	out := fs.String("out", "pdspbench-data", "store directory")
	seed := fs.Int64("seed", 1, "enumeration seed")
	fs.Parse(args)

	c := controller.Fast()
	corpus, err := c.BuildCorpus(ctx, *strategy, nil, *n, c.Homogeneous(), *seed)
	if err != nil {
		return err
	}
	st, err := storage.Open(*out)
	if err != nil {
		return err
	}
	for _, e := range corpus.Dataset.Examples {
		if err := st.Append("corpus", e); err != nil {
			return err
		}
	}
	fmt.Printf("stored %d labeled queries (strategy=%s) in %s (%s)\n",
		corpus.Dataset.Len(), *strategy, *out, corpus.BuildTime.Round(time.Millisecond))
	return nil
}

func cmdAblation(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("ablation", flag.ExitOnError)
	part := fs.String("part", "partitioning", "partitioning | autoscaler")
	fs.Parse(args)

	c := controller.Fast()
	switch *part {
	case "partitioning":
		fig, err := c.ExpPartitioning(ctx, 8)
		if err != nil {
			return err
		}
		fmt.Print(fig.Render())
	case "autoscaler":
		fig, err := c.ExpAutoscaler(ctx, workload.StructTwoWayJoin)
		if err != nil {
			return err
		}
		fmt.Print(fig.Render())
	default:
		return fmt.Errorf("unknown ablation part %q", *part)
	}
	return nil
}

func cmdBench(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	specPath := fs.String("spec", "", "path to a JSON campaign spec")
	out := fs.String("out", "", "optional store directory for run records")
	fast := fs.Bool("fast", true, "reduced simulation fidelity")
	fs.Parse(args)
	if *specPath == "" {
		return fmt.Errorf("--spec is required (see examples/campaign.json)")
	}
	data, err := os.ReadFile(*specPath)
	if err != nil {
		return err
	}
	spec, err := controller.ParseSpec(data)
	if err != nil {
		return err
	}
	c := controller.New()
	if *fast {
		c = controller.Fast()
	}
	if *out != "" {
		st, err := storage.Open(*out)
		if err != nil {
			return err
		}
		c.Store = st
	}
	records, err := c.RunSpec(ctx, spec)
	if err != nil {
		return err
	}
	fmt.Printf("campaign %q: %d measurements\n", spec.Name, len(records))
	fmt.Print(metrics.Table(records))
	return nil
}

func cmdSUT(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("sut", flag.ExitOnError)
	par := fs.Int("parallelism", 64, "uniform parallelism degree")
	fs.Parse(args)
	c := controller.Fast()
	fig, err := c.ExpSUTComparison(ctx, nil, *par)
	if err != nil {
		return err
	}
	fmt.Print(fig.Render())
	return nil
}

func cmdDot(args []string) error {
	fs := flag.NewFlagSet("dot", flag.ExitOnError)
	app := fs.String("app", "", "application code")
	structure := fs.String("structure", "", "synthetic structure")
	par := fs.Int("parallelism", 4, "uniform parallelism degree")
	fs.Parse(args)

	c := controller.Fast()
	switch {
	case *app != "":
		a, err := apps.ByCode(*app)
		if err != nil {
			return err
		}
		plan := a.Build(c.EventRate)
		plan.SetUniformParallelism(*par)
		fmt.Print(plan.DOT())
	case *structure != "":
		s, err := workload.ParseStructure(*structure)
		if err != nil {
			return err
		}
		plan, err := c.SyntheticPlan(s, *par)
		if err != nil {
			return err
		}
		fmt.Print(plan.DOT())
	default:
		return fmt.Errorf("one of --app or --structure is required")
	}
	return nil
}

// cmdWorker runs the fleet daemon half of the distributed campaign
// fabric: register with a dispatcher, lease jobs, execute, report.
func cmdWorker(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	url := fs.String("url", "http://127.0.0.1:8080", "dispatcher base URL")
	name := fs.String("name", "worker", "worker name shown in listings")
	capacity := fs.Int("capacity", 1, "advertised concurrent-lease capacity")
	backends := fs.String("backends", "", "comma-separated backends this worker accepts (empty = any)")
	once := fs.Bool("once", false, "exit once the queue is drained")
	poll := fs.Duration("poll", 500*time.Millisecond, "idle wait between lease attempts")
	fast := fs.Bool("fast", true, "reduced simulation fidelity")
	fs.Parse(args)

	w := &queue.Worker{
		Client:   queue.NewClient(*url),
		Name:     *name,
		Capacity: *capacity,
		Backends: queue.ParseBackends(*backends),
		Poll:     *poll,
		Once:     *once,
		Execute:  queue.RunCampaign(*fast),
		Logf: func(format string, a ...any) {
			fmt.Printf(format+"\n", a...)
		},
	}
	err := w.Run(ctx)
	if errors.Is(err, context.Canceled) {
		return nil // Ctrl-C is a clean daemon stop, not a failure
	}
	return err
}

// cmdJobs is the operator view onto the dispatcher's queue.
func cmdJobs(ctx context.Context, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("jobs needs a subcommand: enqueue | list | workers")
	}
	sub, rest := args[0], args[1:]
	fs := flag.NewFlagSet("jobs "+sub, flag.ExitOnError)
	url := fs.String("url", "http://127.0.0.1:8080", "dispatcher base URL")
	switch sub {
	case "enqueue":
		specPath := fs.String("spec", "", "path to a JSON campaign spec")
		split := fs.Bool("split", false, "shard the campaign into one job per measurement point")
		maxAttempts := fs.Int("max-attempts", 0, "retry budget per job (0 = dispatcher default)")
		fs.Parse(rest)
		if *specPath == "" {
			return fmt.Errorf("--spec is required (see examples/campaign.json)")
		}
		data, err := os.ReadFile(*specPath)
		if err != nil {
			return err
		}
		spec, err := controller.ParseSpec(data)
		if err != nil {
			return err
		}
		jobs, err := queue.NewClient(*url).Enqueue(ctx, *spec, *split, *maxAttempts)
		if err != nil {
			return err
		}
		fmt.Printf("enqueued %d job(s) for campaign %q:\n", len(jobs), spec.Name)
		for _, j := range jobs {
			fmt.Printf("  %-12s %s\n", j.ID, j.Campaign.Name)
		}
		return nil
	case "list":
		status := fs.String("status", "", "filter: pending | leased | completed | failed")
		fs.Parse(rest)
		jobs, err := queue.NewClient(*url).Jobs(ctx, queue.Status(*status))
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %-10s %-8s %-8s %-8s %s\n", "id", "status", "attempt", "worker", "records", "campaign")
		for _, j := range jobs {
			fmt.Printf("%-12s %-10s %d/%-6d %-8s %-8d %s\n",
				j.ID, j.Status, j.Attempts, j.MaxAttempts, j.Worker, j.Records, j.Campaign.Name)
		}
		return nil
	case "workers":
		fs.Parse(rest)
		workers, err := queue.NewClient(*url).Workers(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("%-6s %-12s %-9s %-7s %s\n", "id", "name", "capacity", "leased", "backends")
		for _, w := range workers {
			b := strings.Join(w.Backends, ",")
			if b == "" {
				b = "any"
			}
			fmt.Printf("%-6s %-12s %-9d %-7d %s\n", w.ID, w.Name, w.Capacity, w.Leased, b)
		}
		return nil
	default:
		return fmt.Errorf("unknown jobs subcommand %q (enqueue, list, workers)", sub)
	}
}

func cmdServe(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	data := fs.String("data", "pdspbench-data", "store directory")
	fs.Parse(args)

	st, err := storage.Open(*data)
	if err != nil {
		return err
	}
	srv, err := server.New(st)
	if err != nil {
		return err
	}
	fmt.Printf("serving PDSP-Bench API on http://%s (store: %s)\n", *addr, *data)
	return srv.ListenAndServe(ctx, *addr)
}
