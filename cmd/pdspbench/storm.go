package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"pdspbench/internal/controller"
	"pdspbench/internal/server"
	"pdspbench/internal/storage"
	"pdspbench/internal/storm"
)

// cmdStorm implements `pdspbench storm`: the load harness that drives
// the serving front door to saturation with mixed-tenant open-loop
// traffic and records the outcome as a BENCH_<n>.json entry (sustained
// req/s, latency quantiles, 429/shed counts, per-tenant fairness).
//
// With --url it storms a live dispatcher; without, it self-hosts an
// httptest server over a throwaway store with sim fidelity shrunk so
// scripted runs finish in milliseconds — the same rig the overload test
// suite and the storm_smoke CI stage use.
func cmdStorm(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("storm", flag.ExitOnError)
	url := fs.String("url", "", "dispatcher base URL; empty self-hosts an httptest server")
	seed := fs.Int64("seed", 1, "arrival-schedule seed (same seed, same schedule)")
	duration := fs.Duration("duration", 5*time.Second, "storm duration")
	tenants := fs.String("tenants", "alpha,beta,gamma", "comma-separated tenant names")
	clients := fs.Int("clients", 4, "concurrent open-loop generators per tenant")
	rate := fs.Float64("rate", 20, "arrival rate per generator (req/s)")
	maxReq := fs.Int("max", 0, "cap on total requests (0 = schedule-bounded)")
	structure := fs.String("structure", "linear", "scripted run: synthetic structure")
	par := fs.Int("parallelism", 2, "scripted run: parallelism degree")
	disorderArg := fs.String("disorder", "", "scripted run: source disorder kind:maxSkewMs (e.g. bounded:50)")
	lateness := fs.Int64("lateness", 0, "scripted run: allowed event-time lateness in ms")
	sync := fs.Bool("sync", false, "submit runs synchronously instead of async+SSE")
	workers := fs.Int("workers", 4, "self-hosted: worker-pool width")
	tenantRate := fs.Float64("tenant-rate", 30, "self-hosted: per-tenant admission rate (req/s)")
	out := fs.String("out", "", "report file; empty picks the next free BENCH_<n>.json, '-' prints to stdout only")
	smoke := fs.Bool("smoke", false, "gate mode: exit nonzero on any unexplained 5xx/transport error or unfair tenant service")
	fairTol := fs.Float64("fair-tol", 0.25, "smoke mode: max allowed per-tenant OK spread (relative deviation from the mean)")
	fs.Parse(args)

	dspec, err := parseDisorder(*disorderArg)
	if err != nil {
		return err
	}
	body, err := json.Marshal(server.RunRequest{
		Structure:         *structure,
		Parallelism:       *par,
		Backend:           "sim",
		Disorder:          dspec,
		AllowedLatenessMs: *lateness,
		Async:             !*sync,
	})
	if err != nil {
		return err
	}

	base := *url
	if base == "" {
		dir, err := os.MkdirTemp("", "pdspbench-storm-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		st, err := storage.Open(dir)
		if err != nil {
			return err
		}
		srv, err := server.New(st,
			server.WithServing(server.ServingConfig{
				Admission: server.AdmissionConfig{
					PerTenant: server.TenantQuota{RatePerSec: *tenantRate, Burst: *tenantRate},
					Global:    server.TenantQuota{RatePerSec: 3 * *tenantRate, Burst: 3 * *tenantRate},
				},
				Workers: *workers,
			}),
			server.WithControllerTuning(func(c *controller.Controller) {
				c.Cfg.Duration = 2
				c.Cfg.SourceBatches = 20
				c.Runs = 1
			}),
		)
		if err != nil {
			return err
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		defer srv.Close()
		base = ts.URL
		fmt.Printf("storm: self-hosted dispatcher at %s (workers=%d, tenant quota %.0f req/s)\n",
			base, *workers, *tenantRate)
	}

	var scripts []storm.ClientScript
	for _, name := range strings.Split(*tenants, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		scripts = append(scripts, storm.ClientScript{
			Tenant:     name,
			Clients:    *clients,
			RatePerSec: *rate,
			Body:       body,
		})
	}

	fmt.Printf("storm: %d tenants × %d clients × %.0f req/s for %s (seed %d)\n",
		len(scripts), *clients, *rate, *duration, *seed)
	rep, err := storm.Run(ctx, storm.Config{
		BaseURL:     base,
		Seed:        *seed,
		Duration:    *duration,
		Scripts:     scripts,
		MaxRequests: *maxReq,
	})
	if err != nil {
		return err
	}

	fmt.Printf("storm: %d requests in %.1fs — %.1f req/s sustained, p50 %.1fms, p99 %.1fms\n",
		rep.Requests, rep.DurationS, rep.SustainedReqPerS, rep.P50LatencyMS, rep.P99LatencyMS)
	fmt.Printf("storm: %d ok, %d rejected (429), %d shed (503), %d other 4xx, %d other 5xx, %d transport\n",
		rep.OK, rep.Rejected429, rep.Shed503, rep.Other4xx, rep.Other5xx, rep.Transport)
	if rep.Serving != nil {
		fmt.Printf("storm: server admission wait p50 %.1fms p99 %.1fms; %d admitted, %d completed\n",
			rep.Serving.AdmissionP50MS, rep.Serving.AdmissionP99MS, rep.Serving.Admitted, rep.Serving.Completed)
	}
	for name, tr := range rep.Tenants {
		fmt.Printf("storm:   tenant %-10s %4d req  %4d ok  %4d 429  %4d 503  p99 %.1fms\n",
			name, tr.Requests, tr.OK, tr.Rejected429, tr.Shed503, tr.P99MS)
	}

	// Smoke gate (the storm_smoke CI stage): 429s and 503s are the front
	// door doing its job; anything else server-side is a defect, and so
	// is uneven service across equal-quota tenants.
	if *smoke {
		if rep.Other5xx > 0 || rep.Transport > 0 {
			return fmt.Errorf("storm smoke: %d unexplained 5xx, %d transport errors", rep.Other5xx, rep.Transport)
		}
		oks := make([]float64, 0, len(rep.Tenants))
		for _, tr := range rep.Tenants {
			oks = append(oks, float64(tr.OK))
		}
		sp := storm.Spread(oks)
		if sp > *fairTol {
			return fmt.Errorf("storm smoke: per-tenant OK spread %.2f exceeds %.2f (%v)", sp, *fairTol, oks)
		}
		fmt.Printf("storm smoke: gates passed (no unexplained 5xx; OK spread %.2f ≤ %.2f)\n", sp, *fairTol)
	}

	if *out == "-" {
		return nil
	}
	path := *out
	if path == "" {
		path = nextBenchFile()
	}
	return writeStormReport(path, rep)
}

// nextBenchFile picks the next free BENCH_<n>.json, matching the
// numbering scripts/bench.sh uses for engine benchmarks — the storm
// report joins the same recorded performance trajectory. Its entry has
// no tuples_per_s field, so bench.sh --compare skips over it.
func nextBenchFile() string {
	for n := 1; ; n++ {
		path := fmt.Sprintf("BENCH_%d.json", n)
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path
		}
	}
}

// writeStormReport records the report with the BENCH-file envelope.
func writeStormReport(path string, rep *storm.Report) error {
	envelope := map[string]any{
		"recorded": time.Now().UTC().Format(time.RFC3339),
		"storm":    rep,
	}
	data, err := json.MarshalIndent(envelope, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("storm: report written to %s\n", path)
	return nil
}
