// Ad analytics end to end: runs the paper's Figure 2 (right) application
// — impression and click streams filtered, joined per ad over a sliding
// window, and aggregated to campaign CTRs by a stateful UDO — on the
// real engine, printing live CTR results, and then demonstrates the
// application's parallelism paradox (observation O2/O3) on the cluster
// simulator.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"pdspbench/internal/apps"
	"pdspbench/internal/cluster"
	"pdspbench/internal/core"
	"pdspbench/internal/engine"
	"pdspbench/internal/simengine"
	"pdspbench/internal/tuple"
)

func main() {
	app, err := apps.ByCode("AD")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s — %s\n%s\n\n", app.Code, app.Name, app.Description)

	// Real execution with a tap printing a few campaign CTRs.
	plan := app.Build(100_000)
	plan.SetUniformParallelism(2)
	var mu sync.Mutex
	printed := 0
	rt, err := engine.New(plan, engine.Options{
		Sources: app.Sources(7, 20_000),
		UDOs:    app.UDOs(),
		SinkTap: func(op string, t *tuple.Tuple) {
			mu.Lock()
			defer mu.Unlock()
			if printed < 8 {
				fmt.Printf("  campaign %2d: CTR %.3f\n", t.At(0).I, t.At(1).D)
				printed++
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := rt.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreal engine: %d impressions+clicks in, %d CTR updates out, p50=%.2fms\n",
		rep.TuplesIn, rep.TuplesOut, rep.LatencyP50*1000)

	// The parallelism paradox: AD's CTR UDO must coordinate state across
	// every instance, so beyond a threshold more parallelism hurts.
	fmt.Println("\nparallelism sweep on simulated 5×m510 at 500k events/s:")
	cl := cluster.NewHomogeneous("m510", cluster.M510, 5)
	cfg := simengine.Defaults()
	cfg.Duration = 12
	cfg.SourceBatches = 96
	for _, cat := range core.AllCategories {
		variant := app.Build(500_000)
		variant.SetUniformParallelism(cat.Degree())
		pl, err := cluster.Place(variant, cl, cluster.PlaceRoundRobin)
		if err != nil {
			log.Fatal(err)
		}
		res, err := simengine.Simulate(variant, pl, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-3s (degree %3d): p50=%9.1fms\n", cat, cat.Degree(), res.LatencyP50*1000)
	}
	fmt.Println("\nnote the U-shape: latency falls with parallelism, then the state-")
	fmt.Println("coordination overhead dominates past degree 128 (paper O2/O3).")
}
