// Ad analytics end to end: runs the paper's Figure 2 (right) application
// — impression and click streams filtered, joined per ad over a sliding
// window, and aggregated to campaign CTRs by a stateful UDO — on the
// real backend, printing live CTR results, and then demonstrates the
// application's parallelism paradox (observation O2/O3) on the sim
// backend. Both executions share the Backend run protocol.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"pdspbench/internal/apps"
	"pdspbench/internal/backend"
	"pdspbench/internal/cluster"
	"pdspbench/internal/core"
	"pdspbench/internal/tuple"
)

func main() {
	app, err := apps.ByCode("AD")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s — %s\n%s\n\n", app.Code, app.Name, app.Description)

	// Real execution with a tap printing a few campaign CTRs.
	ctx := context.Background()
	plan := app.Build(100_000)
	plan.SetUniformParallelism(2)
	cl := cluster.NewHomogeneous("m510", cluster.M510, 5)
	var mu sync.Mutex
	printed := 0
	real := &backend.Real{}
	rec, err := real.Run(ctx, plan, cl, backend.RunSpec{
		Seed:            7,
		TuplesPerSource: 20_000,
		App:             app,
		SinkTap: func(op string, t *tuple.Tuple) {
			mu.Lock()
			defer mu.Unlock()
			if printed < 8 {
				fmt.Printf("  campaign %2d: CTR %.3f\n", t.At(0).I, t.At(1).D)
				printed++
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreal engine: %d impressions+clicks in, %d CTR updates out, p50=%.2fms\n",
		rec.TuplesIn, rec.TuplesOut, rec.LatencyP50*1000)

	// The parallelism paradox: AD's CTR UDO must coordinate state across
	// every instance, so beyond a threshold more parallelism hurts.
	fmt.Println("\nparallelism sweep on simulated 5×m510 at 500k events/s:")
	cfg := backend.SimDefaults()
	cfg.Duration = 12
	cfg.SourceBatches = 96
	sim := &backend.Sim{Cfg: cfg}
	for _, cat := range core.AllCategories {
		variant := app.Build(500_000)
		variant.SetUniformParallelism(cat.Degree())
		res, err := sim.Run(ctx, variant, cl, backend.RunSpec{Runs: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-3s (degree %3d): p50=%9.1fms\n", cat, cat.Degree(), res.LatencyP50*1000)
	}
	fmt.Println("\nnote the U-shape: latency falls with parallelism, then the state-")
	fmt.Println("coordination overhead dominates past degree 128 (paper O2/O3).")
}
