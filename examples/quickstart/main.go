// Quickstart: build a parallel query plan, execute it for real on the
// in-process engine, then deploy the same plan on a modelled CloudLab
// cluster with the simulator and compare parallelism degrees — the
// minimal end-to-end tour of PDSP-Bench. Both executions go through the
// same Backend interface: swap the backend, keep the protocol.
package main

import (
	"context"
	"fmt"
	"log"

	"pdspbench/internal/backend"
	"pdspbench/internal/cluster"
	"pdspbench/internal/core"
	"pdspbench/internal/tuple"
	"pdspbench/internal/workload"
)

func main() {
	// 1. A parallel query plan from the synthetic suite: two sources,
	//    filters, and a sliding-window join (the paper's Figure 2, left).
	params := workload.Params{
		EventRate:  100_000,
		TupleWidth: 4,
		FieldTypes: []tuple.Type{tuple.TypeInt, tuple.TypeDouble, tuple.TypeDouble, tuple.TypeString},
		Window: core.WindowSpec{
			Type: core.WindowSliding, Policy: core.PolicyTime, LengthMs: 1000, SlideRatio: 0.5,
		},
		AggFn:        core.AggSum,
		FilterFn:     core.FilterLess,
		Selectivity:  0.5,
		Partition:    core.PartitionRebalance,
		Distribution: "poisson",
	}
	plan, err := workload.Build(workload.StructTwoWayJoin, params)
	if err != nil {
		log.Fatal(err)
	}
	plan.SetUniformParallelism(4)
	fmt.Println("plan:", plan)

	ctx := context.Background()
	cl := cluster.NewHomogeneous("m510", cluster.M510, 5)

	// 2. Execute it for real: goroutine operator instances, channel
	//    links, hash-partitioned join — 20k tuples per source, with the
	//    generators synthesized from the plan's schemas.
	real, err := backend.ByName("real")
	if err != nil {
		log.Fatal(err)
	}
	rec, err := real.Run(ctx, plan, cl, backend.RunSpec{TuplesPerSource: 20_000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("real engine: in=%d out=%d p50=%.2fms throughput=%.0f tuples/s\n",
		rec.TuplesIn, rec.TuplesOut, rec.LatencyP50*1000, rec.Throughput)

	// 3. Deploy the same plan on the modelled 5-node m510 CloudLab
	//    cluster and sweep parallelism categories with the sim backend.
	cfg := backend.SimDefaults()
	cfg.Duration = 12
	cfg.SourceBatches = 96
	sim := &backend.Sim{Cfg: cfg}
	fmt.Println("\nsimulated deployment on", cl)
	for _, cat := range []core.ParallelismCategory{core.CatXS, core.CatS, core.CatM, core.CatL} {
		variant := plan.Clone()
		variant.SetUniformParallelism(cat.Degree())
		res, err := sim.Run(ctx, variant, cl, backend.RunSpec{Runs: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  parallelism %-3s (degree %3d): p50=%8.2fms throughput=%8.0f ev/s saturated=%v\n",
			cat, cat.Degree(), res.LatencyP50*1000, res.Throughput, res.Saturated)
	}
}
