// Quickstart: build a parallel query plan, execute it for real on the
// in-process engine, then deploy the same plan on a modelled CloudLab
// cluster with the simulator and compare parallelism degrees — the
// minimal end-to-end tour of PDSP-Bench.
package main

import (
	"context"
	"fmt"
	"log"

	"pdspbench/internal/cluster"
	"pdspbench/internal/core"
	"pdspbench/internal/engine"
	"pdspbench/internal/simengine"
	"pdspbench/internal/stream"
	"pdspbench/internal/tuple"
	"pdspbench/internal/workload"
)

func main() {
	// 1. A parallel query plan from the synthetic suite: two sources,
	//    filters, and a sliding-window join (the paper's Figure 2, left).
	params := workload.Params{
		EventRate:  100_000,
		TupleWidth: 4,
		FieldTypes: []tuple.Type{tuple.TypeInt, tuple.TypeDouble, tuple.TypeDouble, tuple.TypeString},
		Window: core.WindowSpec{
			Type: core.WindowSliding, Policy: core.PolicyTime, LengthMs: 1000, SlideRatio: 0.5,
		},
		AggFn:        core.AggSum,
		FilterFn:     core.FilterLess,
		Selectivity:  0.5,
		Partition:    core.PartitionRebalance,
		Distribution: "poisson",
	}
	plan, err := workload.Build(workload.StructTwoWayJoin, params)
	if err != nil {
		log.Fatal(err)
	}
	plan.SetUniformParallelism(4)
	fmt.Println("plan:", plan)

	// 2. Execute it for real: goroutine operator instances, channel
	//    links, hash-partitioned join — 20k tuples per source.
	schema := plan.Sources()[0].Source.Schema
	rt, err := engine.New(plan, engine.Options{
		Sources: map[string]engine.SourceFactory{
			"src1": func(idx int) engine.SourceGenerator {
				return stream.NewSynthetic(schema, 1, 20_000, params.EventRate, "poisson")
			},
			"src2": func(idx int) engine.SourceGenerator {
				return stream.NewSynthetic(schema, 2, 20_000, params.EventRate, "poisson")
			},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := rt.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("real engine: in=%d out=%d p50=%.2fms throughput=%.0f tuples/s\n",
		rep.TuplesIn, rep.TuplesOut, rep.LatencyP50*1000, rep.Throughput)

	// 3. Deploy the same plan on a modelled 5-node m510 CloudLab cluster
	//    and sweep parallelism categories with the simulator.
	cl := cluster.NewHomogeneous("m510", cluster.M510, 5)
	cfg := simengine.Defaults()
	cfg.Duration = 12
	cfg.SourceBatches = 96
	fmt.Println("\nsimulated deployment on", cl)
	for _, cat := range []core.ParallelismCategory{core.CatXS, core.CatS, core.CatM, core.CatL} {
		variant := plan.Clone()
		variant.SetUniformParallelism(cat.Degree())
		placement, err := cluster.Place(variant, cl, cluster.PlaceRoundRobin)
		if err != nil {
			log.Fatal(err)
		}
		res, err := simengine.Simulate(variant, placement, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  parallelism %-3s (degree %3d): p50=%8.2fms throughput=%8.0f ev/s saturated=%v\n",
			cat, cat.Degree(), res.LatencyP50*1000, res.Throughput, res.Saturated)
	}
}
