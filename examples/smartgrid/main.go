// Smart grid monitoring (DEBS 2014 Grand Challenge): per-plug load
// smoothing, sliding per-house averages, and global-median outlier
// detection — executed on the real backend with outlier households
// printed live, then compared across homogeneous and heterogeneous
// CloudLab clusters on the sim backend (the paper's Exp-2 for one
// application). Both executions share the Backend run protocol.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"pdspbench/internal/apps"
	"pdspbench/internal/backend"
	"pdspbench/internal/cluster"
	"pdspbench/internal/tuple"
)

func main() {
	app, err := apps.ByCode("SG")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s — %s\n%s\n\n", app.Code, app.Name, app.Description)

	ctx := context.Background()
	plan := app.Build(100_000)
	plan.SetUniformParallelism(2)
	var mu sync.Mutex
	flagged := map[int64]bool{}
	real := &backend.Real{}
	m510 := cluster.NewHomogeneous("m510", cluster.M510, 5)
	rec, err := real.Run(ctx, plan, m510, backend.RunSpec{
		Seed:            11,
		TuplesPerSource: 30_000,
		App:             app,
		SinkTap: func(op string, t *tuple.Tuple) {
			mu.Lock()
			defer mu.Unlock()
			house := t.At(0).I
			if !flagged[house] {
				flagged[house] = true
				fmt.Printf("  outlier house %2d: windowed load %.1f W\n", house, t.At(1).D)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreal engine: %d plug readings, %d outlier alerts, p50=%.2fms\n",
		rec.TuplesIn, rec.TuplesOut, rec.LatencyP50*1000)

	// Hardware comparison: SG is data-intensive, so per-core speed and
	// core counts matter once the load approaches saturation.
	fmt.Println("\nhardware sweep at 500k events/s (degree = node cores, as in Fig. 4):")
	cfg := backend.SimDefaults()
	cfg.Duration = 12
	cfg.SourceBatches = 96
	sim := &backend.Sim{Cfg: cfg}
	clusters := []*cluster.Cluster{
		m510,
		cluster.NewHomogeneous("c6525_25g", cluster.C6525_25G, 5),
		cluster.NewHomogeneous("c6320", cluster.C6320, 5),
		cluster.NewHeterogeneous("mixed", []cluster.NodeType{cluster.C6525_25G, cluster.C6320}, 5),
	}
	for _, cl := range clusters {
		degree := cl.Nodes[0].Type.Cores
		for _, n := range cl.Nodes[1:] {
			if n.Type.Cores < degree {
				degree = n.Type.Cores
			}
		}
		variant := app.Build(500_000)
		variant.SetUniformParallelism(degree)
		res, err := sim.Run(ctx, variant, cl, backend.RunSpec{Runs: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s (degree %2d): p50=%8.1fms throughput=%8.0f ev/s\n",
			cl.Name, degree, res.LatencyP50*1000, res.Throughput)
	}
}
