// Heterogeneous deployment study: sweeps the six parallelism enumeration
// strategies of Section 3.1 over one query structure on homogeneous and
// heterogeneous clusters, showing how each strategy sizes operators and
// what that costs — the workload-generator features behind the paper's
// Exp-2 and Exp-3(2).
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"pdspbench/internal/cluster"
	"pdspbench/internal/controller"
	"pdspbench/internal/workload"
)

func main() {
	c := controller.Fast()
	plan, err := c.SyntheticPlan(workload.StructTwoWayJoin, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("base structure:", plan)

	clusters := []*cluster.Cluster{
		c.Homogeneous(), // 5 × m510 (8 cores, Xeon D)
		c.Mixed(),       // c6525_25g ⨯ c6320 interleaved
	}
	for _, cl := range clusters {
		fmt.Printf("\n=== %s (total %d cores, heterogeneous=%v) ===\n",
			cl.Name, cl.TotalCores(), cl.IsHeterogeneous())
		fmt.Printf("%-16s %-44s %10s %8s\n", "strategy", "degrees (topological order)", "p50(ms)", "sat")
		for _, name := range workload.StrategyNames {
			strat, err := workload.StrategyByName(name, rand.New(rand.NewSource(4)))
			if err != nil {
				log.Fatal(err)
			}
			if pb, ok := strat.(*workload.ParameterBasedStrategy); ok {
				pb.Uniform = 8 // the user's rapid-testing input
			}
			variant := strat.Enumerate(plan, cl, 1)[0]
			rec, err := c.Measure(context.Background(), variant, cl)
			if err != nil {
				log.Fatal(err)
			}
			order, _ := variant.TopoOrder()
			degrees := ""
			for _, id := range order {
				op := variant.Op(id)
				if op.Kind.String() == "source" || op.Kind.String() == "sink" {
					continue
				}
				degrees += fmt.Sprintf("%s=%d ", id, op.Parallelism)
			}
			sat := ""
			if rec.Saturated {
				sat = "SAT"
			}
			fmt.Printf("%-16s %-44s %10.1f %8s\n", name, degrees, rec.LatencyP50*1000, sat)
		}
	}
	fmt.Println("\nrule-based sizes operators from propagated rates and available cores;")
	fmt.Println("random roams the whole degree space (useful for corpus diversity, wasteful")
	fmt.Println("for deployment) — the trade-off behind the paper's O9.")
}
