// Learned cost models: builds a labeled workload corpus with the
// benchmark (domain-randomized queries executed on the cluster
// simulator), trains all four cost-model architectures through the ML
// Manager under identical conditions, and predicts the latency of a
// brand-new query — the paper's Exp-3 workflow in miniature.
package main

import (
	"context"
	"fmt"
	"log"

	"pdspbench/internal/controller"
	"pdspbench/internal/ml"
	"pdspbench/internal/ml/feature"
	"pdspbench/internal/ml/gnn"
	"pdspbench/internal/mlmanager"
	"pdspbench/internal/workload"
)

func main() {
	c := controller.Fast()
	c.Cfg.Duration = 6
	c.Cfg.SourceBatches = 48

	// 1. Generate and label a corpus: 240 random queries over all nine
	//    synthetic structures, degrees assigned by the random strategy,
	//    each executed on a simulated 5×m510 cluster.
	fmt.Println("building labeled corpus (240 queries)...")
	corpus, err := c.BuildCorpus(context.Background(), "random", workload.Structures, 240, c.Homogeneous(), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected in %s\n\n", corpus.BuildTime.Round(1e7))

	// 2. Fair comparison: same corpus, same split, same early stopping.
	opts := ml.TrainOptions{MaxEpochs: 120, Patience: 12, LearningRate: 3e-3}
	mgr := mlmanager.New(opts)
	evs, err := mgr.Compare(mlmanager.DefaultModels(), corpus.Dataset)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(mlmanager.FormatEvaluations(evs))

	// 3. Train a fresh GNN on everything and predict an unseen plan.
	train, val, _ := corpus.Dataset.Split(0.85, 0.15, 3)
	model := gnn.New()
	if _, err := model.Train(train, val, opts); err != nil {
		log.Fatal(err)
	}
	cl := c.Homogeneous()
	plan, err := c.SyntheticPlan(workload.StructThreeJoin, 16)
	if err != nil {
		log.Fatal(err)
	}
	pred := model.Predict(ml.Example{Graph: feature.EncodeGraph(plan, cl)})
	rec, err := c.Measure(context.Background(), plan, cl)
	if err != nil {
		log.Fatal(err)
	}
	q := pred / rec.LatencyP50
	if q < 1 {
		q = 1 / q
	}
	fmt.Printf("\nnew query %s\n", plan)
	fmt.Printf("GNN predicted p50 %.1fms, simulator measured %.1fms (q-error %.2f)\n",
		pred*1000, rec.LatencyP50*1000, q)
}
