package workload

import (
	"fmt"
	"math/rand"

	"pdspbench/internal/core"
	"pdspbench/internal/stats"
	"pdspbench/internal/stream"
	"pdspbench/internal/tuple"
)

// Table 3's evaluation parameter domain. The enumerator draws uniformly
// (domain randomization, Section 3.1) from these ranges.
var (
	// EventRates in events/second.
	EventRates = []float64{10, 100, 1_000, 5_000, 10_000, 50_000, 100_000, 200_000, 500_000, 1_000_000, 2_000_000, 4_000_000}
	// WindowDurationsMs for time-policy windows.
	WindowDurationsMs = []int64{250, 500, 1000, 1500, 2000, 3000}
	// WindowLengthsTuples for count-policy windows.
	WindowLengthsTuples = []int{100, 250, 500, 750, 1000}
	// SlideRatios for sliding windows.
	SlideRatios = []float64{0.3, 0.4, 0.5, 0.6, 0.7}
	// TupleWidths (number of data items per tuple).
	TupleWidths = rangeInts(1, 15)
	// Partitions available for data distribution.
	Partitions = []core.PartitionStrategy{core.PartitionForward, core.PartitionRebalance, core.PartitionHash}
	// Distributions of the arrival process.
	Distributions = []string{"poisson", "zipf"}
)

func rangeInts(lo, hi int) []int {
	out := make([]int, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		out = append(out, i)
	}
	return out
}

// The synthetic field value model lives in internal/stream (the data
// side of the workload generator); selectivity estimation below inverts
// exactly that model, which is how the workload generator guarantees
// "queries with only valid literals ... where 0 < selectivity < 1".
const (
	IntFieldMax    = stream.IntFieldMax
	VocabularySize = stream.VocabularySize
)

// Params is one enumerated workload configuration for a synthetic
// structure.
type Params struct {
	EventRate    float64                `json:"event_rate"`
	TupleWidth   int                    `json:"tuple_width"`
	FieldTypes   []tuple.Type           `json:"field_types"` // len == TupleWidth
	Window       core.WindowSpec        `json:"window"`
	AggFn        core.AggFn             `json:"agg_fn"`
	FilterFn     core.FilterFn          `json:"filter_fn"`
	Selectivity  float64                `json:"selectivity"` // target filter selectivity in (0,1)
	Partition    core.PartitionStrategy `json:"partition"`
	Distribution string                 `json:"distribution"`
	// Disorder, when set, applies event-time disorder to every source of
	// the structure (bounded skew or bursty Zipf delay — see
	// core.DisorderSpec). Nil keeps sources in order.
	Disorder *core.DisorderSpec `json:"disorder,omitempty"`
}

// Validate rejects parameter combinations outside the Table 3 domain.
func (p Params) Validate() error {
	if p.EventRate <= 0 {
		return fmt.Errorf("workload: event rate must be positive, got %g", p.EventRate)
	}
	if p.TupleWidth < 1 || p.TupleWidth > 15 {
		return fmt.Errorf("workload: tuple width %d outside [1,15]", p.TupleWidth)
	}
	if len(p.FieldTypes) != p.TupleWidth {
		return fmt.Errorf("workload: %d field types for width %d", len(p.FieldTypes), p.TupleWidth)
	}
	if err := p.Window.Validate(); err != nil {
		return err
	}
	if p.Selectivity <= 0 || p.Selectivity >= 1 {
		return fmt.Errorf("workload: selectivity %g outside (0,1)", p.Selectivity)
	}
	if p.Disorder != nil {
		if err := p.Disorder.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// schema materializes the tuple schema: field 0 is always an int key so
// hash partitioning and equi-joins are well defined, the remaining
// fields follow FieldTypes.
func (p Params) schema() *tuple.Schema {
	fields := make([]tuple.Field, p.TupleWidth)
	fields[0] = tuple.Field{Name: "f0", Type: tuple.TypeInt}
	for i := 1; i < p.TupleWidth; i++ {
		fields[i] = tuple.Field{Name: fmt.Sprintf("f%d", i), Type: p.FieldTypes[i]}
	}
	return tuple.NewSchema(fields...)
}

// sourceSpec materializes one source operator's spec, cloning the
// disorder so plans never alias the Params value.
func (p Params) sourceSpec(schema *tuple.Schema) *core.SourceSpec {
	s := &core.SourceSpec{Schema: schema, EventRate: p.EventRate, Distribution: p.Distribution}
	if p.Disorder != nil {
		d := *p.Disorder
		s.Disorder = &d
	}
	return s
}

// filterSpec derives the filter literal achieving the target selectivity
// under the synthetic value model (selectivity estimation, Section 3.1).
func (p Params) filterSpec(schema *tuple.Schema) *core.FilterSpec {
	// Filter on the first numeric field (field 0 is always int).
	field := 0
	for i, f := range schema.Fields {
		if f.Type == tuple.TypeInt || f.Type == tuple.TypeDouble {
			field = i
			break
		}
	}
	lit := LiteralForSelectivity(schema.Fields[field].Type, p.FilterFn, p.Selectivity)
	return &core.FilterSpec{Field: field, Fn: p.FilterFn, Literal: lit, Selectivity: p.Selectivity}
}

func (p Params) aggField(schema *tuple.Schema) int {
	for i, f := range schema.Fields {
		if f.Type == tuple.TypeDouble {
			return i
		}
	}
	return 0
}

func (p Params) keyField(schema *tuple.Schema) int { return 0 }

// LiteralForSelectivity inverts the synthetic value model: it returns
// the literal for which the given comparison passes the target fraction
// of uniformly distributed values. Equality comparisons fall back to a
// representative mid-domain literal (their exact selectivity under the
// uniform model is 1/domain and is recorded by the caller).
func LiteralForSelectivity(t tuple.Type, fn core.FilterFn, sel float64) tuple.Value {
	frac := sel
	switch fn {
	case core.FilterLess, core.FilterLessEq:
		// value < lit passes when lit sits at quantile sel.
	case core.FilterGreater, core.FilterGreaterEq:
		frac = 1 - sel
	case core.FilterEq, core.FilterNotEq, core.FilterStartsWith, core.FilterContains:
		frac = 0.5
	}
	switch t {
	case tuple.TypeInt:
		return tuple.Int(int64(frac * IntFieldMax))
	case tuple.TypeDouble:
		return tuple.Double(frac)
	default:
		// Strings: vocabulary word at the chosen quantile; the vocabulary
		// is lexicographically ordered (w000…w099) so range comparisons
		// keep their meaning.
		return tuple.String(stream.Word(int(frac * VocabularySize)))
	}
}

// EstimateSelectivity computes the pass fraction of a filter under the
// synthetic uniform value model — the estimator the generator uses to
// reject literal choices that would make data "never pass the generated
// filter".
func EstimateSelectivity(t tuple.Type, fn core.FilterFn, lit tuple.Value) float64 {
	var q float64 // quantile of the literal within the value domain
	switch t {
	case tuple.TypeInt:
		q = float64(lit.I) / IntFieldMax
	case tuple.TypeDouble:
		q = lit.D
	case tuple.TypeString:
		var idx int
		if _, err := fmt.Sscanf(lit.S, "w%03d", &idx); err == nil {
			q = float64(idx) / VocabularySize
		} else {
			q = 0.5
		}
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	switch fn {
	case core.FilterLess, core.FilterLessEq:
		return q
	case core.FilterGreater, core.FilterGreaterEq:
		return 1 - q
	case core.FilterEq:
		if t == tuple.TypeDouble {
			return 1e-6
		}
		return 1.0 / IntFieldMax
	case core.FilterNotEq:
		if t == tuple.TypeDouble {
			return 1 - 1e-6
		}
		return 1 - 1.0/IntFieldMax
	case core.FilterStartsWith, core.FilterContains:
		return 1.0 / VocabularySize
	default:
		return 0.5
	}
}

// Enumerator draws random, valid workload parameters from the Table 3
// domain (domain randomization for ML corpus generation).
type Enumerator struct {
	rng *rand.Rand
	// MaxEventRate caps drawn event rates; corpus generation uses this to
	// stay within a simulation budget while figure experiments pin rates
	// explicitly.
	MaxEventRate float64
}

// NewEnumerator creates an enumerator with the given seed.
func NewEnumerator(seed int64) *Enumerator {
	return &Enumerator{rng: rand.New(rand.NewSource(seed))}
}

// Rand exposes the enumerator's RNG for strategies that need randomness
// coherent with the enumeration stream.
func (e *Enumerator) Rand() *rand.Rand { return e.rng }

// RandomParams draws one parameter combination. The filter function is
// restricted to range comparisons so that the selectivity inversion is
// exact, matching the paper's use of selectivity estimation to generate
// only valid literals.
func (e *Enumerator) RandomParams() Params {
	width := stats.Choice(e.rng, TupleWidths)
	types := make([]tuple.Type, width)
	for i := range types {
		types[i] = stats.Choice(e.rng, tuple.AllTypes)
	}
	rates := EventRates
	if e.MaxEventRate > 0 {
		rates = nil
		for _, r := range EventRates {
			if r <= e.MaxEventRate {
				rates = append(rates, r)
			}
		}
		if len(rates) == 0 {
			rates = EventRates[:1]
		}
	}
	w := core.WindowSpec{}
	if e.rng.Intn(2) == 0 {
		w.Type = core.WindowTumbling
	} else {
		w.Type = core.WindowSliding
		w.SlideRatio = stats.Choice(e.rng, SlideRatios)
	}
	if e.rng.Intn(2) == 0 {
		w.Policy = core.PolicyTime
		w.LengthMs = stats.Choice(e.rng, WindowDurationsMs)
	} else {
		w.Policy = core.PolicyCount
		w.LengthTups = stats.Choice(e.rng, WindowLengthsTuples)
	}
	rangeFns := []core.FilterFn{core.FilterLess, core.FilterLessEq, core.FilterGreater, core.FilterGreaterEq}
	return Params{
		EventRate:    stats.Choice(e.rng, rates),
		TupleWidth:   width,
		FieldTypes:   types,
		Window:       w,
		AggFn:        stats.Choice(e.rng, core.AllAggFns),
		FilterFn:     stats.Choice(e.rng, rangeFns),
		Selectivity:  0.1 + 0.8*e.rng.Float64(), // strictly inside (0,1)
		Partition:    stats.Choice(e.rng, []core.PartitionStrategy{core.PartitionRebalance, core.PartitionHash}),
		Distribution: stats.Choice(e.rng, Distributions),
	}
}

// RandomStructure draws one of the nine synthetic structures.
func (e *Enumerator) RandomStructure() Structure {
	return stats.Choice(e.rng, Structures)
}

// RandomPlan draws a structure and parameters and builds the plan.
func (e *Enumerator) RandomPlan() (*core.PQP, error) {
	return Build(e.RandomStructure(), e.RandomParams())
}
