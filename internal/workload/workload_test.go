package workload

import (
	"math"
	"math/rand"
	"testing"

	"pdspbench/internal/cluster"
	"pdspbench/internal/core"
	"pdspbench/internal/stream"
	"pdspbench/internal/tuple"
)

func validParams() Params {
	return Params{
		EventRate:  100_000,
		TupleWidth: 4,
		FieldTypes: []tuple.Type{tuple.TypeInt, tuple.TypeDouble, tuple.TypeDouble, tuple.TypeString},
		Window:     core.WindowSpec{Type: core.WindowSliding, Policy: core.PolicyTime, LengthMs: 1000, SlideRatio: 0.5},
		AggFn:      core.AggSum, FilterFn: core.FilterLess, Selectivity: 0.4,
		Partition: core.PartitionRebalance, Distribution: "poisson",
	}
}

func TestAllNineStructuresBuildValidPlans(t *testing.T) {
	if len(Structures) != 9 {
		t.Fatalf("Structures = %d, want 9 (Table 2 synthetic queries)", len(Structures))
	}
	for _, s := range Structures {
		plan, err := Build(s, validParams())
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if err := plan.Validate(); err != nil {
			t.Errorf("%s: invalid plan: %v", s, err)
		}
	}
}

func TestJoinStructuresHaveExpectedShape(t *testing.T) {
	cases := []struct {
		s     Structure
		joins int
		srcs  int
	}{
		{StructLinear, 0, 1},
		{StructTwoFilter, 0, 1},
		{StructFourFilter, 0, 1},
		{StructTwoWayJoin, 1, 2},
		{StructThreeJoin, 2, 3},
		{StructSixJoin, 5, 6},
	}
	for _, c := range cases {
		plan, err := Build(c.s, validParams())
		if err != nil {
			t.Fatal(err)
		}
		if got := plan.CountKind(core.OpJoin); got != c.joins {
			t.Errorf("%s: %d joins, want %d", c.s, got, c.joins)
		}
		if got := len(plan.Sources()); got != c.srcs {
			t.Errorf("%s: %d sources, want %d", c.s, got, c.srcs)
		}
	}
}

func TestFilterChainLengths(t *testing.T) {
	cases := map[Structure]int{
		StructLinear: 1, StructTwoFilter: 2, StructThreeFilter: 3, StructFourFilter: 4,
	}
	for s, want := range cases {
		plan, err := Build(s, validParams())
		if err != nil {
			t.Fatal(err)
		}
		if got := plan.CountKind(core.OpFilter); got != want {
			t.Errorf("%s: %d filters, want %d", s, got, want)
		}
	}
}

func TestParseStructure(t *testing.T) {
	s, err := ParseStructure("3-way-join")
	if err != nil || s != StructThreeJoin {
		t.Errorf("ParseStructure = %v, %v", s, err)
	}
	if _, err := ParseStructure("7-way-join"); err == nil {
		t.Error("unknown structure accepted")
	}
}

func TestParamsValidation(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.EventRate = 0 },
		func(p *Params) { p.TupleWidth = 0 },
		func(p *Params) { p.TupleWidth = 16 },
		func(p *Params) { p.FieldTypes = p.FieldTypes[:2] },
		func(p *Params) { p.Selectivity = 0 },
		func(p *Params) { p.Selectivity = 1 },
		func(p *Params) { p.Window.LengthMs = 0 },
	}
	for i, mutate := range bad {
		p := validParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
	if err := validParams().Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestLiteralForSelectivityInverts(t *testing.T) {
	// The literal chosen for a target selectivity must estimate back to
	// (approximately) that selectivity — the generator's guarantee that
	// "queries with only valid literals are generated where 0<sel<1".
	for _, typ := range []tuple.Type{tuple.TypeInt, tuple.TypeDouble, tuple.TypeString} {
		for _, fn := range []core.FilterFn{core.FilterLess, core.FilterGreaterEq} {
			for _, sel := range []float64{0.1, 0.4, 0.75} {
				lit := LiteralForSelectivity(typ, fn, sel)
				got := EstimateSelectivity(typ, fn, lit)
				tol := 0.02
				if typ == tuple.TypeInt || typ == tuple.TypeString {
					tol = 0.03 // quantization of discrete domains
				}
				if math.Abs(got-sel) > tol {
					t.Errorf("%v %v sel=%v: literal %v estimates to %v", typ, fn, sel, lit, got)
				}
			}
		}
	}
}

func TestEstimateSelectivityEquality(t *testing.T) {
	if got := EstimateSelectivity(tuple.TypeInt, core.FilterEq, tuple.Int(500)); got != 1.0/IntFieldMax {
		t.Errorf("Eq selectivity = %v", got)
	}
	if got := EstimateSelectivity(tuple.TypeString, core.FilterContains, tuple.String("w001")); got != 1.0/VocabularySize {
		t.Errorf("Contains selectivity = %v", got)
	}
	ne := EstimateSelectivity(tuple.TypeDouble, core.FilterNotEq, tuple.Double(0.5))
	if ne < 0.99 {
		t.Errorf("NotEq selectivity = %v, want ≈1", ne)
	}
}

func TestGeneratedFiltersActuallyPassData(t *testing.T) {
	// End-to-end check of the selectivity machinery: generate data under
	// the synthetic value model, apply the generated filter, and compare
	// the empirical pass rate with the target.
	enum := NewEnumerator(5)
	for trial := 0; trial < 20; trial++ {
		p := enum.RandomParams()
		schema := p.schema()
		spec := p.filterSpec(schema)
		gen := stream.NewSynthetic(schema, int64(trial), 4000, 1000, "poisson")
		var pass, total float64
		for {
			tup, ok := gen.Next()
			if !ok {
				break
			}
			total++
			if spec.Fn.Eval(tup.At(spec.Field), spec.Literal) {
				pass++
			}
		}
		got := pass / total
		if got == 0 || got == 1 {
			t.Errorf("trial %d: filter %v %v passes %v of data — degenerate", trial, spec.Fn, spec.Literal, got)
		}
		if math.Abs(got-spec.Selectivity) > 0.12 {
			t.Errorf("trial %d: empirical selectivity %v vs target %v", trial, got, spec.Selectivity)
		}
	}
}

func TestRandomParamsStayInTable3Domain(t *testing.T) {
	enum := NewEnumerator(9)
	for i := 0; i < 200; i++ {
		p := enum.RandomParams()
		if err := p.Validate(); err != nil {
			t.Fatalf("draw %d invalid: %v", i, err)
		}
		if p.Selectivity <= 0 || p.Selectivity >= 1 {
			t.Fatalf("selectivity %v out of (0,1)", p.Selectivity)
		}
		found := false
		for _, r := range EventRates {
			if p.EventRate == r {
				found = true
			}
		}
		if !found {
			t.Fatalf("event rate %v not in Table 3 domain", p.EventRate)
		}
	}
}

func TestEnumeratorEventRateCap(t *testing.T) {
	enum := NewEnumerator(2)
	enum.MaxEventRate = 100_000
	for i := 0; i < 100; i++ {
		if r := enum.RandomParams().EventRate; r > 100_000 {
			t.Fatalf("rate %v exceeds cap", r)
		}
	}
}

func TestRandomPlanBuildsValid(t *testing.T) {
	enum := NewEnumerator(4)
	for i := 0; i < 30; i++ {
		plan, err := enum.RandomPlan()
		if err != nil {
			t.Fatalf("draw %d: %v", i, err)
		}
		if err := plan.Validate(); err != nil {
			t.Fatalf("draw %d invalid: %v", i, err)
		}
	}
}

// --- parallelism strategies -------------------------------------------------

func strategyCluster() *cluster.Cluster {
	return cluster.NewHomogeneous("ho", cluster.M510, 5) // 40 cores
}

func basePlan(t *testing.T) *core.PQP {
	t.Helper()
	plan, err := Build(StructTwoWayJoin, validParams())
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestStrategyByNameCoversAllSix(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if len(StrategyNames) != 6 {
		t.Fatalf("StrategyNames = %d, want 6 (Section 3.1)", len(StrategyNames))
	}
	for _, name := range StrategyNames {
		s, err := StrategyByName(name, rng)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("strategy %q reports name %q", name, s.Name())
		}
	}
	if _, err := StrategyByName("oracle", rng); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestEveryStrategyProducesValidVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cl := strategyCluster()
	for _, name := range StrategyNames {
		s, _ := StrategyByName(name, rng)
		variants := s.Enumerate(basePlan(t), cl, 5)
		if len(variants) == 0 {
			t.Fatalf("%s produced no variants", name)
		}
		for i, v := range variants {
			if err := v.Validate(); err != nil {
				t.Errorf("%s variant %d invalid: %v", name, i, err)
			}
			for _, op := range v.Operators {
				if op.Kind == core.OpSource || op.Kind == core.OpSink {
					continue
				}
				if op.Parallelism < 1 || op.Parallelism > cl.TotalCores() {
					t.Errorf("%s variant %d: degree %d outside [1, %d]", name, i, op.Parallelism, cl.TotalCores())
				}
			}
		}
	}
}

func TestStrategiesDoNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	plan := basePlan(t)
	before := plan.String()
	for _, name := range StrategyNames {
		s, _ := StrategyByName(name, rng)
		s.Enumerate(plan, strategyCluster(), 3)
	}
	if plan.String() != before {
		t.Error("a strategy mutated the input plan")
	}
}

func TestRandomStrategyVaries(t *testing.T) {
	s := &RandomStrategy{Rng: rand.New(rand.NewSource(4))}
	variants := s.Enumerate(basePlan(t), strategyCluster(), 10)
	degrees := map[int]bool{}
	for _, v := range variants {
		degrees[v.Op("join1").Parallelism] = true
	}
	if len(degrees) < 3 {
		t.Errorf("random strategy produced only %d distinct join degrees in 10 variants", len(degrees))
	}
}

func TestRuleBasedRespectsDownstreamMonotonicity(t *testing.T) {
	// "selecting higher parallelism degrees for downstream operators is
	// less meaningful": degrees must not increase along the dataflow.
	s := &RuleBasedStrategy{Rng: rand.New(rand.NewSource(5))}
	for _, v := range s.Enumerate(basePlan(t), strategyCluster(), 8) {
		order, _ := v.TopoOrder()
		prev := 1 << 30
		for _, id := range order {
			op := v.Op(id)
			if op.Kind == core.OpSource || op.Kind == core.OpSink {
				continue
			}
			if op.Parallelism > prev {
				t.Fatalf("degree increases downstream: %s", v)
			}
			prev = op.Parallelism
		}
	}
}

func TestRuleBasedScalesWithEventRate(t *testing.T) {
	// Higher input rates need more instances: the computed degree of the
	// first filter must grow with the source rate.
	s := &RuleBasedStrategy{}
	cl := strategyCluster()
	low := validParams()
	low.EventRate = 1_000
	high := validParams()
	high.EventRate = 4_000_000
	lowPlan, _ := Build(StructLinear, low)
	highPlan, _ := Build(StructLinear, high)
	dLow := s.Enumerate(lowPlan, cl, 1)[0].Op("filter1").Parallelism
	dHigh := s.Enumerate(highPlan, cl, 1)[0].Op("filter1").Parallelism
	if dHigh <= dLow {
		t.Errorf("rule-based degree did not scale with rate: %d (1k ev/s) vs %d (4M ev/s)", dLow, dHigh)
	}
}

func TestExhaustiveCoversAllCombinations(t *testing.T) {
	s := &ExhaustiveStrategy{Degrees: []int{1, 2}}
	plan, _ := Build(StructLinear, validParams()) // 2 processing ops: filter, agg
	variants := s.Enumerate(plan, strategyCluster(), 100)
	if len(variants) != 4 {
		t.Fatalf("exhaustive over 2 ops × 2 degrees = %d variants, want 4", len(variants))
	}
	seen := map[[2]int]bool{}
	for _, v := range variants {
		seen[[2]int{v.Op("filter1").Parallelism, v.Op("agg").Parallelism}] = true
	}
	if len(seen) != 4 {
		t.Errorf("exhaustive produced duplicates: %v", seen)
	}
}

func TestExhaustiveTruncatesAtCount(t *testing.T) {
	s := &ExhaustiveStrategy{Degrees: []int{1, 2, 4, 8}}
	variants := s.Enumerate(basePlan(t), strategyCluster(), 7)
	if len(variants) != 7 {
		t.Errorf("exhaustive returned %d variants, want truncation at 7", len(variants))
	}
}

func TestMinAvgMaxCycles(t *testing.T) {
	s := &MinAvgMaxStrategy{}
	cl := strategyCluster() // 40 cores
	variants := s.Enumerate(basePlan(t), cl, 6)
	wantDegrees := []int{1, (1 + 40) / 2, 40, 1, (1 + 40) / 2, 40}
	for i, v := range variants {
		if got := v.Op("join1").Parallelism; got != wantDegrees[i] {
			t.Errorf("variant %d degree %d, want %d", i, got, wantDegrees[i])
		}
	}
}

func TestIncreasingStepsUp(t *testing.T) {
	s := &IncreasingStrategy{}
	variants := s.Enumerate(basePlan(t), strategyCluster(), 4)
	prev := 0
	for i, v := range variants {
		d := v.Op("filter1").Parallelism
		if d <= prev {
			t.Errorf("variant %d degree %d not increasing (prev %d)", i, d, prev)
		}
		prev = d
	}
	// Within one variant, deeper operators get at most the upstream degree.
	last := variants[len(variants)-1]
	if last.Op("join1").Parallelism > last.Op("filter1").Parallelism {
		t.Error("downstream join exceeds upstream filter degree")
	}
}

func TestParameterBasedAppliesUserDegrees(t *testing.T) {
	s := &ParameterBasedStrategy{Degrees: map[string]int{"join1": 12}, Uniform: 3}
	v := s.Enumerate(basePlan(t), strategyCluster(), 1)[0]
	if v.Op("join1").Parallelism != 12 {
		t.Errorf("explicit degree not applied: %d", v.Op("join1").Parallelism)
	}
	if v.Op("filter1").Parallelism != 3 {
		t.Errorf("uniform fallback not applied: %d", v.Op("filter1").Parallelism)
	}
}

func TestPropagateRatesThinsDownstream(t *testing.T) {
	plan, _ := Build(StructTwoFilter, validParams()) // sel 0.4 each
	rates := PropagateRates(plan)
	src := plan.Sources()[0]
	if rates["filter1"] != src.Source.EventRate {
		t.Errorf("filter1 rate %v, want source rate %v", rates["filter1"], src.Source.EventRate)
	}
	want := src.Source.EventRate * 0.4
	if math.Abs(rates["filter2"]-want) > 1e-6 {
		t.Errorf("filter2 rate %v, want %v after selectivity", rates["filter2"], want)
	}
	if rates["agg"] >= rates["filter2"] {
		t.Errorf("agg rate %v not thinned below filter2 %v", rates["agg"], rates["filter2"])
	}
}
