// Package workload is PDSP-Bench's workload generator: it enumerates
// data streams and parallel query plans (PQPs) across the paper's three
// diversity dimensions — query, data and resources (Table 3) — and
// implements the six parallelism-degree enumeration strategies of
// Section 3.1 (Random, Rule-based, Exhaustive, MinAvgMax, Increasing,
// Parameter-based).
package workload

import (
	"fmt"

	"pdspbench/internal/core"
	"pdspbench/internal/tuple"
)

// Structure identifies one of the nine synthetic query structures the
// benchmark suite ships (Table 2's "Synthetic Queries": simple linear
// queries with one filter up to complex configurations with multi-way
// joins and multiple chained filters).
type Structure string

const (
	StructLinear      Structure = "linear"
	StructTwoFilter   Structure = "2-chained-filter"
	StructThreeFilter Structure = "3-chained-filter"
	StructFourFilter  Structure = "4-chained-filter"
	StructTwoWayJoin  Structure = "2-way-join"
	StructThreeJoin   Structure = "3-way-join"
	StructFourJoin    Structure = "4-way-join"
	StructFiveJoin    Structure = "5-way-join"
	StructSixJoin     Structure = "6-way-join"
)

// Structures lists all nine synthetic structures in increasing
// complexity order (the x-axis order of the paper's Figure 3 top).
var Structures = []Structure{
	StructLinear, StructTwoFilter, StructThreeFilter, StructFourFilter,
	StructTwoWayJoin, StructThreeJoin, StructFourJoin, StructFiveJoin, StructSixJoin,
}

// filterChainLength returns how many chained filters the structure has.
func (s Structure) filterChainLength() int {
	switch s {
	case StructLinear:
		return 1
	case StructTwoFilter:
		return 2
	case StructThreeFilter:
		return 3
	case StructFourFilter:
		return 4
	default:
		return 1
	}
}

// JoinWays returns the number of joined streams (0 for non-join shapes).
func (s Structure) JoinWays() int {
	switch s {
	case StructTwoWayJoin:
		return 2
	case StructThreeJoin:
		return 3
	case StructFourJoin:
		return 4
	case StructFiveJoin:
		return 5
	case StructSixJoin:
		return 6
	default:
		return 0
	}
}

// IsJoin reports whether the structure contains join operators.
func (s Structure) IsJoin() bool { return s.JoinWays() > 0 }

// ParseStructure resolves a structure name.
func ParseStructure(name string) (Structure, error) {
	for _, st := range Structures {
		if string(st) == name {
			return st, nil
		}
	}
	return "", fmt.Errorf("workload: unknown synthetic structure %q", name)
}

// Build constructs the PQP for a synthetic structure from enumerated
// parameters. The generated plans follow the paper's Figure 2 (left)
// blueprint: every source feeds a filter; join structures chain
// (ways−1) windowed joins; filter chains end in a windowed aggregation.
func Build(s Structure, p Params) (*core.PQP, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	plan := core.NewPQP(fmt.Sprintf("%s/rate=%g", s, p.EventRate), string(s))
	schema := p.schema()
	if ways := s.JoinWays(); ways > 0 {
		buildJoin(plan, s, p, schema, ways)
	} else {
		buildChain(plan, s, p, schema)
	}
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated invalid plan for %s: %w", s, err)
	}
	return plan, nil
}

// buildChain assembles source → filter×k → window-aggregate → sink.
func buildChain(plan *core.PQP, s Structure, p Params, schema *tuple.Schema) {
	plan.Add(&core.Operator{
		ID: "src", Kind: core.OpSource, Name: "source", Parallelism: 1,
		Source:   p.sourceSpec(schema),
		OutWidth: schema.Width(),
	})
	prev := "src"
	for i := 0; i < s.filterChainLength(); i++ {
		id := fmt.Sprintf("filter%d", i+1)
		plan.Add(&core.Operator{
			ID: id, Kind: core.OpFilter, Name: id, Parallelism: 1,
			Partition: p.Partition,
			Filter:    p.filterSpec(schema),
			OutWidth:  schema.Width(),
		})
		plan.Connect(prev, id)
		prev = id
	}
	plan.Add(&core.Operator{
		ID: "agg", Kind: core.OpAggregate, Name: "window-" + p.AggFn.String(), Parallelism: 1,
		Partition: core.PartitionHash,
		Agg:       &core.AggregateSpec{Window: p.Window, Fn: p.AggFn, Field: p.aggField(schema), KeyField: p.keyField(schema)},
		OutWidth:  2,
	})
	plan.Connect(prev, "agg")
	plan.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Name: "sink", Parallelism: 1, Partition: core.PartitionRebalance})
	plan.Connect("agg", "sink")
}

// buildJoin assembles ways sources with filters and a left-deep chain of
// (ways−1) windowed equi-joins ending in a sink.
func buildJoin(plan *core.PQP, s Structure, p Params, schema *tuple.Schema, ways int) {
	for i := 0; i < ways; i++ {
		srcID := fmt.Sprintf("src%d", i+1)
		fID := fmt.Sprintf("filter%d", i+1)
		plan.Add(&core.Operator{
			ID: srcID, Kind: core.OpSource, Name: srcID, Parallelism: 1,
			Source:   p.sourceSpec(schema),
			OutWidth: schema.Width(),
		})
		plan.Add(&core.Operator{
			ID: fID, Kind: core.OpFilter, Name: fID, Parallelism: 1,
			Partition: p.Partition,
			Filter:    p.filterSpec(schema),
			OutWidth:  schema.Width(),
		})
		plan.Connect(srcID, fID)
	}
	prev := "filter1"
	width := schema.Width()
	for j := 0; j < ways-1; j++ {
		jID := fmt.Sprintf("join%d", j+1)
		width += schema.Width()
		plan.Add(&core.Operator{
			ID: jID, Kind: core.OpJoin, Name: jID, Parallelism: 1,
			Partition: core.PartitionHash,
			Join:      &core.JoinSpec{Window: p.Window, LeftField: 0, RightField: 0},
			OutWidth:  width,
		})
		plan.Connect(prev, jID)
		plan.Connect(fmt.Sprintf("filter%d", j+2), jID)
		prev = jID
	}
	plan.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Name: "sink", Parallelism: 1, Partition: core.PartitionRebalance})
	plan.Connect(prev, "sink")
}
