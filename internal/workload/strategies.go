package workload

import (
	"fmt"
	"math"
	"math/rand"

	"pdspbench/internal/cluster"
	"pdspbench/internal/core"
)

// Strategy enumerates parallelism degrees for a query structure,
// producing concrete PQPs (Section 3.1, "Parallelism enumerator"). Each
// call returns up to count independent plan variants; input plans are
// never mutated.
type Strategy interface {
	Name() string
	Enumerate(plan *core.PQP, cl *cluster.Cluster, count int) []*core.PQP
}

// degreeCap bounds enumerated degrees by the physical resources, as the
// paper does ("usually upto maximum number of cores available").
func degreeCap(cl *cluster.Cluster) int {
	cap := cl.TotalCores()
	if cap > core.MaxDegree {
		cap = core.MaxDegree
	}
	if cap < 1 {
		cap = 1
	}
	return cap
}

// processingOps returns the operators whose parallelism the strategies
// vary (everything except sources and sinks).
func processingOps(plan *core.PQP) []*core.Operator {
	var ops []*core.Operator
	for _, op := range plan.Operators {
		if op.Kind != core.OpSource && op.Kind != core.OpSink {
			ops = append(ops, op)
		}
	}
	return ops
}

// PropagateRates computes the steady-state input rate (tuples/s) of
// every operator; see core.PQP.InputRates.
func PropagateRates(plan *core.PQP) map[string]float64 {
	return plan.InputRates()
}

// RandomStrategy draws degrees uniformly from [1, cores] — the paper's
// baseline that "introduc[es] variability for comprehensive performance
// assessment" but produces many resource-wasteful plans (Section 3.1).
type RandomStrategy struct {
	Rng *rand.Rand
}

// Name implements Strategy.
func (s *RandomStrategy) Name() string { return "random" }

// Enumerate implements Strategy.
func (s *RandomStrategy) Enumerate(plan *core.PQP, cl *cluster.Cluster, count int) []*core.PQP {
	cap := degreeCap(cl)
	variants := make([]*core.PQP, 0, count)
	for v := 0; v < count; v++ {
		q := plan.Clone()
		for _, op := range processingOps(q) {
			op.Parallelism = 1 + s.Rng.Intn(cap)
		}
		variants = append(variants, q)
	}
	return variants
}

// RuleBasedStrategy sizes each operator from workload characteristics —
// input rate, selectivity (already folded into the propagated rates),
// per-tuple cost and available cores — following the DS2-style "three
// steps" heuristic the paper cites [Kalavri et al., OSDI'18], then
// explores around the computed degree. This yields "meaningful" plans:
// upstream operators get at least the parallelism of their downstream
// consumers, and no operator exceeds the core budget.
type RuleBasedStrategy struct {
	Rng *rand.Rand
	// TupleCost must match the execution backend's per-tuple cost unit;
	// zero selects the simulator default of 1µs.
	TupleCost float64
	// Safety is the headroom factor over the computed minimum degree;
	// zero selects 1.5.
	Safety float64
}

// Name implements Strategy.
func (s *RuleBasedStrategy) Name() string { return "rule-based" }

// requiredDegree computes the minimum instances keeping utilization < 1.
func (s *RuleBasedStrategy) requiredDegree(op *core.Operator, rate float64, cl *cluster.Cluster) int {
	tc := s.TupleCost
	if tc <= 0 {
		tc = 1e-6
	}
	safety := s.Safety
	if safety <= 0 {
		safety = 1.5
	}
	meanSpeed := (cl.MinNodeSpeed() + cl.MaxNodeSpeed()) / 2
	if meanSpeed <= 0 {
		meanSpeed = 1
	}
	coresNeeded := rate * tc * op.CostFactor() / meanSpeed * safety
	d := int(math.Ceil(coresNeeded))
	if d < 1 {
		d = 1
	}
	return d
}

// Enumerate implements Strategy.
func (s *RuleBasedStrategy) Enumerate(plan *core.PQP, cl *cluster.Cluster, count int) []*core.PQP {
	capD := degreeCap(cl)
	rates := PropagateRates(plan)
	// Exploration multipliers around the computed degree: drawn randomly
	// when an RNG is available (so even single-variant calls, as corpus
	// generation makes, explore the near-optimal neighbourhood), cycled
	// deterministically otherwise.
	mults := []float64{1, 0.5, 2, 0.75, 1.5}
	variants := make([]*core.PQP, 0, count)
	for v := 0; v < count; v++ {
		q := plan.Clone()
		m := mults[v%len(mults)]
		jitter := 1.0
		if s.Rng != nil {
			m = mults[s.Rng.Intn(len(mults))]
			jitter = 0.8 + 0.4*s.Rng.Float64()
		}
		// First size every operator from its workload, then enforce the
		// paper's monotonicity insight — "selecting higher parallelism
		// degrees for downstream operators is less meaningful" — by
		// raising upstream operators to at least the degree their
		// consumers need (never by starving a demanding downstream
		// operator such as a join below its requirement).
		order, _ := q.TopoOrder()
		for _, id := range order {
			op := q.Op(id)
			if op.Kind == core.OpSource || op.Kind == core.OpSink {
				continue
			}
			d := int(math.Round(float64(s.requiredDegree(op, rates[id], cl)) * m * jitter))
			if d < 1 {
				d = 1
			}
			if d > capD {
				d = capD
			}
			op.Parallelism = d
		}
		for i := len(order) - 1; i >= 0; i-- {
			op := q.Op(order[i])
			if op.Kind == core.OpSource || op.Kind == core.OpSink {
				continue
			}
			for _, downID := range q.Downstream(op.ID) {
				down := q.Op(downID)
				if down.Kind == core.OpSink {
					continue
				}
				if down.Parallelism > op.Parallelism {
					op.Parallelism = down.Parallelism
				}
			}
		}
		variants = append(variants, q)
	}
	return variants
}

// ExhaustiveStrategy tests every combination of the given degrees over
// the processing operators ("ensuring that each combination is tested").
// Combinations beyond count are truncated; Degrees defaults to the
// parallelism-category degrees.
type ExhaustiveStrategy struct {
	Degrees []int
}

// Name implements Strategy.
func (s *ExhaustiveStrategy) Name() string { return "exhaustive" }

// Enumerate implements Strategy.
func (s *ExhaustiveStrategy) Enumerate(plan *core.PQP, cl *cluster.Cluster, count int) []*core.PQP {
	degrees := s.Degrees
	if len(degrees) == 0 {
		capD := degreeCap(cl)
		for _, c := range core.AllCategories {
			if d := c.Degree(); d <= capD {
				degrees = append(degrees, d)
			}
		}
		if len(degrees) == 0 {
			degrees = []int{1}
		}
	}
	ops := processingOps(plan)
	total := 1
	for range ops {
		total *= len(degrees)
		if total > count {
			total = count
			break
		}
	}
	variants := make([]*core.PQP, 0, total)
	idx := make([]int, len(ops))
	for v := 0; v < count; v++ {
		q := plan.Clone()
		qOps := processingOps(q)
		for i, op := range qOps {
			op.Parallelism = degrees[idx[i]]
		}
		variants = append(variants, q)
		// Advance the odometer; stop after the full product.
		i := 0
		for ; i < len(idx); i++ {
			idx[i]++
			if idx[i] < len(degrees) {
				break
			}
			idx[i] = 0
		}
		if i == len(idx) {
			break
		}
	}
	return variants
}

// MinAvgMaxStrategy cycles through minimum, average and maximum degrees,
// "systematically exploring the effects ... from least to most intensive
// use of resources".
type MinAvgMaxStrategy struct{}

// Name implements Strategy.
func (s *MinAvgMaxStrategy) Name() string { return "min-avg-max" }

// Enumerate implements Strategy.
func (s *MinAvgMaxStrategy) Enumerate(plan *core.PQP, cl *cluster.Cluster, count int) []*core.PQP {
	capD := degreeCap(cl)
	levels := []int{1, (1 + capD) / 2, capD}
	variants := make([]*core.PQP, 0, count)
	for v := 0; v < count; v++ {
		q := plan.Clone()
		q.SetUniformParallelism(levels[v%len(levels)])
		variants = append(variants, q)
	}
	return variants
}

// IncreasingStrategy starts at the minimum degree and doubles stepwise to
// the maximum; within each variant, operators further down the dataflow
// get no more parallelism than their upstream producers (tuples thin out
// as they flow down, so downstream needs less).
type IncreasingStrategy struct{}

// Name implements Strategy.
func (s *IncreasingStrategy) Name() string { return "increasing" }

// Enumerate implements Strategy.
func (s *IncreasingStrategy) Enumerate(plan *core.PQP, cl *cluster.Cluster, count int) []*core.PQP {
	capD := degreeCap(cl)
	var steps []int
	for d := 1; d <= capD; d *= 2 {
		steps = append(steps, d)
	}
	if steps[len(steps)-1] != capD {
		steps = append(steps, capD)
	}
	variants := make([]*core.PQP, 0, count)
	for v := 0; v < count; v++ {
		base := steps[v%len(steps)]
		q := plan.Clone()
		order, _ := q.TopoOrder()
		depth := map[string]int{}
		for _, id := range order {
			d := 0
			for _, u := range q.Upstream(id) {
				if depth[u]+1 > d {
					d = depth[u] + 1
				}
			}
			depth[id] = d
		}
		for _, id := range order {
			op := q.Op(id)
			if op.Kind == core.OpSource || op.Kind == core.OpSink {
				continue
			}
			// Halve the degree at each level below the first processing
			// stage, floored at 1.
			d := base >> (maxI(0, depth[id]-1))
			if d < 1 {
				d = 1
			}
			op.Parallelism = d
		}
		variants = append(variants, q)
	}
	return variants
}

// ParameterBasedStrategy applies user-supplied degrees — the paper's
// rapid-testing mode. Degrees maps operator IDs to explicit degrees;
// Uniform applies to any processing operator not listed.
type ParameterBasedStrategy struct {
	Degrees map[string]int
	Uniform int
}

// Name implements Strategy.
func (s *ParameterBasedStrategy) Name() string { return "parameter-based" }

// Enumerate implements Strategy.
func (s *ParameterBasedStrategy) Enumerate(plan *core.PQP, cl *cluster.Cluster, count int) []*core.PQP {
	variants := make([]*core.PQP, 0, count)
	for v := 0; v < count; v++ {
		q := plan.Clone()
		for _, op := range processingOps(q) {
			if d, ok := s.Degrees[op.ID]; ok && d > 0 {
				op.Parallelism = d
			} else if s.Uniform > 0 {
				op.Parallelism = s.Uniform
			}
		}
		variants = append(variants, q)
	}
	return variants
}

// StrategyByName constructs a strategy from its paper name.
func StrategyByName(name string, rng *rand.Rand) (Strategy, error) {
	switch name {
	case "random":
		return &RandomStrategy{Rng: rng}, nil
	case "rule-based":
		return &RuleBasedStrategy{Rng: rng}, nil
	case "exhaustive":
		return &ExhaustiveStrategy{}, nil
	case "min-avg-max":
		return &MinAvgMaxStrategy{}, nil
	case "increasing":
		return &IncreasingStrategy{}, nil
	case "parameter-based":
		return &ParameterBasedStrategy{}, nil
	default:
		return nil, fmt.Errorf("workload: unknown parallelism strategy %q", name)
	}
}

// StrategyNames lists the six strategies of Section 3.1.
var StrategyNames = []string{"random", "rule-based", "exhaustive", "min-avg-max", "increasing", "parameter-based"}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
