package stats

import (
	"math"
	"math/rand"
)

// Poisson draws a Poisson-distributed count with the given mean. The
// paper models event arrivals as Poisson ("data is modelled as poisson
// distributed since many real-world applications ... are poisson
// distributed"). Knuth's product method is used for small means and a
// PTRS-style transformed-rejection for large means so that event rates up
// to 4M events/s stay cheap to sample.
func Poisson(rng *rand.Rand, mean float64) int64 {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		// Knuth: multiply uniforms until below e^-mean.
		l := math.Exp(-mean)
		var k int64
		p := 1.0
		for {
			p *= rng.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	// Normal approximation with continuity correction is accurate to well
	// under 1% for mean ≥ 30, which is ample for arrival batching.
	x := rng.NormFloat64()*math.Sqrt(mean) + mean + 0.5
	if x < 0 {
		return 0
	}
	return int64(x)
}

// Exponential draws an exponentially distributed inter-arrival gap with
// the given rate (events per unit time). Used to space individual events
// within a Poisson process.
func Exponential(rng *rand.Rand, rate float64) float64 {
	if rate <= 0 {
		return math.Inf(1)
	}
	return rng.ExpFloat64() / rate
}

// Zipf wraps math/rand's bounded Zipf generator with the (s, v, n)
// parameterization used by the workload generator for skewed key
// popularity. Values are in [0, n).
type Zipf struct {
	z *rand.Zipf
}

// NewZipf creates a Zipf sampler over [0, n) with skew s > 1.
func NewZipf(rng *rand.Rand, s float64, n uint64) *Zipf {
	if s <= 1 {
		s = 1.0001
	}
	if n == 0 {
		n = 1
	}
	return &Zipf{z: rand.NewZipf(rng, s, 1, n-1)}
}

// Next draws the next key.
func (z *Zipf) Next() uint64 { return z.z.Uint64() }

// LogUniform draws from a log-uniform distribution over [lo, hi], used
// when enumerating parameters that span orders of magnitude (event rates,
// window lengths).
func LogUniform(rng *rand.Rand, lo, hi float64) float64 {
	if lo <= 0 || hi <= lo {
		return lo
	}
	return math.Exp(rng.Float64()*(math.Log(hi)-math.Log(lo)) + math.Log(lo))
}

// Choice returns a uniformly random element of xs; it panics on an empty
// slice (an enumerator bug).
func Choice[T any](rng *rand.Rand, xs []T) T {
	return xs[rng.Intn(len(xs))]
}

// Shuffled returns a shuffled copy of xs.
func Shuffled[T any](rng *rand.Rand, xs []T) []T {
	out := make([]T, len(xs))
	copy(out, xs)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
