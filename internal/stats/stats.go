// Package stats provides the statistical machinery shared across
// PDSP-Bench: streaming summaries, percentile estimation, histograms,
// the q-error metric used to score learned cost models, and samplers for
// the arrival processes the paper models (Poisson, Zipf, exponential).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates count/mean/variance/min/max online (Welford).
type Summary struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds one observation into the summary.
func (s *Summary) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// Count returns the number of observations.
func (s *Summary) Count() int { return s.n }

// Mean returns the arithmetic mean, or 0 when empty.
func (s *Summary) Mean() float64 { return s.mean }

// Variance returns the sample variance, or 0 with fewer than two points.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min and Max return the observed extremes (0 when empty).
func (s *Summary) Min() float64 { return s.min }
func (s *Summary) Max() float64 { return s.max }

// String renders a compact summary for logs.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g",
		s.n, s.Mean(), s.StdDev(), s.min, s.max)
}

// Sample collects observations for exact quantiles. The benchmark runs
// bounded numbers of measurements per query (three runs × minutes), so an
// exact sample is affordable and avoids sketch approximation error in the
// reported medians.
type Sample struct {
	xs     []float64
	sorted bool
}

// NewSample returns an empty sample with the given capacity hint.
func NewSample(capacity int) *Sample {
	return &Sample{xs: make([]float64, 0, capacity)}
}

// NewSampleFrom wraps a copy of the observations.
func NewSampleFrom(xs []float64) *Sample {
	s := NewSample(len(xs))
	s.AddAll(xs...)
	return s
}

// Add appends one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// AddAll appends many observations.
func (s *Sample) AddAll(xs ...float64) {
	s.xs = append(s.xs, xs...)
	s.sorted = false
}

// Len returns the number of observations.
func (s *Sample) Len() int { return len(s.xs) }

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) by linear interpolation
// between closest ranks; it returns 0 on an empty sample. q is clamped.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[len(s.xs)-1]
	}
	pos := q * float64(len(s.xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.xs[lo]
	}
	frac := pos - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median returns the 50th percentile, the paper's reported latency metric.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// Mean returns the arithmetic mean of the sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Values returns a copy of the observations (sorted if Quantile was used).
func (s *Sample) Values() []float64 {
	out := make([]float64, len(s.xs))
	copy(out, s.xs)
	return out
}

// QError is the accuracy metric for learned cost models used throughout
// the paper's Exp-3: q(c, c') = max(c/c', c'/c) for true cost c and
// prediction c'. It is ≥ 1, with 1 meaning a perfect prediction. Inputs
// are floored at a small epsilon so that a zero or negative prediction
// yields a large-but-finite error instead of ±Inf.
func QError(truth, pred float64) float64 {
	const eps = 1e-9
	if truth < eps {
		truth = eps
	}
	if pred < eps {
		pred = eps
	}
	if truth > pred {
		return truth / pred
	}
	return pred / truth
}

// MedianQError returns the median q-error over paired slices. It panics
// if the slices differ in length (a harness bug, not a data condition).
func MedianQError(truth, pred []float64) float64 {
	if len(truth) != len(pred) {
		panic(fmt.Sprintf("stats: MedianQError length mismatch %d vs %d", len(truth), len(pred)))
	}
	s := NewSample(len(truth))
	for i := range truth {
		s.Add(QError(truth[i], pred[i]))
	}
	return s.Median()
}

// QuantileQError returns the q-th quantile of the q-error distribution.
func QuantileQError(truth, pred []float64, q float64) float64 {
	if len(truth) != len(pred) {
		panic(fmt.Sprintf("stats: QuantileQError length mismatch %d vs %d", len(truth), len(pred)))
	}
	s := NewSample(len(truth))
	for i := range truth {
		s.Add(QError(truth[i], pred[i]))
	}
	return s.Quantile(q)
}

// Histogram is a fixed-width-bucket histogram used by the WUI endpoints
// to ship latency distributions to clients.
type Histogram struct {
	Lo, Hi  float64
	Counts  []int
	Under   int
	Over    int
	samples int
}

// NewHistogram builds a histogram over [lo, hi) with n buckets.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.samples++
	if x < h.Lo {
		h.Under++
		return
	}
	if x >= h.Hi {
		h.Over++
		return
	}
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i >= len(h.Counts) { // guard float edge
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
}

// Total returns the number of observations recorded, including out-of-range.
func (h *Histogram) Total() int { return h.samples }
