package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummaryMoments(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.Count() != 8 {
		t.Fatalf("Count = %d, want 8", s.Count())
	}
	if got := s.Mean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Sample variance of this classic set is 32/7.
	if got := s.Variance(); math.Abs(got-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.StdDev() != 0 {
		t.Error("empty summary should report zeros")
	}
	s.Add(3)
	if s.Mean() != 3 || s.Variance() != 0 {
		t.Errorf("single-point summary: mean=%v var=%v", s.Mean(), s.Variance())
	}
}

func TestSampleQuantiles(t *testing.T) {
	s := NewSample(5)
	s.AddAll(10, 20, 30, 40, 50)
	cases := []struct {
		q, want float64
	}{
		{0, 10}, {0.25, 20}, {0.5, 30}, {0.75, 40}, {1, 50},
		{-0.5, 10}, {1.5, 50}, // clamped
		{0.125, 15}, // interpolated
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := s.Median(); got != 30 {
		t.Errorf("Median = %v, want 30", got)
	}
	if got := s.Mean(); got != 30 {
		t.Errorf("Mean = %v, want 30", got)
	}
}

func TestSampleEmpty(t *testing.T) {
	s := NewSample(0)
	if s.Quantile(0.5) != 0 || s.Mean() != 0 || s.Len() != 0 {
		t.Error("empty sample should report zeros")
	}
}

func TestSampleQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := NewSample(100)
	for i := 0; i < 100; i++ {
		s.Add(rng.Float64() * 1000)
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile not monotone at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestQError(t *testing.T) {
	cases := []struct {
		truth, pred, want float64
	}{
		{100, 100, 1},
		{100, 50, 2},
		{50, 100, 2},
		{10, 1000, 100},
	}
	for _, c := range cases {
		if got := QError(c.truth, c.pred); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("QError(%v,%v) = %v, want %v", c.truth, c.pred, got, c.want)
		}
	}
}

func TestQErrorSymmetricAndBounded(t *testing.T) {
	f := func(a, b float64) bool {
		a, b = math.Abs(a)+0.001, math.Abs(b)+0.001
		q := QError(a, b)
		return q >= 1 && math.Abs(q-QError(b, a)) < 1e-9 && !math.IsInf(q, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQErrorHandlesZeroPrediction(t *testing.T) {
	q := QError(100, 0)
	if math.IsInf(q, 0) || math.IsNaN(q) {
		t.Errorf("QError(100,0) = %v, want large finite", q)
	}
	if q < 1e6 {
		t.Errorf("QError(100,0) = %v, want large penalty", q)
	}
}

func TestMedianQError(t *testing.T) {
	truth := []float64{10, 10, 10}
	pred := []float64{10, 20, 40}
	// q-errors are 1, 2, 4 → median 2.
	if got := MedianQError(truth, pred); got != 2 {
		t.Errorf("MedianQError = %v, want 2", got)
	}
}

func TestMedianQErrorPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	MedianQError([]float64{1}, []float64{1, 2})
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for _, x := range []float64{-5, 0, 5, 15, 95, 99.999, 100, 250} {
		h.Add(x)
	}
	if h.Under != 1 {
		t.Errorf("Under = %d, want 1", h.Under)
	}
	if h.Over != 2 {
		t.Errorf("Over = %d, want 2 (100 and 250)", h.Over)
	}
	if h.Counts[0] != 2 { // 0 and 5
		t.Errorf("Counts[0] = %d, want 2", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 15
		t.Errorf("Counts[1] = %d, want 1", h.Counts[1])
	}
	if h.Counts[9] != 2 { // 95, 99.999
		t.Errorf("Counts[9] = %d, want 2", h.Counts[9])
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d, want 8", h.Total())
	}
}

func TestHistogramPanicsOnInvalidBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for hi <= lo")
		}
	}()
	NewHistogram(10, 10, 4)
}

func TestPoissonMeanSmallAndLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, mean := range []float64{0.5, 4, 25, 100, 10000} {
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			sum += float64(Poisson(rng, mean))
		}
		got := sum / n
		// Within 5% (generous; CLT gives much tighter at these n).
		if math.Abs(got-mean) > 0.05*mean+0.1 {
			t.Errorf("Poisson(mean=%v) empirical mean %v", mean, got)
		}
	}
}

func TestPoissonNonNegativeAndZeroMean(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if Poisson(rng, 0) != 0 || Poisson(rng, -3) != 0 {
		t.Error("Poisson with non-positive mean should be 0")
	}
	for i := 0; i < 1000; i++ {
		if Poisson(rng, 50) < 0 {
			t.Fatal("Poisson returned negative count")
		}
	}
}

func TestExponentialMean(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const rate = 4.0
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		sum += Exponential(rng, rate)
	}
	got := sum / n
	if math.Abs(got-1/rate) > 0.02 {
		t.Errorf("Exponential(rate=%v) empirical mean %v, want %v", rate, got, 1/rate)
	}
	if !math.IsInf(Exponential(rng, 0), 1) {
		t.Error("Exponential with rate 0 should be +Inf")
	}
}

func TestZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	z := NewZipf(rng, 1.5, 1000)
	counts := make(map[uint64]int)
	for i := 0; i < 20000; i++ {
		k := z.Next()
		if k >= 1000 {
			t.Fatalf("Zipf value %d out of range", k)
		}
		counts[k]++
	}
	// Key 0 must dominate any mid-range key under skew 1.5.
	if counts[0] <= counts[500]+10 {
		t.Errorf("Zipf not skewed: counts[0]=%d counts[500]=%d", counts[0], counts[500])
	}
}

func TestZipfDegenerateParams(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	z := NewZipf(rng, 0.5, 0) // both params out of range: clamped, not panic
	if k := z.Next(); k != 0 {
		t.Errorf("degenerate Zipf returned %d, want 0", k)
	}
}

func TestLogUniformRange(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 1000; i++ {
		v := LogUniform(rng, 10, 4e6)
		if v < 10 || v > 4e6 {
			t.Fatalf("LogUniform out of range: %v", v)
		}
	}
	if got := LogUniform(rng, 0, 100); got != 0 {
		t.Errorf("LogUniform with lo<=0 = %v, want lo", got)
	}
}

func TestChoiceAndShuffled(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := []int{1, 2, 3}
	seen := make(map[int]bool)
	for i := 0; i < 100; i++ {
		seen[Choice(rng, xs)] = true
	}
	if len(seen) != 3 {
		t.Errorf("Choice over 100 draws saw %d/3 values", len(seen))
	}
	sh := Shuffled(rng, xs)
	if len(sh) != 3 {
		t.Fatalf("Shuffled changed length: %v", sh)
	}
	sum := sh[0] + sh[1] + sh[2]
	if sum != 6 {
		t.Errorf("Shuffled lost elements: %v", sh)
	}
	if &sh[0] == &xs[0] {
		t.Error("Shuffled should copy, not alias")
	}
}
