//go:build race

package testutil

func init() { RaceEnabled = true }
