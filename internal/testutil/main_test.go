package testutil

import (
	"os"
	"testing"
)

// TestMain gates testutil's own tests with RunMain too — the leak gate
// must hold for the package that implements it.
func TestMain(m *testing.M) { os.Exit(RunMain(m)) }
