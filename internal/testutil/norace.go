package testutil

// RaceEnabled reports whether the race detector instruments this build
// (set by the race-tagged init). Allocation-count regression tests skip
// under it: instrumentation perturbs allocation behaviour, and the race
// run's job is finding data races, not enforcing alloc budgets.
var RaceEnabled = false
