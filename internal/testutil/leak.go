// Package testutil holds shared test harness helpers. Its goroutine-leak
// checker guards the property the goroutine-hygiene lint rule enforces
// statically: no engine or simulator test may leave operator goroutines
// running after it returns, because a leaked instance from one benchmark
// run steals cycles from — and corrupts the measurements of — the next.
package testutil

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// RunMain wraps testing.M.Run with a package-level goroutine-leak gate:
// after all tests pass, any goroutine started during the run that is
// still alive fails the package. Use from TestMain:
//
//	func TestMain(m *testing.M) { os.Exit(testutil.RunMain(m)) }
func RunMain(m *testing.M) int {
	before := goroutineCounts()
	code := m.Run()
	if code != 0 {
		return code
	}
	deadline := time.Now().Add(2 * time.Second)
	var leaked []string
	for {
		leaked = leakedSince(before)
		if len(leaked) == 0 {
			return code
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("testutil: tests leaked %d goroutine(s):\n%s\n", len(leaked), strings.Join(leaked, "\n---\n"))
	return 1
}

// VerifyNoLeaks snapshots the running goroutines and registers a cleanup
// that fails the test if new goroutines are still alive at test end.
// Goroutines take a moment to unwind after channels close, so the check
// retries briefly before declaring a leak.
func VerifyNoLeaks(t testing.TB) {
	t.Helper()
	before := goroutineCounts()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		var leaked []string
		for {
			leaked = leakedSince(before)
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("leaked %d goroutine(s):\n%s", len(leaked), strings.Join(leaked, "\n---\n"))
	})
}

// leakedSince returns stacks of goroutine signatures that are more
// numerous now than in the snapshot.
func leakedSince(before map[string]int) []string {
	now := goroutineStacks()
	counts := map[string]int{}
	var leaked []string
	for _, g := range now {
		sig := signature(g)
		if sig == "" {
			continue // the checker itself, or runtime housekeeping
		}
		counts[sig]++
		if counts[sig] > before[sig] {
			leaked = append(leaked, g)
		}
	}
	sort.Strings(leaked)
	return leaked
}

func goroutineCounts() map[string]int {
	counts := map[string]int{}
	for _, g := range goroutineStacks() {
		if sig := signature(g); sig != "" {
			counts[sig]++
		}
	}
	return counts
}

// goroutineStacks returns one stack dump per live goroutine.
func goroutineStacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			return strings.Split(strings.TrimSpace(string(buf[:n])), "\n\n")
		}
		buf = make([]byte, len(buf)*2)
	}
}

// signature reduces a goroutine dump to a stable identity: its top
// frame plus its creation site, with goroutine IDs and states stripped.
// Testing-infrastructure goroutines are excluded ("").
func signature(stack string) string {
	lines := strings.Split(stack, "\n")
	if len(lines) < 2 {
		return ""
	}
	var top, createdBy string
	for _, line := range lines[1:] {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "/") || strings.HasPrefix(line, "\t") {
			continue
		}
		if strings.HasPrefix(line, "created by ") {
			createdBy = line
			continue
		}
		if top == "" && !strings.Contains(line, ".go:") {
			top = line
		}
	}
	// os/signal.Notify starts a process-lifetime signal-delivery goroutine
	// that can never be collected; the fuzzing coordinator installs one.
	for _, infra := range []string{"testing.", "runtime.", "testutil.", "os/signal."} {
		if strings.HasPrefix(top, infra) || strings.Contains(createdBy, " "+infra) || strings.Contains(createdBy, "by "+infra) {
			return ""
		}
	}
	if top == "" {
		return ""
	}
	return fmt.Sprintf("%s | %s", top, createdBy)
}
