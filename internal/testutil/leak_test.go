package testutil

import (
	"strings"
	"testing"
	"time"
)

func TestVerifyNoLeaksCleanTest(t *testing.T) {
	VerifyNoLeaks(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
	}()
	<-done
}

// TestLeakDetection drives the checker against a deliberately leaked
// goroutine using a throwaway recorder so the real test does not fail.
func TestLeakDetection(t *testing.T) {
	block := make(chan struct{})
	defer close(block)

	before := goroutineCounts()
	go func() {
		<-block
	}()
	var leaked []string
	for i := 0; i < 100; i++ {
		if leaked = leakedSince(before); len(leaked) > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(leaked) == 0 {
		t.Fatal("checker failed to notice a blocked goroutine")
	}
	if !strings.Contains(strings.Join(leaked, "\n"), "TestLeakDetection") {
		t.Errorf("leak report does not name the leaking site:\n%s", strings.Join(leaked, "\n"))
	}
}

func TestSignatureFiltersInfrastructure(t *testing.T) {
	stack := "goroutine 7 [running]:\ntesting.tRunner(0x0, 0x0)\n\t/usr/lib/go/src/testing/testing.go:1689 +0x20\ncreated by testing.(*T).Run in goroutine 1\n\t/usr/lib/go/src/testing/testing.go:1742 +0x390"
	if sig := signature(stack); sig != "" {
		t.Errorf("testing goroutine should be filtered, got %q", sig)
	}
}
