// Package mlmanager is PDSP-Bench's ML Manager (Section 2, S3): it
// trains the registered learned cost models on identical corpora with
// identical splits and a uniform early-stopping rule, and reports both
// accuracy (q-error) and training overhead (queries and time) — the
// "fair comparison" the paper argues existing benchmarks lack (C3).
package mlmanager

import (
	"fmt"
	"sort"
	"time"

	"pdspbench/internal/ml"
	"pdspbench/internal/ml/gnn"
	"pdspbench/internal/ml/linreg"
	"pdspbench/internal/ml/mlp"
	"pdspbench/internal/ml/rf"
	"pdspbench/internal/stats"
)

// Factory creates a fresh untrained model.
type Factory struct {
	Name string
	New  func() ml.Model
}

// DefaultModels lists the four architectures of the paper's Exp-3 in
// presentation order: LR, MLP, RF, GNN.
func DefaultModels() []Factory {
	return []Factory{
		{Name: "LR", New: func() ml.Model { return linreg.New() }},
		{Name: "MLP", New: func() ml.Model { return mlp.New() }},
		{Name: "RF", New: func() ml.Model { return rf.New() }},
		{Name: "GNN", New: func() ml.Model { return gnn.New() }},
	}
}

// Evaluation is one model's scorecard.
type Evaluation struct {
	Model        string             `json:"model"`
	MedianQ      float64            `json:"median_q_error"`
	P90Q         float64            `json:"p90_q_error"`
	MeanQ        float64            `json:"mean_q_error"`
	TrainTime    time.Duration      `json:"train_time"`
	Epochs       int                `json:"epochs"`
	Stopped      string             `json:"stopped"`
	PerStructure map[string]float64 `json:"per_structure_median_q"`
	TestExamples int                `json:"test_examples"`
}

// Manager runs fair comparisons.
type Manager struct {
	// Opts is applied unchanged to every model (uniform early stopping).
	Opts ml.TrainOptions
	// SplitSeed fixes the train/val/test shuffle shared by all models.
	SplitSeed int64
}

// New creates a manager with the given uniform training options.
func New(opts ml.TrainOptions) *Manager {
	return &Manager{Opts: opts.Defaults(), SplitSeed: 7}
}

// Compare trains every factory's model on the same 70/15/15 split of the
// corpus and evaluates q-error on the held-out test set.
func (m *Manager) Compare(factories []Factory, corpus *ml.Dataset) ([]*Evaluation, error) {
	if corpus.Len() < 10 {
		return nil, fmt.Errorf("mlmanager: corpus of %d examples is too small to split", corpus.Len())
	}
	train, val, test := corpus.Split(0.7, 0.15, m.SplitSeed)
	var out []*Evaluation
	for _, f := range factories {
		ev, err := m.trainAndScore(f, train, val, test)
		if err != nil {
			return nil, fmt.Errorf("mlmanager: %s: %w", f.Name, err)
		}
		out = append(out, ev)
	}
	return out, nil
}

// trainAndScore fits one model and evaluates it.
func (m *Manager) trainAndScore(f Factory, train, val, test *ml.Dataset) (*Evaluation, error) {
	model := f.New()
	ts, err := model.Train(train, val, m.Opts)
	if err != nil {
		return nil, err
	}
	qs := ml.QErrors(model, test)
	sample := stats.NewSample(len(qs))
	sample.AddAll(qs...)
	ev := &Evaluation{
		Model:        f.Name,
		MedianQ:      sample.Median(),
		P90Q:         sample.Quantile(0.9),
		MeanQ:        sample.Mean(),
		TrainTime:    ts.TrainTime,
		Epochs:       ts.Epochs,
		Stopped:      ts.Stopped,
		PerStructure: perStructureMedian(model, test),
		TestExamples: test.Len(),
	}
	return ev, nil
}

// perStructureMedian groups test q-errors by query structure — the
// x-axis of the paper's Figure 5.
func perStructureMedian(model ml.Model, test *ml.Dataset) map[string]float64 {
	byStruct := map[string]*stats.Sample{}
	for _, e := range test.Examples {
		q := ml.QErrors(model, &ml.Dataset{Examples: []ml.Example{e}})[0]
		s, ok := byStruct[e.Structure]
		if !ok {
			s = stats.NewSample(16)
			byStruct[e.Structure] = s
		}
		s.Add(q)
	}
	out := make(map[string]float64, len(byStruct))
	for k, s := range byStruct {
		out[k] = s.Median()
	}
	return out
}

// CurvePoint is one training-set size of a learning curve (Figure 6a)
// with its training overhead (Figure 6b).
type CurvePoint struct {
	TrainQueries  int           `json:"train_queries"`
	SeenMedianQ   float64       `json:"seen_median_q"`
	UnseenMedianQ float64       `json:"unseen_median_q"`
	TrainTime     time.Duration `json:"train_time"`
	Epochs        int           `json:"epochs"`
}

// LearningCurve trains fresh models on growing prefixes of the corpus
// and evaluates on fixed seen-structure and unseen-structure test sets.
// This regenerates Figure 6: comparing the curve of a rule-based corpus
// with a random corpus shows the data-efficiency gap (O9).
func (m *Manager) LearningCurve(f Factory, corpus *ml.Dataset, sizes []int, seenTest, unseenTest *ml.Dataset) ([]*CurvePoint, error) {
	shuffled, val, _ := corpus.Split(0.85, 0.15, m.SplitSeed)
	var out []*CurvePoint
	for _, n := range sizes {
		if n > shuffled.Len() {
			n = shuffled.Len()
		}
		model := f.New()
		ts, err := model.Train(shuffled.Subset(n), val, m.Opts)
		if err != nil {
			return nil, fmt.Errorf("mlmanager: curve at %d queries: %w", n, err)
		}
		out = append(out, &CurvePoint{
			TrainQueries:  n,
			SeenMedianQ:   stats.MedianQError(labels(seenTest), preds(model, seenTest)),
			UnseenMedianQ: stats.MedianQError(labels(unseenTest), preds(model, unseenTest)),
			TrainTime:     ts.TrainTime,
			Epochs:        ts.Epochs,
		})
	}
	return out, nil
}

func labels(ds *ml.Dataset) []float64 {
	out := make([]float64, ds.Len())
	for i, e := range ds.Examples {
		out[i] = e.Latency
	}
	return out
}

func preds(model ml.Model, ds *ml.Dataset) []float64 {
	out := make([]float64, ds.Len())
	for i, e := range ds.Examples {
		out[i] = model.Predict(e)
	}
	return out
}

// FormatEvaluations renders a fixed-width comparison table, most
// accurate first.
func FormatEvaluations(evs []*Evaluation) string {
	sorted := append([]*Evaluation(nil), evs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].MedianQ < sorted[j].MedianQ })
	s := fmt.Sprintf("%-6s %12s %12s %12s %12s %8s\n", "model", "median-q", "p90-q", "mean-q", "train-time", "epochs")
	for _, e := range sorted {
		s += fmt.Sprintf("%-6s %12.3f %12.3f %12.3f %12s %8d\n",
			e.Model, e.MedianQ, e.P90Q, e.MeanQ, e.TrainTime.Round(time.Millisecond), e.Epochs)
	}
	return s
}
