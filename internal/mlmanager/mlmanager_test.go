package mlmanager

import (
	"strings"
	"testing"
	"time"

	"pdspbench/internal/ml"
	"pdspbench/internal/ml/mltest"
	"pdspbench/internal/workload"
)

func fastOpts() ml.TrainOptions {
	return ml.TrainOptions{MaxEpochs: 30, Patience: 5, LearningRate: 3e-3, BatchSize: 16, Seed: 1}
}

func TestCompareEvaluatesAllFourModels(t *testing.T) {
	mgr := New(fastOpts())
	corpus := mltest.Corpus(240, 1, nil)
	evs, err := mgr.Compare(DefaultModels(), corpus)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 4 {
		t.Fatalf("evaluated %d models, want 4", len(evs))
	}
	names := map[string]bool{}
	for _, e := range evs {
		names[e.Model] = true
		if e.MedianQ < 1 {
			t.Errorf("%s: median q-error %v < 1 is impossible", e.Model, e.MedianQ)
		}
		if e.TrainTime <= 0 {
			t.Errorf("%s: train time not recorded", e.Model)
		}
		if e.TestExamples != evs[0].TestExamples {
			t.Error("models evaluated on different test sets; comparison is unfair")
		}
		if len(e.PerStructure) == 0 {
			t.Errorf("%s: no per-structure q-errors (needed for Figure 5)", e.Model)
		}
	}
	for _, want := range []string{"LR", "MLP", "RF", "GNN"} {
		if !names[want] {
			t.Errorf("model %s missing from comparison", want)
		}
	}
}

func TestCompareRejectsTinyCorpus(t *testing.T) {
	mgr := New(fastOpts())
	if _, err := mgr.Compare(DefaultModels(), mltest.Corpus(5, 1, nil)); err == nil {
		t.Error("Compare accepted a 5-example corpus")
	}
}

func TestLearningCurveImprovesWithData(t *testing.T) {
	mgr := New(fastOpts())
	seen := []workload.Structure{workload.StructLinear, workload.StructTwoWayJoin, workload.StructThreeJoin}
	corpus := mltest.Corpus(400, 2, seen)
	seenTest := mltest.Corpus(60, 3, seen)
	unseenTest := mltest.Corpus(60, 4, []workload.Structure{workload.StructFourFilter, workload.StructFiveJoin})
	gnnFactory := DefaultModels()[3]
	points, err := mgr.LearningCurve(gnnFactory, corpus, []int{25, 300}, seenTest, unseenTest)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("curve has %d points, want 2", len(points))
	}
	if points[1].SeenMedianQ > points[0].SeenMedianQ*1.2 {
		t.Errorf("q-error did not improve with 12× data: %v → %v",
			points[0].SeenMedianQ, points[1].SeenMedianQ)
	}
	for _, p := range points {
		if p.UnseenMedianQ < 1 || p.SeenMedianQ < 1 {
			t.Errorf("impossible q-error at %d queries: %+v", p.TrainQueries, p)
		}
		if p.TrainTime <= 0 {
			t.Error("curve point missing training time (Figure 6b input)")
		}
	}
}

func TestFormatEvaluationsSortsByAccuracy(t *testing.T) {
	evs := []*Evaluation{
		{Model: "BAD", MedianQ: 9, TrainTime: time.Second},
		{Model: "GOOD", MedianQ: 1.1, TrainTime: time.Second},
	}
	s := FormatEvaluations(evs)
	if strings.Index(s, "GOOD") > strings.Index(s, "BAD") {
		t.Errorf("most accurate model not listed first:\n%s", s)
	}
}

func TestDefaultModelsOrder(t *testing.T) {
	names := []string{}
	for _, f := range DefaultModels() {
		names = append(names, f.Name)
		m := f.New()
		if m.Name() != f.Name {
			t.Errorf("factory %s builds model named %s", f.Name, m.Name())
		}
	}
	want := []string{"LR", "MLP", "RF", "GNN"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("model order %v, want %v (paper's presentation order)", names, want)
		}
	}
}
