package mlmanager

import (
	"os"
	"testing"

	"pdspbench/internal/testutil"
)

// TestMain runs the package's tests under the repo-wide goroutine-leak
// gate: any goroutine a test leaves behind fails the whole package.
func TestMain(m *testing.M) { os.Exit(testutil.RunMain(m)) }
