package core

import (
	"testing"
)

func TestJSONRoundTripPreservesPlan(t *testing.T) {
	orig := joinPlan()
	data, err := orig.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != orig.String() {
		t.Errorf("round trip changed plan:\n  %s\n  %s", orig, got)
	}
	if got.Name != orig.Name || got.Structure != orig.Structure {
		t.Errorf("metadata lost: %q/%q", got.Name, got.Structure)
	}
	// Specs must survive in full.
	j := got.Op("join")
	if j.Join == nil || j.Join.Window.LengthMs != 1000 || j.Join.Window.SlideRatio != 0.5 {
		t.Errorf("join spec lost: %+v", j.Join)
	}
	f := got.Op("f1")
	if f.Filter == nil || f.Filter.Selectivity != 0.5 || !f.Filter.Literal.Equal(orig.Op("f1").Filter.Literal) {
		t.Errorf("filter spec lost: %+v", f.Filter)
	}
	src := got.Op("src1")
	if src.Source == nil || src.Source.EventRate != 1000 || src.Source.Schema.Width() != 2 {
		t.Errorf("source spec lost: %+v", src.Source)
	}
	// The restored plan must be executable machinery: index rebuilt,
	// rates computable.
	if got.InputRates()["join"] <= 0 {
		t.Error("restored plan cannot propagate rates")
	}
}

func TestFromJSONRejectsGarbageAndInvalidPlans(t *testing.T) {
	if _, err := FromJSON([]byte("{not json")); err == nil {
		t.Error("garbage accepted")
	}
	// Structurally valid JSON but semantically invalid plan (no source).
	if _, err := FromJSON([]byte(`{"name":"x","structure":"y","operators":[{"id":"sink","kind":7,"parallelism":1}],"edges":[]}`)); err == nil {
		t.Error("invalid plan accepted")
	}
}
