package core

import "fmt"

// ParallelismCategory buckets parallelism degrees the way the paper's
// figures do (XS … XXL, with degrees ranging 1–256 and the parallelism
// paradox appearing beyond 128).
type ParallelismCategory int

const (
	CatXS  ParallelismCategory = iota // degree 1
	CatS                              // degree 2
	CatM                              // degree 8
	CatL                              // degree 32
	CatXL                             // degree 128
	CatXXL                            // degree 256
)

// AllCategories lists the categories in increasing order of parallelism.
var AllCategories = []ParallelismCategory{CatXS, CatS, CatM, CatL, CatXL, CatXXL}

// Degree returns the representative parallelism degree of the category.
func (c ParallelismCategory) Degree() int {
	switch c {
	case CatXS:
		return 1
	case CatS:
		return 2
	case CatM:
		return 8
	case CatL:
		return 32
	case CatXL:
		return 128
	case CatXXL:
		return 256
	default:
		return 1
	}
}

// String names the category as in the paper's figures.
func (c ParallelismCategory) String() string {
	switch c {
	case CatXS:
		return "XS"
	case CatS:
		return "S"
	case CatM:
		return "M"
	case CatL:
		return "L"
	case CatXL:
		return "XL"
	case CatXXL:
		return "XXL"
	default:
		return fmt.Sprintf("Cat(%d)", int(c))
	}
}

// CategoryForDegree returns the category whose representative degree is
// nearest to d (ties resolve downward), used when reporting measured
// plans back into figure buckets.
func CategoryForDegree(d int) ParallelismCategory {
	best := CatXS
	bestDist := -1
	for _, c := range AllCategories {
		dist := d - c.Degree()
		if dist < 0 {
			dist = -dist
		}
		if bestDist < 0 || dist < bestDist {
			best, bestDist = c, dist
		}
	}
	return best
}

// ParseCategory converts a figure label (case-sensitive, e.g. "XL") into
// a category.
func ParseCategory(s string) (ParallelismCategory, error) {
	for _, c := range AllCategories {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("core: unknown parallelism category %q", s)
}

// MinParallelism and MaxParallelism bound the enumerator's degree range
// (Table 3: 1–256).
const (
	MinDegree = 1
	MaxDegree = 256
)
