// Vectorized filter kernels: the columnar data plane's compiled form of
// FilterSpec. CompileFilter resolves the (function × column kind ×
// literal kind) combination ONCE per operator and returns a monomorphic
// loop over the contiguous column slab — no per-tuple Value boxing, no
// Compare calls, no interface dispatch inside the loop. The compiled
// kernel is semantically bit-identical to evaluating FilterFn.Eval on
// each boxed row value, including the edge cases:
//
//   - NaN ordering: Value.Compare returns 0 when neither v<lit nor
//     v>lit holds, so the row plane's LessEq is ¬(v>lit) and GreaterEq
//     is ¬(v<lit). The kernels use exactly those forms; a plain
//     `v <= lit` would diverge on NaN columns or literals.
//   - Cross-kind comparisons: Compare orders by Kind and never returns
//     0 for distinct kinds, so a mismatched literal makes the predicate
//     constant over the whole column — the kernel degenerates to
//     keep-all or drop-all without touching the slab.
//   - Unknown functions: Eval returns false, so the kernel drops all.
package core

import (
	"strings"

	"pdspbench/internal/tuple"
)

// Kernel is one compiled filter: it scans the rows named by sel in
// batch b's column `field`, keeping the passing row indexes. Kernels
// filter sel in place (the returned slice aliases sel's backing array)
// and never touch the batch's slabs, so the caller re-installs the
// result with SetSel and batches stay shareable.
type Kernel func(b *tuple.ColumnBatch, field int, sel []int32) []int32

// keepAll and dropAll are the constant kernels cross-kind and
// unsupported predicates compile to.
func keepAll(_ *tuple.ColumnBatch, _ int, sel []int32) []int32 { return sel }
func dropAll(_ *tuple.ColumnBatch, _ int, sel []int32) []int32 { return sel[:0] }

// scalar is the domain of column slabs; Go's native <, >, == on these
// types match Value.Compare/Equal within a kind (string comparison is
// byte-wise lexicographic, exactly strings.Compare's order).
type scalar interface {
	~int64 | ~float64 | ~string
}

// slabFn fetches one field's slab; resolved once per batch, outside the
// row loop.
type slabFn[T scalar] func(*tuple.ColumnBatch, int) []T

func kernLess[T scalar](col slabFn[T], lit T) Kernel {
	return func(b *tuple.ColumnBatch, f int, sel []int32) []int32 {
		xs := col(b, f)
		keep := sel[:0]
		for _, i := range sel {
			if xs[i] < lit {
				keep = append(keep, i)
			}
		}
		return keep
	}
}

// kernLessEq keeps rows where ¬(x > lit) — the row plane's
// Compare(x,lit) <= 0, which holds for NaN on either side.
func kernLessEq[T scalar](col slabFn[T], lit T) Kernel {
	return func(b *tuple.ColumnBatch, f int, sel []int32) []int32 {
		xs := col(b, f)
		keep := sel[:0]
		for _, i := range sel {
			if !(xs[i] > lit) {
				keep = append(keep, i)
			}
		}
		return keep
	}
}

func kernGreater[T scalar](col slabFn[T], lit T) Kernel {
	return func(b *tuple.ColumnBatch, f int, sel []int32) []int32 {
		xs := col(b, f)
		keep := sel[:0]
		for _, i := range sel {
			if xs[i] > lit {
				keep = append(keep, i)
			}
		}
		return keep
	}
}

// kernGreaterEq keeps rows where ¬(x < lit); see kernLessEq.
func kernGreaterEq[T scalar](col slabFn[T], lit T) Kernel {
	return func(b *tuple.ColumnBatch, f int, sel []int32) []int32 {
		xs := col(b, f)
		keep := sel[:0]
		for _, i := range sel {
			if !(xs[i] < lit) {
				keep = append(keep, i)
			}
		}
		return keep
	}
}

func kernEq[T scalar](col slabFn[T], lit T) Kernel {
	return func(b *tuple.ColumnBatch, f int, sel []int32) []int32 {
		xs := col(b, f)
		keep := sel[:0]
		for _, i := range sel {
			if xs[i] == lit {
				keep = append(keep, i)
			}
		}
		return keep
	}
}

func kernNotEq[T scalar](col slabFn[T], lit T) Kernel {
	return func(b *tuple.ColumnBatch, f int, sel []int32) []int32 {
		xs := col(b, f)
		keep := sel[:0]
		for _, i := range sel {
			if xs[i] != lit {
				keep = append(keep, i)
			}
		}
		return keep
	}
}

func kernPrefix(lit string) Kernel {
	return func(b *tuple.ColumnBatch, f int, sel []int32) []int32 {
		xs := b.StrCol(f)
		keep := sel[:0]
		for _, i := range sel {
			if strings.HasPrefix(xs[i], lit) {
				keep = append(keep, i)
			}
		}
		return keep
	}
}

func kernContains(lit string) Kernel {
	return func(b *tuple.ColumnBatch, f int, sel []int32) []int32 {
		xs := b.StrCol(f)
		keep := sel[:0]
		for _, i := range sel {
			if strings.Contains(xs[i], lit) {
				keep = append(keep, i)
			}
		}
		return keep
	}
}

// compileOrdered builds the kind-specialized kernel for one ordered
// comparison family; StartsWith/Contains are handled by the caller
// (string-only) and unknown functions fall through to drop-all.
func compileOrdered[T scalar](fn FilterFn, col slabFn[T], lit T) Kernel {
	switch fn {
	case FilterLess:
		return kernLess(col, lit)
	case FilterLessEq:
		return kernLessEq(col, lit)
	case FilterGreater:
		return kernGreater(col, lit)
	case FilterGreaterEq:
		return kernGreaterEq(col, lit)
	case FilterEq:
		return kernEq(col, lit)
	case FilterNotEq:
		return kernNotEq(col, lit)
	default:
		return dropAll
	}
}

func intSlab(b *tuple.ColumnBatch, f int) []int64     { return b.IntCol(f) }
func floatSlab(b *tuple.ColumnBatch, f int) []float64 { return b.FloatCol(f) }
func strSlab(b *tuple.ColumnBatch, f int) []string    { return b.StrCol(f) }

// CompileFilter compiles spec into a kernel over a column of the given
// kind. The result is total: every (function, kind, literal) input
// yields a kernel whose selection equals row-by-row Fn.Eval — see the
// package comment for the NaN and cross-kind equivalence argument, and
// FuzzColumnarKernelEquivalence for the machine-checked version.
func CompileFilter(spec *FilterSpec, kind tuple.Type) Kernel {
	lit := spec.Literal
	if kind != lit.Kind {
		// Compare orders distinct kinds by Kind and never returns 0, so
		// the predicate is constant over the column.
		var keep bool
		switch spec.Fn {
		case FilterLess, FilterLessEq:
			keep = kind < lit.Kind
		case FilterGreater, FilterGreaterEq:
			keep = kind > lit.Kind
		case FilterNotEq:
			keep = true
		default:
			// Eq is false across kinds; StartsWith/Contains require both
			// sides string, impossible when kinds differ; unknown fns
			// evaluate false.
			keep = false
		}
		if keep {
			return keepAll
		}
		return dropAll
	}
	switch kind {
	case tuple.TypeInt:
		return compileOrdered(spec.Fn, intSlab, lit.I)
	case tuple.TypeDouble:
		return compileOrdered(spec.Fn, floatSlab, lit.D)
	default:
		switch spec.Fn {
		case FilterStartsWith:
			return kernPrefix(lit.S)
		case FilterContains:
			return kernContains(lit.S)
		default:
			return compileOrdered(spec.Fn, strSlab, lit.S)
		}
	}
}
