package core

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"pdspbench/internal/tuple"
)

// SourceSpec configures a source operator: its output schema and the
// nominal event rate (events/second) at which the attached generator
// produces tuples.
type SourceSpec struct {
	Schema    *tuple.Schema `json:"schema"`
	EventRate float64       `json:"event_rate"`
	// Distribution of inter-arrival times: "poisson" (default) or "zipf"
	// for skewed key popularity combined with Poisson arrivals.
	Distribution string `json:"distribution,omitempty"`
	// Disorder, when set, delivers this source's tuples out of event-time
	// order; the engine wraps the generator in a disorder buffer and the
	// simulator mirrors the resulting watermark lag analytically.
	Disorder *DisorderSpec `json:"disorder,omitempty"`
}

// Disorder kinds understood by both backends.
const (
	// DisorderBounded delays each tuple by an independent uniform draw in
	// [0, MaxSkewMs]. With the source's watermark skew allowance set to the
	// same bound (which the engine does automatically), no tuple is ever
	// late: bounded disorder reorders but never drops.
	DisorderBounded = "bounded"
	// DisorderZipfBurst delays tuples by a Zipf-distributed draw scaled up
	// to 4×MaxSkewMs: most tuples arrive nearly in order while a heavy tail
	// straggles far past the watermark, producing genuine late drops.
	DisorderZipfBurst = "zipfburst"
)

// DisorderSpec configures out-of-order delivery at a source. MaxSkewMs
// bounds the typical event-time skew and doubles as the bounded-skew
// watermark heuristic's allowance (watermark = max event time − skew).
type DisorderSpec struct {
	Kind     string `json:"kind"` // DisorderBounded or DisorderZipfBurst
	MaxSkewMs int64 `json:"max_skew_ms"`
}

// Validate checks the disorder configuration.
func (d *DisorderSpec) Validate() error {
	switch d.Kind {
	case DisorderBounded, DisorderZipfBurst:
	default:
		return fmt.Errorf("core: unknown disorder kind %q (want %q or %q)", d.Kind, DisorderBounded, DisorderZipfBurst)
	}
	if d.MaxSkewMs <= 0 {
		return fmt.Errorf("core: disorder needs MaxSkewMs > 0, got %d", d.MaxSkewMs)
	}
	return nil
}

// FilterSpec configures a filter operator: the compared field, function,
// literal and the estimated selectivity (fraction of tuples that pass),
// which the workload generator guarantees is strictly inside (0, 1).
type FilterSpec struct {
	Field       int         `json:"field"`
	Fn          FilterFn    `json:"fn"`
	Literal     tuple.Value `json:"literal"`
	Selectivity float64     `json:"selectivity"`
}

// AggregateSpec configures a windowed aggregation. KeyField < 0 means a
// global (non-keyed) window.
type AggregateSpec struct {
	Window   WindowSpec `json:"window"`
	Fn       AggFn      `json:"fn"`
	Field    int        `json:"field"`
	KeyField int        `json:"key_field"`
}

// JoinSpec configures a windowed equi-join between the operator's two
// upstream inputs. Fields index into the respective input schemas.
type JoinSpec struct {
	Window     WindowSpec `json:"window"`
	LeftField  int        `json:"left_field"`
	RightField int        `json:"right_field"`
}

// UDOSpec describes a user-defined operator. The real engine executes its
// Logic (looked up by Name in the application registry); the simulator
// uses the cost coefficients, which the applications calibrate to their
// actual computational profile.
type UDOSpec struct {
	Name string `json:"name"`
	// CostFactor scales per-tuple CPU work relative to a plain filter (=1).
	CostFactor float64 `json:"cost_factor"`
	// StateFactor scales the per-instance state-coordination overhead that
	// grows with parallelism; 0 for stateless UDOs.
	StateFactor float64 `json:"state_factor"`
	// Selectivity is the expected output/input tuple ratio.
	Selectivity float64 `json:"selectivity"`
}

// Operator is one logical node of a PQP. Exactly one of the spec pointers
// matching Kind is set.
type Operator struct {
	ID          string            `json:"id"`
	Kind        OpKind            `json:"kind"`
	Name        string            `json:"name,omitempty"`
	Parallelism int               `json:"parallelism"`
	Partition   PartitionStrategy `json:"partition"` // routing of inputs INTO this operator

	Source *SourceSpec    `json:"source,omitempty"`
	Filter *FilterSpec    `json:"filter,omitempty"`
	Agg    *AggregateSpec `json:"aggregate,omitempty"`
	Join   *JoinSpec      `json:"join,omitempty"`
	UDO    *UDOSpec       `json:"udo,omitempty"`

	// OutWidth is the tuple width this operator emits; the cost models
	// feature it and the simulator uses it for network transfer sizing.
	OutWidth int `json:"out_width"`

	// CostScale multiplies the operator's default per-tuple cost factor
	// (0 means 1). Applications use it to mark unusually cheap or heavy
	// instances of standard operators, e.g. word count's trivial counting
	// window versus a full aggregate.
	CostScale float64 `json:"cost_scale,omitempty"`
}

// Selectivity returns the expected output/input ratio of the operator.
// Sources and sinks return 1. A UDOSpec attached to any operator kind
// (apps attach them to map/flatMap operators too) takes precedence.
func (o *Operator) Selectivity() float64 {
	if o.UDO != nil && o.UDO.Selectivity > 0 {
		return o.UDO.Selectivity
	}
	switch o.Kind {
	case OpFilter:
		if o.Filter != nil && o.Filter.Selectivity > 0 {
			return o.Filter.Selectivity
		}
		return 0.5
	case OpAggregate:
		if o.Agg != nil {
			// One output per window firing: selectivity = 1/slide for
			// count windows; time windows depend on rate and are treated
			// by the simulator directly, so approximate with slide length.
			s := o.Agg.Window.Slide()
			if s > 0 {
				return 1 / s
			}
		}
		return 0.01
	case OpFlatMap:
		return 2 // flatMap typically expands (e.g. splitting sentences)
	case OpUDO:
		if o.UDO != nil && o.UDO.Selectivity > 0 {
			return o.UDO.Selectivity
		}
		return 1
	case OpJoin:
		return 1 // join match rate is modelled separately by the simulator
	default:
		return 1
	}
}

// CostFactor returns per-tuple CPU work relative to a filter (=1). A
// UDOSpec attached to any operator kind takes precedence, and CostScale
// scales the result.
func (o *Operator) CostFactor() float64 {
	scale := o.CostScale
	if scale <= 0 {
		scale = 1
	}
	if o.UDO != nil && o.UDO.CostFactor > 0 {
		return o.UDO.CostFactor * scale
	}
	return scale * o.baseCostFactor()
}

func (o *Operator) baseCostFactor() float64 {
	switch o.Kind {
	case OpSource:
		return 0.3
	case OpFilter:
		return 1
	case OpMap:
		return 1.2
	case OpFlatMap:
		return 2.5
	case OpAggregate:
		return 3
	case OpJoin:
		return 6
	case OpUDO:
		if o.UDO != nil && o.UDO.CostFactor > 0 {
			return o.UDO.CostFactor
		}
		return 4
	case OpSink:
		return 0.5
	default:
		return 1
	}
}

// IsWindowed reports whether the operator maintains window state.
func (o *Operator) IsWindowed() bool {
	return o.Kind == OpAggregate || o.Kind == OpJoin
}

// WindowSpecOf returns the operator's window spec, or nil.
func (o *Operator) WindowSpecOf() *WindowSpec {
	switch {
	case o.Kind == OpAggregate && o.Agg != nil:
		return &o.Agg.Window
	case o.Kind == OpJoin && o.Join != nil:
		return &o.Join.Window
	}
	return nil
}

// Label is a short human-readable label for figures and DOT output.
func (o *Operator) Label() string {
	if o.Name != "" {
		return o.Name
	}
	return fmt.Sprintf("%s[%s]", o.Kind, o.ID)
}

// Edge is a directed dataflow connection between two operators.
type Edge struct {
	From string `json:"from"`
	To   string `json:"to"`
}

// PQP is a parallel query plan: a DAG of operators with explicit
// parallelism degrees (the paper's footnote 2: "a given query structure
// with parallelism degrees").
type PQP struct {
	Name      string      `json:"name"`
	Structure string      `json:"structure"` // e.g. "linear", "3-way-join", "smart-grid"
	Operators []*Operator `json:"operators"`
	Edges     []Edge      `json:"edges"`

	byID map[string]*Operator
}

// NewPQP creates an empty plan.
func NewPQP(name, structure string) *PQP {
	return &PQP{Name: name, Structure: structure, byID: make(map[string]*Operator)}
}

// Add appends an operator; it panics on a duplicate ID (a builder bug).
func (p *PQP) Add(op *Operator) *Operator {
	if p.byID == nil {
		p.rebuildIndex()
	}
	if _, dup := p.byID[op.ID]; dup {
		panic(fmt.Sprintf("core: duplicate operator id %q in plan %q", op.ID, p.Name))
	}
	if op.Parallelism <= 0 {
		op.Parallelism = 1
	}
	p.Operators = append(p.Operators, op)
	p.byID[op.ID] = op
	return op
}

// Connect adds the edge from → to.
func (p *PQP) Connect(from, to string) {
	p.Edges = append(p.Edges, Edge{From: from, To: to})
}

// Op returns the operator with the given ID, or nil.
func (p *PQP) Op(id string) *Operator {
	if p.byID == nil {
		p.rebuildIndex()
	}
	return p.byID[id]
}

func (p *PQP) rebuildIndex() {
	p.byID = make(map[string]*Operator, len(p.Operators))
	for _, op := range p.Operators {
		p.byID[op.ID] = op
	}
}

// Upstream returns the IDs of operators feeding op, in edge order
// (significant for joins: input 0 is the left side).
func (p *PQP) Upstream(id string) []string {
	var ups []string
	for _, e := range p.Edges {
		if e.To == id {
			ups = append(ups, e.From)
		}
	}
	return ups
}

// Downstream returns the IDs of operators fed by op.
func (p *PQP) Downstream(id string) []string {
	var downs []string
	for _, e := range p.Edges {
		if e.From == id {
			downs = append(downs, e.To)
		}
	}
	return downs
}

// Sources returns all source operators in plan order.
func (p *PQP) Sources() []*Operator {
	var srcs []*Operator
	for _, op := range p.Operators {
		if op.Kind == OpSource {
			srcs = append(srcs, op)
		}
	}
	return srcs
}

// Sinks returns all sink operators in plan order.
func (p *PQP) Sinks() []*Operator {
	var sinks []*Operator
	for _, op := range p.Operators {
		if op.Kind == OpSink {
			sinks = append(sinks, op)
		}
	}
	return sinks
}

// TopoOrder returns operator IDs in a topological order; it returns an
// error when the graph has a cycle or dangling edge.
func (p *PQP) TopoOrder() ([]string, error) {
	if p.byID == nil {
		p.rebuildIndex()
	}
	indeg := make(map[string]int, len(p.Operators))
	for _, op := range p.Operators {
		indeg[op.ID] = 0
	}
	for _, e := range p.Edges {
		if _, ok := p.byID[e.From]; !ok {
			return nil, fmt.Errorf("core: edge from unknown operator %q", e.From)
		}
		if _, ok := p.byID[e.To]; !ok {
			return nil, fmt.Errorf("core: edge to unknown operator %q", e.To)
		}
		indeg[e.To]++
	}
	// Deterministic order: seed the queue in plan order.
	var queue []string
	for _, op := range p.Operators {
		if indeg[op.ID] == 0 {
			queue = append(queue, op.ID)
		}
	}
	var order []string
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, d := range p.Downstream(id) {
			indeg[d]--
			if indeg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if len(order) != len(p.Operators) {
		return nil, fmt.Errorf("core: plan %q contains a cycle", p.Name)
	}
	return order, nil
}

// Validate checks structural invariants: at least one source and one
// sink, acyclicity, sources have no inputs, sinks no outputs, joins have
// exactly two inputs, every other non-source operator has at least one
// input, windowed specs are valid, and parallelism degrees are positive.
func (p *PQP) Validate() error {
	if len(p.Sources()) == 0 {
		return fmt.Errorf("core: plan %q has no source", p.Name)
	}
	if len(p.Sinks()) == 0 {
		return fmt.Errorf("core: plan %q has no sink", p.Name)
	}
	if _, err := p.TopoOrder(); err != nil {
		return err
	}
	for _, op := range p.Operators {
		ups := p.Upstream(op.ID)
		downs := p.Downstream(op.ID)
		switch op.Kind {
		case OpSource:
			if len(ups) != 0 {
				return fmt.Errorf("core: source %q has %d inputs", op.ID, len(ups))
			}
			if op.Source == nil || op.Source.Schema == nil {
				return fmt.Errorf("core: source %q missing SourceSpec/schema", op.ID)
			}
			if op.Source.EventRate <= 0 {
				return fmt.Errorf("core: source %q has non-positive event rate", op.ID)
			}
			if op.Source.Disorder != nil {
				if err := op.Source.Disorder.Validate(); err != nil {
					return fmt.Errorf("core: source %q: %w", op.ID, err)
				}
			}
		case OpSink:
			if len(downs) != 0 {
				return fmt.Errorf("core: sink %q has %d outputs", op.ID, len(downs))
			}
			if len(ups) == 0 {
				return fmt.Errorf("core: sink %q has no input", op.ID)
			}
		case OpJoin:
			if len(ups) != 2 {
				return fmt.Errorf("core: join %q has %d inputs, want 2", op.ID, len(ups))
			}
			if op.Join == nil {
				return fmt.Errorf("core: join %q missing JoinSpec", op.ID)
			}
			if err := op.Join.Window.Validate(); err != nil {
				return fmt.Errorf("core: join %q: %w", op.ID, err)
			}
		case OpFilter:
			if op.Filter == nil {
				return fmt.Errorf("core: filter %q missing FilterSpec", op.ID)
			}
			if len(ups) == 0 {
				return fmt.Errorf("core: filter %q has no input", op.ID)
			}
		case OpAggregate:
			if op.Agg == nil {
				return fmt.Errorf("core: aggregate %q missing AggregateSpec", op.ID)
			}
			if err := op.Agg.Window.Validate(); err != nil {
				return fmt.Errorf("core: aggregate %q: %w", op.ID, err)
			}
			if len(ups) == 0 {
				return fmt.Errorf("core: aggregate %q has no input", op.ID)
			}
		default:
			if len(ups) == 0 {
				return fmt.Errorf("core: operator %q (%s) has no input", op.ID, op.Kind)
			}
		}
		if op.Parallelism <= 0 {
			return fmt.Errorf("core: operator %q has parallelism %d", op.ID, op.Parallelism)
		}
	}
	return nil
}

// Clone deep-copies the plan so that enumeration can vary parallelism
// degrees without aliasing.
func (p *PQP) Clone() *PQP {
	q := NewPQP(p.Name, p.Structure)
	for _, op := range p.Operators {
		c := *op
		if op.Source != nil {
			s := *op.Source
			if s.Disorder != nil {
				d := *s.Disorder
				s.Disorder = &d
			}
			c.Source = &s
		}
		if op.Filter != nil {
			f := *op.Filter
			c.Filter = &f
		}
		if op.Agg != nil {
			a := *op.Agg
			c.Agg = &a
		}
		if op.Join != nil {
			j := *op.Join
			c.Join = &j
		}
		if op.UDO != nil {
			u := *op.UDO
			c.UDO = &u
		}
		q.Add(&c)
	}
	q.Edges = append([]Edge(nil), p.Edges...)
	return q
}

// TotalInstances sums parallelism over all operators — the number of
// physical operator instances the plan deploys.
func (p *PQP) TotalInstances() int {
	var n int
	for _, op := range p.Operators {
		n += op.Parallelism
	}
	return n
}

// CountKind returns how many operators of the given kind the plan has.
func (p *PQP) CountKind(k OpKind) int {
	var n int
	for _, op := range p.Operators {
		if op.Kind == k {
			n++
		}
	}
	return n
}

// Complexity is a scalar complexity score used to order query structures
// in figures: operators weighted by their cost factor, with joins
// dominating, matching the paper's notion that "complexity of a PQP
// correlates both the composition of various operators and the
// parallelism degree".
func (p *PQP) Complexity() float64 {
	var c float64
	for _, op := range p.Operators {
		c += op.CostFactor()
	}
	return c
}

// MaxParallelism returns the largest per-operator parallelism degree.
func (p *PQP) MaxParallelism() int {
	m := 0
	for _, op := range p.Operators {
		if op.Parallelism > m {
			m = op.Parallelism
		}
	}
	return m
}

// SetUniformParallelism assigns the same degree to every non-source,
// non-sink operator (sources and sinks keep their configured degrees, as
// in the paper's experiments where parallelism categories apply to the
// processing operators).
func (p *PQP) SetUniformParallelism(degree int) {
	for _, op := range p.Operators {
		if op.Kind == OpSource || op.Kind == OpSink {
			continue
		}
		op.Parallelism = degree
	}
}

// InputRates computes the steady-state input rate (tuples/s) of every
// operator by pushing source rates through selectivities in topological
// order. Joins receive the sum of their inputs and emit at the rate of
// their slower side (the windowed match bound). Both the rule-based
// parallelism strategy and the cluster simulator's contention model use
// these rates.
func (p *PQP) InputRates() map[string]float64 {
	in, _ := p.propagateRates()
	return in
}

// OutputRates is the companion of InputRates: expected emission rates.
func (p *PQP) OutputRates() map[string]float64 {
	_, out := p.propagateRates()
	return out
}

func (p *PQP) propagateRates() (in, out map[string]float64) {
	in = make(map[string]float64, len(p.Operators))
	out = make(map[string]float64, len(p.Operators))
	order, err := p.TopoOrder()
	if err != nil {
		return in, out
	}
	for _, id := range order {
		op := p.Op(id)
		switch op.Kind {
		case OpSource:
			in[id] = op.Source.EventRate
			out[id] = op.Source.EventRate
		case OpJoin:
			var sum, min float64
			min = math.Inf(1)
			for _, u := range p.Upstream(id) {
				sum += out[u]
				if out[u] < min {
					min = out[u]
				}
			}
			if math.IsInf(min, 1) {
				min = 0
			}
			in[id] = sum
			out[id] = min
		default:
			var sum float64
			for _, u := range p.Upstream(id) {
				sum += out[u]
			}
			in[id] = sum
			out[id] = sum * op.Selectivity()
		}
	}
	return in, out
}

// String gives a one-line summary.
func (p *PQP) String() string {
	order, err := p.TopoOrder()
	if err != nil {
		return fmt.Sprintf("PQP(%s: invalid: %v)", p.Name, err)
	}
	parts := make([]string, 0, len(order))
	for _, id := range order {
		op := p.Op(id)
		parts = append(parts, fmt.Sprintf("%s×%d", op.Kind, op.Parallelism))
	}
	return fmt.Sprintf("PQP(%s: %s)", p.Name, strings.Join(parts, " → "))
}

// ToJSON serializes the plan for the workload store — the paper keeps
// generated workloads in a database so that corpora can be replayed and
// retrained without re-enumerating.
func (p *PQP) ToJSON() ([]byte, error) {
	return json.Marshal(p)
}

// FromJSON deserializes and validates a stored plan.
func FromJSON(data []byte) (*PQP, error) {
	var p PQP
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("core: decode plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// DOT renders the plan in Graphviz DOT format (the WUI substitute serves
// this for plan visualisation).
func (p *PQP) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", p.Name)
	ops := append([]*Operator(nil), p.Operators...)
	sort.Slice(ops, func(i, j int) bool { return ops[i].ID < ops[j].ID })
	for _, op := range ops {
		fmt.Fprintf(&b, "  %q [label=\"%s\\np=%d\"];\n", op.ID, op.Label(), op.Parallelism)
	}
	for _, e := range p.Edges {
		fmt.Fprintf(&b, "  %q -> %q;\n", e.From, e.To)
	}
	b.WriteString("}\n")
	return b.String()
}
