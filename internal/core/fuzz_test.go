package core

import (
	"bytes"
	"testing"

	"pdspbench/internal/tuple"
)

// FuzzPlanRoundTrip drives arbitrary bytes through the plan store
// codec: anything FromJSON accepts must re-encode, decode again, and
// re-encode to the same bytes — a fixed point after one normalisation.
// The workload store replays stored plans across sessions, so a codec
// that drifts on its own output would silently corrupt corpora.
func FuzzPlanRoundTrip(f *testing.F) {
	plan := NewPQP("seed", "linear")
	plan.Add(&Operator{
		ID: "src", Kind: OpSource, Name: "source", Parallelism: 1,
		Source: &SourceSpec{
			Schema:    tuple.NewSchema(tuple.Field{Name: "v", Type: tuple.TypeInt}),
			EventRate: 1000,
		},
		OutWidth: 1,
	})
	plan.Add(&Operator{ID: "sink", Kind: OpSink, Name: "sink", Parallelism: 1, Partition: PartitionRebalance})
	plan.Connect("src", "sink")
	if seed, err := plan.ToJSON(); err == nil {
		f.Add(seed)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","operators":[]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p1, err := FromJSON(data)
		if err != nil {
			return // invalid input is fine; the codec just must not drift
		}
		b1, err := p1.ToJSON()
		if err != nil {
			t.Fatalf("decoded plan failed to encode: %v", err)
		}
		p2, err := FromJSON(b1)
		if err != nil {
			t.Fatalf("round-tripped plan failed to decode: %v\n%s", err, b1)
		}
		b2, err := p2.ToJSON()
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(b1, b2) {
			t.Errorf("encoding is not a fixed point:\nfirst:  %s\nsecond: %s", b1, b2)
		}
	})
}
