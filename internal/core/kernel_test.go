package core

import (
	"math"
	"testing"

	"pdspbench/internal/tuple"
)

// kernelBatch builds a one-column batch of the given kind holding vals
// (interpreted per kind: int64 bits, float64 bits, or vocabulary index
// into strs), sealed with a full selection.
func kernelBatch(kind tuple.Type, raw []uint64) *tuple.ColumnBatch {
	strs := []string{"", "a", "ab", "abc", "b", "ba", "w007", "zz"}
	b := tuple.NewColumnBatch([]tuple.Type{kind}, len(raw))
	for i, r := range raw {
		switch kind {
		case tuple.TypeInt:
			b.IntCol(0)[i] = int64(r)
		case tuple.TypeDouble:
			b.FloatCol(0)[i] = math.Float64frombits(r)
		default:
			b.StrCol(0)[i] = strs[r%uint64(len(strs))]
		}
	}
	b.Seal(len(raw))
	return b
}

// allFilterFns enumerates every defined function plus one out-of-range
// value, which must compile to drop-all (Eval returns false).
var allFilterFns = []FilterFn{
	FilterLess, FilterLessEq, FilterGreater, FilterGreaterEq,
	FilterEq, FilterNotEq, FilterStartsWith, FilterContains, FilterFn(99),
}

// checkKernelAgainstEval compiles spec for the batch's column kind and
// verifies the kernel's selection equals row-by-row Fn.Eval over the
// boxed values.
func checkKernelAgainstEval(t *testing.T, b *tuple.ColumnBatch, spec *FilterSpec) {
	t.Helper()
	kern := CompileFilter(spec, b.Kind(0))
	sel := append([]int32(nil), b.Sel()...)
	got := kern(b, 0, sel)
	var want []int32
	for i := 0; i < b.Len(); i++ {
		if spec.Fn.Eval(b.ValueAt(0, i), spec.Literal) {
			want = append(want, int32(i))
		}
	}
	if len(got) != len(want) {
		t.Fatalf("fn=%d colKind=%d litKind=%d: kernel kept %d rows, Eval kept %d",
			spec.Fn, b.Kind(0), spec.Literal.Kind, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("fn=%d colKind=%d litKind=%d: selection diverges at %d: %d vs %d",
				spec.Fn, b.Kind(0), spec.Literal.Kind, i, got[i], want[i])
		}
	}
}

// TestCompileFilterMatchesEvalTable sweeps every function over
// hand-picked adversarial columns: NaN (both payloads), ±Inf, ±0,
// extreme ints, empty strings, and literals of every kind including
// mismatched ones.
func TestCompileFilterMatchesEvalTable(t *testing.T) {
	nan := math.Float64bits(math.NaN())
	batches := []*tuple.ColumnBatch{
		kernelBatch(tuple.TypeInt, []uint64{0, 1, ^uint64(0) /* -1 */, 500, uint64(math.MaxInt64), uint64(1) << 63 /* MinInt64 */}),
		kernelBatch(tuple.TypeDouble, []uint64{nan, nan | 1, math.Float64bits(0), 1 << 63 /* -0 */, math.Float64bits(0.5), math.Float64bits(math.Inf(1)), math.Float64bits(math.Inf(-1))}),
		kernelBatch(tuple.TypeString, []uint64{0, 1, 2, 3, 4, 5, 6, 7}),
	}
	literals := []tuple.Value{
		tuple.Int(0), tuple.Int(500), tuple.Int(math.MinInt64),
		tuple.Double(0.5), tuple.Double(math.NaN()), tuple.Double(math.Inf(-1)),
		tuple.String(""), tuple.String("ab"), tuple.String("w007"),
	}
	for _, b := range batches {
		for _, fn := range allFilterFns {
			for _, lit := range literals {
				checkKernelAgainstEval(t, b, &FilterSpec{Field: 0, Fn: fn, Literal: lit})
			}
		}
	}
}

// FuzzColumnarKernelEquivalence is the machine-checked half of the
// kernel package comment: for arbitrary column contents (raw bits, so
// NaN payloads and -0 appear), literal bits, and function selectors,
// the compiled kernel's selection must equal row-by-row FilterFn.Eval.
func FuzzColumnarKernelEquivalence(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(2), uint64(500), uint64(1), uint64(999), uint64(0))
	f.Add(uint8(1), uint8(1), uint8(4), math.Float64bits(0.5), math.Float64bits(math.NaN()), uint64(1<<63), math.Float64bits(1))
	f.Add(uint8(2), uint8(2), uint8(7), uint64(2), uint64(0), uint64(5), uint64(7))
	f.Add(uint8(0), uint8(1), uint8(0), uint64(1), uint64(2), uint64(3), uint64(4)) // cross-kind
	f.Fuzz(func(t *testing.T, colK, litK, fnSel uint8, litBits, r0, r1, r2 uint64) {
		kinds := []tuple.Type{tuple.TypeInt, tuple.TypeDouble, tuple.TypeString}
		colKind := kinds[int(colK)%len(kinds)]
		litKind := kinds[int(litK)%len(kinds)]
		fn := allFilterFns[int(fnSel)%len(allFilterFns)]
		var lit tuple.Value
		switch litKind {
		case tuple.TypeInt:
			lit = tuple.Int(int64(litBits))
		case tuple.TypeDouble:
			lit = tuple.Double(math.Float64frombits(litBits))
		default:
			lit = tuple.String(kernelBatch(tuple.TypeString, []uint64{litBits}).StrCol(0)[0])
		}
		b := kernelBatch(colKind, []uint64{r0, r1, r2, litBits})
		checkKernelAgainstEval(t, b, &FilterSpec{Field: 0, Fn: fn, Literal: lit})
	})
}
