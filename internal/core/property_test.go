package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pdspbench/internal/tuple"
)

// TestFilterEvalIsTotal: Eval must never panic, whatever value/literal
// kind combination arrives (schema drift must degrade, not crash).
func TestFilterEvalIsTotal(t *testing.T) {
	mk := func(kind uint8, i int64, d float64, s string) tuple.Value {
		switch kind % 3 {
		case 0:
			return tuple.Int(i)
		case 1:
			return tuple.Double(d)
		default:
			return tuple.String(s)
		}
	}
	f := func(fnRaw uint8, k1, k2 uint8, i1, i2 int64, d1, d2 float64, s1, s2 string) bool {
		fn := FilterFn(int(fnRaw) % 8)
		_ = fn.Eval(mk(k1, i1, d1, s1), mk(k2, i2, d2, s2))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestSlideWithinLength: every valid window spec slides by at least one
// unit and at most its full length.
func TestSlideWithinLength(t *testing.T) {
	f := func(sliding bool, timePolicy bool, lenRaw uint16, ratioRaw uint8) bool {
		w := WindowSpec{}
		if sliding {
			w.Type = WindowSliding
			w.SlideRatio = 0.3 + float64(ratioRaw%5)*0.1 // Table 3 ratios
		}
		if timePolicy {
			w.Policy = PolicyTime
			w.LengthMs = int64(lenRaw%3000) + 1
		} else {
			w.Policy = PolicyCount
			w.LengthTups = int(lenRaw%1000) + 1
		}
		s := w.Slide()
		return s >= 1 && s <= w.Length() || w.Length() < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestCategoryForDegreeIsNearest: the chosen category's degree is never
// farther from d than any other category's degree.
func TestCategoryForDegreeIsNearest(t *testing.T) {
	abs := func(x int) int {
		if x < 0 {
			return -x
		}
		return x
	}
	f := func(raw uint16) bool {
		d := int(raw%300) + 1
		got := CategoryForDegree(d)
		for _, c := range AllCategories {
			if abs(c.Degree()-d) < abs(got.Degree()-d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// randomChainPlan builds a random valid linear chain for clone/topo
// properties.
func randomChainPlan(rng *rand.Rand) *PQP {
	p := NewPQP("prop", "chain")
	schema := tuple.NewSchema(tuple.Field{Name: "v", Type: tuple.TypeDouble})
	p.Add(&Operator{ID: "src", Kind: OpSource, Parallelism: 1 + rng.Intn(4),
		Source: &SourceSpec{Schema: schema, EventRate: float64(1 + rng.Intn(100000))}})
	prev := "src"
	n := 1 + rng.Intn(6)
	for i := 0; i < n; i++ {
		id := string(rune('a' + i))
		p.Add(&Operator{ID: id, Kind: OpFilter, Parallelism: 1 + rng.Intn(64),
			Partition: PartitionStrategy(rng.Intn(3)),
			Filter:    &FilterSpec{Field: 0, Fn: FilterLess, Literal: tuple.Double(rng.Float64()), Selectivity: 0.1 + 0.8*rng.Float64()},
		})
		p.Connect(prev, id)
		prev = id
	}
	p.Add(&Operator{ID: "sink", Kind: OpSink, Parallelism: 1})
	p.Connect(prev, "sink")
	return p
}

// TestCloneIndependenceProperty: for random plans, a clone renders
// identically, and mutating every clone degree leaves the original
// untouched.
func TestCloneIndependenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		p := randomChainPlan(rng)
		q := p.Clone()
		if p.String() != q.String() {
			t.Fatalf("clone differs: %s vs %s", p, q)
		}
		for _, op := range q.Operators {
			op.Parallelism += 100
		}
		for _, op := range p.Operators {
			if op.Parallelism > 100 {
				t.Fatal("clone aliases parallelism")
			}
		}
	}
}

// TestTopoOrderTotalProperty: random valid chains always produce a
// complete topological order consistent with every edge.
func TestTopoOrderTotalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		p := randomChainPlan(rng)
		order, err := p.TopoOrder()
		if err != nil {
			t.Fatal(err)
		}
		pos := map[string]int{}
		for i, id := range order {
			pos[id] = i
		}
		if len(order) != len(p.Operators) {
			t.Fatal("order incomplete")
		}
		for _, e := range p.Edges {
			if pos[e.From] >= pos[e.To] {
				t.Fatalf("edge %s→%s violated", e.From, e.To)
			}
		}
	}
}

// TestInputRatesNonNegativeAndThinning: rates are non-negative and a
// filter chain's rates never grow downstream.
func TestInputRatesNonNegativeAndThinning(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		p := randomChainPlan(rng)
		rates := p.InputRates()
		order, _ := p.TopoOrder()
		prev := -1.0
		for _, id := range order {
			r := rates[id]
			if r < 0 {
				t.Fatalf("negative rate for %s", id)
			}
			if p.Op(id).Kind == OpFilter {
				if prev >= 0 && r > prev+1e-9 {
					t.Fatalf("rate grew along filter chain: %v → %v", prev, r)
				}
				prev = r
			}
		}
	}
}
