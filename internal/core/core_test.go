package core

import (
	"strings"
	"testing"

	"pdspbench/internal/tuple"
)

// linearPlan builds source → filter → aggregate → sink, the paper's
// simplest synthetic structure.
func linearPlan() *PQP {
	p := NewPQP("linear-test", "linear")
	schema := tuple.NewSchema(
		tuple.Field{Name: "k", Type: tuple.TypeInt},
		tuple.Field{Name: "v", Type: tuple.TypeDouble},
	)
	p.Add(&Operator{ID: "src", Kind: OpSource, Parallelism: 1,
		Source: &SourceSpec{Schema: schema, EventRate: 1000}, OutWidth: 2})
	p.Add(&Operator{ID: "f1", Kind: OpFilter, Parallelism: 4, Partition: PartitionRebalance,
		Filter: &FilterSpec{Field: 1, Fn: FilterGreater, Literal: tuple.Double(0.5), Selectivity: 0.5}, OutWidth: 2})
	p.Add(&Operator{ID: "agg", Kind: OpAggregate, Parallelism: 2, Partition: PartitionHash,
		Agg: &AggregateSpec{Window: WindowSpec{Type: WindowTumbling, Policy: PolicyCount, LengthTups: 100}, Fn: AggSum, Field: 1, KeyField: 0}, OutWidth: 2})
	p.Add(&Operator{ID: "sink", Kind: OpSink, Parallelism: 1, Partition: PartitionRebalance})
	p.Connect("src", "f1")
	p.Connect("f1", "agg")
	p.Connect("agg", "sink")
	return p
}

// joinPlan builds the paper's Figure 2 2-way join: two sources, two
// filters, a windowed join, an aggregate and a sink.
func joinPlan() *PQP {
	p := NewPQP("2way-test", "2-way-join")
	schema := tuple.NewSchema(
		tuple.Field{Name: "k", Type: tuple.TypeInt},
		tuple.Field{Name: "v", Type: tuple.TypeDouble},
	)
	for _, id := range []string{"src1", "src2"} {
		p.Add(&Operator{ID: id, Kind: OpSource, Parallelism: 1,
			Source: &SourceSpec{Schema: schema, EventRate: 1000}, OutWidth: 2})
	}
	p.Add(&Operator{ID: "f1", Kind: OpFilter, Parallelism: 2, Partition: PartitionRebalance,
		Filter: &FilterSpec{Field: 0, Fn: FilterLess, Literal: tuple.Int(500), Selectivity: 0.5}, OutWidth: 2})
	p.Add(&Operator{ID: "f2", Kind: OpFilter, Parallelism: 2, Partition: PartitionRebalance,
		Filter: &FilterSpec{Field: 0, Fn: FilterLess, Literal: tuple.Int(500), Selectivity: 0.5}, OutWidth: 2})
	p.Add(&Operator{ID: "join", Kind: OpJoin, Parallelism: 4, Partition: PartitionHash,
		Join: &JoinSpec{Window: WindowSpec{Type: WindowSliding, Policy: PolicyTime, LengthMs: 1000, SlideRatio: 0.5}, LeftField: 0, RightField: 0}, OutWidth: 4})
	p.Add(&Operator{ID: "sink", Kind: OpSink, Parallelism: 1})
	p.Connect("src1", "f1")
	p.Connect("src2", "f2")
	p.Connect("f1", "join")
	p.Connect("f2", "join")
	p.Connect("join", "sink")
	return p
}

func TestValidateAcceptsWellFormedPlans(t *testing.T) {
	for _, p := range []*PQP{linearPlan(), joinPlan()} {
		if err := p.Validate(); err != nil {
			t.Errorf("Validate(%s) = %v, want nil", p.Name, err)
		}
	}
}

func TestValidateRejectsMalformedPlans(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*PQP) *PQP
	}{
		{"no source", func(p *PQP) *PQP {
			q := NewPQP("bad", "x")
			q.Add(&Operator{ID: "sink", Kind: OpSink, Parallelism: 1})
			return q
		}},
		{"no sink", func(p *PQP) *PQP {
			q := NewPQP("bad", "x")
			q.Add(&Operator{ID: "src", Kind: OpSource, Parallelism: 1,
				Source: &SourceSpec{Schema: tuple.NewSchema(tuple.Field{Name: "a", Type: tuple.TypeInt}), EventRate: 1}})
			return q
		}},
		{"cycle", func(p *PQP) *PQP {
			p.Connect("sink", "f1")
			return p
		}},
		{"join with one input", func(p *PQP) *PQP {
			j := joinPlan()
			// Remove one edge into the join.
			var edges []Edge
			for _, e := range j.Edges {
				if !(e.From == "f2" && e.To == "join") {
					edges = append(edges, e)
				}
			}
			j.Edges = edges
			return j
		}},
		{"zero parallelism", func(p *PQP) *PQP {
			p.Op("f1").Parallelism = 0
			return p
		}},
		{"source with input", func(p *PQP) *PQP {
			p.Connect("f1", "src")
			return p
		}},
		{"dangling edge", func(p *PQP) *PQP {
			p.Connect("f1", "ghost")
			return p
		}},
		{"filter without spec", func(p *PQP) *PQP {
			p.Op("f1").Filter = nil
			return p
		}},
		{"bad window", func(p *PQP) *PQP {
			p.Op("agg").Agg.Window.LengthTups = 0
			return p
		}},
		{"zero event rate", func(p *PQP) *PQP {
			p.Op("src").Source.EventRate = 0
			return p
		}},
	}
	for _, c := range cases {
		p := c.mutate(linearPlan())
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted malformed plan", c.name)
		}
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	p := joinPlan()
	order, err := p.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[string]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range p.Edges {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("edge %s→%s violated in order %v", e.From, e.To, order)
		}
	}
	if len(order) != len(p.Operators) {
		t.Errorf("order has %d ops, want %d", len(order), len(p.Operators))
	}
}

func TestUpstreamDownstreamAndJoinInputOrder(t *testing.T) {
	p := joinPlan()
	ups := p.Upstream("join")
	if len(ups) != 2 || ups[0] != "f1" || ups[1] != "f2" {
		t.Errorf("Upstream(join) = %v, want [f1 f2] in edge order", ups)
	}
	downs := p.Downstream("src1")
	if len(downs) != 1 || downs[0] != "f1" {
		t.Errorf("Downstream(src1) = %v", downs)
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := joinPlan()
	q := p.Clone()
	q.Op("join").Parallelism = 99
	q.Op("join").Join.Window.LengthMs = 42
	q.Op("f1").Filter.Selectivity = 0.01
	if p.Op("join").Parallelism == 99 {
		t.Error("clone aliases Parallelism")
	}
	if p.Op("join").Join.Window.LengthMs == 42 {
		t.Error("clone aliases JoinSpec")
	}
	if p.Op("f1").Filter.Selectivity == 0.01 {
		t.Error("clone aliases FilterSpec")
	}
	if err := q.Validate(); err != nil {
		t.Errorf("clone invalid: %v", err)
	}
}

func TestSetUniformParallelismSkipsSourcesAndSinks(t *testing.T) {
	p := joinPlan()
	p.SetUniformParallelism(16)
	if p.Op("src1").Parallelism != 1 || p.Op("sink").Parallelism != 1 {
		t.Error("SetUniformParallelism should not change sources/sinks")
	}
	if p.Op("f1").Parallelism != 16 || p.Op("join").Parallelism != 16 {
		t.Error("SetUniformParallelism did not set processing operators")
	}
}

func TestTotalInstancesAndCounts(t *testing.T) {
	p := joinPlan()
	// src1(1)+src2(1)+f1(2)+f2(2)+join(4)+sink(1) = 11
	if got := p.TotalInstances(); got != 11 {
		t.Errorf("TotalInstances = %d, want 11", got)
	}
	if got := p.CountKind(OpFilter); got != 2 {
		t.Errorf("CountKind(filter) = %d, want 2", got)
	}
	if got := p.CountKind(OpJoin); got != 1 {
		t.Errorf("CountKind(join) = %d, want 1", got)
	}
}

func TestComplexityOrdersStructures(t *testing.T) {
	if linearPlan().Complexity() >= joinPlan().Complexity() {
		t.Error("a join plan must score more complex than a linear plan")
	}
}

func TestFilterFnEval(t *testing.T) {
	cases := []struct {
		fn   FilterFn
		v    tuple.Value
		lit  tuple.Value
		want bool
	}{
		{FilterLess, tuple.Int(1), tuple.Int(2), true},
		{FilterLess, tuple.Int(2), tuple.Int(2), false},
		{FilterLessEq, tuple.Int(2), tuple.Int(2), true},
		{FilterGreater, tuple.Double(3), tuple.Double(2), true},
		{FilterGreaterEq, tuple.Double(2), tuple.Double(2), true},
		{FilterEq, tuple.String("a"), tuple.String("a"), true},
		{FilterNotEq, tuple.String("a"), tuple.String("b"), true},
		{FilterStartsWith, tuple.String("hello"), tuple.String("he"), true},
		{FilterStartsWith, tuple.String("hello"), tuple.String("lo"), false},
		{FilterStartsWith, tuple.Int(5), tuple.String("5"), false}, // wrong kind
		{FilterContains, tuple.String("hello"), tuple.String("ell"), true},
		{FilterContains, tuple.String("hello"), tuple.String("xyz"), false},
		{FilterContains, tuple.String("hello"), tuple.String(""), true},
	}
	for _, c := range cases {
		if got := c.fn.Eval(c.v, c.lit); got != c.want {
			t.Errorf("%v.Eval(%v, %v) = %v, want %v", c.fn, c.v, c.lit, got, c.want)
		}
	}
}

func TestWindowSpecSlide(t *testing.T) {
	tumble := WindowSpec{Type: WindowTumbling, Policy: PolicyCount, LengthTups: 100}
	if got := tumble.Slide(); got != 100 {
		t.Errorf("tumbling slide = %v, want 100 (full length)", got)
	}
	slide := WindowSpec{Type: WindowSliding, Policy: PolicyCount, LengthTups: 100, SlideRatio: 0.3}
	if got := slide.Slide(); got != 30 {
		t.Errorf("sliding slide = %v, want 30", got)
	}
	timeW := WindowSpec{Type: WindowSliding, Policy: PolicyTime, LengthMs: 1000, SlideRatio: 0.5}
	if got := timeW.Slide(); got != 500 {
		t.Errorf("time sliding slide = %v, want 500", got)
	}
	// Degenerate ratio defaults to 0.5, and slide is floored at 1.
	weird := WindowSpec{Type: WindowSliding, Policy: PolicyCount, LengthTups: 1, SlideRatio: 0.3}
	if got := weird.Slide(); got != 1 {
		t.Errorf("tiny window slide = %v, want 1", got)
	}
}

func TestWindowSpecValidate(t *testing.T) {
	good := []WindowSpec{
		{Type: WindowTumbling, Policy: PolicyCount, LengthTups: 10},
		{Type: WindowSliding, Policy: PolicyTime, LengthMs: 250, SlideRatio: 0.5},
	}
	for _, w := range good {
		if err := w.Validate(); err != nil {
			t.Errorf("Validate(%v) = %v", w, err)
		}
	}
	bad := []WindowSpec{
		{Type: WindowTumbling, Policy: PolicyCount, LengthTups: 0},
		{Type: WindowTumbling, Policy: PolicyTime, LengthMs: -5},
		{Type: WindowSliding, Policy: PolicyCount, LengthTups: 10, SlideRatio: 0},
		{Type: WindowSliding, Policy: PolicyCount, LengthTups: 10, SlideRatio: 1.5},
	}
	for _, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("Validate(%v) accepted invalid spec", w)
		}
	}
}

func TestParallelismCategories(t *testing.T) {
	wantDegrees := map[ParallelismCategory]int{
		CatXS: 1, CatS: 2, CatM: 8, CatL: 32, CatXL: 128, CatXXL: 256,
	}
	for c, d := range wantDegrees {
		if c.Degree() != d {
			t.Errorf("%v.Degree() = %d, want %d", c, c.Degree(), d)
		}
	}
	for _, c := range AllCategories {
		got, err := ParseCategory(c.String())
		if err != nil || got != c {
			t.Errorf("ParseCategory(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseCategory("XXXL"); err == nil {
		t.Error("ParseCategory accepted unknown label")
	}
}

func TestCategoryForDegree(t *testing.T) {
	cases := []struct {
		d    int
		want ParallelismCategory
	}{
		{1, CatXS}, {2, CatS}, {3, CatS}, {8, CatM}, {16, CatM},
		{28, CatL}, {32, CatL}, {100, CatXL}, {128, CatXL}, {256, CatXXL}, {1000, CatXXL},
	}
	for _, c := range cases {
		if got := CategoryForDegree(c.d); got != c.want {
			t.Errorf("CategoryForDegree(%d) = %v, want %v", c.d, got, c.want)
		}
	}
}

func TestOperatorSelectivityAndCost(t *testing.T) {
	p := joinPlan()
	if got := p.Op("f1").Selectivity(); got != 0.5 {
		t.Errorf("filter selectivity = %v, want 0.5", got)
	}
	agg := linearPlan().Op("agg")
	if got := agg.Selectivity(); got != 0.01 { // 1/slide = 1/100
		t.Errorf("aggregate selectivity = %v, want 0.01", got)
	}
	if p.Op("join").CostFactor() <= p.Op("f1").CostFactor() {
		t.Error("join must cost more per tuple than filter")
	}
	udo := &Operator{Kind: OpUDO, UDO: &UDOSpec{CostFactor: 9, Selectivity: 0.25}}
	if udo.CostFactor() != 9 || udo.Selectivity() != 0.25 {
		t.Errorf("UDO cost/selectivity = %v/%v", udo.CostFactor(), udo.Selectivity())
	}
}

func TestDOTOutput(t *testing.T) {
	dot := joinPlan().DOT()
	for _, frag := range []string{"digraph", `"join"`, `"src1" -> "f1"`, "p=4"} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT output missing %q:\n%s", frag, dot)
		}
	}
}

func TestStringSummaries(t *testing.T) {
	s := linearPlan().String()
	if !strings.Contains(s, "source×1") || !strings.Contains(s, "filter×4") {
		t.Errorf("PQP.String() = %q", s)
	}
	if OpJoin.String() != "join" || PartitionHash.String() != "hashing" ||
		AggSum.String() != "sum" || WindowSliding.String() != "sliding" ||
		PolicyTime.String() != "time" || FilterGreaterEq.String() != ">=" {
		t.Error("enum String() methods disagree with paper vocabulary")
	}
}

func TestAddPanicsOnDuplicateID(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate operator ID")
		}
	}()
	p := NewPQP("dup", "x")
	p.Add(&Operator{ID: "a", Kind: OpSource})
	p.Add(&Operator{ID: "a", Kind: OpSink})
}
