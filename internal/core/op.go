// Package core defines the parallel query plan (PQP) model at the heart
// of PDSP-Bench: logical dataflow graphs whose operators carry explicit
// parallelism degrees, window configurations, and data-partitioning
// strategies. Both execution backends (the real in-process engine and the
// distributed-cluster simulator) and the learned cost models consume this
// one representation.
package core

import (
	"fmt"

	"pdspbench/internal/tuple"
)

// OpKind enumerates the operator vocabulary of the benchmark: the
// standard stream-processing operators the paper's synthetic queries use,
// plus user-defined operators (UDOs) for the real-world applications.
type OpKind int

const (
	OpSource OpKind = iota
	OpFilter
	OpMap
	OpFlatMap
	OpAggregate // windowed aggregation
	OpJoin      // windowed equi-join
	OpUDO       // user-defined operator with custom logic
	OpSink
)

var opKindNames = map[OpKind]string{
	OpSource:    "source",
	OpFilter:    "filter",
	OpMap:       "map",
	OpFlatMap:   "flatMap",
	OpAggregate: "aggregate",
	OpJoin:      "join",
	OpUDO:       "udo",
	OpSink:      "sink",
}

// String returns the lowercase operator name used in specs and figures.
func (k OpKind) String() string {
	if n, ok := opKindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// NumOpKinds is the size of the operator vocabulary; the ML feature
// encoders one-hot over this range.
const NumOpKinds = int(OpSink) + 1

// PartitionStrategy is how tuples are routed from an upstream operator's
// instances to a downstream operator's instances (Table 3: forward,
// rebalance, hashing).
type PartitionStrategy int

const (
	// PartitionForward sends tuples to the co-indexed downstream instance
	// (only valid when parallelism degrees are compatible); it avoids a
	// network shuffle.
	PartitionForward PartitionStrategy = iota
	// PartitionRebalance distributes tuples round-robin across all
	// downstream instances.
	PartitionRebalance
	// PartitionHash routes by key hash so that all tuples of a key reach
	// the same instance (required upstream of keyed windows and joins).
	PartitionHash
)

// String names the strategy as in the paper's Table 3.
func (p PartitionStrategy) String() string {
	switch p {
	case PartitionForward:
		return "forward"
	case PartitionRebalance:
		return "rebalance"
	case PartitionHash:
		return "hashing"
	default:
		return fmt.Sprintf("PartitionStrategy(%d)", int(p))
	}
}

// FilterFn enumerates filter comparison functions (Table 3 lists
// comparison functions over string, integer and double literals).
type FilterFn int

const (
	FilterLess FilterFn = iota
	FilterLessEq
	FilterGreater
	FilterGreaterEq
	FilterEq
	FilterNotEq
	FilterStartsWith // string-typed fields only
	FilterContains   // string-typed fields only
)

// String renders the comparison symbol.
func (f FilterFn) String() string {
	switch f {
	case FilterLess:
		return "<"
	case FilterLessEq:
		return "<="
	case FilterGreater:
		return ">"
	case FilterGreaterEq:
		return ">="
	case FilterEq:
		return "=="
	case FilterNotEq:
		return "!="
	case FilterStartsWith:
		return "startsWith"
	case FilterContains:
		return "contains"
	default:
		return fmt.Sprintf("FilterFn(%d)", int(f))
	}
}

// NumericFilterFns are the comparison functions valid on every data type.
var NumericFilterFns = []FilterFn{FilterLess, FilterLessEq, FilterGreater, FilterGreaterEq, FilterEq, FilterNotEq}

// Eval applies the comparison of field value v against literal lit.
func (f FilterFn) Eval(v, lit tuple.Value) bool {
	switch f {
	case FilterLess:
		return v.Compare(lit) < 0
	case FilterLessEq:
		return v.Compare(lit) <= 0
	case FilterGreater:
		return v.Compare(lit) > 0
	case FilterGreaterEq:
		return v.Compare(lit) >= 0
	case FilterEq:
		return v.Equal(lit)
	case FilterNotEq:
		return !v.Equal(lit)
	case FilterStartsWith:
		return v.Kind == tuple.TypeString && lit.Kind == tuple.TypeString &&
			len(v.S) >= len(lit.S) && v.S[:len(lit.S)] == lit.S
	case FilterContains:
		return v.Kind == tuple.TypeString && lit.Kind == tuple.TypeString && contains(v.S, lit.S)
	default:
		return false
	}
}

func contains(s, sub string) bool {
	if len(sub) == 0 {
		return true
	}
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// AggFn enumerates window aggregation functions (Table 3: min, max, avg,
// mean, sum). The paper lists avg and mean separately — avg is the
// windowed running average over the aggregation field while mean is the
// per-key mean — and we keep both for fidelity, plus count which several
// real-world applications (word count, trending topics) need.
type AggFn int

const (
	AggMin AggFn = iota
	AggMax
	AggAvg
	AggMean
	AggSum
	AggCount
)

// String names the aggregate function.
func (a AggFn) String() string {
	switch a {
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	case AggMean:
		return "mean"
	case AggSum:
		return "sum"
	case AggCount:
		return "count"
	default:
		return fmt.Sprintf("AggFn(%d)", int(a))
	}
}

// AllAggFns is the enumerator's domain for window aggregation functions.
var AllAggFns = []AggFn{AggMin, AggMax, AggAvg, AggMean, AggSum}

// WindowType distinguishes sliding from tumbling windows (Table 3),
// plus session windows (gap-separated activity bursts, Nexmark Q11).
type WindowType int

const (
	WindowTumbling WindowType = iota
	WindowSliding
	// WindowSession groups tuples into per-key activity sessions: a
	// session extends while consecutive events arrive within GapMs of
	// each other and closes — fires — once the watermark passes the last
	// event plus the gap. Session windows are event-time only
	// (PolicyTime) because the gap is a statement about event time.
	WindowSession
)

// String names the window type.
func (w WindowType) String() string {
	switch w {
	case WindowTumbling:
		return "tumbling"
	case WindowSession:
		return "session"
	default:
		return "sliding"
	}
}

// WindowPolicy distinguishes count-based from time-based windows.
type WindowPolicy int

const (
	PolicyCount WindowPolicy = iota
	PolicyTime
)

// String names the window policy.
func (w WindowPolicy) String() string {
	if w == PolicyCount {
		return "count"
	}
	return "time"
}

// WindowSpec configures a window: its type (tumbling/sliding), policy
// (count/time), size, and — for sliding windows — the slide expressed as
// a ratio of the window length, mirroring Table 3's 0.3–0.7 range.
type WindowSpec struct {
	Type       WindowType   `json:"type"`
	Policy     WindowPolicy `json:"policy"`
	LengthMs   int64        `json:"length_ms"`     // time policy: window duration
	LengthTups int          `json:"length_tuples"` // count policy: window size in tuples
	SlideRatio float64      `json:"slide_ratio"`   // sliding only: slide = ratio × length
	// GapMs is the session-window inactivity gap (WindowSession only):
	// two events of a key belong to the same session when their event
	// times are within GapMs of each other.
	GapMs int64 `json:"gap_ms,omitempty"`
}

// Slide returns the effective slide of the window in its policy's unit
// (ms or tuples). Tumbling windows slide by their full length; session
// windows report their gap (the cadence at which sessions can close).
func (w WindowSpec) Slide() float64 {
	if w.Type == WindowSession {
		return float64(w.GapMs)
	}
	length := float64(w.LengthTups)
	if w.Policy == PolicyTime {
		length = float64(w.LengthMs)
	}
	if w.Type == WindowTumbling {
		return length
	}
	r := w.SlideRatio
	if r <= 0 || r > 1 {
		r = 0.5
	}
	s := r * length
	if s < 1 {
		s = 1
	}
	return s
}

// Length returns the window length in its policy's unit. Session
// windows have no fixed length; their gap is the closest analogue (the
// expected extent of a session under bursty arrivals).
func (w WindowSpec) Length() float64 {
	if w.Type == WindowSession {
		return float64(w.GapMs)
	}
	if w.Policy == PolicyTime {
		return float64(w.LengthMs)
	}
	return float64(w.LengthTups)
}

// Validate checks the spec is internally consistent.
func (w WindowSpec) Validate() error {
	if w.Type == WindowSession {
		if w.Policy != PolicyTime {
			return fmt.Errorf("core: session windows are event-time only, got policy %s", w.Policy)
		}
		if w.GapMs <= 0 {
			return fmt.Errorf("core: session window needs GapMs > 0, got %d", w.GapMs)
		}
		return nil
	}
	switch w.Policy {
	case PolicyTime:
		if w.LengthMs <= 0 {
			return fmt.Errorf("core: time window needs LengthMs > 0, got %d", w.LengthMs)
		}
	case PolicyCount:
		if w.LengthTups <= 0 {
			return fmt.Errorf("core: count window needs LengthTups > 0, got %d", w.LengthTups)
		}
	default:
		return fmt.Errorf("core: unknown window policy %d", w.Policy)
	}
	if w.Type == WindowSliding && (w.SlideRatio <= 0 || w.SlideRatio > 1) {
		return fmt.Errorf("core: sliding window needs SlideRatio in (0,1], got %g", w.SlideRatio)
	}
	return nil
}

// String renders the window for figure labels.
func (w WindowSpec) String() string {
	if w.Type == WindowSession {
		return fmt.Sprintf("session(gap=%dms)", w.GapMs)
	}
	if w.Policy == PolicyTime {
		return fmt.Sprintf("%s/%s(%dms,slide=%.1f)", w.Type, w.Policy, w.LengthMs, w.SlideRatio)
	}
	return fmt.Sprintf("%s/%s(%d tuples,slide=%.1f)", w.Type, w.Policy, w.LengthTups, w.SlideRatio)
}
