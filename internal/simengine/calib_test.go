package simengine

// Calibration harness: prints latency-vs-parallelism curves for manual
// inspection of the figure shapes. Run with:
//
//	go test ./internal/simengine -run TestCalibration -v -calib
//
// It is skipped by default so CI stays fast.

import (
	"flag"
	"fmt"
	"testing"

	"pdspbench/internal/cluster"
	"pdspbench/internal/core"
	"pdspbench/internal/tuple"
	"pdspbench/internal/workload"
)

var calib = flag.Bool("calib", false, "print calibration curves")

func TestCalibration(t *testing.T) {
	if !*calib {
		t.Skip("calibration output disabled; pass -calib")
	}
	cl := cluster.NewHomogeneous("m510x5", cluster.M510, 5)
	cfg := Defaults()
	for _, st := range workload.Structures {
		fmt.Printf("%-18s", st)
		for _, cat := range core.AllCategories {
			p := baseParams()
			plan, err := workload.Build(st, p)
			if err != nil {
				t.Fatal(err)
			}
			plan.SetUniformParallelism(cat.Degree())
			pl, err := cluster.Place(plan, cl, cluster.PlaceRoundRobin)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Simulate(plan, pl, cfg)
			if err != nil {
				t.Fatal(err)
			}
			fmt.Printf(" %s=%8.1fms", cat, res.LatencyP50*1000)
		}
		fmt.Println()
	}
}

func baseParams() workload.Params {
	return workload.Params{
		EventRate:  100_000,
		TupleWidth: 5,
		FieldTypes: []tuple.Type{tuple.TypeInt, tuple.TypeInt, tuple.TypeDouble, tuple.TypeDouble, tuple.TypeString},
		Window: core.WindowSpec{
			Type: core.WindowSliding, Policy: core.PolicyTime, LengthMs: 1000, SlideRatio: 0.5,
		},
		AggFn:        core.AggSum,
		FilterFn:     core.FilterLess,
		Selectivity:  0.5,
		Partition:    core.PartitionRebalance,
		Distribution: "poisson",
	}
}
