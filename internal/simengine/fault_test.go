package simengine

import (
	"encoding/json"
	"errors"
	"testing"

	"pdspbench/internal/chaos"
	"pdspbench/internal/cluster"
	"pdspbench/internal/workload"
)

// faultedCfg arms the given schedule on the fast test configuration.
func faultedCfg(events []chaos.Event, maxRestarts int) Config {
	cfg := fastCfg()
	cfg.Faults = events
	cfg.MaxRestarts = maxRestarts
	cfg.RestartDelay = 0.05
	return cfg
}

func TestSimCrashRestartCompletes(t *testing.T) {
	cl := cluster.NewHomogeneous("ho", cluster.M510, 5)
	plan, pl := buildAndPlace(t, workload.StructLinear, params(50_000), 2, cl)
	cfg := faultedCfg([]chaos.Event{
		{At: 2, Kind: chaos.KindCrash, Op: "filter1", Instance: 0},
	}, 1)
	// A long outage guarantees arrivals land while the instance is down,
	// exercising the re-route path.
	cfg.RestartDelay = 1
	res, err := Simulate(plan, pl, cfg)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if res.FaultsInjected != 1 {
		t.Errorf("FaultsInjected = %d, want 1", res.FaultsInjected)
	}
	if res.Restarts != 1 {
		t.Errorf("Restarts = %d, want 1", res.Restarts)
	}
	if res.DowntimeSec <= 0 {
		t.Error("no downtime recorded for a restarted instance")
	}
	if res.RecoveredTuples <= 0 {
		t.Error("no service re-routed to the surviving sibling during the outage")
	}
	if res.Throughput <= 0 {
		t.Error("faulted run delivered nothing")
	}
}

func TestSimKillLastInstanceReturnsFaultError(t *testing.T) {
	cl := cluster.NewHomogeneous("ho", cluster.M510, 5)
	plan, pl := buildAndPlace(t, workload.StructLinear, params(50_000), 2, cl)
	_, err := Simulate(plan, pl, faultedCfg([]chaos.Event{
		{At: 2, Kind: chaos.KindCrash, Op: "filter1", Instance: 0},
		{At: 2, Kind: chaos.KindCrash, Op: "filter1", Instance: 1},
	}, 0))
	if err == nil {
		t.Fatal("killing every instance of an operator completed without error")
	}
	var fe *chaos.FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("error %v (%T) is not a *chaos.FaultError", err, err)
	}
	if fe.Op != "filter1" {
		t.Errorf("FaultError.Op = %q, want %q", fe.Op, "filter1")
	}
}

func TestSimNodeDownRevivesWithoutBudget(t *testing.T) {
	cl := cluster.NewHomogeneous("ho", cluster.M510, 5)
	plan, pl := buildAndPlace(t, workload.StructLinear, params(50_000), 2, cl)
	// A node-down outage revives on schedule even with a zero restart
	// budget — only budgeted crashes consume it.
	res, err := Simulate(plan, pl, faultedCfg([]chaos.Event{
		{At: 2, Kind: chaos.EvDown, Op: "filter1", Instance: 0, Duration: 0.5},
	}, 0))
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if res.Restarts != 1 {
		t.Errorf("Restarts = %d, want 1 (node recovery)", res.Restarts)
	}
	if res.DowntimeSec < 0.5 {
		t.Errorf("DowntimeSec = %v, want >= 0.5", res.DowntimeSec)
	}
}

func TestSimLinkDropThinsStream(t *testing.T) {
	cl := cluster.NewHomogeneous("ho", cluster.M510, 5)
	plan, pl := buildAndPlace(t, workload.StructLinear, params(50_000), 2, cl)
	base, err := Simulate(plan, pl, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(plan, pl, faultedCfg([]chaos.Event{
		{At: 2, Kind: chaos.KindLinkDrop, Op: "filter1", Instance: -1, Duration: 4, Factor: 0.5},
	}, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.LostTuples <= 0 {
		t.Error("drop window recorded no lost tuples")
	}
	// The keyed aggregate emits per key, so the sink count does not thin;
	// the thinned stream shows up as less work at the aggregate instead.
	if res.Utilization["agg"] >= base.Utilization["agg"] {
		t.Errorf("agg utilization %v not below fault-free %v despite dropped input",
			res.Utilization["agg"], base.Utilization["agg"])
	}
}

func TestSimSourceStallReducesInput(t *testing.T) {
	cl := cluster.NewHomogeneous("ho", cluster.M510, 5)
	plan, pl := buildAndPlace(t, workload.StructLinear, params(50_000), 2, cl)
	base, err := Simulate(plan, pl, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(plan, pl, faultedCfg([]chaos.Event{
		{At: 1, Kind: chaos.EvStall, Op: "src", Instance: 0, Duration: 3},
	}, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.TuplesIn >= base.TuplesIn {
		t.Errorf("stalled run ingested %v tuples, fault-free run %v", res.TuplesIn, base.TuplesIn)
	}
}

// TestSimFaultedRunDeterministic is the seed-determinism regression
// gate: the same configuration (fault schedule included) must produce a
// byte-identical Result, and different seeds must not.
func TestSimFaultedRunDeterministic(t *testing.T) {
	cl := cluster.NewHomogeneous("ho", cluster.M510, 5)
	plan, pl := buildAndPlace(t, workload.StructTwoFilter, params(50_000), 2, cl)
	cfg := faultedCfg([]chaos.Event{
		{At: 1.5, Kind: chaos.KindCrash, Op: "filter1", Instance: 0},
		{At: 3, Kind: chaos.KindLinkDelay, Op: "agg", Instance: -1, Duration: 2, Factor: 0.005},
	}, 2)
	run := func(seed int64) []byte {
		c := cfg
		c.Seed = seed
		res, err := Simulate(plan, pl, c)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(7), run(7)
	if string(a) != string(b) {
		t.Fatalf("same seed produced different results:\n%s\n%s", a, b)
	}
	if string(run(8)) == string(a) {
		t.Error("different seeds produced byte-identical results")
	}
}
