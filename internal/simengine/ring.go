package simengine

// ring is a growable head-indexed circular FIFO. The simulator's server
// queues previously advanced with `queue = queue[1:]`, which keeps every
// served element reachable through the slice's backing array for the
// run's lifetime (and forces a fresh allocation each time append
// exhausts the shifted capacity). The ring reuses its buffer in place:
// pops advance the head index and pushes wrap around, so a queue that
// oscillates between deep and empty touches one allocation per doubling
// instead of one per refill.
//
// Served slots are not zeroed — the element types queued here (batch,
// int) are pointer-free, so stale values retain nothing.
type ring[T any] struct {
	buf  []T
	head int
	n    int
}

func (q *ring[T]) len() int { return q.n }

func (q *ring[T]) push(v T) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = v
	q.n++
}

func (q *ring[T]) pop() T {
	v := q.buf[q.head]
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return v
}

// grow doubles capacity (power of two, so wraparound is a mask) and
// compacts the live window to the front.
func (q *ring[T]) grow() {
	c := len(q.buf) * 2
	if c == 0 {
		c = 8
	}
	nb := make([]T, c)
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf, q.head = nb, 0
}
