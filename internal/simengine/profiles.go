package simengine

// SUT profiles. The paper selects "Apache Flink v1.16.1 as SUT, however
// this can be exchanged by any SPS". In this reproduction a System Under
// Test is a calibrated cost profile for the simulator: per-tuple and
// per-message costs, network constants and coordination overheads that
// characterize how a particular engine executes the same PQP. Profiles
// let the benchmark compare SUTs on identical workloads, the way the
// YSB/Karimov benchmarks compare Flink, Storm and Spark Streaming.

// Profile names a calibrated SUT configuration.
type Profile struct {
	Name string
	// Describe summarizes what distinguishes the profile.
	Describe string
	Config   Config
}

// FlinkProfile is the default calibration (the paper's SUT): efficient
// per-record pipelining with moderate per-message overhead and
// log-factor window coordination.
func FlinkProfile() Profile {
	return Profile{
		Name:     "flink",
		Describe: "pipelined per-record engine, network buffers, log-factor window sync (default calibration)",
		Config:   Defaults(),
	}
}

// StormProfile models a Storm-like per-tuple acker topology: cheaper
// window machinery (no managed window state) but markedly higher
// per-message cost (per-tuple acking) and network latency sensitivity.
func StormProfile() Profile {
	cfg := Defaults()
	cfg.MsgCost = 150e-6 // per-tuple acking dominates small messages
	cfg.TupleCost = 1.3e-6
	cfg.SyncCost = 180e-6 // lighter window coordination
	cfg.NetLatency = 0.5e-3
	return Profile{
		Name:     "storm",
		Describe: "acker-based engine: high per-message cost, light window machinery",
		Config:   cfg,
	}
}

// MicroBatchProfile models a Spark-Streaming-like micro-batch engine:
// very low per-message overheads (large batches amortize everything) but
// a scheduling delay floor added to every result.
func MicroBatchProfile() Profile {
	cfg := Defaults()
	cfg.MsgCost = 20e-6
	cfg.TupleCost = 0.9e-6
	cfg.SyncCost = 900e-6 // per-batch scheduling on every window firing
	return Profile{
		Name:     "microbatch",
		Describe: "micro-batch engine: amortized messaging, per-batch scheduling floor",
		Config:   cfg,
	}
}

// Profiles lists the built-in SUT calibrations.
func Profiles() []Profile {
	return []Profile{FlinkProfile(), StormProfile(), MicroBatchProfile()}
}

// ProfileByName resolves a profile; ok is false for unknown names.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
