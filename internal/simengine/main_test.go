package simengine

import (
	"os"
	"testing"

	"pdspbench/internal/testutil"
)

// TestMain gates the whole package on goroutine hygiene: the simulator
// is single-threaded by design, so no test may leave goroutines behind.
func TestMain(m *testing.M) {
	os.Exit(testutil.RunMain(m))
}
