package simengine

import (
	"math/rand"
	"testing"
)

// TestRingFIFOAgainstReference drives the ring with a random
// push/pop schedule and checks it against a reference slice queue,
// crossing the wraparound and growth boundaries many times.
func TestRingFIFOAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var q ring[int]
	var ref []int
	next := 0
	for step := 0; step < 10_000; step++ {
		if q.len() != len(ref) {
			t.Fatalf("step %d: len = %d, reference %d", step, q.len(), len(ref))
		}
		if len(ref) == 0 || rng.Intn(3) != 0 {
			q.push(next)
			ref = append(ref, next)
			next++
			continue
		}
		got := q.pop()
		want := ref[0]
		ref = ref[1:]
		if got != want {
			t.Fatalf("step %d: pop = %d, want %d", step, got, want)
		}
	}
	for len(ref) > 0 {
		if got := q.pop(); got != ref[0] {
			t.Fatalf("drain: pop = %d, want %d", got, ref[0])
		}
		ref = ref[1:]
	}
	if q.len() != 0 {
		t.Fatalf("drained ring reports len %d", q.len())
	}
}

// TestRingReusesBufferInPlace: a queue that oscillates between deep and
// empty must not grow past the deepest watermark — the property that
// fixes the old queue[1:] retention/realloc pattern.
func TestRingReusesBufferInPlace(t *testing.T) {
	var q ring[int]
	for i := 0; i < 16; i++ {
		q.push(i)
	}
	capAfterFill := len(q.buf)
	for round := 0; round < 1000; round++ {
		for i := 0; i < 16; i++ {
			q.pop()
		}
		for i := 0; i < 16; i++ {
			q.push(i)
		}
	}
	if len(q.buf) != capAfterFill {
		t.Errorf("buffer grew from %d to %d under steady oscillation", capAfterFill, len(q.buf))
	}
}
