package simengine

import (
	"math"

	"pdspbench/internal/core"
)

// Event-time mirror of the real engine's watermark plane (see
// internal/engine/watermark.go). The DES works on batch counts, not
// individual tuples, so watermark semantics reduce to two effects:
//
//   - firing delay: a time-policy window [t, t+len) fires when the
//     watermark passes t+len plus the allowed lateness, and the
//     watermark lags the stream frontier by the source's disorder skew —
//     so every firing shifts by wmLag = skew + lateness of simulated
//     time, which shows up as window residence in the latency breakdown
//     exactly as it does on the real engine;
//   - late drops: the fraction of tuples whose disorder delay exceeds
//     skew + lateness arrives behind the watermark allowance and is
//     dropped at time-policy windowed operators, counted in
//     Result.LateDrops. The fraction is computed analytically from the
//     disorder distribution, so seeded DES runs stay deterministic.

// setupEventTime derives wmLag and lateFrac from the plan's source
// disorder specs and the configured lateness.
func (s *sim) setupEventTime() {
	maxSkew := 0.0
	worstFrac := 0.0
	for _, src := range s.plan.Sources() {
		d := src.Source.Disorder
		if d == nil {
			continue
		}
		skew := float64(d.MaxSkewMs) / 1000
		if skew > maxSkew {
			maxSkew = skew
		}
		// Bounded disorder delays by at most the skew, and the watermark
		// lags the frontier by exactly the skew, so no bounded tuple is
		// ever late — only the zipf burst's heavy tail drops.
		if d.Kind == core.DisorderZipfBurst {
			if f := zipfBurstLateFrac(skew, s.cfg.AllowedLateness); f > worstFrac {
				worstFrac = f
			}
		}
	}
	s.wmLag = maxSkew + s.cfg.AllowedLateness
	s.lateFrac = worstFrac
}

// zipfBurstLateFrac is the probability that a zipfburst disorder delay
// exceeds the watermark skew plus the allowed lateness — the analytic
// counterpart of stream.Disordered's sampler (Zipf s=1.5 over 100
// delay levels scaled to 4× the skew), so the DES backend reports the
// same expected late-drop rate without simulating individual tuples.
func zipfBurstLateFrac(skew, lateness float64) float64 {
	const (
		levels = 100
		scale  = 4.0
		sExp   = 1.5
	)
	if skew <= 0 {
		return 0
	}
	var total, late float64
	for k := 0; k < levels; k++ {
		w := math.Pow(float64(1+k), -sExp)
		total += w
		if float64(k)*scale*skew/float64(levels-1) > skew+lateness {
			late += w
		}
	}
	return late / total
}

// dropLate removes the analytic late fraction from a batch arriving at
// a time-policy windowed operator — the DES counterpart of the engine's
// drop-and-count (never reorder) policy. Count-policy windows are
// arrival-driven on both backends and never drop.
func (s *sim) dropLate(inst *instance, b *batch) {
	if s.lateFrac == 0 {
		return
	}
	w := inst.op.WindowSpecOf()
	if w == nil || w.Policy != core.PolicyTime {
		return
	}
	lost := b.count * s.lateFrac
	b.count -= lost
	s.lateDrops += lost
}
