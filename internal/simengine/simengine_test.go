package simengine

import (
	"math"
	"testing"

	"pdspbench/internal/cluster"
	"pdspbench/internal/core"
	"pdspbench/internal/testutil"
	"pdspbench/internal/tuple"
	"pdspbench/internal/workload"
)

func params(rate float64) workload.Params {
	return workload.Params{
		EventRate:  rate,
		TupleWidth: 4,
		FieldTypes: []tuple.Type{tuple.TypeInt, tuple.TypeDouble, tuple.TypeDouble, tuple.TypeString},
		Window:     core.WindowSpec{Type: core.WindowSliding, Policy: core.PolicyTime, LengthMs: 1000, SlideRatio: 0.5},
		AggFn:      core.AggSum, FilterFn: core.FilterLess, Selectivity: 0.5,
		Partition: core.PartitionRebalance, Distribution: "poisson",
	}
}

func buildAndPlace(t *testing.T, s workload.Structure, p workload.Params, degree int, cl *cluster.Cluster) (*core.PQP, *cluster.Placement) {
	t.Helper()
	plan, err := workload.Build(s, p)
	if err != nil {
		t.Fatal(err)
	}
	plan.SetUniformParallelism(degree)
	pl, err := cluster.Place(plan, cl, cluster.PlaceRoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	return plan, pl
}

func fastCfg() Config {
	cfg := Defaults()
	cfg.Duration = 8
	cfg.SourceBatches = 64
	return cfg
}

func TestSimulateBasicSanity(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	cl := cluster.NewHomogeneous("ho", cluster.M510, 5)
	plan, pl := buildAndPlace(t, workload.StructLinear, params(50_000), 4, cl)
	res, err := Simulate(plan, pl, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.LatencyP50 <= 0 {
		t.Errorf("latency %v", res.LatencyP50)
	}
	if res.LatencyP95 < res.LatencyP50 {
		t.Errorf("p95 %v below p50 %v", res.LatencyP95, res.LatencyP50)
	}
	if res.Throughput <= 0 {
		t.Errorf("throughput %v", res.Throughput)
	}
	if res.TuplesIn <= 0 || res.TuplesOut <= 0 {
		t.Errorf("tuples in/out %v/%v", res.TuplesIn, res.TuplesOut)
	}
	// Filter (sel 0.5) and window aggregation thin the stream hugely;
	// output must be well below input.
	if res.TuplesOut >= res.TuplesIn {
		t.Errorf("output %v not thinned below input %v", res.TuplesOut, res.TuplesIn)
	}
	if res.DeliveredBatches == 0 {
		t.Error("no delivered batches recorded")
	}
	if _, ok := res.Utilization["filter1"]; !ok {
		t.Error("per-operator utilization missing")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	cl := cluster.NewHomogeneous("ho", cluster.M510, 5)
	plan, pl := buildAndPlace(t, workload.StructTwoWayJoin, params(50_000), 4, cl)
	cfg := fastCfg()
	a, err := Simulate(plan, pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(plan, pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.LatencyP50 != b.LatencyP50 || a.TuplesOut != b.TuplesOut {
		t.Errorf("same seed differs: %v/%v vs %v/%v", a.LatencyP50, a.TuplesOut, b.LatencyP50, b.TuplesOut)
	}
	cfg.Seed = 99
	c, err := Simulate(plan, pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.LatencyP50 == a.LatencyP50 && c.TuplesOut == a.TuplesOut {
		t.Error("different seeds produced identical runs")
	}
}

func TestWindowResidenceDominatesLatency(t *testing.T) {
	cl := cluster.NewHomogeneous("ho", cluster.M510, 5)
	short := params(20_000)
	short.Window.LengthMs = 250
	long := params(20_000)
	long.Window.LengthMs = 3000
	planS, plS := buildAndPlace(t, workload.StructLinear, short, 4, cl)
	planL, plL := buildAndPlace(t, workload.StructLinear, long, 4, cl)
	rs, err := Simulate(planS, plS, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	rl, err := Simulate(planL, plL, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if rl.LatencyP50 <= rs.LatencyP50*2 {
		t.Errorf("3000ms window latency %v not well above 250ms window %v", rl.LatencyP50, rs.LatencyP50)
	}
}

func TestSaturationAtLowParallelism(t *testing.T) {
	// A UDO-heavy plan at parallelism 1 must saturate and queue; the same
	// plan at 16 must not.
	cl := cluster.NewHomogeneous("ho", cluster.M510, 5)
	plan := core.NewPQP("udo-test", "udo")
	schema := tuple.NewSchema(tuple.Field{Name: "k", Type: tuple.TypeInt}, tuple.Field{Name: "v", Type: tuple.TypeDouble})
	plan.Add(&core.Operator{ID: "src", Kind: core.OpSource, Parallelism: 1,
		Source: &core.SourceSpec{Schema: schema, EventRate: 500_000}, OutWidth: 2})
	plan.Add(&core.Operator{ID: "u", Kind: core.OpUDO, Parallelism: 1, Partition: core.PartitionHash,
		UDO: &core.UDOSpec{Name: "heavy", CostFactor: 15, Selectivity: 0.1}, OutWidth: 2})
	plan.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1, Partition: core.PartitionRebalance})
	plan.Connect("src", "u")
	plan.Connect("u", "sink")

	pl1, _ := cluster.Place(plan, cl, cluster.PlaceRoundRobin)
	res1, err := Simulate(plan, pl1, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !res1.Saturated {
		t.Errorf("500k ev/s × 15µs on one instance should saturate (util=%v)", res1.Utilization["u"])
	}
	wide := plan.Clone()
	wide.SetUniformParallelism(16)
	pl16, _ := cluster.Place(wide, cl, cluster.PlaceRoundRobin)
	res16, err := Simulate(wide, pl16, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res16.LatencyP50*3 > res1.LatencyP50 {
		t.Errorf("parallelism did not relieve saturation: p1=%v p16=%v", res1.LatencyP50, res16.LatencyP50)
	}
	if res16.Utilization["u"] >= res1.Utilization["u"] {
		t.Errorf("per-instance utilization did not drop: %v vs %v", res16.Utilization["u"], res1.Utilization["u"])
	}
}

func TestFasterHardwareReducesLatencyUnderLoad(t *testing.T) {
	// Near saturation, per-core speed matters: the EPYC cluster must beat
	// m510 for the same plan and degree.
	slow := cluster.NewHomogeneous("m510", cluster.M510, 5)
	fast := cluster.NewHomogeneous("epyc", cluster.C6525_25G, 5)
	p := params(500_000)
	planA, plA := buildAndPlace(t, workload.StructThreeJoin, p, 4, slow)
	planB, plB := buildAndPlace(t, workload.StructThreeJoin, p, 4, fast)
	ra, err := Simulate(planA, plA, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Simulate(planB, plB, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if rb.LatencyP50 >= ra.LatencyP50 {
		t.Errorf("EPYC latency %v not below m510 %v under load", rb.LatencyP50, ra.LatencyP50)
	}
}

func TestTotalCollapseReportsDurationLatency(t *testing.T) {
	// An impossibly overloaded instance delivers nothing; the result must
	// flag saturation with a duration-scale latency, not zero.
	cl := cluster.NewHomogeneous("ho", cluster.M510, 1)
	plan := core.NewPQP("collapse", "udo")
	schema := tuple.NewSchema(tuple.Field{Name: "v", Type: tuple.TypeDouble})
	plan.Add(&core.Operator{ID: "src", Kind: core.OpSource, Parallelism: 1,
		Source: &core.SourceSpec{Schema: schema, EventRate: 4_000_000}, OutWidth: 1})
	plan.Add(&core.Operator{ID: "u", Kind: core.OpUDO, Parallelism: 1, Partition: core.PartitionRebalance,
		UDO: &core.UDOSpec{Name: "impossible", CostFactor: 500, Selectivity: 1}, OutWidth: 1})
	plan.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1})
	plan.Connect("src", "u")
	plan.Connect("u", "sink")
	pl, _ := cluster.Place(plan, cl, cluster.PlaceRoundRobin)
	cfg := fastCfg()
	res, err := Simulate(plan, pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LatencyP50 < cfg.Duration/2 {
		t.Errorf("collapsed run reports latency %v; want duration-scale", res.LatencyP50)
	}
	if !res.Saturated {
		t.Error("collapsed run not flagged saturated")
	}
}

func TestZipfSkewRaisesHotPartitionLoad(t *testing.T) {
	cl := cluster.NewHomogeneous("ho", cluster.M510, 5)
	pois := params(200_000)
	zipf := params(200_000)
	zipf.Distribution = "zipf"
	planP, plP := buildAndPlace(t, workload.StructLinear, pois, 8, cl)
	planZ, plZ := buildAndPlace(t, workload.StructLinear, zipf, 8, cl)
	rp, err := Simulate(planP, plP, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	rz, err := Simulate(planZ, plZ, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	// The aggregate is hash-partitioned; under zipf its hottest instance
	// must be busier than under uniform keys.
	if rz.Utilization["agg"] <= rp.Utilization["agg"] {
		t.Errorf("zipf agg utilization %v not above poisson %v", rz.Utilization["agg"], rp.Utilization["agg"])
	}
}

func TestMedianOfRunsAveragesSeeds(t *testing.T) {
	cl := cluster.NewHomogeneous("ho", cluster.M510, 5)
	plan, pl := buildAndPlace(t, workload.StructLinear, params(50_000), 4, cl)
	med, results, err := MedianOfRuns(plan, pl, fastCfg(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	var sum float64
	same := true
	for _, r := range results {
		sum += r.LatencyP50
		if r.LatencyP50 != results[0].LatencyP50 {
			same = false
		}
	}
	if same {
		t.Error("runs share identical medians; seeds not varied")
	}
	if math.Abs(med-sum/3) > 1e-12 {
		t.Errorf("median-of-runs %v != mean of medians %v", med, sum/3)
	}
}

func TestSimulateRejectsInvalidPlan(t *testing.T) {
	cl := cluster.NewHomogeneous("ho", cluster.M510, 2)
	bad := core.NewPQP("bad", "x")
	bad.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1})
	if _, err := Simulate(bad, &cluster.Placement{Cluster: cl}, fastCfg()); err == nil {
		t.Error("invalid plan accepted")
	}
}

func TestSimulateRejectsMismatchedPlacement(t *testing.T) {
	cl := cluster.NewHomogeneous("ho", cluster.M510, 2)
	plan, pl := buildAndPlace(t, workload.StructLinear, params(10_000), 4, cl)
	plan.Op("filter1").Parallelism = 8 // placement was computed for 4
	if _, err := Simulate(plan, pl, fastCfg()); err == nil {
		t.Error("placement/parallelism mismatch accepted")
	}
}

func TestConfigDefaultsFillZeroes(t *testing.T) {
	cfg := Config{}.withDefaults()
	d := Defaults()
	if cfg.Duration != d.Duration || cfg.TupleCost != d.TupleCost || cfg.KeyCardinality != d.KeyCardinality {
		t.Errorf("withDefaults left gaps: %+v", cfg)
	}
	custom := Config{Duration: 3, TupleCost: 5e-6}.withDefaults()
	if custom.Duration != 3 || custom.TupleCost != 5e-6 {
		t.Error("withDefaults overwrote explicit values")
	}
	if custom.MsgCost != d.MsgCost {
		t.Error("withDefaults did not fill remaining fields")
	}
}

func TestCountPolicyWindowsFire(t *testing.T) {
	cl := cluster.NewHomogeneous("ho", cluster.M510, 5)
	p := params(50_000)
	p.Window = core.WindowSpec{Type: core.WindowTumbling, Policy: core.PolicyCount, LengthTups: 500}
	plan, pl := buildAndPlace(t, workload.StructLinear, p, 4, cl)
	res, err := Simulate(plan, pl, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.TuplesOut <= 0 {
		t.Error("count-policy window never fired")
	}
}

func TestLatencyBreakdownAccountsForTotal(t *testing.T) {
	cl := cluster.NewHomogeneous("ho", cluster.M510, 5)
	plan, pl := buildAndPlace(t, workload.StructTwoWayJoin, params(100_000), 4, cl)
	res, err := Simulate(plan, pl, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	b := res.Breakdown
	sum := b.QueueWait + b.Service + b.Network + b.Window + b.Other
	if math.Abs(sum-res.LatencyMean) > 1e-9*math.Max(1, res.LatencyMean) {
		t.Errorf("breakdown sums to %v, mean latency %v", sum, res.LatencyMean)
	}
	for name, v := range map[string]float64{
		"queue": b.QueueWait, "service": b.Service, "network": b.Network, "window": b.Window,
	} {
		if v < 0 {
			t.Errorf("negative %s component: %v", name, v)
		}
	}
}

func TestBreakdownWindowDominatesLightLoad(t *testing.T) {
	// An underutilized windowed plan spends its latency in the window,
	// not in queues.
	cl := cluster.NewHomogeneous("ho", cluster.M510, 5)
	p := params(5_000)
	p.Window.LengthMs = 3000
	plan, pl := buildAndPlace(t, workload.StructLinear, p, 8, cl)
	res, err := Simulate(plan, pl, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	b := res.Breakdown
	if b.Window < b.QueueWait || b.Window < res.LatencyMean*0.4 {
		t.Errorf("window component %v should dominate at light load (mean %v, queue %v)",
			b.Window, res.LatencyMean, b.QueueWait)
	}
}

func TestBreakdownQueueDominatesSaturation(t *testing.T) {
	// A saturated single-instance UDO spends its latency waiting in the
	// server queue.
	cl := cluster.NewHomogeneous("ho", cluster.M510, 5)
	plan := core.NewPQP("sat", "udo")
	schema := tuple.NewSchema(tuple.Field{Name: "v", Type: tuple.TypeDouble})
	plan.Add(&core.Operator{ID: "src", Kind: core.OpSource, Parallelism: 1,
		Source: &core.SourceSpec{Schema: schema, EventRate: 400_000}, OutWidth: 1})
	plan.Add(&core.Operator{ID: "u", Kind: core.OpUDO, Parallelism: 1, Partition: core.PartitionRebalance,
		UDO: &core.UDOSpec{Name: "heavy", CostFactor: 10, Selectivity: 1}, OutWidth: 1})
	plan.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1})
	plan.Connect("src", "u")
	plan.Connect("u", "sink")
	pl, _ := cluster.Place(plan, cl, cluster.PlaceRoundRobin)
	res, err := Simulate(plan, pl, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	b := res.Breakdown
	if b.QueueWait < res.LatencyMean*0.5 {
		t.Errorf("queue wait %v should dominate a saturated run (mean %v, window %v)",
			b.QueueWait, res.LatencyMean, b.Window)
	}
}
