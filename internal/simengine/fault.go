package simengine

import (
	"pdspbench/internal/chaos"
	"pdspbench/internal/core"
)

// This file is the simulator half of the chaos layer (internal/chaos):
// fault events become ordinary DES events on the simulated clock, so a
// fault plan perturbs a run with zero wall-clock dependence and full
// seed determinism. The recovery semantics mirror the real engine's
// supervisor: crashes revive after the restart delay while the budget
// lasts, node-down outages revive on schedule without consuming budget,
// and when an operator's last instance dies for good the run aborts
// with the same typed *chaos.FaultError the engine returns.
//
// Where the engine revives an instance and replays work (counted as
// RecoveredTuples), the simulator re-routes service to surviving
// siblings — the aggregate effect a rescaled real deployment shows —
// and counts the re-routed tuples as recovered instead.

// linkWindow is one active link-fault window on the edges into an
// operator: until is the simulated end time, amount the delay seconds
// (link-delay) or drop fraction (link-drop).
type linkWindow struct {
	until  float64
	amount float64
}

// setupFaults arms the fault machinery: per-instance restart budgets
// and one DES event per scheduled fault. Called only when Config.Faults
// is non-empty, so fault-free simulations take no new branches beyond
// the faultsArmed flag checks.
func (s *sim) setupFaults() {
	s.faultsArmed = true
	s.restartDelay = s.cfg.RestartDelay
	if s.restartDelay <= 0 {
		s.restartDelay = 0.02
	}
	for _, insts := range s.insts {
		for _, inst := range insts {
			inst.restartsLeft = s.cfg.MaxRestarts
			inst.baseSpeed = inst.speed
		}
	}
	s.linkDelay = make(map[string]linkWindow)
	s.linkDrop = make(map[string]linkWindow)
	for _, ev := range s.cfg.Faults {
		ev := ev
		s.des.At(ev.At, func() { s.applyFault(ev) })
	}
}

// targetInst resolves an instance-scoped event; the chaos scheduler
// expands inst=all faults, so Instance is a concrete index here.
func (s *sim) targetInst(ev chaos.Event) *instance {
	insts := s.insts[ev.Op]
	if len(insts) == 0 {
		return nil
	}
	idx := ev.Instance
	if idx < 0 {
		idx = 0
	}
	if idx >= len(insts) {
		idx = len(insts) - 1
	}
	return insts[idx]
}

// applyFault executes one scheduled fault at its simulated time.
func (s *sim) applyFault(ev chaos.Event) {
	s.fFaultsInjected++
	now := s.des.Now()
	switch ev.Kind {
	case chaos.KindCrash:
		if inst := s.targetInst(ev); inst != nil {
			s.crashInstance(inst, true, s.restartDelay)
		}
	case chaos.EvDown:
		if inst := s.targetInst(ev); inst != nil {
			s.crashInstance(inst, false, ev.Duration)
		}
	case chaos.EvSlow:
		if inst := s.targetInst(ev); inst != nil {
			factor := ev.Factor
			if factor < 1 {
				factor = 1
			}
			inst.speed = inst.baseSpeed / factor
			s.des.After(ev.Duration, func() { inst.speed = inst.baseSpeed })
		}
	case chaos.EvStall:
		if inst := s.targetInst(ev); inst != nil {
			inst.stallUntil = now + ev.Duration
		}
	case chaos.KindLinkDelay:
		s.linkDelay[ev.Op] = linkWindow{until: now + ev.Duration, amount: ev.Factor}
	case chaos.KindLinkDrop:
		frac := ev.Factor
		if frac > 1 {
			frac = 1
		}
		s.linkDrop[ev.Op] = linkWindow{until: now + ev.Duration, amount: frac}
	}
}

// crashInstance takes an instance down. The batch in service and any
// pane state die with it (crash-consistent state loss, as a real task
// failure loses unsnapshotted window contents); its queue is drained to
// surviving siblings for stateless operators, while joins retain their
// queue locally because partitioned join state pins the input to the
// instance. budgeted crashes consume the restart budget; node-down
// outages revive on schedule without touching it. When the budget is
// gone and no revival is due, the instance is dead — and if it was the
// operator's last, the run aborts with a typed *chaos.FaultError.
func (s *sim) crashInstance(inst *instance, budgeted bool, downFor float64) {
	if inst.dead || inst.down {
		return
	}
	if inst.busy {
		inst.done.Stop()
		s.fLost += inst.serving.count
		inst.busy = false
	}
	for side := 0; side < 2; side++ {
		s.fLost += inst.paneCount[side]
		inst.paneCount[side] = 0
		inst.paneBirth[side] = 0
		inst.paneWait[side] = 0
		inst.paneSvc[side] = 0
		inst.paneNet[side] = 0
		inst.paneWin[side] = 0
		inst.paneArr[side] = 0
	}
	if inst.op.Kind != core.OpJoin {
		for inst.queue.len() > 0 {
			b := inst.queue.pop()
			if sib := s.aliveSiblingExcept(inst); sib != nil {
				s.fRerouted += b.count
				s.enqueue(sib, b)
			} else {
				s.fLost += b.count
			}
		}
	}
	if budgeted {
		if inst.restartsLeft <= 0 {
			inst.dead = true
			inst.down = true
			if s.allDead(inst.op.ID) && s.fatal == nil {
				s.fatal = &chaos.FaultError{Op: inst.op.ID, Kind: chaos.KindCrash}
				s.des.Stop()
			}
			return
		}
		inst.restartsLeft--
	}
	inst.down = true
	s.fRestarts++
	s.fDowntime += downFor
	s.des.After(downFor, func() { s.reviveInstance(inst) })
}

// reviveInstance brings a down instance back: queued work resumes
// service and a source re-arms its emission timer.
func (s *sim) reviveInstance(inst *instance) {
	if inst.dead {
		return
	}
	inst.down = false
	if inst.queue.len() > 0 && !inst.busy {
		if inst.op.Kind == core.OpJoin {
			s.serveNextJoin(inst)
		} else {
			s.serveNext(inst)
		}
	}
	if inst.resumeEmit != nil {
		inst.resumeEmit()
	}
}

// aliveSiblingExcept returns the next live sibling instance of the same
// operator after inst, or nil when none survives. The walk starts at
// inst.idx+1, so rerouted load spreads deterministically.
func (s *sim) aliveSiblingExcept(inst *instance) *instance {
	sibs := s.insts[inst.op.ID]
	n := len(sibs)
	for i := 1; i < n; i++ {
		c := sibs[(inst.idx+i)%n]
		if !c.down && !c.dead {
			return c
		}
	}
	return nil
}

// allDead reports whether every instance of an operator is dead.
func (s *sim) allDead(opID string) bool {
	for _, inst := range s.insts[opID] {
		if !inst.dead {
			return false
		}
	}
	return true
}
