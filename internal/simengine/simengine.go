// Package simengine executes a parallel query plan on a modelled
// distributed cluster by discrete-event simulation.
//
// The paper measures Apache Flink on CloudLab at event rates up to 4M
// events/s and parallelism degrees up to 256 — a regime that cannot be
// reproduced in real time on one machine. This simulator replaces that
// testbed while preserving the mechanisms the paper's observations
// (O1–O7) derive from:
//
//   - per-instance queueing: each operator instance is a single server
//     with a FIFO queue; when arrival rate exceeds service rate the queue
//     (and hence end-to-end latency) grows — the latency collapse the
//     paper sees at low parallelism for data-intensive operators;
//   - CPU contention: when a node hosts more instances than cores,
//     service times inflate proportionally — the parallelism paradox
//     beyond the paper's 128-degree threshold;
//   - per-message fixed costs and network transfer time on links that
//     cross machines — the shuffle overhead of high fan-out hash
//     partitioning;
//   - window residence: windowed operators buffer input and fire on
//     their slide, so latency includes time spent waiting in windows;
//   - coordination: windowed/stateful operators pay a synchronization
//     cost growing with their parallelism degree (log-factor for standard
//     operators, linear for UDOs with heavy state, per their StateFactor)
//     — the reason the paper's AD application stops scaling.
//
// Tuples are simulated in batches: each simulated message carries a tuple
// count and the average source event time ("birth") of its constituents,
// so end-to-end latency (sink delivery time − birth) emerges from the
// simulation rather than being computed from a closed-form model.
package simengine

import (
	"fmt"
	"math"
	"math/rand"

	"pdspbench/internal/chaos"
	"pdspbench/internal/cluster"
	"pdspbench/internal/core"
	"pdspbench/internal/des"
	"pdspbench/internal/stats"
)

// Config tunes the simulation fidelity and the calibrated cost
// coefficients. Zero values are replaced by defaults (see Defaults).
type Config struct {
	// Duration is the simulated stream length in seconds.
	Duration float64
	// WarmupFraction of the run is discarded from latency statistics so
	// cold windows do not bias the median (the paper likewise runs
	// minutes and reports steady-state medians).
	WarmupFraction float64
	// SourceBatches is the target number of batches each source emits;
	// it trades fidelity for simulation speed.
	SourceBatches int
	// Seed makes runs reproducible; the paper averages three runs with
	// different seeds.
	Seed int64

	// AllowedLateness (seconds) mirrors the real engine's
	// Options.AllowedLateness on the simulated clock: time-policy window
	// firings are delayed by the watermark lag (source disorder skew plus
	// this allowance), and arrivals delayed beyond the allowance are
	// dropped and counted in Result.LateDrops.
	AllowedLateness float64

	// Faults is the resolved chaos schedule to replay on the simulated
	// clock (see internal/chaos); empty leaves the model fault-free.
	Faults []chaos.Event
	// MaxRestarts is the per-instance budget for budgeted crash
	// revivals; zero or negative disables restarts.
	MaxRestarts int
	// RestartDelay is the simulated seconds an instance stays down per
	// budgeted revival (default 0.02).
	RestartDelay float64

	// TupleCost is seconds of CPU per tuple per unit cost-factor on a
	// speed-1.0 core (m510 baseline).
	TupleCost float64
	// MsgCost is the fixed cost of handling one inbound message
	// (deserialization, buffer management).
	MsgCost float64
	// NetLatency is the one-way base network latency between nodes.
	NetLatency float64
	// BytesPerField approximates the wire size of one tuple field.
	BytesPerField float64
	// SyncCost is the per-firing coordination cost unit for windowed
	// operators; it is multiplied by log2(parallelism) for standard
	// operators and by parallelism × StateFactor for UDOs.
	SyncCost float64
	// KeyCardinality bounds distinct keys for keyed aggregations.
	KeyCardinality int
	// ZipfSkewShare is the extra load fraction the hottest partition
	// receives when the source distribution is "zipf".
	ZipfSkewShare float64
}

// Defaults returns the calibrated configuration used by the experiment
// harness. The coefficients were chosen so that a single filter at the
// paper's 100k events/s loads one m510 core at ~10% while a 6×-cost join
// with window maintenance saturates it — reproducing the regimes of
// Figures 3 and 4.
func Defaults() Config {
	return Config{
		Duration:       30,
		WarmupFraction: 0.2,
		SourceBatches:  240,
		Seed:           1,
		TupleCost:      1e-6,
		MsgCost:        60e-6,
		NetLatency:     0.3e-3,
		BytesPerField:  8,
		SyncCost:       250e-6,
		KeyCardinality: 1000,
		ZipfSkewShare:  0.25,
	}
}

func (c Config) withDefaults() Config {
	d := Defaults()
	if c.Duration <= 0 {
		c.Duration = d.Duration
	}
	if c.WarmupFraction <= 0 || c.WarmupFraction >= 1 {
		c.WarmupFraction = d.WarmupFraction
	}
	if c.SourceBatches <= 0 {
		c.SourceBatches = d.SourceBatches
	}
	if c.TupleCost <= 0 {
		c.TupleCost = d.TupleCost
	}
	if c.MsgCost <= 0 {
		c.MsgCost = d.MsgCost
	}
	if c.NetLatency <= 0 {
		c.NetLatency = d.NetLatency
	}
	if c.BytesPerField <= 0 {
		c.BytesPerField = d.BytesPerField
	}
	if c.SyncCost <= 0 {
		c.SyncCost = d.SyncCost
	}
	if c.KeyCardinality <= 0 {
		c.KeyCardinality = d.KeyCardinality
	}
	if c.ZipfSkewShare <= 0 {
		c.ZipfSkewShare = d.ZipfSkewShare
	}
	return c
}

// Result reports what the paper's metric collectors report.
type Result struct {
	// End-to-end latency in seconds over delivered batches after warm-up
	// (the paper reports the median of three runs' medians).
	LatencyP50  float64 `json:"latency_p50"`
	LatencyP95  float64 `json:"latency_p95"`
	LatencyP99  float64 `json:"latency_p99"`
	LatencyMean float64 `json:"latency_mean"`
	// Throughput is tuples delivered to sinks per simulated second.
	Throughput float64 `json:"throughput"`
	// TuplesIn/TuplesOut count tuples produced by sources and delivered.
	TuplesIn  float64 `json:"tuples_in"`
	TuplesOut float64 `json:"tuples_out"`
	// Saturated reports whether any instance's utilization reached 1
	// (backpressure regime).
	Saturated bool `json:"saturated"`
	// Utilization is the busiest instance's busy-time fraction per
	// logical operator.
	Utilization map[string]float64 `json:"utilization"`
	// Batches delivered to sinks after warmup (statistics support).
	DeliveredBatches int `json:"delivered_batches"`
	// Breakdown decomposes the mean end-to-end latency into where the
	// time was spent.
	Breakdown Breakdown `json:"breakdown"`

	// LateDrops counts tuples that arrived at a time-policy window or
	// join beyond the allowed lateness and were dropped (zero without
	// source disorder; provably zero for bounded disorder, whose delay
	// never exceeds the watermark skew).
	LateDrops float64 `json:"late_drops,omitempty"`

	// Fault accounting (all zero unless Config.Faults was set): fault
	// events applied, instance revivals, summed simulated downtime,
	// tuples re-routed to surviving siblings, and tuples lost to
	// crashes and drop windows.
	FaultsInjected  int     `json:"faults_injected,omitempty"`
	Restarts        int     `json:"restarts,omitempty"`
	DowntimeSec     float64 `json:"downtime_sec,omitempty"`
	RecoveredTuples float64 `json:"recovered_tuples,omitempty"`
	LostTuples      float64 `json:"lost_tuples,omitempty"`
}

// Breakdown is the mean end-to-end latency decomposition in seconds:
// queue waiting, service, network transfer, window residence, and the
// unattributed remainder (intra-batch arrival spread, firing delays).
type Breakdown struct {
	QueueWait float64 `json:"queue_wait"`
	Service   float64 `json:"service"`
	Network   float64 `json:"network"`
	Window    float64 `json:"window"`
	Other     float64 `json:"other"`
}

// batch is the unit of simulated dataflow.
type batch struct {
	count float64 // tuples represented
	birth float64 // average source event time of constituents (s)

	// Latency decomposition, accumulated as the batch flows: time spent
	// waiting in server queues, in service, on the network, and resident
	// in windows. The sink reports their batch-level means so a user can
	// see *where* end-to-end latency comes from.
	wait float64
	svc  float64
	net  float64
	win  float64

	enqueuedAt float64 // set on enqueue; consumed when service starts
}

// instance is one physical operator instance: a single-server FIFO queue.
type instance struct {
	op      *core.Operator
	idx     int
	node    cluster.Node
	speed   float64 // effective per-core speed after contention
	queue   ring[batch]
	busy    bool
	busyAcc float64 // accumulated busy seconds

	// serving is the batch in service; done fires at its completion.
	// Reusing one timer per instance keeps the serve→complete→serve
	// cycle free of per-batch closure allocations.
	serving     batch
	servingSide int
	done        *des.Timer

	// Chaos state (see fault.go): a down instance is temporarily out of
	// service, a dead one never returns; restartsLeft is its remaining
	// budget, baseSpeed its nominal speed for slow-node windows, and
	// stallUntil/resumeEmit pause and re-arm source emission.
	down         bool
	dead         bool
	restartsLeft int
	baseSpeed    float64
	stallUntil   float64
	resumeEmit   func()

	// Window state (aggregate/join). Joins keep two panes, one per input
	// side; sideQueue parallels queue to preserve the side through service.
	paneCount [2]float64
	paneBirth [2]float64 // count-weighted birth sum
	// Count-weighted latency-component sums of pane contents. paneWin is
	// the window time carried from upstream windows; paneArr is the
	// arrival time at this pane, so firing at time T adds (T − avg
	// arrival) of residence.
	paneWait  [2]float64
	paneSvc   [2]float64
	paneNet   [2]float64
	paneWin   [2]float64
	paneArr   [2]float64
	sideQueue ring[int]
	rrNext    int // round-robin pointer for rebalance routing
}

type edgeRoute struct {
	from, to  *core.Operator
	toInsts   []*instance
	partition core.PartitionStrategy
}

type sim struct {
	cfg       Config
	plan      *core.PQP
	placement *cluster.Placement
	rng       *rand.Rand
	des       *des.Simulator

	insts  map[string][]*instance
	routes map[string][]edgeRoute // keyed by upstream op ID

	latencies  *stats.Sample
	tuplesIn   float64
	tuplesOut  float64
	warmupTime float64

	// Latency-component sums over delivered post-warmup batches.
	sumWait, sumSvc, sumNet, sumWin, sumTotal float64

	// Event-time state (see watermarks in internal/engine): wmLag is the
	// watermark's lag behind the stream frontier in simulated seconds
	// (max source disorder skew + allowed lateness), applied as a firing
	// delay on time-policy windows; lateFrac is the analytic fraction of
	// tuples whose disorder delay exceeds skew + lateness, dropped at
	// time-policy windowed operators and summed into lateDrops.
	wmLag     float64
	lateFrac  float64
	lateDrops float64

	// Chaos state (see fault.go). faultsArmed gates every fault check so
	// fault-free runs pay one boolean test on the perturbed paths.
	faultsArmed     bool
	restartDelay    float64
	fFaultsInjected int
	fRestarts       int
	fDowntime       float64
	fRerouted       float64
	fLost           float64
	fatal           error                 // *chaos.FaultError when an operator fully died
	linkDelay       map[string]linkWindow // keyed by downstream op ID
	linkDrop        map[string]linkWindow
}

// Simulate runs the plan on the placement and returns measured metrics.
func Simulate(plan *core.PQP, placement *cluster.Placement, cfg Config) (*Result, error) {
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("simengine: %w", err)
	}
	cfg = cfg.withDefaults()
	s := &sim{
		cfg:        cfg,
		plan:       plan,
		placement:  placement,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		des:        des.New(),
		insts:      make(map[string][]*instance),
		routes:     make(map[string][]edgeRoute),
		latencies:  stats.NewSample(4096),
		warmupTime: cfg.Duration * cfg.WarmupFraction,
	}
	if err := s.build(); err != nil {
		return nil, err
	}
	s.setupEventTime()
	if len(cfg.Faults) > 0 {
		s.setupFaults()
	}
	s.start()
	s.des.RunUntil(cfg.Duration)
	if s.fatal != nil {
		return nil, s.fatal
	}
	return s.results(), nil
}

// build instantiates operator instances with their contention-adjusted
// speeds and wires the routing tables.
func (s *sim) build() error {
	contention := s.nodeContention()
	for _, op := range s.plan.Operators {
		nodes, ok := s.placement.NodeOf[op.ID]
		if !ok || len(nodes) != op.Parallelism {
			return fmt.Errorf("simengine: placement missing %d instances of %q", op.Parallelism, op.ID)
		}
		insts := make([]*instance, op.Parallelism)
		for i := 0; i < op.Parallelism; i++ {
			node := s.placement.Cluster.Nodes[nodes[i]]
			inst := &instance{
				op:    op,
				idx:   i,
				node:  node,
				speed: node.Type.Speed() / contention[nodes[i]],
			}
			inst.done = s.des.NewTimer(func() { s.serveDone(inst) })
			insts[i] = inst
		}
		s.insts[op.ID] = insts
	}
	for _, e := range s.plan.Edges {
		from, to := s.plan.Op(e.From), s.plan.Op(e.To)
		s.routes[e.From] = append(s.routes[e.From], edgeRoute{
			from: from, to: to, toInsts: s.insts[e.To], partition: to.Partition,
		})
	}
	return nil
}

// nodeContention estimates each node's CPU oversubscription: expected
// core demand divided by available cores, floored at 1. Demand counts
// what a real stream processor spends cycles on — per-tuple operator
// work, per-message handling (which multiplies under high-fan-out hash
// shuffles), window-firing synchronization that grows with parallelism,
// UDO state coordination, and a small per-instance upkeep (threads,
// network buffers). Instances that merely exist but carry no data cost
// almost nothing, unlike a naive instances-per-core ratio.
func (s *sim) nodeContention() []float64 {
	const instanceUpkeep = 0.003 // cores per idle instance
	nodes := s.placement.Cluster.Nodes
	demand := make([]float64, len(nodes))

	in, out := s.plan.InputRates(), s.plan.OutputRates()
	batchIn, batchOut := s.batchRates(in, out)

	for _, op := range s.plan.Operators {
		placedOn := s.placement.NodeOf[op.ID]
		p := float64(op.Parallelism)
		// Per-instance demands in baseline-core units.
		tupleWork := in[op.ID] / p * s.cfg.TupleCost * op.CostFactor()
		msgWork := batchIn[op.ID] / p * s.cfg.MsgCost
		fireWork := 0.0
		if w := op.WindowSpecOf(); w != nil {
			firingsPerInst := batchOut[op.ID] / p
			fireWork = firingsPerInst * s.cfg.SyncCost * (1 + math.Log2(p))
		}
		if op.UDO != nil && op.UDO.StateFactor > 0 {
			fireWork += batchIn[op.ID] / p * s.cfg.SyncCost * op.UDO.StateFactor * p
		}
		for _, n := range placedOn {
			speed := nodes[n].Type.Speed()
			demand[n] += (tupleWork+msgWork+fireWork)/speed + instanceUpkeep
		}
	}
	// Thread-switching inflation: past a few runnable threads per core,
	// context switches and cache pressure slow every service — the
	// mechanism behind the paper's parallelism paradox beyond degree 128.
	const switchFactor = 0.02
	perNode := s.placement.InstancesPerNode()
	contention := make([]float64, len(nodes))
	for i := range nodes {
		cores := float64(nodes[i].Type.Cores)
		c := demand[i] / cores
		if c < 1 {
			c = 1
		}
		threadsPerCore := float64(perNode[i]) / cores
		if threadsPerCore > 2 {
			c *= 1 + switchFactor*(threadsPerCore-2)
		}
		contention[i] = c
	}
	return contention
}

// batchRates propagates expected message (batch) rates through the plan:
// sources emit SourceBatches/Duration batches each; stateless operators
// forward one output batch per input batch; windowed operators emit one
// batch per instance per slide; hash edges split each emitted batch into
// up to min(parallelism, tuples-per-batch) messages.
func (s *sim) batchRates(tupleIn, tupleOut map[string]float64) (in, out map[string]float64) {
	in = make(map[string]float64, len(s.plan.Operators))
	out = make(map[string]float64, len(s.plan.Operators))
	order, err := s.plan.TopoOrder()
	if err != nil {
		return in, out
	}
	srcBatchRate := float64(s.cfg.SourceBatches) / s.cfg.Duration
	for _, id := range order {
		op := s.plan.Op(id)
		if op.Kind == core.OpSource {
			in[id] = srcBatchRate
			out[id] = srcBatchRate
			continue
		}
		var sum float64
		for _, u := range s.plan.Upstream(id) {
			split := 1.0
			if op.Partition == core.PartitionHash && out[u] > 0 {
				tuplesPerBatch := tupleOut[u] / out[u]
				split = math.Min(float64(op.Parallelism), math.Max(1, tuplesPerBatch))
			}
			sum += out[u] * split
		}
		in[id] = sum
		switch w := op.WindowSpecOf(); {
		case w == nil:
			out[id] = in[id]
		case w.Policy == core.PolicyCount:
			// Count windows fire once per slide-tuples of total input.
			if sl := w.Slide(); sl > 0 {
				out[id] = tupleIn[id] / sl
			}
		default: // time policy
			if slideSec := w.Slide() / 1000; slideSec > 0 {
				out[id] = float64(op.Parallelism) / slideSec
			}
		}
	}
	return in, out
}

// start schedules source emission and window firing timers.
func (s *sim) start() {
	for _, src := range s.plan.Sources() {
		rate := src.Source.EventRate
		perInst := rate / float64(src.Parallelism)
		batchSize := rate * s.cfg.Duration / float64(s.cfg.SourceBatches) / float64(src.Parallelism)
		if batchSize < 1 {
			batchSize = 1
		}
		for _, inst := range s.insts[src.ID] {
			s.scheduleEmit(inst, perInst, batchSize)
		}
	}
	for _, op := range s.plan.Operators {
		w := op.WindowSpecOf()
		if w == nil || w.Policy != core.PolicyTime {
			continue
		}
		slideSec := w.Slide() / 1000
		for _, inst := range s.insts[op.ID] {
			s.scheduleFiring(inst, slideSec)
		}
	}
}

// scheduleEmit produces source batches after exponential gaps (Poisson
// arrivals, the paper's traffic model). One reusable timer and closure
// serve every batch the instance emits; the RNG draw order matches the
// previous recursive scheduling exactly, so seeded runs are unchanged.
func (s *sim) scheduleEmit(inst *instance, rate, batchSize float64) {
	var tm *des.Timer
	var gap float64
	tm = s.des.NewTimer(func() {
		now := s.des.Now()
		if now > s.cfg.Duration {
			return
		}
		if s.faultsArmed {
			if inst.dead {
				return
			}
			if inst.down {
				return // resumeEmit re-arms on recovery
			}
			if inst.stallUntil > now {
				tm.Reset(inst.stallUntil - now)
				return
			}
		}
		b := batch{count: batchSize, birth: now - gap/2}
		s.tuplesIn += batchSize
		// Source work (generation/deserialization) occupies the source
		// instance before the batch is routed.
		s.enqueue(inst, b)
		gap = stats.Exponential(s.rng, rate/batchSize)
		tm.Reset(gap)
	})
	if s.faultsArmed {
		inst.resumeEmit = func() {
			gap = stats.Exponential(s.rng, rate/batchSize)
			tm.Reset(gap)
		}
	}
	gap = stats.Exponential(s.rng, rate/batchSize)
	tm.Reset(gap)
}

// scheduleFiring sets up the periodic slide timer of a time-policy
// window, reusing one timer per instance across all firings.
func (s *sim) scheduleFiring(inst *instance, slideSec float64) {
	var tm *des.Timer
	tm = s.des.NewTimer(func() {
		if s.des.Now() > s.cfg.Duration {
			return
		}
		if s.faultsArmed && inst.dead {
			return
		}
		if !(s.faultsArmed && inst.down) {
			s.fireWindow(inst)
		}
		tm.Reset(slideSec)
	})
	// The first firing waits out the watermark lag (disorder skew +
	// allowed lateness); the slide cadence then preserves the offset, so
	// every firing is wmLag behind its processing-time counterpart —
	// exactly the residence the real engine's watermark-driven panes add.
	tm.Reset(slideSec + s.wmLag)
}

// enqueue delivers a batch to an instance's server queue. Arrivals at a
// down or dead instance re-route to a surviving sibling (the rescaling
// a real deployment performs); with no sibling, a down instance queues
// the batch for its recovery while a dead one loses it.
func (s *sim) enqueue(inst *instance, b batch) {
	if s.faultsArmed && (inst.down || inst.dead) {
		if inst.op.Kind != core.OpJoin {
			if sib := s.aliveSiblingExcept(inst); sib != nil {
				s.fRerouted += b.count
				s.enqueue(sib, b)
				return
			}
		}
		if inst.dead {
			s.fLost += b.count
			return
		}
		b.enqueuedAt = s.des.Now()
		inst.queue.push(b)
		return
	}
	b.enqueuedAt = s.des.Now()
	inst.queue.push(b)
	if !inst.busy {
		s.serveNext(inst)
	}
}

// serveNext begins service of the head-of-queue batch; completion is the
// instance's reusable done timer, which calls serveDone.
func (s *sim) serveNext(inst *instance) {
	if inst.queue.len() == 0 {
		inst.busy = false
		return
	}
	inst.busy = true
	b := inst.queue.pop()
	b.wait += s.des.Now() - b.enqueuedAt
	st := s.serviceTime(inst, b)
	b.svc += st
	inst.busyAcc += st
	inst.serving = b
	inst.done.Reset(st)
}

// serveDone completes the in-service batch and starts the next one.
func (s *sim) serveDone(inst *instance) {
	if inst.op.Kind == core.OpJoin {
		s.dropLate(inst, &inst.serving)
		s.paneAdd(inst, inst.servingSide, inst.serving)
		w := inst.op.Join.Window
		if w.Policy == core.PolicyCount &&
			inst.paneCount[0] >= w.Slide() && inst.paneCount[1] >= w.Slide() {
			s.fireWindow(inst)
		}
		s.serveNextJoin(inst)
		return
	}
	s.process(inst, inst.serving)
	s.serveNext(inst)
}

// serviceTime is the CPU occupancy of one batch on this instance.
func (s *sim) serviceTime(inst *instance, b batch) float64 {
	perTuple := s.cfg.TupleCost * inst.op.CostFactor() / inst.speed
	return s.cfg.MsgCost/inst.speed + b.count*perTuple
}

// process applies the operator semantics to a served batch.
func (s *sim) process(inst *instance, b batch) {
	op := inst.op
	switch op.Kind {
	case core.OpSink:
		s.deliver(b)
	case core.OpAggregate:
		s.dropLate(inst, &b)
		s.paneAdd(inst, 0, b)
		if op.Agg.Window.Policy == core.PolicyCount && inst.paneCount[0] >= op.Agg.Window.Slide() {
			s.fireWindow(inst)
		}
	case core.OpFilter, core.OpMap, core.OpFlatMap, core.OpUDO, core.OpSource:
		out := b // keep birth and the accumulated latency components
		if op.Kind != core.OpSource {
			out.count = b.count * op.Selectivity()
		}
		if op.UDO != nil && op.UDO.StateFactor > 0 {
			// Stateful UDO: coordinate with sibling instances; this is the
			// linear-in-parallelism penalty behind the paper's O3/O5 AD
			// plateau.
			delay := s.cfg.SyncCost * op.UDO.StateFactor * float64(op.Parallelism) / inst.speed
			s.des.After(delay, func() { s.route(inst, out) })
			return
		}
		s.route(inst, out)
	}
}

// paneAdd accumulates a batch into an instance's window pane, retaining
// count-weighted sums of its latency components and its arrival time so
// fired outputs inherit them.
func (s *sim) paneAdd(inst *instance, side int, b batch) {
	inst.paneCount[side] += b.count
	inst.paneBirth[side] += b.birth * b.count
	inst.paneWait[side] += b.wait * b.count
	inst.paneSvc[side] += b.svc * b.count
	inst.paneNet[side] += b.net * b.count
	inst.paneWin[side] += b.win * b.count
	inst.paneArr[side] += s.des.Now() * b.count // residence starts now
}

// fireWindow emits the window result and slides the pane.
func (s *sim) fireWindow(inst *instance) {
	op := inst.op
	w := op.WindowSpecOf()
	if w == nil {
		return
	}
	now := s.des.Now()
	var out batch
	switch op.Kind {
	case core.OpAggregate:
		if inst.paneCount[0] <= 0 {
			return
		}
		n := inst.paneCount[0]
		outCount := 1.0
		if op.Agg.KeyField >= 0 {
			keysHere := float64(s.cfg.KeyCardinality) / float64(op.Parallelism)
			outCount = math.Min(n, math.Max(1, keysHere))
		}
		out = batch{
			count: outCount,
			birth: inst.paneBirth[0] / n,
			wait:  inst.paneWait[0] / n,
			svc:   inst.paneSvc[0] / n,
			net:   inst.paneNet[0] / n,
			win:   inst.paneWin[0]/n + (now - inst.paneArr[0]/n),
		}
	case core.OpJoin:
		l, r := inst.paneCount[0], inst.paneCount[1]
		if l <= 0 || r <= 0 {
			s.slidePanes(inst, w)
			return
		}
		matched := math.Min(l, r)
		total := l + r
		out = batch{
			count: matched,
			birth: (inst.paneBirth[0] + inst.paneBirth[1]) / total,
			wait:  (inst.paneWait[0] + inst.paneWait[1]) / total,
			svc:   (inst.paneSvc[0] + inst.paneSvc[1]) / total,
			net:   (inst.paneNet[0] + inst.paneNet[1]) / total,
			win:   (inst.paneWin[0]+inst.paneWin[1])/total + (now - (inst.paneArr[0]+inst.paneArr[1])/total),
		}
	default:
		return
	}
	s.slidePanes(inst, w)
	// Firing cost: merge/emit work plus coordination across the
	// operator's parallel instances (log-factor for standard operators).
	sync := s.cfg.SyncCost * (1 + math.Log2(float64(op.Parallelism))) / inst.speed
	emit := out.count * s.cfg.TupleCost * op.CostFactor() / inst.speed
	inst.busyAcc += sync + emit
	s.des.After(sync+emit, func() { s.route(inst, out) })
}

// slidePanes evicts pane content according to the window type: tumbling
// windows clear fully, sliding windows retain the non-slid fraction.
func (s *sim) slidePanes(inst *instance, w *core.WindowSpec) {
	retain := 0.0
	if w.Type == core.WindowSliding {
		r := w.SlideRatio
		if r <= 0 || r > 1 {
			r = 0.5
		}
		retain = 1 - r
	}
	for side := 0; side < 2; side++ {
		inst.paneCount[side] *= retain
		inst.paneBirth[side] *= retain
		inst.paneWait[side] *= retain
		inst.paneSvc[side] *= retain
		inst.paneNet[side] *= retain
		inst.paneWin[side] *= retain
		inst.paneArr[side] *= retain
	}
}

// route forwards an output batch along every outgoing edge.
func (s *sim) route(inst *instance, b batch) {
	if b.count <= 0 {
		return
	}
	routes := s.routes[inst.op.ID]
	for _, r := range routes {
		s.routeEdge(inst, r, b)
	}
}

// routeEdge applies the downstream operator's partition strategy.
func (s *sim) routeEdge(inst *instance, r edgeRoute, b batch) {
	side := 0
	if r.to.Kind == core.OpJoin {
		// Input order defines join sides: edge index 0 is the left input.
		ups := s.plan.Upstream(r.to.ID)
		for i, u := range ups {
			if u == inst.op.ID {
				side = i % 2
			}
		}
	}
	switch r.partition {
	case core.PartitionForward:
		// Co-indexed local forwarding; mismatched degrees wrap around.
		dst := r.toInsts[inst.idx%len(r.toInsts)]
		s.send(inst, dst, b, side)
	case core.PartitionRebalance:
		dst := r.toInsts[inst.rrNext%len(r.toInsts)]
		inst.rrNext++
		s.send(inst, dst, b, side)
	case core.PartitionHash:
		s.hashSplit(inst, r, b, side)
	default:
		dst := r.toInsts[inst.rrNext%len(r.toInsts)]
		inst.rrNext++
		s.send(inst, dst, b, side)
	}
}

// hashSplit distributes a batch across downstream instances by key hash.
// When the batch has fewer tuples than there are target instances, only
// ~count partitions actually receive data (as in a real shuffle), so the
// split is thinned to keep event counts proportional to data volume.
func (s *sim) hashSplit(inst *instance, r edgeRoute, b batch, side int) {
	p := len(r.toInsts)
	parts := p
	if b.count < float64(p) {
		parts = int(math.Max(1, b.count))
	}
	per := b.count / float64(parts)
	skewExtra := 0.0
	if src := s.sourceDistribution(); src == "zipf" && parts > 1 {
		// The hottest partition absorbs an extra share of a skewed stream.
		skewExtra = b.count * s.cfg.ZipfSkewShare
		per = (b.count - skewExtra) / float64(parts)
	}
	start := s.rng.Intn(p)
	for i := 0; i < parts; i++ {
		dst := r.toInsts[(start+i)%p]
		part := b // keep birth and latency components
		part.count = per
		if i == 0 {
			part.count += skewExtra
		}
		s.send(inst, dst, part, side)
	}
}

func (s *sim) sourceDistribution() string {
	for _, src := range s.plan.Sources() {
		if src.Source.Distribution == "zipf" {
			return "zipf"
		}
	}
	return "poisson"
}

// send moves a batch across the (possibly network) link and enqueues it
// at the destination, tagging join input sides.
func (s *sim) send(from, to *instance, b batch, side int) {
	delay := 0.0
	if s.faultsArmed {
		now := s.des.Now()
		if w, ok := s.linkDrop[to.op.ID]; ok && now < w.until {
			lost := b.count * w.amount
			s.fLost += lost
			b.count -= lost
			if b.count <= 0 {
				return
			}
		}
		if w, ok := s.linkDelay[to.op.ID]; ok && now < w.until {
			delay += w.amount
		}
	}
	if from.node.ID != to.node.ID {
		bw := math.Min(from.node.Type.NetGbps, to.node.Type.NetGbps) * 1e9 / 8 // bytes/s
		bytes := b.count * float64(maxInt(1, from.op.OutWidth)) * s.cfg.BytesPerField
		delay += s.cfg.NetLatency + bytes/bw
	}
	b.net += delay
	s.des.After(delay, func() {
		if to.op.Kind == core.OpJoin {
			s.enqueueJoin(to, b, side)
			return
		}
		s.enqueue(to, b)
	})
}

// enqueueJoin is enqueue with the join side preserved through service.
// Joins cannot re-route (partitioned state pins the input), so a dead
// join instance loses its arrivals and a down one queues them.
func (s *sim) enqueueJoin(inst *instance, b batch, side int) {
	if s.faultsArmed && inst.dead {
		s.fLost += b.count
		return
	}
	b.enqueuedAt = s.des.Now()
	inst.queue.push(b)
	// Sides are tracked by a parallel ring to keep batch lean.
	inst.sideQueue.push(side)
	if !inst.busy && !(s.faultsArmed && inst.down) {
		s.serveNextJoin(inst)
	}
}

// serveNextJoin mirrors serveNext for join instances; serveDone applies
// the pane semantics at completion.
func (s *sim) serveNextJoin(inst *instance) {
	if inst.queue.len() == 0 {
		inst.busy = false
		return
	}
	inst.busy = true
	b := inst.queue.pop()
	inst.servingSide = inst.sideQueue.pop()
	b.wait += s.des.Now() - b.enqueuedAt
	st := s.serviceTime(inst, b)
	b.svc += st
	inst.busyAcc += st
	inst.serving = b
	inst.done.Reset(st)
}

// deliver records a sink arrival.
func (s *sim) deliver(b batch) {
	now := s.des.Now()
	s.tuplesOut += b.count
	if now >= s.warmupTime {
		total := now - b.birth
		s.latencies.Add(total)
		s.sumWait += b.wait
		s.sumSvc += b.svc
		s.sumNet += b.net
		s.sumWin += b.win
		s.sumTotal += total
	}
}

// results assembles the Result.
func (s *sim) results() *Result {
	if s.latencies.Len() == 0 {
		// Total collapse: nothing reached a sink after warm-up. Every
		// in-flight tuple has been queued for up to the whole run, so
		// report the run duration as the (lower-bound) latency instead of
		// a misleading zero.
		s.latencies.Add(s.cfg.Duration)
	}
	r := &Result{
		LatencyP50:       s.latencies.Quantile(0.5),
		LatencyP95:       s.latencies.Quantile(0.95),
		LatencyP99:       s.latencies.Quantile(0.99),
		LatencyMean:      s.latencies.Mean(),
		Throughput:       s.tuplesOut / s.cfg.Duration,
		TuplesIn:         s.tuplesIn,
		TuplesOut:        s.tuplesOut,
		Utilization:      make(map[string]float64, len(s.insts)),
		DeliveredBatches: s.latencies.Len(),
		LateDrops:        s.lateDrops,

		FaultsInjected:  s.fFaultsInjected,
		Restarts:        s.fRestarts,
		DowntimeSec:     s.fDowntime,
		RecoveredTuples: s.fRerouted,
		LostTuples:      s.fLost,
	}
	for id, insts := range s.insts {
		var maxU float64
		for _, inst := range insts {
			u := inst.busyAcc / s.cfg.Duration
			if u > maxU {
				maxU = u
			}
		}
		r.Utilization[id] = maxU
		if maxU >= 0.98 {
			r.Saturated = true
		}
	}
	if n := float64(s.latencies.Len()); n > 0 {
		r.Breakdown = Breakdown{
			QueueWait: s.sumWait / n,
			Service:   s.sumSvc / n,
			Network:   s.sumNet / n,
			Window:    s.sumWin / n,
		}
		r.Breakdown.Other = s.sumTotal/n - r.Breakdown.QueueWait -
			r.Breakdown.Service - r.Breakdown.Network - r.Breakdown.Window
	}
	return r
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// MedianOfRuns executes the simulation n times with distinct seeds and
// returns the mean of the runs' median latencies, the paper's reported
// statistic ("mean of three runs of measuring median latency").
func MedianOfRuns(plan *core.PQP, placement *cluster.Placement, cfg Config, runs int) (float64, []*Result, error) {
	if runs <= 0 {
		runs = 3
	}
	var sum float64
	results := make([]*Result, 0, runs)
	for i := 0; i < runs; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)*7919
		res, err := Simulate(plan, placement, c)
		if err != nil {
			return 0, nil, err
		}
		sum += res.LatencyP50
		results = append(results, res)
	}
	return sum / float64(runs), results, nil
}
