package tuple

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTypeString(t *testing.T) {
	cases := []struct {
		typ  Type
		want string
	}{
		{TypeInt, "int"},
		{TypeDouble, "double"},
		{TypeString, "string"},
	}
	for _, c := range cases {
		if got := c.typ.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", c.typ, got, c.want)
		}
	}
}

func TestParseType(t *testing.T) {
	cases := []struct {
		in      string
		want    Type
		wantErr bool
	}{
		{"int", TypeInt, false},
		{"integer", TypeInt, false},
		{"long", TypeInt, false},
		{"double", TypeDouble, false},
		{"float64", TypeDouble, false},
		{"STRING", TypeString, false},
		{" str ", TypeString, false},
		{"varchar", TypeString, false},
		{"blob", 0, true},
		{"", 0, true},
	}
	for _, c := range cases {
		got, err := ParseType(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseType(%q) error = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if !c.wantErr && got != c.want {
			t.Errorf("ParseType(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestValueConstructorsAndString(t *testing.T) {
	if v := Int(42); v.Kind != TypeInt || v.I != 42 || v.String() != "42" {
		t.Errorf("Int(42) = %+v", v)
	}
	if v := Double(2.5); v.Kind != TypeDouble || v.D != 2.5 || v.String() != "2.5" {
		t.Errorf("Double(2.5) = %+v", v)
	}
	if v := String("hi"); v.Kind != TypeString || v.S != "hi" || v.String() != "hi" {
		t.Errorf("String(hi) = %+v", v)
	}
}

func TestValueAsFloat(t *testing.T) {
	cases := []struct {
		v    Value
		want float64
	}{
		{Int(-7), -7},
		{Double(3.25), 3.25},
		{String("abcd"), 4}, // strings convert to their length
		{String(""), 0},
	}
	for _, c := range cases {
		if got := c.v.AsFloat(); got != c.want {
			t.Errorf("%v.AsFloat() = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Double(1.5), Double(2.5), -1},
		{Double(2.5), Double(2.5), 0},
		{String("a"), String("b"), -1},
		{String("b"), String("b"), 0},
		{String("c"), String("b"), 1},
		// Cross-kind: ordered by kind for totality.
		{Int(999), Double(0), -1},
		{String("a"), Int(999), 1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Int(a).Compare(Int(b)) == -Int(b).Compare(Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueEqual(t *testing.T) {
	if !Int(5).Equal(Int(5)) {
		t.Error("Int(5) should equal Int(5)")
	}
	if Int(5).Equal(Double(5)) {
		t.Error("Int(5) should not equal Double(5): kinds differ")
	}
	if !String("x").Equal(String("x")) {
		t.Error("String(x) should equal String(x)")
	}
	if Double(1.0).Equal(Double(1.5)) {
		t.Error("unequal doubles reported equal")
	}
}

func TestValueHashEqualValuesHashEqual(t *testing.T) {
	f := func(x int64) bool { return Int(x).Hash() == Int(x).Hash() }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(s string) bool { return String(s).Hash() == String(s).Hash() }
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestValueHashKindsDisambiguated(t *testing.T) {
	// An int and the double with the same numeric value must not collide
	// systematically: the kind byte participates in the hash.
	if Int(1).Hash() == Double(math.Float64frombits(uint64(1))).Hash() {
		t.Error("Int(1) and bit-identical Double hash equal; kind not hashed")
	}
}

func TestValueHashDistribution(t *testing.T) {
	// Sanity: hashing sequential ints modulo 16 should touch most buckets.
	buckets := make(map[uint64]int)
	for i := int64(0); i < 1000; i++ {
		buckets[Int(i).Hash()%16]++
	}
	if len(buckets) < 12 {
		t.Errorf("hash of sequential ints hit only %d/16 buckets", len(buckets))
	}
}

func TestSchemaBasics(t *testing.T) {
	s := NewSchema(
		Field{Name: "id", Type: TypeInt},
		Field{Name: "price", Type: TypeDouble},
		Field{Name: "sym", Type: TypeString},
		Field{Name: "qty", Type: TypeInt},
	)
	if s.Width() != 4 {
		t.Fatalf("Width = %d, want 4", s.Width())
	}
	if got := s.IndexOf("price"); got != 1 {
		t.Errorf("IndexOf(price) = %d, want 1", got)
	}
	if got := s.IndexOf("missing"); got != -1 {
		t.Errorf("IndexOf(missing) = %d, want -1", got)
	}
	ints := s.FieldsOfType(TypeInt)
	if len(ints) != 2 || ints[0] != 0 || ints[1] != 3 {
		t.Errorf("FieldsOfType(int) = %v, want [0 3]", ints)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("Validate() = %v, want nil", err)
	}
	if s.String() != "(id:int, price:double, sym:string, qty:int)" {
		t.Errorf("String() = %q", s.String())
	}
}

func TestSchemaValidateRejectsBadFields(t *testing.T) {
	dup := NewSchema(Field{Name: "a", Type: TypeInt}, Field{Name: "a", Type: TypeDouble})
	if err := dup.Validate(); err == nil {
		t.Error("duplicate field names not rejected")
	}
	empty := NewSchema(Field{Name: "", Type: TypeInt})
	if err := empty.Validate(); err == nil {
		t.Error("empty field name not rejected")
	}
}

func TestTupleCloneIsDeep(t *testing.T) {
	orig := New(100, Int(1), String("x"))
	orig.Seq = 7
	cl := orig.Clone()
	cl.Values[0] = Int(999)
	if orig.Values[0].I != 1 {
		t.Error("mutating clone changed original")
	}
	if cl.EventTime != 100 || cl.Seq != 7 {
		t.Errorf("clone lost metadata: %+v", cl)
	}
}

func TestTupleAccessors(t *testing.T) {
	tp := New(5, Int(1), Double(2), String("three"))
	if tp.Width() != 3 {
		t.Errorf("Width = %d, want 3", tp.Width())
	}
	if tp.At(2).S != "three" {
		t.Errorf("At(2) = %v", tp.At(2))
	}
	if got := tp.String(); got != "[1 2 three]@5" {
		t.Errorf("String() = %q", got)
	}
}

func TestTupleCloneKeepsIngest(t *testing.T) {
	orig := New(100, Int(1))
	orig.Ingest = 12345
	if cl := orig.Clone(); cl.Ingest != 12345 {
		t.Errorf("clone lost Ingest: %d", cl.Ingest)
	}
}
