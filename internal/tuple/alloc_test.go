package tuple

import (
	"testing"

	"pdspbench/internal/testutil"
)

// TestHashZeroAlloc locks in the inlined FNV-1a: hashing any value kind
// must not allocate, because the engine hashes once per tuple on the
// hash-partitioning and join paths.
func TestHashZeroAlloc(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	vals := []Value{Int(123456789), Double(3.14159), String("w042-benchmark-key")}
	var sink uint64
	for _, v := range vals {
		v := v
		if avg := testing.AllocsPerRun(1000, func() { sink += v.Hash() }); avg != 0 {
			t.Errorf("Hash(%v) allocates %.1f times per call, want 0", v, avg)
		}
	}
	_ = sink
}

// TestHashMatchesFNV1a pins the hash to the reference FNV-1a stream the
// pre-inline implementation produced (kind byte, then payload bytes), so
// recorded key→instance routing stays stable across releases.
func TestHashMatchesFNV1a(t *testing.T) {
	ref := func(bytes []byte) uint64 {
		h := uint64(14695981039346656037)
		for _, b := range bytes {
			h = (h ^ uint64(b)) * 1099511628211
		}
		return h
	}
	le := func(u uint64) []byte {
		b := make([]byte, 8)
		for i := range b {
			b[i] = byte(u >> (8 * i))
		}
		return b
	}
	cases := []struct {
		v      Value
		stream []byte
	}{
		{Int(-5), append([]byte{0}, le(uint64(0xfffffffffffffffb))...)},
		{Double(2.5), append([]byte{1}, le(0x4004000000000000)...)},
		{String("abc"), []byte{2, 'a', 'b', 'c'}},
	}
	for _, c := range cases {
		if got, want := c.v.Hash(), ref(c.stream); got != want {
			t.Errorf("Hash(%v) = %#x, want FNV-1a %#x", c.v, got, want)
		}
	}
}

// TestPoolRoundTrip: Get/Release recycle; Release on a caller-owned
// tuple is a no-op so fixtures replayed by tests are never recycled
// underneath their owners.
func TestPoolRoundTrip(t *testing.T) {
	p := Get(3)
	if len(p.Values) != 3 {
		t.Fatalf("Get(3) width = %d", len(p.Values))
	}
	p.Values[0] = Int(7)
	p.EventTime = 99
	p.Release()
	p.Release() // double release must be a no-op (pooled flag cleared)

	own := New(5, Int(1))
	own.Release() // caller-owned: must not enter the pool
	if !own.Values[0].Equal(Int(1)) || own.EventTime != 5 {
		t.Errorf("Release mutated a caller-owned tuple: %v", own)
	}

	got := Get(2)
	if got.EventTime != NoEventTime || got.Ingest != 0 || got.Seq != 0 {
		t.Errorf("recycled tuple has stale metadata: %+v", got)
	}
	if len(got.Values) != 2 {
		t.Errorf("recycled tuple width = %d, want 2", len(got.Values))
	}
	got.Release()
}

// TestClonePooledIsDeep mirrors TestTupleCloneIsDeep for the pooled
// fan-out clone path.
func TestClonePooledIsDeep(t *testing.T) {
	orig := New(100, Int(1), String("x"))
	orig.Ingest = 42
	orig.Seq = 7
	cl := orig.ClonePooled()
	cl.Values[0] = Int(999)
	if orig.Values[0].I != 1 {
		t.Error("mutating pooled clone changed original")
	}
	if cl.EventTime != 100 || cl.Ingest != 42 || cl.Seq != 7 {
		t.Errorf("pooled clone lost metadata: %+v", cl)
	}
	cl.Release()
}
