package tuple

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"testing"
)

// FuzzValueHash cross-checks the inlined FNV-1a in Value.Hash against
// the stdlib hash/fnv implementation consuming the same byte stream
// (kind byte, then little-endian bit pattern for numerics or raw bytes
// for strings). The inline version exists to keep hash state off the
// per-tuple hot path; this fuzzer pins it to the reference forever.
func FuzzValueHash(f *testing.F) {
	f.Add(byte(0), int64(42), 3.14, "hello")
	f.Add(byte(1), int64(-1), math.Inf(1), "")
	f.Add(byte(2), int64(0), math.NaN(), "ütf-8 ✓")
	f.Fuzz(func(t *testing.T, kind byte, i int64, d float64, s string) {
		var v Value
		switch Type(kind % 3) {
		case TypeInt:
			v = Int(i)
		case TypeDouble:
			v = Double(d)
		case TypeString:
			v = String(s)
		}
		ref := fnv.New64a()
		ref.Write([]byte{byte(v.Kind)})
		switch v.Kind {
		case TypeInt:
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], uint64(v.I))
			ref.Write(buf[:])
		case TypeDouble:
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.D))
			ref.Write(buf[:])
		case TypeString:
			ref.Write([]byte(v.S))
		}
		if got, want := v.Hash(), ref.Sum64(); got != want {
			t.Errorf("Value.Hash() = %#x, reference hash/fnv = %#x (value %+v)", got, want, v)
		}
	})
}
