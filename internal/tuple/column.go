// Columnar batches: the struct-of-arrays layout of the engine's
// vectorized data plane. A ColumnBatch stores one slab per schema field
// (a contiguous []int64, []float64 or []string) plus event-time, ingest
// and sequence columns and a selection vector, so operator kernels scan
// contiguous memory instead of chasing *Tuple pointers. Batches convert
// to and from row tuples only at plane boundaries (source fill, sink
// tap, handoff to a row-only operator chain).
//
// Ownership mirrors the row plane's pooled tuples: whoever holds a
// batch last calls Release; kernels mutate only the selection vector,
// never the slabs, so a batch can be cloned cheaply for fan-out.
package tuple

import (
	"math"
	"sync"
)

// ColumnBatch is a fixed-capacity struct-of-arrays micro-batch. Rows
// [0, Len()) are filled; the selection vector names the rows still
// live after filtering (vectorized filters shrink the selection, they
// never move slab data).
type ColumnBatch struct {
	kinds []Type
	cols  []col
	event []int64
	inge  []int64
	seq   []uint64
	sel   []int32
	n     int
	cap   int
	// wm is the watermark element riding on this batch: the producer's
	// event-time watermark as of emission, or NoEventTime when the batch
	// carries none. Watermarks flow through the columnar plane as batch
	// stamps (cheaper than a control message per advance); the receiver
	// applies the stamp after processing the rows, exactly as a trailing
	// row-plane watermark message would.
	wm int64
	// pooled marks batches obtained from GetColumnBatch; only those
	// return to the free list on Release.
	pooled bool
}

// col is one field's slab; exactly one slice is non-nil, chosen by the
// field's kind.
type col struct {
	ints   []int64
	floats []float64
	strs   []string
}

// NewColumnBatch builds an unpooled batch for the given field kinds
// with room for capacity rows.
func NewColumnBatch(kinds []Type, capacity int) *ColumnBatch {
	if capacity <= 0 {
		capacity = 1
	}
	b := &ColumnBatch{}
	b.shape(kinds, capacity)
	return b
}

// shape (re)allocates slabs so the batch holds capacity rows of kinds.
func (b *ColumnBatch) shape(kinds []Type, capacity int) {
	b.kinds = kinds
	b.n = 0
	if cap(b.cols) >= len(kinds) {
		b.cols = b.cols[:len(kinds)]
	} else {
		b.cols = make([]col, len(kinds))
	}
	for i, k := range kinds {
		c := &b.cols[i]
		switch k {
		case TypeInt:
			if cap(c.ints) < capacity {
				c.ints = make([]int64, capacity)
			}
			c.ints = c.ints[:capacity]
		case TypeDouble:
			if cap(c.floats) < capacity {
				c.floats = make([]float64, capacity)
			}
			c.floats = c.floats[:capacity]
		default:
			if cap(c.strs) < capacity {
				c.strs = make([]string, capacity)
			}
			c.strs = c.strs[:capacity]
		}
	}
	if cap(b.event) < capacity {
		b.event = make([]int64, capacity)
		b.inge = make([]int64, capacity)
		b.seq = make([]uint64, capacity)
		b.sel = make([]int32, 0, capacity)
	}
	b.event = b.event[:capacity]
	b.inge = b.inge[:capacity]
	b.seq = b.seq[:capacity]
	b.sel = b.sel[:0]
	b.cap = capacity
	b.wm = NoEventTime
}

// columnPool recycles batches across source refills and channel hops,
// the same role the row plane's tuple pool plays.
var columnPool = sync.Pool{New: func() any { return &ColumnBatch{} }}

// GetColumnBatch returns a pooled (or fresh) batch shaped for kinds and
// capacity, with zero rows. The caller owns it and must Release it (or
// hand ownership downstream) exactly once.
func GetColumnBatch(kinds []Type, capacity int) *ColumnBatch {
	b := columnPool.Get().(*ColumnBatch)
	b.pooled = true
	b.shape(kinds, capacity)
	return b
}

// Release returns a pooled batch to the free list; on unpooled batches
// it is a no-op, so drop points can release unconditionally. String
// slabs are cleared so recycled batches do not retain payloads.
func (b *ColumnBatch) Release() {
	if b == nil || !b.pooled {
		return
	}
	for i := range b.cols {
		if s := b.cols[i].strs; s != nil {
			for j := 0; j < b.n; j++ {
				s[j] = ""
			}
		}
	}
	b.n = 0
	b.sel = b.sel[:0]
	b.wm = NoEventTime
	b.pooled = false
	columnPool.Put(b)
}

// Width returns the number of fields.
func (b *ColumnBatch) Width() int { return len(b.kinds) }

// Cap returns the row capacity.
func (b *ColumnBatch) Cap() int { return b.cap }

// Len returns the number of filled rows (live or filtered out).
func (b *ColumnBatch) Len() int { return b.n }

// Live returns the number of selected (still live) rows.
func (b *ColumnBatch) Live() int { return len(b.sel) }

// Kinds returns the per-field kinds; callers must not mutate it.
func (b *ColumnBatch) Kinds() []Type { return b.kinds }

// Kind returns field f's kind.
func (b *ColumnBatch) Kind(f int) Type { return b.kinds[f] }

// Watermark returns the watermark element riding on this batch, or
// NoEventTime when the batch carries none.
func (b *ColumnBatch) Watermark() int64 { return b.wm }

// SetWatermark stamps a watermark onto the batch: a promise by the
// producer that every row it ships after this batch has event time
// >= wm. Receivers apply the stamp after the batch's own rows.
func (b *ColumnBatch) SetWatermark(wm int64) { b.wm = wm }

// Sel returns the selection vector: indexes of live rows in fill
// order. Kernels filter it in place and hand the shrunk slice back via
// SetSel.
func (b *ColumnBatch) Sel() []int32 { return b.sel }

// SetSel installs a shrunk selection vector (normally a prefix of the
// slice Sel returned, filtered in place).
func (b *ColumnBatch) SetSel(sel []int32) { b.sel = sel }

// IntCol, FloatCol and StrCol return field f's slab. The slab covers
// the batch's full capacity; only indexes below Len hold data. Calling
// the wrong accessor for the field's kind returns nil.
func (b *ColumnBatch) IntCol(f int) []int64     { return b.cols[f].ints }
func (b *ColumnBatch) FloatCol(f int) []float64 { return b.cols[f].floats }
func (b *ColumnBatch) StrCol(f int) []string    { return b.cols[f].strs }

// EventCol returns the event-time column (nanoseconds).
func (b *ColumnBatch) EventCol() []int64 { return b.event }

// IngestCol returns the ingest wall-clock column (UnixNano).
func (b *ColumnBatch) IngestCol() []int64 { return b.inge }

// SeqCol returns the per-source sequence column.
func (b *ColumnBatch) SeqCol() []uint64 { return b.seq }

// ValueAt boxes row i of field f into a Value — the row-plane view of
// one cell. Kernel loops must not call this (it re-boxes per cell);
// it exists for conversion boundaries and tests.
func (b *ColumnBatch) ValueAt(f, i int) Value {
	switch b.kinds[f] {
	case TypeInt:
		return Value{Kind: TypeInt, I: b.cols[f].ints[i]}
	case TypeDouble:
		return Value{Kind: TypeDouble, D: b.cols[f].floats[i]}
	default:
		return Value{Kind: TypeString, S: b.cols[f].strs[i]}
	}
}

// SetValueAt stores v into row i of field f, coercing by the column's
// kind the same way cross-kind tuples coerce nowhere — the caller must
// pass a value of the column's kind (AppendRow enforces this for whole
// tuples).
func (b *ColumnBatch) SetValueAt(f, i int, v Value) {
	switch b.kinds[f] {
	case TypeInt:
		b.cols[f].ints[i] = v.I
	case TypeDouble:
		b.cols[f].floats[i] = v.D
	default:
		b.cols[f].strs[i] = v.S
	}
}

// HashAt returns the FNV-1a hash of row i of field f — bit-identical
// to Value.Hash on the boxed cell, so hash partitioning routes a row
// to the same instance on either plane.
func (b *ColumnBatch) HashAt(f, i int) uint64 {
	k := b.kinds[f]
	h := uint64(fnvOffset64)
	h = (h ^ uint64(byte(k))) * fnvPrime64
	switch k {
	case TypeInt, TypeDouble:
		u := uint64(b.cols[f].ints[i])
		if k == TypeDouble {
			u = math.Float64bits(b.cols[f].floats[i])
		}
		for i := 0; i < 64; i += 8 {
			h = (h ^ (u >> i & 0xff)) * fnvPrime64
		}
	default:
		s := b.cols[f].strs[i]
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * fnvPrime64
		}
	}
	return h
}

// AppendRow copies one tuple into the next row (row→column conversion
// at a plane boundary). The tuple's values must match the batch's
// kinds; mismatched kinds store the matching payload field, mirroring
// how the row plane never coerces either. It panics when full, like a
// slab index out of range would.
func (b *ColumnBatch) AppendRow(t *Tuple) {
	i := b.n
	w := len(b.kinds)
	for f := 0; f < w && f < len(t.Values); f++ {
		b.SetValueAt(f, i, t.Values[f])
	}
	b.event[i] = t.EventTime
	b.inge[i] = t.Ingest
	b.seq[i] = t.Seq
	b.n = i + 1
}

// AppendJoined writes the concatenation of two tuples' values into the
// next row, with event and ingest time the pairwise max — the columnar
// form of a windowed join's output (left values, then right values),
// skipping the intermediate joined tuple entirely. Returns the new
// length.
func (b *ColumnBatch) AppendJoined(l, r *Tuple) int {
	i := b.n
	kinds, cols := b.kinds, b.cols
	f := 0
	// Pointer iteration: ranging by value would copy each ~40-byte Value
	// struct just to pick one payload field out of it.
	for vi := range l.Values {
		v := &l.Values[vi]
		switch kinds[f] {
		case TypeInt:
			cols[f].ints[i] = v.I
		case TypeDouble:
			cols[f].floats[i] = v.D
		default:
			cols[f].strs[i] = v.S
		}
		f++
	}
	for vi := range r.Values {
		v := &r.Values[vi]
		switch kinds[f] {
		case TypeInt:
			cols[f].ints[i] = v.I
		case TypeDouble:
			cols[f].floats[i] = v.D
		default:
			cols[f].strs[i] = v.S
		}
		f++
	}
	et, ing := l.EventTime, l.Ingest
	if r.EventTime > et {
		et = r.EventTime
	}
	if r.Ingest > ing {
		ing = r.Ingest
	}
	b.event[i] = et
	b.inge[i] = ing
	b.seq[i] = 0
	b.n = i + 1
	return b.n
}

// AppendRowFrom copies row i of src (same kinds) into the next row —
// the hash router's scatter step. Returns the new length.
func (b *ColumnBatch) AppendRowFrom(src *ColumnBatch, i int) int {
	j := b.n
	for f := range b.kinds {
		switch b.kinds[f] {
		case TypeInt:
			b.cols[f].ints[j] = src.cols[f].ints[i]
		case TypeDouble:
			b.cols[f].floats[j] = src.cols[f].floats[i]
		default:
			b.cols[f].strs[j] = src.cols[f].strs[i]
		}
	}
	b.event[j] = src.event[i]
	b.inge[j] = src.inge[i]
	b.seq[j] = src.seq[i]
	b.n = j + 1
	return b.n
}

// Seal marks rows [0, n) filled and selects them all. Fill paths that
// bypass AppendRow (the generator fast path writes slabs directly)
// call it with their row count; AppendRow callers pass Len().
func (b *ColumnBatch) Seal(n int) {
	b.n = n
	b.sel = b.sel[:0]
	for i := 0; i < n; i++ {
		b.sel = append(b.sel, int32(i))
	}
}

// SealSource is Seal plus source stamping: rows get ingest wall-clock
// now, sequence numbers seqBase+i, and — when the generator left event
// time unassigned (NoEventTime) — event time now, exactly as the
// row-plane source loop stamps each tuple.
func (b *ColumnBatch) SealSource(n int, now int64, seqBase uint64) {
	b.Seal(n)
	for i := 0; i < n; i++ {
		if b.event[i] == NoEventTime {
			b.event[i] = now
		}
		b.inge[i] = now
		b.seq[i] = seqBase + uint64(i)
	}
}

// MaterializeRow boxes row i into a pooled tuple (column→row
// conversion at a plane boundary); the caller owns the tuple.
func (b *ColumnBatch) MaterializeRow(i int) *Tuple {
	t := Get(len(b.kinds))
	for f := range b.kinds {
		t.Values[f] = b.ValueAt(f, i)
	}
	t.EventTime = b.event[i]
	t.Ingest = b.inge[i]
	t.Seq = b.seq[i]
	return t
}

// CloneColumns deep-copies the batch (filled rows and selection) into a
// pooled batch — the fan-out path's clone, so routes never share
// mutable selection vectors.
func (b *ColumnBatch) CloneColumns() *ColumnBatch {
	c := GetColumnBatch(b.kinds, b.cap)
	n := b.n
	for f, k := range b.kinds {
		switch k {
		case TypeInt:
			copy(c.cols[f].ints, b.cols[f].ints[:n])
		case TypeDouble:
			copy(c.cols[f].floats, b.cols[f].floats[:n])
		default:
			copy(c.cols[f].strs, b.cols[f].strs[:n])
		}
	}
	copy(c.event, b.event[:n])
	copy(c.inge, b.inge[:n])
	copy(c.seq, b.seq[:n])
	c.n = n
	c.sel = append(c.sel[:0], b.sel...)
	c.wm = b.wm
	return c
}

// KindsOf extracts the per-field kinds of a schema — the shape a
// ColumnBatch is allocated from.
func KindsOf(s *Schema) []Type {
	kinds := make([]Type, len(s.Fields))
	for i, f := range s.Fields {
		kinds[i] = f.Type
	}
	return kinds
}
