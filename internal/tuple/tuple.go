// Package tuple defines the data model shared by every PDSP-Bench
// component: typed values, schemas and timestamped stream tuples.
//
// Values are stored unboxed (a kind tag plus one field per kind) so that
// hot paths in the engine do not allocate per value.
package tuple

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
)

// Type enumerates the data types supported by PDSP-Bench streams. The
// paper's workload generator draws join and filter data types from
// {string, integer, double} (Table 3).
type Type int

const (
	TypeInt Type = iota
	TypeDouble
	TypeString
)

// String returns the lower-case name used in workload specifications.
func (t Type) String() string {
	switch t {
	case TypeInt:
		return "int"
	case TypeDouble:
		return "double"
	case TypeString:
		return "string"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// ParseType converts a workload-specification name into a Type.
func ParseType(s string) (Type, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "int", "integer", "long":
		return TypeInt, nil
	case "double", "float", "float64":
		return TypeDouble, nil
	case "string", "str", "varchar":
		return TypeString, nil
	default:
		return 0, fmt.Errorf("tuple: unknown type %q", s)
	}
}

// AllTypes lists every supported type, in a stable order used by the
// workload enumerator when randomizing schemas.
var AllTypes = []Type{TypeInt, TypeDouble, TypeString}

// Value is a single typed datum. Exactly one of I, D, S is meaningful,
// selected by Kind.
type Value struct {
	Kind Type
	I    int64
	D    float64
	S    string
}

// Int, Double and String construct values of the respective kinds.
func Int(v int64) Value      { return Value{Kind: TypeInt, I: v} }
func Double(v float64) Value { return Value{Kind: TypeDouble, D: v} }
func String(v string) Value  { return Value{Kind: TypeString, S: v} }

// AsFloat converts numeric values to float64; strings convert to their
// length so that aggregate functions remain total over any schema.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case TypeInt:
		return float64(v.I)
	case TypeDouble:
		return v.D
	case TypeString:
		return float64(len(v.S))
	default:
		return 0
	}
}

// String renders the value for logs and golden tests.
func (v Value) String() string {
	switch v.Kind {
	case TypeInt:
		return strconv.FormatInt(v.I, 10)
	case TypeDouble:
		return strconv.FormatFloat(v.D, 'g', -1, 64)
	case TypeString:
		return v.S
	default:
		return "?"
	}
}

// Equal reports exact equality of kind and payload.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case TypeInt:
		return v.I == o.I
	case TypeDouble:
		return v.D == o.D
	case TypeString:
		return v.S == o.S
	}
	return false
}

// Compare orders two values of the same kind: -1 if v<o, 0 if equal,
// +1 if v>o. Values of different kinds are ordered by kind so that the
// comparison stays a total order (filters on mixed kinds never panic).
func (v Value) Compare(o Value) int {
	if v.Kind != o.Kind {
		if v.Kind < o.Kind {
			return -1
		}
		return 1
	}
	switch v.Kind {
	case TypeInt:
		switch {
		case v.I < o.I:
			return -1
		case v.I > o.I:
			return 1
		}
	case TypeDouble:
		switch {
		case v.D < o.D:
			return -1
		case v.D > o.D:
			return 1
		}
	case TypeString:
		return strings.Compare(v.S, o.S)
	}
	return 0
}

// FNV-1a constants (hash/fnv), inlined so hashing stays allocation-free
// on the engine's per-tuple hot path.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Hash returns a stable 64-bit hash of the value, used by the hash
// partitioning strategy and by windowed joins for key lookup.
//
// The function is an inlined FNV-1a over the same byte stream the
// previous hash.Hash64-based implementation consumed — one kind byte,
// then the little-endian payload (bit pattern for doubles, raw bytes
// for strings) — so hash values are unchanged while the per-call
// hash-state allocation is gone.
func (v Value) Hash() uint64 {
	h := uint64(fnvOffset64)
	h = (h ^ uint64(byte(v.Kind))) * fnvPrime64
	switch v.Kind {
	case TypeInt, TypeDouble:
		u := uint64(v.I)
		if v.Kind == TypeDouble {
			// Hash the bit pattern; equal doubles hash equal.
			u = math.Float64bits(v.D)
		}
		for i := 0; i < 64; i += 8 {
			h = (h ^ (u >> i & 0xff)) * fnvPrime64
		}
	case TypeString:
		for i := 0; i < len(v.S); i++ {
			h = (h ^ uint64(v.S[i])) * fnvPrime64
		}
	}
	return h
}

// Field is one named, typed column of a schema.
type Field struct {
	Name string `json:"name"`
	Type Type   `json:"type"`
}

// Schema describes the layout of every tuple on a stream. Tuple width
// (the paper varies 1–15) is len(Fields).
type Schema struct {
	Fields []Field `json:"fields"`
}

// NewSchema builds a schema from (name, type) pairs.
func NewSchema(fields ...Field) *Schema {
	return &Schema{Fields: fields}
}

// Width returns the number of fields (the paper's "tuple width").
func (s *Schema) Width() int { return len(s.Fields) }

// IndexOf returns the position of the named field, or -1.
func (s *Schema) IndexOf(name string) int {
	for i, f := range s.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// FieldsOfType returns the indexes of all fields with the given type.
func (s *Schema) FieldsOfType(t Type) []int {
	var idx []int
	for i, f := range s.Fields {
		if f.Type == t {
			idx = append(idx, i)
		}
	}
	return idx
}

// Validate checks that field names are unique and non-empty.
func (s *Schema) Validate() error {
	seen := make(map[string]bool, len(s.Fields))
	for i, f := range s.Fields {
		if f.Name == "" {
			return fmt.Errorf("tuple: field %d has empty name", i)
		}
		if seen[f.Name] {
			return fmt.Errorf("tuple: duplicate field name %q", f.Name)
		}
		seen[f.Name] = true
	}
	return nil
}

// String renders the schema as "name:type, ...".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, f := range s.Fields {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(f.Name)
		b.WriteByte(':')
		b.WriteString(f.Type.String())
	}
	b.WriteByte(')')
	return b.String()
}

// NoEventTime marks a tuple (or column-batch row) whose event time has
// not been assigned yet. Sources stamp ingest wall-clock time over it.
// It is an explicit out-of-band marker, not a sentinel inside the valid
// domain: 0 is a legitimate event time (streams whose epoch starts at
// zero produce it on their very first tuple), so "unset" must live
// outside the domain entirely.
const NoEventTime int64 = math.MinInt64

// Tuple is one timestamped event on a data stream.
//
// EventTime is the creation time at the source in nanoseconds (either
// wall-clock for the real engine or simulated time for the simulator);
// end-to-end latency is measured from EventTime to sink delivery, matching
// the paper's definition (source production to sink output).
type Tuple struct {
	Values    []Value
	EventTime int64 // nanoseconds since stream epoch; NoEventTime when unset
	// Ingest is the wall-clock time (UnixNano) the source emitted the
	// tuple; the real engine measures end-to-end latency from it. Derived
	// tuples (aggregates, joins) carry the max of their constituents'.
	Ingest int64
	Seq    uint64
	// pooled marks tuples obtained from Get; only those return to the
	// free list on Release, so caller-owned tuples (test fixtures,
	// replayed traces) are never recycled underneath their owners.
	pooled bool
}

// New builds a tuple from values with the given event time.
func New(eventTime int64, values ...Value) *Tuple {
	return &Tuple{Values: values, EventTime: eventTime}
}

// Width returns the number of values carried.
func (t *Tuple) Width() int { return len(t.Values) }

// At returns the i-th value; it panics on out-of-range like a slice,
// which is the behaviour operator code relies on for schema bugs to
// surface in tests rather than be silently masked.
func (t *Tuple) At(i int) Value { return t.Values[i] }

// Clone deep-copies the tuple so downstream mutation cannot corrupt
// windows that retain it.
func (t *Tuple) Clone() *Tuple {
	vs := make([]Value, len(t.Values))
	copy(vs, t.Values)
	return &Tuple{Values: vs, EventTime: t.EventTime, Ingest: t.Ingest, Seq: t.Seq}
}

// pool is the free list behind Get/Release. High-rate sources allocate
// (and the engine discards) millions of tuples per second; recycling
// them keeps steady-state allocation — and therefore GC pressure — off
// the data plane's hot path.
var pool = sync.Pool{New: func() any { return new(Tuple) }}

// Get returns a recycled (or fresh) tuple with len(Values) == width,
// EventTime set to NoEventTime (unassigned) and the other metadata
// zeroed. The caller owns the tuple and must assign every value slot —
// recycled slots may hold stale values from a previous life. Ownership
// transfers downstream with the tuple; whoever drops it calls Release.
func Get(width int) *Tuple {
	t := pool.Get().(*Tuple)
	t.pooled = true
	t.EventTime, t.Ingest, t.Seq = NoEventTime, 0, 0
	if cap(t.Values) < width {
		t.Values = make([]Value, width)
	} else {
		t.Values = t.Values[:width]
	}
	return t
}

// Release returns a Get-allocated tuple to the free list; calling it on
// an ordinary tuple is a no-op, so drop points can release
// unconditionally. The caller must not touch the tuple afterwards.
func (t *Tuple) Release() {
	if t == nil || !t.pooled {
		return
	}
	t.pooled = false
	pool.Put(t)
}

// ClonePooled deep-copies t into a pooled tuple. The engine's fan-out
// path uses it so clones recycle like source tuples do.
func (t *Tuple) ClonePooled() *Tuple {
	c := Get(len(t.Values))
	copy(c.Values, t.Values)
	c.EventTime, c.Ingest, c.Seq = t.EventTime, t.Ingest, t.Seq
	return c
}

// String renders the tuple for logs and tests.
func (t *Tuple) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, v := range t.Values {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(v.String())
	}
	fmt.Fprintf(&b, "]@%d", t.EventTime)
	return b.String()
}
