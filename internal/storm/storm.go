// Package storm is the load harness for the serving front door: it
// replays N concurrent scripted clients — mixed tenants, open-loop
// arrival schedules, seeded for determinism — against a live or
// httptest dispatcher and reports sustained request rate, client-side
// latency quantiles and the 429/503 outcome counts.
//
// The harness speaks plain HTTP only. It deliberately does not import
// internal/queue (fenced by pdsplint's api-boundary rule) or
// internal/server: what it measures is exactly what an external client
// can observe, which is the point of a saturation harness.
//
// Open-loop means arrivals follow the schedule regardless of how many
// requests are still in flight — the property that lets the harness
// push a system past its capacity instead of being throttled by it
// (the sustainable-throughput methodology of Karimov et al.). The
// schedule is derived purely from the seed, so two storms with the same
// config fire the same arrival sequence; only service times differ.
package storm

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"pdspbench/internal/metrics"
)

// TenantHeader mirrors the dispatcher's tenant header without importing
// the server package (the harness is client-side by design).
const TenantHeader = "X-Tenant"

// ClientScript is one tenant's scripted load: Clients independent
// open-loop generators, each firing Body at RatePerSec with
// exponentially distributed inter-arrival gaps.
type ClientScript struct {
	// Tenant is sent as the X-Tenant header ("" = default tenant).
	Tenant string `json:"tenant"`
	// Clients is the number of concurrent generators (≥1).
	Clients int `json:"clients"`
	// RatePerSec is each generator's arrival rate; the tenant's offered
	// load is Clients × RatePerSec.
	RatePerSec float64 `json:"rate_per_s"`
	// Body is the POST /api/run payload this script replays.
	Body json.RawMessage `json:"body"`
}

// Config parameterizes one storm.
type Config struct {
	// BaseURL is the dispatcher root, e.g. http://127.0.0.1:8080.
	BaseURL string
	// HTTP defaults to http.DefaultClient.
	HTTP *http.Client
	// Seed drives every arrival schedule; same seed, same schedule.
	Seed int64
	// Duration is how long arrivals are generated for.
	Duration time.Duration
	// Scripts is the mixed-tenant load.
	Scripts []ClientScript
	// MaxRequests caps total arrivals (0 = schedule-bounded only); smoke
	// runs use it to stay shorter than their Duration would allow.
	MaxRequests int
}

// TenantReport is one tenant's client-side view of the storm.
type TenantReport struct {
	Requests    int     `json:"requests"`
	OK          int     `json:"ok"` // 2xx
	Rejected429 int     `json:"rejected_429"`
	Shed503     int     `json:"shed_503"`
	Other4xx    int     `json:"other_4xx"`
	Other5xx    int     `json:"other_5xx"`
	Transport   int     `json:"transport_errors"`
	P50MS       float64 `json:"p50_ms"`
	P99MS       float64 `json:"p99_ms"`
}

// Report is the storm's result: aggregate plus per-tenant breakdown,
// and the server's own serving snapshot fetched after the last response
// (admission-latency quantiles live there — the server measures the
// queue wait the client cannot see).
type Report struct {
	Seed             int64                   `json:"seed"`
	DurationS        float64                 `json:"duration_s"`
	Requests         int                     `json:"requests"`
	SustainedReqPerS float64                 `json:"sustained_req_per_s"`
	OK               int                     `json:"ok"`
	Rejected429      int                     `json:"rejected_429"`
	Shed503          int                     `json:"shed_503"`
	Other4xx         int                     `json:"other_4xx"`
	Other5xx         int                     `json:"other_5xx"`
	Transport        int                     `json:"transport_errors"`
	P50LatencyMS     float64                 `json:"p50_latency_ms"`
	P99LatencyMS     float64                 `json:"p99_latency_ms"`
	Tenants          map[string]TenantReport `json:"tenants"`
	// Serving is GET /api/serving/stats after the storm (nil when the
	// endpoint is unreachable).
	Serving *metrics.ServingSnapshot `json:"serving,omitempty"`
}

// arrival is one scheduled request.
type arrival struct {
	at     time.Duration
	tenant string
	body   []byte
}

// schedule expands the scripts into a time-sorted arrival sequence.
// Each generator gets its own deterministic rng stream (derived from
// the seed, the script index and the client index), so adding a script
// never perturbs the schedules of the others.
func schedule(cfg *Config) []arrival {
	var out []arrival
	for si, sc := range cfg.Scripts {
		clients := sc.Clients
		if clients < 1 {
			clients = 1
		}
		rate := sc.RatePerSec
		if rate <= 0 {
			rate = 1
		}
		for ci := 0; ci < clients; ci++ {
			rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(si)*7919 + int64(ci)))
			at := time.Duration(0)
			for {
				// Exponential inter-arrival: mean 1/rate seconds.
				gap := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
				at += gap
				if at >= cfg.Duration {
					break
				}
				out = append(out, arrival{at: at, tenant: sc.Tenant, body: sc.Body})
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].at < out[j].at })
	if cfg.MaxRequests > 0 && len(out) > cfg.MaxRequests {
		out = out[:cfg.MaxRequests]
	}
	return out
}

// outcome is one finished request.
type outcome struct {
	tenant    string
	status    int // 0 = transport error
	latencyMS float64
}

// Run fires the storm and blocks until every request has a response.
// Cancelling ctx stops launching new arrivals; in-flight requests still
// drain (they carry ctx, so cancellation aborts them quickly).
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if len(cfg.Scripts) == 0 {
		return nil, fmt.Errorf("storm: no client scripts")
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	httpc := cfg.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	base := strings.TrimRight(cfg.BaseURL, "/")
	arrivals := schedule(&cfg)

	var (
		mu       sync.Mutex
		outcomes = make([]outcome, 0, len(arrivals))
		wg       sync.WaitGroup
	)
	start := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()
launch:
	for _, a := range arrivals {
		delay := a.at - time.Since(start)
		if delay > 0 {
			timer.Reset(delay)
			select {
			case <-timer.C:
			case <-ctx.Done():
				break launch
			}
		} else if ctx.Err() != nil {
			break launch
		}
		wg.Add(1)
		go func(a arrival) {
			defer wg.Done()
			o := fire(ctx, httpc, base, a)
			mu.Lock()
			outcomes = append(outcomes, o)
			mu.Unlock()
		}(a)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := aggregate(outcomes, cfg.Seed, elapsed)
	rep.Serving = fetchServing(ctx, httpc, base)
	return rep, nil
}

// fire issues one scripted POST /api/run and classifies the response.
func fire(ctx context.Context, httpc *http.Client, base string, a arrival) outcome {
	t0 := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/api/run", bytes.NewReader(a.body))
	if err != nil {
		return outcome{tenant: a.tenant, status: 0}
	}
	req.Header.Set("Content-Type", "application/json")
	if a.tenant != "" {
		req.Header.Set(TenantHeader, a.tenant)
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return outcome{tenant: a.tenant, status: 0, latencyMS: float64(time.Since(t0).Microseconds()) / 1000}
	}
	// Drain so the connection is reusable under load; a close error on an
	// already-drained body changes nothing about the recorded outcome.
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	_ = resp.Body.Close()
	return outcome{tenant: a.tenant, status: resp.StatusCode, latencyMS: float64(time.Since(t0).Microseconds()) / 1000}
}

// aggregate folds outcomes into the report.
func aggregate(outcomes []outcome, seed int64, elapsed time.Duration) *Report {
	rep := &Report{
		Seed:      seed,
		DurationS: elapsed.Seconds(),
		Requests:  len(outcomes),
		Tenants:   map[string]TenantReport{},
	}
	all := make([]float64, 0, len(outcomes))
	perTenant := map[string][]float64{}
	for _, o := range outcomes {
		name := o.tenant
		if name == "" {
			name = "default"
		}
		tr := rep.Tenants[name]
		tr.Requests++
		switch {
		case o.status == 0:
			rep.Transport++
			tr.Transport++
		case o.status/100 == 2:
			rep.OK++
			tr.OK++
		case o.status == http.StatusTooManyRequests:
			rep.Rejected429++
			tr.Rejected429++
		case o.status == http.StatusServiceUnavailable:
			rep.Shed503++
			tr.Shed503++
		case o.status/100 == 4:
			rep.Other4xx++
			tr.Other4xx++
		default:
			rep.Other5xx++
			tr.Other5xx++
		}
		if o.status != 0 {
			all = append(all, o.latencyMS)
			perTenant[name] = append(perTenant[name], o.latencyMS)
		}
		rep.Tenants[name] = tr
	}
	if elapsed > 0 {
		rep.SustainedReqPerS = float64(len(outcomes)) / elapsed.Seconds()
	}
	rep.P50LatencyMS = metrics.Quantile(all, 0.50)
	rep.P99LatencyMS = metrics.Quantile(all, 0.99)
	for name, tr := range rep.Tenants {
		tr.P50MS = metrics.Quantile(perTenant[name], 0.50)
		tr.P99MS = metrics.Quantile(perTenant[name], 0.99)
		rep.Tenants[name] = tr
	}
	return rep
}

// fetchServing reads the dispatcher's own counters after the storm.
func fetchServing(ctx context.Context, httpc *http.Client, base string) *metrics.ServingSnapshot {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/api/serving/stats", nil)
	if err != nil {
		return nil
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var snap metrics.ServingSnapshot
	if json.NewDecoder(resp.Body).Decode(&snap) != nil {
		return nil
	}
	return &snap
}

// Spread measures fairness: the maximum relative deviation from the
// mean across the values (0 = perfectly even). The overload suite and
// the storm_smoke CI stage assert it stays within tolerance across
// equal-quota tenants.
func Spread(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	if mean == 0 {
		return 0
	}
	var worst float64
	for _, x := range xs {
		d := (x - mean) / mean
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}
