package storm

import (
	"os"
	"testing"

	"pdspbench/internal/testutil"
)

// TestMain gates the package with the goroutine-leak check: a storm
// that leaves request goroutines behind fails the whole package.
func TestMain(m *testing.M) { os.Exit(testutil.RunMain(m)) }
