package storm

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func testScripts() []ClientScript {
	body := json.RawMessage(`{"structure":"linear","parallelism":1}`)
	return []ClientScript{
		{Tenant: "alpha", Clients: 2, RatePerSec: 100, Body: body},
		{Tenant: "beta", Clients: 1, RatePerSec: 50, Body: body},
	}
}

// TestScheduleIsDeterministicPerSeed: the same config yields the exact
// same arrival sequence; a different seed yields a different one.
func TestScheduleIsDeterministicPerSeed(t *testing.T) {
	cfg := Config{Seed: 42, Duration: time.Second, Scripts: testScripts()}
	a := schedule(&cfg)
	b := schedule(&cfg)
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	if len(a) != len(b) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].at != b[i].at || a[i].tenant != b[i].tenant {
			t.Fatalf("arrival %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}

	other := Config{Seed: 43, Duration: time.Second, Scripts: testScripts()}
	c := schedule(&other)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i].at != c[i].at {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical schedules")
	}
}

// TestScheduleIsSortedAndCapped: arrivals come out time-ordered, within
// the duration, and MaxRequests truncates from the tail.
func TestScheduleIsSortedAndCapped(t *testing.T) {
	cfg := Config{Seed: 1, Duration: time.Second, Scripts: testScripts()}
	full := schedule(&cfg)
	for i := 1; i < len(full); i++ {
		if full[i].at < full[i-1].at {
			t.Fatalf("arrivals out of order at %d: %v < %v", i, full[i].at, full[i-1].at)
		}
	}
	for _, a := range full {
		if a.at >= cfg.Duration {
			t.Fatalf("arrival %v beyond duration %v", a.at, cfg.Duration)
		}
	}

	cfg.MaxRequests = 5
	capped := schedule(&cfg)
	if len(capped) != 5 {
		t.Fatalf("capped schedule has %d arrivals, want 5", len(capped))
	}
	for i := range capped {
		if capped[i].at != full[i].at {
			t.Errorf("cap changed arrival %d: %v vs %v", i, capped[i].at, full[i].at)
		}
	}
}

// TestRunClassifiesOutcomesByStatus drives a stub dispatcher that
// answers each tenant with a fixed status and checks every response
// lands in the right report bucket, including the serving snapshot.
func TestRunClassifiesOutcomesByStatus(t *testing.T) {
	var served atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/run", func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		switch r.Header.Get(TenantHeader) {
		case "alpha":
			w.WriteHeader(http.StatusOK)
		case "beta":
			w.WriteHeader(http.StatusTooManyRequests)
		case "gamma":
			w.WriteHeader(http.StatusServiceUnavailable)
		default:
			w.WriteHeader(http.StatusBadRequest)
		}
	})
	mux.HandleFunc("GET /api/serving/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"admitted":12,"completed":12}`))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	body := json.RawMessage(`{}`)
	rep, err := Run(context.Background(), Config{
		BaseURL:     ts.URL,
		Seed:        3,
		Duration:    500 * time.Millisecond,
		MaxRequests: 30,
		Scripts: []ClientScript{
			{Tenant: "alpha", Clients: 1, RatePerSec: 200, Body: body},
			{Tenant: "beta", Clients: 1, RatePerSec: 200, Body: body},
			{Tenant: "gamma", Clients: 1, RatePerSec: 200, Body: body},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.Requests > 30 {
		t.Fatalf("requests = %d", rep.Requests)
	}
	if int64(rep.Requests) != served.Load() {
		t.Errorf("report says %d requests, server saw %d", rep.Requests, served.Load())
	}
	if rep.OK != rep.Tenants["alpha"].Requests {
		t.Errorf("OK=%d, alpha requests=%d", rep.OK, rep.Tenants["alpha"].Requests)
	}
	if rep.Rejected429 != rep.Tenants["beta"].Requests {
		t.Errorf("429=%d, beta requests=%d", rep.Rejected429, rep.Tenants["beta"].Requests)
	}
	if rep.Shed503 != rep.Tenants["gamma"].Requests {
		t.Errorf("503=%d, gamma requests=%d", rep.Shed503, rep.Tenants["gamma"].Requests)
	}
	if rep.Other4xx != 0 || rep.Other5xx != 0 || rep.Transport != 0 {
		t.Errorf("unexpected buckets: %+v", rep)
	}
	if rep.Serving == nil || rep.Serving.Admitted != 12 {
		t.Errorf("serving snapshot: %+v", rep.Serving)
	}
	if rep.SustainedReqPerS <= 0 {
		t.Errorf("sustained rate %v", rep.SustainedReqPerS)
	}
}

// TestRunStopsLaunchingOnCancel: cancelling the context mid-storm stops
// new arrivals; Run still returns a report of what fired.
func TestRunStopsLaunchingOnCancel(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) })
	ts := httptest.NewServer(mux)
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	rep, err := Run(ctx, Config{
		BaseURL:  ts.URL,
		Seed:     1,
		Duration: time.Hour, // would run forever without the cancel
		Scripts:  []ClientScript{{Tenant: "alpha", Clients: 1, RatePerSec: 50, Body: json.RawMessage(`{}`)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests > 20 {
		t.Errorf("cancel did not stop the launch loop: %d requests", rep.Requests)
	}
}

// TestRunRejectsEmptyScripts: a storm with nothing to fire is an error,
// not a silent no-op report.
func TestRunRejectsEmptyScripts(t *testing.T) {
	if _, err := Run(context.Background(), Config{BaseURL: "http://127.0.0.1:0"}); err == nil {
		t.Error("Run accepted a config with no scripts")
	}
}

// TestSpread pins the fairness metric: zero for even splits, exact
// relative deviation otherwise.
func TestSpread(t *testing.T) {
	if got := Spread(nil); got != 0 {
		t.Errorf("Spread(nil) = %v", got)
	}
	if got := Spread([]float64{5, 5, 5}); got != 0 {
		t.Errorf("Spread(even) = %v", got)
	}
	// Mean 3; worst deviation |2-3|/3 = 1/3.
	if got := Spread([]float64{2, 4}); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("Spread(2,4) = %v, want 1/3", got)
	}
	if got := Spread([]float64{0, 0}); got != 0 {
		t.Errorf("Spread(zeros) = %v", got)
	}
}
