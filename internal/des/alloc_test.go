package des

import (
	"testing"

	"pdspbench/internal/testutil"
)

// TestScheduleAllocsAmortized gates the kernel's hot cycle: once the
// heap has grown to its working size, scheduling and executing an event
// with a prebuilt callback allocates nothing — the ≤1 amortized alloc
// per event budget is spent entirely on the caller's own closure, if it
// builds one.
func TestScheduleAllocsAmortized(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	s := New()
	fired := 0
	fn := func() { fired++ }
	// Warm the heap to working size so append growth is paid up front.
	for i := 0; i < 1024; i++ {
		s.After(float64(i), fn)
	}
	s.Run()
	if avg := testing.AllocsPerRun(2000, func() {
		s.After(1, fn)
		s.Step()
	}); avg > 1 {
		t.Errorf("schedule+step allocates %.2f per event, want ≤ 1 amortized", avg)
	}
	if fired == 0 {
		t.Fatal("events never fired")
	}
}

// TestTimerRecurringZeroAlloc: a Timer re-armed from its own callback —
// the recurring pattern every simulation model uses — must not allocate
// per firing; the closure is built once in NewTimer.
func TestTimerRecurringZeroAlloc(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	s := New()
	count := 0
	var tm *Timer
	tm = s.NewTimer(func() {
		count++
		if count < 64 {
			tm.Reset(1)
		}
	})
	tm.Reset(1)
	s.Run() // grow the heap and exercise one full recurrence
	if count != 64 {
		t.Fatalf("recurring timer fired %d times, want 64", count)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		tm.Reset(1)
		s.Step()
	}); avg > 0 {
		t.Errorf("timer firing allocates %.2f per event, want 0", avg)
	}
}

// TestTimerResetAndStop: Reset from outside supersedes the pending
// firing, and Stop cancels it entirely.
func TestTimerResetAndStop(t *testing.T) {
	s := New()
	fired := 0
	tm := s.NewTimer(func() { fired++ })
	tm.Reset(5)
	tm.Reset(10) // supersedes the t=5 firing
	s.Run()
	if fired != 1 {
		t.Errorf("superseded timer fired %d times, want 1", fired)
	}
	if s.Now() != 10 {
		t.Errorf("clock = %v, want 10 (the re-armed deadline)", s.Now())
	}

	tm.Reset(3)
	tm.Stop()
	tm.Stop() // idempotent
	s.Run()
	if fired != 1 {
		t.Errorf("stopped timer fired; total %d, want 1", fired)
	}
	if s.Pending() != 0 {
		t.Errorf("Pending = %d after Stop, want 0", s.Pending())
	}
}

// TestCancelViaHandle: cancelled events do not run and leave Pending
// consistent even when interleaved with live events.
func TestCancelViaHandle(t *testing.T) {
	s := New()
	var ran []int
	h1 := s.After(1, func() { ran = append(ran, 1) })
	s.After(2, func() { ran = append(ran, 2) })
	h3 := s.After(3, func() { ran = append(ran, 3) })
	h1.Cancel()
	h3.Cancel()
	h3.Cancel() // double cancel must not corrupt the dead count
	if s.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", s.Pending())
	}
	s.Run()
	if len(ran) != 1 || ran[0] != 2 {
		t.Errorf("ran = %v, want [2]", ran)
	}
}
