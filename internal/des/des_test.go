package des

import (
	"math/rand"
	"sort"
	"testing"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New()
	var fired []float64
	for _, at := range []float64{5, 1, 3, 2, 4} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	s.Run()
	if !sort.Float64sAreSorted(fired) {
		t.Errorf("events out of order: %v", fired)
	}
	if len(fired) != 5 {
		t.Errorf("fired %d events, want 5", len(fired))
	}
	if s.Now() != 5 {
		t.Errorf("clock = %v, want 5", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(1.0, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	s := New()
	var at float64
	s.After(2, func() {
		s.After(3, func() { at = s.Now() })
	})
	s.Run()
	if at != 5 {
		t.Errorf("nested After fired at %v, want 5", at)
	}
}

func TestSchedulingInPastClampsToNow(t *testing.T) {
	s := New()
	var when float64 = -1
	s.At(10, func() {
		s.At(3, func() { when = s.Now() }) // in the past
	})
	s.Run()
	if when != 10 {
		t.Errorf("past event fired at %v, want clamped to 10", when)
	}
	s2 := New()
	fired := false
	s2.After(-5, func() { fired = true })
	s2.Run()
	if !fired || s2.Now() != 0 {
		t.Error("negative delay should fire immediately at now")
	}
}

func TestRunUntilHorizon(t *testing.T) {
	s := New()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4, 5} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	s.RunUntil(3)
	if len(fired) != 3 {
		t.Errorf("fired %d events by horizon 3, want 3", len(fired))
	}
	if s.Now() != 3 {
		t.Errorf("clock = %v, want horizon 3", s.Now())
	}
	if s.Pending() != 2 {
		t.Errorf("pending = %d, want 2", s.Pending())
	}
	s.RunUntil(10)
	if len(fired) != 5 {
		t.Errorf("fired %d events total, want 5", len(fired))
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	h := s.At(1, func() { fired = true })
	h.Cancel()
	s.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if s.Steps() != 0 {
		t.Errorf("Steps = %d, want 0", s.Steps())
	}
	// Cancel after run is a no-op.
	h2 := s.At(2, func() {})
	s.Run()
	h2.Cancel()
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	s := New()
	if s.Step() {
		t.Error("Step on empty queue returned true")
	}
	s.At(1, func() {})
	if !s.Step() {
		t.Error("Step with queued event returned false")
	}
	if s.Step() {
		t.Error("Step after draining returned true")
	}
}

func TestEventsCanScheduleMoreEvents(t *testing.T) {
	s := New()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			s.After(0.5, tick)
		}
	}
	s.After(0.5, tick)
	s.Run()
	if count != 100 {
		t.Errorf("chained ticks = %d, want 100", count)
	}
	if s.Now() != 50 {
		t.Errorf("clock = %v, want 50", s.Now())
	}
	if s.Steps() != 100 {
		t.Errorf("Steps = %d, want 100", s.Steps())
	}
}

func TestRandomizedOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	s := New()
	var times []float64
	for i := 0; i < 1000; i++ {
		at := rng.Float64() * 100
		s.At(at, func() { times = append(times, s.Now()) })
	}
	s.Run()
	if !sort.Float64sAreSorted(times) {
		t.Error("execution times not monotone under random insertion")
	}
	if len(times) != 1000 {
		t.Errorf("executed %d, want 1000", len(times))
	}
}
