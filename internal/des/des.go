// Package des is a minimal discrete-event simulation kernel: a simulated
// clock plus a priority queue of timestamped events. The cluster
// simulator (internal/simengine) uses it to execute parallel query plans
// at event rates (up to the paper's 4M events/s) and parallelism degrees
// (up to 256) that cannot be driven in real time on a single machine.
//
// The queue is an index-based 4-ary min-heap over inline event values:
// no container/heap interface boxing, no per-event pointer allocation,
// and pops move at most one value without the nil-out churn a pointer
// heap needs to stay GC-friendly. Scheduling an event costs zero
// allocations beyond amortized heap growth; the one allocation a caller
// typically pays is its own callback closure, and recurring model timers
// avoid even that by reusing one closure through Timer.
package des

// Time is simulated time in seconds.
type Time = float64

// event is a scheduled callback, stored by value in the heap.
type event struct {
	at   Time
	seq  uint64 // FIFO tie-break for simultaneous events
	fn   func()
	dead bool
}

// before orders events by time, then FIFO by schedule order.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Simulator owns the clock and the event queue.
type Simulator struct {
	now     Time
	heap    []event // 4-ary min-heap, element 0 is the root
	seq     uint64
	steps   uint64
	dead    int // cancelled events still in the heap
	stopped bool
}

// New returns a simulator at time zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current simulated time in seconds.
func (s *Simulator) Now() Time { return s.now }

// Steps returns how many events have been executed.
func (s *Simulator) Steps() uint64 { return s.steps }

// Handle lets a scheduled event be cancelled.
type Handle struct {
	s   *Simulator
	seq uint64
}

// Cancel prevents the event from firing; calling it after the event ran
// is a no-op. Cancellation scans the queue (O(n)) — it is a rare
// operation on cold paths, and keeping events inline in the heap is
// what makes the hot schedule/pop cycle allocation-free.
func (h Handle) Cancel() {
	if h.s == nil {
		return
	}
	for i := range h.s.heap {
		if h.s.heap[i].seq == h.seq {
			if !h.s.heap[i].dead {
				h.s.heap[i].dead = true
				h.s.dead++
			}
			return
		}
	}
}

// At schedules fn at the given absolute time; scheduling in the past
// (before Now) fires at Now, preserving causality rather than panicking,
// because simulation models routinely compute "finished already" service
// times of zero.
func (s *Simulator) At(t Time, fn func()) Handle {
	if t < s.now {
		t = s.now
	}
	h := Handle{s: s, seq: s.seq}
	s.push(event{at: t, seq: s.seq, fn: fn})
	s.seq++
	return h
}

// After schedules fn delay seconds from now.
func (s *Simulator) After(delay Time, fn func()) Handle {
	if delay < 0 {
		delay = 0
	}
	return s.At(s.now+delay, fn)
}

// push appends e and sifts it up its 4-ary parent chain.
func (s *Simulator) push(e event) {
	s.heap = append(s.heap, e)
	i := len(s.heap) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !s.heap[i].before(&s.heap[p]) {
			break
		}
		s.heap[i], s.heap[p] = s.heap[p], s.heap[i]
		i = p
	}
}

// pop removes and returns the minimum event. The vacated tail slot keeps
// its stale value (bounded retention of one callback per slot until the
// next push overwrites it) — cheaper than zeroing every pop.
func (s *Simulator) pop() event {
	top := s.heap[0]
	n := len(s.heap) - 1
	s.heap[0] = s.heap[n]
	s.heap = s.heap[:n]
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		last := first + 4
		if last > n {
			last = n
		}
		min := i
		for c := first; c < last; c++ {
			if s.heap[c].before(&s.heap[min]) {
				min = c
			}
		}
		if min == i {
			break
		}
		s.heap[i], s.heap[min] = s.heap[min], s.heap[i]
		i = min
	}
	return top
}

// Stop aborts the run: RunUntil and Run return after the event that
// called it, leaving the clock where it stopped. A simulation model
// uses this to bail out of a run that can no longer make progress
// (e.g. a fault killed the last instance of an operator) instead of
// grinding through a schedule whose results will be discarded.
func (s *Simulator) Stop() { s.stopped = true }

// Stopped reports whether Stop aborted the run.
func (s *Simulator) Stopped() bool { return s.stopped }

// Step executes the next event; it reports false when the queue is empty.
func (s *Simulator) Step() bool {
	for len(s.heap) > 0 {
		e := s.pop()
		if e.dead {
			s.dead--
			continue
		}
		s.now = e.at
		s.steps++
		e.fn()
		return true
	}
	return false
}

// RunUntil executes events until the clock passes the horizon or the
// queue drains; events scheduled exactly at the horizon still run.
func (s *Simulator) RunUntil(horizon Time) {
	for len(s.heap) > 0 && !s.stopped {
		// Peek.
		if s.heap[0].dead {
			s.pop()
			s.dead--
			continue
		}
		if s.heap[0].at > horizon {
			break
		}
		s.Step()
	}
	if s.now < horizon && !s.stopped {
		s.now = horizon
	}
}

// Run executes all events to quiescence (use with models that stop
// generating new work, otherwise it will not return). The clock is left
// at the time of the last executed event.
func (s *Simulator) Run() {
	for !s.stopped && s.Step() {
	}
}

// Pending returns the number of live events still queued.
func (s *Simulator) Pending() int {
	return len(s.heap) - s.dead
}

// Timer is a reusable scheduled callback — the free list for recurring
// model events. A plain After allocates one closure per scheduling; a
// Timer allocates its closure once and every Reset reuses it, so
// periodic work (source emission, window slides, service completions)
// schedules with zero per-firing allocations.
type Timer struct {
	s       *Simulator
	fn      func()
	handle  Handle
	pending bool
}

// NewTimer builds a timer around fn; it fires only when Reset arms it.
func (s *Simulator) NewTimer(fn func()) *Timer {
	tm := &Timer{s: s}
	tm.fn = func() {
		tm.pending = false
		fn()
	}
	return tm
}

// Reset (re)arms the timer to fire delay seconds from now, cancelling a
// still-pending earlier firing. Calling Reset from inside the timer's
// own callback is the idiomatic recurring pattern and costs no
// cancellation scan (the firing already cleared the pending flag).
func (tm *Timer) Reset(delay Time) {
	if tm.pending {
		tm.handle.Cancel()
	}
	tm.pending = true
	tm.handle = tm.s.After(delay, tm.fn)
}

// Stop cancels a pending firing; it is a no-op on an idle timer.
func (tm *Timer) Stop() {
	if tm.pending {
		tm.handle.Cancel()
		tm.pending = false
	}
}
