// Package des is a minimal discrete-event simulation kernel: a simulated
// clock plus a priority queue of timestamped events. The cluster
// simulator (internal/simengine) uses it to execute parallel query plans
// at event rates (up to the paper's 4M events/s) and parallelism degrees
// (up to 256) that cannot be driven in real time on a single machine.
package des

import (
	"container/heap"
)

// Time is simulated time in seconds.
type Time = float64

// Event is a scheduled callback.
type event struct {
	at   Time
	seq  uint64 // FIFO tie-break for simultaneous events
	fn   func()
	dead bool
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Simulator owns the clock and the event queue.
type Simulator struct {
	now   Time
	queue eventQueue
	seq   uint64
	steps uint64
}

// New returns a simulator at time zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current simulated time in seconds.
func (s *Simulator) Now() Time { return s.now }

// Steps returns how many events have been executed.
func (s *Simulator) Steps() uint64 { return s.steps }

// Handle lets a scheduled event be cancelled.
type Handle struct{ e *event }

// Cancel prevents the event from firing; calling it after the event ran
// is a no-op.
func (h Handle) Cancel() {
	if h.e != nil {
		h.e.dead = true
	}
}

// At schedules fn at the given absolute time; scheduling in the past
// (before Now) fires at Now, preserving causality rather than panicking,
// because simulation models routinely compute "finished already" service
// times of zero.
func (s *Simulator) At(t Time, fn func()) Handle {
	if t < s.now {
		t = s.now
	}
	e := &event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, e)
	return Handle{e}
}

// After schedules fn delay seconds from now.
func (s *Simulator) After(delay Time, fn func()) Handle {
	if delay < 0 {
		delay = 0
	}
	return s.At(s.now+delay, fn)
}

// Step executes the next event; it reports false when the queue is empty.
func (s *Simulator) Step() bool {
	for s.queue.Len() > 0 {
		e := heap.Pop(&s.queue).(*event)
		if e.dead {
			continue
		}
		s.now = e.at
		s.steps++
		e.fn()
		return true
	}
	return false
}

// RunUntil executes events until the clock passes the horizon or the
// queue drains; events scheduled exactly at the horizon still run.
func (s *Simulator) RunUntil(horizon Time) {
	for s.queue.Len() > 0 {
		// Peek.
		next := s.queue[0]
		if next.dead {
			heap.Pop(&s.queue)
			continue
		}
		if next.at > horizon {
			break
		}
		s.Step()
	}
	if s.now < horizon {
		s.now = horizon
	}
}

// Run executes all events to quiescence (use with models that stop
// generating new work, otherwise it will not return). The clock is left
// at the time of the last executed event.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// Pending returns the number of live events still queued.
func (s *Simulator) Pending() int {
	n := 0
	for _, e := range s.queue {
		if !e.dead {
			n++
		}
	}
	return n
}
