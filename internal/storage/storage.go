// Package storage is PDSP-Bench's run database — the role MongoDB plays
// in the paper's deployment ("we also allow to store the generated
// workload in a database ... that can be used for training ML models").
// Collections are append-only JSON-lines files under one directory, so a
// benchmark corpus survives process restarts and can be re-read for
// model training without re-running workloads.
//
// The append-only contract: records are only ever appended, never
// rewritten in place — Drop removes a whole collection, and that is the
// only destructive operation. Consumers therefore treat a collection as
// an immutable log prefix: anything Load returned stays true, and
// replaying a journal collection (the fabric's "fabricjournal") always
// folds the same state. A Store is owned by one process; the fabric
// keeps that invariant by funnelling all worker writes through the
// dispatcher rather than sharing the directory.
package storage

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Store is a directory-backed collection set. It is safe for concurrent
// use within one process.
//
// Locking contract: one mutex serializes every file operation — Append,
// AppendAll, Load, Count and Drop all hold it for their full critical
// section, so a reader never observes a torn record and interleaved
// writers never interleave bytes within a record. JSON marshalling
// happens before the lock is taken (marshal failures write nothing) and
// files are opened per call rather than cached, so the lock never
// outlives a single syscall sequence. The mutex does not guard against
// other processes appending to the same directory; the fabric funnels
// all writes through the dispatcher process for exactly that reason.
type Store struct {
	dir string
	mu  sync.Mutex
}

// Open creates the directory if needed and returns the store.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	return &Store{dir: dir}, nil
}

// validateCollection keeps names path-safe.
func validateCollection(name string) error {
	if name == "" || strings.ContainsAny(name, "/\\.") {
		return fmt.Errorf("storage: invalid collection name %q", name)
	}
	return nil
}

func (s *Store) path(collection string) string {
	return filepath.Join(s.dir, collection+".jsonl")
}

// Append serializes v and appends it to the collection.
func (s *Store) Append(collection string, v any) error {
	if err := validateCollection(collection); err != nil {
		return err
	}
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("storage: marshal: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := os.OpenFile(s.path(collection), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("storage: write: %w", err)
	}
	return nil
}

// AppendAll appends a batch atomically with respect to other writers in
// this process: the whole batch is marshalled first (a marshal failure
// writes nothing), then written contiguously under one lock acquisition
// and one file write, so concurrent appenders can never interleave their
// records inside the batch.
func (s *Store) AppendAll(collection string, vs ...any) error {
	if err := validateCollection(collection); err != nil {
		return err
	}
	if len(vs) == 0 {
		return nil
	}
	var buf bytes.Buffer
	for _, v := range vs {
		data, err := json.Marshal(v)
		if err != nil {
			return fmt.Errorf("storage: marshal: %w", err)
		}
		buf.Write(data)
		buf.WriteByte('\n')
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := os.OpenFile(s.path(collection), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("storage: write: %w", err)
	}
	return nil
}

// Load decodes every record of the collection into out, which must be a
// pointer to a slice. A missing collection yields an empty slice.
func Load[T any](s *Store, collection string) ([]T, error) {
	if err := validateCollection(collection); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := os.Open(s.path(collection))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	defer f.Close()
	var out []T
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		if len(strings.TrimSpace(sc.Text())) == 0 {
			continue
		}
		var v T
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			return nil, fmt.Errorf("storage: %s line %d: %w", collection, line, err)
		}
		out = append(out, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("storage: scan: %w", err)
	}
	return out, nil
}

// Count returns the number of records in the collection.
func (s *Store) Count(collection string) (int, error) {
	records, err := Load[json.RawMessage](s, collection)
	if err != nil {
		return 0, err
	}
	return len(records), nil
}

// Collections lists existing collection names, sorted by the filesystem.
func (s *Store) Collections() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	var out []string
	for _, e := range entries {
		if name, ok := strings.CutSuffix(e.Name(), ".jsonl"); ok && !e.IsDir() {
			out = append(out, name)
		}
	}
	return out, nil
}

// Drop removes a collection; dropping a missing collection is a no-op.
func (s *Store) Drop(collection string) error {
	if err := validateCollection(collection); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	err := os.Remove(s.path(collection))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}
