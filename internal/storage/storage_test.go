package storage

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

type rec struct {
	ID   int    `json:"id"`
	Name string `json:"name"`
}

func openTemp(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAppendAndLoadRoundTrip(t *testing.T) {
	s := openTemp(t)
	want := []rec{{1, "a"}, {2, "b"}, {3, "c"}}
	for _, r := range want {
		if err := s.Append("runs", r); err != nil {
			t.Fatal(err)
		}
	}
	got, err := Load[rec](s, "runs")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("loaded %d records", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestLoadMissingCollectionIsEmpty(t *testing.T) {
	s := openTemp(t)
	got, err := Load[rec](s, "nothing")
	if err != nil || got != nil {
		t.Errorf("Load(missing) = %v, %v", got, err)
	}
}

func TestCountAndCollections(t *testing.T) {
	s := openTemp(t)
	s.Append("a", rec{1, "x"})
	s.Append("a", rec{2, "y"})
	s.Append("b", rec{3, "z"})
	if n, _ := s.Count("a"); n != 2 {
		t.Errorf("Count(a) = %d", n)
	}
	cols, err := s.Collections()
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2 || cols[0] != "a" || cols[1] != "b" {
		t.Errorf("Collections = %v", cols)
	}
}

func TestDrop(t *testing.T) {
	s := openTemp(t)
	s.Append("a", rec{1, "x"})
	if err := s.Drop("a"); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.Count("a"); n != 0 {
		t.Errorf("records survive Drop: %d", n)
	}
	if err := s.Drop("a"); err != nil {
		t.Errorf("dropping missing collection: %v", err)
	}
}

func TestInvalidCollectionNames(t *testing.T) {
	s := openTemp(t)
	for _, name := range []string{"", "a/b", `a\b`, "a.b"} {
		if err := s.Append(name, rec{}); err == nil {
			t.Errorf("Append accepted collection %q", name)
		}
		if _, err := Load[rec](s, name); err == nil {
			t.Errorf("Load accepted collection %q", name)
		}
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1.Append("runs", rec{7, "persist"})
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Load[rec](s2, "runs")
	if err != nil || len(got) != 1 || got[0].ID != 7 {
		t.Errorf("reopened store lost data: %v, %v", got, err)
	}
}

func TestConcurrentAppends(t *testing.T) {
	s := openTemp(t)
	var wg sync.WaitGroup
	const writers, per = 8, 50
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := s.Append("conc", rec{w*per + i, "x"}); err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	wg.Wait()
	got, err := Load[rec](s, "conc")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != writers*per {
		t.Errorf("concurrent appends lost records: %d/%d", len(got), writers*per)
	}
}

func TestCorruptLineSurfacesError(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	s.Append("runs", rec{1, "ok"})
	f, _ := os.OpenFile(filepath.Join(dir, "runs.jsonl"), os.O_APPEND|os.O_WRONLY, 0o644)
	f.WriteString("{corrupt\n")
	f.Close()
	if _, err := Load[rec](s, "runs"); err == nil {
		t.Error("corrupt record loaded without error")
	}
}

func TestAppendAll(t *testing.T) {
	s := openTemp(t)
	if err := s.AppendAll("batch", rec{1, "a"}, rec{2, "b"}); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.Count("batch"); n != 2 {
		t.Errorf("AppendAll stored %d", n)
	}
}

// TestConcurrentAppendLoadHammer drives readers and both writers against
// one collection at once. Under -race it proves the locking contract on
// Store; in any mode it proves AppendAll batches land contiguously (no
// writer can interleave inside a batch) and nothing is lost or torn.
func TestConcurrentAppendLoadHammer(t *testing.T) {
	s := openTemp(t)
	const writers, batches, batchLen, readers = 4, 25, 4, 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				base := (w*batches + b) * batchLen
				batch := make([]any, batchLen)
				for i := range batch {
					batch[i] = rec{base + i, "batch"}
				}
				if err := s.AppendAll("hammer", batch...); err != nil {
					t.Error(err)
				}
				if err := s.Append("hammer", rec{-(base + 1), "single"}); err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				got, err := Load[rec](s, "hammer")
				if err != nil {
					t.Errorf("concurrent Load: %v", err)
					return
				}
				// A reader may see any prefix of the final state, but
				// every record it sees must be intact.
				for _, g := range got {
					if g.Name != "batch" && g.Name != "single" {
						t.Errorf("torn record %+v", g)
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	got, err := Load[rec](s, "hammer")
	if err != nil {
		t.Fatal(err)
	}
	if want := writers * batches * (batchLen + 1); len(got) != want {
		t.Fatalf("hammer lost records: %d/%d", len(got), want)
	}
	// Each AppendAll batch must be contiguous in the file: whenever a
	// batch record appears, the rest of its batch follows immediately.
	for i := 0; i < len(got); {
		if got[i].Name == "single" {
			i++
			continue
		}
		base := got[i].ID
		for j := 0; j < batchLen; j++ {
			if got[i+j].ID != base+j {
				t.Fatalf("batch starting at %d interleaved: record %d is %+v", base, i+j, got[i+j])
			}
		}
		i += batchLen
	}
}
