package stream

import (
	"container/heap"
	"math"
	"math/rand"

	"pdspbench/internal/core"
	"pdspbench/internal/stats"
	"pdspbench/internal/tuple"
)

// zipfBurstScale stretches zipfburst delays past the bounded-skew
// watermark allowance: delays reach up to zipfBurstScale × MaxSkewMs, so
// the straggler tail genuinely arrives after the watermark and is
// dropped-and-counted rather than absorbed.
const zipfBurstScale = 4

// zipfBurstLevels is the support size of the zipfburst delay draw.
const zipfBurstLevels = 100

// Disordered wraps a generator and delivers its tuples out of event-time
// order. Each tuple is assigned a random delivery delay and held in a
// buffer keyed by release time (event time + delay); a tuple is released
// once the underlying source has advanced past its release time, so the
// output interleaving is exactly what a real out-of-order transport
// (racing partitions, retried sends) produces. The wrapper is seeded and
// fully deterministic.
//
// Disordered deliberately does not implement the engine's punctuated
// Watermarker interface: a disordered source is the case the periodic
// bounded-skew watermark heuristic exists for.
type Disordered struct {
	src   Generator
	rng   *rand.Rand
	zipf  *stats.Zipf // zipfburst only
	h     disorderHeap
	skew  int64 // MaxSkewMs in nanoseconds
	maxEt int64 // newest event time drawn from the source
	seq   uint64
	done  bool
}

// NewDisordered wraps g according to spec. A nil spec returns g
// unchanged so call sites can wire it unconditionally.
func NewDisordered(g Generator, spec *core.DisorderSpec, seed int64) Generator {
	if spec == nil {
		return g
	}
	d := &Disordered{
		src:   g,
		rng:   rand.New(rand.NewSource(seed)),
		skew:  spec.MaxSkewMs * 1e6,
		maxEt: math.MinInt64,
	}
	if spec.Kind == core.DisorderZipfBurst {
		d.zipf = stats.NewZipf(d.rng, 1.5, zipfBurstLevels)
	}
	return d
}

// Next implements Generator: it pulls from the source, buffers by
// release time, and emits the earliest-release tuple once the source
// clock has passed it (or unconditionally once the source is exhausted,
// which drains the buffer in release order).
func (d *Disordered) Next() (*tuple.Tuple, bool) {
	for {
		if d.h.Len() > 0 {
			top := d.h.ents[0]
			if d.done || top.release <= d.maxEt {
				heap.Pop(&d.h)
				return top.t, true
			}
		} else if d.done {
			return nil, false
		}
		t, ok := d.src.Next()
		if !ok {
			d.done = true
			continue
		}
		if t.EventTime == tuple.NoEventTime {
			// Untimed tuples carry no event-time order to disturb; pass
			// them straight through.
			return t, true
		}
		if t.EventTime > d.maxEt {
			d.maxEt = t.EventTime
		}
		heap.Push(&d.h, disorderEnt{t: t, release: t.EventTime + d.delayNs(), seq: d.seq})
		d.seq++
	}
}

// delayNs draws one delivery delay. Bounded disorder is uniform over
// [0, skew], so with the watermark allowance set to the same skew no
// tuple is ever late. Zipfburst draws a Zipf level and scales it up to
// zipfBurstScale × skew: most tuples are near-in-order, a heavy tail
// straggles far past the watermark.
func (d *Disordered) delayNs() int64 {
	if d.zipf == nil {
		return d.rng.Int63n(d.skew + 1)
	}
	level := int64(d.zipf.Next()) // [0, zipfBurstLevels)
	return level * zipfBurstScale * d.skew / (zipfBurstLevels - 1)
}

type disorderEnt struct {
	t       *tuple.Tuple
	release int64
	seq     uint64 // arrival order; ties release deterministically
}

type disorderHeap struct {
	ents []disorderEnt
}

func (h *disorderHeap) Len() int { return len(h.ents) }
func (h *disorderHeap) Less(i, j int) bool {
	a, b := h.ents[i], h.ents[j]
	if a.release != b.release {
		return a.release < b.release
	}
	return a.seq < b.seq
}
func (h *disorderHeap) Swap(i, j int) { h.ents[i], h.ents[j] = h.ents[j], h.ents[i] }
func (h *disorderHeap) Push(x any)    { h.ents = append(h.ents, x.(disorderEnt)) }
func (h *disorderHeap) Pop() any {
	old := h.ents
	n := len(old)
	e := old[n-1]
	h.ents = old[:n-1]
	return e
}
