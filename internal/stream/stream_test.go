package stream

import (
	"math"
	"testing"

	"pdspbench/internal/tuple"
)

var testSchema = tuple.NewSchema(
	tuple.Field{Name: "k", Type: tuple.TypeInt},
	tuple.Field{Name: "v", Type: tuple.TypeDouble},
	tuple.Field{Name: "s", Type: tuple.TypeString},
)

func TestSyntheticRespectsSchemaAndBounds(t *testing.T) {
	g := NewSynthetic(testSchema, 1, 500, 1000, "poisson")
	n := 0
	for {
		tp, ok := g.Next()
		if !ok {
			break
		}
		n++
		if tp.Width() != 3 {
			t.Fatalf("width %d", tp.Width())
		}
		if k := tp.At(0); k.Kind != tuple.TypeInt || k.I < 0 || k.I >= IntFieldMax {
			t.Fatalf("int field out of model: %v", k)
		}
		if v := tp.At(1); v.Kind != tuple.TypeDouble || v.D < 0 || v.D >= 1 {
			t.Fatalf("double field out of model: %v", v)
		}
		if s := tp.At(2); s.Kind != tuple.TypeString || len(s.S) != 4 || s.S[0] != 'w' {
			t.Fatalf("string field out of vocabulary: %v", s)
		}
	}
	if n != 500 {
		t.Errorf("generated %d tuples, want 500", n)
	}
}

func TestSyntheticEventTimesMatchRate(t *testing.T) {
	const rate = 10_000.0
	g := NewSynthetic(testSchema, 2, 20_000, rate, "poisson")
	var last int64
	var count int
	for {
		tp, ok := g.Next()
		if !ok {
			break
		}
		if tp.EventTime <= last {
			t.Fatal("event times not strictly increasing")
		}
		last = tp.EventTime
		count++
	}
	// 20k tuples at 10k/s should span ≈2s of logical time.
	gotRate := float64(count) / (float64(last) / 1e9)
	if math.Abs(gotRate-rate) > rate*0.05 {
		t.Errorf("empirical rate %v, want ≈%v", gotRate, rate)
	}
}

func TestSyntheticZipfSkewsKeys(t *testing.T) {
	g := NewSynthetic(testSchema, 3, 20_000, 1000, "zipf")
	counts := map[int64]int{}
	for {
		tp, ok := g.Next()
		if !ok {
			break
		}
		counts[tp.At(0).I]++
	}
	if counts[0] < 20000/10 {
		t.Errorf("zipf key 0 appears %d times; expected heavy skew", counts[0])
	}
	// Poisson (uniform keys) must not share that skew.
	g2 := NewSynthetic(testSchema, 3, 20_000, 1000, "poisson")
	counts2 := map[int64]int{}
	for {
		tp, ok := g2.Next()
		if !ok {
			break
		}
		counts2[tp.At(0).I]++
	}
	if counts2[0] > counts[0]/5 {
		t.Errorf("uniform keys look as skewed as zipf: %d vs %d", counts2[0], counts[0])
	}
}

func TestSyntheticDeterministicForSeed(t *testing.T) {
	a := NewSynthetic(testSchema, 7, 100, 1000, "poisson")
	b := NewSynthetic(testSchema, 7, 100, 1000, "poisson")
	for {
		ta, oka := a.Next()
		tb, okb := b.Next()
		if oka != okb {
			t.Fatal("generators diverged in length")
		}
		if !oka {
			break
		}
		if ta.String() != tb.String() {
			t.Fatalf("same seed produced %v vs %v", ta, tb)
		}
	}
}

func TestSyntheticUnboundedWhenMaxNonPositive(t *testing.T) {
	g := NewSynthetic(testSchema, 1, 0, 1000, "poisson")
	for i := 0; i < 5000; i++ {
		if _, ok := g.Next(); !ok {
			t.Fatal("unbounded generator ended")
		}
	}
}

func TestWordClamps(t *testing.T) {
	if Word(-1) != "w000" || Word(VocabularySize+5) != Word(VocabularySize-1) {
		t.Error("Word does not clamp out-of-range indexes")
	}
	if Word(7) != "w007" {
		t.Errorf("Word(7) = %q", Word(7))
	}
}

func TestFromTuplesReplaysInOrder(t *testing.T) {
	ts := []*tuple.Tuple{
		tuple.New(1, tuple.Int(1)),
		tuple.New(2, tuple.Int(2)),
	}
	g := NewFromTuples(ts...)
	for i := 0; i < 2; i++ {
		tp, ok := g.Next()
		if !ok || tp.At(0).I != int64(i+1) {
			t.Fatalf("replay %d: %v %v", i, tp, ok)
		}
	}
	if _, ok := g.Next(); ok {
		t.Error("exhausted generator returned a tuple")
	}
}

func TestLimitCaps(t *testing.T) {
	g := Limit(NewSynthetic(testSchema, 1, 0, 1000, "poisson"), 7)
	n := 0
	for {
		_, ok := g.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 7 {
		t.Errorf("Limit(7) yielded %d", n)
	}
}

func TestFuncAdapter(t *testing.T) {
	calls := 0
	g := Func(func() (*tuple.Tuple, bool) {
		calls++
		return tuple.New(int64(calls), tuple.Int(int64(calls))), calls < 3
	})
	for {
		_, ok := g.Next()
		if !ok {
			break
		}
	}
	if calls != 3 {
		t.Errorf("Func called %d times", calls)
	}
}
