// Package stream generates the data streams PDSP-Bench feeds its System
// Under Test — the role Apache Kafka plays in the paper's deployment.
// Synthetic streams randomize tuple width, field data types and event
// rates (Table 3) under a fixed value model so that filter selectivities
// are estimable; application streams (internal/apps) mimic the real-world
// traces the paper replays (DEBS smart grid, ad clicks, stock ticks, …).
package stream

import (
	"fmt"
	"math/rand"

	"pdspbench/internal/stats"
	"pdspbench/internal/tuple"
)

// The synthetic value model: int fields are uniform over [0, IntFieldMax),
// double fields uniform over [0, 1), string fields drawn from a
// lexicographically ordered VocabularySize-word vocabulary ("w000"…).
// The workload generator's selectivity estimation inverts exactly this
// model, which is how it guarantees generated filters pass data.
const (
	IntFieldMax    = 1000
	VocabularySize = 100
)

// Word returns vocabulary word i ("w007").
func Word(i int) string {
	if i < 0 {
		i = 0
	}
	if i >= VocabularySize {
		i = VocabularySize - 1
	}
	return fmt.Sprintf("w%03d", i)
}

// Generator is the engine-facing stream interface (mirrors
// engine.SourceGenerator without importing it, so apps can depend on
// stream alone).
type Generator interface {
	Next() (*tuple.Tuple, bool)
}

// Synthetic produces random tuples for a schema with logical event times
// spaced by the configured event rate.
type Synthetic struct {
	schema *tuple.Schema
	rng    *rand.Rand
	zipf   *stats.Zipf // non-nil for skewed key popularity
	max    int
	n      int
	gapNs  float64
	rate   float64
	now    float64 // logical nanoseconds
}

// NewSynthetic creates a generator emitting max tuples (max ≤ 0 means
// unbounded — mimicking the paper's "repeat the data stream ... to mimic
// infinite data streams"). distribution is "poisson" (exponential gaps)
// or "zipf" (Poisson arrivals with Zipf-skewed keys in field 0).
func NewSynthetic(schema *tuple.Schema, seed int64, max int, eventRate float64, distribution string) *Synthetic {
	if eventRate <= 0 {
		eventRate = 1000
	}
	rng := rand.New(rand.NewSource(seed))
	s := &Synthetic{
		schema: schema,
		rng:    rng,
		max:    max,
		rate:   eventRate,
		gapNs:  1e9 / eventRate,
	}
	if distribution == "zipf" {
		s.zipf = stats.NewZipf(rng, 1.5, IntFieldMax)
	}
	return s
}

// Next implements Generator.
func (s *Synthetic) Next() (*tuple.Tuple, bool) {
	if s.max > 0 && s.n >= s.max {
		return nil, false
	}
	s.n++
	// Poisson process: exponential inter-arrival gaps at the event rate.
	s.now += stats.Exponential(s.rng, s.rate) * 1e9
	// Pooled allocation: the engine returns dropped tuples via Release,
	// so a steady-state run recycles its working set instead of churning
	// one tuple allocation per event.
	t := tuple.Get(s.schema.Width())
	for i, f := range s.schema.Fields {
		t.Values[i] = s.randomValue(f.Type, i == 0)
	}
	t.EventTime = int64(s.now)
	return t, true
}

// NextColumns fills a column batch directly — the engine's
// ColumnFiller fast path, skipping per-tuple boxing entirely. It
// consumes randomness in exactly Next()'s order (one inter-arrival gap,
// then the fields left to right, per row), so a columnar run from a
// seed produces bit-identical tuples to a row run from the same seed.
func (s *Synthetic) NextColumns(b *tuple.ColumnBatch) int {
	rows := b.Cap()
	ev := b.EventCol()
	n := 0
	for n < rows {
		if s.max > 0 && s.n >= s.max {
			break
		}
		s.n++
		s.now += stats.Exponential(s.rng, s.rate) * 1e9
		for i, f := range s.schema.Fields {
			switch f.Type {
			case tuple.TypeInt:
				if i == 0 && s.zipf != nil {
					b.IntCol(i)[n] = int64(s.zipf.Next())
				} else {
					b.IntCol(i)[n] = int64(s.rng.Intn(IntFieldMax))
				}
			case tuple.TypeDouble:
				b.FloatCol(i)[n] = s.rng.Float64()
			default:
				b.StrCol(i)[n] = Word(s.rng.Intn(VocabularySize))
			}
		}
		ev[n] = int64(s.now)
		n++
	}
	return n
}

func (s *Synthetic) randomValue(t tuple.Type, isKey bool) tuple.Value {
	switch t {
	case tuple.TypeInt:
		if isKey && s.zipf != nil {
			return tuple.Int(int64(s.zipf.Next()))
		}
		return tuple.Int(int64(s.rng.Intn(IntFieldMax)))
	case tuple.TypeDouble:
		return tuple.Double(s.rng.Float64())
	default:
		return tuple.String(Word(s.rng.Intn(VocabularySize)))
	}
}

// FromTuples replays a fixed slice — deterministic inputs for tests.
type FromTuples struct {
	ts []*tuple.Tuple
	i  int
	wm int64
}

// NewFromTuples wraps the given tuples.
func NewFromTuples(ts ...*tuple.Tuple) *FromTuples {
	return &FromTuples{ts: ts, wm: tuple.NoEventTime}
}

// Next implements Generator.
func (f *FromTuples) Next() (*tuple.Tuple, bool) {
	if f.i >= len(f.ts) {
		return nil, false
	}
	t := f.ts[f.i]
	f.i++
	if t.EventTime != tuple.NoEventTime && t.EventTime > f.wm {
		f.wm = t.EventTime
	}
	return t, true
}

// Watermark implements the engine's punctuated-watermark interface:
// after every tuple the stream asserts completeness up to the maximum
// event time it has replayed. Fixtures therefore see a watermark advance
// on each in-order arrival — the same per-arrival granularity the
// processing-time engine had — while out-of-order fixtures only advance
// on the new maximum.
func (f *FromTuples) Watermark() int64 { return f.wm }

// Func adapts a closure to a Generator.
type Func func() (*tuple.Tuple, bool)

// Next implements Generator.
func (f Func) Next() (*tuple.Tuple, bool) { return f() }

// Limit caps an underlying generator to n tuples.
func Limit(g Generator, n int) Generator {
	count := 0
	return Func(func() (*tuple.Tuple, bool) {
		if count >= n {
			return nil, false
		}
		count++
		return g.Next()
	})
}
