// Package cluster models the distributed hardware PDSP-Bench deploys
// onto. The paper runs on the CloudLab testbed (Table 4) with one
// homogeneous cluster (m510) and two clusters used to form heterogeneous
// deployments (c6525_25g, c6320). Since CloudLab is not reachable from
// this reproduction, the same catalogue is modelled: node types carry the
// published core counts, clock speeds and NIC bandwidths, and a placement
// component maps parallel operator instances onto nodes exactly the way
// the paper's controller does through Kubernetes/Yarn.
package cluster

import (
	"fmt"
	"sort"

	"pdspbench/internal/core"
)

// NodeType describes one CloudLab hardware flavour (one row of Table 4).
type NodeType struct {
	Name      string  `json:"name"`
	Cores     int     `json:"cores"`
	RAMGB     int     `json:"ram_gb"`
	StorageGB int     `json:"storage_gb"`
	Processor string  `json:"processor"`
	ClockGHz  float64 `json:"clock_ghz"`
	NetGbps   float64 `json:"net_gbps"`
	// IPCFactor is the per-clock efficiency of the microarchitecture
	// relative to the Xeon-D baseline; it lets the simulator distinguish
	// a 2.2 GHz EPYC Rome core from a 2.0 GHz Haswell core the way real
	// heterogeneous executions do.
	IPCFactor float64 `json:"ipc_factor"`
}

// Speed is the effective per-core processing speed relative to the m510
// baseline (= 1.0).
func (nt NodeType) Speed() float64 {
	const baseGHz, baseIPC = 2.0, 1.0
	return (nt.ClockGHz / baseGHz) * (nt.IPCFactor / baseIPC)
}

// The CloudLab node types from Table 4 of the paper.
var (
	M510 = NodeType{
		Name: "m510", Cores: 8, RAMGB: 64, StorageGB: 256,
		Processor: "Intel Xeon D-1548", ClockGHz: 2.0, NetGbps: 10, IPCFactor: 1.0,
	}
	C6525_25G = NodeType{
		Name: "c6525_25g", Cores: 16, RAMGB: 128, StorageGB: 480,
		Processor: "AMD EPYC 7302P", ClockGHz: 2.2, NetGbps: 25, IPCFactor: 1.35,
	}
	C6320 = NodeType{
		Name: "c6320", Cores: 28, RAMGB: 256, StorageGB: 1024,
		Processor: "Intel Xeon E5-2683 v3 (Haswell)", ClockGHz: 2.0, NetGbps: 10, IPCFactor: 1.1,
	}
)

// Catalogue lists all known node types by name.
var Catalogue = map[string]NodeType{
	M510.Name:      M510,
	C6525_25G.Name: C6525_25G,
	C6320.Name:     C6320,
}

// NodeTypeByName looks a node type up in the catalogue.
func NodeTypeByName(name string) (NodeType, error) {
	nt, ok := Catalogue[name]
	if !ok {
		return NodeType{}, fmt.Errorf("cluster: unknown node type %q", name)
	}
	return nt, nil
}

// Node is one provisioned machine.
type Node struct {
	ID   int      `json:"id"`
	Type NodeType `json:"type"`
}

// Cluster is a set of provisioned nodes onto which a PQP is deployed.
type Cluster struct {
	Name  string `json:"name"`
	Nodes []Node `json:"nodes"`
}

// NewHomogeneous provisions n nodes of a single type — the paper's m510
// configuration.
func NewHomogeneous(name string, nt NodeType, n int) *Cluster {
	c := &Cluster{Name: name}
	for i := 0; i < n; i++ {
		c.Nodes = append(c.Nodes, Node{ID: i, Type: nt})
	}
	return c
}

// NewHeterogeneous provisions nodes cycling over the given types — the
// paper's heterogeneous deployments mix c6525_25g and c6320 (and m510)
// flavours within one cluster.
func NewHeterogeneous(name string, types []NodeType, n int) *Cluster {
	c := &Cluster{Name: name}
	for i := 0; i < n; i++ {
		c.Nodes = append(c.Nodes, Node{ID: i, Type: types[i%len(types)]})
	}
	return c
}

// TotalCores sums cores over all nodes — the capacity bound the
// rule-based parallelism strategy respects.
func (c *Cluster) TotalCores() int {
	var n int
	for _, node := range c.Nodes {
		n += node.Type.Cores
	}
	return n
}

// IsHeterogeneous reports whether the cluster mixes node types.
func (c *Cluster) IsHeterogeneous() bool {
	if len(c.Nodes) == 0 {
		return false
	}
	first := c.Nodes[0].Type.Name
	for _, n := range c.Nodes[1:] {
		if n.Type.Name != first {
			return true
		}
	}
	return false
}

// MinNodeSpeed and MaxNodeSpeed return the slowest/fastest per-core
// speeds in the cluster; their ratio quantifies heterogeneity.
func (c *Cluster) MinNodeSpeed() float64 {
	if len(c.Nodes) == 0 {
		return 0
	}
	m := c.Nodes[0].Type.Speed()
	for _, n := range c.Nodes[1:] {
		if s := n.Type.Speed(); s < m {
			m = s
		}
	}
	return m
}

// MaxNodeSpeed returns the fastest per-core speed in the cluster.
func (c *Cluster) MaxNodeSpeed() float64 {
	var m float64
	for _, n := range c.Nodes {
		if s := n.Type.Speed(); s > m {
			m = s
		}
	}
	return m
}

// String summarises the cluster.
func (c *Cluster) String() string {
	counts := map[string]int{}
	for _, n := range c.Nodes {
		counts[n.Type.Name]++
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	s := fmt.Sprintf("cluster %q:", c.Name)
	for _, n := range names {
		s += fmt.Sprintf(" %d×%s", counts[n], n)
	}
	return s
}

// Instance identifies one physical instance of a logical operator.
type Instance struct {
	OpID  string `json:"op_id"`
	Index int    `json:"index"` // 0 … parallelism-1
}

// Placement maps every operator instance of a PQP to a node.
type Placement struct {
	Cluster *Cluster
	// NodeOf[opID][instanceIndex] = node index in Cluster.Nodes.
	NodeOf map[string][]int
}

// NodeFor returns the node hosting the given instance.
func (p *Placement) NodeFor(opID string, idx int) Node {
	return p.Cluster.Nodes[p.NodeOf[opID][idx]]
}

// SameNode reports whether two instances share a machine (their link is
// then local and free of network cost).
func (p *Placement) SameNode(aOp string, aIdx int, bOp string, bIdx int) bool {
	return p.NodeOf[aOp][aIdx] == p.NodeOf[bOp][bIdx]
}

// InstancesPerNode counts placed instances per node, used to model CPU
// oversubscription when parallelism exceeds available cores.
func (p *Placement) InstancesPerNode() []int {
	counts := make([]int, len(p.Cluster.Nodes))
	for _, nodes := range p.NodeOf {
		for _, n := range nodes {
			counts[n]++
		}
	}
	return counts
}

// Strategy chooses nodes for instances.
type Strategy int

const (
	// PlaceRoundRobin cycles instances across nodes, the default Flink
	// slot-sharing-off behaviour the paper benchmarks under.
	PlaceRoundRobin Strategy = iota
	// PlaceLeastLoaded assigns each instance to the node with the most
	// free cores (weighted by node speed), approximating a resource
	// manager that respects machine capacity.
	PlaceLeastLoaded
	// PlaceOperatorAffine packs all instances of one operator on as few
	// nodes as possible, minimising intra-operator network traffic at the
	// price of hot spots.
	PlaceOperatorAffine
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case PlaceRoundRobin:
		return "round-robin"
	case PlaceLeastLoaded:
		return "least-loaded"
	case PlaceOperatorAffine:
		return "operator-affine"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Place computes a placement of the plan onto the cluster. The operator
// order is the plan's topological order so placements are deterministic
// for a given (plan, cluster, strategy) triple.
func Place(plan *core.PQP, c *Cluster, s Strategy) (*Placement, error) {
	if len(c.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: cannot place on empty cluster %q", c.Name)
	}
	order, err := plan.TopoOrder()
	if err != nil {
		return nil, err
	}
	p := &Placement{Cluster: c, NodeOf: make(map[string][]int, len(order))}
	switch s {
	case PlaceRoundRobin:
		next := 0
		for _, id := range order {
			op := plan.Op(id)
			nodes := make([]int, op.Parallelism)
			for i := range nodes {
				nodes[i] = next % len(c.Nodes)
				next++
			}
			p.NodeOf[id] = nodes
		}
	case PlaceLeastLoaded:
		load := make([]float64, len(c.Nodes)) // instances ÷ weighted capacity
		for _, id := range order {
			op := plan.Op(id)
			nodes := make([]int, op.Parallelism)
			for i := range nodes {
				best, bestLoad := 0, load[0]/capacity(c.Nodes[0])
				for n := 1; n < len(c.Nodes); n++ {
					if l := load[n] / capacity(c.Nodes[n]); l < bestLoad {
						best, bestLoad = n, l
					}
				}
				nodes[i] = best
				load[best]++
			}
			p.NodeOf[id] = nodes
		}
	case PlaceOperatorAffine:
		node := 0
		for _, id := range order {
			op := plan.Op(id)
			nodes := make([]int, op.Parallelism)
			free := c.Nodes[node].Type.Cores
			for i := range nodes {
				if free == 0 {
					node = (node + 1) % len(c.Nodes)
					free = c.Nodes[node].Type.Cores
				}
				nodes[i] = node
				free--
			}
			p.NodeOf[id] = nodes
			node = (node + 1) % len(c.Nodes)
		}
	default:
		return nil, fmt.Errorf("cluster: unknown placement strategy %d", s)
	}
	return p, nil
}

func capacity(n Node) float64 {
	return float64(n.Type.Cores) * n.Type.Speed()
}
