package cluster

import (
	"testing"

	"pdspbench/internal/core"
	"pdspbench/internal/tuple"
)

func testPlan(par int) *core.PQP {
	p := core.NewPQP("t", "linear")
	schema := tuple.NewSchema(tuple.Field{Name: "v", Type: tuple.TypeDouble})
	p.Add(&core.Operator{ID: "src", Kind: core.OpSource, Parallelism: 1,
		Source: &core.SourceSpec{Schema: schema, EventRate: 1000}})
	p.Add(&core.Operator{ID: "f", Kind: core.OpFilter, Parallelism: par,
		Filter: &core.FilterSpec{Field: 0, Fn: core.FilterGreater, Literal: tuple.Double(0), Selectivity: 0.5}})
	p.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1})
	p.Connect("src", "f")
	p.Connect("f", "sink")
	return p
}

func TestCatalogueMatchesTable4(t *testing.T) {
	cases := []struct {
		name    string
		cores   int
		ramGB   int
		ghz     float64
		netGbps float64
	}{
		{"m510", 8, 64, 2.0, 10},
		{"c6525_25g", 16, 128, 2.2, 25},
		{"c6320", 28, 256, 2.0, 10},
	}
	for _, c := range cases {
		nt, err := NodeTypeByName(c.name)
		if err != nil {
			t.Fatalf("NodeTypeByName(%s): %v", c.name, err)
		}
		if nt.Cores != c.cores || nt.RAMGB != c.ramGB || nt.ClockGHz != c.ghz || nt.NetGbps != c.netGbps {
			t.Errorf("%s = %+v, want cores=%d ram=%d ghz=%v net=%v",
				c.name, nt, c.cores, c.ramGB, c.ghz, c.netGbps)
		}
	}
	if _, err := NodeTypeByName("p4"); err == nil {
		t.Error("unknown node type accepted")
	}
}

func TestNodeSpeedOrdering(t *testing.T) {
	// EPYC (2.2GHz, higher IPC) must be fastest per core; m510 baseline 1.0.
	if M510.Speed() != 1.0 {
		t.Errorf("m510 speed = %v, want 1.0 baseline", M510.Speed())
	}
	if !(C6525_25G.Speed() > C6320.Speed() && C6320.Speed() > M510.Speed()) {
		t.Errorf("speed order wrong: epyc=%v haswell=%v xeon-d=%v",
			C6525_25G.Speed(), C6320.Speed(), M510.Speed())
	}
}

func TestHomogeneousCluster(t *testing.T) {
	c := NewHomogeneous("ho", M510, 5)
	if len(c.Nodes) != 5 {
		t.Fatalf("nodes = %d, want 5", len(c.Nodes))
	}
	if c.IsHeterogeneous() {
		t.Error("homogeneous cluster reported heterogeneous")
	}
	if got := c.TotalCores(); got != 40 {
		t.Errorf("TotalCores = %d, want 40", got)
	}
	if c.MinNodeSpeed() != c.MaxNodeSpeed() {
		t.Error("homogeneous cluster has speed spread")
	}
}

func TestHeterogeneousCluster(t *testing.T) {
	c := NewHeterogeneous("he", []NodeType{C6525_25G, C6320}, 4)
	if !c.IsHeterogeneous() {
		t.Error("mixed cluster reported homogeneous")
	}
	if got := c.TotalCores(); got != 2*16+2*28 {
		t.Errorf("TotalCores = %d, want %d", got, 2*16+2*28)
	}
	if !(c.MaxNodeSpeed() > c.MinNodeSpeed()) {
		t.Error("heterogeneous cluster has no speed spread")
	}
}

func TestPlaceRoundRobinSpreads(t *testing.T) {
	c := NewHomogeneous("ho", M510, 5)
	pl, err := Place(testPlan(10), c, PlaceRoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	counts := pl.InstancesPerNode()
	// 12 instances over 5 nodes: max-min spread ≤ 1.
	min, max := counts[0], counts[0]
	for _, n := range counts[1:] {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if max-min > 1 {
		t.Errorf("round-robin imbalanced: %v", counts)
	}
}

func TestPlaceLeastLoadedPrefersBigNodes(t *testing.T) {
	c := NewHeterogeneous("he", []NodeType{M510, C6320}, 2) // 8 vs 28 cores
	pl, err := Place(testPlan(17), c, PlaceLeastLoaded)
	if err != nil {
		t.Fatal(err)
	}
	counts := pl.InstancesPerNode()
	// The c6320 node (index 1) has ~3.8× the weighted capacity; it must
	// receive strictly more instances.
	if counts[1] <= counts[0] {
		t.Errorf("least-loaded ignored capacity: m510=%d c6320=%d", counts[0], counts[1])
	}
}

func TestPlaceOperatorAffineColocates(t *testing.T) {
	c := NewHomogeneous("ho", M510, 5)
	pl, err := Place(testPlan(4), c, PlaceOperatorAffine)
	if err != nil {
		t.Fatal(err)
	}
	// All 4 filter instances fit in one m510's 8 cores → one node.
	nodes := map[int]bool{}
	for _, n := range pl.NodeOf["f"] {
		nodes[n] = true
	}
	if len(nodes) != 1 {
		t.Errorf("operator-affine split filter across %d nodes", len(nodes))
	}
}

func TestPlacementAccessors(t *testing.T) {
	c := NewHomogeneous("ho", M510, 3)
	pl, err := Place(testPlan(3), c, PlaceRoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	if got := pl.NodeFor("f", 0); got.Type.Name != "m510" {
		t.Errorf("NodeFor returned %+v", got)
	}
	// Round-robin: src→0, f→1,2,0, sink→1. f#2 and src#0 share node 0.
	if !pl.SameNode("src", 0, "f", 2) {
		t.Error("expected src#0 and f#2 to share node 0 under round-robin")
	}
	if pl.SameNode("src", 0, "f", 0) {
		t.Error("src#0 and f#0 should be on different nodes")
	}
}

func TestPlaceErrors(t *testing.T) {
	if _, err := Place(testPlan(2), &Cluster{Name: "empty"}, PlaceRoundRobin); err == nil {
		t.Error("placement on empty cluster should fail")
	}
	c := NewHomogeneous("ho", M510, 2)
	if _, err := Place(testPlan(2), c, Strategy(99)); err == nil {
		t.Error("unknown strategy should fail")
	}
	bad := core.NewPQP("cycle", "x")
	bad.Add(&core.Operator{ID: "a", Kind: core.OpMap, Parallelism: 1})
	bad.Add(&core.Operator{ID: "b", Kind: core.OpMap, Parallelism: 1})
	bad.Connect("a", "b")
	bad.Connect("b", "a")
	if _, err := Place(bad, c, PlaceRoundRobin); err == nil {
		t.Error("placement of cyclic plan should fail")
	}
}

func TestPlacementDeterminism(t *testing.T) {
	c := NewHeterogeneous("he", []NodeType{M510, C6320, C6525_25G}, 6)
	p1, _ := Place(testPlan(13), c, PlaceLeastLoaded)
	p2, _ := Place(testPlan(13), c, PlaceLeastLoaded)
	for op, nodes := range p1.NodeOf {
		for i, n := range nodes {
			if p2.NodeOf[op][i] != n {
				t.Fatalf("placement not deterministic at %s#%d", op, i)
			}
		}
	}
}

func TestClusterString(t *testing.T) {
	c := NewHeterogeneous("he", []NodeType{C6525_25G, C6320}, 4)
	s := c.String()
	if s != `cluster "he": 2×c6320 2×c6525_25g` {
		t.Errorf("String() = %q", s)
	}
}
