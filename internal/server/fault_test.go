package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pdspbench/internal/metrics"
)

// TestRunWithFaults exercises the fault plan end to end through the
// API: POST /api/run with a "faults" body must inject the schedule and
// report the recovery metrics in the returned record.
func TestRunWithFaults(t *testing.T) {
	s := testServer(t)
	body := `{"structure":"linear","parallelism":2,
		"faults":{"seed":3,"faults":[{"kind":"crash","op":"filter1","instance":0,"at":1}]}}`
	req := httptest.NewRequest(http.MethodPost, "/api/run", strings.NewReader(body))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var rec metrics.RunRecord
	if err := json.Unmarshal(w.Body.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.FaultsInjected != 1 {
		t.Errorf("FaultsInjected = %d, want 1", rec.FaultsInjected)
	}
	if rec.Restarts != 1 {
		t.Errorf("Restarts = %d, want 1", rec.Restarts)
	}
	if rec.FaultSchedule == "" {
		t.Error("record missing the fault-schedule fingerprint")
	}
}
