package server

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"pdspbench/internal/metrics"
	"pdspbench/internal/queue"
)

// Admission control: the first stage of the serving front door's
// request pipeline (admission → fair-share queue → bounded execute).
// Every POST /api/run passes a global and a per-tenant token bucket
// before it may wait for an execution slot; a dry bucket is a typed 429
// carrying Retry-After, so well-behaved clients back off instead of
// piling onto the queue. Tenancy is keyed by the X-Tenant request
// header; requests without one share the DefaultTenant buckets.
//
// Time is monotonic and injected (the same discipline as
// internal/queue): buckets refill against a NowMS callback, never the
// wall clock, so admission tests advance a fake clock instead of
// sleeping.

// DefaultTenant is the bucket key for requests without an X-Tenant
// header; TenantHeader names that header. Both are shared with the
// queue's per-tenant accounting so front-door buckets and fabric job
// attribution always key the same way.
const (
	DefaultTenant = queue.DefaultTenant
	TenantHeader  = queue.TenantHeader
)

// TenantQuota is one tenant's token-bucket parameters.
type TenantQuota struct {
	// RatePerSec is the sustained admission rate (token refill rate).
	RatePerSec float64
	// Burst is the bucket capacity: how far above the sustained rate a
	// tenant may spike before 429s start.
	Burst float64
}

// AdmissionConfig tunes the front door's token buckets. The zero value
// gets generous defaults from newAdmitter — high enough that
// single-client test traffic never trips them, low enough that a storm
// does.
type AdmissionConfig struct {
	// Global caps the whole front door (all tenants combined); zero
	// means 500/s with a burst of 500.
	Global TenantQuota
	// PerTenant is the default quota for tenants without an explicit
	// entry in Tenants; zero means 200/s with a burst of 200.
	PerTenant TenantQuota
	// Tenants overrides PerTenant for named tenants.
	Tenants map[string]TenantQuota
}

// bucket is a token bucket on the injected monotonic clock.
type bucket struct {
	tokens float64
	lastMS int64
	quota  TenantQuota
}

// take refills for elapsed time and consumes one token, or reports how
// long until one is available.
func (b *bucket) take(nowMS int64) (ok bool, retryAfterMS int64) {
	elapsed := nowMS - b.lastMS
	if elapsed > 0 {
		b.tokens += float64(elapsed) / 1000 * b.quota.RatePerSec
		if b.tokens > b.quota.Burst {
			b.tokens = b.quota.Burst
		}
		b.lastMS = nowMS
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := 1 - b.tokens
	ms := int64(need / b.quota.RatePerSec * 1000)
	if ms < 1 {
		ms = 1
	}
	return false, ms
}

// admitter is the token-bucket stage. One mutex guards all buckets;
// admission is a handful of float ops, so contention is negligible next
// to the runs being admitted.
type admitter struct {
	mu      sync.Mutex
	cfg     AdmissionConfig
	global  bucket
	tenants map[string]*bucket
	nowMS   func() int64
}

func newAdmitter(cfg AdmissionConfig, nowMS func() int64) *admitter {
	if cfg.Global.RatePerSec <= 0 {
		cfg.Global.RatePerSec = 500
	}
	if cfg.Global.Burst <= 0 {
		cfg.Global.Burst = 500
	}
	if cfg.PerTenant.RatePerSec <= 0 {
		cfg.PerTenant.RatePerSec = 200
	}
	if cfg.PerTenant.Burst <= 0 {
		cfg.PerTenant.Burst = 200
	}
	return &admitter{
		cfg:     cfg,
		global:  bucket{tokens: cfg.Global.Burst, quota: cfg.Global},
		tenants: map[string]*bucket{},
		nowMS:   nowMS,
	}
}

// quotaFor resolves the configured quota for a tenant.
func (a *admitter) quotaFor(tenant string) TenantQuota {
	if q, ok := a.cfg.Tenants[tenant]; ok {
		if q.RatePerSec <= 0 {
			q.RatePerSec = a.cfg.PerTenant.RatePerSec
		}
		if q.Burst <= 0 {
			q.Burst = a.cfg.PerTenant.Burst
		}
		return q
	}
	return a.cfg.PerTenant
}

// admit charges one token from the tenant's bucket and the global
// bucket. Both must have capacity; the retry hint is the larger of the
// two waits so a client that honours it passes both next time. The
// tenant bucket is charged first and refunded when the global bucket
// rejects, so a global brown-out does not also burn tenant quota.
func (a *admitter) admit(tenant string) (ok bool, retryAfterMS int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.nowMS()
	b, found := a.tenants[tenant]
	if !found {
		q := a.quotaFor(tenant)
		b = &bucket{tokens: q.Burst, lastMS: now, quota: q}
		a.tenants[tenant] = b
	}
	ok, tenantWait := b.take(now)
	if !ok {
		return false, tenantWait
	}
	ok, globalWait := a.global.take(now)
	if !ok {
		b.tokens++ // refund: the tenant did nothing wrong
		return false, globalWait
	}
	return true, 0
}

// tenantOf extracts the tenant key from a request.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get(TenantHeader); t != "" {
		return t
	}
	return DefaultTenant
}

// writeRetryError writes the typed over-capacity response: a JSON error
// body with machine-readable retry hints plus the standard Retry-After
// header (whole seconds, rounded up, minimum 1 — the header has no
// sub-second form).
func writeRetryError(w http.ResponseWriter, status int, tenant string, retryAfterMS int64, msg string) {
	secs := (retryAfterMS + 999) / 1000
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeJSON(w, status, map[string]any{
		"error":          msg,
		"tenant":         tenant,
		"retry_after_ms": retryAfterMS,
	})
}

// handleServingStats implements GET /api/serving/stats.
func (s *Server) handleServingStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.serving.snapshot())
}

// servingStats aggregates front-door counters; snapshot renders them as
// the metrics.ServingSnapshot the API serves.
type servingStats struct {
	mu       sync.Mutex
	totals   metrics.TenantServing
	byTenant map[string]*metrics.TenantServing
	// waits is a bounded ring of recent admission queue-waits (ms):
	// time from passing the token bucket to receiving an execution slot.
	waits   []float64
	waitIdx int
	sched   *scheduler // gauges (active/queued) come from the scheduler
}

const waitRingCap = 4096

func newServingStats() *servingStats {
	return &servingStats{byTenant: map[string]*metrics.TenantServing{}}
}

func (st *servingStats) tenant(name string) *metrics.TenantServing {
	t, ok := st.byTenant[name]
	if !ok {
		t = &metrics.TenantServing{}
		st.byTenant[name] = t
	}
	return t
}

func (st *servingStats) admitted(tenant string, waitMS float64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.totals.Admitted++
	st.tenant(tenant).Admitted++
	if len(st.waits) < waitRingCap {
		st.waits = append(st.waits, waitMS)
	} else {
		st.waits[st.waitIdx] = waitMS
		st.waitIdx = (st.waitIdx + 1) % waitRingCap
	}
}

func (st *servingStats) rejected(tenant string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.totals.Rejected++
	st.tenant(tenant).Rejected++
}

func (st *servingStats) shed(tenant string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.totals.Shed++
	st.tenant(tenant).Shed++
}

func (st *servingStats) finished(tenant string, failed bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if failed {
		st.totals.Failed++
		st.tenant(tenant).Failed++
	} else {
		st.totals.Completed++
		st.tenant(tenant).Completed++
	}
}

func (st *servingStats) snapshot() metrics.ServingSnapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	snap := metrics.ServingSnapshot{
		Admitted:       st.totals.Admitted,
		Rejected429:    st.totals.Rejected,
		Shed:           st.totals.Shed,
		Completed:      st.totals.Completed,
		Failed:         st.totals.Failed,
		AdmissionP50MS: metrics.Quantile(st.waits, 0.50),
		AdmissionP99MS: metrics.Quantile(st.waits, 0.99),
		Tenants:        make(map[string]metrics.TenantServing, len(st.byTenant)),
	}
	for name, t := range st.byTenant {
		snap.Tenants[name] = *t
	}
	if st.sched != nil {
		snap.ActiveRuns, snap.QueuedRuns = st.sched.gauges()
	}
	return snap
}

// String implements fmt.Stringer for log lines.
func (st *servingStats) String() string {
	s := st.snapshot()
	return fmt.Sprintf("admitted=%d rejected=%d shed=%d completed=%d failed=%d",
		s.Admitted, s.Rejected429, s.Shed, s.Completed, s.Failed)
}
