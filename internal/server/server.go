// Package server is the WUI substitute: a net/http JSON API over the
// benchmark suite and the run store, covering what the paper's Vue.js
// frontend reads from its Django controller — the application catalogue,
// the hardware catalogue, stored runs, plan visualisations, and
// on-demand workload execution on the cluster simulator.
//
// Execution requests pass through a multi-tenant serving front door
// (admission.go, fairness.go, stream.go): token-bucket admission with
// typed 429s, deficit-round-robin fair-share scheduling over a bounded
// worker pool, load shedding under overload, and SSE progress streams
// for async runs.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"pdspbench/internal/apps"
	"pdspbench/internal/backend"
	"pdspbench/internal/chaos"
	"pdspbench/internal/cluster"
	"pdspbench/internal/controller"
	"pdspbench/internal/core"
	"pdspbench/internal/metrics"
	"pdspbench/internal/queue"
	"pdspbench/internal/storage"
	"pdspbench/internal/workload"
)

// Server serves the PDSP-Bench HTTP API: the catalogue/run surface the
// paper's WUI reads, plus the campaign-fabric dispatcher (job queue and
// worker protocol, see internal/queue and docs/API.md).
type Server struct {
	store *storage.Store
	ctrl  *controller.Controller
	q     *queue.Queue
	mux   *http.ServeMux

	// Serving front door (admission.go / fairness.go / stream.go).
	admit    *admitter
	sched    *scheduler
	serving  *servingStats
	registry *runRegistry
	nowMS    func() int64
	execute  Executor

	closing   chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup // tracks async run goroutines
}

// Executor runs one prepared plan and returns its record. The default
// delegates to controller.MeasureSpec; overload tests inject stubs so
// saturation behaviour is exercised without simulating workloads.
type Executor func(ctx context.Context, ctrl *controller.Controller, plan *core.PQP, cl *cluster.Cluster, spec backend.RunSpec) (*metrics.RunRecord, error)

// Option tunes server construction.
type Option func(*config)

type config struct {
	queue   queue.Options
	serving ServingConfig
	nowMS   func() int64
	execute Executor
	tune    func(*controller.Controller)
}

// WithQueueOptions overrides the dispatcher's queue tuning (lease TTL,
// heartbeat TTL, retry policy, clock) — tests shrink the timings.
func WithQueueOptions(opts queue.Options) Option {
	return func(c *config) { c.queue = opts }
}

// WithServing overrides the front door's admission quotas, worker-pool
// width, queue depths, shed deadline and DRR quantum.
func WithServing(sc ServingConfig) Option {
	return func(c *config) { c.serving = sc }
}

// WithNowMS injects the front door's monotonic clock (milliseconds);
// admission buckets and latency accounting read it. Tests advance a
// fake instead of sleeping. The queue's clock is injected separately
// via WithQueueOptions.
func WithNowMS(now func() int64) Option {
	return func(c *config) { c.nowMS = now }
}

// WithExecutor replaces run execution (overload tests substitute
// deterministic stubs for the simulator).
func WithExecutor(e Executor) Option {
	return func(c *config) { c.execute = e }
}

// WithControllerTuning mutates the server's controller after
// construction — self-hosted storms shrink sim fidelity so scripted
// runs finish in milliseconds.
func WithControllerTuning(f func(*controller.Controller)) Option {
	return func(c *config) { c.tune = f }
}

// New builds a server over the given run store. The fabric journal is
// replayed from the store, so a dispatcher restart resumes its queue
// (leases from the dead process are reclaimed).
func New(store *storage.Store, opts ...Option) (*Server, error) {
	cfg := config{}
	for _, o := range opts {
		o(&cfg)
	}
	q, err := queue.New(store, cfg.queue)
	if err != nil {
		return nil, err
	}
	if cfg.nowMS == nil {
		cfg.nowMS = func() int64 { return time.Now().UnixMilli() }
	}
	if cfg.execute == nil {
		cfg.execute = func(ctx context.Context, ctrl *controller.Controller, plan *core.PQP, cl *cluster.Cluster, spec backend.RunSpec) (*metrics.RunRecord, error) {
			return ctrl.MeasureSpec(ctx, plan, cl, spec)
		}
	}
	s := &Server{
		store:    store,
		ctrl:     controller.Fast(),
		q:        q,
		mux:      http.NewServeMux(),
		nowMS:    cfg.nowMS,
		execute:  cfg.execute,
		closing:  make(chan struct{}),
		registry: newRunRegistry(0),
	}
	s.admit = newAdmitter(cfg.serving.Admission, cfg.nowMS)
	s.sched = newScheduler(cfg.serving, s.closing)
	s.serving = newServingStats()
	s.serving.sched = s.sched
	s.ctrl.Store = store
	if cfg.tune != nil {
		cfg.tune(s.ctrl)
	}
	s.mux.HandleFunc("GET /", s.handleIndex)
	s.mux.HandleFunc("GET /api/apps", s.handleApps)
	s.mux.HandleFunc("GET /api/structures", s.handleStructures)
	s.mux.HandleFunc("GET /api/clusters", s.handleClusters)
	s.mux.HandleFunc("GET /api/strategies", s.handleStrategies)
	s.mux.HandleFunc("GET /api/backends", s.handleBackends)
	s.mux.HandleFunc("GET /api/runs", s.handleRuns)
	s.mux.HandleFunc("GET /api/plan", s.handlePlan)
	s.mux.HandleFunc("POST /api/run", s.handleRun)
	// Serving front door: async run progress and saturation counters.
	s.mux.HandleFunc("GET /api/runs/{id}", s.handleRunStatus)
	s.mux.HandleFunc("GET /api/runs/{id}/events", s.handleRunEvents)
	s.mux.HandleFunc("GET /api/serving/stats", s.handleServingStats)
	// Campaign-fabric dispatcher (see dispatcher.go).
	s.mux.HandleFunc("POST /api/jobs", s.handleEnqueue)
	s.mux.HandleFunc("GET /api/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /api/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("POST /api/jobs/lease", s.handleLeaseNext)
	s.mux.HandleFunc("POST /api/jobs/{id}/lease", s.handleLeaseJob)
	s.mux.HandleFunc("POST /api/jobs/{id}/extend", s.handleExtend)
	s.mux.HandleFunc("POST /api/jobs/{id}/complete", s.handleComplete)
	s.mux.HandleFunc("POST /api/jobs/{id}/fail", s.handleFail)
	s.mux.HandleFunc("POST /api/workers/register", s.handleRegister)
	s.mux.HandleFunc("POST /api/workers/{id}/heartbeat", s.handleHeartbeat)
	s.mux.HandleFunc("GET /api/workers", s.handleWorkers)
	return s, nil
}

// Queue exposes the dispatcher's job queue (CLI listings and tests).
func (s *Server) Queue() *queue.Queue { return s.q }

// Handler exposes the routing surface (tests drive it with httptest).
// The mux is wrapped so every error the router itself generates —
// unknown route 404s, wrong-method 405s — carries the same JSON
// {"error": ...} body as handler-written errors.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.mux.ServeHTTP(&jsonErrorWriter{ResponseWriter: w}, r)
	})
}

// Close shuts the serving front door: waiting acquires fail with
// errClosing, in-flight async runs are cancelled, and Close blocks
// until their goroutines drain. Idempotent.
//
//lint:ignore ctx-propagation Close is the cancellation: it aborts every run context first, so the Wait below is bounded by executor teardown, not by work it would need a ctx to interrupt
func (s *Server) Close() {
	s.closeOnce.Do(func() { close(s.closing) })
	s.registry.cancelAll()
	s.wg.Wait()
}

// ListenAndServe serves until the context is cancelled.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	srv := &http.Server{Addr: addr, Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	go func() {
		<-ctx.Done()
		// Shutdown starts after ctx is already cancelled, so its deadline
		// must come from a context detached from that cancellation — but
		// WithoutCancel keeps the caller's values, unlike a fresh root.
		shutdownCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 2*time.Second)
		defer cancel()
		//lint:ignore error-discipline shutdown runs after ctx cancel; there is no caller left to receive the error
		srv.Shutdown(shutdownCtx)
	}()
	err = srv.Serve(ln)
	s.Close()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// jsonErrorWriter rewrites text-bodied 404/405 responses written by the
// ServeMux itself into the API's JSON error shape. Handler-written
// errors pass through untouched: writeJSON sets the JSON Content-Type
// before committing the status, which is the discriminator.
type jsonErrorWriter struct {
	http.ResponseWriter
	intercepted bool
}

func (w *jsonErrorWriter) WriteHeader(status int) {
	if (status == http.StatusNotFound || status == http.StatusMethodNotAllowed) &&
		w.Header().Get("Content-Type") != "application/json" {
		w.intercepted = true
		w.Header().Set("Content-Type", "application/json")
		w.Header().Del("X-Content-Type-Options")
		w.ResponseWriter.WriteHeader(status)
		msg := "not found"
		if status == http.StatusMethodNotAllowed {
			msg = "method not allowed"
		}
		// The original text body is about to be discarded by Write; emit
		// the JSON replacement in its place.
		_, _ = w.ResponseWriter.Write([]byte(fmt.Sprintf("{\"error\":%q}\n", msg)))
		return
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *jsonErrorWriter) Write(b []byte) (int, error) {
	if w.intercepted {
		return len(b), nil // swallow the router's text body
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so wrapping does not hide
// http.Flusher from the SSE handler.
func (w *jsonErrorWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// The status line is already committed; an encode failure here means
	// the client went away, and there is nothing useful left to do.
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		writeError(w, http.StatusNotFound, errors.New("not found"))
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, `<!doctype html><title>PDSP-Bench</title>
<h1>PDSP-Bench</h1>
<p>Benchmarking system for parallel and distributed stream processing.</p>
<ul>
<li><a href="/api/apps">/api/apps</a> — application suite (Table 2)</li>
<li><a href="/api/structures">/api/structures</a> — synthetic query structures</li>
<li><a href="/api/clusters">/api/clusters</a> — hardware catalogue (Table 4)</li>
<li><a href="/api/strategies">/api/strategies</a> — parallelism enumeration strategies</li>
<li><a href="/api/backends">/api/backends</a> — execution backends (sim, real)</li>
<li><a href="/api/runs">/api/runs</a> — stored benchmark runs</li>
<li>/api/plan?structure=3-way-join&amp;parallelism=8 — plan DOT</li>
<li>POST /api/run — execute a workload (async + SSE progress supported)</li>
<li><a href="/api/serving/stats">/api/serving/stats</a> — front-door admission counters</li>
<li><a href="/api/jobs">/api/jobs</a> — campaign job queue (POST to enqueue)</li>
<li><a href="/api/workers">/api/workers</a> — registered worker daemons</li>
</ul>
<p>Full HTTP reference: docs/API.md (job/worker fabric protocol included).</p>`)
}

type appInfo struct {
	Code          string `json:"code"`
	Name          string `json:"name"`
	Area          string `json:"area"`
	Description   string `json:"description"`
	DataIntensive bool   `json:"data_intensive"`
}

func (s *Server) handleApps(w http.ResponseWriter, r *http.Request) {
	out := make([]appInfo, 0, len(apps.Registry))
	for _, a := range apps.Registry {
		out = append(out, appInfo{a.Code, a.Name, a.Area, a.Description, a.DataIntensive})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStructures(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, workload.Structures)
}

func (s *Server) handleClusters(w http.ResponseWriter, r *http.Request) {
	out := []cluster.NodeType{cluster.M510, cluster.C6525_25G, cluster.C6320}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStrategies(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, workload.StrategyNames)
}

func (s *Server) handleBackends(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, backend.Names())
}

func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	runs, err := storage.Load[metrics.RunRecord](s.store, "runs")
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if runs == nil {
		runs = []metrics.RunRecord{}
	}
	writeJSON(w, http.StatusOK, runs)
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	par := 4
	if n, err := strconv.Atoi(q.Get("parallelism")); err == nil {
		par = n
	}
	if par < 1 {
		par = 1
	}
	switch {
	case q.Get("app") != "":
		a, err := apps.ByCode(q.Get("app"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		plan := a.Build(s.ctrl.EventRate)
		plan.SetUniformParallelism(par)
		w.Header().Set("Content-Type", "text/vnd.graphviz")
		fmt.Fprint(w, plan.DOT())
	case q.Get("structure") != "":
		st, err := workload.ParseStructure(q.Get("structure"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		plan, err := s.ctrl.SyntheticPlan(st, par)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "text/vnd.graphviz")
		fmt.Fprint(w, plan.DOT())
	default:
		writeError(w, http.StatusBadRequest, errors.New("app or structure query parameter required"))
	}
}

// RunRequest is the POST /api/run body.
type RunRequest struct {
	App         string  `json:"app,omitempty"`
	Structure   string  `json:"structure,omitempty"`
	Parallelism int     `json:"parallelism"`
	Cluster     string  `json:"cluster,omitempty"`
	EventRate   float64 `json:"event_rate,omitempty"`
	// Backend selects the execution backend ("sim" default, "real" for
	// bounded in-process execution); listings carry it per record.
	Backend string `json:"backend,omitempty"`
	// Faults is an optional deterministic fault plan injected during the
	// run (see internal/chaos); the record reports the injected faults,
	// restarts, downtime and the schedule fingerprint.
	Faults *chaos.Plan `json:"faults,omitempty"`
	// Disorder stamps an out-of-order delivery spec onto every source of
	// the plan (see core.DisorderSpec); AllowedLatenessMs sets the
	// event-time allowance before late tuples are dropped and counted.
	Disorder          *core.DisorderSpec `json:"disorder,omitempty"`
	AllowedLatenessMs int64              `json:"allowed_lateness_ms,omitempty"`
	// Async submits the run for background execution: the response is an
	// immediate 202 with a run id, and progress streams over SSE at
	// GET /api/runs/{id}/events.
	Async bool `json:"async,omitempty"`
}

// AsyncRunResponse is the 202 body for async submissions.
type AsyncRunResponse struct {
	RunID  string `json:"run_id"`
	Tenant string `json:"tenant"`
	// Status / Events are the URLs to poll or stream.
	Status string `json:"status"`
	Events string `json:"events"`
}

// preparedRun is a validated RunRequest resolved to executable parts.
type preparedRun struct {
	ctrl *controller.Controller
	plan *core.PQP
	cl   *cluster.Cluster
	spec backend.RunSpec
	cost int // DRR cost: requested parallelism
}

// prepareRun validates and resolves a RunRequest; on error the returned
// status is the HTTP code to write. Validation runs before admission so
// malformed requests do not burn quota.
func (s *Server) prepareRun(req *RunRequest) (*preparedRun, int, error) {
	if req.Parallelism < 1 {
		req.Parallelism = 1
	}
	rate := req.EventRate
	if rate <= 0 {
		rate = s.ctrl.EventRate
	}
	var cl = s.ctrl.Homogeneous()
	switch req.Cluster {
	case "", "m510":
	case "c6525_25g":
		cl = s.ctrl.HeteroEpyc()
	case "c6320":
		cl = s.ctrl.HeteroHaswell()
	case "mixed":
		cl = s.ctrl.Mixed()
	default:
		return nil, http.StatusBadRequest, fmt.Errorf("unknown cluster %q", req.Cluster)
	}
	if req.Disorder != nil {
		if err := req.Disorder.Validate(); err != nil {
			return nil, http.StatusBadRequest, err
		}
	}
	ctrl := *s.ctrl
	ctrl.EventRate = rate
	if req.Backend != "" {
		b, err := backend.ByName(req.Backend)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		if sim, ok := b.(*backend.Sim); ok {
			sim.Cfg = ctrl.Cfg // keep the server's fidelity settings
		}
		ctrl.Backend = b
	}
	spec := backend.RunSpec{
		Faults:            req.Faults,
		Disorder:          req.Disorder,
		AllowedLatenessMs: req.AllowedLatenessMs,
	}
	var plan *core.PQP
	switch {
	case req.App != "":
		a, err := apps.ByCode(req.App)
		if err != nil {
			return nil, http.StatusNotFound, err
		}
		plan = a.Build(rate)
		plan.SetUniformParallelism(req.Parallelism)
		spec.App = a
	case req.Structure != "":
		st, err := workload.ParseStructure(req.Structure)
		if err != nil {
			return nil, http.StatusNotFound, err
		}
		plan, err = ctrl.SyntheticPlan(st, req.Parallelism)
		if err != nil {
			return nil, http.StatusInternalServerError, err
		}
	default:
		return nil, http.StatusBadRequest, errors.New("app or structure required")
	}
	if req.Disorder != nil {
		// Stamp every source, the same way controller.Execute applies a
		// spec-level disorder override.
		for _, src := range plan.Sources() {
			d := *req.Disorder
			src.Source.Disorder = &d
		}
	}
	return &preparedRun{ctrl: &ctrl, plan: plan, cl: cl, spec: spec, cost: req.Parallelism}, 0, nil
}

// handleRun implements POST /api/run: validate → admit (429 when a
// token bucket is dry) → fair-share queue (503 when shed) → execute.
// Sync requests block through execution under the request context;
// async requests detach and return 202 + a run id for SSE streaming.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	tenant := tenantOf(r)
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	prep, status, err := s.prepareRun(&req)
	if err != nil {
		writeError(w, status, err)
		return
	}
	if ok, retryMS := s.admit.admit(tenant); !ok {
		s.serving.rejected(tenant)
		writeRetryError(w, http.StatusTooManyRequests, tenant, retryMS,
			"admission rejected: tenant or global request rate exceeded")
		return
	}
	if req.Async {
		s.startAsync(r, tenant, prep, w)
		return
	}

	// Sync path: wait for a fair-share slot under the request context.
	start := s.nowMS()
	release, err := s.sched.acquire(r.Context(), tenant, prep.cost)
	if err != nil {
		switch {
		case errors.Is(err, errShed), errors.Is(err, errQueueFull):
			s.serving.shed(tenant)
			writeRetryError(w, http.StatusServiceUnavailable, tenant,
				s.sched.cfg.MaxQueueWait.Milliseconds(), err.Error())
		case r.Context().Err() != nil:
			// Client already gone; nothing useful to write.
		default:
			writeError(w, http.StatusServiceUnavailable, err)
		}
		return
	}
	defer release()
	s.serving.admitted(tenant, float64(s.nowMS()-start))
	rec, err := s.execute(r.Context(), prep.ctrl, prep.plan, prep.cl, prep.spec)
	if err != nil {
		s.serving.finished(tenant, true)
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.serving.finished(tenant, false)
	writeJSON(w, http.StatusOK, rec)
}

// startAsync detaches an admitted run from the request: it executes
// under a context derived from WithoutCancel (client disconnects do not
// abort it; Server.Close does) and reports progress through its runLog.
//
//lint:ignore ctx-propagation the blocking acquire runs inside the detached goroutine under runCtx (cancelled by Server.Close); startAsync itself returns the 202 immediately
func (s *Server) startAsync(r *http.Request, tenant string, prep *preparedRun, w http.ResponseWriter) {
	// WithoutCancel detaches the run's lifetime from the submitting
	// request (keeping its values); the explicit cancel belongs to the
	// registry so Server.Close can abort in-flight runs.
	runCtx, cancel := context.WithCancel(context.WithoutCancel(r.Context()))
	rl := s.registry.add(tenant, cancel)
	rl.append("queued", s.nowMS(), "", nil)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer cancel()
		start := s.nowMS()
		release, err := s.sched.acquire(runCtx, tenant, prep.cost)
		if err != nil {
			if errors.Is(err, errShed) || errors.Is(err, errQueueFull) {
				s.serving.shed(tenant)
				rl.append("shed", s.nowMS(), err.Error(), nil)
			} else {
				rl.append("failed", s.nowMS(), err.Error(), nil)
			}
			return
		}
		defer release()
		s.serving.admitted(tenant, float64(s.nowMS()-start))
		rl.append("admitted", s.nowMS(), "", nil)
		rec, err := s.execute(runCtx, prep.ctrl, prep.plan, prep.cl, prep.spec)
		if err != nil {
			s.serving.finished(tenant, true)
			rl.append("failed", s.nowMS(), err.Error(), nil)
			return
		}
		s.serving.finished(tenant, false)
		rl.append("completed", s.nowMS(), "", rec)
	}()
	writeJSON(w, http.StatusAccepted, AsyncRunResponse{
		RunID:  rl.id,
		Tenant: tenant,
		Status: "/api/runs/" + rl.id,
		Events: "/api/runs/" + rl.id + "/events",
	})
}
