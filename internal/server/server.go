// Package server is the WUI substitute: a net/http JSON API over the
// benchmark suite and the run store, covering what the paper's Vue.js
// frontend reads from its Django controller — the application catalogue,
// the hardware catalogue, stored runs, plan visualisations, and
// on-demand workload execution on the cluster simulator.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"pdspbench/internal/apps"
	"pdspbench/internal/backend"
	"pdspbench/internal/chaos"
	"pdspbench/internal/cluster"
	"pdspbench/internal/controller"
	"pdspbench/internal/metrics"
	"pdspbench/internal/queue"
	"pdspbench/internal/storage"
	"pdspbench/internal/workload"
)

// Server serves the PDSP-Bench HTTP API: the catalogue/run surface the
// paper's WUI reads, plus the campaign-fabric dispatcher (job queue and
// worker protocol, see internal/queue and docs/API.md).
type Server struct {
	store *storage.Store
	ctrl  *controller.Controller
	q     *queue.Queue
	mux   *http.ServeMux
}

// Option tunes server construction.
type Option func(*config)

type config struct {
	queue queue.Options
}

// WithQueueOptions overrides the dispatcher's queue tuning (lease TTL,
// heartbeat TTL, retry policy, clock) — tests shrink the timings.
func WithQueueOptions(opts queue.Options) Option {
	return func(c *config) { c.queue = opts }
}

// New builds a server over the given run store. The fabric journal is
// replayed from the store, so a dispatcher restart resumes its queue
// (leases from the dead process are reclaimed).
func New(store *storage.Store, opts ...Option) (*Server, error) {
	cfg := config{}
	for _, o := range opts {
		o(&cfg)
	}
	q, err := queue.New(store, cfg.queue)
	if err != nil {
		return nil, err
	}
	s := &Server{store: store, ctrl: controller.Fast(), q: q, mux: http.NewServeMux()}
	s.ctrl.Store = store
	s.mux.HandleFunc("GET /", s.handleIndex)
	s.mux.HandleFunc("GET /api/apps", s.handleApps)
	s.mux.HandleFunc("GET /api/structures", s.handleStructures)
	s.mux.HandleFunc("GET /api/clusters", s.handleClusters)
	s.mux.HandleFunc("GET /api/strategies", s.handleStrategies)
	s.mux.HandleFunc("GET /api/backends", s.handleBackends)
	s.mux.HandleFunc("GET /api/runs", s.handleRuns)
	s.mux.HandleFunc("GET /api/plan", s.handlePlan)
	s.mux.HandleFunc("POST /api/run", s.handleRun)
	// Campaign-fabric dispatcher (see dispatcher.go).
	s.mux.HandleFunc("POST /api/jobs", s.handleEnqueue)
	s.mux.HandleFunc("GET /api/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /api/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("POST /api/jobs/lease", s.handleLeaseNext)
	s.mux.HandleFunc("POST /api/jobs/{id}/lease", s.handleLeaseJob)
	s.mux.HandleFunc("POST /api/jobs/{id}/extend", s.handleExtend)
	s.mux.HandleFunc("POST /api/jobs/{id}/complete", s.handleComplete)
	s.mux.HandleFunc("POST /api/jobs/{id}/fail", s.handleFail)
	s.mux.HandleFunc("POST /api/workers/register", s.handleRegister)
	s.mux.HandleFunc("POST /api/workers/{id}/heartbeat", s.handleHeartbeat)
	s.mux.HandleFunc("GET /api/workers", s.handleWorkers)
	return s, nil
}

// Queue exposes the dispatcher's job queue (CLI listings and tests).
func (s *Server) Queue() *queue.Queue { return s.q }

// Handler exposes the mux (tests drive it with httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe serves until the context is cancelled.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	srv := &http.Server{Addr: addr, Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	go func() {
		<-ctx.Done()
		// Shutdown starts after ctx is already cancelled, so its deadline
		// must come from a context detached from that cancellation — but
		// WithoutCancel keeps the caller's values, unlike a fresh root.
		shutdownCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 2*time.Second)
		defer cancel()
		//lint:ignore error-discipline shutdown runs after ctx cancel; there is no caller left to receive the error
		srv.Shutdown(shutdownCtx)
	}()
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// The status line is already committed; an encode failure here means
	// the client went away, and there is nothing useful left to do.
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, `<!doctype html><title>PDSP-Bench</title>
<h1>PDSP-Bench</h1>
<p>Benchmarking system for parallel and distributed stream processing.</p>
<ul>
<li><a href="/api/apps">/api/apps</a> — application suite (Table 2)</li>
<li><a href="/api/structures">/api/structures</a> — synthetic query structures</li>
<li><a href="/api/clusters">/api/clusters</a> — hardware catalogue (Table 4)</li>
<li><a href="/api/strategies">/api/strategies</a> — parallelism enumeration strategies</li>
<li><a href="/api/backends">/api/backends</a> — execution backends (sim, real)</li>
<li><a href="/api/runs">/api/runs</a> — stored benchmark runs</li>
<li>/api/plan?structure=3-way-join&amp;parallelism=8 — plan DOT</li>
<li>POST /api/run — execute a workload on an execution backend</li>
<li><a href="/api/jobs">/api/jobs</a> — campaign job queue (POST to enqueue)</li>
<li><a href="/api/workers">/api/workers</a> — registered worker daemons</li>
</ul>
<p>Full HTTP reference: docs/API.md (job/worker fabric protocol included).</p>`)
}

type appInfo struct {
	Code          string `json:"code"`
	Name          string `json:"name"`
	Area          string `json:"area"`
	Description   string `json:"description"`
	DataIntensive bool   `json:"data_intensive"`
}

func (s *Server) handleApps(w http.ResponseWriter, r *http.Request) {
	out := make([]appInfo, 0, len(apps.Registry))
	for _, a := range apps.Registry {
		out = append(out, appInfo{a.Code, a.Name, a.Area, a.Description, a.DataIntensive})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStructures(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, workload.Structures)
}

func (s *Server) handleClusters(w http.ResponseWriter, r *http.Request) {
	out := []cluster.NodeType{cluster.M510, cluster.C6525_25G, cluster.C6320}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStrategies(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, workload.StrategyNames)
}

func (s *Server) handleBackends(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, backend.Names())
}

func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	runs, err := storage.Load[metrics.RunRecord](s.store, "runs")
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if runs == nil {
		runs = []metrics.RunRecord{}
	}
	writeJSON(w, http.StatusOK, runs)
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	par := 4
	if n, err := strconv.Atoi(q.Get("parallelism")); err == nil {
		par = n
	}
	if par < 1 {
		par = 1
	}
	switch {
	case q.Get("app") != "":
		a, err := apps.ByCode(q.Get("app"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		plan := a.Build(s.ctrl.EventRate)
		plan.SetUniformParallelism(par)
		w.Header().Set("Content-Type", "text/vnd.graphviz")
		fmt.Fprint(w, plan.DOT())
	case q.Get("structure") != "":
		st, err := workload.ParseStructure(q.Get("structure"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		plan, err := s.ctrl.SyntheticPlan(st, par)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "text/vnd.graphviz")
		fmt.Fprint(w, plan.DOT())
	default:
		writeError(w, http.StatusBadRequest, errors.New("app or structure query parameter required"))
	}
}

// RunRequest is the POST /api/run body.
type RunRequest struct {
	App         string  `json:"app,omitempty"`
	Structure   string  `json:"structure,omitempty"`
	Parallelism int     `json:"parallelism"`
	Cluster     string  `json:"cluster,omitempty"`
	EventRate   float64 `json:"event_rate,omitempty"`
	// Backend selects the execution backend ("sim" default, "real" for
	// bounded in-process execution); listings carry it per record.
	Backend string `json:"backend,omitempty"`
	// Faults is an optional deterministic fault plan injected during the
	// run (see internal/chaos); the record reports the injected faults,
	// restarts, downtime and the schedule fingerprint.
	Faults *chaos.Plan `json:"faults,omitempty"`
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if req.Parallelism < 1 {
		req.Parallelism = 1
	}
	rate := req.EventRate
	if rate <= 0 {
		rate = s.ctrl.EventRate
	}
	var cl = s.ctrl.Homogeneous()
	switch req.Cluster {
	case "", "m510":
	case "c6525_25g":
		cl = s.ctrl.HeteroEpyc()
	case "c6320":
		cl = s.ctrl.HeteroHaswell()
	case "mixed":
		cl = s.ctrl.Mixed()
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown cluster %q", req.Cluster))
		return
	}
	ctrl := *s.ctrl
	ctrl.EventRate = rate
	if req.Backend != "" {
		b, err := backend.ByName(req.Backend)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if sim, ok := b.(*backend.Sim); ok {
			sim.Cfg = ctrl.Cfg // keep the server's fidelity settings
		}
		ctrl.Backend = b
	}
	// The request's context cancels the run when the client disconnects.
	ctx := r.Context()
	switch {
	case req.App != "":
		a, err := apps.ByCode(req.App)
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		plan := a.Build(rate)
		plan.SetUniformParallelism(req.Parallelism)
		rec, err := ctrl.MeasureSpec(ctx, plan, cl, backend.RunSpec{App: a, Faults: req.Faults})
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, rec)
	case req.Structure != "":
		st, err := workload.ParseStructure(req.Structure)
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		plan, err := ctrl.SyntheticPlan(st, req.Parallelism)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		rec, err := ctrl.MeasureSpec(ctx, plan, cl, backend.RunSpec{Faults: req.Faults})
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, rec)
	default:
		writeError(w, http.StatusBadRequest, errors.New("app or structure required"))
	}
}
