package server

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pdspbench/internal/backend"
	"pdspbench/internal/cluster"
	"pdspbench/internal/controller"
	"pdspbench/internal/core"
	"pdspbench/internal/metrics"
	"pdspbench/internal/storage"
)

// The overload suite: deterministic saturation behaviour of the serving
// front door. Admission-bucket tests drive the injected fake clock;
// shed-deadline tests use short real timers (the shed timer is
// deliberately wall-clock — it guards against a stuck scheduler, so it
// must not depend on anyone advancing a fake). Execution is stubbed via
// WithExecutor so saturation is exercised without simulating workloads.

const runBody = `{"structure":"linear","parallelism":1}`

// overloadServer builds a server with stubbed-out pieces and registers
// Close so the goroutine-leak gate stays clean.
func overloadServer(t *testing.T, opts ...Option) *Server {
	t.Helper()
	st, err := storage.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(st, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// instantExec completes a run immediately without touching a backend.
func instantExec(context.Context, *controller.Controller, *core.PQP, *cluster.Cluster, backend.RunSpec) (*metrics.RunRecord, error) {
	return &metrics.RunRecord{ID: "stub", Workload: "stub"}, nil
}

// gateExec blocks every run until released, handing each run's context
// to the test so cancellation semantics can be asserted.
type gateExec struct {
	started chan context.Context
	release chan struct{}
}

func newGateExec() *gateExec {
	return &gateExec{started: make(chan context.Context, 32), release: make(chan struct{})}
}

func (g *gateExec) exec(ctx context.Context, _ *controller.Controller, _ *core.PQP, _ *cluster.Cluster, _ backend.RunSpec) (*metrics.RunRecord, error) {
	g.started <- ctx
	select {
	case <-g.release:
		return &metrics.RunRecord{ID: "gated", Workload: "gated"}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func postRun(t *testing.T, s *Server, tenant, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/api/run", strings.NewReader(body))
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestDRRFairnessAcrossAsymmetricTenants floods the fair-share stage
// with wildly asymmetric per-tenant backlogs and asserts the grant
// stream is even while every tenant still has work: with one execution
// slot, quantum 1 and unit costs the scan is strict round-robin, so the
// first 3×min(backlog) grants split equally. The ISSUE's fairness bound
// is 10%; the schedule here is deterministic (grants chain one release
// at a time), so the split is in fact exact.
func TestDRRFairnessAcrossAsymmetricTenants(t *testing.T) {
	closing := make(chan struct{})
	defer close(closing)
	sched := newScheduler(ServingConfig{
		Workers: 1, QueueDepth: 1000, MaxQueueWait: time.Minute, Quantum: 1,
	}, closing)

	// Occupy the only slot so every scripted task queues behind it.
	warmRelease, err := sched.acquire(context.Background(), "warm", 1)
	if err != nil {
		t.Fatal(err)
	}

	demands := map[string]int{"alpha": 150, "beta": 90, "gamma": 60}
	total := 0
	var (
		mu     sync.Mutex
		grants []string
		wg     sync.WaitGroup
	)
	for tenant, n := range demands {
		total += n
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(tn string) {
				defer wg.Done()
				release, err := sched.acquire(context.Background(), tn, 1)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				grants = append(grants, tn)
				mu.Unlock()
				release()
			}(tenant)
		}
	}
	waitUntil(t, "all tasks queued", func() bool {
		_, queued := sched.gauges()
		return queued == total
	})

	warmRelease()
	wg.Wait()

	if len(grants) != total {
		t.Fatalf("granted %d of %d tasks", len(grants), total)
	}
	// While all three tenants are backlogged (first 3×60 grants), DRR
	// must split the slot evenly regardless of queue depths.
	window := 3 * demands["gamma"]
	counts := map[string]int{}
	for _, tn := range grants[:window] {
		counts[tn]++
	}
	fair := window / len(demands)
	for tenant := range demands {
		got := counts[tenant]
		if lo, hi := fair*9/10, fair*11/10; got < lo || got > hi {
			t.Errorf("tenant %s got %d of the first %d grants, want %d ±10%%", tenant, got, window, fair)
		}
	}
	if active, queued := sched.gauges(); active != 0 || queued != 0 {
		t.Errorf("gauges after drain: active=%d queued=%d", active, queued)
	}
}

// TestParallelismWeightedFairness checks that DRR fairness is measured
// in work units, not run counts: a tenant asking for parallelism-4 runs
// gets roughly a quarter the grant *count* of a parallelism-1 tenant.
func TestParallelismWeightedFairness(t *testing.T) {
	closing := make(chan struct{})
	defer close(closing)
	sched := newScheduler(ServingConfig{
		Workers: 1, QueueDepth: 1000, MaxQueueWait: time.Minute, Quantum: 4,
	}, closing)
	warmRelease, err := sched.acquire(context.Background(), "warm", 1)
	if err != nil {
		t.Fatal(err)
	}

	type load struct {
		tenant string
		cost   int
		n      int
	}
	loads := []load{{"wide", 4, 40}, {"narrow", 1, 160}}
	var (
		mu     sync.Mutex
		grants []string
		wg     sync.WaitGroup
		total  int
	)
	for _, l := range loads {
		total += l.n
		for i := 0; i < l.n; i++ {
			wg.Add(1)
			go func(tn string, cost int) {
				defer wg.Done()
				release, err := sched.acquire(context.Background(), tn, cost)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				grants = append(grants, tn)
				mu.Unlock()
				release()
			}(l.tenant, l.cost)
		}
	}
	waitUntil(t, "all tasks queued", func() bool {
		_, queued := sched.gauges()
		return queued == total
	})
	warmRelease()
	wg.Wait()

	// While both tenants are backlogged, each ring round grants 1 wide
	// (cost 4) and 4 narrow (cost 1) runs: equal work, unequal counts.
	// The wide tenant's 40 runs span 40 rounds = 160 narrow grants, so
	// the whole trace is inside the contested window.
	counts := map[string]int{}
	for _, tn := range grants {
		counts[tn]++
	}
	if counts["wide"] != 40 || counts["narrow"] != 160 {
		t.Fatalf("grant counts %v", counts)
	}
	firstRounds := grants[:50]
	wide := 0
	for _, tn := range firstRounds {
		if tn == "wide" {
			wide++
		}
	}
	if wide == 0 || wide > 50/4+1 {
		t.Errorf("wide tenant got %d of first 50 grants, want ~10 (work-weighted share)", wide)
	}
}

// TestShedBeforeCollapse drives the worker pool past saturation and
// asserts the three overload behaviours in order: a full tenant queue
// sheds instantly, a queued-too-long request sheds at the deadline with
// Retry-After, and the rest of the API keeps serving throughout.
func TestShedBeforeCollapse(t *testing.T) {
	gate := newGateExec()
	s := overloadServer(t,
		WithServing(ServingConfig{Workers: 1, QueueDepth: 1, MaxQueueWait: 60 * time.Millisecond}),
		WithExecutor(gate.exec),
	)

	// Run 1 takes the only slot and blocks in the executor.
	done1 := make(chan *httptest.ResponseRecorder, 1)
	go func() { done1 <- postRun(t, s, "alpha", runBody) }()
	<-gate.started

	// Run 2 queues; it will shed when MaxQueueWait expires.
	done2 := make(chan *httptest.ResponseRecorder, 1)
	go func() { done2 <- postRun(t, s, "alpha", runBody) }()
	waitUntil(t, "run 2 queued", func() bool {
		_, queued := s.sched.gauges()
		return queued == 1
	})

	// Run 3 bounces off the full tenant queue immediately.
	w3 := postRun(t, s, "alpha", runBody)
	if w3.Code != http.StatusServiceUnavailable {
		t.Fatalf("queue-full status %d: %s", w3.Code, w3.Body.String())
	}
	if w3.Header().Get("Retry-After") == "" {
		t.Error("queue-full 503 missing Retry-After header")
	}
	var shedBody map[string]any
	if err := json.Unmarshal(w3.Body.Bytes(), &shedBody); err != nil {
		t.Fatalf("queue-full body not JSON: %s", w3.Body.String())
	}
	if msg, _ := shedBody["error"].(string); !strings.Contains(msg, "queue is full") {
		t.Errorf("queue-full error = %q", msg)
	}

	// The front door being saturated must not take down the rest of the
	// API: catalogue and stats endpoints still answer.
	for _, path := range []string{"/api/apps", "/api/runs", "/api/serving/stats"} {
		if w := get(t, s, path); w.Code != http.StatusOK {
			t.Errorf("GET %s during overload: %d", path, w.Code)
		}
	}

	// Run 2 sheds once its deadline passes.
	w2 := <-done2
	if w2.Code != http.StatusServiceUnavailable {
		t.Fatalf("shed status %d: %s", w2.Code, w2.Body.String())
	}
	if !strings.Contains(w2.Body.String(), "shed deadline") {
		t.Errorf("shed error body = %s", w2.Body.String())
	}

	// Run 1 was never affected: release the gate and it completes.
	close(gate.release)
	w1 := <-done1
	if w1.Code != http.StatusOK {
		t.Fatalf("gated run status %d: %s", w1.Code, w1.Body.String())
	}

	snap := s.serving.snapshot()
	if snap.Admitted != 1 || snap.Shed != 2 || snap.Completed != 1 || snap.Failed != 0 {
		t.Errorf("serving counters: %+v", snap)
	}
	if at := snap.Tenants["alpha"]; at.Admitted != 1 || at.Shed != 2 || at.Completed != 1 {
		t.Errorf("alpha counters: %+v", at)
	}
}

// TestQuotaIsolationAcrossTenants exhausts one tenant's token bucket on
// a frozen clock and asserts the 429 is typed (Retry-After header +
// machine-readable JSON), other tenants are untouched, and refilling
// the bucket by advancing the clock re-admits the throttled tenant.
func TestQuotaIsolationAcrossTenants(t *testing.T) {
	clk := &fabricClock{}
	s := overloadServer(t,
		WithNowMS(clk.Now),
		WithServing(ServingConfig{Admission: AdmissionConfig{
			PerTenant: TenantQuota{RatePerSec: 1, Burst: 2},
			Global:    TenantQuota{RatePerSec: 1000, Burst: 1000},
		}}),
		WithExecutor(instantExec),
	)

	// Burst of 2: two requests pass, the third is rejected.
	for i := 0; i < 2; i++ {
		if w := postRun(t, s, "alpha", runBody); w.Code != http.StatusOK {
			t.Fatalf("alpha request %d: %d %s", i+1, w.Code, w.Body.String())
		}
	}
	w := postRun(t, s, "alpha", runBody)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("alpha over-quota status %d: %s", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 missing Retry-After header")
	}
	var rej struct {
		Error        string `json:"error"`
		Tenant       string `json:"tenant"`
		RetryAfterMS int64  `json:"retry_after_ms"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &rej); err != nil {
		t.Fatalf("429 body not JSON: %s", w.Body.String())
	}
	if rej.Tenant != "alpha" || rej.RetryAfterMS < 1 || rej.Error == "" {
		t.Errorf("429 body %+v", rej)
	}

	// Isolation: beta and the default tenant have their own buckets.
	if w := postRun(t, s, "beta", runBody); w.Code != http.StatusOK {
		t.Errorf("beta while alpha throttled: %d", w.Code)
	}
	if w := postRun(t, s, "", runBody); w.Code != http.StatusOK {
		t.Errorf("default tenant while alpha throttled: %d", w.Code)
	}

	// Refill at 1 token/s: one second later alpha is admitted again.
	clk.Advance(time.Second)
	if w := postRun(t, s, "alpha", runBody); w.Code != http.StatusOK {
		t.Errorf("alpha after refill: %d %s", w.Code, w.Body.String())
	}

	snap := s.serving.snapshot()
	if a := snap.Tenants["alpha"]; a.Admitted != 3 || a.Rejected != 1 {
		t.Errorf("alpha serving stats %+v", a)
	}
	if b := snap.Tenants["beta"]; b.Admitted != 1 || b.Rejected != 0 {
		t.Errorf("beta serving stats %+v", b)
	}
	if d := snap.Tenants[DefaultTenant]; d.Admitted != 1 {
		t.Errorf("default-tenant serving stats %+v", d)
	}
	if snap.Rejected429 != 1 || snap.Admitted != 5 {
		t.Errorf("aggregate serving stats %+v", snap)
	}
}

// TestGlobalBucketRefundsTenantToken: when the global bucket rejects, a
// tenant's own token must be refunded, so a global brown-out does not
// double-charge well-behaved tenants.
func TestGlobalBucketRefundsTenantToken(t *testing.T) {
	clk := &fabricClock{}
	s := overloadServer(t,
		WithNowMS(clk.Now),
		WithServing(ServingConfig{Admission: AdmissionConfig{
			PerTenant: TenantQuota{RatePerSec: 1, Burst: 10},
			Global:    TenantQuota{RatePerSec: 1, Burst: 1},
		}}),
		WithExecutor(instantExec),
	)
	if w := postRun(t, s, "alpha", runBody); w.Code != http.StatusOK {
		t.Fatalf("first request: %d", w.Code)
	}
	// Global bucket dry: rejected, but alpha's bucket must not drain.
	for i := 0; i < 5; i++ {
		if w := postRun(t, s, "alpha", runBody); w.Code != http.StatusTooManyRequests {
			t.Fatalf("global-dry request %d: %d", i, w.Code)
		}
	}
	s.admit.mu.Lock()
	tokens := s.admit.tenants["alpha"].tokens
	s.admit.mu.Unlock()
	if tokens != 9 {
		t.Errorf("alpha tokens after global rejects = %v, want 9 (refunded)", tokens)
	}
}

// asyncSubmit POSTs an async run and returns the 202 response body.
func asyncSubmit(t *testing.T, ts *httptest.Server, tenant, body string) AsyncRunResponse {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/api/run", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit status %d", resp.StatusCode)
	}
	var out AsyncRunResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.RunID == "" || out.Events == "" {
		t.Fatalf("async response %+v", out)
	}
	return out
}

// runStatusOf polls GET /api/runs/{id} until the run reaches a terminal
// state and returns the final snapshot.
func runStatusOf(t *testing.T, ts *httptest.Server, id string) RunStatus {
	t.Helper()
	var st RunStatus
	waitUntil(t, "run "+id+" terminal", func() bool {
		resp, err := http.Get(ts.URL + "/api/runs/" + id)
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return false
		}
		if json.NewDecoder(resp.Body).Decode(&st) != nil {
			return false
		}
		switch st.Status {
		case "completed", "failed", "shed":
			return true
		}
		return false
	})
	return st
}

// TestSSEDisconnectCancelsWatchNotRun is the SSE contract: dropping the
// event stream mid-run tears down only the watch — the run keeps its
// execution context and slot, finishes normally, and a re-attached
// stream replays the full history through the terminal event.
func TestSSEDisconnectCancelsWatchNotRun(t *testing.T) {
	gate := newGateExec()
	s := overloadServer(t, WithExecutor(gate.exec))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	sub := asyncSubmit(t, ts, "alpha", `{"structure":"linear","parallelism":1,"async":true}`)
	execCtx := <-gate.started // the run is admitted and executing

	// Attach a watcher, read up to the admitted event, then disconnect.
	sseCtx, cancelSSE := context.WithCancel(context.Background())
	defer cancelSSE()
	req, err := http.NewRequestWithContext(sseCtx, http.MethodGet, ts.URL+sub.Events, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("SSE content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sawAdmitted := false
	for sc.Scan() {
		if sc.Text() == "event: admitted" {
			sawAdmitted = true
			break
		}
	}
	if !sawAdmitted {
		t.Fatal("never saw the admitted event on the live stream")
	}
	cancelSSE()
	resp.Body.Close()

	// The watcher is gone; the run must not be. Give the server a moment
	// to observe the disconnect, then check the execution context.
	time.Sleep(50 * time.Millisecond)
	select {
	case <-execCtx.Done():
		t.Fatal("client disconnect cancelled the run's execution context")
	default:
	}

	// Release the gate; the run completes into the registry.
	close(gate.release)
	st := runStatusOf(t, ts, sub.RunID)
	if st.Status != "completed" {
		t.Fatalf("run finished as %q: %+v", st.Status, st)
	}

	// Re-attach: the stream replays queued → admitted → completed and
	// then terminates (ReadAll returns because the handler closes).
	resp2, err := http.Get(ts.URL + sub.Events)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	replayBytes, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	replay := string(replayBytes)
	for _, want := range []string{"event: queued", "event: admitted", "event: completed", `"record"`} {
		if !strings.Contains(replay, want) {
			t.Errorf("replayed stream missing %q:\n%s", want, replay)
		}
	}
}

// TestAsyncRunLifecycleAndServerClose covers the async happy path plus
// shutdown semantics: Server.Close cancels in-flight async runs and
// waits for their goroutines, and the run log records the failure.
func TestAsyncRunLifecycleAndServerClose(t *testing.T) {
	gate := newGateExec()
	s := overloadServer(t, WithExecutor(gate.exec))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	sub := asyncSubmit(t, ts, "beta", `{"structure":"linear","parallelism":1,"async":true}`)
	<-gate.started

	// Close with the run still gated: its context is cancelled, the
	// executor returns ctx.Err, and the log ends in a failed event.
	s.Close()
	st := runStatusOf(t, ts, sub.RunID)
	if st.Status != "failed" {
		t.Fatalf("run after Close: %q, want failed", st.Status)
	}
	if st.Tenant != "beta" {
		t.Errorf("run tenant %q", st.Tenant)
	}
	if len(st.Events) < 3 || st.Events[0].Type != "queued" || st.Events[1].Type != "admitted" {
		t.Errorf("event history %+v", st.Events)
	}
}

// TestUnknownRunID: both the status and events endpoints 404 with a
// JSON error for unregistered run ids.
func TestUnknownRunID(t *testing.T) {
	s := overloadServer(t, WithExecutor(instantExec))
	for _, path := range []string{"/api/runs/run-999", "/api/runs/run-999/events"} {
		w := get(t, s, path)
		if w.Code != http.StatusNotFound {
			t.Errorf("GET %s: %d", path, w.Code)
		}
		if ct := w.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("GET %s content type %q", path, ct)
		}
	}
}

