package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"pdspbench/internal/metrics"
)

// Streaming progress: the front door's answer to long campaign POSTs.
// A run submitted with "async": true returns 202 immediately with a run
// id; the client follows GET /api/runs/{id}/events — a Server-Sent
// Events stream — through queued → admitted → completed/failed/shed.
// Disconnecting the SSE client cancels only the watch: the run keeps
// its execution slot and finishes into the store (re-attach any time;
// the stream replays the full event history first). Server shutdown,
// not client disconnect, is what cancels in-flight async runs.

// RunEvent is one progress event of a tracked run; the SSE stream
// carries them as `event: <type>` + `data: <json>` frames.
type RunEvent struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"` // queued | admitted | completed | failed | shed
	TMS  int64  `json:"t_ms"` // server monotonic milliseconds
	// Error is set on failed/shed events.
	Error string `json:"error,omitempty"`
	// Record is set on the completed event.
	Record *metrics.RunRecord `json:"record,omitempty"`
}

// terminal reports whether the event ends the stream.
func (e *RunEvent) terminal() bool {
	switch e.Type {
	case "completed", "failed", "shed":
		return true
	}
	return false
}

// RunStatus is the GET /api/runs/{id} snapshot.
type RunStatus struct {
	ID     string     `json:"id"`
	Tenant string     `json:"tenant"`
	Status string     `json:"status"` // type of the latest event
	Events []RunEvent `json:"events"`
}

// runLog tracks one async run: its event history and the condition
// variable SSE watchers wait on. cancel aborts the execution (used only
// by Server.Close — client disconnects never touch it).
type runLog struct {
	id     string
	tenant string
	cancel context.CancelFunc

	mu     sync.Mutex
	cond   *sync.Cond
	events []RunEvent
}

func newRunLog(id, tenant string) *runLog {
	rl := &runLog{id: id, tenant: tenant}
	rl.cond = sync.NewCond(&rl.mu)
	return rl
}

// append records an event and wakes every watcher.
func (rl *runLog) append(typ string, tms int64, errMsg string, rec *metrics.RunRecord) {
	rl.mu.Lock()
	rl.events = append(rl.events, RunEvent{
		Seq: len(rl.events) + 1, Type: typ, TMS: tms, Error: errMsg, Record: rec,
	})
	rl.cond.Broadcast()
	rl.mu.Unlock()
}

// status snapshots the log.
func (rl *runLog) status() RunStatus {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	st := RunStatus{ID: rl.id, Tenant: rl.tenant, Events: append([]RunEvent(nil), rl.events...)}
	if n := len(st.Events); n > 0 {
		st.Status = st.Events[n-1].Type
	}
	return st
}

// runRegistry indexes live and recently finished runLogs. Completed
// logs are evicted FIFO past a bound so a long-lived server does not
// accumulate every run it ever streamed.
type runRegistry struct {
	mu    sync.Mutex
	runs  map[string]*runLog
	order []string // insertion order, for eviction
	seq   int
	keep  int
}

func newRunRegistry(keep int) *runRegistry {
	if keep <= 0 {
		keep = 1024
	}
	return &runRegistry{runs: map[string]*runLog{}, keep: keep}
}

// add creates and registers a new runLog with a fresh ordinal id.
func (rr *runRegistry) add(tenant string, cancel context.CancelFunc) *runLog {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	rr.seq++
	rl := newRunLog(fmt.Sprintf("run-%d", rr.seq), tenant)
	rl.cancel = cancel
	rr.runs[rl.id] = rl
	rr.order = append(rr.order, rl.id)
	if len(rr.order) > rr.keep {
		evict := rr.order[0]
		rr.order = rr.order[1:]
		delete(rr.runs, evict)
	}
	return rl
}

func (rr *runRegistry) get(id string) (*runLog, bool) {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	rl, ok := rr.runs[id]
	return rl, ok
}

// cancelAll aborts every tracked run's execution context (shutdown).
func (rr *runRegistry) cancelAll() {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	for _, rl := range rr.runs {
		if rl.cancel != nil {
			rl.cancel()
		}
	}
}

// handleRunStatus implements GET /api/runs/{id}.
func (s *Server) handleRunStatus(w http.ResponseWriter, r *http.Request) {
	rl, ok := s.registry.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("server: unknown run id"))
		return
	}
	writeJSON(w, http.StatusOK, rl.status())
}

// handleRunEvents implements GET /api/runs/{id}/events: an SSE stream
// of the run's progress. The full history is replayed first, then live
// events until a terminal event or the client disconnects — the
// disconnect tears down only this watch, never the run.
func (s *Server) handleRunEvents(w http.ResponseWriter, r *http.Request) {
	rl, ok := s.registry.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("server: unknown run id"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("server: response writer cannot stream"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	// A disconnected client cannot signal the cond directly; AfterFunc
	// turns the context cancellation into a broadcast so the wait below
	// wakes up and notices.
	stop := context.AfterFunc(r.Context(), func() {
		rl.mu.Lock()
		rl.cond.Broadcast()
		rl.mu.Unlock()
	})
	defer stop()

	cursor := 0
	for {
		rl.mu.Lock()
		for cursor >= len(rl.events) && r.Context().Err() == nil {
			rl.cond.Wait()
		}
		pending := append([]RunEvent(nil), rl.events[cursor:]...)
		cursor = len(rl.events)
		rl.mu.Unlock()
		if r.Context().Err() != nil {
			return // watcher gone; the run is unaffected
		}
		for i := range pending {
			if err := writeSSE(w, &pending[i]); err != nil {
				return
			}
			flusher.Flush()
			if pending[i].terminal() {
				return
			}
		}
	}
}

// writeSSE frames one event.
func writeSSE(w http.ResponseWriter, e *RunEvent) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Type, data)
	return err
}
