package server

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"pdspbench/internal/core"
	"pdspbench/internal/metrics"
	"pdspbench/internal/storm"
)

// Satellite: concurrent --disorder campaigns through the storm harness.
// Every scripted run carries the same zipfburst disorder spec, and the
// sim's late-drop count is analytic over the seeded DES — so N runs of
// the same workload, no matter how concurrently they execute, must all
// report the *same nonzero* late_drops. A race in the event-time
// accounting (shared window state, unsynchronized counters) would show
// up as divergent or zero counts.
func TestStormConcurrentDisorderRunsAccountLateDropsConsistently(t *testing.T) {
	s := testServer(t)
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	body, err := json.Marshal(RunRequest{
		Structure:   "linear",
		Parallelism: 2,
		// Name the backend explicitly so every request gets its own Sim
		// instance (prepareRun clones per-request); the point is that
		// isolation, not sharing, is what keeps concurrent runs exact.
		Backend:           "sim",
		Disorder:          &core.DisorderSpec{Kind: core.DisorderZipfBurst, MaxSkewMs: 200},
		AllowedLatenessMs: 10,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Two tenants, two generators each, arrival rate far above service
	// rate — the requests overlap in the worker pool. Sync submissions:
	// storm.Run returning means every run has fully executed.
	rep, err := storm.Run(context.Background(), storm.Config{
		BaseURL:     ts.URL,
		Seed:        7,
		Duration:    5 * time.Second,
		MaxRequests: 8,
		Scripts: []storm.ClientScript{
			{Tenant: "alpha", Clients: 2, RatePerSec: 100, Body: body},
			{Tenant: "beta", Clients: 2, RatePerSec: 100, Body: body},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 8 || rep.OK != 8 {
		t.Fatalf("storm outcome: %d requests, %d ok, %d shed, %d rejected — want 8 clean runs",
			rep.Requests, rep.OK, rep.Shed503, rep.Rejected429)
	}

	var records []metrics.RunRecord
	if err := json.Unmarshal(get(t, s, "/api/runs").Body.Bytes(), &records); err != nil {
		t.Fatal(err)
	}
	if len(records) != 8 {
		t.Fatalf("stored %d records, want 8", len(records))
	}
	first := records[0].LateDrops
	if first == 0 {
		t.Fatalf("zipfburst run reported zero late drops: %+v", records[0])
	}
	for i, rec := range records {
		if rec.LateDrops != first {
			t.Errorf("record %d late_drops = %d, want %d (identical across concurrent campaigns)",
				i, rec.LateDrops, first)
		}
	}

	// The serving layer agrees with the client-side view.
	if rep.Serving == nil {
		t.Fatal("storm report missing the serving snapshot")
	}
	if rep.Serving.Completed != 8 || rep.Serving.Failed != 0 {
		t.Errorf("serving snapshot: %+v", rep.Serving)
	}
	for _, tenant := range []string{"alpha", "beta"} {
		if tr := rep.Tenants[tenant]; tr.Requests == 0 || tr.OK != tr.Requests {
			t.Errorf("tenant %s report: %+v", tenant, tr)
		}
	}
}
