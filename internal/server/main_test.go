package server

import (
	"os"
	"testing"

	"pdspbench/internal/testutil"
)

// TestMain gates the package on goroutine hygiene: any goroutine still
// alive after the tests — a leaked run, an unjoined fault driver, a
// handler that outlived its request — fails the package.
func TestMain(m *testing.M) { os.Exit(testutil.RunMain(m)) }
