package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"pdspbench/internal/backend"
	"pdspbench/internal/cluster"
	"pdspbench/internal/core"
	"pdspbench/internal/metrics"
)

// blockingBackend parks in Run until its context is cancelled, so a
// test can observe exactly when the server tears a run down.
type blockingBackend struct {
	started chan struct{}
	stopped chan struct{}
}

func (b *blockingBackend) Name() string { return "blocking-test" }

func (b *blockingBackend) Run(ctx context.Context, plan *core.PQP, cl *cluster.Cluster, spec backend.RunSpec) (*metrics.RunRecord, error) {
	close(b.started)
	<-ctx.Done()
	close(b.stopped)
	return nil, ctx.Err()
}

// TestRunCancelledOnClientDisconnect asserts the documented contract of
// POST /api/run: the run executes under the request context, so a
// client that goes away mid-run cancels the backend promptly instead of
// leaving an orphaned measurement burning the machine.
func TestRunCancelledOnClientDisconnect(t *testing.T) {
	// Registration is process-wide; no other test resolves this name.
	bb := &blockingBackend{started: make(chan struct{}), stopped: make(chan struct{})}
	backend.Register("blocking-test", func() backend.Backend { return bb })

	srv := httptest.NewServer(testServer(t).Handler())
	defer srv.Close()

	body, err := json.Marshal(RunRequest{Structure: "linear", Parallelism: 2, Backend: "blocking-test"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/api/run", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		errc <- err
	}()

	select {
	case <-bb.started:
	case <-time.After(5 * time.Second):
		t.Fatal("backend never started; request did not reach the handler")
	}
	cancel() // client disconnects mid-run

	select {
	case <-bb.stopped:
	case <-time.After(2 * time.Second):
		t.Fatal("backend not cancelled within 2s of the client disconnecting")
	}
	if err := <-errc; err == nil {
		t.Error("client request succeeded despite being cancelled")
	}
}
