package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pdspbench/internal/metrics"
	"pdspbench/internal/storage"
)

func testServer(t *testing.T) *Server {
	t.Helper()
	st, err := storage.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(st)
	if err != nil {
		t.Fatal(err)
	}
	// Shrink simulation fidelity so POST /api/run is fast in tests.
	s.ctrl.Cfg.Duration = 5
	s.ctrl.Cfg.SourceBatches = 40
	s.ctrl.Runs = 1
	return s
}

func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

func TestIndexServesHTML(t *testing.T) {
	w := get(t, testServer(t), "/")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	if !strings.Contains(w.Body.String(), "PDSP-Bench") {
		t.Error("index page missing title")
	}
}

func TestAppsEndpointListsAll14(t *testing.T) {
	w := get(t, testServer(t), "/api/apps")
	var out []map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 14 {
		t.Errorf("apps = %d, want 14", len(out))
	}
}

func TestStructuresEndpoint(t *testing.T) {
	w := get(t, testServer(t), "/api/structures")
	var out []string
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 9 {
		t.Errorf("structures = %d, want 9", len(out))
	}
}

func TestClustersEndpoint(t *testing.T) {
	w := get(t, testServer(t), "/api/clusters")
	var out []map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Errorf("clusters = %d, want 3 (Table 4)", len(out))
	}
}

func TestStrategiesEndpoint(t *testing.T) {
	w := get(t, testServer(t), "/api/strategies")
	var out []string
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 6 {
		t.Errorf("strategies = %d, want 6", len(out))
	}
}

func TestRunsEndpointEmptyAndAfterRun(t *testing.T) {
	s := testServer(t)
	w := get(t, s, "/api/runs")
	if strings.TrimSpace(w.Body.String()) != "[]" {
		t.Errorf("empty store should return [], got %q", w.Body.String())
	}
	// Execute a workload through the API; the record must land in the store.
	body := `{"structure":"linear","parallelism":2,"event_rate":50000}`
	req := httptest.NewRequest(http.MethodPost, "/api/run", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /api/run status %d: %s", rec.Code, rec.Body.String())
	}
	var run metrics.RunRecord
	if err := json.Unmarshal(rec.Body.Bytes(), &run); err != nil {
		t.Fatal(err)
	}
	if run.LatencyP50 <= 0 {
		t.Errorf("run latency %v", run.LatencyP50)
	}
	w = get(t, s, "/api/runs")
	var runs []metrics.RunRecord
	if err := json.Unmarshal(w.Body.Bytes(), &runs); err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Errorf("stored runs = %d, want 1", len(runs))
	}
}

func TestRunEndpointWithApp(t *testing.T) {
	s := testServer(t)
	body := `{"app":"SD","parallelism":4,"cluster":"c6525_25g","event_rate":50000}`
	req := httptest.NewRequest(http.MethodPost, "/api/run", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var run metrics.RunRecord
	json.Unmarshal(rec.Body.Bytes(), &run)
	if run.Cluster != "c6525_25g" {
		t.Errorf("cluster %q", run.Cluster)
	}
}

func TestRunEndpointErrors(t *testing.T) {
	s := testServer(t)
	cases := []struct {
		body string
		code int
	}{
		{`{"parallelism":2}`, http.StatusBadRequest},                        // no workload
		{`{"app":"NOPE","parallelism":2}`, http.StatusNotFound},             // unknown app
		{`{"structure":"8-way-join","parallelism":2}`, http.StatusNotFound}, // unknown structure
		{`{"app":"WC","cluster":"moon"}`, http.StatusBadRequest},            // unknown cluster
		{`{not json`, http.StatusBadRequest},
	}
	for _, c := range cases {
		req := httptest.NewRequest(http.MethodPost, "/api/run", strings.NewReader(c.body))
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != c.code {
			t.Errorf("body %q: status %d, want %d", c.body, rec.Code, c.code)
		}
	}
}

func TestPlanEndpoint(t *testing.T) {
	s := testServer(t)
	w := get(t, s, "/api/plan?structure=3-way-join&parallelism=8")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	if !strings.Contains(w.Body.String(), "digraph") || !strings.Contains(w.Body.String(), "p=8") {
		t.Errorf("plan DOT malformed: %s", w.Body.String()[:80])
	}
	w = get(t, s, "/api/plan?app=AD")
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "join") {
		t.Errorf("app plan: status %d", w.Code)
	}
	if w := get(t, s, "/api/plan"); w.Code != http.StatusBadRequest {
		t.Errorf("missing params: status %d", w.Code)
	}
	if w := get(t, s, "/api/plan?app=NOPE"); w.Code != http.StatusNotFound {
		t.Errorf("unknown app: status %d", w.Code)
	}
}
