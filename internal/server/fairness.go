package server

import (
	"context"
	"errors"
	"sync"
	"time"
)

// Fair-share scheduling: the second stage of the serving front door.
// Admitted runs do not execute immediately — they join their tenant's
// FIFO queue, and a deficit-round-robin (DRR) scan grants execution
// slots from a bounded worker pool, so one tenant flooding the front
// door cannot starve the others: each active tenant receives the same
// quantum of work units per round regardless of how deep its queue is.
//
// There is no scheduler goroutine. Like the queue's traffic-driven
// lease reaping, dispatch runs inside the goroutines that change
// scheduler state: every enqueue and every slot release scans the DRR
// ring under the lock and grants slots to the next deserving tasks.
// Waiting requests each carry their own shed timer, so queued-too-long
// work is shed (typed 503 + Retry-After) by the waiter itself rather
// than by a reaper.

// ServingConfig tunes the front door pipeline.
type ServingConfig struct {
	// Admission parameterizes the token buckets (stage one).
	Admission AdmissionConfig
	// Workers bounds concurrently executing runs (default 4).
	Workers int
	// QueueDepth bounds each tenant's waiting queue; a request arriving
	// at a full queue is shed immediately (default 64).
	QueueDepth int
	// MaxQueueWait is the shed deadline: a request still waiting for an
	// execution slot after this long is shed (default 10s).
	MaxQueueWait time.Duration
	// Quantum is the DRR quantum in work units per round (default 8). A
	// run's cost is its requested parallelism (min 1), so fairness is
	// measured in parallelism-weighted work, not just run counts.
	Quantum int
}

func (c ServingConfig) withDefaults() ServingConfig {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxQueueWait <= 0 {
		c.MaxQueueWait = 10 * time.Second
	}
	if c.Quantum <= 0 {
		c.Quantum = 8
	}
	return c
}

// Shed/closed sentinels; the run handler maps them onto HTTP statuses.
var (
	errShed      = errors.New("server: run shed: queued past the shed deadline under overload")
	errQueueFull = errors.New("server: run shed: tenant queue is full")
	errClosing   = errors.New("server: shutting down")
)

// task is one admitted run waiting for an execution slot.
type task struct {
	tenant string
	cost   int
	// grant is closed by the dispatch scan (under the scheduler lock)
	// when the task receives a slot; the waiter selects on it.
	grant   chan struct{}
	granted bool
}

// tenantQueue is one tenant's FIFO plus its DRR deficit counter.
type tenantQueue struct {
	name    string
	tasks   []*task
	deficit int
	// charged marks that this tenant already received its quantum for
	// the current ring visit. A dispatch scan that stops mid-visit
	// because the pool filled resumes at the same tenant without
	// charging again — otherwise every slot release would re-top the
	// deficit of whichever tenant the cursor parked on, letting it
	// monopolize a small pool.
	charged bool
	ringPos int // index in scheduler.ring, -1 when inactive
}

// scheduler is the DRR fair-share stage over the bounded pool.
type scheduler struct {
	cfg     ServingConfig
	closing chan struct{} // closed by Server.Close; owner: Server

	mu      sync.Mutex
	tenants map[string]*tenantQueue
	ring    []*tenantQueue // tenants with waiting tasks, round-robin order
	next    int            // ring cursor
	running int            // slots in use
	queued  int            // tasks waiting across all tenants
}

func newScheduler(cfg ServingConfig, closing chan struct{}) *scheduler {
	return &scheduler{
		cfg:     cfg.withDefaults(),
		closing: closing,
		tenants: map[string]*tenantQueue{},
	}
}

// gauges reports (active, queued) for the serving snapshot.
func (s *scheduler) gauges() (active, queued int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running, s.queued
}

// acquire blocks until the tenant's task is granted an execution slot,
// the context is cancelled, the shed deadline passes, or the server
// closes. On success the returned release func must be called exactly
// once when the run finishes; it frees the slot and re-dispatches.
func (s *scheduler) acquire(ctx context.Context, tenant string, cost int) (release func(), err error) {
	if cost < 1 {
		cost = 1
	}
	t := &task{tenant: tenant, cost: cost, grant: make(chan struct{})}
	s.mu.Lock()
	select {
	case <-s.closing:
		s.mu.Unlock()
		return nil, errClosing
	default:
	}
	tq := s.tenants[tenant]
	if tq == nil {
		tq = &tenantQueue{name: tenant, ringPos: -1}
		s.tenants[tenant] = tq
	}
	if len(tq.tasks) >= s.cfg.QueueDepth {
		s.mu.Unlock()
		return nil, errQueueFull
	}
	tq.tasks = append(tq.tasks, t)
	s.queued++
	if tq.ringPos < 0 {
		tq.ringPos = len(s.ring)
		s.ring = append(s.ring, tq)
	}
	s.dispatchLocked()
	s.mu.Unlock()

	shed := time.NewTimer(s.cfg.MaxQueueWait)
	defer shed.Stop()
	select {
	case <-t.grant:
		return s.releaseFunc(), nil
	case <-ctx.Done():
		if s.abandon(t) {
			return nil, ctx.Err()
		}
		// Granted while we raced the cancellation: give the slot back.
		s.releaseFunc()()
		return nil, ctx.Err()
	case <-shed.C:
		if s.abandon(t) {
			return nil, errShed
		}
		// Granted in the same instant the shed timer fired — the slot is
		// ours, so run rather than waste it.
		return s.releaseFunc(), nil
	case <-s.closing:
		if s.abandon(t) {
			return nil, errClosing
		}
		s.releaseFunc()()
		return nil, errClosing
	}
}

// releaseFunc frees one slot and re-dispatches; idempotence is the
// caller's job (each grant pairs with exactly one release).
func (s *scheduler) releaseFunc() func() {
	return func() {
		s.mu.Lock()
		s.running--
		s.dispatchLocked()
		s.mu.Unlock()
	}
}

// abandon removes a still-waiting task (shed, cancelled, or shutdown);
// it reports false when the task was already granted, in which case the
// caller owns a slot and must release (or use) it.
func (s *scheduler) abandon(t *task) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.granted {
		return false
	}
	tq := s.tenants[t.tenant]
	for i, qt := range tq.tasks {
		if qt == t {
			tq.tasks = append(tq.tasks[:i], tq.tasks[i+1:]...)
			s.queued--
			break
		}
	}
	if len(tq.tasks) == 0 && tq.ringPos >= 0 {
		s.dropFromRingLocked(tq)
	}
	return true
}

// dropFromRingLocked removes an emptied tenant from the DRR ring,
// keeping the cursor pointing at the same next tenant.
func (s *scheduler) dropFromRingLocked(tq *tenantQueue) {
	i := tq.ringPos
	s.ring = append(s.ring[:i], s.ring[i+1:]...)
	for j := i; j < len(s.ring); j++ {
		s.ring[j].ringPos = j
	}
	if s.next > i {
		s.next--
	}
	if len(s.ring) > 0 {
		s.next %= len(s.ring)
	} else {
		s.next = 0
	}
	tq.ringPos = -1
	tq.deficit = 0
	tq.charged = false
}

// dispatchLocked is the DRR scan: while free slots and waiting tasks
// remain, visit tenants round-robin; each visit tops the tenant's
// deficit up by one quantum and grants its queued tasks head-first
// while the deficit covers their cost. A tenant whose queue empties
// leaves the ring and forfeits its deficit, so fairness resets rather
// than being banked while idle. Called with s.mu held from every
// enqueue and every release.
func (s *scheduler) dispatchLocked() {
	for s.running < s.cfg.Workers && len(s.ring) > 0 {
		tq := s.ring[s.next%len(s.ring)]
		if !tq.charged {
			tq.deficit += s.cfg.Quantum
			tq.charged = true
		}
		for len(tq.tasks) > 0 && tq.deficit >= tq.tasks[0].cost && s.running < s.cfg.Workers {
			t := tq.tasks[0]
			tq.tasks = tq.tasks[1:]
			s.queued--
			tq.deficit -= t.cost
			t.granted = true
			s.running++
			close(t.grant)
		}
		if len(tq.tasks) == 0 {
			s.dropFromRingLocked(tq)
			continue
		}
		if s.running >= s.cfg.Workers {
			// Pool full mid-visit: the scan ends here and resumes at this
			// tenant on the next release — still charged, so the leftover
			// deficit is spent before the cursor moves on.
			return
		}
		// Deficit exhausted for this visit: move to the next tenant; the
		// next visit starts a fresh round for this one.
		tq.charged = false
		s.next = (s.next + 1) % len(s.ring)
	}
}
