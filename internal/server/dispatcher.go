package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"pdspbench/internal/controller"
	"pdspbench/internal/queue"
)

// This file is the dispatcher half of the server: the HTTP surface of
// the distributed campaign fabric (internal/queue). Workers register,
// heartbeat, lease campaign jobs, and stream RunRecords back; the
// dispatcher appends completed jobs' records to the same "runs"
// collection the in-process campaigns use, so fleet-generated corpora
// are indistinguishable from local ones.
//
// Liveness is traffic-driven: every worker-facing handler reaps expired
// leases and dead workers inside the queue — there is no background
// reaper goroutine to leak or to race with shutdown.

// queueError maps queue sentinels onto HTTP statuses: unknown → 404,
// lease conflicts → 409. Anything else is a journal or record-store
// failure — the queue aborted the transition with state unchanged — so
// it maps to 500, telling the worker the call is worth retrying.
func queueError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, queue.ErrUnknownJob), errors.Is(err, queue.ErrUnknownWorker):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, queue.ErrStaleLease), errors.Is(err, queue.ErrNotLeasable):
		writeError(w, http.StatusConflict, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

// handleEnqueue implements POST /api/jobs: validate the campaign, shard
// it when asked, and journal the whole batch atomically — either every
// shard is enqueued or none are, so a failed request can be retried
// without duplicating shards that landed before the error.
func (s *Server) handleEnqueue(w http.ResponseWriter, r *http.Request) {
	var req queue.EnqueueRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if err := req.Spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	toEnqueue := []controller.Spec{req.Spec}
	if req.Split {
		toEnqueue = req.Spec.Shard()
	}
	jobs, err := s.q.EnqueueAll(toEnqueue, req.MaxAttempts, tenantOf(r))
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusCreated, queue.EnqueueResponse{Jobs: jobs})
}

// handleJobs implements GET /api/jobs[?status=...][&tenant=...].
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	status := queue.Status(r.URL.Query().Get("status"))
	if status != "" && !queue.ValidStatus(status) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown status %q (pending, leased, completed, failed)", status))
		return
	}
	writeJSON(w, http.StatusOK, s.q.JobsTenant(status, r.URL.Query().Get("tenant")))
}

// handleJob implements GET /api/jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.q.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, queue.ErrUnknownJob)
		return
	}
	writeJSON(w, http.StatusOK, j)
}

// handleRegister implements POST /api/workers/register.
func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req queue.RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	info := s.q.RegisterWorker(req.Name, req.Capacity, req.Backends)
	// Advertise a cadence that satisfies both deadlines: a third of the
	// heartbeat staleness bound (two missed beats still keep the worker
	// alive) and a third of the lease TTL (two missed extends still keep
	// a lease alive) — whichever is tighter. With the default
	// HeartbeatTTL = 3×LeaseTTL, the staleness bound alone would equal
	// the lease TTL exactly, and a worker pacing its extends on it would
	// always renew one beat too late.
	beat := s.q.HeartbeatTTL().Milliseconds() / 3
	if lease := s.q.LeaseTTL().Milliseconds() / 3; lease < beat {
		beat = lease
	}
	writeJSON(w, http.StatusCreated, queue.RegisterResponse{
		Worker:      info,
		LeaseTTLMS:  s.q.LeaseTTL().Milliseconds(),
		HeartbeatMS: beat,
	})
}

// handleHeartbeat implements POST /api/workers/{id}/heartbeat.
func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	info, err := s.q.Heartbeat(r.PathValue("id"))
	if err != nil {
		queueError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, queue.HeartbeatResponse{Worker: info, Stats: s.q.Snapshot()})
}

// handleWorkers implements GET /api/workers.
func (s *Server) handleWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.q.Workers())
}

// handleLeaseNext implements POST /api/jobs/lease: FIFO over eligible
// pending jobs; 200 with job=null when nothing is leasable.
func (s *Server) handleLeaseNext(w http.ResponseWriter, r *http.Request) {
	var req queue.LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	j, err := s.q.Lease(req.WorkerID)
	if err != nil {
		queueError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, queue.LeaseResponse{Job: j, Stats: s.q.Snapshot()})
}

// handleLeaseJob implements POST /api/jobs/{id}/lease: the targeted
// claim for callers that picked a job from the listing.
func (s *Server) handleLeaseJob(w http.ResponseWriter, r *http.Request) {
	var req queue.LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	j, err := s.q.LeaseJob(req.WorkerID, r.PathValue("id"))
	if err != nil {
		queueError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, queue.LeaseResponse{Job: j, Stats: s.q.Snapshot()})
}

// handleExtend implements POST /api/jobs/{id}/extend.
func (s *Server) handleExtend(w http.ResponseWriter, r *http.Request) {
	var req queue.ExtendRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	j, err := s.q.Extend(r.PathValue("id"), req.LeaseID)
	if err != nil {
		queueError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, j)
}

// handleComplete implements POST /api/jobs/{id}/complete. The records
// land inside queue.Complete's lease-checked critical section: a stale
// worker gets 409 before anything is written, the whole batch goes into
// the shared "runs" collection in one atomic AppendAll (no partial
// batches, no interleaving with concurrent completions), and a storage
// failure aborts the completion with the lease intact so the worker can
// retry — every completed job contributes its records exactly once.
func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req queue.CompleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	records := make([]any, len(req.Records))
	for i := range req.Records {
		records[i] = &req.Records[i]
	}
	j, err := s.q.Complete(r.PathValue("id"), req.LeaseID, len(req.Records), func() error {
		return s.store.AppendAll("runs", records...)
	})
	if err != nil {
		queueError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, j)
}

// handleFail implements POST /api/jobs/{id}/fail.
func (s *Server) handleFail(w http.ResponseWriter, r *http.Request) {
	var req queue.FailRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	j, err := s.q.Fail(r.PathValue("id"), req.LeaseID, req.Error)
	if err != nil {
		queueError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, j)
}
