package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"pdspbench/internal/controller"
	"pdspbench/internal/queue"
)

// This file is the dispatcher half of the server: the HTTP surface of
// the distributed campaign fabric (internal/queue). Workers register,
// heartbeat, lease campaign jobs, and stream RunRecords back; the
// dispatcher appends completed jobs' records to the same "runs"
// collection the in-process campaigns use, so fleet-generated corpora
// are indistinguishable from local ones.
//
// Liveness is traffic-driven: every worker-facing handler reaps expired
// leases and dead workers inside the queue — there is no background
// reaper goroutine to leak or to race with shutdown.

// queueError maps queue sentinels onto HTTP statuses: unknown → 404,
// lease conflicts → 409, everything else → 400.
func queueError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, queue.ErrUnknownJob), errors.Is(err, queue.ErrUnknownWorker):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, queue.ErrStaleLease), errors.Is(err, queue.ErrNotLeasable):
		writeError(w, http.StatusConflict, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

// handleEnqueue implements POST /api/jobs: validate the campaign, shard
// it when asked, and journal one job per shard.
func (s *Server) handleEnqueue(w http.ResponseWriter, r *http.Request) {
	var req queue.EnqueueRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if err := req.Spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	toEnqueue := []controller.Spec{req.Spec}
	if req.Split {
		toEnqueue = req.Spec.Shard()
	}
	campaigns := make([]queue.Job, 0, len(toEnqueue))
	for _, spec := range toEnqueue {
		j, err := s.q.Enqueue(spec, req.MaxAttempts)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		campaigns = append(campaigns, j)
	}
	writeJSON(w, http.StatusCreated, queue.EnqueueResponse{Jobs: campaigns})
}

// handleJobs implements GET /api/jobs[?status=...].
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	status := queue.Status(r.URL.Query().Get("status"))
	if status != "" && !queue.ValidStatus(status) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown status %q (pending, leased, completed, failed)", status))
		return
	}
	writeJSON(w, http.StatusOK, s.q.Jobs(status))
}

// handleJob implements GET /api/jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.q.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, queue.ErrUnknownJob)
		return
	}
	writeJSON(w, http.StatusOK, j)
}

// handleRegister implements POST /api/workers/register.
func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req queue.RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	info := s.q.RegisterWorker(req.Name, req.Capacity, req.Backends)
	writeJSON(w, http.StatusCreated, queue.RegisterResponse{
		Worker:     info,
		LeaseTTLMS: s.q.LeaseTTL().Milliseconds(),
		// Workers should check in at a third of the staleness bound so
		// two missed beats still keep their leases alive.
		HeartbeatMS: s.q.HeartbeatTTL().Milliseconds() / 3,
	})
}

// handleHeartbeat implements POST /api/workers/{id}/heartbeat.
func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	info, err := s.q.Heartbeat(r.PathValue("id"))
	if err != nil {
		queueError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, queue.HeartbeatResponse{Worker: info, Stats: s.q.Snapshot()})
}

// handleWorkers implements GET /api/workers.
func (s *Server) handleWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.q.Workers())
}

// handleLeaseNext implements POST /api/jobs/lease: FIFO over eligible
// pending jobs; 200 with job=null when nothing is leasable.
func (s *Server) handleLeaseNext(w http.ResponseWriter, r *http.Request) {
	var req queue.LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	j, err := s.q.Lease(req.WorkerID)
	if err != nil {
		queueError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, queue.LeaseResponse{Job: j, Stats: s.q.Snapshot()})
}

// handleLeaseJob implements POST /api/jobs/{id}/lease: the targeted
// claim for callers that picked a job from the listing.
func (s *Server) handleLeaseJob(w http.ResponseWriter, r *http.Request) {
	var req queue.LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	j, err := s.q.LeaseJob(req.WorkerID, r.PathValue("id"))
	if err != nil {
		queueError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, queue.LeaseResponse{Job: j, Stats: s.q.Snapshot()})
}

// handleExtend implements POST /api/jobs/{id}/extend.
func (s *Server) handleExtend(w http.ResponseWriter, r *http.Request) {
	var req queue.ExtendRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	j, err := s.q.Extend(r.PathValue("id"), req.LeaseID)
	if err != nil {
		queueError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, j)
}

// handleComplete implements POST /api/jobs/{id}/complete. Ordering is
// the exactly-once guarantee: queue.Complete consumes the lease token
// first (a stale worker gets 409 and its records are dropped), and only
// then do the records land in the shared "runs" collection — so every
// completed job contributes its records to the corpus exactly once.
func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req queue.CompleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	j, err := s.q.Complete(r.PathValue("id"), req.LeaseID, len(req.Records))
	if err != nil {
		queueError(w, err)
		return
	}
	for i := range req.Records {
		if err := s.store.Append("runs", &req.Records[i]); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, j)
}

// handleFail implements POST /api/jobs/{id}/fail.
func (s *Server) handleFail(w http.ResponseWriter, r *http.Request) {
	var req queue.FailRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	j, err := s.q.Fail(r.PathValue("id"), req.LeaseID, req.Error)
	if err != nil {
		queueError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, j)
}
