package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pdspbench/internal/metrics"
	"pdspbench/internal/queue"
	"pdspbench/internal/storage"
)

// fabricClock is an injected monotonic clock so lease expiry in
// dispatcher tests is driven by Advance, not wall time.
type fabricClock struct{ ms atomic.Int64 }

func (c *fabricClock) Now() int64              { return c.ms.Load() }
func (c *fabricClock) Advance(d time.Duration) { c.ms.Add(d.Milliseconds()) }

func fabricServer(t *testing.T) (*Server, *fabricClock) {
	t.Helper()
	st, err := storage.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	clk := &fabricClock{}
	s, err := New(st, WithQueueOptions(queue.Options{
		LeaseTTL:     time.Second,
		RetryBackoff: 100 * time.Millisecond,
		MaxAttempts:  2,
		NowMS:        clk.Now,
	}))
	if err != nil {
		t.Fatal(err)
	}
	return s, clk
}

func post(t *testing.T, s *Server, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

func decode[T any](t *testing.T, w *httptest.ResponseRecorder) T {
	t.Helper()
	var out T
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatalf("decode %q: %v", w.Body.String(), err)
	}
	return out
}

const sweepSpec = `{"spec":{"name":"sweep","workloads":[{"structure":"linear","degrees":[1,2,4,8]}]},"split":true}`

func TestEnqueueSplitShardsAndListsJobs(t *testing.T) {
	s, _ := fabricServer(t)
	w := post(t, s, "/api/jobs", sweepSpec)
	if w.Code != http.StatusCreated {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	resp := decode[queue.EnqueueResponse](t, w)
	if len(resp.Jobs) != 4 {
		t.Fatalf("jobs = %d, want 4 (one per degree)", len(resp.Jobs))
	}
	for _, j := range resp.Jobs {
		if j.Status != queue.StatusPending {
			t.Errorf("job %s status %q", j.ID, j.Status)
		}
	}

	jobs := decode[[]queue.Job](t, get(t, s, "/api/jobs"))
	if len(jobs) != 4 {
		t.Errorf("GET /api/jobs = %d jobs", len(jobs))
	}
	pending := decode[[]queue.Job](t, get(t, s, "/api/jobs?status=pending"))
	if len(pending) != 4 {
		t.Errorf("pending filter = %d jobs", len(pending))
	}
	if w := get(t, s, "/api/jobs?status=bogus"); w.Code != http.StatusBadRequest {
		t.Errorf("bogus status filter: %d", w.Code)
	}

	one := decode[queue.Job](t, get(t, s, "/api/jobs/"+resp.Jobs[0].ID))
	if one.ID != resp.Jobs[0].ID {
		t.Errorf("GET job = %q, want %q", one.ID, resp.Jobs[0].ID)
	}
	if w := get(t, s, "/api/jobs/nope"); w.Code != http.StatusNotFound {
		t.Errorf("unknown job: %d", w.Code)
	}
}

func TestEnqueueRejectsInvalidInput(t *testing.T) {
	s, _ := fabricServer(t)
	cases := []string{
		`{not json`,
		`{"spec":{"name":"empty","workloads":[]}}`,
		`{"spec":{"name":"bad","workloads":[{"structure":"8-dim-hypercube","degrees":[2]}]}}`,
	}
	for _, body := range cases {
		if w := post(t, s, "/api/jobs", body); w.Code != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, w.Code)
		}
	}
}

func TestWorkerLeaseCompleteAppendsRuns(t *testing.T) {
	s, _ := fabricServer(t)
	post(t, s, "/api/jobs", sweepSpec)

	w := post(t, s, "/api/workers/register", `{"name":"alpha","capacity":2}`)
	if w.Code != http.StatusCreated {
		t.Fatalf("register status %d: %s", w.Code, w.Body.String())
	}
	reg := decode[queue.RegisterResponse](t, w)
	if reg.Worker.ID == "" || reg.LeaseTTLMS != 1000 || reg.HeartbeatMS <= 0 {
		t.Fatalf("register response %+v", reg)
	}

	hb := post(t, s, "/api/workers/"+reg.Worker.ID+"/heartbeat", "")
	if hb.Code != http.StatusOK {
		t.Fatalf("heartbeat status %d", hb.Code)
	}
	if st := decode[queue.HeartbeatResponse](t, hb).Stats; st.Pending != 4 {
		t.Errorf("stats pending = %d, want 4", st.Pending)
	}
	if w := post(t, s, "/api/workers/ghost/heartbeat", ""); w.Code != http.StatusNotFound {
		t.Errorf("unknown worker heartbeat: %d", w.Code)
	}

	lease := decode[queue.LeaseResponse](t, post(t, s, "/api/jobs/lease",
		fmt.Sprintf(`{"worker_id":%q}`, reg.Worker.ID)))
	if lease.Job == nil {
		t.Fatal("no job leased")
	}
	job := lease.Job

	if w := post(t, s, "/api/jobs/"+job.ID+"/extend",
		fmt.Sprintf(`{"lease_id":%q}`, job.LeaseID)); w.Code != http.StatusOK {
		t.Fatalf("extend status %d: %s", w.Code, w.Body.String())
	}

	body, err := json.Marshal(queue.CompleteRequest{
		LeaseID: job.LeaseID,
		Records: []metrics.RunRecord{{Workload: "linear"}, {Workload: "linear"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := post(t, s, "/api/jobs/"+job.ID+"/complete", string(body))
	if done.Code != http.StatusOK {
		t.Fatalf("complete status %d: %s", done.Code, done.Body.String())
	}
	if j := decode[queue.Job](t, done); j.Status != queue.StatusCompleted || j.Records != 2 {
		t.Errorf("completed job %+v", j)
	}

	runs := decode[[]metrics.RunRecord](t, get(t, s, "/api/runs"))
	if len(runs) != 2 {
		t.Errorf("runs collection = %d records, want 2", len(runs))
	}

	// Replaying the completion must be rejected and must not double-append.
	if w := post(t, s, "/api/jobs/"+job.ID+"/complete", string(body)); w.Code != http.StatusConflict {
		t.Errorf("duplicate complete: status %d, want 409", w.Code)
	}
	if runs := decode[[]metrics.RunRecord](t, get(t, s, "/api/runs")); len(runs) != 2 {
		t.Errorf("duplicate complete appended records: %d", len(runs))
	}

	workers := decode[[]queue.WorkerInfo](t, get(t, s, "/api/workers"))
	if len(workers) != 1 || workers[0].ID != reg.Worker.ID {
		t.Errorf("workers listing %+v", workers)
	}
}

func TestTargetedLeaseAndConflicts(t *testing.T) {
	s, _ := fabricServer(t)
	resp := decode[queue.EnqueueResponse](t, post(t, s, "/api/jobs", sweepSpec))
	reg := decode[queue.RegisterResponse](t, post(t, s, "/api/workers/register", `{"name":"a","capacity":4}`))
	wid := fmt.Sprintf(`{"worker_id":%q}`, reg.Worker.ID)

	target := resp.Jobs[2].ID
	lease := decode[queue.LeaseResponse](t, post(t, s, "/api/jobs/"+target+"/lease", wid))
	if lease.Job == nil || lease.Job.ID != target {
		t.Fatalf("targeted lease %+v", lease.Job)
	}
	// Leasing an already-leased job is a conflict, not a 404.
	if w := post(t, s, "/api/jobs/"+target+"/lease", wid); w.Code != http.StatusConflict {
		t.Errorf("double targeted lease: %d", w.Code)
	}
	if w := post(t, s, "/api/jobs/missing/lease", wid); w.Code != http.StatusNotFound {
		t.Errorf("targeted lease of unknown job: %d", w.Code)
	}
	if w := post(t, s, "/api/jobs/lease", `{"worker_id":"ghost"}`); w.Code != http.StatusNotFound {
		t.Errorf("lease by unknown worker: %d", w.Code)
	}
	if w := post(t, s, "/api/jobs/"+target+"/extend", `{"lease_id":"stale"}`); w.Code != http.StatusConflict {
		t.Errorf("extend with stale lease: %d", w.Code)
	}
}

func TestFailRetriesThenExhausts(t *testing.T) {
	s, clk := fabricServer(t)
	one := `{"spec":{"name":"solo","workloads":[{"structure":"linear","degrees":[2]}]}}`
	resp := decode[queue.EnqueueResponse](t, post(t, s, "/api/jobs", one))
	if len(resp.Jobs) != 1 {
		t.Fatalf("jobs = %d", len(resp.Jobs))
	}
	reg := decode[queue.RegisterResponse](t, post(t, s, "/api/workers/register", `{"name":"a"}`))
	wid := fmt.Sprintf(`{"worker_id":%q}`, reg.Worker.ID)

	lease := decode[queue.LeaseResponse](t, post(t, s, "/api/jobs/lease", wid))
	w := post(t, s, "/api/jobs/"+lease.Job.ID+"/fail",
		fmt.Sprintf(`{"lease_id":%q,"error":"sim crashed"}`, lease.Job.LeaseID))
	if w.Code != http.StatusOK {
		t.Fatalf("fail status %d: %s", w.Code, w.Body.String())
	}
	if j := decode[queue.Job](t, w); j.Status != queue.StatusPending || j.Error != "sim crashed" {
		t.Fatalf("after first fail: %+v", j)
	}

	// The retry sits behind its backoff until the clock advances.
	if l := decode[queue.LeaseResponse](t, post(t, s, "/api/jobs/lease", wid)); l.Job != nil {
		t.Fatal("leased before backoff elapsed")
	}
	clk.Advance(200 * time.Millisecond)
	lease = decode[queue.LeaseResponse](t, post(t, s, "/api/jobs/lease", wid))
	if lease.Job == nil || lease.Job.Attempts != 2 {
		t.Fatalf("retry lease %+v", lease.Job)
	}

	// MaxAttempts is 2: the second reported failure is terminal.
	w = post(t, s, "/api/jobs/"+lease.Job.ID+"/fail",
		fmt.Sprintf(`{"lease_id":%q,"error":"sim crashed again"}`, lease.Job.LeaseID))
	if j := decode[queue.Job](t, w); j.Status != queue.StatusFailed {
		t.Fatalf("after final fail: %+v", j)
	}
	if st := decode[queue.HeartbeatResponse](t, post(t, s, "/api/workers/"+reg.Worker.ID+"/heartbeat", "")).Stats; st.Failed != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestLeaseExpiryReclaimsOverHTTP(t *testing.T) {
	s, clk := fabricServer(t)
	one := `{"spec":{"name":"solo","workloads":[{"structure":"linear","degrees":[2]}]}}`
	post(t, s, "/api/jobs", one)
	rega := decode[queue.RegisterResponse](t, post(t, s, "/api/workers/register", `{"name":"a"}`))
	regb := decode[queue.RegisterResponse](t, post(t, s, "/api/workers/register", `{"name":"b"}`))

	lease := decode[queue.LeaseResponse](t, post(t, s, "/api/jobs/lease",
		fmt.Sprintf(`{"worker_id":%q}`, rega.Worker.ID)))
	if lease.Job == nil {
		t.Fatal("no lease")
	}
	stale := lease.Job.LeaseID

	// Worker a goes silent past the lease TTL; b's next poll reaps and
	// re-leases the job, and a's late completion bounces off the gate.
	clk.Advance(1500 * time.Millisecond)
	release := decode[queue.LeaseResponse](t, post(t, s, "/api/jobs/lease",
		fmt.Sprintf(`{"worker_id":%q}`, regb.Worker.ID)))
	if release.Job == nil || release.Job.Worker != regb.Worker.ID {
		t.Fatalf("reclaimed lease %+v", release.Job)
	}
	late := post(t, s, "/api/jobs/"+lease.Job.ID+"/complete",
		fmt.Sprintf(`{"lease_id":%q,"records":[]}`, stale))
	if late.Code != http.StatusConflict {
		t.Errorf("late completion: %d, want 409", late.Code)
	}
}
