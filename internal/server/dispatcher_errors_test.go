package server

import (
	"fmt"
	"net/http"
	"os"
	"testing"
	"time"

	"pdspbench/internal/queue"
	"pdspbench/internal/storage"
)

// Satellite: the queueError mapping audit. docs/API.md documents the
// fabric's failure table — unknown job/worker → 404, stale lease or
// unleasable job → 409, journal/record-store failure → 500 with queue
// state unchanged. This test drives every failure mode through the HTTP
// surface and asserts the documented status actually comes back.
func TestQueueErrorHTTPMappingAudit(t *testing.T) {
	dir := t.TempDir()
	st, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	clk := &fabricClock{}
	s, err := New(st, WithQueueOptions(queue.Options{
		LeaseTTL:     time.Second,
		HeartbeatTTL: 30 * time.Second,
		RetryBackoff: 100 * time.Millisecond,
		MaxAttempts:  3,
		NowMS:        clk.Now,
	}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	// Seed: four jobs, one worker, one live lease.
	jobs := decode[queue.EnqueueResponse](t, post(t, s, "/api/jobs", sweepSpec)).Jobs
	if len(jobs) != 4 {
		t.Fatalf("seeded %d jobs", len(jobs))
	}
	reg := decode[queue.RegisterResponse](t, post(t, s, "/api/workers/register", `{"name":"w1","capacity":4}`))
	workerID := reg.Worker.ID
	leaseBody := fmt.Sprintf(`{"worker_id":%q}`, workerID)
	leased := decode[queue.LeaseResponse](t, post(t, s, "/api/jobs/lease", leaseBody))
	if leased.Job == nil {
		t.Fatal("seed lease failed")
	}

	assertStatus := func(what string, w interface{ Result() *http.Response }, want int) {
		t.Helper()
		if got := w.Result().StatusCode; got != want {
			t.Errorf("%s: status %d, want %d", what, got, want)
		}
	}

	// Unknown job → 404 on every job-scoped verb.
	assertStatus("GET unknown job", get(t, s, "/api/jobs/nope"), http.StatusNotFound)
	assertStatus("extend unknown job", post(t, s, "/api/jobs/nope/extend", `{"lease_id":"x"}`), http.StatusNotFound)
	assertStatus("complete unknown job", post(t, s, "/api/jobs/nope/complete", `{"lease_id":"x"}`), http.StatusNotFound)
	assertStatus("fail unknown job", post(t, s, "/api/jobs/nope/fail", `{"lease_id":"x","error":"e"}`), http.StatusNotFound)
	assertStatus("lease unknown job", post(t, s, "/api/jobs/nope/lease", leaseBody), http.StatusNotFound)

	// Unknown worker → 404.
	assertStatus("lease by unknown worker", post(t, s, "/api/jobs/lease", `{"worker_id":"w99"}`), http.StatusNotFound)
	assertStatus("heartbeat unknown worker", post(t, s, "/api/workers/w99/heartbeat", ""), http.StatusNotFound)

	// Bad lease token → 409 (stale lease).
	jid := leased.Job.ID
	assertStatus("extend with bad token", post(t, s, "/api/jobs/"+jid+"/extend", `{"lease_id":"bogus"}`), http.StatusConflict)
	assertStatus("complete with bad token", post(t, s, "/api/jobs/"+jid+"/complete", `{"lease_id":"bogus"}`), http.StatusConflict)
	assertStatus("fail with bad token", post(t, s, "/api/jobs/"+jid+"/fail", `{"lease_id":"bogus","error":"e"}`), http.StatusConflict)

	// Targeted lease of an already-leased job → 409 (not leasable).
	assertStatus("lease a leased job", post(t, s, "/api/jobs/"+jid+"/lease", leaseBody), http.StatusConflict)

	// Expired lease: advance past the TTL; the next entry point reaps it,
	// so the old token is stale → 409.
	oldToken := leased.Job.LeaseID
	clk.Advance(1100 * time.Millisecond)
	assertStatus("complete after lease expiry",
		post(t, s, "/api/jobs/"+jid+"/complete", fmt.Sprintf(`{"lease_id":%q}`, oldToken)), http.StatusConflict)
	if j := decode[queue.Job](t, get(t, s, "/api/jobs/"+jid)); j.Status != queue.StatusPending {
		t.Errorf("reaped job status %q, want pending", j.Status)
	}

	// Storage failure → 500, with queue state (the lease) intact. Take a
	// fresh lease first, then break the store out from under the server.
	leased2 := decode[queue.LeaseResponse](t, post(t, s, "/api/jobs/lease", leaseBody))
	if leased2.Job == nil {
		t.Fatal("second lease failed")
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	assertStatus("enqueue with broken store", post(t, s, "/api/jobs", sweepSpec), http.StatusInternalServerError)
	assertStatus("complete with broken store",
		post(t, s, "/api/jobs/"+leased2.Job.ID+"/complete",
			fmt.Sprintf(`{"lease_id":%q,"records":[]}`, leased2.Job.LeaseID)), http.StatusInternalServerError)
	// The aborted completion left the lease alive: the job still reads
	// as leased under the same token.
	if j := decode[queue.Job](t, get(t, s, "/api/jobs/"+leased2.Job.ID)); j.Status != queue.StatusLeased || j.LeaseID != leased2.Job.LeaseID {
		t.Errorf("job after failed completion: status %q lease %q, want the original live lease", j.Status, j.LeaseID)
	}
}
