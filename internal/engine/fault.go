package engine

import (
	"context"
	"errors"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"pdspbench/internal/chaos"
	"pdspbench/internal/core"
)

// This file is the engine half of the chaos layer (internal/chaos):
// a fault driver goroutine replays the resolved schedule on the wall
// clock, and a per-instance supervisor turns crashes — injected kills
// and genuine panics alike — into bounded restarts with exponential
// backoff. When an operator's last instance dies with no budget left,
// the supervisor drains the dead instance's input and forwards its
// end-of-stream markers so the dataflow finishes instead of hanging,
// and Run returns a typed *chaos.FaultError.
//
// The no-fault hot path stays zero-cost: every per-tuple or per-batch
// hook below is guarded by a nil pointer (opInstance.flt, router.lf)
// that is only populated when Options.Faults is non-empty.

// CrashError is the typed form of a recovered instance panic — the
// supervisor re-wraps whatever recover() returned so crash causes flow
// through the error plane instead of being swallowed (enforced by
// pdsplint's recover-discipline rule).
type CrashError struct {
	// Op is the crashed instance's chain-head operator.
	Op string
	// Instance is the parallel instance index.
	Instance int
	// Cause is the recovered panic value.
	Cause any
}

func (e *CrashError) Error() string {
	return "engine: instance " + strconv.Itoa(e.Instance) + " of operator " +
		strconv.Quote(e.Op) + " crashed"
}

// errInjectedCrash is the panic value of a chaos-injected kill; the
// supervisor treats it exactly like a genuine panic.
var errInjectedCrash = errors.New("engine: injected instance crash")

// instFault is the per-instance fault state the driver writes and the
// instance goroutine polls. All fields are atomics: the driver and the
// instance never share a lock, so the data plane takes no new mutexes.
type instFault struct {
	// kill wakes a blocked instance; killed is the authoritative flag
	// (the channel send is best-effort, the flag is checked at every
	// message boundary).
	kill   chan struct{}
	killed atomic.Bool
	// downFor, when positive, marks the pending kill as a node-down
	// outage: the supervisor revives after this many nanoseconds
	// without consuming the restart budget.
	downFor atomic.Int64
	// stallUntil pauses source emission until this wall-clock nanotime.
	stallUntil atomic.Int64
	// slowUntil/slowPerTuple charge extra nanoseconds per tuple while
	// a slow-node window is active.
	slowUntil    atomic.Int64
	slowPerTuple atomic.Int64
}

// linkFault is the shared state of a link fault targeting one
// downstream operator; routers feeding that operator consult it.
type linkFault struct {
	dropUntil  atomic.Int64 // wall nanotime; tuples are dropped before it
	delayUntil atomic.Int64
	delayNanos atomic.Int64
}

// shouldDrop reports whether a delivery into the target is inside an
// active link-drop window.
func (lf *linkFault) shouldDrop() bool {
	until := lf.dropUntil.Load()
	return until != 0 && time.Now().UnixNano() < until
}

// applyDelay sleeps out an active link-delay window's per-batch delay,
// modelling a congested link: the sender stalls, which is exactly how
// bounded network buffers propagate link latency into backpressure.
func (lf *linkFault) applyDelay() {
	until := lf.delayUntil.Load()
	if until == 0 || time.Now().UnixNano() >= until {
		return
	}
	time.Sleep(time.Duration(lf.delayNanos.Load()))
}

// setupFaults wires the fault state after build(): per-instance kill
// state, the op → chain-head index (faults target logical operators,
// which chaining may have fused), and link-fault state per targeted
// downstream head. Called only when Options.Faults is non-empty.
func (r *Runtime) setupFaults() {
	if r.opts.RestartDelay <= 0 {
		r.opts.RestartDelay = 20 * time.Millisecond
	}
	// Defensive copy, sorted by time: the driver walks it in order.
	evs := append([]chaos.Event(nil), r.opts.Faults...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	r.opts.Faults = evs
	for _, insts := range r.insts {
		for _, inst := range insts {
			inst.flt = &instFault{kill: make(chan struct{}, 1)}
		}
	}
	r.linkFaults = make(map[string]*linkFault)
	for _, ev := range evs {
		if ev.Kind == chaos.KindLinkDelay || ev.Kind == chaos.KindLinkDrop {
			head := r.chainHead[ev.Op]
			if _, ok := r.linkFaults[head]; !ok {
				r.linkFaults[head] = &linkFault{}
			}
		}
	}
	// Point every router feeding a targeted operator at its fault state.
	for _, insts := range r.insts {
		for _, inst := range insts {
			for _, route := range inst.routes {
				if len(route.targets) > 0 {
					route.lf = r.linkFaults[route.targets[0].head().ID]
				}
			}
		}
	}
	r.report.deadOf = make(map[string]int)
}

// driveFaults replays the schedule on the wall clock, measuring event
// times from the run's start. It exits when the schedule is exhausted
// or the run ends (ctx is cancelled by Run after the dataflow drains).
func (r *Runtime) driveFaults(ctx context.Context, start time.Time) {
	tm := time.NewTimer(time.Hour)
	defer tm.Stop()
	for _, ev := range r.opts.Faults {
		due := time.Duration(ev.At * float64(time.Second))
		if wait := due - time.Since(start); wait > 0 {
			if !tm.Stop() {
				select {
				case <-tm.C:
				default:
				}
			}
			tm.Reset(wait)
			select {
			case <-tm.C:
			case <-ctx.Done():
				return
			}
		}
		r.applyFault(ev)
	}
}

// applyFault applies one primitive event to its target instances.
func (r *Runtime) applyFault(ev chaos.Event) {
	r.report.mu.Lock()
	r.report.faultsInjected++
	r.report.mu.Unlock()
	now := time.Now().UnixNano()
	durNanos := int64(ev.Duration * 1e9)
	switch ev.Kind {
	case chaos.KindCrash, chaos.EvDown:
		for _, oi := range r.targetInstances(ev) {
			if ev.Kind == chaos.EvDown {
				oi.flt.downFor.Store(durNanos)
			}
			oi.flt.killed.Store(true)
			select {
			case oi.flt.kill <- struct{}{}:
			default:
			}
		}
	case chaos.EvStall:
		for _, oi := range r.targetInstances(ev) {
			oi.flt.stallUntil.Store(now + durNanos)
		}
	case chaos.EvSlow:
		for _, oi := range r.targetInstances(ev) {
			// The engine has no service-time model, so a slowed node is
			// approximated by charging Factor microseconds per tuple to
			// its instances for the window.
			oi.flt.slowPerTuple.Store(int64(ev.Factor * 1e3))
			oi.flt.slowUntil.Store(now + durNanos)
		}
	case chaos.KindLinkDelay:
		if lf := r.linkFaults[r.chainHead[ev.Op]]; lf != nil {
			lf.delayNanos.Store(int64(ev.Factor * 1e9))
			lf.delayUntil.Store(now + durNanos)
		}
	case chaos.KindLinkDrop:
		if lf := r.linkFaults[r.chainHead[ev.Op]]; lf != nil {
			lf.dropUntil.Store(now + durNanos)
		}
	}
}

// targetInstances resolves an event to the instances hosting its
// logical operator (the chain that fused it, if chaining is on).
func (r *Runtime) targetInstances(ev chaos.Event) []*opInstance {
	insts := r.insts[r.chainHead[ev.Op]]
	if ev.Instance < 0 || len(insts) == 0 {
		return insts
	}
	idx := ev.Instance
	if idx >= len(insts) {
		idx = len(insts) - 1
	}
	return insts[idx : idx+1]
}

// supervise runs one instance to completion. Without a fault plan it
// is exactly the pre-chaos direct call; with one, it captures panics
// (injected kills and genuine bugs alike), revives the instance while
// the restart budget lasts — node-down outages revive on their
// scheduled recovery without consuming budget — and otherwise declares
// the instance dead in a way that cannot hang the dataflow.
func (r *Runtime) supervise(ctx context.Context, oi *opInstance) {
	if oi.flt == nil {
		oi.run(ctx)
		return
	}
	restarts := 0
	revived := 0
	for {
		before := oi.workDone()
		crash := oi.runGuarded(ctx)
		if revived > 0 {
			r.addRecovered(oi.workDone() - before)
		}
		if crash == nil {
			return
		}
		downFor := time.Duration(oi.flt.downFor.Swap(0))
		oi.flt.killed.Store(false)
		select { // drop a stale wake-up from the life that just ended
		case <-oi.flt.kill:
		default:
		}
		if downFor <= 0 {
			if restarts >= r.opts.MaxRestarts {
				r.declareDead(ctx, oi, crash)
				return
			}
			restarts++
			// Bounded exponential backoff on budgeted restarts.
			downFor = r.opts.RestartDelay << (restarts - 1)
		}
		r.recordRestart(downFor)
		revived++
		tm := time.NewTimer(downFor)
		select {
		case <-tm.C:
		case <-ctx.Done():
			tm.Stop()
			return
		}
	}
}

// runGuarded executes one life of the instance, re-wrapping a panic
// into the typed crash error the supervisor consumes.
func (oi *opInstance) runGuarded(ctx context.Context) (crash *CrashError) {
	defer func() {
		if v := recover(); v != nil {
			crash = &CrashError{Op: oi.head().ID, Instance: oi.idx, Cause: v}
		}
	}()
	oi.run(ctx)
	return nil
}

// workDone is a monotone per-instance progress counter used to account
// tuples processed by revived lives (RecoveredTuples).
func (oi *opInstance) workDone() uint64 {
	if oi.head().Kind == core.OpSource {
		return oi.chain[0].nOut
	}
	var n uint64
	for _, c := range oi.chain {
		n += c.nIn
	}
	return n
}

// declareDead retires an instance whose restart budget is exhausted.
// Its routes deliver their end-of-stream markers (idempotent per
// target, so a crash mid-EOS cannot double-count), and its input is
// drained until every upstream producer has finished — so neither side
// of the dead instance can block forever. If it was the operator's
// last live instance, the run's fatal error becomes a typed
// *chaos.FaultError.
func (r *Runtime) declareDead(ctx context.Context, oi *opInstance, crash *CrashError) {
	head := oi.head()
	r.report.mu.Lock()
	r.report.deadOf[head.ID]++
	if r.report.deadOf[head.ID] >= len(r.insts[head.ID]) && r.report.fatal == nil {
		r.report.fatal = &chaos.FaultError{Op: head.ID, Kind: chaos.KindCrash}
	}
	r.report.mu.Unlock()
	for _, rt := range oi.routes {
		rt.eos(ctx)
	}
	if head.Kind == core.OpSource {
		return
	}
	for !oi.allEOS() {
		select {
		case msg := <-oi.in:
			switch {
			case msg.kind == msgEOS:
				oi.gotEOS[msg.side]++
			case msg.kind == msgWatermark:
				// Watermarks carry no payload; a dead instance just
				// swallows them.
			case msg.cb != nil:
				msg.cb.Release()
			default:
				for _, t := range *msg.b {
					t.Release()
				}
				putBatch(msg.b)
			}
		case <-ctx.Done():
			return
		}
	}
}

func (r *Runtime) addRecovered(n uint64) {
	r.report.mu.Lock()
	r.report.recoveredTuples += n
	r.report.mu.Unlock()
}

func (r *Runtime) recordRestart(downtime time.Duration) {
	r.report.mu.Lock()
	r.report.restarts++
	r.report.downtime += downtime
	r.report.mu.Unlock()
}

// killChan returns the instance's kill channel, or nil without a fault
// plan — a nil channel never fires in a select, so the no-fault path
// pays nothing for the extra case.
func (oi *opInstance) killChan() chan struct{} {
	if oi.flt == nil {
		return nil
	}
	return oi.flt.kill
}

// maybeStall pauses a source inside an active stall window; the sleep
// is interruptible by kills and cancellation. Called with flt != nil.
func (oi *opInstance) maybeStall(ctx context.Context, killC <-chan struct{}) {
	until := oi.flt.stallUntil.Load()
	if until == 0 {
		return
	}
	wait := time.Duration(until - time.Now().UnixNano())
	if wait <= 0 {
		return
	}
	tm := time.NewTimer(wait)
	defer tm.Stop()
	select {
	case <-tm.C:
	case <-killC:
		panic(errInjectedCrash)
	case <-ctx.Done():
	}
}

// maybeSlow charges the slow-node penalty for n tuples if a slow
// window is active. Called with flt != nil.
func (oi *opInstance) maybeSlow(n int) {
	until := oi.flt.slowUntil.Load()
	if until == 0 || time.Now().UnixNano() >= until {
		return
	}
	time.Sleep(time.Duration(int64(n) * oi.flt.slowPerTuple.Load()))
}
