package engine

import (
	"pdspbench/internal/core"
	"pdspbench/internal/tuple"
)

// Operator chaining (Options.ChainOperators) fuses runs of operators
// connected by forward partitioning with equal parallelism into single
// instances, exactly as Apache Flink chains tasks: fused operators
// exchange tuples by function call instead of a channel hop, removing
// per-tuple queueing and goroutine switches on the fused links.
//
// An operator B is chained onto A when
//   - A's only consumer is B and B's only producer is A,
//   - B uses forward partitioning,
//   - A and B have the same parallelism, and
//   - neither end is a source (sources keep their generator loop).
//
// Joins can never be chained onto (two producers); sinks can terminate a
// chain.

// chainedOp is one fused operator with its per-instance state.
type chainedOp struct {
	op   *core.Operator
	agg  *aggregator
	join *joiner
	udo  UDO
	nIn  uint64
	nOut uint64
	// emit feeds this operator's output into the next chain position (or
	// the instance's routes after the tail). It is built once per run in
	// bindEmit so the per-tuple path allocates no closures.
	emit func(*tuple.Tuple)
	// Columnar plane: the filter's compiled kernel and resolved field,
	// lazily built from the first batch's column kind (see kernelFor in
	// column.go). Nil until then; row-only chains never populate it.
	kern   core.Kernel
	kfield int
}

// buildChains partitions the plan's operators into chains (each a slice
// of operators executed by one instance set, head first). Without
// chaining every operator is its own chain.
func buildChains(plan *core.PQP, enabled bool) ([][]string, error) {
	order, err := plan.TopoOrder()
	if err != nil {
		return nil, err
	}
	if !enabled {
		chains := make([][]string, 0, len(order))
		for _, id := range order {
			chains = append(chains, []string{id})
		}
		return chains, nil
	}
	canChain := func(aID, bID string) bool {
		a, b := plan.Op(aID), plan.Op(bID)
		if a.Kind == core.OpSource || b.Kind == core.OpSource {
			return false
		}
		if b.Partition != core.PartitionForward {
			return false
		}
		if a.Parallelism != b.Parallelism {
			return false
		}
		if len(plan.Downstream(aID)) != 1 || len(plan.Upstream(bID)) != 1 {
			return false
		}
		return true
	}
	assigned := make(map[string]bool, len(order))
	var chains [][]string
	for _, id := range order {
		if assigned[id] {
			continue
		}
		chain := []string{id}
		assigned[id] = true
		for {
			last := chain[len(chain)-1]
			downs := plan.Downstream(last)
			if len(downs) != 1 || assigned[downs[0]] || !canChain(last, downs[0]) {
				break
			}
			chain = append(chain, downs[0])
			assigned[downs[0]] = true
		}
		chains = append(chains, chain)
	}
	return chains, nil
}

// initState allocates the operator state of one chained op.
func (c *chainedOp) initState(oi *opInstance) {
	switch c.op.Kind {
	case core.OpAggregate:
		c.agg = newAggregator(c.op.Agg, oi.rt.opts.AllowedLateness.Nanoseconds())
	case core.OpJoin:
		c.join = newJoiner(c.op.Join, oi.rt.opts.AllowedLateness.Nanoseconds())
		c.join.rt = oi.rt
	case core.OpUDO, core.OpMap, core.OpFlatMap:
		if c.op.UDO != nil {
			c.udo = oi.rt.opts.UDOs[c.op.UDO.Name](oi.idx)
		}
	}
}

// bindEmit builds the operator's emission closure once per run; the
// per-tuple path then reuses it instead of allocating a fresh closure
// for every arrival.
func (c *chainedOp) bindEmit(oi *opInstance, i int) {
	c.emit = func(out *tuple.Tuple) {
		c.nOut++
		oi.applyAt(i+1, out, 0)
	}
	if c.join != nil {
		if oi.colJoin {
			c.join.columnar = true
			c.join.outCap = oi.rt.opts.ColumnarBatch
			c.join.nOut = &c.nOut
			c.join.emitOut = oi.emitColumns
		} else {
			c.join.emitPair = func(arrived, buffered *tuple.Tuple, side int) {
				c.emit(c.join.joined(arrived, buffered, side))
			}
		}
	}
}

// applyAt runs operator semantics at chain position i, feeding emissions
// into position i+1 (or the instance's output routes after the tail).
//
// Ownership: a tuple belongs to whoever holds it last. Operators that
// consume a tuple without forwarding it (filter drops, aggregate folds,
// sink deliveries with no tap) release it back to the pool; windowed
// joins take ownership and release on eviction; UDOs take ownership and
// may retain or re-emit, so the engine never releases on their behalf.
func (oi *opInstance) applyAt(i int, t *tuple.Tuple, side int) {
	if i >= len(oi.chain) {
		oi.emit(t)
		return
	}
	c := oi.chain[i]
	c.nIn++
	switch c.op.Kind {
	case core.OpSink:
		oi.deliver(c.op.ID, t)
	case core.OpFilter:
		f := c.op.Filter
		field := f.Field
		if field >= t.Width() {
			field = 0
		}
		if f.Fn.Eval(t.At(field), f.Literal) {
			c.emit(t)
		} else {
			t.Release()
		}
	case core.OpAggregate:
		c.agg.add(t, c.emit, oi.rt)
		t.Release() // the aggregator folds values; it never retains t
	case core.OpJoin:
		c.join.add(t, side) // joiner owns t until window eviction
	case core.OpUDO, core.OpMap, core.OpFlatMap:
		if c.udo != nil {
			oi.safeProcess(c, t, c.emit)
			return
		}
		c.emit(t)
	default:
		c.emit(t)
	}
}

// safeProcess isolates user-defined operator failures: a panicking UDO
// drops the offending tuple and is counted, instead of tearing down the
// whole dataflow — the engine-level counterpart of a task restart, which
// lets the benchmark inject failures and keep measuring.
func (oi *opInstance) safeProcess(c *chainedOp, t *tuple.Tuple, emit func(*tuple.Tuple)) {
	defer func() {
		if r := recover(); r != nil {
			oi.rt.recordUDOPanic(&CrashError{Op: c.op.ID, Instance: oi.idx, Cause: r})
		}
	}()
	c.udo.Process(t, emit)
}

// flushChain drains every fused operator in order at end-of-stream, with
// each operator's flush output flowing through the remainder of the
// chain.
func (oi *opInstance) flushChain() {
	for _, c := range oi.chain {
		switch {
		case c.agg != nil:
			c.agg.flush(c.emit)
		case c.join != nil:
			c.join.flushColumns() // ship the partial columnar out-batch
			c.join.release()      // window buffers go back to the pool
		case c.udo != nil:
			c.udo.Flush(c.emit)
		}
	}
}
