package engine

import (
	"context"
	"time"

	"pdspbench/internal/core"
	"pdspbench/internal/tuple"
)

// The columnar data plane (Options.Columnar): source chains fill
// struct-of-arrays batches (tuple.ColumnBatch), stateless chains run
// compiled kernels over contiguous slabs, and the row plane takes over
// automatically wherever a chain needs per-row semantics.
//
// A chain accepts columnar input iff every fused operator is one of
// {filter, sink, map/flatMap without a UDO}: filters compile to
// core.Kernel selection-vector loops, sinks count/measure straight off
// the columns, and spec-less map/flatMap are identity pass-throughs.
// Aggregates, joins and UDOs keep the row plane — their per-row state
// transitions gain nothing from slabs — and the ROUTER is where the
// fallback happens: a columnar batch addressed to a row-only chain is
// materialized row by row through the existing per-tuple send path, so
// routing (and therefore any keyed state downstream) is bit-identical
// to a row-plane run. Fallback batches are counted in
// Report.ColumnarFallbackBatches so tests and operators can see it.
//
// Two Options force the row plane entirely: Throttle (pacing is
// per-tuple) and Faults (the chaos machinery kills at row message
// boundaries); New clears Columnar when either is set.

// ColumnFiller is the optional generator fast path: a source generator
// that can fill a column batch directly (writing slabs instead of
// boxing tuples) implements it. Fill order must match Next() exactly —
// same randomness consumption, same event times — so a columnar run
// stays bit-identical to a row run from the same seed. NextColumns
// returns the number of rows written (0 at end of stream) and must
// leave event times in the EventCol (or tuple.NoEventTime to have the
// source stamp ingest time, as the row path does; slabs are recycled
// unzeroed, so every row must be written one way or the other).
type ColumnFiller interface {
	NextColumns(b *tuple.ColumnBatch) int
}

// chainAcceptsColumns reports whether a chain's fused operators can all
// execute on column batches.
func chainAcceptsColumns(ops []*core.Operator) bool {
	for _, op := range ops {
		switch op.Kind {
		case core.OpFilter, core.OpSink:
		case core.OpMap, core.OpFlatMap:
			if op.UDO != nil {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// kernelFor returns the chained filter's compiled kernel, compiling on
// first use once the batch reveals the column kind. The field guard
// mirrors the row path's t.Width() check (out-of-range specs fall back
// to field 0); batch width is the schema width, constant per stream.
func (c *chainedOp) kernelFor(cb *tuple.ColumnBatch) core.Kernel {
	if c.kern == nil {
		f := c.op.Filter.Field
		if f >= cb.Width() {
			f = 0
		}
		c.kfield = f
		c.kern = core.CompileFilter(c.op.Filter, cb.Kind(f))
	}
	return c.kern
}

// applyColumns runs the whole fused chain over one column batch. Each
// filter shrinks the selection vector in place; counters advance by
// live-row counts so PerOperator stats agree with the row plane.
func (oi *opInstance) applyColumns(cb *tuple.ColumnBatch) {
	for _, c := range oi.chain {
		live := uint64(cb.Live())
		c.nIn += live
		switch c.op.Kind {
		case core.OpFilter:
			k := c.kernelFor(cb)
			cb.SetSel(k(cb, c.kfield, cb.Sel()))
			c.nOut += uint64(cb.Live())
		case core.OpSink:
			oi.deliverColumns(cb)
			return
		default: // spec-less map/flatMap: identity pass-through
			c.nOut += live
		}
		if cb.Live() == 0 {
			cb.Release()
			return
		}
	}
	oi.emitColumns(cb)
}

// deliverColumns records sink metrics for every selected row. Without a
// tap the rows are never boxed: counting and latency read straight off
// the ingest column. With a tap each row materializes to a pooled tuple
// the tap owns, exactly like the row plane's deliver.
func (oi *opInstance) deliverColumns(cb *tuple.ColumnBatch) {
	op := oi.chain[len(oi.chain)-1].op.ID
	sel := cb.Sel()
	if tap := oi.rt.opts.SinkTap; tap != nil {
		for _, i := range sel {
			//lint:ignore hotpath-alloc the tap contract hands each row to user code as a pooled tuple
			t := cb.MaterializeRow(int(i))
			oi.sinkOut++
			if t.Ingest > 0 {
				oi.sinkLats = append(oi.sinkLats, float64(oi.nowUnix-t.Ingest)/1e9)
			}
			tap(op, t)
		}
	} else {
		inge := cb.IngestCol()
		oi.sinkOut += uint64(len(sel))
		for _, i := range sel {
			if ing := inge[i]; ing > 0 {
				oi.sinkLats = append(oi.sinkLats, float64(oi.nowUnix-ing)/1e9)
			}
		}
	}
	cb.Release()
	if oi.sinkOut >= 1024 {
		oi.flushSinkStats()
	}
}

// emitColumns forwards a chain-tail batch along all outgoing routes.
// Fan-out clones BEFORE the original ships (the original may be
// processed — and released — by the first consumer while later routes
// are still being served), so clones go out first and the original
// last. Every outgoing batch is stamped with the emitting instance's
// own merged watermark: a forwarded batch must not carry its upstream
// producer's (possibly further-advanced) assertion, because this
// instance merges several producers and only the minimum is a valid
// statement about its output channel.
func (oi *opInstance) emitColumns(cb *tuple.ColumnBatch) {
	if len(oi.routes) == 0 {
		cb.Release()
		return
	}
	cb.SetWatermark(oi.curWM)
	for i := len(oi.routes) - 1; i >= 1; i-- {
		if !oi.routes[i].sendColumns(oi.ctx, oi.idx, cb.CloneColumns()) {
			cb.Release()
			return
		}
	}
	oi.routes[0].sendColumns(oi.ctx, oi.idx, cb)
}

// sendColumns routes one column batch downstream. Row-only targets get
// the automatic fallback: every selected row is materialized and routed
// through the per-tuple send path, which keeps partitioning decisions
// (hash, rebalance order) bit-identical to a row-plane run. Columnar
// targets receive whole batches for forward/rebalance and a per-row
// hash scatter into per-target pending batches for hash partitioning
// (HashAt matches Value.Hash bit for bit, so rows land on the same
// instances either way).
func (rt *router) sendColumns(ctx context.Context, fromIdx int, cb *tuple.ColumnBatch) bool {
	rt.colBatches++
	if !rt.colOK {
		rt.colFallback++
		for _, i := range cb.Sel() {
			//lint:ignore hotpath-alloc the row-plane fallback: row-only targets need per-tuple routing
			if !rt.send(ctx, fromIdx, cb.MaterializeRow(int(i))) {
				cb.Release()
				return false
			}
		}
		cb.Release()
		return true
	}
	n := len(rt.targets)
	switch rt.strategy {
	case core.PartitionForward:
		return rt.shipColumns(ctx, fromIdx%n, cb)
	case core.PartitionHash:
		f := rt.keyField
		if f >= cb.Width() {
			f = 0
		}
		for _, i := range cb.Sel() {
			di := int(cb.HashAt(f, int(i)) % uint64(n))
			pb := rt.colBufs[di]
			if pb == nil {
				pb = tuple.GetColumnBatch(cb.Kinds(), cb.Cap())
				rt.colBufs[di] = pb
			}
			rt.colPending++
			if pb.AppendRowFrom(cb, int(i)) >= pb.Cap() {
				if !rt.flushColTo(ctx, di) {
					cb.Release()
					return false
				}
			}
		}
		// Propagate the incoming stamp onto the pending scatter batches:
		// their rows all came from batches at or below this watermark.
		// (Batches flushed mid-loop may understamp, which is safe — the
		// authoritative msgWatermark broadcast follows the data anyway.)
		if w := cb.Watermark(); w != tuple.NoEventTime {
			for di := range rt.colBufs {
				if pb := rt.colBufs[di]; pb != nil && pb.Watermark() < w {
					pb.SetWatermark(w)
				}
			}
		}
		cb.Release()
		return true
	default: // rebalance: whole batches round-robin (stateless targets
		// only, so the coarser granularity cannot change keyed state)
		di := rt.rr % n
		rt.rr++
		return rt.shipColumns(ctx, di, cb)
	}
}

// shipColumns seals nothing — the batch's selection already names its
// live rows — and sends it to target di.
func (rt *router) shipColumns(ctx context.Context, di int, cb *tuple.ColumnBatch) bool {
	select {
	case rt.targets[di].in <- message{kind: msgData, cb: cb, side: rt.side, from: rt.wmID}:
		return true
	case <-ctx.Done():
		cb.Release()
		return false
	}
}

// flushColTo ships target di's pending scatter batch.
func (rt *router) flushColTo(ctx context.Context, di int) bool {
	pb := rt.colBufs[di]
	if pb == nil {
		return true
	}
	rt.colBufs[di] = nil
	rt.colPending -= pb.Len()
	pb.Seal(pb.Len())
	return rt.shipColumns(ctx, di, pb)
}

// flushColAll ships every pending scatter batch (idle flush, linger
// boundary, end-of-stream).
func (rt *router) flushColAll(ctx context.Context) bool {
	if rt.colPending == 0 {
		return true
	}
	for di := range rt.colBufs {
		if !rt.flushColTo(ctx, di) {
			return false
		}
	}
	return true
}

// materializeColumns is the receiver-side fallback: a row-only chain
// handed a column batch (defensive — routers materialize before
// sending to row-only targets, so this path is normally dead) unboxes
// and replays it through the row plane.
func (oi *opInstance) materializeColumns(cb *tuple.ColumnBatch, side int) {
	for _, i := range cb.Sel() {
		//lint:ignore hotpath-alloc defensive receiver-side fallback replays rows through the row plane
		oi.applyAt(0, cb.MaterializeRow(int(i)), side)
	}
	cb.Release()
}

// runSourceColumnar is the source loop of the columnar plane: fill a
// pooled batch (via the generator's ColumnFiller fast path when it has
// one, else per-row conversion), stamp it like the row source stamps
// tuples, and emit it whole. Only used when at least one route accepts
// columns; Columnar is already off under Throttle/Faults, so no pacing
// or chaos checks appear here.
func (oi *opInstance) runSourceColumnar(ctx context.Context) {
	src := oi.head()
	gen := oi.rt.opts.Sources[src.ID](oi.idx)
	kinds := tuple.KindsOf(src.Source.Schema)
	rows := oi.rt.opts.ColumnarBatch
	filler, fast := gen.(ColumnFiller)
	skewNs := int64(0)
	if d := src.Source.Disorder; d != nil {
		skewNs = d.MaxSkewMs * 1e6
	}
	maxEt := tuple.NoEventTime
	var unrecorded uint64
	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
		cb := tuple.GetColumnBatch(kinds, rows)
		n := 0
		if fast {
			n = filler.NextColumns(cb)
		} else {
			for n < rows {
				t, ok := gen.Next()
				if !ok {
					break
				}
				cb.AppendRow(t)
				t.Release()
				n++
			}
		}
		if n == 0 {
			cb.Release()
			break
		}
		// One wall-clock read stamps the whole batch — the columnar
		// analogue of the row source's every-16-tuples clock amortization.
		cb.SealSource(n, time.Now().UnixNano(), oi.seq)
		oi.seq += uint64(n)
		oi.chain[0].nOut += uint64(n)
		unrecorded += uint64(n)
		if unrecorded >= 1024 {
			oi.rt.recordIngest(unrecorded)
			unrecorded = 0
		}
		// Per-batch watermark: max event time seen minus the bounded-skew
		// allowance. A batch is ≥ the periodic interval, so stamping every
		// batch IS the periodic cadence on this plane. The clock advances
		// before emit so emitColumns stamps the fresh assertion onto the
		// batch. Column-accepting routes read that stamp in-band and need
		// no marker; an explicit msgWatermark goes only to row-only routes,
		// whose materialized rows never carry one. Broadcasting to every
		// target per batch would synchronize the source with all consumers
		// on each batch and serialize the pipeline (measured ~40% off the
		// columnar filter benchmark). Skipped wholesale when no operator
		// consumes watermarks — arrival-driven plans never read the stamp.
		wm := tuple.NoEventTime
		if oi.rt.needsWM {
			ev := cb.EventCol()
			for i := 0; i < n; i++ {
				if ev[i] > maxEt {
					maxEt = ev[i]
				}
			}
			if maxEt != tuple.NoEventTime && maxEt-skewNs > oi.curWM {
				wm = maxEt - skewNs
				oi.curWM = wm
			}
		}
		oi.emitColumns(cb)
		if wm != tuple.NoEventTime {
			for _, rt := range oi.routes {
				if rt.colOK {
					continue
				}
				if !rt.watermark(oi.ctx, wm) {
					return
				}
			}
		}
		if n < rows {
			break // generator exhausted mid-batch
		}
	}
	if unrecorded > 0 {
		oi.rt.recordIngest(unrecorded)
	}
	for _, rt := range oi.routes {
		rt.eos(ctx)
	}
}
