package engine

import (
	"os"
	"testing"

	"pdspbench/internal/testutil"
)

// TestMain gates the whole package on goroutine hygiene: every operator
// instance started by any test must have exited by the end of the run,
// the dynamic counterpart of the goroutine-hygiene lint rule.
func TestMain(m *testing.M) {
	os.Exit(testutil.RunMain(m))
}
