package engine

import (
	"context"
	"math"

	"pdspbench/internal/tuple"
)

// The event-time plane. Sources assert watermarks — "no further tuple
// with EventTime ≤ wm on this channel" — either punctuated (the
// generator implements Watermarker and the source emits whenever the
// assertion advances) or periodically (every Options.WatermarkInterval
// tuples, max event time seen minus the bounded-skew allowance of the
// source's DisorderSpec). Every non-source instance keeps the latest
// watermark per upstream producer and per input side; its own clock is
// the minimum across all of them, so a watermark never overtakes data
// still in flight from a slower producer. When the merged minimum
// advances, the instance (1) advances its chain's window and join state
// — firing panes and evicting buffers in event-time order — and then
// (2) forwards the new watermark on every outgoing route, data first.
//
// End-of-stream is the final watermark: a producer's EOS marker sets
// its channel watermark to +∞, which releases the merged minimum for
// the producers still running.

// Watermarker is the punctuated-watermark interface a SourceGenerator
// may implement: after each Next, Watermark returns the generator's
// completeness assertion (NoEventTime when it has none yet). Replay
// generators (stream.FromTuples) implement it so deterministic fixtures
// see the watermark advance on every in-order arrival.
type Watermarker interface {
	Watermark() int64
}

// initWatermarks sizes the per-producer watermark slots once the
// instance's expectEOS counts are final (run start; revived lives
// rebuild the slots alongside the rest of their state).
func (oi *opInstance) initWatermarks() {
	for side := 0; side < 2; side++ {
		oi.wmIn[side] = make([]int64, oi.expectEOS[side])
		for i := range oi.wmIn[side] {
			oi.wmIn[side][i] = tuple.NoEventTime
		}
	}
}

// noteWatermark records one producer's assertion and, if the minimum
// across every producer on every populated side advanced, moves the
// instance clock: window/join state fires and evicts, then the new
// watermark is forwarded downstream. Per-slot max-merge makes delivery
// idempotent and tolerant of the redundant stamp channel (column
// batches carry their producer's watermark too).
func (oi *opInstance) noteWatermark(side int, from int32, wm int64) {
	if side != 0 {
		side = 1
	}
	slots := oi.wmIn[side]
	if from < 0 || int(from) >= len(slots) {
		return
	}
	if wm > slots[from] {
		slots[from] = wm
	}
	min := int64(math.MaxInt64)
	for s := 0; s < 2; s++ {
		for _, w := range oi.wmIn[s] {
			if w < min {
				min = w
			}
		}
	}
	if min == math.MaxInt64 || min == tuple.NoEventTime || min <= oi.curWM {
		return
	}
	oi.curWM = min
	oi.advanceChain(min)
	oi.broadcastWatermark(min)
}

// advanceChain moves every fused operator's event-time state to wm, in
// chain order so fired pane outputs flow into later positions before
// those advance in turn.
func (oi *opInstance) advanceChain(wm int64) {
	for _, c := range oi.chain {
		switch {
		case c.agg != nil:
			c.agg.advance(wm, c.emit)
		case c.join != nil:
			c.join.advance(wm)
		}
	}
}

// emitWatermark is the source-side advance: raise the instance clock
// and broadcast. Returns false when the run's context ended.
func (oi *opInstance) emitWatermark(wm int64) bool {
	if wm <= oi.curWM {
		return true
	}
	oi.curWM = wm
	return oi.broadcastWatermark(wm)
}

// broadcastWatermark forwards wm on every route. Each route flushes its
// pending batches first, so a watermark never overtakes the data it
// covers; the send path makes watermarks monotone per channel because
// callers only broadcast on a strict advance of curWM.
func (oi *opInstance) broadcastWatermark(wm int64) bool {
	for _, rt := range oi.routes {
		if !rt.watermark(oi.ctx, wm) {
			return false
		}
	}
	return true
}

// watermark flushes the route's pending data and delivers the marker to
// every still-listening target.
func (rt *router) watermark(ctx context.Context, wm int64) bool {
	if !rt.flushAll(ctx) {
		return false
	}
	for di, dst := range rt.targets {
		if rt.sentEOS[di] {
			continue
		}
		select {
		case dst.in <- message{kind: msgWatermark, side: rt.side, from: rt.wmID, wm: wm}:
		case <-ctx.Done():
			return false
		}
	}
	return true
}
