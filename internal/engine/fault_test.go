package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"pdspbench/internal/chaos"
	"pdspbench/internal/core"
	"pdspbench/internal/stream"
	"pdspbench/internal/tuple"
)

// faultPlan is src(par 1) → filter f(par N, pass-all) → sink, rated so a
// throttled run lasts ~runSecs seconds for nTuples tuples.
func faultPlan(par int, nTuples int, runSecs float64) *core.PQP {
	p := core.NewPQP("fault-test", "linear")
	p.Add(&core.Operator{ID: "src", Kind: core.OpSource, Parallelism: 1,
		Source:   &core.SourceSpec{Schema: kvSchema, EventRate: float64(nTuples) / runSecs, Distribution: "uniform"},
		OutWidth: 2})
	p.Add(&core.Operator{ID: "f", Kind: core.OpFilter, Parallelism: par, Partition: core.PartitionRebalance,
		Filter:   &core.FilterSpec{Field: 1, Fn: core.FilterGreater, Literal: tuple.Double(-1), Selectivity: 1},
		OutWidth: 2})
	p.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1, Partition: core.PartitionRebalance})
	p.Connect("src", "f")
	p.Connect("f", "sink")
	return p
}

func syntheticSource(plan *core.PQP, n int) map[string]SourceFactory {
	spec := plan.Op("src").Source
	return map[string]SourceFactory{
		"src": func(idx int) SourceGenerator {
			return stream.NewSynthetic(spec.Schema, 42+int64(idx), n, spec.EventRate, spec.Distribution)
		},
	}
}

// runFaulted runs the plan throttled under the given schedule with a
// hard test deadline, so a hung recovery path fails instead of wedging
// the suite.
func runFaulted(t *testing.T, plan *core.PQP, n int, faults []chaos.Event, maxRestarts int) (*Report, error) {
	t.Helper()
	rt, err := New(plan, Options{
		Sources:      syntheticSource(plan, n),
		Throttle:     true,
		Faults:       faults,
		MaxRestarts:  maxRestarts,
		RestartDelay: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	rep, err := rt.Run(ctx)
	if ctx.Err() != nil {
		t.Fatal("faulted run hit the test deadline: recovery path hangs")
	}
	return rep, err
}

func TestCrashRestartCompletes(t *testing.T) {
	const n = 4000
	plan := faultPlan(2, n, 0.2)
	rep, err := runFaulted(t, plan, n,
		[]chaos.Event{{At: 0.05, Kind: chaos.KindCrash, Op: "f", Instance: 0}}, 1)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.FaultsInjected != 1 {
		t.Errorf("FaultsInjected = %d, want 1", rep.FaultsInjected)
	}
	if rep.Restarts != 1 {
		t.Errorf("Restarts = %d, want 1", rep.Restarts)
	}
	if rep.Downtime <= 0 {
		t.Error("no downtime recorded for a restarted instance")
	}
	// Kills land at message boundaries and pending batches survive the
	// restart, so a budgeted crash loses nothing.
	if rep.TuplesOut != n {
		t.Errorf("TuplesOut = %d, want %d (crash-restart dropped tuples)", rep.TuplesOut, n)
	}
}

func TestKillLastInstanceReturnsFaultError(t *testing.T) {
	const n = 4000
	plan := faultPlan(2, n, 0.2)
	rep, err := runFaulted(t, plan, n, []chaos.Event{
		{At: 0.05, Kind: chaos.KindCrash, Op: "f", Instance: 0},
		{At: 0.05, Kind: chaos.KindCrash, Op: "f", Instance: 1},
	}, 0)
	if err == nil {
		t.Fatal("killing every instance of an operator completed without error")
	}
	var fe *chaos.FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("error %v (%T) is not a *chaos.FaultError", err, err)
	}
	if fe.Op != "f" {
		t.Errorf("FaultError.Op = %q, want %q", fe.Op, "f")
	}
	if rep == nil || rep.FaultsInjected != 2 {
		t.Errorf("report = %+v, want 2 faults injected", rep)
	}
}

func TestSourceCrashResumesWithoutDuplicates(t *testing.T) {
	const n = 4000
	plan := faultPlan(1, n, 0.2)
	rep, err := runFaulted(t, plan, n,
		[]chaos.Event{{At: 0.05, Kind: chaos.KindCrash, Op: "src", Instance: 0}}, 1)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Restarts != 1 {
		t.Errorf("Restarts = %d, want 1", rep.Restarts)
	}
	// The revived source skips the tuples earlier lives emitted, so the
	// sink sees each of the n tuples exactly once.
	if rep.TuplesOut != n {
		t.Errorf("TuplesOut = %d, want exactly %d (resume duplicated or lost tuples)", rep.TuplesOut, n)
	}
	if rep.RecoveredTuples == 0 {
		t.Error("revived source recorded no recovered tuples")
	}
}

func TestSourceStallDelaysCompletion(t *testing.T) {
	const n = 1000
	plan := faultPlan(1, n, 0.05)
	rep, err := runFaulted(t, plan, n,
		[]chaos.Event{{At: 0.01, Kind: chaos.EvStall, Op: "src", Instance: 0, Duration: 0.15}}, 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.TuplesOut != n {
		t.Errorf("TuplesOut = %d, want %d", rep.TuplesOut, n)
	}
	if rep.Elapsed < 100*time.Millisecond {
		t.Errorf("run finished in %v despite a 150ms source stall", rep.Elapsed)
	}
}

func TestLinkDropLosesTuples(t *testing.T) {
	const n = 4000
	plan := faultPlan(2, n, 0.2)
	rep, err := runFaulted(t, plan, n,
		[]chaos.Event{{At: 0.02, Kind: chaos.KindLinkDrop, Op: "f", Instance: -1, Duration: 0.1, Factor: 1}}, 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.TuplesOut >= n {
		t.Errorf("TuplesOut = %d, want < %d (drop window removed nothing)", rep.TuplesOut, n)
	}
	if rep.TuplesOut == 0 {
		t.Error("drop window swallowed the whole stream")
	}
}

// TestNoFaultPathUnarmed pins the zero-cost contract: without a fault
// plan no instance carries fault state and no fault metrics appear.
func TestNoFaultPathUnarmed(t *testing.T) {
	plan := faultPlan(2, 100, 0.001)
	rt, err := New(plan, Options{Sources: syntheticSource(plan, 100)})
	if err != nil {
		t.Fatal(err)
	}
	for _, insts := range rt.insts {
		for _, inst := range insts {
			if inst.flt != nil {
				t.Fatal("instance carries fault state without a fault plan")
			}
			for _, route := range inst.routes {
				if route.lf != nil {
					t.Fatal("router carries link-fault state without a fault plan")
				}
			}
		}
	}
	rep, err := rt.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.FaultsInjected != 0 || rep.Restarts != 0 || rep.RecoveredTuples != 0 {
		t.Errorf("fault metrics nonzero on a fault-free run: %+v", rep)
	}
}
