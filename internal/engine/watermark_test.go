package engine

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"pdspbench/internal/core"
	"pdspbench/internal/stream"
	"pdspbench/internal/tuple"
)

// runPlanOpts is runPlan with caller-controlled Options (lateness,
// watermark cadence) and a generator wrapper for disordered delivery; it
// returns the run report so tests can assert late-drop accounting.
func runPlanOpts(t *testing.T, plan *core.PQP, sources map[string][]*tuple.Tuple,
	wrap func(stream.Generator) stream.Generator, opts Options) ([]*tuple.Tuple, *Report) {
	t.Helper()
	sink := &collectSink{}
	srcFactories := make(map[string]SourceFactory, len(sources))
	for id, ts := range sources {
		ts := ts
		srcFactories[id] = func(idx int) SourceGenerator {
			var g stream.Generator = stream.NewFromTuples()
			if idx == 0 {
				g = stream.NewFromTuples(ts...)
			}
			if wrap != nil {
				g = wrap(g)
			}
			return g
		}
	}
	opts.Sources = srcFactories
	opts.SinkTap = sink.tap
	rt, err := New(plan, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := rt.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return sink.tuples(), rep
}

// timeAggPlan builds src → keyed tumbling time window (AggCount) → sink.
// The source carries the given DisorderSpec so periodic watermarks apply
// its bounded-skew allowance.
func timeAggPlan(lengthMs int64, d *core.DisorderSpec) *core.PQP {
	p := core.NewPQP("wm-test", "linear")
	p.Add(&core.Operator{ID: "src", Kind: core.OpSource, Parallelism: 1,
		Source: &core.SourceSpec{Schema: kvSchema, EventRate: 1000, Disorder: d}, OutWidth: 2})
	p.Add(&core.Operator{ID: "agg", Kind: core.OpAggregate, Parallelism: 1, Partition: core.PartitionHash,
		Agg: &core.AggregateSpec{
			Window: core.WindowSpec{Type: core.WindowTumbling, Policy: core.PolicyTime, LengthMs: lengthMs},
			Fn:     core.AggCount, Field: 1, KeyField: 0,
		}, OutWidth: 2})
	p.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1})
	p.Connect("src", "agg")
	p.Connect("agg", "sink")
	return p
}

// TestNoteWatermarkMergedMinimumIsMonotone fuzzes the per-producer merge:
// whatever order (and with whatever duplication or regression) producer
// assertions arrive in, the instance clock never moves backwards and
// never overtakes the slowest producer. Broadcast happens only on a
// strict advance of that clock, so this is exactly the per-channel
// monotonicity guarantee: a downstream channel observes a strictly
// increasing watermark sequence.
func TestNoteWatermarkMergedMinimumIsMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	oi := &opInstance{curWM: tuple.NoEventTime}
	oi.expectEOS = [2]int{3, 2}
	oi.initWatermarks()

	minSlots := func() int64 {
		min := int64(math.MaxInt64)
		for s := 0; s < 2; s++ {
			for _, w := range oi.wmIn[s] {
				if w < min {
					min = w
				}
			}
		}
		return min
	}

	for i := 0; i < 20000; i++ {
		side := rng.Intn(2)
		from := int32(rng.Intn(3)) // side 1 has 2 slots; noteWatermark bounds-checks
		var wm int64
		switch rng.Intn(10) {
		case 0:
			wm = tuple.NoEventTime // producer with no assertion yet
		case 1:
			wm = math.MaxInt64 // EOS: final watermark
		default:
			wm = int64(rng.Intn(2000)) - 500 // negative event times are legal
		}
		prev := oi.curWM
		oi.noteWatermark(side, from, wm)
		if oi.curWM < prev {
			t.Fatalf("op %d: clock went backwards: %d → %d", i, prev, oi.curWM)
		}
		if min := minSlots(); oi.curWM != tuple.NoEventTime && min != tuple.NoEventTime && oi.curWM > min {
			t.Fatalf("op %d: clock %d overtook slowest producer %d", i, oi.curWM, min)
		}
	}
}

// TestEmitWatermarkRejectsRegression pins the source-side half of the
// channel property: only strict advances are broadcast, so stale or
// duplicate assertions never reach the wire.
func TestEmitWatermarkRejectsRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	oi := &opInstance{curWM: tuple.NoEventTime} // no routes: broadcast is a no-op
	var sent []int64
	prev := oi.curWM
	for i := 0; i < 5000; i++ {
		wm := int64(rng.Intn(1000))
		oi.emitWatermark(wm)
		if oi.curWM != prev { // advanced ⇒ broadcast happened
			sent = append(sent, oi.curWM)
			prev = oi.curWM
		}
	}
	for i := 1; i < len(sent); i++ {
		if sent[i] <= sent[i-1] {
			t.Fatalf("broadcast sequence not strictly increasing at %d: %d after %d",
				i, sent[i], sent[i-1])
		}
	}
	if len(sent) == 0 {
		t.Fatal("no watermark ever advanced")
	}
}

// TestLateDropsCountedNeverReordered runs heavy-tailed (zipfburst)
// disorder through small time windows with zero allowed lateness: the
// straggler tail must be dropped and counted, never folded into an
// already-fired pane. Count conservation pins both directions at once —
// every input tuple is either in exactly one emitted pane or in the
// late-drop counter.
func TestLateDropsCountedNeverReordered(t *testing.T) {
	const n = 2000
	in := make([]*tuple.Tuple, n)
	for i := 0; i < n; i++ {
		in[i] = kv(int64(i), int64(i%7), 1) // 1ms spacing: 2s of event time
	}
	d := &core.DisorderSpec{Kind: core.DisorderZipfBurst, MaxSkewMs: 50}
	out, rep := runPlanOpts(t, timeAggPlan(100, d), map[string][]*tuple.Tuple{"src": in},
		func(g stream.Generator) stream.Generator { return stream.NewDisordered(g, d, 42) },
		Options{WatermarkInterval: 16})
	if rep.LateDrops == 0 {
		t.Fatal("zipfburst disorder with zero lateness produced no late drops")
	}
	var counted uint64
	for _, o := range out {
		counted += uint64(o.At(1).D)
	}
	if counted+rep.LateDrops != n {
		t.Errorf("conservation violated: %d counted + %d dropped != %d in",
			counted, rep.LateDrops, n)
	}
}

// TestBoundedDisorderWithMatchingLatenessDropsNothing: with delivery
// delay ≤ skew and allowance = skew, no tuple is ever late, and the pane
// emissions — values and order — are identical to the in-order run's.
// Panes always fire in (start, key hash) order, so determinism survives
// the shuffled arrival order.
func TestBoundedDisorderWithMatchingLatenessDropsNothing(t *testing.T) {
	const n = 1500
	mk := func() []*tuple.Tuple {
		in := make([]*tuple.Tuple, n)
		for i := 0; i < n; i++ {
			in[i] = kv(int64(i), int64(i%5), float64(i%13))
		}
		return in
	}
	d := &core.DisorderSpec{Kind: core.DisorderBounded, MaxSkewMs: 50}

	ordered, repO := runPlanOpts(t, timeAggPlan(100, nil), map[string][]*tuple.Tuple{"src": mk()},
		nil, Options{})
	shuffled, repS := runPlanOpts(t, timeAggPlan(100, d), map[string][]*tuple.Tuple{"src": mk()},
		func(g stream.Generator) stream.Generator { return stream.NewDisordered(g, d, 99) },
		Options{WatermarkInterval: 16, AllowedLateness: 50 * time.Millisecond})

	if repO.LateDrops != 0 || repS.LateDrops != 0 {
		t.Fatalf("late drops: in-order %d, bounded-disorder %d; want 0 and 0",
			repO.LateDrops, repS.LateDrops)
	}
	if len(ordered) != len(shuffled) {
		t.Fatalf("pane count diverged: %d in-order vs %d disordered", len(ordered), len(shuffled))
	}
	for i := range ordered {
		if !ordered[i].At(0).Equal(shuffled[i].At(0)) || ordered[i].At(1).D != shuffled[i].At(1).D {
			t.Fatalf("pane %d diverged: in-order (%v,%v) vs disordered (%v,%v)", i,
				ordered[i].At(0), ordered[i].At(1).D, shuffled[i].At(0), shuffled[i].At(1).D)
		}
	}
}

// TestInOrderZeroLatenessMatchesArrivalDrivenReference replays a long
// random in-order sequence through a global tumbling sum window and
// compares the emission sequence bit for bit against a hand-coded
// arrival-driven reference — the pre-watermark semantics, where a pane
// fired the moment an arrival's event time passed its end. Punctuated
// watermarks at per-arrival granularity must reproduce it exactly.
func TestInOrderZeroLatenessMatchesArrivalDrivenReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const lengthMs = 100
	var in []*tuple.Tuple
	etMs := int64(0)
	for i := 0; i < 1200; i++ {
		etMs += int64(rng.Intn(20)) // duplicates and gaps both occur
		in = append(in, kv(etMs, 0, float64(rng.Intn(100))/4))
	}

	// Reference: fold into panes; before each arrival fire (in start
	// order) every pane whose end its event time passed; flush the rest.
	lenNs := int64(lengthMs * 1e6)
	sums := make(map[int64]float64)
	var starts []int64 // insertion-ordered = start-ordered for in-order input
	var want []float64
	fire := func(horizon int64) {
		i := 0
		for ; i < len(starts) && starts[i]+lenNs <= horizon; i++ {
			want = append(want, sums[starts[i]])
			delete(sums, starts[i])
		}
		starts = starts[i:]
	}
	for _, tp := range in {
		fire(tp.EventTime)
		start := alignDown(tp.EventTime, lenNs)
		if _, ok := sums[start]; !ok {
			starts = append(starts, start)
		}
		sums[start] += tp.At(1).D
	}
	fire(math.MaxInt64)

	p := core.NewPQP("ref-test", "linear")
	p.Add(&core.Operator{ID: "src", Kind: core.OpSource, Parallelism: 1,
		Source: &core.SourceSpec{Schema: kvSchema, EventRate: 1000}, OutWidth: 2})
	p.Add(&core.Operator{ID: "agg", Kind: core.OpAggregate, Parallelism: 1, Partition: core.PartitionHash,
		Agg: &core.AggregateSpec{
			Window: core.WindowSpec{Type: core.WindowTumbling, Policy: core.PolicyTime, LengthMs: lengthMs},
			Fn:     core.AggSum, Field: 1, KeyField: -1,
		}, OutWidth: 1})
	p.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1})
	p.Connect("src", "agg")
	p.Connect("agg", "sink")

	out, rep := runPlanOpts(t, p, map[string][]*tuple.Tuple{"src": in}, nil, Options{})
	if rep.LateDrops != 0 {
		t.Fatalf("in-order input dropped %d tuples", rep.LateDrops)
	}
	if len(out) != len(want) {
		t.Fatalf("emitted %d panes, reference has %d", len(out), len(want))
	}
	for i, o := range out {
		if o.At(0).D != want[i] {
			t.Fatalf("pane %d: engine %v, reference %v (sequences must match bit for bit)",
				i, o.At(0).D, want[i])
		}
	}
}

// --- session-window units ------------------------------------------------

func sessionAgg(gapMs int64, latenessNs int64) *aggregator {
	return newAggregator(&core.AggregateSpec{
		Window: core.WindowSpec{Type: core.WindowSession, Policy: core.PolicyTime, GapMs: gapMs},
		Fn:     core.AggCount, Field: 1, KeyField: 0,
	}, latenessNs)
}

func TestSessionGapMergesConsecutiveActivity(t *testing.T) {
	agg := sessionAgg(500, 0)
	var out []*tuple.Tuple
	emit := func(t *tuple.Tuple) { out = append(out, t) }
	// Three events within the gap of each other, then one far away.
	for _, et := range []int64{0, 400, 800, 5000} {
		agg.add(kv(et, 1, 1), emit, nil)
	}
	if n := agg.openSessions(); n != 2 {
		t.Fatalf("open sessions = %d, want 2 (one merged span + one isolate)", n)
	}
	agg.advance(100_000*1e6, emit)
	if len(out) != 2 {
		t.Fatalf("fired %d sessions, want 2", len(out))
	}
	if c := out[0].At(1).D; c != 3 {
		t.Errorf("merged session counted %v events, want 3", c)
	}
	if c := out[1].At(1).D; c != 1 {
		t.Errorf("isolated session counted %v events, want 1", c)
	}
}

func TestSessionBridgingArrivalCoalesces(t *testing.T) {
	agg := sessionAgg(500, 0)
	var out []*tuple.Tuple
	emit := func(t *tuple.Tuple) { out = append(out, t) }
	agg.add(kv(0, 1, 1), emit, nil)   // [0, 500)
	agg.add(kv(700, 1, 1), emit, nil) // [700, 1200)
	if n := agg.openSessions(); n != 2 {
		t.Fatalf("open sessions before bridge = %d, want 2", n)
	}
	agg.add(kv(300, 1, 1), emit, nil) // [300, 800) touches both
	if n := agg.openSessions(); n != 1 {
		t.Fatalf("open sessions after bridge = %d, want 1 (coalesced)", n)
	}
	agg.advance(100_000*1e6, emit)
	if len(out) != 1 || out[0].At(1).D != 3 {
		t.Fatalf("coalesced session fired %d times with count %v, want once with 3",
			len(out), out[0].At(1).D)
	}
}

func TestSessionLateArrivalDroppedAndCounted(t *testing.T) {
	rt := &Runtime{}
	agg := sessionAgg(100, 0)
	var out []*tuple.Tuple
	emit := func(t *tuple.Tuple) { out = append(out, t) }
	agg.add(kv(1000, 1, 1), emit, nil)
	agg.advance(5000*1e6, emit) // fires [1000, 1100)
	if len(out) != 1 {
		t.Fatalf("fired %d sessions, want 1", len(out))
	}
	agg.add(kv(50, 1, 1), emit, rt) // would open [50, 150): far behind the horizon
	if rt.report.lateDrops != 1 {
		t.Errorf("late drops = %d, want 1", rt.report.lateDrops)
	}
	if len(out) != 1 || agg.openSessions() != 0 {
		t.Errorf("late arrival mutated state: %d emissions, %d open sessions",
			len(out), agg.openSessions())
	}
}

func TestOpenSessionAbsorbsOldArrival(t *testing.T) {
	// An arrival older than the watermark still folds into a session that
	// has not fired yet — only arrivals whose whole candidate span passed
	// the horizon are late.
	agg := sessionAgg(100, 0)
	var out []*tuple.Tuple
	emit := func(t *tuple.Tuple) { out = append(out, t) }
	agg.add(kv(1000, 1, 1), emit, nil) // [1000, 1100)
	agg.advance(1050*1e6, emit)        // horizon inside the open session
	if len(out) != 0 {
		t.Fatal("session fired before its end passed the horizon")
	}
	rt := &Runtime{}
	agg.add(kv(980, 1, 1), emit, rt) // behind the watermark, but overlaps the open span
	if rt.report.lateDrops != 0 {
		t.Fatalf("absorbable arrival counted as late")
	}
	agg.advance(100_000*1e6, emit)
	if len(out) != 1 || out[0].At(1).D != 2 {
		t.Fatalf("session fired %d times with count %v, want once with 2",
			len(out), out[0].At(1).D)
	}
}
