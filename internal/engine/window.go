package engine

import (
	"math"
	"sort"

	"pdspbench/internal/core"
	"pdspbench/internal/tuple"
)

// aggState incrementally folds one group's values.
type aggState struct {
	key       tuple.Value
	keyed     bool
	count     int64
	sum       float64
	min, max  float64
	maxEvent  int64
	maxIngest int64
}

func newAggState(key tuple.Value, keyed bool) *aggState {
	return &aggState{key: key, keyed: keyed, min: math.Inf(1), max: math.Inf(-1)}
}

func (a *aggState) add(v float64, t *tuple.Tuple) {
	a.count++
	a.sum += v
	if v < a.min {
		a.min = v
	}
	if v > a.max {
		a.max = v
	}
	if t.EventTime > a.maxEvent {
		a.maxEvent = t.EventTime
	}
	if t.Ingest > a.maxIngest {
		a.maxIngest = t.Ingest
	}
}

// merge folds another state's accumulators into a — session-window
// coalescing, where two activity spans of one key turn out to be one.
// Every accumulator the engine keeps (count, sum, min, max, timestamp
// maxima) is mergeable, which is what makes gap-merging cheap.
func (a *aggState) merge(o *aggState) {
	a.count += o.count
	a.sum += o.sum
	if o.min < a.min {
		a.min = o.min
	}
	if o.max > a.max {
		a.max = o.max
	}
	if o.maxEvent > a.maxEvent {
		a.maxEvent = o.maxEvent
	}
	if o.maxIngest > a.maxIngest {
		a.maxIngest = o.maxIngest
	}
}

// value evaluates the aggregate function over the folded state.
func (a *aggState) value(fn core.AggFn) float64 {
	switch fn {
	case core.AggMin:
		return a.min
	case core.AggMax:
		return a.max
	case core.AggSum:
		return a.sum
	case core.AggCount:
		return float64(a.count)
	default: // avg and mean
		if a.count == 0 {
			return 0
		}
		return a.sum / float64(a.count)
	}
}

// result materializes the output tuple: (key, value) for keyed windows,
// (value) for global ones. Results come from the tuple pool so they
// recycle at downstream drop points.
func (a *aggState) result(fn core.AggFn) *tuple.Tuple {
	v := tuple.Double(a.value(fn))
	width := 1
	if a.keyed {
		width = 2
	}
	t := tuple.Get(width)
	t.EventTime, t.Ingest = a.maxEvent, a.maxIngest
	if a.keyed {
		t.Values[0], t.Values[1] = a.key, v
	} else {
		t.Values[0] = v
	}
	return t
}

// Keyed window state is split into 2^windowShardBits hash shards
// selected by the low bits of the FNV-1a key hash — the same hash the
// router partitions on. Each shard is a small single-writer map (the
// instance goroutine is the only writer): lookups touch a fraction of
// the key space per probe, and emission stays deterministic because
// every emit path gathers hashes across shards and sorts them globally,
// exactly the order the unsharded maps produced.
const (
	windowShardBits = 3
	windowShards    = 1 << windowShardBits
	windowShardMask = windowShards - 1
)

// pane is one time-policy window instance; keys shards are allocated
// lazily so sparse panes don't pay for empty maps.
type pane struct {
	start  int64
	keys   [windowShards]map[uint64]*aggState
	global *aggState
}

func (p *pane) keyState(h uint64, key tuple.Value) *aggState {
	m := p.keys[h&windowShardMask]
	if m == nil {
		m = make(map[uint64]*aggState)
		p.keys[h&windowShardMask] = m
	}
	st, ok := m[h]
	if !ok {
		st = newAggState(key, true)
		m[h] = st
	}
	return st
}

// aggregator implements windowed aggregation for one operator instance:
// event-time tumbling/sliding panes and gap-merged sessions under the
// time policy, per-key tumbling counters and sliding rings under the
// count policy.
//
// Time-policy state is watermark-driven: arrivals only fold into panes
// (or sessions); firing and eviction happen exclusively in advance(),
// when the instance's merged watermark moves. Count-policy windows are
// arrival-driven by definition (their trigger is a tuple count, not a
// clock) and ignore watermarks.
type aggregator struct {
	spec *core.AggregateSpec

	// Time policy. watermark is the last advance() clock (NoEventTime
	// before the first); latenessNs delays firing so out-of-order
	// arrivals within the allowance still fold in.
	panes          map[int64]*pane
	watermark      int64
	lenNs, slideNs int64
	latenessNs     int64

	// Session windows (session.go): per-key gap-merged activity spans.
	hasSession bool
	gapNs      int64
	sessKeys   [windowShards]map[uint64][]*session
	sessGlobal []*session

	// Count policy (sharded like pane keys).
	counters [windowShards]map[uint64]*aggState // tumbling: accumulate then reset
	rings    [windowShards]map[uint64]*ring     // sliding: last N values
	hasCount bool
	slideTup int
}

// ring buffers the most recent window of values for sliding count
// windows, which must re-aggregate over retained values. since counts
// arrivals per slide inline (formerly a separate map lookup per tuple).
type ring struct {
	key     tuple.Value
	keyed   bool
	vals    []float64
	events  []int64
	ingests []int64
	cap     int
	since   int
}

func (r *ring) push(v float64, t *tuple.Tuple) {
	r.vals = append(r.vals, v)
	r.events = append(r.events, t.EventTime)
	r.ingests = append(r.ingests, t.Ingest)
	if len(r.vals) > r.cap {
		r.vals = r.vals[1:]
		r.events = r.events[1:]
		r.ingests = r.ingests[1:]
	}
}

func (r *ring) state() *aggState {
	st := newAggState(r.key, r.keyed)
	for i, v := range r.vals {
		st.add(v, &tuple.Tuple{EventTime: r.events[i], Ingest: r.ingests[i]})
	}
	return st
}

func newAggregator(spec *core.AggregateSpec, latenessNs int64) *aggregator {
	a := &aggregator{spec: spec, watermark: tuple.NoEventTime}
	if latenessNs > 0 {
		a.latenessNs = latenessNs
	}
	if spec.Window.Type == core.WindowSession {
		a.hasSession = true
		a.gapNs = spec.Window.GapMs * int64(1e6)
	} else if spec.Window.Policy == core.PolicyTime {
		a.panes = make(map[int64]*pane)
		a.lenNs = spec.Window.LengthMs * int64(1e6)
		a.slideNs = int64(spec.Window.Slide() * 1e6)
		if a.slideNs <= 0 {
			a.slideNs = a.lenNs
		}
	} else {
		for s := range a.counters {
			a.counters[s] = make(map[uint64]*aggState)
			a.rings[s] = make(map[uint64]*ring)
		}
		a.hasCount = true
		a.slideTup = int(spec.Window.Slide())
		if a.slideTup <= 0 {
			a.slideTup = spec.Window.LengthTups
		}
	}
	return a
}

// groupOf extracts the grouping key; global windows group under one key.
func (a *aggregator) groupOf(t *tuple.Tuple) (uint64, tuple.Value, bool) {
	if a.spec.KeyField >= 0 && a.spec.KeyField < t.Width() {
		k := t.At(a.spec.KeyField)
		return k.Hash(), k, true
	}
	return 0, tuple.Value{}, false
}

func (a *aggregator) fieldValue(t *tuple.Tuple) float64 {
	f := a.spec.Field
	if f < 0 || f >= t.Width() {
		f = 0
	}
	return t.At(f).AsFloat()
}

// add folds one tuple into the window state. Time-policy windows only
// accumulate here — firing happens in advance() on watermark movement;
// count-policy windows emit their completed windows inline. rt records
// late drops; it may be nil in unit tests.
func (a *aggregator) add(t *tuple.Tuple, emit func(*tuple.Tuple), rt *Runtime) {
	if a.hasSession {
		a.addSession(t, rt)
		return
	}
	if a.spec.Window.Policy == core.PolicyTime {
		a.addTime(t, rt)
		return
	}
	a.addCount(t, emit)
}

// fireHorizon is the pane-end boundary at or below which windows have
// already fired: the watermark minus the allowed lateness, or
// NoEventTime before the first watermark (nothing has fired).
func (a *aggregator) fireHorizon() int64 {
	if a.watermark == tuple.NoEventTime {
		return tuple.NoEventTime
	}
	return a.watermark - a.latenessNs
}

// advance moves the event-time clock to wm, firing every pane (or
// session) whose end plus the allowed lateness the watermark passed —
// in deterministic start order — and evicting the fired state.
func (a *aggregator) advance(wm int64, emit func(*tuple.Tuple)) {
	if wm == tuple.NoEventTime || wm <= a.watermark {
		return
	}
	a.watermark = wm
	if a.hasSession {
		a.fireSessions(a.fireHorizon(), emit)
		return
	}
	if a.panes != nil {
		a.firePanes(emit, a.fireHorizon())
	}
}

func (a *aggregator) addTime(t *tuple.Tuple, rt *Runtime) {
	et := t.EventTime
	v := a.fieldValue(t)
	h, key, keyed := a.groupOf(t)
	horizon := a.fireHorizon()
	// Assign to every pane whose [start, start+len) covers et.
	first := alignDown(et, a.slideNs)
	assigned := false
	for start := first; start > et-a.lenNs; start -= a.slideNs {
		if horizon != tuple.NoEventTime && start+a.lenNs <= horizon {
			// Pane already fired and evicted: the tuple is late beyond
			// the allowed lateness. Count the drop, never reorder.
			if rt != nil && !assigned {
				rt.recordLateDrop()
			}
			break
		}
		p, ok := a.panes[start]
		if !ok {
			p = &pane{start: start}
			a.panes[start] = p
		}
		var st *aggState
		if keyed {
			st = p.keyState(h, key)
		} else {
			if p.global == nil {
				p.global = newAggState(tuple.Value{}, false)
			}
			st = p.global
		}
		st.add(v, t)
		assigned = true
		if start < 0 {
			break
		}
	}
}

// firePanes emits and evicts every pane that closed at or before the
// horizon, in deterministic start order.
func (a *aggregator) firePanes(emit func(*tuple.Tuple), horizon int64) {
	if horizon == tuple.NoEventTime {
		return
	}
	var due []int64
	for start := range a.panes {
		if start+a.lenNs <= horizon {
			due = append(due, start)
		}
	}
	sort.Slice(due, func(i, j int) bool { return due[i] < due[j] })
	for _, start := range due {
		a.emitPane(a.panes[start], emit)
		delete(a.panes, start)
	}
}

func (a *aggregator) emitPane(p *pane, emit func(*tuple.Tuple)) {
	if p.global != nil {
		emit(p.global.result(a.spec.Fn))
		return
	}
	// Deterministic key order for reproducible outputs: gather across
	// shards and sort globally — the same hash set, and therefore the
	// same emission order, an unsharded map would produce.
	var hs []uint64
	for s := range p.keys {
		for h := range p.keys[s] {
			hs = append(hs, h)
		}
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	for _, h := range hs {
		emit(p.keys[h&windowShardMask][h].result(a.spec.Fn))
	}
}

func (a *aggregator) addCount(t *tuple.Tuple, emit func(*tuple.Tuple)) {
	v := a.fieldValue(t)
	h, key, keyed := a.groupOf(t)
	if a.spec.Window.Type == core.WindowTumbling {
		m := a.counters[h&windowShardMask]
		st, ok := m[h]
		if !ok {
			st = newAggState(key, keyed)
			m[h] = st
		}
		st.add(v, t)
		if st.count >= int64(a.spec.Window.LengthTups) {
			emit(st.result(a.spec.Fn))
			delete(m, h)
		}
		return
	}
	// Sliding count window: ring of the last LengthTups values, emitting
	// every slideTup arrivals once the ring first fills.
	m := a.rings[h&windowShardMask]
	r, ok := m[h]
	if !ok {
		r = &ring{key: key, keyed: keyed, cap: a.spec.Window.LengthTups}
		m[h] = r
	}
	r.push(v, t)
	r.since++
	if len(r.vals) >= r.cap && r.since >= a.slideTup {
		emit(r.state().result(a.spec.Fn))
		r.since = 0
	}
}

// flush emits all retained partial windows at end-of-stream,
// unconditionally: the stream is complete, so lateness retention no
// longer applies.
func (a *aggregator) flush(emit func(*tuple.Tuple)) {
	if a.hasSession {
		a.fireSessions(math.MaxInt64, emit)
		return
	}
	if a.panes != nil {
		a.firePanes(emit, math.MaxInt64)
	}
	if !a.hasCount {
		return
	}
	// Deterministic order across shards: gather every live hash, sort
	// globally, then index back through the shard mask — identical to the
	// order the unsharded maps emitted.
	var hs []uint64
	for s := range a.counters {
		for h := range a.counters[s] {
			hs = append(hs, h)
		}
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	for _, h := range hs {
		if st := a.counters[h&windowShardMask][h]; st.count > 0 {
			emit(st.result(a.spec.Fn))
		}
	}
	hs = hs[:0]
	for s := range a.rings {
		for h := range a.rings[s] {
			hs = append(hs, h)
		}
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	for _, h := range hs {
		if r := a.rings[h&windowShardMask][h]; len(r.vals) > 0 && len(r.vals) < r.cap {
			// Full rings already emitted on their slide; emit only
			// never-fired partial windows.
			emit(r.state().result(a.spec.Fn))
		}
	}
}

// alignDown floors t to a multiple of step, correct for negative t too.
func alignDown(t, step int64) int64 {
	if step <= 0 {
		return t
	}
	q := t / step
	if t < 0 && t%step != 0 {
		q--
	}
	return q * step
}
