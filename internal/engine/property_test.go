package engine

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"pdspbench/internal/core"
	"pdspbench/internal/tuple"
)

// TestAlignDownProperty: alignDown(t, s) is the greatest multiple of s
// not exceeding t, for any t (including negatives).
func TestAlignDownProperty(t *testing.T) {
	f := func(tRaw int64, sRaw uint32) bool {
		s := int64(sRaw%1000) + 1
		a := alignDown(tRaw, s)
		return a%s == 0 && a <= tRaw && tRaw-a < s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestAggStateMatchesDirectComputation: incremental folding agrees with
// a direct pass over the values for every aggregate function.
func TestAggStateMatchesDirectComputation(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(50)
		vals := make([]float64, n)
		st := newAggState(tuple.Int(1), true)
		var sum float64
		for i := range vals {
			vals[i] = rng.NormFloat64() * 100
			sum += vals[i]
			st.add(vals[i], &tuple.Tuple{EventTime: int64(i)})
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		checks := []struct {
			fn   core.AggFn
			want float64
		}{
			{core.AggMin, sorted[0]},
			{core.AggMax, sorted[n-1]},
			{core.AggSum, sum},
			{core.AggCount, float64(n)},
			{core.AggAvg, sum / float64(n)},
			{core.AggMean, sum / float64(n)},
		}
		for _, c := range checks {
			if got := st.value(c.fn); math.Abs(got-c.want) > 1e-9*(1+math.Abs(c.want)) {
				t.Fatalf("%v over %d values = %v, want %v", c.fn, n, got, c.want)
			}
		}
	}
}

// TestCountJoinBufferBounded: whatever the arrival sequence, a
// count-policy join never retains more than the window length per side.
func TestCountJoinBufferBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 30; trial++ {
		capTuples := 1 + rng.Intn(20)
		j := newJoiner(&core.JoinSpec{
			Window:    core.WindowSpec{Type: core.WindowTumbling, Policy: core.PolicyCount, LengthTups: capTuples},
			LeftField: 0, RightField: 0,
		}, 0)
		j.emitPair = func(_, _ *tuple.Tuple, _ int) {}
		for i := 0; i < 200; i++ {
			side := rng.Intn(2)
			tp := &tuple.Tuple{
				Values:    []tuple.Value{tuple.Int(int64(rng.Intn(10)))},
				EventTime: int64(i + 1),
			}
			j.add(tp, side)
			for s := 0; s < 2; s++ {
				if total := j.buffered(s); total > capTuples {
					t.Fatalf("side %d holds %d entries, cap %d", s, total, capTuples)
				}
			}
		}
	}
}

// TestHashRouterStableForKey: the hash partitioner sends every tuple of
// one key to the same downstream instance — the invariant keyed state
// relies on.
func TestHashRouterStableForKey(t *testing.T) {
	down := &core.Operator{ID: "agg", Kind: core.OpAggregate, Partition: core.PartitionHash,
		Agg: &core.AggregateSpec{KeyField: 0}}
	targets := make([]*opInstance, 8)
	for i := range targets {
		targets[i] = &opInstance{in: make(chan message, 1024)}
	}
	rt := newRouter(down, targets, 0, 0, 64)
	f := func(key int64) bool {
		t1 := &tuple.Tuple{Values: []tuple.Value{tuple.Int(key), tuple.Double(1)}}
		t2 := &tuple.Tuple{Values: []tuple.Value{tuple.Int(key), tuple.Double(2)}}
		h := t1.At(0).Hash() % uint64(len(targets))
		h2 := t2.At(0).Hash() % uint64(len(targets))
		return h == h2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	_ = rt
}

// TestSlidingRingNeverExceedsWindow: the sliding count window's ring
// retains at most LengthTups values regardless of input volume.
func TestSlidingRingNeverExceedsWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 20; trial++ {
		length := 2 + rng.Intn(30)
		slide := 0.3 + 0.4*rng.Float64()
		agg := newAggregator(&core.AggregateSpec{
			Window: core.WindowSpec{Type: core.WindowSliding, Policy: core.PolicyCount,
				LengthTups: length, SlideRatio: slide},
			Fn: core.AggSum, Field: 1, KeyField: 0,
		}, 0)
		emit := func(*tuple.Tuple) {}
		for i := 0; i < 500; i++ {
			tp := &tuple.Tuple{
				Values:    []tuple.Value{tuple.Int(int64(i % 3)), tuple.Double(rng.Float64())},
				EventTime: int64(i + 1),
			}
			agg.add(tp, emit, nil)
		}
		for s := range agg.rings {
			for _, r := range agg.rings[s] {
				if len(r.vals) > length {
					t.Fatalf("ring holds %d values, window %d", len(r.vals), length)
				}
			}
		}
	}
}

// TestTimePaneCountBounded: a sliding time window assigns each tuple to
// exactly ceil(length/slide) panes, so live panes stay bounded by the
// overlap factor plus the unfired frontier.
func TestTimePaneCountBounded(t *testing.T) {
	agg := newAggregator(&core.AggregateSpec{
		Window: core.WindowSpec{Type: core.WindowSliding, Policy: core.PolicyTime,
			LengthMs: 100, SlideRatio: 0.5},
		Fn: core.AggSum, Field: 0, KeyField: -1,
	}, 0)
	emit := func(*tuple.Tuple) {}
	for i := 0; i < 2000; i++ {
		tp := &tuple.Tuple{
			Values:    []tuple.Value{tuple.Double(1)},
			EventTime: int64(i+1) * 1e7, // 10ms steps, in order
		}
		agg.add(tp, emit, nil)
		agg.advance(tp.EventTime, emit) // punctuated: watermark per arrival
		// length/slide = 2 overlapping panes plus at most one pane whose
		// end has not yet passed the watermark.
		if len(agg.panes) > 3 {
			t.Fatalf("at tuple %d: %d live panes", i, len(agg.panes))
		}
	}
}
