package engine

import (
	"sort"

	"pdspbench/internal/tuple"
)

// Session windows (core.WindowSession): per-key activity spans that
// extend while consecutive events fall within the gap of each other and
// fire once the watermark passes the last event plus the gap (plus the
// allowed lateness). Sessions are event-time only — the gap is a
// statement about event time — so the state is watermark-driven like
// panes: arrivals merge, advance() fires.
//
// Per key the open sessions are kept as a start-ordered slice of
// disjoint spans. An arrival's candidate span [et, et+gap) coalesces
// every open session it overlaps or touches (at most a contiguous run
// in start order, so the slice stays sorted without re-sorting); an
// arrival that touches nothing and whose candidate span has already
// passed the fire horizon is late — dropped and counted.

// session is one open activity span: [start, end) with end = the last
// event time plus the gap.
type session struct {
	start, end int64
	st         *aggState
}

// addSession folds one arrival into the per-key session state.
func (a *aggregator) addSession(t *tuple.Tuple, rt *Runtime) {
	et := t.EventTime
	v := a.fieldValue(t)
	h, key, keyed := a.groupOf(t)
	lo, hi := et, et+a.gapNs

	var list []*session
	if keyed {
		m := a.sessKeys[h&windowShardMask]
		if m == nil {
			m = make(map[uint64][]*session)
			a.sessKeys[h&windowShardMask] = m
		}
		list = m[h]
	} else {
		list = a.sessGlobal
	}

	var merged *session
	kept := list[:0]
	for _, s := range list {
		if s.start <= hi && lo <= s.end {
			if merged == nil {
				// First overlapping session absorbs the candidate span.
				merged = s
				if lo < s.start {
					s.start = lo
				}
				if hi > s.end {
					s.end = hi
				}
			} else {
				// The candidate span bridged two sessions: coalesce.
				if s.start < merged.start {
					merged.start = s.start
				}
				if s.end > merged.end {
					merged.end = s.end
				}
				merged.st.merge(s.st)
				continue
			}
		}
		kept = append(kept, s)
	}

	if merged != nil {
		// An open session is still open precisely because it has not
		// fired, so even an arrival older than the watermark may extend it.
		merged.st.add(v, t)
	} else {
		if horizon := a.fireHorizon(); horizon != tuple.NoEventTime && hi <= horizon {
			// The session this arrival would open has already passed the
			// fire horizon: late beyond the allowed lateness.
			if rt != nil {
				rt.recordLateDrop()
			}
			return
		}
		s := &session{start: lo, end: hi, st: newAggState(key, keyed)}
		s.st.add(v, t)
		i := len(kept)
		for i > 0 && kept[i-1].start > s.start {
			i--
		}
		kept = append(kept, nil)
		copy(kept[i+1:], kept[i:])
		kept[i] = s
	}

	if keyed {
		a.sessKeys[h&windowShardMask][h] = kept
	} else {
		a.sessGlobal = kept
	}
}

// firedSession carries one closed session to the deterministic global
// sort before emission.
type firedSession struct {
	start int64
	h     uint64
	st    *aggState
}

// fireSessions emits and evicts every session whose end passed the
// horizon, ordered by (start, key hash) so emission is deterministic
// across shard layouts and map iteration orders.
func (a *aggregator) fireSessions(horizon int64, emit func(*tuple.Tuple)) {
	if horizon == tuple.NoEventTime {
		return
	}
	var due []firedSession
	for sh := range a.sessKeys {
		for h, list := range a.sessKeys[sh] {
			kept := list[:0]
			for _, s := range list {
				if s.end <= horizon {
					due = append(due, firedSession{start: s.start, h: h, st: s.st})
				} else {
					kept = append(kept, s)
				}
			}
			if len(kept) == 0 {
				delete(a.sessKeys[sh], h)
			} else {
				a.sessKeys[sh][h] = kept
			}
		}
	}
	kept := a.sessGlobal[:0]
	for _, s := range a.sessGlobal {
		if s.end <= horizon {
			due = append(due, firedSession{start: s.start, st: s.st})
		} else {
			kept = append(kept, s)
		}
	}
	a.sessGlobal = kept
	sort.Slice(due, func(i, j int) bool {
		if due[i].start != due[j].start {
			return due[i].start < due[j].start
		}
		return due[i].h < due[j].h
	})
	for _, f := range due {
		emit(f.st.result(a.spec.Fn))
	}
}

// openSessions counts the live sessions across all keys (test
// introspection).
func (a *aggregator) openSessions() int {
	n := len(a.sessGlobal)
	for sh := range a.sessKeys {
		for _, list := range a.sessKeys[sh] {
			n += len(list)
		}
	}
	return n
}
