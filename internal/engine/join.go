package engine

import (
	"pdspbench/internal/core"
	"pdspbench/internal/tuple"
)

// joinEntry is one buffered tuple on one side of a windowed join.
type joinEntry struct {
	t  *tuple.Tuple
	et int64
}

// joiner is a symmetric windowed equi-join: each arriving tuple probes
// the opposite side's buffer for key matches within the window, emits
// the concatenated results immediately, then joins the buffer of its own
// side. Time-policy windows bound matches by event-time distance;
// count-policy windows bound each side's buffer to the window length in
// tuples (the streaming interpretation of a count window join).
type joiner struct {
	spec  *core.JoinSpec
	buf   [2]map[uint64][]joinEntry
	fifo  [2][]*joinEntry
	lenNs int64
	cap   int
	wm    int64
	adds  int
}

func newJoiner(spec *core.JoinSpec) *joiner {
	j := &joiner{spec: spec}
	j.buf[0] = make(map[uint64][]joinEntry)
	j.buf[1] = make(map[uint64][]joinEntry)
	if spec.Window.Policy == core.PolicyTime {
		j.lenNs = spec.Window.LengthMs * int64(1e6)
	} else {
		j.cap = spec.Window.LengthTups
	}
	return j
}

// keyOf extracts the join key of a tuple arriving on the given side.
func (j *joiner) keyOf(t *tuple.Tuple, side int) tuple.Value {
	f := j.spec.LeftField
	if side == 1 {
		f = j.spec.RightField
	}
	if f < 0 || f >= t.Width() {
		f = 0
	}
	return t.At(f)
}

// add processes one arrival: probe, emit matches, insert, evict.
func (j *joiner) add(t *tuple.Tuple, side int, emit func(*tuple.Tuple)) {
	if side != 0 {
		side = 1
	}
	key := j.keyOf(t, side)
	h := key.Hash()
	other := 1 - side
	if t.EventTime > j.wm {
		j.wm = t.EventTime
	}
	// Probe the opposite buffer.
	for _, e := range j.buf[other][h] {
		if !j.keyOf(e.t, other).Equal(key) {
			continue
		}
		if j.lenNs > 0 {
			d := t.EventTime - e.et
			if d < 0 {
				d = -d
			}
			if d > j.lenNs {
				continue
			}
		}
		emit(j.joined(t, e.t, side))
	}
	// Insert into this side's buffer.
	entry := joinEntry{t: t, et: t.EventTime}
	j.buf[side][h] = append(j.buf[side][h], entry)
	if j.cap > 0 {
		j.fifo[side] = append(j.fifo[side], &entry)
		j.evictCount(side)
	} else if j.adds++; j.adds%64 == 0 {
		// Expired entries cannot produce matches (the probe re-checks the
		// time bound), so a periodic sweep amortizes eviction cost.
		j.evictTime(side)
		j.evictTime(other)
	}
}

// joined concatenates values left-then-right regardless of arrival side.
// Outputs come from the tuple pool so downstream drop points recycle
// them like source tuples.
func (j *joiner) joined(arrived, buffered *tuple.Tuple, arrivedSide int) *tuple.Tuple {
	l, r := arrived, buffered
	if arrivedSide == 1 {
		l, r = buffered, arrived
	}
	out := tuple.Get(l.Width() + r.Width())
	copy(out.Values, l.Values)
	copy(out.Values[l.Width():], r.Values)
	out.EventTime = maxI64(l.EventTime, r.EventTime)
	out.Ingest = maxI64(l.Ingest, r.Ingest)
	return out
}

// evictTime drops entries older than the window from one side. The
// joiner owns buffered tuples, so evicted ones go back to the pool.
func (j *joiner) evictTime(side int) {
	horizon := j.wm - j.lenNs
	for h, entries := range j.buf[side] {
		keep := entries[:0]
		for _, e := range entries {
			if e.et >= horizon {
				keep = append(keep, e)
			} else {
				e.t.Release()
			}
		}
		if len(keep) == 0 {
			delete(j.buf[side], h)
		} else {
			j.buf[side][h] = keep
		}
	}
}

// evictCount bounds one side's buffer to the count window length.
func (j *joiner) evictCount(side int) {
	for len(j.fifo[side]) > j.cap {
		old := j.fifo[side][0]
		j.fifo[side] = j.fifo[side][1:]
		h := j.keyOf(old.t, side).Hash()
		entries := j.buf[side][h]
		for i := range entries {
			if entries[i].t == old.t {
				j.buf[side][h] = append(entries[:i], entries[i+1:]...)
				break
			}
		}
		if len(j.buf[side][h]) == 0 {
			delete(j.buf[side], h)
		}
		old.t.Release()
	}
}

// release returns every still-buffered tuple to the pool at
// end-of-stream (windowed joins emit eagerly, so nothing fires here).
func (j *joiner) release() {
	for side := 0; side < 2; side++ {
		for _, entries := range j.buf[side] {
			for _, e := range entries {
				e.t.Release()
			}
		}
		j.buf[side] = nil
		j.fifo[side] = nil
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
