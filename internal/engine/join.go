package engine

import (
	"pdspbench/internal/core"
	"pdspbench/internal/tuple"
)

// Time-policy join state is split into 2^joinShardBits hash shards
// selected by the low bits of the FNV-1a key hash — the same hash that
// partitions tuples across instances. Each shard is a small single-writer
// region (the instance goroutine is the only writer): smaller bucket
// maps, hotter caches, and per-shard eviction queues that retire entries
// in O(1) amortized instead of sweeping every bucket. Count-policy joins
// keep one shard because the FIFO eviction order is global semantics,
// not an implementation choice.
const (
	joinShardBits = 3
	joinShards    = 1 << joinShardBits
)

// joinEntry is one buffered tuple on one side of a windowed join. The
// join key and its event time are captured at insert, so probes and
// evictions compare inline values instead of chasing the tuple pointer
// back through Values on every candidate.
type joinEntry struct {
	t   *tuple.Tuple
	key tuple.Value
	et  int64
}

// joinQueueEnt is one eviction-queue slot: enough to find the entry's
// bucket (h) and decide expiry (et) without touching the tuple.
type joinQueueEnt struct {
	t  *tuple.Tuple
	h  uint64
	et int64
}

// joinShard is one hash partition of the buffered state: per-side
// bucket maps plus per-side arrival-ordered eviction queues. qhead
// indexes the logical queue front so popping is a pointer bump, with
// periodic compaction bounding the dead prefix.
type joinShard struct {
	buf   [2]map[uint64][]joinEntry
	queue [2][]joinQueueEnt
	qhead [2]int
}

// joiner is a symmetric windowed equi-join: each arriving tuple probes
// the opposite side's buffer for key matches within the window, emits
// the concatenated results immediately, then joins the buffer of its own
// side. Time-policy windows bound matches by event-time distance;
// count-policy windows bound each side's buffer to the window length in
// tuples (the streaming interpretation of a count window join).
type joiner struct {
	spec   *core.JoinSpec
	shards []joinShard
	mask   uint64
	lenNs  int64
	cap    int
	// wm is the instance's merged watermark, moved only by advance():
	// time-policy eviction and late-arrival drops key off it, so buffer
	// retirement follows event-time completeness instead of arrival
	// order. latenessNs extends retention (and the drop boundary) by the
	// allowed lateness; rt counts the drops (nil in unit tests).
	wm         int64
	latenessNs int64
	rt         *Runtime

	// Exactly one emission sink is bound per run (bindEmit). The row
	// plane sets emitPair, which materializes each match as a pooled
	// joined tuple. The columnar plane (Options.Columnar with a
	// batch-capable route) sets columnar/outCap/emitOut/nOut instead:
	// matches append straight into out — no per-match tuple, no closure
	// hops — and full batches ship via emitOut.
	emitPair func(arrived, buffered *tuple.Tuple, side int)
	columnar bool
	outCap   int
	out      *tuple.ColumnBatch
	emitOut  func(*tuple.ColumnBatch)
	nOut     *uint64
}

func newJoiner(spec *core.JoinSpec, latenessNs int64) *joiner {
	j := &joiner{spec: spec, wm: tuple.NoEventTime}
	if latenessNs > 0 {
		j.latenessNs = latenessNs
	}
	n := 1
	if spec.Window.Policy == core.PolicyTime {
		j.lenNs = spec.Window.LengthMs * int64(1e6)
		n = joinShards
	} else {
		j.cap = spec.Window.LengthTups
	}
	j.mask = uint64(n - 1)
	j.shards = make([]joinShard, n)
	for s := range j.shards {
		j.shards[s].buf[0] = make(map[uint64][]joinEntry)
		j.shards[s].buf[1] = make(map[uint64][]joinEntry)
	}
	return j
}

// keyOf extracts the join key of a tuple arriving on the given side.
func (j *joiner) keyOf(t *tuple.Tuple, side int) tuple.Value {
	f := j.spec.LeftField
	if side == 1 {
		f = j.spec.RightField
	}
	if f < 0 || f >= t.Width() {
		f = 0
	}
	return t.At(f)
}

// add processes one arrival: probe, emit matches through the bound
// sink, insert, evict. Time-policy arrivals older than the watermark
// minus the allowed lateness can no longer match anything the buffers
// are required to retain — they are dropped and counted, never
// silently reordered.
func (j *joiner) add(t *tuple.Tuple, side int) {
	if side != 0 {
		side = 1
	}
	if j.cap == 0 && j.wm != tuple.NoEventTime &&
		t.EventTime != tuple.NoEventTime && t.EventTime < j.wm-j.latenessNs {
		if j.rt != nil {
			j.rt.recordLateDrop()
		}
		t.Release()
		return
	}
	key := j.keyOf(t, side)
	h := key.Hash()
	sh := &j.shards[h&j.mask]
	other := 1 - side
	// Probe the opposite buffer; keys and event times are inline in the
	// entries, so only actual matches dereference a buffered tuple.
	if bucket := sh.buf[other][h]; len(bucket) > 0 {
		j.probe(bucket, t, key, side)
	}
	// Insert into this side's buffer and eviction queue.
	sh.buf[side][h] = append(sh.buf[side][h], joinEntry{t: t, key: key, et: t.EventTime})
	sh.queue[side] = append(sh.queue[side], joinQueueEnt{t: t, h: h, et: t.EventTime})
	if j.cap > 0 {
		j.evictCount(sh, side)
	} else {
		// Lazy per-shard expiry at the watermark-derived horizon: pop the
		// arrival-ordered queue while its head can no longer match any
		// future in-time arrival. Out-of-order event times can leave an
		// expired entry behind a fresher head briefly, which is safe —
		// the probe re-checks the time bound — and each entry is still
		// retired exactly once, so the cost is O(1) amortized per add
		// instead of a periodic sweep over every bucket.
		horizon := j.evictHorizon()
		j.evictTime(sh, side, horizon)
		j.evictTime(sh, other, horizon)
	}
}

// evictHorizon is the event time below which a buffered entry can no
// longer match any arrival the watermark still admits: watermark minus
// window length minus allowed lateness.
func (j *joiner) evictHorizon() int64 {
	if j.wm == tuple.NoEventTime {
		return tuple.NoEventTime
	}
	return j.wm - j.lenNs - j.latenessNs
}

// advance moves the joiner's event-time clock to wm and retires every
// buffered entry outside the new retention horizon, on both sides of
// every shard. Count-policy joins are arrival-bounded and unaffected.
func (j *joiner) advance(wm int64) {
	if j.cap > 0 || wm == tuple.NoEventTime {
		return
	}
	if j.wm != tuple.NoEventTime && wm <= j.wm {
		return
	}
	j.wm = wm
	horizon := j.evictHorizon()
	for s := range j.shards {
		sh := &j.shards[s]
		j.evictTime(sh, 0, horizon)
		j.evictTime(sh, 1, horizon)
	}
}

// probe scans one bucket for matches with the arriving tuple. The
// columnar branch appends each match's concatenated row directly into
// the out-batch — the left/right ordering branch is hoisted out of the
// loop (side is fixed per arrival) and the only per-match calls are
// Equal and AppendJoined.
func (j *joiner) probe(bucket []joinEntry, t *tuple.Tuple, key tuple.Value, side int) {
	if !j.columnar {
		for i := range bucket {
			e := &bucket[i]
			if !e.key.Equal(key) {
				continue
			}
			if j.lenNs > 0 {
				d := t.EventTime - e.et
				if d < 0 {
					d = -d
				}
				if d > j.lenNs {
					continue
				}
			}
			j.emitPair(t, e.t, side)
		}
		return
	}
	matches := uint64(0)
	for i := range bucket {
		e := &bucket[i]
		if !e.key.Equal(key) {
			continue
		}
		if j.lenNs > 0 {
			d := t.EventTime - e.et
			if d < 0 {
				d = -d
			}
			if d > j.lenNs {
				continue
			}
		}
		matches++
		l, r := t, e.t
		if side == 1 {
			l, r = e.t, t
		}
		out := j.out
		if out == nil {
			out = j.newOut(l, r)
		}
		if out.AppendJoined(l, r) >= out.Cap() {
			j.flushColumns()
		}
	}
	*j.nOut += matches
}

// newOut allocates the columnar out-batch, deriving its column kinds
// from the first match's pair; the stream's schema is stable, so every
// later match agrees.
func (j *joiner) newOut(l, r *tuple.Tuple) *tuple.ColumnBatch {
	kinds := make([]tuple.Type, 0, l.Width()+r.Width())
	for _, v := range l.Values {
		kinds = append(kinds, v.Kind)
	}
	for _, v := range r.Values {
		kinds = append(kinds, v.Kind)
	}
	j.out = tuple.GetColumnBatch(kinds, j.outCap)
	return j.out
}

// flushColumns seals and ships the pending out-batch (batch-full or
// end-of-stream); a no-op on the row plane, where out is never set.
func (j *joiner) flushColumns() {
	cb := j.out
	if cb == nil {
		return
	}
	j.out = nil
	cb.Seal(cb.Len())
	j.emitOut(cb)
}

// joined concatenates values left-then-right regardless of arrival side.
// Outputs come from the tuple pool so downstream drop points recycle
// them like source tuples.
func (j *joiner) joined(arrived, buffered *tuple.Tuple, arrivedSide int) *tuple.Tuple {
	l, r := arrived, buffered
	if arrivedSide == 1 {
		l, r = buffered, arrived
	}
	out := tuple.Get(l.Width() + r.Width())
	copy(out.Values, l.Values)
	copy(out.Values[l.Width():], r.Values)
	out.EventTime = maxI64(l.EventTime, r.EventTime)
	out.Ingest = maxI64(l.Ingest, r.Ingest)
	return out
}

// evictTime retires expired entries from the front of one side's
// arrival-ordered queue. The joiner owns buffered tuples, so evicted
// ones go back to the pool.
func (j *joiner) evictTime(sh *joinShard, side int, horizon int64) {
	q := sh.queue[side]
	head := sh.qhead[side]
	for head < len(q) && q[head].et < horizon {
		j.dropEntry(sh, side, q[head])
		q[head] = joinQueueEnt{}
		head++
	}
	sh.qhead[side] = head
	sh.compact(side)
}

// evictCount bounds one side's buffer to the count window length.
func (j *joiner) evictCount(sh *joinShard, side int) {
	q := sh.queue[side]
	for len(q)-sh.qhead[side] > j.cap {
		j.dropEntry(sh, side, q[sh.qhead[side]])
		q[sh.qhead[side]] = joinQueueEnt{}
		sh.qhead[side]++
	}
	sh.compact(side)
}

// compact reclaims the popped queue prefix once it dominates the slice,
// keeping the amortized pop cost O(1) while bounding memory.
func (sh *joinShard) compact(side int) {
	head := sh.qhead[side]
	q := sh.queue[side]
	switch {
	case head == len(q) && head > 0:
		sh.queue[side] = q[:0]
		sh.qhead[side] = 0
	case head > 256 && head*2 > len(q):
		n := copy(q, q[head:])
		sh.queue[side] = q[:n]
		sh.qhead[side] = 0
	}
}

// dropEntry removes one queued entry from its bucket (by tuple
// identity, preserving bucket order) and releases the tuple.
func (j *joiner) dropEntry(sh *joinShard, side int, qe joinQueueEnt) {
	entries := sh.buf[side][qe.h]
	for i := range entries {
		if entries[i].t == qe.t {
			sh.buf[side][qe.h] = append(entries[:i], entries[i+1:]...)
			break
		}
	}
	if len(sh.buf[side][qe.h]) == 0 {
		delete(sh.buf[side], qe.h)
	}
	qe.t.Release()
}

// buffered counts the entries retained on one side across all shards
// (test introspection; the hot path never needs a global count).
func (j *joiner) buffered(side int) int {
	total := 0
	for s := range j.shards {
		for _, entries := range j.shards[s].buf[side] {
			total += len(entries)
		}
	}
	return total
}

// release returns every still-buffered tuple to the pool at
// end-of-stream (windowed joins emit eagerly, so nothing fires here).
func (j *joiner) release() {
	for s := range j.shards {
		sh := &j.shards[s]
		for side := 0; side < 2; side++ {
			for _, entries := range sh.buf[side] {
				for _, e := range entries {
					e.t.Release()
				}
			}
			sh.buf[side] = nil
			sh.queue[side] = nil
			sh.qhead[side] = 0
		}
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
