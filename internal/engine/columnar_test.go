package engine

import (
	"context"
	"testing"

	"pdspbench/internal/core"
	"pdspbench/internal/stream"
	"pdspbench/internal/tuple"
)

// runColumnar executes plan with synthetic sources at the given seed and
// returns the sink multiset fingerprint plus the run report.
func runColumnar(t *testing.T, plan *core.PQP, seed int64, perSource int, opts Options) ([]string, *Report) {
	t.Helper()
	sink := &collectSink{}
	srcs := make(map[string]SourceFactory)
	for si, src := range plan.Sources() {
		spec := src.Source
		srcSeed := seed + int64(si)*104729
		srcs[src.ID] = func(idx int) SourceGenerator {
			return stream.NewSynthetic(spec.Schema, srcSeed+int64(idx)*7919, perSource, spec.EventRate, spec.Distribution)
		}
	}
	opts.Sources = srcs
	opts.SinkTap = sink.tap
	rt, err := New(plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return sortedRendering(sink.tuples()), rep
}

// chainedFilterPlan: src → f1 (rebalance) → f2/f3 (forward, chainable)
// → sink, the columnar plane's home turf.
func chainedFilterPlan() *core.PQP {
	p := core.NewPQP("columnar-filters", "linear")
	p.Add(&core.Operator{ID: "src", Kind: core.OpSource, Parallelism: 1,
		Source: &core.SourceSpec{Schema: kvSchema, EventRate: 100_000}, OutWidth: 2})
	p.Add(&core.Operator{ID: "f1", Kind: core.OpFilter, Parallelism: 3, Partition: core.PartitionRebalance,
		Filter:   &core.FilterSpec{Field: 1, Fn: core.FilterGreater, Literal: tuple.Double(0.25), Selectivity: 0.75},
		OutWidth: 2})
	p.Add(&core.Operator{ID: "f2", Kind: core.OpFilter, Parallelism: 3, Partition: core.PartitionForward,
		Filter:   &core.FilterSpec{Field: 0, Fn: core.FilterLess, Literal: tuple.Int(800), Selectivity: 0.8},
		OutWidth: 2})
	p.Add(&core.Operator{ID: "f3", Kind: core.OpFilter, Parallelism: 2, Partition: core.PartitionHash,
		Filter:   &core.FilterSpec{Field: 0, Fn: core.FilterNotEq, Literal: tuple.Int(7), Selectivity: 0.99},
		OutWidth: 2})
	p.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1, Partition: core.PartitionRebalance})
	p.Connect("src", "f1")
	p.Connect("f1", "f2")
	p.Connect("f2", "f3")
	p.Connect("f3", "sink")
	return p
}

// TestColumnarMatchesRow: the columnar plane is an execution
// optimization, so a deterministic plan must deliver a bit-identical
// sink multiset with Columnar off, on, and on with batch capacities
// that never divide the input evenly — including capacity 1, the
// degenerate one-row-per-batch plane.
func TestColumnarMatchesRow(t *testing.T) {
	plan := chainedFilterPlan()
	const n = 3000
	want, _ := runColumnar(t, plan, 42, n, Options{ChainOperators: true})
	if len(want) == 0 {
		t.Fatal("row plan produced no output")
	}
	for _, rows := range []int{0 /* default 1024 */, 1, 7, 4096} {
		got, rep := runColumnar(t, plan, 42, n, Options{ChainOperators: true, Columnar: true, ColumnarBatch: rows})
		if rep.ColumnarBatches == 0 {
			t.Fatalf("ColumnarBatch %d: no columnar batches routed", rows)
		}
		if len(got) != len(want) {
			t.Fatalf("ColumnarBatch %d: %d sink tuples, row plane produced %d", rows, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("ColumnarBatch %d: sink multiset diverges at %d: %q vs %q", rows, i, got[i], want[i])
			}
		}
	}
}

// TestColumnarMatchesRowUnchained repeats the check without operator
// chaining, so every chain is a single operator and every link crosses
// a router.
func TestColumnarMatchesRowUnchained(t *testing.T) {
	plan := chainedFilterPlan()
	const n = 2000
	want, _ := runColumnar(t, plan, 11, n, Options{})
	got, rep := runColumnar(t, plan, 11, n, Options{Columnar: true})
	if rep.ColumnarBatches == 0 {
		t.Fatal("no columnar batches routed")
	}
	if len(got) != len(want) {
		t.Fatalf("%d sink tuples, row plane produced %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("sink multiset diverges at %d: %q vs %q", i, got[i], want[i])
		}
	}
}

// TestColumnarFallbackToRowChain: a columnar stretch feeding a row-only
// operator (a keyed windowed aggregate) must materialize at the router
// — automatically, with identical output and a visible fallback count.
func TestColumnarFallbackToRowChain(t *testing.T) {
	p := core.NewPQP("columnar-fallback", "linear")
	p.Add(&core.Operator{ID: "src", Kind: core.OpSource, Parallelism: 1,
		Source: &core.SourceSpec{Schema: kvSchema, EventRate: 100_000}, OutWidth: 2})
	// Filter parallelism stays 1 so each aggregate instance sees one
	// ordered upstream channel: with several filter instances racing, the
	// row plane itself is not deterministic (channel interleaving skews
	// float-sum order and watermark progress).
	p.Add(&core.Operator{ID: "f", Kind: core.OpFilter, Parallelism: 1, Partition: core.PartitionRebalance,
		Filter:   &core.FilterSpec{Field: 1, Fn: core.FilterGreaterEq, Literal: tuple.Double(0.1), Selectivity: 0.9},
		OutWidth: 2})
	// The window spans the whole stream so every pane emits at the
	// deterministic sorted flush.
	p.Add(&core.Operator{ID: "agg", Kind: core.OpAggregate, Parallelism: 2, Partition: core.PartitionHash,
		Agg: &core.AggregateSpec{
			Window: core.WindowSpec{Type: core.WindowTumbling, Policy: core.PolicyTime, LengthMs: 100},
			Fn:     core.AggSum, Field: 1, KeyField: 0,
		}, OutWidth: 2})
	p.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1, Partition: core.PartitionRebalance})
	p.Connect("src", "f")
	p.Connect("f", "agg")
	p.Connect("agg", "sink")

	const n = 2000
	want, _ := runColumnar(t, p, 5, n, Options{})
	got, rep := runColumnar(t, p, 5, n, Options{Columnar: true})
	if rep.ColumnarBatches == 0 {
		t.Fatal("no columnar batches routed")
	}
	if rep.ColumnarFallbackBatches == 0 {
		t.Fatal("columnar plan with a row-only aggregate reported no fallback batches")
	}
	if len(got) != len(want) {
		t.Fatalf("%d sink tuples, row plane produced %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("sink multiset diverges at %d: %q vs %q", i, got[i], want[i])
		}
	}
}

// TestColumnarDisabledUnderThrottleAndFaults: pacing and chaos are
// per-row mechanisms, so Columnar must drop to the row plane when
// either is armed.
func TestColumnarDisabledUnderThrottleAndFaults(t *testing.T) {
	plan := chainedFilterPlan()
	_, rep := runColumnar(t, plan, 3, 200, Options{Columnar: true, Throttle: true})
	if rep.ColumnarBatches != 0 {
		t.Fatalf("throttled run routed %d columnar batches, want 0", rep.ColumnarBatches)
	}
}

// TestColumnarGenericFillPath: generators without the ColumnFiller fast
// path (FromTuples) convert row by row at the source boundary; the
// result must match the row plane exactly.
func TestColumnarGenericFillPath(t *testing.T) {
	p := core.NewPQP("columnar-generic", "linear")
	p.Add(&core.Operator{ID: "src", Kind: core.OpSource, Parallelism: 1,
		Source: &core.SourceSpec{Schema: kvSchema, EventRate: 1000}, OutWidth: 2})
	p.Add(&core.Operator{ID: "f", Kind: core.OpFilter, Parallelism: 2, Partition: core.PartitionRebalance,
		Filter:   &core.FilterSpec{Field: 0, Fn: core.FilterLess, Literal: tuple.Int(5), Selectivity: 0.5},
		OutWidth: 2})
	p.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1, Partition: core.PartitionRebalance})
	p.Connect("src", "f")
	p.Connect("f", "sink")

	var input []*tuple.Tuple
	for i := 0; i < 100; i++ {
		input = append(input, kv(int64(i), int64(i%10), float64(i)))
	}
	run := func(columnar bool) []string {
		sink := &collectSink{}
		rt, err := New(p, Options{
			Sources: map[string]SourceFactory{"src": func(idx int) SourceGenerator {
				if idx == 0 {
					return stream.NewFromTuples(input...)
				}
				return stream.NewFromTuples()
			}},
			SinkTap:       sink.tap,
			Columnar:      columnar,
			ColumnarBatch: 16,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return sortedRendering(sink.tuples())
	}
	want, got := run(false), run(true)
	if len(want) != 50 || len(got) != len(want) {
		t.Fatalf("row/columnar delivered %d/%d tuples, want 50", len(want), len(got))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("sink multiset diverges at %d: %q vs %q", i, got[i], want[i])
		}
	}
}
