package engine

import (
	"context"
	"runtime"
	"sort"
	"testing"
	"time"

	"pdspbench/internal/core"
	"pdspbench/internal/stream"
	"pdspbench/internal/testutil"
	"pdspbench/internal/tuple"
)

// runPlanBatched is runPlan with explicit batching options.
func runPlanBatched(t *testing.T, plan *core.PQP, sources map[string][]*tuple.Tuple, batchSize int) []*tuple.Tuple {
	t.Helper()
	sink := &collectSink{}
	srcFactories := make(map[string]SourceFactory, len(sources))
	for id, ts := range sources {
		ts := ts
		srcFactories[id] = func(idx int) SourceGenerator {
			if idx == 0 {
				return stream.NewFromTuples(ts...)
			}
			return stream.NewFromTuples()
		}
	}
	rt, err := New(plan, Options{
		Sources:   srcFactories,
		SinkTap:   sink.tap,
		BatchSize: batchSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return sink.tuples()
}

// sortedRendering renders tuples as strings and sorts them — a multiset
// fingerprint that ignores delivery order.
func sortedRendering(ts []*tuple.Tuple) []string {
	out := make([]string, len(ts))
	for i, tp := range ts {
		out[i] = tp.String()
	}
	sort.Strings(out)
	return out
}

// TestBatchedMatchesUnbatched: batching is a transport optimization, so
// a deterministic plan must deliver the same sink tuple multiset with
// BatchSize 1 (the pre-batching plane), the default, and an odd size
// that never divides the input evenly. The source fans out to a
// parallel filter and a keyed windowed aggregation (each hash-keyed
// aggregation instance sees its keys in source order, so pane firing is
// interleaving-independent); both branches meet at one sink.
func TestBatchedMatchesUnbatched(t *testing.T) {
	plan := core.NewPQP("equiv", "diamond")
	plan.Add(&core.Operator{ID: "src", Kind: core.OpSource, Parallelism: 1,
		Source: &core.SourceSpec{Schema: kvSchema, EventRate: 1000}, OutWidth: 2})
	plan.Add(&core.Operator{ID: "f", Kind: core.OpFilter, Parallelism: 3, Partition: core.PartitionRebalance,
		Filter:   &core.FilterSpec{Field: 1, Fn: core.FilterGreater, Literal: tuple.Double(0.25), Selectivity: 0.75},
		OutWidth: 2})
	plan.Add(&core.Operator{ID: "agg", Kind: core.OpAggregate, Parallelism: 2, Partition: core.PartitionHash,
		Agg: &core.AggregateSpec{
			Window: core.WindowSpec{Type: core.WindowTumbling, Policy: core.PolicyTime, LengthMs: 10},
			Fn:     core.AggSum, Field: 1, KeyField: 0,
		}, OutWidth: 2})
	plan.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1})
	plan.Connect("src", "f")
	plan.Connect("src", "agg")
	plan.Connect("f", "sink")
	plan.Connect("agg", "sink")

	var input []*tuple.Tuple
	for i := 0; i < 500; i++ {
		input = append(input, kv(int64(i), int64(i%7), float64(i%100)/100))
	}

	var want []string
	for _, size := range []int{1, 0 /* default 64 */, 7} {
		got := sortedRendering(runPlanBatched(t, plan, map[string][]*tuple.Tuple{"src": input}, size))
		if want == nil {
			want = got
			if len(want) == 0 {
				t.Fatal("deterministic plan produced no output")
			}
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("BatchSize %d: %d sink tuples, unbatched produced %d", size, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("BatchSize %d: sink multiset diverges at %d: %q vs %q", size, i, got[i], want[i])
			}
		}
	}
}

// TestBatchedJoinMatchesUnbatched repeats the equivalence check across a
// two-source windowed join. The window spans the whole stream so
// time-based eviction never races the cross-side watermark: every
// same-key pair fires exactly once — when its later tuple arrives and
// probes the earlier one — independent of interleaving.
func TestBatchedJoinMatchesUnbatched(t *testing.T) {
	plan := core.NewPQP("equiv-join", "2-way-join")
	for _, id := range []string{"l", "r"} {
		plan.Add(&core.Operator{ID: id, Kind: core.OpSource, Parallelism: 1,
			Source: &core.SourceSpec{Schema: kvSchema, EventRate: 1000}, OutWidth: 2})
	}
	plan.Add(&core.Operator{ID: "join", Kind: core.OpJoin, Parallelism: 4, Partition: core.PartitionHash,
		Join: &core.JoinSpec{
			Window:    core.WindowSpec{Type: core.WindowTumbling, Policy: core.PolicyTime, LengthMs: 1000},
			LeftField: 0, RightField: 0,
		}, OutWidth: 4})
	plan.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1})
	plan.Connect("l", "join")
	plan.Connect("r", "join")
	plan.Connect("join", "sink")

	var left, right []*tuple.Tuple
	for i := 0; i < 200; i++ {
		left = append(left, kv(int64(i), int64(i%11), 1))
		right = append(right, kv(int64(i), int64(i%13), 2))
	}
	sources := map[string][]*tuple.Tuple{"l": left, "r": right}

	var want []string
	for _, size := range []int{1, 0, 5} {
		got := sortedRendering(runPlanBatched(t, plan, sources, size))
		if want == nil {
			want = got
			if len(want) == 0 {
				t.Fatal("join plan produced no output")
			}
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("BatchSize %d: %d join outputs, unbatched produced %d", size, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("BatchSize %d: join multiset diverges at %d: %q vs %q", size, i, got[i], want[i])
			}
		}
	}
}

// TestBatchLingerFlushesPartialBatches: with a huge BatchSize and a
// throttled trickle source, outputs must still reach the sink within the
// linger bound rather than waiting for a full batch that never fills.
func TestBatchLingerFlushesPartialBatches(t *testing.T) {
	plan := core.NewPQP("linger", "linear")
	plan.Add(&core.Operator{ID: "src", Kind: core.OpSource, Parallelism: 1,
		Source: &core.SourceSpec{Schema: kvSchema, EventRate: 1000}, OutWidth: 2})
	plan.Add(&core.Operator{ID: "f", Kind: core.OpFilter, Parallelism: 1, Partition: core.PartitionForward,
		Filter:   &core.FilterSpec{Field: 1, Fn: core.FilterGreaterEq, Literal: tuple.Double(0), Selectivity: 1},
		OutWidth: 2})
	plan.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1})
	plan.Connect("src", "f")
	plan.Connect("f", "sink")

	sink := &collectSink{}
	rt, err := New(plan, Options{
		Sources: map[string]SourceFactory{"src": func(int) SourceGenerator {
			return stream.NewFromTuples(kv(1, 1, 1), kv(2, 2, 1), kv(3, 3, 1))
		}},
		SinkTap:     sink.tap,
		BatchSize:   1 << 20,
		BatchLinger: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := len(sink.tuples()); got != 3 {
		t.Fatalf("delivered %d tuples, want 3", got)
	}
}

// TestFilterPipelineAllocsPerTuple gates steady-state allocation on the
// batched, pooled data plane: after a warm-up run primes the pools, a
// 20k-tuple filter pipeline must average under 1 allocation per tuple
// end to end (the unbatched plane paid several: channel message, hash
// state, emit closure, fresh tuple per source event).
func TestFilterPipelineAllocsPerTuple(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	const n = 20_000
	plan := core.NewPQP("alloc-gate", "linear")
	plan.Add(&core.Operator{ID: "src", Kind: core.OpSource, Parallelism: 1,
		Source: &core.SourceSpec{Schema: kvSchema, EventRate: 1_000_000}, OutWidth: 2})
	plan.Add(&core.Operator{ID: "f", Kind: core.OpFilter, Parallelism: 2, Partition: core.PartitionRebalance,
		Filter:   &core.FilterSpec{Field: 1, Fn: core.FilterGreater, Literal: tuple.Double(0.5), Selectivity: 0.5},
		OutWidth: 2})
	plan.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1})
	plan.Connect("src", "f")
	plan.Connect("f", "sink")

	run := func(seed int64) {
		rt, err := New(plan, Options{
			Sources: map[string]SourceFactory{"src": func(int) SourceGenerator {
				return stream.NewSynthetic(kvSchema, seed, n, 1_000_000, "poisson")
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	run(1) // warm the tuple and batch pools

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	run(2)
	runtime.ReadMemStats(&after)
	perTuple := float64(after.Mallocs-before.Mallocs) / n
	if perTuple > 1 {
		t.Errorf("filter pipeline allocates %.2f per tuple steady-state, want < 1", perTuple)
	}
}
