// Package engine is the real in-process execution backend of PDSP-Bench
// — the System Under Test role that Apache Flink plays in the paper. It
// turns a core.PQP into a running dataflow of parallel operator
// instances (one goroutine each) connected by bounded channels, with the
// paper's data-partitioning strategies (forward, rebalance, hashing),
// event-time tumbling/sliding windows under count and time policies,
// windowed equi-joins, and user-defined operators.
//
// Backpressure is intrinsic: channels are bounded, so a slow operator
// stalls its producers exactly as a real stream processor's bounded
// network buffers do.
package engine

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pdspbench/internal/chaos"
	"pdspbench/internal/core"
	"pdspbench/internal/stats"
	"pdspbench/internal/tuple"
)

// SourceGenerator produces the tuples of one source instance. Next
// returns false at end of stream. Generators own their randomness so
// runs are reproducible from seeds.
type SourceGenerator interface {
	Next() (*tuple.Tuple, bool)
}

// SourceFactory builds the generator for source instance idx.
type SourceFactory func(idx int) SourceGenerator

// UDO is user-defined operator logic hosted by the engine. One UDO value
// serves one instance, so implementations may keep per-instance state
// without locking.
type UDO interface {
	// Process consumes one tuple and emits zero or more outputs.
	Process(t *tuple.Tuple, emit func(*tuple.Tuple))
	// Flush is called once at end-of-stream to drain retained state.
	Flush(emit func(*tuple.Tuple))
}

// UDOFactory builds the UDO for operator instance idx.
type UDOFactory func(idx int) UDO

// Options configure a Runtime.
type Options struct {
	// Sources maps source operator IDs to generator factories. Every
	// source in the plan must have one.
	Sources map[string]SourceFactory
	// UDOs maps UDO names (core.UDOSpec.Name) to factories.
	UDOs map[string]UDOFactory
	// ChannelCapacity bounds operator input channels (default 256). With
	// batching the effective tuple buffering per channel is
	// ChannelCapacity × BatchSize.
	ChannelCapacity int
	// BatchSize is how many tuples a router accumulates per downstream
	// target before a channel send (default 64). 1 disables batching:
	// every tuple ships in its own message, the pre-batching data plane.
	BatchSize int
	// BatchLinger bounds how long a partial batch may wait during a busy
	// stretch before being force-flushed (default 1ms). Partial batches
	// also flush whenever an operator's input runs momentarily dry and at
	// end-of-stream, so the linger boundary only matters under sustained
	// load with slow-filling batches.
	BatchLinger time.Duration
	// Throttle makes sources pace emission to the plan's event rate in
	// real time; unthrottled runs replay as fast as possible (the mode
	// functional tests use).
	Throttle bool
	// ChainOperators fuses forward-partitioned, equal-parallelism
	// operator runs into single instances (Flink task chaining),
	// replacing channel hops with function calls on the fused links.
	ChainOperators bool
	// Columnar enables the struct-of-arrays data plane: sources fill
	// column batches, stateless chains (filter, spec-less map/flatMap,
	// sink) execute compiled vectorized kernels over contiguous slabs,
	// and row-only chains (aggregates, joins, UDOs) are fed through the
	// automatic row fallback at the routers. Sink output is bit-identical
	// to a row-plane run. Forced off when Throttle or Faults is set —
	// pacing and chaos injection are per-row mechanisms.
	Columnar bool
	// ColumnarBatch is the column batch row capacity (default 1024).
	ColumnarBatch int
	// WatermarkInterval is how many tuples a source emits between
	// periodic watermark assertions when its generator is not punctuated
	// (default 256). Punctuated generators (those implementing
	// Watermarker) emit whenever their assertion advances instead.
	WatermarkInterval int
	// AllowedLateness delays window firing past the watermark: a pane or
	// session fires only once the watermark passes its end plus this
	// allowance, so out-of-order tuples arriving within the allowance are
	// still absorbed. Tuples arriving beyond it are dropped and counted
	// in Report.LateDrops — never silently reordered.
	AllowedLateness time.Duration
	// SinkTap, when set, receives every tuple delivered to a sink (after
	// metrics are recorded). Used by examples to print results.
	SinkTap func(op string, t *tuple.Tuple)
	// Faults is the resolved chaos schedule to replay against this run
	// (event times are seconds from Run start on the wall clock). Empty
	// means no fault machinery is armed and the data plane is untouched.
	Faults []chaos.Event
	// MaxRestarts bounds budgeted revivals per instance (injected
	// crashes and genuine panics); zero or negative disables restarts.
	// Node-down outages revive on schedule without consuming budget.
	MaxRestarts int
	// RestartDelay is the base revival backoff (default 20ms); it
	// doubles per consecutive budgeted restart of the same instance.
	RestartDelay time.Duration
}

// Report is what a run measures — the same metrics the paper collects.
type Report struct {
	// Latency percentiles in seconds over sink deliveries.
	LatencyP50, LatencyP95, LatencyP99, LatencyMean float64
	// Throughput in tuples/s at the sinks over the wall-clock run.
	Throughput float64
	TuplesIn   uint64
	TuplesOut  uint64
	LateDrops  uint64
	// UDOPanics counts tuples dropped because a user-defined operator
	// panicked; the engine isolates such failures per tuple.
	UDOPanics uint64
	Elapsed   time.Duration
	// Columnar accounting (zero unless Options.Columnar): batches routed
	// on the columnar plane, and the subset that fell back to per-row
	// materialization because the receiving chain is row-only. A fallback
	// count > 0 on a columnar run means part of the plan executed on the
	// row plane — automatic, but visible.
	ColumnarBatches         uint64
	ColumnarFallbackBatches uint64
	// Fault accounting (all zero unless Options.Faults was set):
	// primitive fault events applied, instance revivals, summed instance
	// downtime, and tuples processed by revived instance lives.
	FaultsInjected  uint64
	Restarts        uint64
	Downtime        time.Duration
	RecoveredTuples uint64
	// PerOperator records tuples consumed and emitted by every logical
	// operator, summed over its instances — the per-operator counters the
	// paper's metric collection exposes alongside end-to-end latency.
	PerOperator map[string]OperatorStats
}

// OperatorStats are one operator's aggregate counters.
type OperatorStats struct {
	In  uint64
	Out uint64
}

// Runtime is a deployed dataflow.
type Runtime struct {
	plan *core.PQP
	opts Options

	insts map[string][]*opInstance
	// chainHead maps every operator ID to the head of the chain hosting
	// it; faults target logical operators, which chaining may have fused.
	chainHead map[string]string
	// linkFaults holds the shared link-fault state per targeted
	// downstream chain head (nil map unless the schedule has link events).
	linkFaults map[string]*linkFault
	faultWG    sync.WaitGroup
	report     reportState
	// needsWM is true when some operator consumes watermarks (time-policy
	// window, session, or time-windowed join). Plans without one are
	// arrival-driven end to end, and sources skip watermark emission: the
	// markers would only add channel traffic nobody advances on.
	needsWM bool
}

// needsWatermarks reports whether any operator in the plan fires or
// evicts on watermark advance. Session windows are always time-policy,
// so checking Window.Policy covers them too.
func needsWatermarks(plan *core.PQP) bool {
	for _, op := range plan.Operators {
		if op.Agg != nil && op.Agg.Window.Policy == core.PolicyTime {
			return true
		}
		if op.Join != nil && op.Join.Window.Policy == core.PolicyTime {
			return true
		}
	}
	return false
}

type reportState struct {
	mu        sync.Mutex
	latencies *stats.Sample
	tuplesIn  uint64
	tuplesOut uint64
	lateDrops uint64
	udoPanics uint64
	lastPanic error

	faultsInjected  uint64
	restarts        uint64
	downtime        time.Duration
	recoveredTuples uint64
	deadOf          map[string]int // op → instances dead for good
	fatal           error          // *chaos.FaultError when an operator fully died
}

// New validates the plan and wires the runtime (goroutines start in Run).
func New(plan *core.PQP, opts Options) (*Runtime, error) {
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	if opts.ChannelCapacity <= 0 {
		opts.ChannelCapacity = 256
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 64
	}
	if opts.BatchLinger <= 0 {
		opts.BatchLinger = time.Millisecond
	}
	if opts.ColumnarBatch <= 0 {
		opts.ColumnarBatch = 1024
	}
	if opts.WatermarkInterval <= 0 {
		opts.WatermarkInterval = 256
	}
	if opts.Throttle || len(opts.Faults) > 0 {
		// Pacing and fault injection act per row; the columnar plane
		// would bypass both. Automatic fallback to the row plane.
		opts.Columnar = false
	}
	for _, src := range plan.Sources() {
		if _, ok := opts.Sources[src.ID]; !ok {
			return nil, fmt.Errorf("engine: no source generator for %q", src.ID)
		}
	}
	for _, op := range plan.Operators {
		if op.Kind == core.OpUDO {
			if op.UDO == nil {
				return nil, fmt.Errorf("engine: UDO operator %q has no spec", op.ID)
			}
			if _, ok := opts.UDOs[op.UDO.Name]; !ok {
				return nil, fmt.Errorf("engine: no UDO implementation registered for %q", op.UDO.Name)
			}
		}
	}
	r := &Runtime{
		plan:    plan,
		opts:    opts,
		insts:   make(map[string][]*opInstance),
		needsWM: needsWatermarks(plan),
	}
	r.report.latencies = stats.NewSample(4096)
	if err := r.build(); err != nil {
		return nil, err
	}
	if len(opts.Faults) > 0 {
		r.setupFaults()
	}
	return r, nil
}

// build creates instances (one set per operator chain) and routing
// tables between chain boundaries.
func (r *Runtime) build() error {
	chains, err := buildChains(r.plan, r.opts.ChainOperators)
	if err != nil {
		return err
	}
	// Create instances per chain, keyed by the chain head's operator ID.
	tails := make(map[string]string, len(chains)) // head → tail op ID
	r.chainHead = make(map[string]string, len(r.plan.Operators))
	for _, chain := range chains {
		head := r.plan.Op(chain[0])
		ops := make([]*core.Operator, len(chain))
		for i, id := range chain {
			ops[i] = r.plan.Op(id)
			r.chainHead[id] = head.ID
		}
		insts := make([]*opInstance, head.Parallelism)
		colOK := head.Kind != core.OpSource && chainAcceptsColumns(ops)
		for i := range insts {
			insts[i] = newOpInstance(r, ops, i)
			insts[i].colOK = colOK
		}
		r.insts[head.ID] = insts
		tails[head.ID] = chain[len(chain)-1]
	}
	// Wire chain tails to downstream chain heads. Every external consumer
	// of a chain tail is itself a chain head: a fused operator's single
	// producer is its chain predecessor, so edges leaving a chain can
	// only land on heads. Join sides follow the plan's edge order.
	for headID, insts := range r.insts {
		tailID := tails[headID]
		tailOp := r.plan.Op(tailID)
		for _, downID := range r.plan.Downstream(tailID) {
			down := r.plan.Op(downID)
			targets, ok := r.insts[downID]
			if !ok {
				return fmt.Errorf("engine: internal error: edge %s→%s lands inside a chain", tailID, downID)
			}
			side := 0
			if down.Kind == core.OpJoin {
				for i, u := range r.plan.Upstream(downID) {
					if u == tailID {
						side = i % 2
					}
				}
			}
			// Watermark slots: every target keeps one watermark per
			// producing instance per side. This edge's producers claim the
			// next tailOp.Parallelism slots — read the base before the
			// expectEOS bump that reserves them.
			base := int32(targets[0].expectEOS[side])
			for _, inst := range insts {
				nr := newRouter(down, targets, side, inst.idx, r.opts.BatchSize)
				nr.wmID = base + int32(inst.idx)
				inst.routes = append(inst.routes, nr)
			}
			for _, dinst := range targets {
				dinst.expectEOS[side] += tailOp.Parallelism
			}
		}
	}
	// Columnar sources and tail joins: produce column batches only when
	// some route can consume them; otherwise the row path avoids a
	// pointless fill-then-materialize round trip per tuple. A join
	// qualifies only as a single-op chain (joins are always chain heads;
	// with fused followers its output must flow through the row chain).
	if r.opts.Columnar {
		for id, insts := range r.insts {
			kind := r.plan.Op(id).Kind
			if kind != core.OpSource && kind != core.OpJoin {
				continue
			}
			for _, inst := range insts {
				if kind == core.OpJoin && len(inst.chain) != 1 {
					break
				}
				for _, rt := range inst.routes {
					if rt.colOK {
						if kind == core.OpSource {
							inst.colSrc = true
						} else {
							inst.colJoin = true
						}
						break
					}
				}
			}
		}
	}
	return nil
}

// Run starts every instance, drives the sources to completion (or ctx
// cancellation) and returns the measured report.
func (r *Runtime) Run(ctx context.Context) (*Report, error) {
	start := time.Now()
	var cancelFaults context.CancelFunc
	if len(r.opts.Faults) > 0 {
		var fctx context.Context
		fctx, cancelFaults = context.WithCancel(ctx)
		r.faultWG.Add(1)
		go func() {
			defer r.faultWG.Done()
			r.driveFaults(fctx, start)
		}()
	}
	var wg sync.WaitGroup
	for _, insts := range r.insts {
		for _, inst := range insts {
			wg.Add(1)
			go func(inst *opInstance) {
				defer wg.Done()
				r.supervise(ctx, inst)
			}(inst)
		}
	}
	wg.Wait()
	if cancelFaults != nil {
		cancelFaults()
		r.faultWG.Wait()
	}
	elapsed := time.Since(start)

	r.report.mu.Lock()
	defer r.report.mu.Unlock()
	rep := &Report{
		PerOperator: make(map[string]OperatorStats, len(r.insts)),
		LatencyP50:  r.report.latencies.Quantile(0.5),
		LatencyP95:  r.report.latencies.Quantile(0.95),
		LatencyP99:  r.report.latencies.Quantile(0.99),
		LatencyMean: r.report.latencies.Mean(),
		TuplesIn:    r.report.tuplesIn,
		TuplesOut:   r.report.tuplesOut,
		LateDrops:   r.report.lateDrops,
		UDOPanics:   r.report.udoPanics,
		Elapsed:     elapsed,

		FaultsInjected:  r.report.faultsInjected,
		Restarts:        r.report.restarts,
		Downtime:        r.report.downtime,
		RecoveredTuples: r.report.recoveredTuples,
	}
	for _, insts := range r.insts {
		for _, inst := range insts {
			for _, c := range inst.chain {
				s := rep.PerOperator[c.op.ID]
				s.In += c.nIn
				s.Out += c.nOut
				rep.PerOperator[c.op.ID] = s
			}
			for _, route := range inst.routes {
				rep.ColumnarBatches += route.colBatches
				rep.ColumnarFallbackBatches += route.colFallback
			}
		}
	}
	if secs := elapsed.Seconds(); secs > 0 {
		rep.Throughput = float64(rep.TuplesOut) / secs
	}
	if ctx.Err() != nil && ctx.Err() != context.Canceled {
		return rep, ctx.Err()
	}
	if r.report.fatal != nil {
		return rep, r.report.fatal
	}
	return rep, nil
}

func (r *Runtime) recordIngest(n uint64) {
	r.report.mu.Lock()
	r.report.tuplesIn += n
	r.report.mu.Unlock()
}

// recordUDOPanic counts an isolated user-operator failure; the caller
// re-wraps the recovered value into a typed *CrashError so the cause
// survives on the error plane.
func (r *Runtime) recordUDOPanic(err *CrashError) {
	r.report.mu.Lock()
	r.report.udoPanics++
	r.report.lastPanic = err
	r.report.mu.Unlock()
}

func (r *Runtime) recordLateDrop() {
	r.report.mu.Lock()
	r.report.lateDrops++
	r.report.mu.Unlock()
}
