package engine

import (
	"context"
	"sort"
	"sync"
	"testing"
	"time"

	"pdspbench/internal/core"
	"pdspbench/internal/stream"
	"pdspbench/internal/testutil"
	"pdspbench/internal/tuple"
)

// collectSink gathers sink deliveries thread-safely.
type collectSink struct {
	mu  sync.Mutex
	out []*tuple.Tuple
}

func (c *collectSink) tap(op string, t *tuple.Tuple) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.out = append(c.out, t.Clone())
}

func (c *collectSink) tuples() []*tuple.Tuple {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*tuple.Tuple, len(c.out))
	copy(out, c.out)
	return out
}

// kv builds a (int key, double value) tuple at the given event time (ms).
// Zero is a legitimate event time: "unset" is tuple.NoEventTime, so no
// offset trickery is needed to keep the source from re-stamping.
func kv(etMs int64, key int64, val float64) *tuple.Tuple {
	return &tuple.Tuple{
		Values:    []tuple.Value{tuple.Int(key), tuple.Double(val)},
		EventTime: etMs * 1e6,
	}
}

var kvSchema = tuple.NewSchema(
	tuple.Field{Name: "k", Type: tuple.TypeInt},
	tuple.Field{Name: "v", Type: tuple.TypeDouble},
)

// runPlan executes a plan over the given per-source tuples and returns
// sink deliveries.
func runPlan(t *testing.T, plan *core.PQP, sources map[string][]*tuple.Tuple, udos map[string]UDOFactory) []*tuple.Tuple {
	t.Helper()
	sink := &collectSink{}
	srcFactories := make(map[string]SourceFactory, len(sources))
	for id, ts := range sources {
		ts := ts
		srcFactories[id] = func(idx int) SourceGenerator {
			if idx == 0 {
				return stream.NewFromTuples(ts...)
			}
			return stream.NewFromTuples() // extra instances emit nothing
		}
	}
	rt, err := New(plan, Options{Sources: srcFactories, UDOs: udos, SinkTap: sink.tap})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := rt.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return sink.tuples()
}

// simplePlan builds src → filter(v > lit) → sink with the given
// parallelism for the filter.
func filterPlan(par int, strategy core.PartitionStrategy) *core.PQP {
	p := core.NewPQP("filter-test", "linear")
	p.Add(&core.Operator{ID: "src", Kind: core.OpSource, Parallelism: 1,
		Source: &core.SourceSpec{Schema: kvSchema, EventRate: 1000}, OutWidth: 2})
	p.Add(&core.Operator{ID: "f", Kind: core.OpFilter, Parallelism: par, Partition: strategy,
		Filter:   &core.FilterSpec{Field: 1, Fn: core.FilterGreater, Literal: tuple.Double(0.5), Selectivity: 0.5},
		OutWidth: 2})
	p.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1, Partition: core.PartitionRebalance})
	p.Connect("src", "f")
	p.Connect("f", "sink")
	return p
}

func TestFilterDropsNonMatching(t *testing.T) {
	in := []*tuple.Tuple{kv(1, 1, 0.2), kv(2, 2, 0.7), kv(3, 3, 0.5), kv(4, 4, 0.9)}
	out := runPlan(t, filterPlan(1, core.PartitionRebalance), map[string][]*tuple.Tuple{"src": in}, nil)
	if len(out) != 2 {
		t.Fatalf("delivered %d tuples, want 2 (0.7 and 0.9)", len(out))
	}
	var vals []float64
	for _, o := range out {
		vals = append(vals, o.At(1).D)
	}
	sort.Float64s(vals)
	if vals[0] != 0.7 || vals[1] != 0.9 {
		t.Errorf("filter passed %v, want [0.7 0.9]", vals)
	}
}

func TestParallelFilterPreservesAllMatches(t *testing.T) {
	var in []*tuple.Tuple
	want := 0
	for i := 0; i < 500; i++ {
		v := float64(i%10) / 10
		in = append(in, kv(int64(i), int64(i), v))
		if v > 0.5 {
			want++
		}
	}
	for _, strat := range []core.PartitionStrategy{core.PartitionRebalance, core.PartitionHash, core.PartitionForward} {
		out := runPlan(t, filterPlan(4, strat), map[string][]*tuple.Tuple{"src": in}, nil)
		if len(out) != want {
			t.Errorf("partition=%v: delivered %d, want %d", strat, len(out), want)
		}
	}
}

func TestHashPartitioningGroupsKeys(t *testing.T) {
	// With hash partitioning into a keyed count window, each key's window
	// fires exactly when that key has seen LengthTups tuples, regardless
	// of operator parallelism — only correct if all tuples of a key reach
	// the same instance.
	p := core.NewPQP("hash-test", "linear")
	p.Add(&core.Operator{ID: "src", Kind: core.OpSource, Parallelism: 1,
		Source: &core.SourceSpec{Schema: kvSchema, EventRate: 1000}, OutWidth: 2})
	p.Add(&core.Operator{ID: "agg", Kind: core.OpAggregate, Parallelism: 4, Partition: core.PartitionHash,
		Agg: &core.AggregateSpec{
			Window: core.WindowSpec{Type: core.WindowTumbling, Policy: core.PolicyCount, LengthTups: 5},
			Fn:     core.AggSum, Field: 1, KeyField: 0,
		}, OutWidth: 2})
	p.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1, Partition: core.PartitionRebalance})
	p.Connect("src", "agg")
	p.Connect("agg", "sink")

	// 3 keys × 10 tuples each, value 1.0 → each key fires twice with sum 5.
	var in []*tuple.Tuple
	for i := 0; i < 30; i++ {
		in = append(in, kv(int64(i), int64(i%3), 1.0))
	}
	out := runPlan(t, p, map[string][]*tuple.Tuple{"src": in}, nil)
	if len(out) != 6 {
		t.Fatalf("delivered %d windows, want 6 (3 keys × 2 firings)", len(out))
	}
	for _, o := range out {
		if o.At(1).D != 5 {
			t.Errorf("window sum = %v, want 5 (key %v)", o.At(1).D, o.At(0))
		}
	}
}

func TestTumblingCountWindowAggregates(t *testing.T) {
	cases := []struct {
		fn   core.AggFn
		want []float64 // per firing over values 1..4 then 5..8
	}{
		{core.AggSum, []float64{10, 26}},
		{core.AggMin, []float64{1, 5}},
		{core.AggMax, []float64{4, 8}},
		{core.AggAvg, []float64{2.5, 6.5}},
		{core.AggMean, []float64{2.5, 6.5}},
		{core.AggCount, []float64{4, 4}},
	}
	for _, c := range cases {
		p := core.NewPQP("agg-test", "linear")
		p.Add(&core.Operator{ID: "src", Kind: core.OpSource, Parallelism: 1,
			Source: &core.SourceSpec{Schema: kvSchema, EventRate: 1000}, OutWidth: 2})
		p.Add(&core.Operator{ID: "agg", Kind: core.OpAggregate, Parallelism: 1, Partition: core.PartitionHash,
			Agg: &core.AggregateSpec{
				Window: core.WindowSpec{Type: core.WindowTumbling, Policy: core.PolicyCount, LengthTups: 4},
				Fn:     c.fn, Field: 1, KeyField: -1,
			}, OutWidth: 1})
		p.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1})
		p.Connect("src", "agg")
		p.Connect("agg", "sink")

		var in []*tuple.Tuple
		for i := 1; i <= 8; i++ {
			in = append(in, kv(int64(i), 0, float64(i)))
		}
		out := runPlan(t, p, map[string][]*tuple.Tuple{"src": in}, nil)
		if len(out) != 2 {
			t.Fatalf("%v: %d firings, want 2", c.fn, len(out))
		}
		var got []float64
		for _, o := range out {
			got = append(got, o.At(0).D)
		}
		sort.Float64s(got)
		want := append([]float64(nil), c.want...)
		sort.Float64s(want)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%v: firings = %v, want %v", c.fn, got, want)
				break
			}
		}
	}
}

func TestSlidingCountWindow(t *testing.T) {
	// Window length 4, slide 2 (ratio 0.5): firings over [1..4], [3..6], [5..8].
	p := core.NewPQP("slide-test", "linear")
	p.Add(&core.Operator{ID: "src", Kind: core.OpSource, Parallelism: 1,
		Source: &core.SourceSpec{Schema: kvSchema, EventRate: 1000}, OutWidth: 2})
	p.Add(&core.Operator{ID: "agg", Kind: core.OpAggregate, Parallelism: 1, Partition: core.PartitionHash,
		Agg: &core.AggregateSpec{
			Window: core.WindowSpec{Type: core.WindowSliding, Policy: core.PolicyCount, LengthTups: 4, SlideRatio: 0.5},
			Fn:     core.AggSum, Field: 1, KeyField: -1,
		}, OutWidth: 1})
	p.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1})
	p.Connect("src", "agg")
	p.Connect("agg", "sink")

	var in []*tuple.Tuple
	for i := 1; i <= 8; i++ {
		in = append(in, kv(int64(i), 0, float64(i)))
	}
	out := runPlan(t, p, map[string][]*tuple.Tuple{"src": in}, nil)
	var got []float64
	for _, o := range out {
		got = append(got, o.At(0).D)
	}
	sort.Float64s(got)
	want := []float64{10, 18, 26} // 1+2+3+4, 3+4+5+6, 5+6+7+8
	if len(got) != len(want) {
		t.Fatalf("firings = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("firings = %v, want %v", got, want)
		}
	}
}

func TestTumblingTimeWindow(t *testing.T) {
	// 100ms tumbling windows; tuples at 10,20,110,120,250ms with values
	// 1,2,3,4,5 → windows [0,100)=3, [100,200)=7; the 250ms tuple's
	// window [200,300) is flushed at EOS = 5.
	p := core.NewPQP("time-test", "linear")
	p.Add(&core.Operator{ID: "src", Kind: core.OpSource, Parallelism: 1,
		Source: &core.SourceSpec{Schema: kvSchema, EventRate: 1000}, OutWidth: 2})
	p.Add(&core.Operator{ID: "agg", Kind: core.OpAggregate, Parallelism: 1, Partition: core.PartitionHash,
		Agg: &core.AggregateSpec{
			Window: core.WindowSpec{Type: core.WindowTumbling, Policy: core.PolicyTime, LengthMs: 100},
			Fn:     core.AggSum, Field: 1, KeyField: -1,
		}, OutWidth: 1})
	p.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1})
	p.Connect("src", "agg")
	p.Connect("agg", "sink")

	in := []*tuple.Tuple{kv(10, 0, 1), kv(20, 0, 2), kv(110, 0, 3), kv(120, 0, 4), kv(250, 0, 5)}
	out := runPlan(t, p, map[string][]*tuple.Tuple{"src": in}, nil)
	var got []float64
	for _, o := range out {
		got = append(got, o.At(0).D)
	}
	sort.Float64s(got)
	want := []float64{3, 5, 7}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("windows = %v, want %v", got, want)
	}
}

func TestSlidingTimeWindowAssignsToOverlappingPanes(t *testing.T) {
	// Length 100ms, slide 50ms. A tuple at t=60 belongs to panes starting
	// at 0 and 50. Values: t=60→1, t=120→2, t=210→3 (flush fires rest).
	p := core.NewPQP("slidetime-test", "linear")
	p.Add(&core.Operator{ID: "src", Kind: core.OpSource, Parallelism: 1,
		Source: &core.SourceSpec{Schema: kvSchema, EventRate: 1000}, OutWidth: 2})
	p.Add(&core.Operator{ID: "agg", Kind: core.OpAggregate, Parallelism: 1, Partition: core.PartitionHash,
		Agg: &core.AggregateSpec{
			Window: core.WindowSpec{Type: core.WindowSliding, Policy: core.PolicyTime, LengthMs: 100, SlideRatio: 0.5},
			Fn:     core.AggSum, Field: 1, KeyField: -1,
		}, OutWidth: 1})
	p.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1})
	p.Connect("src", "agg")
	p.Connect("agg", "sink")

	in := []*tuple.Tuple{kv(60, 0, 1), kv(120, 0, 2), kv(210, 0, 3)}
	out := runPlan(t, p, map[string][]*tuple.Tuple{"src": in}, nil)
	// Panes: [0,100)={1}, [50,150)={1,2}, [100,200)={2}, [150,250)={3}, [200,300)={3}.
	var got []float64
	for _, o := range out {
		got = append(got, o.At(0).D)
	}
	sort.Float64s(got)
	want := []float64{1, 2, 3, 3, 3}
	if len(got) != len(want) {
		t.Fatalf("pane sums = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pane sums = %v, want %v", got, want)
		}
	}
}

func TestLateTupleDropped(t *testing.T) {
	p := core.NewPQP("late-test", "linear")
	p.Add(&core.Operator{ID: "src", Kind: core.OpSource, Parallelism: 1,
		Source: &core.SourceSpec{Schema: kvSchema, EventRate: 1000}, OutWidth: 2})
	p.Add(&core.Operator{ID: "agg", Kind: core.OpAggregate, Parallelism: 1, Partition: core.PartitionHash,
		Agg: &core.AggregateSpec{
			Window: core.WindowSpec{Type: core.WindowTumbling, Policy: core.PolicyTime, LengthMs: 100},
			Fn:     core.AggSum, Field: 1, KeyField: -1,
		}, OutWidth: 1})
	p.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1})
	p.Connect("src", "agg")
	p.Connect("agg", "sink")

	// t=250 advances the watermark past [0,100); t=10 is then late.
	in := []*tuple.Tuple{kv(10, 0, 1), kv(250, 0, 2), kv(20, 0, 99)}
	sink := &collectSink{}
	rt, err := New(p, Options{
		Sources: map[string]SourceFactory{"src": func(int) SourceGenerator { return stream.NewFromTuples(in...) }},
		SinkTap: sink.tap,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.LateDrops != 1 {
		t.Errorf("LateDrops = %d, want 1", rep.LateDrops)
	}
	var sum float64
	for _, o := range sink.tuples() {
		sum += o.At(0).D
	}
	if sum != 3 { // 1 + 2; the 99 must not appear anywhere
		t.Errorf("total of window sums = %v, want 3", sum)
	}
}

func joinTestPlan(window core.WindowSpec, par int) *core.PQP {
	p := core.NewPQP("join-test", "2-way-join")
	for _, id := range []string{"left", "right"} {
		p.Add(&core.Operator{ID: id, Kind: core.OpSource, Parallelism: 1,
			Source: &core.SourceSpec{Schema: kvSchema, EventRate: 1000}, OutWidth: 2})
	}
	p.Add(&core.Operator{ID: "join", Kind: core.OpJoin, Parallelism: par, Partition: core.PartitionHash,
		Join: &core.JoinSpec{Window: window, LeftField: 0, RightField: 0}, OutWidth: 4})
	p.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1})
	p.Connect("left", "join")
	p.Connect("right", "join")
	p.Connect("join", "sink")
	return p
}

func TestWindowedJoinMatchesKeysWithinWindow(t *testing.T) {
	w := core.WindowSpec{Type: core.WindowSliding, Policy: core.PolicyTime, LengthMs: 100, SlideRatio: 0.5}
	left := []*tuple.Tuple{kv(10, 1, 1.0), kv(20, 2, 2.0), kv(500, 3, 3.0)}
	right := []*tuple.Tuple{kv(30, 1, 10.0), kv(40, 9, 20.0), kv(490, 3, 30.0)}
	out := runPlan(t, joinTestPlan(w, 1), map[string][]*tuple.Tuple{"left": left, "right": right}, nil)
	// Matches: key 1 (|10-30| ≤ 100) and key 3 (|500-490| ≤ 100); key 2/9 unmatched.
	if len(out) != 2 {
		t.Fatalf("join emitted %d, want 2: %v", len(out), out)
	}
	for _, o := range out {
		if o.Width() != 4 {
			t.Errorf("joined width = %d, want 4", o.Width())
		}
		if !o.At(0).Equal(o.At(2)) {
			t.Errorf("joined keys differ: %v vs %v", o.At(0), o.At(2))
		}
	}
}

func TestWindowedJoinRespectsTimeBound(t *testing.T) {
	w := core.WindowSpec{Type: core.WindowSliding, Policy: core.PolicyTime, LengthMs: 50, SlideRatio: 0.5}
	left := []*tuple.Tuple{kv(10, 1, 1.0)}
	right := []*tuple.Tuple{kv(200, 1, 10.0)} // same key, 190ms apart > 50ms window
	out := runPlan(t, joinTestPlan(w, 1), map[string][]*tuple.Tuple{"left": left, "right": right}, nil)
	if len(out) != 0 {
		t.Fatalf("join emitted %d for out-of-window pair, want 0", len(out))
	}
}

func TestParallelJoinEqualsSequentialJoin(t *testing.T) {
	w := core.WindowSpec{Type: core.WindowSliding, Policy: core.PolicyTime, LengthMs: 1000, SlideRatio: 0.5}
	var left, right []*tuple.Tuple
	for i := 0; i < 60; i++ {
		left = append(left, kv(int64(i), int64(i%5), float64(i)))
		right = append(right, kv(int64(i+2), int64(i%5), float64(100+i)))
	}
	seq := runPlan(t, joinTestPlan(w, 1), map[string][]*tuple.Tuple{"left": left, "right": right}, nil)
	par := runPlan(t, joinTestPlan(w, 4), map[string][]*tuple.Tuple{"left": left, "right": right}, nil)
	if len(seq) == 0 {
		t.Fatal("sequential join produced nothing; test is vacuous")
	}
	if len(par) != len(seq) {
		t.Errorf("parallel join emitted %d, sequential %d — hash partitioning broke join completeness", len(par), len(seq))
	}
}

func TestCountPolicyJoinBoundsBuffer(t *testing.T) {
	w := core.WindowSpec{Type: core.WindowTumbling, Policy: core.PolicyCount, LengthTups: 2}
	// Left fills with keys 1,2,3 (buffer cap 2 evicts key 1), then right
	// key 1 arrives: no match; right key 3 arrives: match.
	left := []*tuple.Tuple{kv(1, 1, 1), kv(2, 2, 2), kv(3, 3, 3)}
	right := []*tuple.Tuple{kv(10, 1, 10), kv(11, 3, 30)}
	// Single-instance join and serialized sources: left first by event time
	// is not guaranteed across goroutines, so run repeatedly to look for
	// violations of the buffer bound (matches with evicted entries).
	for i := 0; i < 5; i++ {
		out := runPlan(t, joinTestPlan(w, 1), map[string][]*tuple.Tuple{"left": left, "right": right}, nil)
		for _, o := range out {
			if o.At(0).I == 1 && o.At(2).I == 1 {
				// Key 1 may legitimately match if right#1 arrived before
				// the left buffer evicted key 1 — interleaving dependent —
				// but key 3 must always be able to match.
				continue
			}
		}
		found3 := false
		for _, o := range out {
			if o.At(0).I == 3 {
				found3 = true
			}
		}
		if !found3 {
			t.Fatalf("run %d: key-3 match missing: %v", i, out)
		}
	}
}

// doubler is a test UDO that emits every tuple twice and counts flushes.
type doubler struct {
	flushed *int32
	mu      *sync.Mutex
}

func (d *doubler) Process(t *tuple.Tuple, emit func(*tuple.Tuple)) {
	emit(t)
	emit(t.Clone())
}

func (d *doubler) Flush(emit func(*tuple.Tuple)) {
	d.mu.Lock()
	*d.flushed++
	d.mu.Unlock()
}

func TestUDOProcessAndFlush(t *testing.T) {
	p := core.NewPQP("udo-test", "custom")
	p.Add(&core.Operator{ID: "src", Kind: core.OpSource, Parallelism: 1,
		Source: &core.SourceSpec{Schema: kvSchema, EventRate: 1000}, OutWidth: 2})
	p.Add(&core.Operator{ID: "u", Kind: core.OpUDO, Parallelism: 3, Partition: core.PartitionRebalance,
		UDO: &core.UDOSpec{Name: "doubler", CostFactor: 1, Selectivity: 2}, OutWidth: 2})
	p.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1})
	p.Connect("src", "u")
	p.Connect("u", "sink")

	var flushed int32
	var mu sync.Mutex
	udos := map[string]UDOFactory{
		"doubler": func(idx int) UDO { return &doubler{flushed: &flushed, mu: &mu} },
	}
	in := []*tuple.Tuple{kv(1, 1, 1), kv(2, 2, 2), kv(3, 3, 3)}
	out := runPlan(t, p, map[string][]*tuple.Tuple{"src": in}, udos)
	if len(out) != 6 {
		t.Errorf("UDO emitted %d, want 6 (each tuple doubled)", len(out))
	}
	mu.Lock()
	defer mu.Unlock()
	if flushed != 3 {
		t.Errorf("Flush called %d times, want 3 (one per instance)", flushed)
	}
}

func TestNewRejectsMissingSourceAndUDO(t *testing.T) {
	p := filterPlan(1, core.PartitionRebalance)
	if _, err := New(p, Options{}); err == nil {
		t.Error("New accepted plan without source generators")
	}
	u := core.NewPQP("udo", "custom")
	u.Add(&core.Operator{ID: "src", Kind: core.OpSource, Parallelism: 1,
		Source: &core.SourceSpec{Schema: kvSchema, EventRate: 1}, OutWidth: 2})
	u.Add(&core.Operator{ID: "x", Kind: core.OpUDO, Parallelism: 1,
		UDO: &core.UDOSpec{Name: "missing"}})
	u.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1})
	u.Connect("src", "x")
	u.Connect("x", "sink")
	_, err := New(u, Options{Sources: map[string]SourceFactory{
		"src": func(int) SourceGenerator { return stream.NewFromTuples() },
	}})
	if err == nil {
		t.Error("New accepted unregistered UDO")
	}
}

func TestReportCountsAndLatency(t *testing.T) {
	in := []*tuple.Tuple{kv(1, 1, 0.9), kv(2, 2, 0.8), kv(3, 3, 0.1)}
	sink := &collectSink{}
	rt, err := New(filterPlan(2, core.PartitionRebalance), Options{
		Sources: map[string]SourceFactory{"src": func(idx int) SourceGenerator {
			if idx == 0 {
				return stream.NewFromTuples(in...)
			}
			return stream.NewFromTuples()
		}},
		SinkTap: sink.tap,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TuplesIn != 3 {
		t.Errorf("TuplesIn = %d, want 3", rep.TuplesIn)
	}
	if rep.TuplesOut != 2 {
		t.Errorf("TuplesOut = %d, want 2", rep.TuplesOut)
	}
	if rep.LatencyP50 <= 0 {
		t.Errorf("LatencyP50 = %v, want > 0 (ingest-to-sink wall time)", rep.LatencyP50)
	}
	if rep.Throughput <= 0 {
		t.Errorf("Throughput = %v, want > 0", rep.Throughput)
	}
}

func TestContextCancellationStopsRun(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	// An unbounded source with a cancelled context must terminate.
	p := filterPlan(2, core.PartitionRebalance)
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	rt, err := New(p, Options{
		Sources: map[string]SourceFactory{"src": func(int) SourceGenerator {
			return stream.Func(func() (*tuple.Tuple, bool) {
				n++
				if n == 100 {
					cancel()
				}
				return kv(int64(n), int64(n), 0.9), true
			})
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(ctx); err != nil {
		t.Fatalf("Run after cancel: %v", err)
	}
}

func TestMultiStageTopology(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	// src → filter → agg(count tumbling keyed) → sink exercises chained
	// stateful routing end to end with parallelism on every stage.
	p := core.NewPQP("e2e", "linear")
	p.Add(&core.Operator{ID: "src", Kind: core.OpSource, Parallelism: 2,
		Source: &core.SourceSpec{Schema: kvSchema, EventRate: 1000}, OutWidth: 2})
	p.Add(&core.Operator{ID: "f", Kind: core.OpFilter, Parallelism: 3, Partition: core.PartitionRebalance,
		Filter: &core.FilterSpec{Field: 1, Fn: core.FilterGreaterEq, Literal: tuple.Double(0), Selectivity: 1}, OutWidth: 2})
	p.Add(&core.Operator{ID: "agg", Kind: core.OpAggregate, Parallelism: 2, Partition: core.PartitionHash,
		Agg: &core.AggregateSpec{
			Window: core.WindowSpec{Type: core.WindowTumbling, Policy: core.PolicyCount, LengthTups: 10},
			Fn:     core.AggCount, Field: 1, KeyField: 0,
		}, OutWidth: 2})
	p.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 2, Partition: core.PartitionRebalance})
	p.Connect("src", "f")
	p.Connect("f", "agg")
	p.Connect("agg", "sink")

	var a, b []*tuple.Tuple
	for i := 0; i < 100; i++ {
		a = append(a, kv(int64(i), int64(i%4), 1))
		b = append(b, kv(int64(i), int64(i%4), 1))
	}
	sink := &collectSink{}
	rt, err := New(p, Options{
		Sources: map[string]SourceFactory{"src": func(idx int) SourceGenerator {
			if idx == 0 {
				return stream.NewFromTuples(a...)
			}
			return stream.NewFromTuples(b...)
		}},
		SinkTap: sink.tap,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// 200 tuples, 4 keys × 50 each, windows of 10 → 20 firings, each
	// counting exactly 10.
	out := sink.tuples()
	if len(out) != 20 {
		t.Fatalf("firings = %d, want 20", len(out))
	}
	for _, o := range out {
		if o.At(1).D != 10 {
			t.Errorf("count = %v, want 10", o.At(1).D)
		}
	}
}

func TestThrottlePacesSource(t *testing.T) {
	// 500 tuples at 2000/s should take ≈250ms wall-clock when throttled,
	// and far less unthrottled.
	build := func(throttle bool) time.Duration {
		p := filterPlan(1, core.PartitionRebalance)
		var in []*tuple.Tuple
		for i := 0; i < 500; i++ {
			in = append(in, kv(int64(i+1), int64(i), 0.9))
		}
		p.Op("src").Source.EventRate = 2000
		rt, err := New(p, Options{
			Sources: map[string]SourceFactory{"src": func(int) SourceGenerator {
				return stream.NewFromTuples(in...)
			}},
			Throttle: throttle,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := rt.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep.Elapsed
	}
	throttled := build(true)
	unthrottled := build(false)
	if throttled < 150*time.Millisecond {
		t.Errorf("throttled run finished in %v; pacing not applied", throttled)
	}
	if unthrottled > throttled/2 {
		t.Errorf("unthrottled run (%v) not much faster than throttled (%v)", unthrottled, throttled)
	}
}

func TestMultipleSinksEachReceive(t *testing.T) {
	// A plan fanning out to two sinks delivers every passing tuple to both.
	p := core.NewPQP("fanout", "custom")
	p.Add(&core.Operator{ID: "src", Kind: core.OpSource, Parallelism: 1,
		Source: &core.SourceSpec{Schema: kvSchema, EventRate: 1000}, OutWidth: 2})
	p.Add(&core.Operator{ID: "f", Kind: core.OpFilter, Parallelism: 2, Partition: core.PartitionRebalance,
		Filter:   &core.FilterSpec{Field: 1, Fn: core.FilterGreaterEq, Literal: tuple.Double(0), Selectivity: 1},
		OutWidth: 2})
	p.Add(&core.Operator{ID: "sinkA", Kind: core.OpSink, Parallelism: 1, Partition: core.PartitionRebalance})
	p.Add(&core.Operator{ID: "sinkB", Kind: core.OpSink, Parallelism: 1, Partition: core.PartitionRebalance})
	p.Connect("src", "f")
	p.Connect("f", "sinkA")
	p.Connect("f", "sinkB")

	counts := map[string]int{}
	var mu sync.Mutex
	var in []*tuple.Tuple
	for i := 0; i < 50; i++ {
		in = append(in, kv(int64(i+1), int64(i), 0.5))
	}
	rt, err := New(p, Options{
		Sources: map[string]SourceFactory{"src": func(int) SourceGenerator { return stream.NewFromTuples(in...) }},
		SinkTap: func(op string, tp *tuple.Tuple) {
			mu.Lock()
			counts[op]++
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if counts["sinkA"] != 50 || counts["sinkB"] != 50 {
		t.Errorf("sink deliveries = %v, want 50 each", counts)
	}
	if rep.TuplesOut != 100 {
		t.Errorf("TuplesOut = %d, want 100 across both sinks", rep.TuplesOut)
	}
}

func TestPerOperatorCounters(t *testing.T) {
	in := []*tuple.Tuple{kv(1, 1, 0.9), kv(2, 2, 0.1), kv(3, 3, 0.8)}
	p := filterPlan(2, core.PartitionRebalance)
	rt, err := New(p, Options{
		Sources: map[string]SourceFactory{"src": func(idx int) SourceGenerator {
			if idx == 0 {
				return stream.NewFromTuples(in...)
			}
			return stream.NewFromTuples()
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.PerOperator["src"].Out; got != 3 {
		t.Errorf("src out = %d, want 3", got)
	}
	if got := rep.PerOperator["f"]; got.In != 3 || got.Out != 2 {
		t.Errorf("filter counters = %+v, want in=3 out=2 (0.1 dropped)", got)
	}
	if got := rep.PerOperator["sink"].In; got != 2 {
		t.Errorf("sink in = %d, want 2", got)
	}
}
