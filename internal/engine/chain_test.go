package engine

import (
	"context"
	"fmt"
	"testing"

	"pdspbench/internal/core"
	"pdspbench/internal/stream"
	"pdspbench/internal/tuple"
)

// chainablePlan: src → filter → map(identity) → agg → sink where filter,
// map and agg share parallelism and forward partitioning — the filter→map
// link is fusable; the agg needs hash partitioning so it starts a new
// chain.
func chainablePlan(par int) *core.PQP {
	p := core.NewPQP("chain-test", "linear")
	p.Add(&core.Operator{ID: "src", Kind: core.OpSource, Parallelism: 1,
		Source: &core.SourceSpec{Schema: kvSchema, EventRate: 1000}, OutWidth: 2})
	p.Add(&core.Operator{ID: "f", Kind: core.OpFilter, Parallelism: par, Partition: core.PartitionRebalance,
		Filter:   &core.FilterSpec{Field: 1, Fn: core.FilterGreater, Literal: tuple.Double(0.2), Selectivity: 0.8},
		OutWidth: 2})
	p.Add(&core.Operator{ID: "m", Kind: core.OpMap, Parallelism: par, Partition: core.PartitionForward, OutWidth: 2})
	p.Add(&core.Operator{ID: "agg", Kind: core.OpAggregate, Parallelism: par, Partition: core.PartitionHash,
		Agg: &core.AggregateSpec{
			Window: core.WindowSpec{Type: core.WindowTumbling, Policy: core.PolicyCount, LengthTups: 5},
			Fn:     core.AggSum, Field: 1, KeyField: 0,
		}, OutWidth: 2})
	p.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1, Partition: core.PartitionRebalance})
	p.Connect("src", "f")
	p.Connect("f", "m")
	p.Connect("m", "agg")
	p.Connect("agg", "sink")
	return p
}

func TestBuildChainsFusesForwardLinks(t *testing.T) {
	plan := chainablePlan(4)
	chains, err := buildChains(plan, true)
	if err != nil {
		t.Fatal(err)
	}
	// Expected chains: [src], [f m], [agg], [sink].
	byHead := map[string][]string{}
	for _, c := range chains {
		byHead[c[0]] = c
	}
	if got := byHead["f"]; len(got) != 2 || got[1] != "m" {
		t.Errorf("filter chain = %v, want [f m]", got)
	}
	if len(chains) != 4 {
		t.Errorf("chains = %v, want 4 chains", chains)
	}
}

func TestBuildChainsDisabledKeepsSingletons(t *testing.T) {
	plan := chainablePlan(4)
	chains, err := buildChains(plan, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != len(plan.Operators) {
		t.Errorf("chains = %d, want one per operator", len(chains))
	}
}

func TestBuildChainsRespectsBoundaries(t *testing.T) {
	plan := chainablePlan(4)
	// Different parallelism breaks the chain.
	plan.Op("m").Parallelism = 2
	chains, _ := buildChains(plan, true)
	for _, c := range chains {
		if len(c) != 1 {
			t.Errorf("chained across parallelism mismatch: %v", c)
		}
	}
	// Hash partitioning breaks the chain even with equal parallelism.
	plan2 := chainablePlan(4)
	plan2.Op("m").Partition = core.PartitionHash
	chains2, _ := buildChains(plan2, true)
	for _, c := range chains2 {
		if len(c) != 1 {
			t.Errorf("chained across hash boundary: %v", c)
		}
	}
}

// runChained executes the chainable plan with/without fusion and returns
// sink outputs plus the report.
func runChained(t *testing.T, par int, chainOn bool, n int) ([]*tuple.Tuple, *Report) {
	t.Helper()
	var in []*tuple.Tuple
	for i := 0; i < n; i++ {
		in = append(in, kv(int64(i), int64(i%4), float64(i%10)/10))
	}
	sink := &collectSink{}
	rt, err := New(chainablePlan(par), Options{
		Sources: map[string]SourceFactory{"src": func(idx int) SourceGenerator {
			return stream.NewFromTuples(in...)
		}},
		SinkTap:        sink.tap,
		ChainOperators: chainOn,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return sink.tuples(), rep
}

func TestChainingPreservesSemantics(t *testing.T) {
	// Fused and unfused executions must produce identical window results.
	outOff, repOff := runChained(t, 3, false, 400)
	outOn, repOn := runChained(t, 3, true, 400)
	if len(outOn) != len(outOff) {
		t.Fatalf("chaining changed output count: %d vs %d", len(outOn), len(outOff))
	}
	// Window membership depends on cross-instance arrival interleaving
	// (legal nondeterminism shared by both modes), but every tuple lands
	// in exactly one tumbling count window of its key — so the per-key
	// total over all firings is merge-invariant and must match exactly up
	// to floating-point association.
	perKeyTotal := func(ts []*tuple.Tuple) map[string]string {
		sums := map[string]float64{}
		for _, tp := range ts {
			sums[tp.At(0).String()] += tp.At(1).D
		}
		out := map[string]string{}
		for k, v := range sums {
			out[k] = fmt.Sprintf("%.6f", v)
		}
		return out
	}
	a, b := perKeyTotal(outOff), perKeyTotal(outOn)
	if len(a) != len(b) {
		t.Fatalf("chaining changed key set: %v vs %v", a, b)
	}
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("chaining changed key %s total: %s vs %s", k, a[k], b[k])
		}
	}
	// Per-operator counters survive fusion: the fused map still reports
	// its tuples.
	if repOn.PerOperator["m"].In == 0 {
		t.Error("fused operator lost its counters")
	}
	if repOn.PerOperator["m"].In != repOff.PerOperator["m"].In {
		t.Errorf("fused map consumed %d, unfused %d", repOn.PerOperator["m"].In, repOff.PerOperator["m"].In)
	}
}

func TestChainingWorksAcrossWholeAppSuite(t *testing.T) {
	// Smoke: a longer pipeline with consecutive forward links.
	p := core.NewPQP("deep-chain", "linear")
	p.Add(&core.Operator{ID: "src", Kind: core.OpSource, Parallelism: 1,
		Source: &core.SourceSpec{Schema: kvSchema, EventRate: 1000}, OutWidth: 2})
	prev := "src"
	for _, id := range []string{"a", "b", "c", "d"} {
		part := core.PartitionForward
		if id == "a" {
			part = core.PartitionRebalance
		}
		p.Add(&core.Operator{ID: id, Kind: core.OpFilter, Parallelism: 2, Partition: part,
			Filter:   &core.FilterSpec{Field: 1, Fn: core.FilterGreaterEq, Literal: tuple.Double(0), Selectivity: 1},
			OutWidth: 2})
		p.Connect(prev, id)
		prev = id
	}
	p.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 2, Partition: core.PartitionForward})
	p.Connect(prev, "sink")

	chains, err := buildChains(p, true)
	if err != nil {
		t.Fatal(err)
	}
	// a→b→c→d→sink all fuse into one chain.
	var longest int
	for _, c := range chains {
		if len(c) > longest {
			longest = len(c)
		}
	}
	if longest != 5 {
		t.Errorf("longest chain = %d, want 5 (a b c d sink): %v", longest, chains)
	}

	var in []*tuple.Tuple
	for i := 0; i < 100; i++ {
		in = append(in, kv(int64(i), int64(i), 0.5))
	}
	sink := &collectSink{}
	rt, err := New(p, Options{
		Sources: map[string]SourceFactory{"src": func(int) SourceGenerator {
			return stream.NewFromTuples(in...)
		}},
		SinkTap:        sink.tap,
		ChainOperators: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := len(sink.tuples()); got != 100 {
		t.Errorf("delivered %d of 100 through the fused chain", got)
	}
}

func TestChainingNeverFusesJoinInputs(t *testing.T) {
	plan := joinTestPlan(core.WindowSpec{Type: core.WindowSliding, Policy: core.PolicyTime, LengthMs: 100, SlideRatio: 0.5}, 2)
	chains, err := buildChains(plan, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range chains {
		for i, id := range c {
			if plan.Op(id).Kind == core.OpJoin && i != 0 {
				t.Errorf("join fused mid-chain: %v", c)
			}
		}
	}
	// And the join plan still runs correctly with chaining on.
	left := []*tuple.Tuple{kv(10, 1, 1.0)}
	right := []*tuple.Tuple{kv(30, 1, 10.0)}
	sink := &collectSink{}
	rt, err := New(plan, Options{
		Sources: map[string]SourceFactory{
			"left":  func(int) SourceGenerator { return stream.NewFromTuples(left...) },
			"right": func(int) SourceGenerator { return stream.NewFromTuples(right...) },
		},
		SinkTap:        sink.tap,
		ChainOperators: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(sink.tuples()) != 1 {
		t.Errorf("join under chaining emitted %d, want 1", len(sink.tuples()))
	}
}

// faultyUDO panics on every third tuple — failure injection for the
// engine's isolation guarantee.
type faultyUDO struct{ n int }

func (f *faultyUDO) Process(t *tuple.Tuple, emit func(*tuple.Tuple)) {
	f.n++
	if f.n%3 == 0 {
		panic("injected UDO failure")
	}
	emit(t)
}

func (f *faultyUDO) Flush(func(*tuple.Tuple)) {}

func TestUDOPanicIsolation(t *testing.T) {
	p := core.NewPQP("fault-test", "custom")
	p.Add(&core.Operator{ID: "src", Kind: core.OpSource, Parallelism: 1,
		Source: &core.SourceSpec{Schema: kvSchema, EventRate: 1000}, OutWidth: 2})
	p.Add(&core.Operator{ID: "u", Kind: core.OpUDO, Parallelism: 1, Partition: core.PartitionRebalance,
		UDO: &core.UDOSpec{Name: "faulty", CostFactor: 1, Selectivity: 1}, OutWidth: 2})
	p.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1})
	p.Connect("src", "u")
	p.Connect("u", "sink")

	var in []*tuple.Tuple
	for i := 0; i < 99; i++ {
		in = append(in, kv(int64(i+1), int64(i), 1))
	}
	sink := &collectSink{}
	rt, err := New(p, Options{
		Sources: map[string]SourceFactory{"src": func(int) SourceGenerator { return stream.NewFromTuples(in...) }},
		UDOs:    map[string]UDOFactory{"faulty": func(int) UDO { return &faultyUDO{} }},
		SinkTap: sink.tap,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.UDOPanics != 33 {
		t.Errorf("UDOPanics = %d, want 33 (every third of 99)", rep.UDOPanics)
	}
	if got := len(sink.tuples()); got != 66 {
		t.Errorf("delivered %d, want the 66 surviving tuples", got)
	}
	if rep.TuplesIn != 99 {
		t.Errorf("TuplesIn = %d", rep.TuplesIn)
	}
}
