package engine

import (
	"context"
	"time"

	"pdspbench/internal/core"
	"pdspbench/internal/tuple"
)

type msgKind int

const (
	msgData msgKind = iota
	msgEOS
)

type message struct {
	kind msgKind
	t    *tuple.Tuple
	side int
}

// router delivers an upstream instance's output to the instances of one
// downstream chain under its head operator's partition strategy.
type router struct {
	targets  []*opInstance
	strategy core.PartitionStrategy
	side     int
	keyField int
	rr       int
}

// newRouter resolves the hash key field for the downstream operator: the
// join field of the matching side for joins, the window key for keyed
// aggregations, field 0 otherwise.
func newRouter(down *core.Operator, targets []*opInstance, side, fromIdx int) *router {
	key := 0
	switch down.Kind {
	case core.OpJoin:
		if down.Join != nil {
			if side == 0 {
				key = down.Join.LeftField
			} else {
				key = down.Join.RightField
			}
		}
	case core.OpAggregate:
		if down.Agg != nil && down.Agg.KeyField >= 0 {
			key = down.Agg.KeyField
		}
	}
	return &router{
		targets:  targets,
		strategy: down.Partition,
		side:     side,
		keyField: key,
		rr:       fromIdx, // stagger round-robin start across producers
	}
}

// send routes one tuple; it returns false if the context ended.
func (rt *router) send(ctx context.Context, fromIdx int, t *tuple.Tuple) bool {
	var dst *opInstance
	switch rt.strategy {
	case core.PartitionForward:
		dst = rt.targets[fromIdx%len(rt.targets)]
	case core.PartitionHash:
		f := rt.keyField
		if f >= t.Width() {
			f = 0
		}
		dst = rt.targets[t.At(f).Hash()%uint64(len(rt.targets))]
	default: // rebalance
		dst = rt.targets[rt.rr%len(rt.targets)]
		rt.rr++
	}
	select {
	case dst.in <- message{kind: msgData, t: t, side: rt.side}:
		return true
	case <-ctx.Done():
		return false
	}
}

// eos notifies every downstream instance that this producer finished.
func (rt *router) eos(ctx context.Context) bool {
	for _, dst := range rt.targets {
		select {
		case dst.in <- message{kind: msgEOS, side: rt.side}:
		case <-ctx.Done():
			return false
		}
	}
	return true
}

// opInstance executes one parallel instance of an operator chain (a
// single operator unless Options.ChainOperators fused several).
type opInstance struct {
	rt    *Runtime
	chain []*chainedOp
	idx   int

	in        chan message
	routes    []*router
	expectEOS [2]int
	gotEOS    [2]int
	seq       uint64
}

// head is the chain's first operator — the one whose partition strategy
// and parallelism govern the instance.
func (oi *opInstance) head() *core.Operator { return oi.chain[0].op }

func newOpInstance(r *Runtime, ops []*core.Operator, idx int) *opInstance {
	oi := &opInstance{
		rt:  r,
		idx: idx,
		in:  make(chan message, r.opts.ChannelCapacity),
	}
	for _, op := range ops {
		oi.chain = append(oi.chain, &chainedOp{op: op})
	}
	return oi
}

// emit forwards a chain-tail output along all outgoing routes.
func (oi *opInstance) emit(ctx context.Context, t *tuple.Tuple) {
	for i, rt := range oi.routes {
		out := t
		if i > 0 {
			out = t.Clone() // fan-out must not share mutable tuples
		}
		if !rt.send(ctx, oi.idx, out) {
			return
		}
	}
}

// run is the instance goroutine body.
func (oi *opInstance) run(ctx context.Context) {
	if oi.head().Kind == core.OpSource {
		oi.runSource(ctx)
		return
	}
	for _, c := range oi.chain {
		c.initState(oi)
	}
	for {
		select {
		case <-ctx.Done():
			return
		case msg := <-oi.in:
			if msg.kind == msgEOS {
				oi.gotEOS[msg.side]++
				if oi.allEOS() {
					oi.flushChain(ctx)
					for _, rt := range oi.routes {
						rt.eos(ctx)
					}
					return
				}
				continue
			}
			oi.applyAt(ctx, 0, msg.t, msg.side)
		}
	}
}

// allEOS reports whether every expected upstream instance finished.
func (oi *opInstance) allEOS() bool {
	for side := 0; side < 2; side++ {
		if oi.gotEOS[side] < oi.expectEOS[side] {
			return false
		}
	}
	return true
}

// runSource drives the instance's generator. Sources are never fused, so
// the chain is exactly [source].
func (oi *opInstance) runSource(ctx context.Context) {
	src := oi.head()
	gen := oi.rt.opts.Sources[src.ID](oi.idx)
	rate := src.Source.EventRate / float64(src.Parallelism)
	var emitted uint64
	throttleStart := time.Now()
	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
		t, ok := gen.Next()
		if !ok {
			break
		}
		now := time.Now().UnixNano()
		t.Ingest = now
		if t.EventTime == 0 {
			t.EventTime = now
		}
		t.Seq = oi.seq
		oi.seq++
		oi.rt.recordIngest(1)
		oi.chain[0].nOut++
		oi.emit(ctx, t)
		emitted++
		if oi.rt.opts.Throttle && rate > 0 && emitted%64 == 0 {
			// Pace to the configured event rate in wall-clock time.
			want := time.Duration(float64(emitted) / rate * float64(time.Second))
			if ahead := want - time.Since(throttleStart); ahead > 0 {
				select {
				case <-time.After(ahead):
				case <-ctx.Done():
					return
				}
			}
		}
	}
	for _, rt := range oi.routes {
		rt.eos(ctx)
	}
}
