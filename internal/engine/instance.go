package engine

import (
	"context"
	"math"
	"sync"
	"time"

	"pdspbench/internal/core"
	"pdspbench/internal/tuple"
)

type msgKind int

const (
	msgData msgKind = iota
	msgEOS
	// msgWatermark is the event-time control element: the producer
	// asserts it will emit no further tuple with EventTime ≤ wm on this
	// channel. Receivers merge the minimum across all producers (see
	// noteWatermark in watermark.go) before advancing window state.
	msgWatermark
)

// message is one channel exchange between instances: a micro-batch of
// tuples (msgData), an end-of-stream marker (msgEOS), or a watermark
// (msgWatermark). Shipping batches instead of single tuples amortizes
// the channel send/receive pair — the dominant per-tuple cost of an
// unbatched data plane — across O(BatchSize) tuples, the same reason
// Flink ships record batches through its network buffers.
type message struct {
	kind msgKind
	b    *[]*tuple.Tuple
	// cb carries a columnar batch instead of b when the columnar plane
	// is active on this edge (exactly one of b/cb is set for msgData).
	cb   *tuple.ColumnBatch
	side int
	// from identifies the producing router's watermark slot on the
	// receiver's side (see router.wmID); wm is the asserted watermark
	// for msgWatermark messages.
	from int32
	wm   int64
}

// batchPool recycles the tuple-pointer slices routers flush downstream.
// The receiver returns the slice after unpacking it, so steady state
// allocates no batch buffers at all.
var batchPool = sync.Pool{
	New: func() any {
		b := make([]*tuple.Tuple, 0, 64)
		return &b
	},
}

func getBatch() *[]*tuple.Tuple { return batchPool.Get().(*[]*tuple.Tuple) }

func putBatch(b *[]*tuple.Tuple) {
	// Drop the tuple pointers so a pooled buffer does not retain tuples
	// that were released back to their own pool.
	for i := range *b {
		(*b)[i] = nil
	}
	*b = (*b)[:0]
	batchPool.Put(b)
}

// router delivers an upstream instance's output to the instances of one
// downstream chain under its head operator's partition strategy. Routing
// decisions stay per-tuple (so partitioning semantics are identical to
// the unbatched plane); only the channel send is batched, through one
// pending buffer per target instance.
type router struct {
	targets   []*opInstance
	strategy  core.PartitionStrategy
	side      int
	keyField  int
	rr        int
	batchSize int
	bufs      []*[]*tuple.Tuple // per-target pending batch, nil when empty
	pending   int               // tuples buffered across all targets
	// lf is the link-fault state of this route's downstream operator;
	// nil (the no-fault case) skips every fault check.
	lf *linkFault
	// sentEOS makes eos idempotent per target: a crashed instance's
	// supervisor may re-deliver end-of-stream, and a duplicate marker
	// would make the receiver finish while producers still run.
	sentEOS []bool
	// wmID is this producer's watermark slot index on the receiving
	// side: receivers keep one watermark per producing instance and
	// advance on the minimum across all of them (assigned in build).
	wmID int32

	// Columnar plane (see column.go). colOK records whether the target
	// chain accepts column batches; when false, sendColumns falls back
	// to per-row materialization through send. colBufs holds per-target
	// pending scatter batches for hash partitioning, colPending the rows
	// buffered across them; colBatches/colFallback count batches routed
	// and batches that fell back to the row plane.
	colOK       bool
	colBufs     []*tuple.ColumnBatch
	colPending  int
	colBatches  uint64
	colFallback uint64
}

// newRouter resolves the hash key field for the downstream operator: the
// join field of the matching side for joins, the window key for keyed
// aggregations, field 0 otherwise.
func newRouter(down *core.Operator, targets []*opInstance, side, fromIdx, batchSize int) *router {
	key := 0
	switch down.Kind {
	case core.OpJoin:
		if down.Join != nil {
			if side == 0 {
				key = down.Join.LeftField
			} else {
				key = down.Join.RightField
			}
		}
	case core.OpAggregate:
		if down.Agg != nil && down.Agg.KeyField >= 0 {
			key = down.Agg.KeyField
		}
	}
	if batchSize <= 0 {
		batchSize = 1
	}
	return &router{
		targets:   targets,
		strategy:  down.Partition,
		side:      side,
		keyField:  key,
		rr:        fromIdx, // stagger round-robin start across producers
		batchSize: batchSize,
		bufs:      make([]*[]*tuple.Tuple, len(targets)),
		sentEOS:   make([]bool, len(targets)),
		colOK:     len(targets) > 0 && targets[0].colOK,
		colBufs:   make([]*tuple.ColumnBatch, len(targets)),
	}
}

// send routes one tuple into its target's pending batch, flushing the
// batch when full; it returns false if the context ended.
func (rt *router) send(ctx context.Context, fromIdx int, t *tuple.Tuple) bool {
	if rt.lf != nil && rt.lf.shouldDrop() {
		t.Release()
		return true
	}
	var di int
	switch rt.strategy {
	case core.PartitionForward:
		di = fromIdx % len(rt.targets)
	case core.PartitionHash:
		f := rt.keyField
		if f >= t.Width() {
			f = 0
		}
		di = int(t.At(f).Hash() % uint64(len(rt.targets)))
	default: // rebalance
		di = rt.rr % len(rt.targets)
		rt.rr++
	}
	b := rt.bufs[di]
	if b == nil {
		b = getBatch()
		rt.bufs[di] = b
	}
	*b = append(*b, t)
	rt.pending++
	if len(*b) >= rt.batchSize {
		return rt.flushTo(ctx, di)
	}
	return true
}

// flushTo ships target di's pending batch downstream.
func (rt *router) flushTo(ctx context.Context, di int) bool {
	b := rt.bufs[di]
	if b == nil {
		return true
	}
	rt.bufs[di] = nil
	rt.pending -= len(*b)
	if rt.lf != nil {
		rt.lf.applyDelay()
	}
	select {
	case rt.targets[di].in <- message{kind: msgData, b: b, side: rt.side, from: rt.wmID}:
		return true
	case <-ctx.Done():
		return false
	}
}

// flushAll ships every pending partial batch, row and columnar.
func (rt *router) flushAll(ctx context.Context) bool {
	if !rt.flushColAll(ctx) {
		return false
	}
	if rt.pending == 0 {
		return true
	}
	for di := range rt.bufs {
		if !rt.flushTo(ctx, di) {
			return false
		}
	}
	return true
}

// eos flushes pending batches, then notifies every downstream instance
// that this producer finished.
func (rt *router) eos(ctx context.Context) bool {
	if !rt.flushAll(ctx) {
		return false
	}
	for di, dst := range rt.targets {
		if rt.sentEOS[di] {
			continue
		}
		select {
		case dst.in <- message{kind: msgEOS, side: rt.side, from: rt.wmID}:
			rt.sentEOS[di] = true
		case <-ctx.Done():
			return false
		}
	}
	return true
}

// opInstance executes one parallel instance of an operator chain (a
// single operator unless Options.ChainOperators fused several).
type opInstance struct {
	rt    *Runtime
	chain []*chainedOp
	idx   int
	ctx   context.Context // the run's context, set once at goroutine start
	// flt is this instance's chaos state; nil (the no-fault case) makes
	// every fault check a single pointer comparison.
	flt *instFault

	in        chan message
	routes    []*router
	expectEOS [2]int
	gotEOS    [2]int
	seq       uint64

	// Event-time state (watermark.go): wmIn holds the latest watermark
	// asserted by each upstream producer, per input side; curWM is the
	// merged minimum — the instance's own clock — which advances the
	// chain's window state and is forwarded downstream.
	wmIn  [2][]int64
	curWM int64

	// colOK: this chain accepts column batches (set in build; see
	// chainAcceptsColumns). colSrc: this source instance produces them —
	// true only when the columnar plane is on AND at least one route
	// accepts columns, so a plan of row-only consumers never pays the
	// fill-then-materialize round trip.
	// colJoin: this instance is a tail join emitting its matches as
	// column batches (set in build when the columnar plane is on and a
	// route can consume them; see appendJoinPair).
	colOK   bool
	colSrc  bool
	colJoin bool

	// Sink instances batch their metric updates: deliveries stamp one
	// wall-clock read per input batch (nowUnix) and accumulate counts
	// and latencies locally, taking the report mutex once per ~1k
	// deliveries instead of once per tuple.
	hasSink  bool
	nowUnix  int64
	sinkOut  uint64
	sinkLats []float64
}

// head is the chain's first operator — the one whose partition strategy
// and parallelism govern the instance.
func (oi *opInstance) head() *core.Operator { return oi.chain[0].op }

func newOpInstance(r *Runtime, ops []*core.Operator, idx int) *opInstance {
	oi := &opInstance{
		rt:    r,
		idx:   idx,
		in:    make(chan message, r.opts.ChannelCapacity),
		curWM: tuple.NoEventTime,
	}
	for _, op := range ops {
		oi.chain = append(oi.chain, &chainedOp{op: op})
		if op.Kind == core.OpSink {
			oi.hasSink = true
		}
	}
	return oi
}

// deliver records one sink delivery against the instance-local batch of
// metrics and hands the tuple to the tap (or back to the pool).
func (oi *opInstance) deliver(op string, t *tuple.Tuple) {
	oi.sinkOut++
	if t.Ingest > 0 {
		oi.sinkLats = append(oi.sinkLats, float64(oi.nowUnix-t.Ingest)/1e9)
	}
	if tap := oi.rt.opts.SinkTap; tap != nil {
		tap(op, t)
	} else {
		t.Release()
	}
	if oi.sinkOut >= 1024 {
		oi.flushSinkStats()
	}
}

// flushSinkStats merges the local delivery batch into the shared report.
func (oi *opInstance) flushSinkStats() {
	if oi.sinkOut == 0 {
		return
	}
	rs := &oi.rt.report
	rs.mu.Lock()
	rs.tuplesOut += oi.sinkOut
	rs.latencies.AddAll(oi.sinkLats...)
	rs.mu.Unlock()
	oi.sinkOut = 0
	oi.sinkLats = oi.sinkLats[:0]
}

// emit forwards a chain-tail output along all outgoing routes. Fan-out
// clones from the second route on so routes never share mutable tuples;
// clones are pooled so they recycle like source tuples. A tail with no
// routes (a plan that dead-ends off a non-sink) drops and releases.
func (oi *opInstance) emit(t *tuple.Tuple) {
	if len(oi.routes) == 0 {
		t.Release()
		return
	}
	for i, rt := range oi.routes {
		out := t
		if i > 0 {
			out = t.ClonePooled()
		}
		if !rt.send(oi.ctx, oi.idx, out) {
			return
		}
	}
}

// pendingOut reports how many output tuples wait in partial batches.
func (oi *opInstance) pendingOut() int {
	n := 0
	for _, rt := range oi.routes {
		n += rt.pending + rt.colPending
	}
	return n
}

// flushRoutes ships every partial output batch downstream.
func (oi *opInstance) flushRoutes(ctx context.Context) bool {
	for _, rt := range oi.routes {
		if !rt.flushAll(ctx) {
			return false
		}
	}
	return true
}

// run is the instance goroutine body. Partial output batches are flushed
// whenever the input runs momentarily dry (so idle pipelines drain with
// no added latency) and, during busy stretches, at the BatchLinger
// boundary so a slow-filling batch cannot hold tuples back indefinitely.
func (oi *opInstance) run(ctx context.Context) {
	oi.ctx = ctx
	if oi.head().Kind == core.OpSource {
		if oi.colSrc {
			oi.runSourceColumnar(ctx)
			return
		}
		oi.runSource(ctx)
		return
	}
	for i, c := range oi.chain {
		c.initState(oi)
		c.bindEmit(oi, i)
	}
	oi.initWatermarks()
	defer oi.flushSinkStats()
	lingerDur := oi.rt.opts.BatchLinger
	killC := oi.killChan()
	var linger *time.Timer
	var lingerC <-chan time.Time
	for {
		if oi.flt != nil && oi.flt.killed.Load() {
			panic(errInjectedCrash)
		}
		var msg message
		select {
		case msg = <-oi.in:
		default:
			// Input momentarily idle: flush partial batches downstream
			// rather than hold them to the linger boundary.
			if !oi.flushRoutes(ctx) {
				return
			}
			lingerC = nil
			select {
			case msg = <-oi.in:
			case <-killC:
				panic(errInjectedCrash)
			case <-ctx.Done():
				return
			}
		}
		// One wall-clock read covers the whole batch's sink latencies.
		if oi.hasSink {
			oi.nowUnix = time.Now().UnixNano()
		}
		if msg.kind == msgEOS {
			// A finished producer will never send again: its channel
			// watermark is +∞, which unblocks the merged minimum for the
			// producers still running (Flink's EOS semantics).
			oi.noteWatermark(msg.side, msg.from, math.MaxInt64)
			oi.gotEOS[msg.side]++
			if oi.allEOS() {
				oi.flushChain()
				for _, rt := range oi.routes {
					rt.eos(ctx)
				}
				return
			}
			continue
		}
		if msg.kind == msgWatermark {
			oi.noteWatermark(msg.side, msg.from, msg.wm)
			continue
		}
		var n int
		if msg.cb != nil {
			n = msg.cb.Live()
			// The batch's watermark stamp rides behind its rows: read it
			// now (the batch is released during apply), note it after.
			cbWM := msg.cb.Watermark()
			if oi.colOK {
				oi.applyColumns(msg.cb)
			} else {
				oi.materializeColumns(msg.cb, msg.side)
			}
			if cbWM != tuple.NoEventTime {
				oi.noteWatermark(msg.side, msg.from, cbWM)
			}
		} else {
			n = len(*msg.b)
			for _, t := range *msg.b {
				oi.applyAt(0, t, msg.side)
			}
			putBatch(msg.b)
		}
		if oi.flt != nil {
			oi.maybeSlow(n)
		}
		// Busy stretch: bound how long partial output batches linger.
		if oi.pendingOut() > 0 {
			if lingerC == nil {
				if linger == nil {
					linger = time.NewTimer(lingerDur)
				} else {
					linger.Reset(lingerDur)
				}
				lingerC = linger.C
			} else {
				select {
				case <-lingerC:
					if !oi.flushRoutes(ctx) {
						return
					}
					lingerC = nil
				default:
				}
			}
		} else {
			lingerC = nil
		}
	}
}

// allEOS reports whether every expected upstream instance finished.
func (oi *opInstance) allEOS() bool {
	for side := 0; side < 2; side++ {
		if oi.gotEOS[side] < oi.expectEOS[side] {
			return false
		}
	}
	return true
}

// runSource drives the instance's generator. Sources are never fused, so
// the chain is exactly [source].
//
// Watermark emission is punctuated when the generator implements
// Watermarker (emit whenever its assertion advances — per-arrival
// granularity for in-order replay) and periodic otherwise: every
// WatermarkInterval tuples the source asserts max-event-time-seen minus
// the bounded-skew allowance from its DisorderSpec.
func (oi *opInstance) runSource(ctx context.Context) {
	src := oi.head()
	gen := oi.rt.opts.Sources[src.ID](oi.idx)
	rate := src.Source.EventRate / float64(src.Parallelism)
	killC := oi.killChan()
	punct, _ := gen.(Watermarker)
	skewNs := int64(0)
	if d := src.Source.Disorder; d != nil {
		skewNs = d.MaxSkewMs * 1e6
	}
	wmEvery := uint64(oi.rt.opts.WatermarkInterval)
	if !oi.rt.needsWM {
		// No operator in this plan fires on watermarks: suppress emission
		// entirely rather than pay a flush-and-broadcast per interval.
		punct, wmEvery = nil, 0
	}
	maxEt := tuple.NoEventTime
	// Checkpoint resume after a crash: generators are deterministic, so
	// a revived life rebuilds its generator and skips the oi.seq tuples
	// the previous lives already emitted.
	if oi.flt != nil && oi.seq > 0 {
		for skipped := uint64(0); skipped < oi.seq; skipped++ {
			t, ok := gen.Next()
			if !ok {
				break
			}
			t.Release()
		}
	}
	var emitted, unrecorded uint64
	var now int64
	var pacer *time.Timer // single reusable throttle timer
	throttleStart := time.Now()
	for {
		if oi.flt != nil {
			if oi.flt.killed.Load() {
				panic(errInjectedCrash)
			}
			oi.maybeStall(ctx, killC)
		}
		select {
		case <-ctx.Done():
			return
		default:
		}
		t, ok := gen.Next()
		if !ok {
			break
		}
		// One wall-clock read stamps 16 tuples: within a burst the spread
		// is microseconds, and throttle sleeps land on multiples of 64 so
		// the first post-sleep tuple always re-reads the clock.
		if emitted&15 == 0 {
			now = time.Now().UnixNano()
		}
		t.Ingest = now
		if t.EventTime == tuple.NoEventTime {
			t.EventTime = now
		}
		t.Seq = oi.seq
		oi.seq++
		unrecorded++
		if unrecorded >= 1024 {
			oi.rt.recordIngest(unrecorded)
			unrecorded = 0
		}
		oi.chain[0].nOut++
		// Capture the event time before emit: downstream may release the
		// tuple before the send returns on a fused route.
		et := t.EventTime
		oi.emit(t)
		emitted++
		if et > maxEt {
			maxEt = et
		}
		if punct != nil {
			if wm := punct.Watermark(); wm != tuple.NoEventTime && wm > oi.curWM {
				if !oi.emitWatermark(wm) {
					return
				}
			}
		} else if wmEvery > 0 && emitted%wmEvery == 0 && maxEt != tuple.NoEventTime {
			if wm := maxEt - skewNs; wm > oi.curWM {
				if !oi.emitWatermark(wm) {
					return
				}
			}
		}
		if oi.rt.opts.Throttle && rate > 0 && emitted%64 == 0 {
			// Pace to the configured event rate in wall-clock time.
			want := time.Duration(float64(emitted) / rate * float64(time.Second))
			if ahead := want - time.Since(throttleStart); ahead > 0 {
				// Don't hold partial batches back across the sleep.
				if !oi.flushRoutes(ctx) {
					return
				}
				if pacer == nil {
					pacer = time.NewTimer(ahead)
				} else {
					// The previous firing was always drained below, so
					// Reset is race-free under pre-1.23 timer semantics.
					pacer.Reset(ahead)
				}
				select {
				case <-pacer.C:
				case <-killC:
					panic(errInjectedCrash)
				case <-ctx.Done():
					return
				}
			}
		}
	}
	if unrecorded > 0 {
		oi.rt.recordIngest(unrecorded)
	}
	for _, rt := range oi.routes {
		rt.eos(ctx)
	}
}
