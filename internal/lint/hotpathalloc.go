package lint

import (
	"go/ast"
	"go/types"
	"path"
	"path/filepath"
	"strings"
)

// hotAllocCalls maps package path → function names whose every call
// allocates, with the zero-allocation replacement the data plane uses.
var hotAllocCalls = map[string]map[string]string{
	"hash/fnv": {
		"New32":  "inline the FNV loop (see tuple.Value.Hash)",
		"New32a": "inline the FNV loop (see tuple.Value.Hash)",
		"New64":  "inline the FNV loop (see tuple.Value.Hash)",
		"New64a": "inline the FNV loop (see tuple.Value.Hash)",
	},
	"time": {
		"After": "reuse a single time.Timer (Reset between waits)",
	},
	"fmt": {
		"Sprintf": "format off the hot path, or build with strconv/strings",
	},
}

// strictOnlyPkgs names the package directories (by base name) where
// only the strict-file set is in scope: internal/tuple and internal/core
// legitimately format in cold paths (Value.String, spec rendering), and
// internal/stream formats in its cold generators (stream.Word), so the
// rule covers just their columnar and event-time files.
var strictOnlyPkgs = map[string]bool{"tuple": true, "core": true, "stream": true}

// columnarFile reports whether base names a columnar data-plane file:
// column batches (column*.go) or compiled kernels (kernel*.go). These
// files get the stricter kernel-loop checks on top of the general table.
func columnarFile(base string) bool {
	return strings.HasPrefix(base, "column") || strings.HasPrefix(base, "kernel")
}

// eventTimeFile reports whether base names an event-time plane file:
// watermark propagation, session-window state, or disordered delivery.
// Their loops run per message or per arrival — a watermark merge scans
// every producer slot on each marker, session coalescing walks the open
// spans of a key on each tuple — so they carry the same strict loop
// bans as the columnar files.
func eventTimeFile(base string) bool {
	return strings.HasPrefix(base, "watermark") ||
		strings.HasPrefix(base, "session") ||
		strings.HasPrefix(base, "disorder")
}

// HotPathAlloc flags known-allocating constructs inside the data-plane
// packages. These packages move millions of tuples or events per second,
// so a per-call allocation — a hash.Hash64 per partition decision, a
// timer channel per throttle tick, a formatted string per record —
// turns into GC pressure that dominates what the benchmarks measure.
// The rule bans the constructs this repo has already paid to remove,
// so they cannot creep back in.
//
// Columnar files (column*.go, kernel*.go — including those in
// internal/tuple and internal/core) additionally ban, inside any loop:
// every fmt call, and per-row tuple boxing (tuple.Get or
// ColumnBatch.MaterializeRow). Kernels exist to stay on the column
// slabs; a deliberate row-fallback loop carries //lint:ignore with its
// reason, which keeps every fallback visible to the linter.
func HotPathAlloc() *Analyzer {
	return &Analyzer{
		Name: "hotpath-alloc",
		Doc: "Data-plane code (internal/engine, internal/des, internal/simengine) must not call " +
			"per-invocation allocators on hot paths: hash/fnv constructors (inline the FNV-1a " +
			"loop), time.After (reuse one time.Timer), or fmt.Sprintf (format off the hot path). " +
			"Columnar files (column*.go, kernel*.go; also in internal/tuple and internal/core) " +
			"and event-time plane files (watermark*.go, session*.go, disorder*.go; also in " +
			"internal/stream) further ban fmt calls and per-row tuple boxing (tuple.Get, " +
			"MaterializeRow) inside loops — kernels operate on column slabs, and watermark " +
			"merges and session coalescing run per message. " +
			"Suppress deliberately-cold call sites with //lint:ignore hotpath-alloc <reason>.",
		DefaultDirs: []string{"internal/engine", "internal/des", "internal/simengine", "internal/tuple", "internal/core", "internal/stream"},
		Run:         runHotPathAlloc,
	}
}

func runHotPathAlloc(p *Pass) {
	strictOnly := strictOnlyPkgs[path.Base(p.Pkg.Dir)]
	for _, f := range p.Pkg.Files {
		base := filepath.Base(p.Pkg.Fset.Position(f.Pos()).Filename)
		isStrict := columnarFile(base) || eventTimeFile(base)
		if strictOnly && !isStrict {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if isStrict {
				switch n.(type) {
				case *ast.ForStmt, *ast.RangeStmt:
					checkKernelLoop(p, n)
				}
			}
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			pkgPath, name, ok := pkgFuncCall(p, call)
			if !ok {
				return true
			}
			hint, banned := hotAllocCalls[pkgPath][name]
			if !banned {
				return true
			}
			short := pkgPath[strings.LastIndex(pkgPath, "/")+1:]
			p.Reportf(call.Pos(), "%s.%s allocates on every call in data-plane code; %s", short, name, hint)
			return true
		})
	}
}

// checkKernelLoop applies the columnar-file bans to one loop body: no
// fmt at all (kernel loops run per batch row, so even Fprintf to a
// discarded writer is per-row work), and no per-row boxing — the whole
// point of the columnar plane is that rows stay unmaterialized until a
// row-only consumer forces them.
func checkKernelLoop(p *Pass, loop ast.Node) {
	var body *ast.BlockStmt
	switch l := loop.(type) {
	case *ast.ForStmt:
		body = l.Body
	case *ast.RangeStmt:
		body = l.Body
	}
	if body == nil {
		return
	}
	inspectShallow(body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		if pkgPath, name, ok := pkgFuncCall(p, call); ok {
			if pkgPath == "fmt" {
				p.Reportf(call.Pos(), "fmt.%s inside a kernel loop runs per row; format outside the loop or drop it", name)
				return true
			}
			if path.Base(pkgPath) == "tuple" && name == "Get" {
				p.Reportf(call.Pos(), "tuple.Get inside a kernel loop boxes a pooled row per iteration; operate on the column slabs, or //lint:ignore a deliberate row fallback")
				return true
			}
		}
		if _, recvPkg, typeName, method, ok := methodCallOn(p, call); ok {
			if typeName == "ColumnBatch" && method == "MaterializeRow" && path.Base(recvPkg) == "tuple" {
				p.Reportf(call.Pos(), "MaterializeRow inside a kernel loop boxes a pooled row per iteration; operate on the column slabs, or //lint:ignore a deliberate row fallback")
			}
			return true
		}
		// Unqualified Get(...) inside package tuple itself.
		if id, isID := call.Fun.(*ast.Ident); isID && id.Name == "Get" {
			if fn, isFn := p.ObjectOf(id).(*types.Func); isFn && fn.Pkg() != nil && path.Base(fn.Pkg().Path()) == "tuple" {
				p.Reportf(call.Pos(), "tuple.Get inside a kernel loop boxes a pooled row per iteration; operate on the column slabs, or //lint:ignore a deliberate row fallback")
			}
		}
		return true
	})
}
