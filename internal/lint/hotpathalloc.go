package lint

import (
	"go/ast"
	"strings"
)

// hotAllocCalls maps package path → function names whose every call
// allocates, with the zero-allocation replacement the data plane uses.
var hotAllocCalls = map[string]map[string]string{
	"hash/fnv": {
		"New32":  "inline the FNV loop (see tuple.Value.Hash)",
		"New32a": "inline the FNV loop (see tuple.Value.Hash)",
		"New64":  "inline the FNV loop (see tuple.Value.Hash)",
		"New64a": "inline the FNV loop (see tuple.Value.Hash)",
	},
	"time": {
		"After": "reuse a single time.Timer (Reset between waits)",
	},
	"fmt": {
		"Sprintf": "format off the hot path, or build with strconv/strings",
	},
}

// HotPathAlloc flags known-allocating constructs inside the data-plane
// packages. These packages move millions of tuples or events per second,
// so a per-call allocation — a hash.Hash64 per partition decision, a
// timer channel per throttle tick, a formatted string per record —
// turns into GC pressure that dominates what the benchmarks measure.
// The rule bans the constructs this repo has already paid to remove,
// so they cannot creep back in.
func HotPathAlloc() *Analyzer {
	return &Analyzer{
		Name: "hotpath-alloc",
		Doc: "Data-plane code (internal/engine, internal/des, internal/simengine) must not call " +
			"per-invocation allocators on hot paths: hash/fnv constructors (inline the FNV-1a " +
			"loop), time.After (reuse one time.Timer), or fmt.Sprintf (format off the hot path). " +
			"Suppress deliberately-cold call sites with //lint:ignore hotpath-alloc <reason>.",
		DefaultDirs: []string{"internal/engine", "internal/des", "internal/simengine"},
		Run:         runHotPathAlloc,
	}
}

func runHotPathAlloc(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			pkgPath, name, ok := pkgFuncCall(p, call)
			if !ok {
				return true
			}
			hint, banned := hotAllocCalls[pkgPath][name]
			if !banned {
				return true
			}
			short := pkgPath[strings.LastIndex(pkgPath, "/")+1:]
			p.Reportf(call.Pos(), "%s.%s allocates on every call in data-plane code; %s", short, name, hint)
			return true
		})
	}
}
