package lint

import (
	"go/ast"
	"go/types"

	"pdspbench/internal/lint/flow"
)

// LeaseLinearity treats internal/queue lease tokens as linear values.
// A LeaseID is single-use by protocol: Complete and Fail consume it
// (the queue clears it and rejects any echo as ErrStaleLease), so code
// that keeps using a token after passing it to a consumer, or parks it
// in a structure that outlives the lease, is writing requests the
// dispatcher is guaranteed to reject — or worse, masking a lost lease.
func LeaseLinearity() *Analyzer {
	return &Analyzer{
		Name: "lease-linearity",
		Doc: "Lease tokens (LeaseID fields minted by internal/queue) are linear: once passed " +
			"to a consuming call (Complete/Fail), the token is dead and must not be read " +
			"again on that path, and it must not be stored into a struct field or map that " +
			"outlives the lease. Extend renews without consuming. Consumption inside a " +
			"terminating branch (return/panic/break) does not poison the fall-through path.",
		DefaultDirs: []string{"internal/queue", "internal/server", "cmd"},
		RunWhole:    runLeaseLinearity,
	}
}

func runLeaseLinearity(w *WholePass) {
	for _, fn := range w.Program.All() {
		ls := &leaseScan{u: fn.Unit, w: w, vars: map[types.Object]bool{}}
		ls.block(fn.Decl.Body.List, map[string]*leaseConsume{})
	}
}

type leaseConsume struct {
	by string // consuming call, for the diagnostic
}

// leaseScan walks one function in statement order, tracking which token
// expressions have been consumed. Branch bodies run on a copy of the
// consumed set; a branch that terminates (return, panic, break,
// continue, goto) does not leak its consumptions into the fall-through
// path — that is the shape of every correct Fail-then-return /
// Complete-below handler.
type leaseScan struct {
	u *flow.Unit
	w *WholePass
	// vars are local identifiers assigned from token expressions; they
	// carry the token's linearity.
	vars map[types.Object]bool
}

func (ls *leaseScan) block(list []ast.Stmt, consumed map[string]*leaseConsume) {
	for _, st := range list {
		ls.stmt(st, consumed)
	}
}

func copyConsumed(c map[string]*leaseConsume) map[string]*leaseConsume {
	out := make(map[string]*leaseConsume, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

func mergeConsumed(dst, src map[string]*leaseConsume) {
	for k, v := range src {
		if dst[k] == nil {
			dst[k] = v
		}
	}
}

// branch runs a conditional body on its own copy of the consumed set
// and merges the result back only when the body can fall through.
func (ls *leaseScan) branch(list []ast.Stmt, consumed map[string]*leaseConsume) {
	inner := copyConsumed(consumed)
	ls.block(list, inner)
	if !terminates(list) {
		mergeConsumed(consumed, inner)
	}
}

func (ls *leaseScan) stmt(st ast.Stmt, consumed map[string]*leaseConsume) {
	switch s := st.(type) {
	case *ast.ExprStmt:
		ls.expr(s.X, consumed)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			ls.expr(rhs, consumed)
		}
		ls.assign(s, consumed)
	case *ast.DeferStmt:
		ls.expr(s.Call, consumed)
	case *ast.GoStmt:
		ls.expr(s.Call, consumed)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			ls.expr(r, consumed)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			ls.stmt(s.Init, consumed)
		}
		ls.expr(s.Cond, consumed)
		ls.branch(s.Body.List, consumed)
		if s.Else != nil {
			ls.stmt(s.Else, consumed)
		}
	case *ast.BlockStmt:
		ls.block(s.List, consumed)
	case *ast.LabeledStmt:
		ls.stmt(s.Stmt, consumed)
	case *ast.ForStmt:
		if s.Init != nil {
			ls.stmt(s.Init, consumed)
		}
		if s.Cond != nil {
			ls.expr(s.Cond, consumed)
		}
		ls.branch(s.Body.List, consumed)
	case *ast.RangeStmt:
		ls.expr(s.X, consumed)
		ls.branch(s.Body.List, consumed)
	case *ast.SwitchStmt:
		if s.Init != nil {
			ls.stmt(s.Init, consumed)
		}
		if s.Tag != nil {
			ls.expr(s.Tag, consumed)
		}
		ls.caseClauses(s.Body, consumed)
	case *ast.TypeSwitchStmt:
		ls.caseClauses(s.Body, consumed)
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			if c, isComm := clause.(*ast.CommClause); isComm {
				if c.Comm != nil {
					ls.stmt(c.Comm, copyConsumed(consumed))
				}
				ls.branch(c.Body, consumed)
			}
		}
	case *ast.DeclStmt, *ast.SendStmt, *ast.IncDecStmt:
		ls.exprNode(st, consumed)
	}
}

func (ls *leaseScan) caseClauses(body *ast.BlockStmt, consumed map[string]*leaseConsume) {
	for _, clause := range body.List {
		if c, isCase := clause.(*ast.CaseClause); isCase {
			for _, e := range c.List {
				ls.expr(e, consumed)
			}
			ls.branch(c.Body, consumed)
		}
	}
}

// assign tracks token flow through locals and reports tokens escaping
// into fields or maps. Writes to a destination itself named LeaseID are
// the queue's own bookkeeping (minting, clearing, echoing into request
// structs) and are exempt.
func (ls *leaseScan) assign(s *ast.AssignStmt, consumed map[string]*leaseConsume) {
	for i, lhs := range s.Lhs {
		if i >= len(s.Rhs) {
			break
		}
		if _, isToken := ls.tokenKey(s.Rhs[i]); !isToken {
			continue
		}
		switch dst := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if obj := ls.u.ObjectOf(dst); obj != nil {
				ls.vars[obj] = true
			}
		case *ast.SelectorExpr:
			if dst.Sel.Name != "LeaseID" {
				ls.w.Reportf(s.Pos(),
					"lease token stored into field %s, which outlives the lease; tokens are linear — pass them to Complete/Fail and forget them", dst.Sel.Name)
			}
		case *ast.IndexExpr:
			ls.w.Reportf(s.Pos(),
				"lease token stored into a map/slice, which outlives the lease; tokens are linear — pass them to Complete/Fail and forget them")
		}
	}
}

// expr reports token reads on consumed paths and marks tokens passed to
// consuming calls.
func (ls *leaseScan) expr(e ast.Expr, consumed map[string]*leaseConsume) {
	if e == nil {
		return
	}
	ls.exprNode(e, consumed)
}

func (ls *leaseScan) exprNode(n ast.Node, consumed map[string]*leaseConsume) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch e := x.(type) {
		case *ast.FuncLit:
			// A closure shares the frame's tokens; scan with the same set.
			ls.block(e.Body.List, consumed)
			return false
		case *ast.CallExpr:
			name, isConsumer := leaseConsumerCall(ls.u, e)
			if !isConsumer {
				return true
			}
			for _, arg := range e.Args {
				ls.expr(arg, consumed)
			}
			for _, arg := range e.Args {
				if key, isToken := ls.tokenKey(arg); isToken {
					consumed[key] = &leaseConsume{by: name}
				}
			}
			return false
		case *ast.CompositeLit:
			for _, elt := range e.Elts {
				kv, isKV := elt.(*ast.KeyValueExpr)
				if !isKV {
					ls.expr(elt, consumed)
					continue
				}
				keyIdent, isIdent := kv.Key.(*ast.Ident)
				ls.expr(kv.Value, consumed)
				if _, isToken := ls.tokenKey(kv.Value); isToken {
					if !isIdent || keyIdent.Name != "LeaseID" {
						ls.w.Reportf(kv.Pos(),
							"lease token stored into a composite literal field, which may outlive the lease; tokens are linear")
					}
				}
			}
			return false
		case *ast.SelectorExpr:
			if key, isToken := ls.tokenKey(e); isToken {
				if c := consumed[key]; c != nil {
					ls.w.Reportf(e.Pos(),
						"lease token %s used after being consumed by %s; leases are single-use — the queue will reject this as a stale lease", key, c.by)
				}
				return false
			}
		case *ast.Ident:
			if key, isToken := ls.tokenKey(e); isToken {
				if c := consumed[key]; c != nil {
					ls.w.Reportf(e.Pos(),
						"lease token %s used after being consumed by %s; leases are single-use — the queue will reject this as a stale lease", key, c.by)
				}
			}
		}
		return true
	})
}

// tokenKey identifies an expression carrying a lease token: a read of a
// LeaseID field on a struct declared in a package named "queue", or a
// local variable previously assigned from one. The key is the rendered
// expression, so job.LeaseID and other.LeaseID stay distinct.
func (ls *leaseScan) tokenKey(e ast.Expr) (string, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if x.Sel.Name != "LeaseID" {
			return "", false
		}
		v, isVar := ls.u.ObjectOf(x.Sel).(*types.Var)
		if !isVar || !v.IsField() || v.Pkg() == nil || v.Pkg().Name() != "queue" {
			return "", false
		}
		return types.ExprString(x), true
	case *ast.Ident:
		if obj := ls.u.ObjectOf(x); obj != nil && ls.vars[obj] {
			return x.Name, true
		}
	}
	return "", false
}

// leaseConsumerCall reports whether a call consumes a lease token: a
// method named Complete or Fail on a type declared in a package named
// "queue". Extend deliberately is not a consumer — it renews the lease.
func leaseConsumerCall(u *flow.Unit, call *ast.CallExpr) (string, bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false
	}
	obj, isFunc := u.ObjectOf(sel.Sel).(*types.Func)
	if !isFunc {
		return "", false
	}
	if obj.Name() != "Complete" && obj.Name() != "Fail" {
		return "", false
	}
	recv := flow.NamedRecv(obj)
	if recv == nil || recv.Obj().Pkg() == nil || recv.Obj().Pkg().Name() != "queue" {
		return "", false
	}
	return typeShortName(recv) + "." + obj.Name(), true
}

func typeShortName(n *types.Named) string {
	return n.Obj().Name()
}

// terminates reports whether a statement list cannot fall through: its
// last statement returns, branches away, or panics. Nested if/else and
// blocks are checked recursively.
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	return stmtTerminates(list[len(list)-1])
}

func stmtTerminates(st ast.Stmt) bool {
	switch s := st.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, isCall := s.X.(*ast.CallExpr); isCall {
			if id, isIdent := call.Fun.(*ast.Ident); isIdent && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(s.List)
	case *ast.IfStmt:
		if s.Else == nil {
			return false
		}
		elseTerm := false
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			elseTerm = terminates(e.List)
		case *ast.IfStmt:
			elseTerm = stmtTerminates(e)
		}
		return elseTerm && terminates(s.Body.List)
	}
	return false
}
