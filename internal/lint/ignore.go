package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	rule   string // rule name or "all"
	reason string
	line   int
	pos    token.Pos
	used   bool
}

// ignoreSet holds the directives of one package keyed by file name.
type ignoreSet struct {
	fset *token.FileSet
	byFn map[string][]*ignoreDirective
}

const ignorePrefix = "//lint:ignore"

// collectIgnores parses every //lint:ignore directive in the package.
// Malformed directives (missing rule or reason) are themselves reported
// through report so suppressions always carry a rationale.
func collectIgnores(pkg *Package, report func(rule string, pos token.Pos, format string, args ...any)) *ignoreSet {
	set := &ignoreSet{fset: pkg.Fset, byFn: make(map[string][]*ignoreDirective)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				pos := pkg.Fset.Position(c.Pos())
				if len(fields) == 0 {
					report("lint-directive", c.Pos(), "lint:ignore needs a rule name and a reason")
					continue
				}
				rule := fields[0]
				if rule != "all" && AnalyzerByName(rule) == nil {
					report("lint-directive", c.Pos(), "lint:ignore names unknown rule %q", rule)
					continue
				}
				if len(fields) < 2 {
					report("lint-directive", c.Pos(), "lint:ignore %s needs a reason", rule)
					continue
				}
				set.byFn[pos.Filename] = append(set.byFn[pos.Filename], &ignoreDirective{
					rule:   rule,
					reason: strings.Join(fields[1:], " "),
					line:   pos.Line,
					pos:    c.Pos(),
				})
			}
		}
	}
	return set
}

// suppressed reports whether a diagnostic for rule at pos is covered by
// a directive on the same line or the line above, and marks it used.
func (s *ignoreSet) suppressed(rule string, pos token.Position) bool {
	for _, d := range s.byFn[pos.Filename] {
		if d.rule != rule && d.rule != "all" {
			continue
		}
		if d.line == pos.Line || d.line == pos.Line-1 {
			d.used = true
			return true
		}
	}
	return false
}

// unused returns directives that suppressed nothing, so stale ignores
// are cleaned up rather than rotting.
func (s *ignoreSet) unused() []*ignoreDirective {
	var out []*ignoreDirective
	for _, ds := range s.byFn {
		for _, d := range ds {
			if !d.used {
				out = append(out, d)
			}
		}
	}
	return out
}

// funcStack tracks the enclosing function chain during an AST walk;
// several analyzers need "the nearest enclosing function body".
type funcStack []ast.Node

func (s *funcStack) push(n ast.Node) { *s = append(*s, n) }
func (s *funcStack) pop()            { *s = (*s)[:len(*s)-1] }

// top returns the innermost enclosing function node (FuncDecl or
// FuncLit), or nil at package level.
func (s funcStack) top() ast.Node {
	if len(s) == 0 {
		return nil
	}
	return s[len(s)-1]
}

// funcBody returns the body of a FuncDecl or FuncLit.
func funcBody(n ast.Node) *ast.BlockStmt {
	switch fn := n.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}
