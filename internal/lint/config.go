package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// RulePolicy is the per-rule part of the policy config.
type RulePolicy struct {
	// Disabled turns the rule off everywhere.
	Disabled bool `json:"disabled,omitempty"`
	// Dirs, when non-empty, replaces the rule's default directory scope:
	// the rule only runs on packages whose module-relative directory has
	// one of these slash-separated prefixes. ["."] means everywhere.
	Dirs []string `json:"dirs,omitempty"`
	// ExcludeDirs removes directory subtrees from the scope after Dirs
	// (or the default scope) selected them.
	ExcludeDirs []string `json:"exclude_dirs,omitempty"`
}

// Boundary is one architectural import constraint enforced by the
// api-boundary rule.
type Boundary struct {
	// From is the module-relative directory prefix being constrained.
	From string `json:"from"`
	// Forbid is the module-relative package directory From must not
	// import directly.
	Forbid string `json:"forbid"`
	// Via names the sanctioned mediator, quoted in the diagnostic.
	Via string `json:"via"`
}

// DualImport is an exclusivity constraint enforced by the api-boundary
// rule: no package may import both A and B unless its directory sits
// under one of the Allow prefixes. It pins down which single package is
// permitted to bridge two subsystems that must otherwise stay apart.
type DualImport struct {
	// A and B are the two module-relative package directories that must
	// not meet in one import block.
	A string `json:"a"`
	B string `json:"b"`
	// Allow lists the module-relative directory prefixes exempt from
	// the constraint — the sanctioned bridge packages.
	Allow []string `json:"allow,omitempty"`
}

// RestrictedImport is an import fence enforced by the api-boundary
// rule: only packages whose directory sits under one of the Allow
// prefixes may import Pkg. Where Boundary forbids one edge and
// DualImport forbids a pair, RestrictedImport whitelists every legal
// importer of a package — the shape needed for subsystem-private state
// like the fabric's lease ledger.
type RestrictedImport struct {
	// Pkg is the module-relative package directory with restricted
	// visibility.
	Pkg string `json:"pkg"`
	// Allow lists the module-relative directory prefixes permitted to
	// import Pkg. List Pkg itself to let its own subpackages through.
	Allow []string `json:"allow"`
}

// Config is pdsplint's policy: which rules run where. The zero value
// plus defaults from the analyzers is the shipped policy; a pdsplint.json
// at the module root (or -config) overrides per directory.
type Config struct {
	Rules map[string]*RulePolicy `json:"rules,omitempty"`
	// Boundaries feed the api-boundary rule; when nil the rule's
	// defaults apply.
	Boundaries []Boundary `json:"boundaries,omitempty"`
	// DualImports feed the api-boundary rule's exclusivity check; when
	// nil the rule's defaults apply.
	DualImports []DualImport `json:"dual_imports,omitempty"`
	// RestrictedImports feed the api-boundary rule's import fence; when
	// nil the rule's defaults apply.
	RestrictedImports []RestrictedImport `json:"restricted_imports,omitempty"`
}

// LoadConfig reads a JSON policy file. Unknown rule names are rejected
// so typos fail loudly rather than silently disabling nothing.
func LoadConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := &Config{}
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("lint: parse config %s: %w", path, err)
	}
	for name := range cfg.Rules {
		if AnalyzerByName(name) == nil {
			return nil, fmt.Errorf("lint: config %s names unknown rule %q", path, name)
		}
	}
	return cfg, nil
}

// Applies reports whether the rule runs on a package in dir (module-
// relative, slash-separated).
func (c *Config) Applies(a *Analyzer, dir string) bool {
	scope := a.DefaultDirs
	var exclude []string
	if c != nil {
		if rp := c.Rules[a.Name]; rp != nil {
			if rp.Disabled {
				return false
			}
			if len(rp.Dirs) > 0 {
				scope = rp.Dirs
			}
			exclude = rp.ExcludeDirs
		}
	}
	for _, ex := range exclude {
		if dirHasPrefix(dir, ex) {
			return false
		}
	}
	if len(scope) == 0 {
		return true
	}
	for _, s := range scope {
		if s == "." || dirHasPrefix(dir, s) {
			return true
		}
	}
	return false
}

// dirHasPrefix reports whether dir equals prefix or is beneath it.
func dirHasPrefix(dir, prefix string) bool {
	return dir == prefix || strings.HasPrefix(dir, prefix+"/")
}
