package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Runner applies analyzers to loaded packages under a policy.
type Runner struct {
	// Analyzers defaults to Analyzers().
	Analyzers []*Analyzer
	// Config defaults to the built-in policy (each rule's DefaultDirs).
	Config *Config
	// ReportUnusedIgnores adds a diagnostic for every //lint:ignore that
	// suppressed nothing. Enabled by the CLI (full rule set), disabled by
	// single-rule fixture runs where most directives are out of scope.
	ReportUnusedIgnores bool
}

// Run analyzes the packages and returns findings sorted by position.
// Suppressed findings are dropped; malformed or stale //lint:ignore
// directives are themselves findings.
func (r *Runner) Run(pkgs []*Package) []Diagnostic {
	analyzers := r.Analyzers
	if analyzers == nil {
		analyzers = Analyzers()
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, r.runPackage(pkg, analyzers)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Rule < diags[j].Rule
	})
	return diags
}

func (r *Runner) runPackage(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var raw []Diagnostic
	report := func(rule string, pos token.Pos, format string, args ...any) {
		raw = append(raw, Diagnostic{
			Pos:     pkg.Fset.Position(pos),
			Rule:    rule,
			Message: fmt.Sprintf(format, args...),
		})
	}
	ignores := collectIgnores(pkg, report)
	for _, a := range analyzers {
		if !r.Config.Applies(a, pkg.Dir) {
			continue
		}
		pass := &Pass{Pkg: pkg, Config: r.Config, report: report, rule: a.Name}
		a.Run(pass)
	}
	var kept []Diagnostic
	for _, d := range raw {
		if d.Rule != "lint-directive" && ignores.suppressed(d.Rule, d.Pos) {
			continue
		}
		kept = append(kept, d)
	}
	if r.ReportUnusedIgnores {
		for _, d := range ignores.unused() {
			kept = append(kept, Diagnostic{
				Pos:     pkg.Fset.Position(d.pos),
				Rule:    "lint-directive",
				Message: fmt.Sprintf("lint:ignore %s suppresses nothing; remove it", d.rule),
			})
		}
	}
	return kept
}
