package lint

import (
	"fmt"
	"go/token"
	"sort"
	"time"

	"pdspbench/internal/lint/flow"
)

// RuleTiming is one analyzer's wall-clock cost over a Run, summed across
// packages for per-package rules.
type RuleTiming struct {
	Rule     string        `json:"rule"`
	Duration time.Duration `json:"-"`
}

// Runner applies analyzers to loaded packages under a policy. The four
// whole-program rules share one flow.Program (call graph + fact store)
// built lazily from the same type-check pass the per-package rules use.
type Runner struct {
	// Analyzers defaults to Analyzers().
	Analyzers []*Analyzer
	// Config defaults to the built-in policy (each rule's DefaultDirs).
	Config *Config
	// ReportUnusedIgnores adds a diagnostic for every //lint:ignore that
	// suppressed nothing. Enabled by the CLI (full rule set), disabled by
	// single-rule fixture runs where most directives are out of scope.
	ReportUnusedIgnores bool

	timings map[string]time.Duration
}

// Timings returns per-analyzer wall time for the last Run, sorted by
// descending duration then name. The CLI prints it under -timings and
// embeds it in -json reports.
func (r *Runner) Timings() []RuleTiming {
	out := make([]RuleTiming, 0, len(r.timings))
	for rule, d := range r.timings {
		out = append(out, RuleTiming{Rule: rule, Duration: d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Duration != out[j].Duration {
			return out[i].Duration > out[j].Duration
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// Run analyzes the packages and returns findings sorted by position.
// Suppressed findings are dropped; malformed or stale //lint:ignore
// directives are themselves findings.
func (r *Runner) Run(pkgs []*Package) []Diagnostic {
	analyzers := r.Analyzers
	if analyzers == nil {
		analyzers = Analyzers()
	}
	r.timings = make(map[string]time.Duration, len(analyzers))
	var raw []Diagnostic
	reportFor := func(fset *token.FileSet) func(rule string, pos token.Pos, format string, args ...any) {
		return func(rule string, pos token.Pos, format string, args ...any) {
			raw = append(raw, Diagnostic{
				Pos:     fset.Position(pos),
				Rule:    rule,
				Message: fmt.Sprintf(format, args...),
			})
		}
	}

	// Suppression directives, collected across the whole load so a
	// whole-program rule's finding in any package meets that package's
	// //lint:ignore lines.
	ignores := make(map[string]*ignoreSet, len(pkgs)) // by filename-owning package
	byFile := make(map[string]*Package)
	for _, pkg := range pkgs {
		set := collectIgnores(pkg, reportFor(pkg.Fset))
		ignores[pkg.Path] = set
		for _, f := range pkg.Files {
			byFile[pkg.Fset.Position(f.Pos()).Filename] = pkg
		}
	}

	// Per-package rules.
	for _, pkg := range pkgs {
		report := reportFor(pkg.Fset)
		for _, a := range analyzers {
			if a.Run == nil || !r.Config.Applies(a, pkg.Dir) {
				continue
			}
			pass := &Pass{Pkg: pkg, Config: r.Config, report: report, rule: a.Name}
			start := time.Now()
			a.Run(pass)
			r.timings[a.Name] += time.Since(start)
		}
	}

	// Whole-program rules share one flow.Program built from the same
	// type-checked packages.
	var wholes []*Analyzer
	for _, a := range analyzers {
		if a.RunWhole == nil {
			continue
		}
		for _, pkg := range pkgs {
			if r.Config.Applies(a, pkg.Dir) {
				wholes = append(wholes, a)
				break
			}
		}
	}
	if len(wholes) > 0 && len(pkgs) > 0 {
		start := time.Now()
		prog := buildProgram(pkgs)
		r.timings["(flow-graph)"] = time.Since(start)
		fset := pkgs[0].Fset
		report := reportFor(fset)
		for _, a := range wholes {
			wp := &WholePass{
				Pkgs:      pkgs,
				Program:   prog,
				Config:    r.Config,
				analyzer:  a,
				fset:      fset,
				pkgByFile: byFile,
				report:    report,
			}
			start := time.Now()
			a.RunWhole(wp)
			r.timings[a.Name] += time.Since(start)
		}
	}

	// Apply suppressions; a diagnostic meets the directives of the
	// package its file belongs to.
	var kept []Diagnostic
	for _, d := range raw {
		if d.Rule != "lint-directive" {
			if pkg := byFile[d.Pos.Filename]; pkg != nil && ignores[pkg.Path].suppressed(d.Rule, d.Pos) {
				continue
			}
		}
		kept = append(kept, d)
	}
	if r.ReportUnusedIgnores {
		for _, pkg := range pkgs {
			set := ignores[pkg.Path]
			for _, d := range set.unused() {
				kept = append(kept, Diagnostic{
					Pos:     pkg.Fset.Position(d.pos),
					Rule:    "lint-directive",
					Message: fmt.Sprintf("lint:ignore %s suppresses nothing; remove it", d.rule),
				})
			}
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Pos, kept[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return kept[i].Rule < kept[j].Rule
	})
	return kept
}

// buildProgram converts the loaded packages into flow units and builds
// the shared call graph.
func buildProgram(pkgs []*Package) *flow.Program {
	units := make([]*flow.Unit, 0, len(pkgs))
	for _, pkg := range pkgs {
		units = append(units, &flow.Unit{
			Path:  pkg.Path,
			Dir:   pkg.Dir,
			Fset:  pkg.Fset,
			Files: pkg.Files,
			Pkg:   pkg.Types,
			Info:  pkg.Info,
		})
	}
	return flow.Build(units)
}
