// Command mainpkg proves package main is exempt: CLI printing paths may
// discard errors.
package main

import "os"

func main() {
	os.Remove("scratch")
}
