// Package errcheck exercises the error-discipline rule: silently
// discarded error results versus the sanctioned discard forms.
package errcheck

import (
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"strings"
)

func discards(path string) {
	os.Remove(path) // want `error that is silently discarded`
}

func discardsMethod(f *os.File) {
	f.Close() // want `error that is silently discarded`
}

func handles(path string) error {
	return os.Remove(path)
}

func explicitDiscard(path string) {
	// Explicit assignment is visible at review time, so it is allowed.
	_ = os.Remove(path)
}

func prints(w io.Writer) {
	fmt.Fprintf(w, "printing paths may discard\n")
}

func builds() string {
	var b strings.Builder
	b.WriteString("strings.Builder never fails")
	return b.String()
}

func hashes(data []byte) uint64 {
	h := fnv.New64a()
	h.Write(data) // hash.Hash documents Write never returns an error
	return h.Sum64()
}

func deferredClose(f *os.File) {
	defer f.Close() // deferred cleanup is conventional; not flagged
}
