package worker

import "fixture/queue"

// Stash outlives any single lease; parking a token here is the escape
// the rule exists to catch.
type Stash struct {
	Token string
}

// UseAfterComplete keeps using the token after consuming it.
func UseAfterComplete(c *queue.Client, j *queue.Job) {
	_ = c.Complete(j.ID, j.LeaseID)
	_ = c.Extend(j.ID, j.LeaseID) // want `used after being consumed`
}

// FailThenDone consumes in a terminating branch; the fall-through path
// still owns the token, so the completion below is clean.
func FailThenDone(c *queue.Client, j *queue.Job, failed bool) error {
	if failed {
		_ = c.Fail(j.ID, j.LeaseID, "boom")
		return nil
	}
	return c.Complete(j.ID, j.LeaseID)
}

// TrackedLocal follows the token's linearity through a local variable.
func TrackedLocal(c *queue.Client, j *queue.Job) {
	token := j.LeaseID
	_ = c.Complete(j.ID, token)
	_ = c.Extend(j.ID, token) // want `used after being consumed`
}

// ExtendThenComplete is the healthy renew-then-finish sequence: Extend
// does not consume, so the later Complete is the token's single use.
func ExtendThenComplete(c *queue.Client, j *queue.Job) {
	_ = c.Extend(j.ID, j.LeaseID)
	_ = c.Complete(j.ID, j.LeaseID)
}

// Keep parks a token in a struct field that outlives the lease.
func Keep(s *Stash, j *queue.Job) {
	s.Token = j.LeaseID // want `stored into field`
}

// Index parks a token in a map.
func Index(m map[string]string, j *queue.Job) {
	m[j.ID] = j.LeaseID // want `stored into a map`
}

// Echo copies a token between the queue's own LeaseID slots — the
// blessed bookkeeping shape (minting, clearing, echoing into requests).
func Echo(dst *queue.Job, src *queue.Job) {
	dst.LeaseID = src.LeaseID
}

// Request mirrors the wire shape; a LeaseID key is the blessed echo.
type Request struct {
	LeaseID string
}

// Wire builds the consuming request — clean.
func Wire(j *queue.Job) Request {
	return Request{LeaseID: j.LeaseID}
}

// Record parks the token under a differently-named field.
type Record struct{ Token string }

// Leak stores the token into a composite literal field that is not the
// lease's own slot.
func Leak(j *queue.Job) Record {
	return Record{Token: j.LeaseID} // want `composite literal`
}

// Audit reuses a consumed token deliberately; the directive documents
// the exemption and exercises suppression.
func Audit(c *queue.Client, j *queue.Job) {
	_ = c.Complete(j.ID, j.LeaseID)
	//lint:ignore lease-linearity deliberate stale echo retained to exercise suppression
	_ = c.Extend(j.ID, j.LeaseID)
}
