// Package queue mirrors the shape the rule keys on: LeaseID fields on
// structs declared in a package named "queue", and Complete/Fail
// methods that consume the token (Extend renews it).
package queue

// Job is a leased unit of fixture work.
type Job struct {
	ID      string
	LeaseID string
}

// Client consumes lease tokens on Complete/Fail.
type Client struct{}

// Complete consumes the lease.
func (c *Client) Complete(id, leaseID string) error { return nil }

// Fail consumes the lease.
func (c *Client) Fail(id, leaseID, msg string) error { return nil }

// Extend renews the lease without consuming it.
func (c *Client) Extend(id, leaseID string) error { return nil }
