// Package spawn exercises the goroutine-hygiene rule: WaitGroup
// tracking of go statements and close() sidedness.
package spawn

import "sync"

func untracked() {
	go func() {}() // want `not tracked by a sync\.WaitGroup`
}

func tracked(work []func()) {
	var wg sync.WaitGroup
	for _, w := range work {
		wg.Add(1)
		go func(w func()) {
			defer wg.Done()
			w()
		}(w)
	}
	wg.Wait()
}

func addWithoutDone() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {}() // want `never calls WaitGroup\.Done`
	wg.Wait()
}

func namedBody(wg *sync.WaitGroup, body func()) {
	wg.Add(1)
	go body() // want `never calls WaitGroup\.Done`
}

func closeAfterReceive(ch chan int) int {
	v := <-ch
	close(ch) // want `only the sending side may close`
	return v
}

func closeAfterSend(ch chan int) {
	ch <- 1
	close(ch)
}

// closeAsOwner neither sends nor receives here; the owner handing out a
// pre-closed channel is legitimate (e.g. an already-cancelled signal).
func closeAsOwner() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}

func closeAfterRange(ch chan int) int {
	sum := 0
	for v := range ch {
		sum += v
	}
	close(ch) // want `only the sending side may close`
	return sum
}
