package pipeline

import (
	"context"
	"time"
)

// Fetch blocks (time.Sleep) and is reachable from main, but offers no
// way to cancel the wait.
func Fetch(url string) string { // want `accepts no context.Context`
	time.Sleep(10 * time.Millisecond)
	return url
}

// FetchCtx is the fixed shape: it blocks, but the select can be
// interrupted through ctx.
func FetchCtx(ctx context.Context, url string) string {
	t := time.NewTimer(time.Millisecond)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
	return url
}

// Detach mints a root context below the entry layer.
func Detach() context.Context {
	return context.Background() // want `severs the cancellation chain`
}

// Pure is reachable and has no ctx, but never blocks — nothing to
// cancel, nothing to report.
func Pure(a, b int) int { return a + b }

// Unreached blocks without ctx but no entry point reaches it, so the
// rule stays quiet (dead code is vet's problem, not cancellation's).
func Unreached() { time.Sleep(time.Millisecond) }

// Legacy blocks without ctx on a reachable path; the suppression
// documents why it is kept.
//
//lint:ignore ctx-propagation legacy polling helper retained to exercise suppression
func Legacy() { time.Sleep(time.Millisecond) }
