package main

import (
	"context"

	"fixture/pipeline"
)

// main is the entry layer: it may mint the root context.
func main() {
	ctx := context.Background()
	pipeline.Fetch("x")
	pipeline.FetchCtx(ctx, "y")
	pipeline.Detach()
	pipeline.Pure(1, 2)
	pipeline.Legacy()
	run(ctx)
}

// run is a main-package command helper — entry layer too, so its lack
// of blocking ops or root contexts is irrelevant either way.
func run(ctx context.Context) {
	_ = ctx
}
