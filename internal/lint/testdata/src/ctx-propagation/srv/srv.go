package srv

import "net/http"

// Handle is an entry by signature (http.ResponseWriter, *http.Request);
// what it reaches must be cancellable via the request context.
func Handle(w http.ResponseWriter, r *http.Request) {
	sleepy()
}

// sleepy blocks on a channel with no ctx, reachable from the handler.
func sleepy() { // want `accepts no context.Context`
	ch := make(chan int)
	<-ch
}
