package queue

// Worker is the fixture daemon; its methods are fabric entry points.
type Worker struct{}

// Run is an entry: it blocks only transitively and the entry layer is
// exempt from the ctx-parameter requirement.
func (w *Worker) Run() {
	w.poll()
}

// poll blocks below the entry layer with no ctx.
func (w *Worker) poll() { // want `accepts no context.Context`
	ch := make(chan struct{})
	select {
	case <-ch:
	}
}
