// Package locks exercises the lock-discipline rule: by-value lock
// copies and Lock/Unlock pairing.
package locks

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

func byValueParam(mu sync.Mutex) { // want `passes sync\.Mutex by value`
	mu.Lock()
	defer mu.Unlock()
}

func structByValue(g guarded) int { // want `passes sync\.Mutex by value`
	return g.n
}

func wgByValue(wg sync.WaitGroup) { // want `passes sync\.WaitGroup by value`
	wg.Wait()
}

func byPointer(g *guarded) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
}

func copyDeref(g *guarded) int {
	cp := *g // want `assignment copies a value containing sync\.Mutex`
	return cp.n
}

func passesCopy(g *guarded) int {
	return structByValue(*g) // want `passes a value containing sync\.Mutex by value`
}

func lockNoUnlock(g *guarded) {
	g.mu.Lock() // want `without a matching Unlock`
	g.n++
}

func lockExplicitUnlock(g *guarded) {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

func rlockPaired(mu *sync.RWMutex) bool {
	mu.RLock()
	defer mu.RUnlock()
	return true
}

func rlockUnpaired(mu *sync.RWMutex) {
	mu.RLock() // want `without a matching RUnlock`
}

// wrongCounterpart takes a write lock but only ever read-unlocks.
func wrongCounterpart(mu *sync.RWMutex) {
	mu.Lock() // want `without a matching Unlock`
	mu.RUnlock()
}
