// Package user builds figures against the miniature metrics registry.
package user

import "fixture/metrics"

func viaConstant() *metrics.Figure {
	return &metrics.Figure{ID: metrics.FigKnown, Title: "ok"}
}

// viaRegisteredLiteral spells a registered name literally; allowed,
// though constants are preferred.
func viaRegisteredLiteral() metrics.Figure {
	return metrics.Figure{ID: "fig-other", Title: "ok"}
}

func viaUnregisteredLiteral() *metrics.Figure {
	return &metrics.Figure{ID: "fig-rogue", Title: "bad"} // want `not declared in the metrics registry`
}

func viaUnexportedValue() *metrics.Figure {
	return &metrics.Figure{ID: "not-registered", Title: "bad"} // want `not declared in the metrics registry`
}
