// Package metrics is a miniature of internal/metrics: the Figure type
// plus its exported string-constant registry.
package metrics

// Registered figure IDs.
const (
	FigKnown = "fig-known"
	FigOther = "fig-other"
)

// unexported constants are not part of the registry.
const internalTag = "not-registered"

// Figure mirrors the real metrics.Figure shape.
type Figure struct {
	ID    string
	Title string
}
