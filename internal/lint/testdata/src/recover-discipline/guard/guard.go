// Package guard exercises the recover-discipline rule: recoveries must
// re-panic or route the panic value into a typed error.
package guard

import "errors"

// CrashError is the typed error a supervisor wraps panics into.
type CrashError struct{ Cause any }

func (e *CrashError) Error() string { return "crash" }

// swallowed discards the panic value entirely.
func swallowed() {
	defer func() {
		recover() // want `recover\(\) result discarded`
	}()
}

// blanked assigns the value to the blank identifier — same silence.
func blanked() {
	defer func() {
		_ = recover() // want `recover\(\) result discarded`
	}()
}

// noRoute uses the value but never turns it into an error or re-panics.
func noRoute(log func(any)) {
	defer func() {
		if r := recover(); r != nil { // want `recover\(\) without an error path`
			log(r)
		}
	}()
}

// wrapped routes the panic into the typed error — the sanctioned shape.
func wrapped() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &CrashError{Cause: r}
		}
	}()
	return nil
}

// rethrown filters the panic and re-raises what it cannot handle.
func rethrown(sentinel error) {
	defer func() {
		if r := recover(); r != nil {
			e, ok := r.(error)
			if !ok || !errors.Is(e, sentinel) {
				panic(r)
			}
		}
	}()
}

// recorded hands the value to a recorder whose name marks the route.
func recorded(recordPanic func(any)) {
	defer func() {
		if r := recover(); r != nil {
			recordPanic(r)
		}
	}()
}
