package chans

import "context"

// CloseParam closes a channel it did not create: the caller may close
// it too, and a double close panics.
func CloseParam(ch chan int) {
	close(ch) // want `channel received as a parameter`
}

// Owner creates, sends, closes — the ownership shape the rule wants.
func Owner() <-chan int {
	ch := make(chan int, 1)
	ch <- 1
	close(ch)
	return ch
}

// SendAfterClose sends on a channel already closed on the same path.
func SendAfterClose() <-chan int {
	ch := make(chan int, 1)
	close(ch)
	ch <- 1 // want `after close`
	return ch
}

// CloseInDeadBranch closes and returns; the fall-through send never
// runs after the close, so it is clean.
func CloseInDeadBranch(done bool) {
	ch := make(chan int, 1)
	if done {
		close(ch)
		return
	}
	ch <- 1
}

// SpinForever launches a goroutine whose loop has no exit: no return,
// no break, no ctx.Done() case — it can never be stopped.
func SpinForever() {
	go func() { // want `no cancellation path`
		for {
			work()
		}
	}()
}

// SpinWithDone exits through ctx.Done — the canonical cancellable loop.
func SpinWithDone(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
			}
			work()
		}
	}()
}

// SpinWithBreak exits via an unlabeled break binding to the loop.
func SpinWithBreak(stop chan struct{}) {
	go func() {
		for {
			if _, open := <-stop; !open {
				break
			}
			work()
		}
	}()
}

// RangeDrain consumes until the owner closes the channel; range exits
// on close, so no cancellation path is demanded.
func RangeDrain(ch <-chan int) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}

func work() {}

// CloseParamDocumented keeps a non-owner close on purpose; the
// directive documents it and exercises suppression.
func CloseParamDocumented(ch chan int) {
	//lint:ignore chan-discipline fixture documents a non-owner close to exercise suppression
	close(ch)
}
