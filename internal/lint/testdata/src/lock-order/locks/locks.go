package locks

import "sync"

// A, B, C form the fixture's lock classes; the cycle A→B→A is built
// from two functions that disagree on the order.
var (
	A sync.Mutex
	B sync.Mutex
	C sync.Mutex
)

// AThenB establishes the order A → B.
func AThenB() {
	A.Lock()
	defer A.Unlock()
	B.Lock() // want `lock-order cycle`
	B.Unlock()
}

// BThenA closes the cycle.
func BThenA() {
	B.Lock()
	defer B.Unlock()
	A.Lock() // want `lock-order cycle`
	A.Unlock()
}

// LockC acquires C on its own — no order edge by itself.
func LockC() {
	C.Lock()
	defer C.Unlock()
}

// Nested reaches C through a call while holding A: the edge A → C comes
// from the callee's transitive acquire set.
func Nested() {
	A.Lock()
	defer A.Unlock()
	LockC() // want `lock-order cycle`
}

// Inverse acquires A directly while holding C, closing the A→C cycle.
func Inverse() {
	C.Lock()
	defer C.Unlock()
	A.Lock() // want `lock-order cycle`
	A.Unlock()
}

// Node demonstrates that same-class hand-over-hand locking is not an
// order violation: parent and child are one class, and the rule never
// emits self-edges.
type Node struct {
	mu   sync.Mutex
	next *Node
}

// Walk locks parent then child — one class, no edge, no finding.
func Walk(n *Node) {
	n.mu.Lock()
	if n.next != nil {
		n.next.mu.Lock()
		n.next.mu.Unlock()
	}
	n.mu.Unlock()
}

// Sequential acquires in strictly released order — held set is empty at
// each acquisition, so no edges and no findings.
func Sequential() {
	B.Lock()
	B.Unlock()
	A.Lock()
	A.Unlock()
}
