package locks

import "sync"

// D and E carry the suppressed inversion: DThenE's edge is reported,
// EThenD documents the deliberate inversion with a directive.
var (
	D sync.Mutex
	E sync.Mutex
)

// DThenE establishes D → E; the cycle through EThenD flags it here.
func DThenE() {
	D.Lock()
	defer D.Unlock()
	E.Lock() // want `lock-order cycle`
	E.Unlock()
}

// EThenD keeps the inversion on purpose to exercise suppression.
func EThenD() {
	E.Lock()
	defer E.Unlock()
	//lint:ignore lock-order deliberate inversion retained to exercise suppression
	D.Lock()
	D.Unlock()
}
