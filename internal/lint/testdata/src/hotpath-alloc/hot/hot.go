// Package hot exercises the hotpath-alloc rule: per-call allocators on
// the data plane.
package hot

import (
	"fmt"
	"hash/fnv"
	"time"
)

func hashPerTuple(b []byte) uint64 {
	h := fnv.New64a() // want `fnv\.New64a allocates on every call`
	h.Write(b)
	return h.Sum64()
}

func hash32PerTuple(b []byte) uint32 {
	h := fnv.New32() // want `fnv\.New32 allocates on every call`
	h.Write(b)
	return h.Sum32()
}

func throttleTick(done chan struct{}) {
	select {
	case <-time.After(time.Millisecond): // want `time\.After allocates on every call`
	case <-done:
	}
}

func labelPerRecord(op string, n int) string {
	return fmt.Sprintf("%s-%d", op, n) // want `fmt\.Sprintf allocates on every call`
}

func suppressedColdPath(op string, v any) string {
	//lint:ignore hotpath-alloc panic bookkeeping runs once per failure, not per tuple
	return fmt.Sprintf("%s: %v", op, v)
}

// allowedConstructs shows the replacements the rule points at: a reused
// timer and an inline FNV loop.
func allowedConstructs(b []byte) uint64 {
	tm := time.NewTimer(time.Millisecond)
	defer tm.Stop()
	h := uint64(14695981039346656037)
	for _, c := range b {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h
}
