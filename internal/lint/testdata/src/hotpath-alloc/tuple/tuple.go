// Package tuple mirrors the repo's tuple package shape: a pooled row
// type with a Get constructor and a ColumnBatch with MaterializeRow.
// This file is NOT a columnar file (tuple.go), so the cold-path
// formatting below is legal even though the package is in scope.
package tuple

import "fmt"

// Tuple is a minimal pooled row.
type Tuple struct {
	Values []int64
}

// Get returns a pooled tuple — the boxing call kernel loops must avoid.
func Get(width int) *Tuple {
	return &Tuple{Values: make([]int64, width)}
}

// ColumnBatch is a minimal struct-of-arrays batch.
type ColumnBatch struct {
	ints []int64
	sel  []int32
}

// Sel returns the selection vector.
func (b *ColumnBatch) Sel() []int32 { return b.sel }

// MaterializeRow boxes one row out of the batch. The single Get here is
// outside any loop — boxing once per call is the method's whole job.
func (b *ColumnBatch) MaterializeRow(i int) *Tuple {
	t := Get(1)
	t.Values[0] = b.ints[i]
	return t
}

// String formats for diagnostics: a cold path in a non-columnar file,
// where fmt stays legal.
func (t *Tuple) String() string {
	return fmt.Sprintf("tuple%v", t.Values)
}
