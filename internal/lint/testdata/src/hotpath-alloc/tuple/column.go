// column.go is a columnar file inside the tuple package, so kernel-loop
// bans apply: no fmt and no per-row boxing inside loops.
package tuple

import "fmt"

// sumSelected stays on the slabs — the shape kernel loops should have.
func sumSelected(b *ColumnBatch) int64 {
	var sum int64
	for _, i := range b.sel {
		sum += b.ints[i]
	}
	return sum
}

// debugDump formats per row inside the loop: banned in columnar files.
func debugDump(b *ColumnBatch) {
	for _, i := range b.sel {
		fmt.Println(b.ints[i]) // want `fmt\.Println inside a kernel loop runs per row`
	}
}

// boxAll boxes a pooled tuple per iteration via the unqualified
// in-package constructor: banned.
func boxAll(b *ColumnBatch) []*Tuple {
	out := make([]*Tuple, 0, len(b.sel))
	for _, i := range b.sel {
		t := Get(1) // want `tuple\.Get inside a kernel loop boxes a pooled row`
		t.Values[0] = b.ints[i]
		out = append(out, t)
	}
	return out
}

// fallbackRows is a deliberate row fallback; the suppression keeps it
// visible to the linter without failing the build.
func fallbackRows(b *ColumnBatch, sink func(*Tuple)) {
	for _, i := range b.sel {
		//lint:ignore hotpath-alloc row-only consumer downstream; fallback materializes by design
		sink(b.MaterializeRow(int(i)))
	}
}
