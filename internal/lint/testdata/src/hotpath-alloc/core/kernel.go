// Package core's kernel.go is a columnar file: compiled filter kernels
// that must stay on the column slabs.
package core

import (
	"fmt"

	"fixture/tuple"
)

// selectGreater is a clean vectorized kernel: slab reads, selection
// writes, nothing else.
func selectGreater(b *tuple.ColumnBatch, ints []int64, lit int64) []int32 {
	out := b.Sel()[:0]
	for _, i := range b.Sel() {
		if ints[i] > lit {
			out = append(out, i)
		}
	}
	return out
}

// traceKernel materializes and formats per row inside the kernel loop:
// both banned in columnar files.
func traceKernel(b *tuple.ColumnBatch) {
	for _, i := range b.Sel() {
		t := b.MaterializeRow(int(i)) // want `MaterializeRow inside a kernel loop boxes a pooled row`
		fmt.Printf("row %v\n", t)     // want `fmt\.Printf inside a kernel loop runs per row`
	}
}
