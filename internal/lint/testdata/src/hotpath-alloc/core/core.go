// core.go is not a columnar file, so inside the core package it sits
// outside the rule entirely: spec rendering may format freely, even in
// loops.
package core

import "fmt"

// renderSpecs formats in a loop on the control plane — legal here.
func renderSpecs(names []string) []string {
	out := make([]string, 0, len(names))
	for i, n := range names {
		out = append(out, fmt.Sprintf("%d:%s", i, n))
	}
	return out
}
