// Package cold sits outside the policy's scoped dirs, so the same
// constructs are fine here — control-plane code may format freely.
package cold

import (
	"fmt"
	"hash/fnv"
)

func report(op string, n int) string {
	return fmt.Sprintf("%s processed %d", op, n)
}

func checksum(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}
