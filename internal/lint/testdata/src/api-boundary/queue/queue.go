// Package queue stands in for internal/queue: subsystem-private state
// behind a restricted-import fence.
package queue

// Lease is the fenced entry point.
func Lease() {}
