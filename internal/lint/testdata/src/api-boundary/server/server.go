// Package server must reach the engine only through the controller.
package server

import (
	"fixture/controller"
	"fixture/engine" // want `must not import engine directly; go through controller`
)

// Handle serves one request.
func Handle() {
	controller.Execute()
	engine.Run()
}
