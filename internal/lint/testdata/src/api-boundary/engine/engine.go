// Package engine stands in for internal/engine.
package engine

// Run is the forbidden direct entry point.
func Run() {}
