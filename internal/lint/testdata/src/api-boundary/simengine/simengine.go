// Package simengine stands in for internal/simengine — the other side
// of the dual-import constraint.
package simengine

// Simulate is the simulator's entry point.
func Simulate() {}
