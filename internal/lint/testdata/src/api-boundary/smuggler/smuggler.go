// Package smuggler reaches into the fenced queue from outside its allow
// set — the restricted-import check must flag it.
package smuggler

import "fixture/queue" // want `queue may be imported only by \[queue server cli\]; smuggler is outside the fence`

// Steal bypasses the dispatcher surface.
func Steal() {
	queue.Lease()
}
