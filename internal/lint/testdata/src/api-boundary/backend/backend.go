// Package backend is the sanctioned bridge: the one package allowed to
// import both execution engines and hide them behind one run protocol.
package backend

import (
	"fixture/engine"
	"fixture/simengine"
)

// Run dispatches to either engine behind the shared protocol.
func Run(sim bool) {
	if sim {
		simengine.Simulate()
		return
	}
	engine.Run()
}
