// Package cli sits inside the queue's import fence: a sanctioned
// importer listed in the restricted_imports allow set.
package cli

import "fixture/queue"

// Drain pulls work through the sanctioned surface.
func Drain() {
	queue.Lease()
}
