// Package controller is the sanctioned mediator; it may import engine.
package controller

import "fixture/engine"

// Execute routes work to the engine on the server's behalf.
func Execute() {
	engine.Run()
}
