// Package rogue wires itself to both engines at once, bypassing the
// backend bridge — the dual-import check must flag the pair.
package rogue

import (
	"fixture/engine"
	"fixture/simengine" // want `imports both engine and simengine; only \[backend\] may bridge them`
)

// Shortcut runs both engines directly.
func Shortcut() {
	engine.Run()
	simengine.Simulate()
}
