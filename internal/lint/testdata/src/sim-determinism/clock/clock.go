// Package clock exercises the sim-determinism rule: wall-clock reads,
// global randomness, and map-order-dependent results.
package clock

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want `wall-clock time\.Now`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `wall-clock time\.Since`
}

func napThenFire(fire func()) {
	time.Sleep(time.Millisecond) // want `wall-clock time\.Sleep`
	fire()
}

func globalRand() int {
	return rand.Intn(10) // want `global rand\.Intn`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global rand\.Shuffle`
}

// seeded constructs an explicit generator; the constructor funcs are the
// sanctioned entry points.
func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

func mapOrder(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order is nondeterministic`
		keys = append(keys, k)
	}
	return keys
}

// mapOrderSorted sorts before returning, so iteration order cannot leak.
func mapOrderSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// mapReduced returns an order-independent aggregate, not the slice.
func mapReduced(m map[string]int) int {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return len(keys)
}

// sliceOrder ranges over a slice, which is ordered; no diagnostic.
func sliceOrder(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
