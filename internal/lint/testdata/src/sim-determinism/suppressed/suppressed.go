// Package suppressed proves //lint:ignore silences a finding when it
// carries a rule name and a reason.
package suppressed

import "time"

func calibrationOnly() int64 {
	//lint:ignore sim-determinism one-off calibration probe, result never feeds simulated state
	return time.Now().UnixNano()
}
