package lint

import (
	"go/ast"
	"go/types"
)

// GoroutineHygiene enforces two invariants on the dataflow engine's
// concurrency: every `go` statement must be tracked by a sync.WaitGroup
// (Add in the launching function, Done in the goroutine body) so no
// operator instance can outlive its runtime, and close() may only appear
// on the sending side of a channel — closing from the receiving side is
// the classic "send on closed channel" panic factory.
func GoroutineHygiene() *Analyzer {
	return &Analyzer{
		Name: "goroutine-hygiene",
		Doc: "Every go statement in internal/engine must be tracked by a sync.WaitGroup " +
			"(Add before launch, Done in the body) or an errgroup-style wrapper, and close() " +
			"may only appear in functions that send on the channel, never ones that receive.",
		DefaultDirs: []string{"internal/engine"},
		Run:         runGoroutineHygiene,
	}
}

func runGoroutineHygiene(p *Pass) {
	for _, f := range p.Pkg.Files {
		walkFunctions(f, func(fn ast.Node, body *ast.BlockStmt) {
			checkGoStatements(p, body)
			checkCloses(p, body)
		})
	}
}

// checkGoStatements verifies WaitGroup tracking for go statements whose
// nearest enclosing function is body's function.
func checkGoStatements(p *Pass, body *ast.BlockStmt) {
	var goStmts []*ast.GoStmt
	inspectShallow(body, func(n ast.Node) bool {
		if g, isGo := n.(*ast.GoStmt); isGo {
			goStmts = append(goStmts, g)
			// Do not descend: the goroutine body's own go statements
			// belong to that function literal's walkFunctions visit.
			return false
		}
		return true
	})
	if len(goStmts) == 0 {
		return
	}
	// The launching function must arrange tracking: a WaitGroup.Add call
	// anywhere in its body (including inside loops around the launch).
	hasAdd := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, isCall := n.(*ast.CallExpr); isCall {
			if _, pkgPath, typeName, method, ok := methodCallOn(p, call); ok &&
				pkgPath == "sync" && typeName == "WaitGroup" && method == "Add" {
				hasAdd = true
			}
		}
		return true
	})
	for _, g := range goStmts {
		if !hasAdd {
			p.Reportf(g.Pos(), "go statement is not tracked by a sync.WaitGroup in the same function (no Add call); untracked goroutines leak")
			continue
		}
		if !goroutineSignalsDone(p, g) {
			p.Reportf(g.Pos(), "goroutine never calls WaitGroup.Done; the launching function's Wait will hang or the goroutine leaks")
		}
	}
}

// goroutineSignalsDone reports whether the launched function is a
// literal whose body calls (usually defers) WaitGroup.Done.
func goroutineSignalsDone(p *Pass, g *ast.GoStmt) bool {
	lit, isLit := g.Call.Fun.(*ast.FuncLit)
	if !isLit {
		return false
	}
	done := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, isCall := n.(*ast.CallExpr); isCall {
			if _, pkgPath, typeName, method, ok := methodCallOn(p, call); ok &&
				pkgPath == "sync" && typeName == "WaitGroup" && method == "Done" {
				done = true
			}
		}
		return true
	})
	return done
}

// checkCloses flags close(ch) inside functions that receive from ch but
// never send on it.
func checkCloses(p *Pass, body *ast.BlockStmt) {
	type chanUse struct {
		closes   []*ast.CallExpr
		sends    bool
		receives bool
	}
	uses := map[string]*chanUse{} // keyed by rendered channel expression
	use := func(expr ast.Expr) *chanUse {
		key := types.ExprString(expr)
		if uses[key] == nil {
			uses[key] = &chanUse{}
		}
		return uses[key]
	}
	inspectShallow(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			if isBuiltinCall(p, s, "close") && len(s.Args) == 1 {
				u := use(s.Args[0])
				u.closes = append(u.closes, s)
			}
		case *ast.SendStmt:
			use(s.Chan).sends = true
		case *ast.UnaryExpr:
			if s.Op.String() == "<-" {
				use(s.X).receives = true
			}
		case *ast.RangeStmt:
			if t := p.TypeOf(s.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					use(s.X).receives = true
				}
			}
		}
		return true
	})
	for key, u := range uses {
		if u.receives && !u.sends {
			for _, c := range u.closes {
				p.Reportf(c.Pos(), "close(%s) in a function that receives from it; only the sending side may close a channel", key)
			}
		}
	}
}
