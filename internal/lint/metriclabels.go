package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// MetricLabels keeps metric/figure names closed over a single registry:
// any metrics.Figure built with a literal ID must use a name declared as
// an exported string constant in the metrics package itself. Free-form
// names fork the result namespace — two experiments writing "fig3_top"
// and "fig3-top" silently stop being comparable.
func MetricLabels() *Analyzer {
	return &Analyzer{
		Name: "metric-label-consistency",
		Doc: "metrics.Figure literals must take their ID from the exported string-constant " +
			"registry in internal/metrics (the Fig* names); ad-hoc literal IDs fork the " +
			"result namespace.",
		Run: runMetricLabels,
	}
}

func runMetricLabels(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, isLit := n.(*ast.CompositeLit)
			if !isLit {
				return true
			}
			named := namedFigureType(p.TypeOf(lit))
			if named == nil {
				return true
			}
			registry := stringConsts(named.Obj().Pkg())
			if len(registry) == 0 {
				return true
			}
			for _, elt := range lit.Elts {
				kv, isKV := elt.(*ast.KeyValueExpr)
				if !isKV {
					continue
				}
				key, isID := kv.Key.(*ast.Ident)
				if !isID || key.Name != "ID" {
					continue
				}
				basic, isBasic := kv.Value.(*ast.BasicLit)
				if !isBasic {
					continue // constants and variables resolve to the registry by construction
				}
				val, err := strconv.Unquote(basic.Value)
				if err != nil {
					continue
				}
				if _, ok := registry[val]; !ok {
					p.Reportf(basic.Pos(), "figure ID %q is not declared in the %s registry; add a constant there or use one of: %s",
						val, named.Obj().Pkg().Name(), strings.Join(registryNames(registry), ", "))
				}
			}
			return true
		})
	}
}

// namedFigureType unwraps pointers and reports the named type when it is
// a Figure declared in a metrics package.
func namedFigureType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return nil
	}
	obj := named.Obj()
	if obj.Name() != "Figure" || obj.Pkg() == nil || obj.Pkg().Name() != "metrics" {
		return nil
	}
	return named
}

// stringConsts collects the exported string constants of a package:
// value → constant name.
func stringConsts(pkg *types.Package) map[string]string {
	out := map[string]string{}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, isConst := scope.Lookup(name).(*types.Const)
		if !isConst || !c.Exported() || c.Val().Kind() != constant.String {
			continue
		}
		out[constant.StringVal(c.Val())] = name
	}
	return out
}

func registryNames(registry map[string]string) []string {
	names := make([]string, 0, len(registry))
	for _, name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
