package lint

import (
	"go/ast"
	"strconv"
)

// defaultBoundaries are the shipped architectural constraints, mirroring
// the paper's WUI → controller → SUT layering: the HTTP layer and the
// benchmark controller never touch an execution engine directly — all
// runs flow through the internal/backend protocol, and the server talks
// to backends only via the controller.
var defaultBoundaries = []Boundary{
	{From: "internal/server", Forbid: "internal/engine", Via: "internal/controller"},
	{From: "internal/server", Forbid: "internal/simengine", Via: "internal/controller"},
	{From: "internal/controller", Forbid: "internal/engine", Via: "internal/backend"},
	{From: "internal/controller", Forbid: "internal/simengine", Via: "internal/backend"},
	{From: "cmd/pdspbench", Forbid: "internal/engine", Via: "internal/backend"},
	{From: "cmd/pdspbench", Forbid: "internal/simengine", Via: "internal/backend"},
}

// defaultDualImports pin the one-bridge invariant of the execution
// layer: the real engine and the simulator are two backends behind one
// run protocol, so internal/backend is the only package allowed to see
// both. Everything else picks a side or stays above the protocol.
var defaultDualImports = []DualImport{
	{A: "internal/engine", B: "internal/simengine", Allow: []string{"internal/backend"}},
}

// defaultRestrictedImports fence off the campaign fabric: the queue's
// lease ledger is dispatcher-private state, so only the dispatcher
// (internal/server), the campaign layer (internal/controller) and the
// CLI may import it. An engine or backend reaching into the queue would
// invert the fabric's layering — workers talk to the dispatcher over
// HTTP, never to the ledger directly.
var defaultRestrictedImports = []RestrictedImport{
	{Pkg: "internal/queue", Allow: []string{
		"internal/queue", "internal/server", "internal/controller", "cmd/pdspbench",
	}},
}

// APIBoundary enforces layered imports: packages under a constrained
// directory may not import a forbidden package directly and must go
// through the sanctioned mediator; and no package outside the allowed
// bridge may import both sides of a dual-import constraint. Boundaries
// come from the policy config, defaulting to the server/controller/CLI
// → backend → engine layering.
func APIBoundary() *Analyzer {
	return &Analyzer{
		Name: "api-boundary",
		Doc: "internal/server, internal/controller, and cmd/pdspbench must not import " +
			"internal/engine or internal/simengine directly; execution goes through " +
			"internal/backend, and only internal/backend may import both engines. " +
			"internal/queue may be imported only by the dispatcher (internal/server), " +
			"internal/controller, and cmd/pdspbench. Additional boundaries, dual-import " +
			"constraints, and restricted imports can be declared in the policy config.",
		Run: runAPIBoundary,
	}
}

func runAPIBoundary(p *Pass) {
	boundaries := defaultBoundaries
	if p.Config != nil && len(p.Config.Boundaries) > 0 {
		boundaries = p.Config.Boundaries
	}
	module := modulePathOf(p.Pkg)
	for _, b := range boundaries {
		if !dirHasPrefix(p.Pkg.Dir, b.From) {
			continue
		}
		for _, f := range p.Pkg.Files {
			for _, imp := range f.Imports {
				rel, ok := relImport(imp, module)
				if !ok || !dirHasPrefix(rel, b.Forbid) {
					continue
				}
				p.Reportf(imp.Pos(), "%s must not import %s directly; go through %s", b.From, b.Forbid, b.Via)
			}
		}
	}

	dual := defaultDualImports
	if p.Config != nil && len(p.Config.DualImports) > 0 {
		dual = p.Config.DualImports
	}
	for _, di := range dual {
		allowed := false
		for _, a := range di.Allow {
			if dirHasPrefix(p.Pkg.Dir, a) {
				allowed = true
				break
			}
		}
		if allowed {
			continue
		}
		// The diagnostic lands on the B-side import: with A established
		// elsewhere in the package, that import is the one that closes
		// the forbidden pair.
		var fromA, fromB *ast.ImportSpec
		for _, f := range p.Pkg.Files {
			for _, imp := range f.Imports {
				rel, ok := relImport(imp, module)
				if !ok {
					continue
				}
				if fromA == nil && dirHasPrefix(rel, di.A) {
					fromA = imp
				}
				if fromB == nil && dirHasPrefix(rel, di.B) {
					fromB = imp
				}
			}
		}
		if fromA != nil && fromB != nil {
			p.Reportf(fromB.Pos(), "%s imports both %s and %s; only %v may bridge them",
				p.Pkg.Dir, di.A, di.B, di.Allow)
		}
	}

	restricted := defaultRestrictedImports
	if p.Config != nil && len(p.Config.RestrictedImports) > 0 {
		restricted = p.Config.RestrictedImports
	}
	for _, ri := range restricted {
		allowed := false
		for _, a := range ri.Allow {
			if dirHasPrefix(p.Pkg.Dir, a) {
				allowed = true
				break
			}
		}
		if allowed {
			continue
		}
		for _, f := range p.Pkg.Files {
			for _, imp := range f.Imports {
				rel, ok := relImport(imp, module)
				if !ok || !dirHasPrefix(rel, ri.Pkg) {
					continue
				}
				p.Reportf(imp.Pos(), "%s may be imported only by %v; %s is outside the fence",
					ri.Pkg, ri.Allow, p.Pkg.Dir)
			}
		}
	}
}

// relImport resolves an import spec to its module-relative directory.
func relImport(imp *ast.ImportSpec, module string) (string, bool) {
	path, err := strconv.Unquote(imp.Path.Value)
	if err != nil {
		return "", false
	}
	return moduleRelative(path, module)
}

// moduleRelative strips the module prefix from an import path.
func moduleRelative(path, module string) (string, bool) {
	if path == module {
		return ".", true
	}
	if len(path) > len(module)+1 && path[:len(module)] == module && path[len(module)] == '/' {
		return path[len(module)+1:], true
	}
	return "", false
}
