package lint

import (
	"strconv"
)

// defaultBoundaries are the shipped architectural constraints: the HTTP
// layer talks to the engines only through the controller, mirroring the
// paper's WUI → Django controller → SUT layering.
var defaultBoundaries = []Boundary{
	{From: "internal/server", Forbid: "internal/engine", Via: "internal/controller"},
	{From: "internal/server", Forbid: "internal/simengine", Via: "internal/controller"},
}

// APIBoundary enforces layered imports: packages under a constrained
// directory may not import a forbidden package directly and must go
// through the sanctioned mediator. Boundaries come from the policy
// config, defaulting to server → engine via controller.
func APIBoundary() *Analyzer {
	return &Analyzer{
		Name: "api-boundary",
		Doc: "internal/server must not import internal/engine or internal/simengine directly; " +
			"all execution goes through internal/controller. Additional boundaries can be " +
			"declared in the policy config.",
		Run: runAPIBoundary,
	}
}

func runAPIBoundary(p *Pass) {
	boundaries := defaultBoundaries
	if p.Config != nil && len(p.Config.Boundaries) > 0 {
		boundaries = p.Config.Boundaries
	}
	module := modulePathOf(p.Pkg)
	for _, b := range boundaries {
		if !dirHasPrefix(p.Pkg.Dir, b.From) {
			continue
		}
		for _, f := range p.Pkg.Files {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				rel, ok := moduleRelative(path, module)
				if !ok || !dirHasPrefix(rel, b.Forbid) {
					continue
				}
				p.Reportf(imp.Pos(), "%s must not import %s directly; go through %s", b.From, b.Forbid, b.Via)
			}
		}
	}
}

// moduleRelative strips the module prefix from an import path.
func moduleRelative(path, module string) (string, bool) {
	if path == module {
		return ".", true
	}
	if len(path) > len(module)+1 && path[:len(module)] == module && path[len(module)] == '/' {
		return path[len(module)+1:], true
	}
	return "", false
}
