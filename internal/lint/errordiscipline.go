package lint

import (
	"go/ast"
	"go/types"
)

// fmtPrinting are the fmt entry points whose errors are conventionally
// discarded on printing paths.
var fmtPrinting = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// infallibleWriters are receiver types whose Write-family methods are
// documented never to return a non-nil error (hash.Hash: "It never
// returns an error").
var infallibleWriters = map[string]bool{
	"strings.Builder": true, "bytes.Buffer": true,
	"hash.Hash": true, "hash.Hash32": true, "hash.Hash64": true,
}

// ErrorDiscipline flags call statements that drop an error return on the
// floor. A benchmark that ignores a store append, a simulation error, or
// a server shutdown failure reports numbers for a run that did not do
// what the operator asked. Tests are not loaded, package main is exempt
// (CLI printing paths), as are fmt printing functions and writers that
// cannot fail (strings.Builder, bytes.Buffer). Deferred calls are
// likewise exempt (defer f.Close() idiom).
func ErrorDiscipline() *Analyzer {
	return &Analyzer{
		Name: "error-discipline",
		Doc: "No call statement may silently discard an error result outside tests and " +
			"package main; handle it, return it, or assign it explicitly (`_ = ...`) with a " +
			"comment saying why.",
		Run: runErrorDiscipline,
	}
}

func runErrorDiscipline(p *Pass) {
	if p.Pkg.Types != nil && p.Pkg.Types.Name() == "main" {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, isExpr := n.(*ast.ExprStmt)
			if !isExpr {
				return true
			}
			call, isCall := stmt.X.(*ast.CallExpr)
			if !isCall {
				return true
			}
			if name := discardedError(p, call); name != "" {
				p.Reportf(call.Pos(), "result of %s includes an error that is silently discarded; handle it or assign it explicitly", name)
			}
			return true
		})
	}
}

// discardedError reports the callee name when the call returns an error
// that the statement drops, or "" when the call is exempt or error-free.
func discardedError(p *Pass, call *ast.CallExpr) string {
	t := p.TypeOf(call)
	if t == nil || !resultHasError(t) {
		return ""
	}
	if pkgPath, name, ok := pkgFuncCall(p, call); ok {
		if pkgPath == "fmt" && fmtPrinting[name] {
			return ""
		}
		return pkgPath + "." + name
	}
	if _, pkgPath, typeName, method, ok := methodCallOn(p, call); ok {
		qualified := pkgPath + "." + typeName
		if infallibleWriters[qualified] {
			return ""
		}
		return qualified + "." + method
	}
	return types.ExprString(call.Fun)
}

// resultHasError reports whether a call result type includes error.
func resultHasError(t types.Type) bool {
	if tuple, isTuple := t.(*types.Tuple); isTuple {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}
