package lint

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixtureConfig loads the fixture tree's own pdsplint.json when it has
// one (rules whose default scope does not match the fixture layout ship
// an override there, which also exercises config loading end-to-end).
func fixtureConfig(t *testing.T, root string) *Config {
	t.Helper()
	path := filepath.Join(root, "pdsplint.json")
	if _, err := os.Stat(path); err != nil {
		return nil
	}
	cfg, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestFixtures runs each analyzer over testdata/src/<rule>/ and checks
// its diagnostics against the `// want` expectations in both
// directions: every expectation must be hit, every diagnostic expected.
func TestFixtures(t *testing.T) {
	for _, a := range Analyzers() {
		t.Run(a.Name, func(t *testing.T) {
			root := filepath.Join("testdata", "src", a.Name)
			if _, err := os.Stat(root); err != nil {
				t.Fatalf("no fixture tree for rule %s: %v", a.Name, err)
			}
			absRoot, err := filepath.Abs(root)
			if err != nil {
				t.Fatal(err)
			}
			loader := &Loader{Root: absRoot, ModulePath: "fixture"}
			pkgs, err := loader.Load("./...")
			if err != nil {
				t.Fatal(err)
			}
			if len(pkgs) == 0 {
				t.Fatalf("fixture tree %s loaded no packages", root)
			}
			for _, pkg := range pkgs {
				for _, terr := range pkg.TypeErrors {
					t.Errorf("fixture %s does not type-check: %v", pkg.Path, terr)
				}
			}
			runner := &Runner{Analyzers: []*Analyzer{a}, Config: fixtureConfig(t, absRoot)}
			diags := runner.Run(pkgs)
			checkExpectations(t, absRoot, diags)
		})
	}
}

var wantRe = regexp.MustCompile("// want `([^`]+)`")

type expectation struct {
	re  *regexp.Regexp
	hit bool
}

// checkExpectations cross-checks diagnostics against `// want` comments
// under root.
func checkExpectations(t *testing.T, root string, diags []Diagnostic) {
	t.Helper()
	expects := map[string]*expectation{} // "file:line" → expectation
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				return fmt.Errorf("%s:%d: bad want regexp: %w", path, i+1, err)
			}
			expects[fmt.Sprintf("%s:%d", path, i+1)] = &expectation{re: re}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		exp := expects[key]
		if exp == nil {
			t.Errorf("unexpected diagnostic at %s: %s: %s", key, d.Rule, d.Message)
			continue
		}
		if !exp.re.MatchString(d.Message) {
			t.Errorf("diagnostic at %s does not match want %q: got %q", key, exp.re, d.Message)
			continue
		}
		exp.hit = true
	}
	for key, exp := range expects {
		if !exp.hit {
			t.Errorf("expected diagnostic at %s matching %q; got none", key, exp.re)
		}
	}
}

// parsePkg builds a Package from in-memory sources (no type info), for
// directive-level tests that need no type checking.
func parsePkg(t *testing.T, srcs ...string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	pkg := &Package{Path: "inmem", Dir: "inmem", Fset: fset}
	for i, src := range srcs {
		f, err := parser.ParseFile(fset, fmt.Sprintf("inmem%d.go", i), src, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	return pkg
}

// TestIgnoreDirectives covers the suppression grammar: a rule and a
// reason are mandatory, unknown rules are rejected, and stale
// directives are reported when requested.
func TestIgnoreDirectives(t *testing.T) {
	pkg := parsePkg(t, `package inmem

//lint:ignore
func a() {}

//lint:ignore error-discipline
func b() {}

//lint:ignore no-such-rule because reasons
func c() {}

//lint:ignore error-discipline kept for a documented reason
func d() {}
`)
	runner := &Runner{Analyzers: []*Analyzer{}, ReportUnusedIgnores: true}
	diags := runner.Run([]*Package{pkg})
	var msgs []string
	for _, d := range diags {
		msgs = append(msgs, d.Message)
	}
	joined := strings.Join(msgs, "\n")
	for _, want := range []string{
		"needs a rule name and a reason",
		"needs a reason",
		"unknown rule",
		"suppresses nothing",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("directive diagnostics missing %q; got:\n%s", want, joined)
		}
	}
	if len(diags) != 4 {
		t.Errorf("want 4 directive diagnostics, got %d:\n%s", len(diags), joined)
	}
}

// TestConfigApplies covers per-directory policy resolution.
func TestConfigApplies(t *testing.T) {
	scoped := &Analyzer{Name: "sim-determinism", DefaultDirs: []string{"internal/des"}}
	global := &Analyzer{Name: "error-discipline"}
	cases := []struct {
		name string
		cfg  *Config
		a    *Analyzer
		dir  string
		want bool
	}{
		{"default scope hit", nil, scoped, "internal/des", true},
		{"default scope subdir", nil, scoped, "internal/des/sub", true},
		{"default scope miss", nil, scoped, "internal/designer", false},
		{"global default", nil, global, "anywhere", true},
		{"disabled", &Config{Rules: map[string]*RulePolicy{"error-discipline": {Disabled: true}}}, global, "x", false},
		{"dirs override", &Config{Rules: map[string]*RulePolicy{"sim-determinism": {Dirs: []string{"other"}}}}, scoped, "internal/des", false},
		{"dirs override hit", &Config{Rules: map[string]*RulePolicy{"sim-determinism": {Dirs: []string{"other"}}}}, scoped, "other/sub", true},
		{"exclude", &Config{Rules: map[string]*RulePolicy{"error-discipline": {ExcludeDirs: []string{"gen"}}}}, global, "gen/out", false},
		{"dot scope", &Config{Rules: map[string]*RulePolicy{"sim-determinism": {Dirs: []string{"."}}}}, scoped, "anything", true},
	}
	for _, tc := range cases {
		if got := tc.cfg.Applies(tc.a, tc.dir); got != tc.want {
			t.Errorf("%s: Applies(%s, %q) = %v, want %v", tc.name, tc.a.Name, tc.dir, got, tc.want)
		}
	}
}

// TestLoadConfigRejectsUnknownRule ensures policy typos fail loudly.
func TestLoadConfigRejectsUnknownRule(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pdsplint.json")
	if err := os.WriteFile(path, []byte(`{"rules":{"no-such-rule":{}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadConfig(path); err == nil || !strings.Contains(err.Error(), "unknown rule") {
		t.Fatalf("want unknown-rule error, got %v", err)
	}
	good := filepath.Join(t.TempDir(), "ok.json")
	if err := os.WriteFile(good, []byte(`{"rules":{"error-discipline":{"exclude_dirs":["gen"]}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadConfig(good)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Rules["error-discipline"].ExcludeDirs[0] != "gen" {
		t.Fatalf("config round-trip lost exclude_dirs: %+v", cfg.Rules["error-discipline"])
	}
}

// TestRepoIsClean runs the full rule set over this module, making the
// tree's lint cleanliness a tier-1 test property: `go test ./...` fails
// the moment a PR reintroduces a violation.
func TestRepoIsClean(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	loader := &Loader{Root: root}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	var cfg *Config
	if _, err := os.Stat(filepath.Join(root, "pdsplint.json")); err == nil {
		cfg, err = LoadConfig(filepath.Join(root, "pdsplint.json"))
		if err != nil {
			t.Fatal(err)
		}
	}
	runner := &Runner{Config: cfg, ReportUnusedIgnores: true}
	for _, d := range runner.Run(pkgs) {
		t.Errorf("%s", d)
	}
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
