package lint

import (
	"go/ast"
	"go/types"
)

// wallClockFuncs are the time package entry points that read the host
// clock or real timers; simulation code must use the des virtual clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// globalRandAllowed are math/rand package functions that construct
// explicit generators rather than touching the shared global source.
var globalRandAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

// SimDeterminism forbids wall-clock reads, global math/rand use, and map
// iteration order leaking into returned slices inside the simulation
// packages. A discrete-event simulation that consults the host clock or
// an unseeded shared RNG produces different results per run, and a map
// range feeding a returned slice reorders results nondeterministically —
// both break PDSP-Bench's reproducible performance shapes.
func SimDeterminism() *Analyzer {
	return &Analyzer{
		Name: "sim-determinism",
		Doc: "Simulation code (internal/des, internal/simengine, internal/workload, internal/stream) " +
			"must be deterministic: no time.Now/time.Since or other wall-clock reads (use the virtual " +
			"des clock), no global math/rand functions (inject a seeded *rand.Rand), and no " +
			"range-over-map feeding a returned slice (sort before returning). internal/stream is in " +
			"scope because its generators — including the disordered-delivery wrapper — must replay " +
			"identically from a seed for the parity suite and checkpoint resume to hold.",
		DefaultDirs: []string{"internal/des", "internal/simengine", "internal/workload", "internal/stream"},
		Run:         runSimDeterminism,
	}
}

func runSimDeterminism(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			pkgPath, name, ok := pkgFuncCall(p, call)
			if !ok {
				return true
			}
			switch {
			case pkgPath == "time" && wallClockFuncs[name]:
				p.Reportf(call.Pos(), "wall-clock time.%s in simulation code; use the virtual des clock", name)
			case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && !globalRandAllowed[name]:
				p.Reportf(call.Pos(), "global rand.%s uses the shared random source; inject a seeded *rand.Rand", name)
			}
			return true
		})
		walkFunctions(f, func(fn ast.Node, body *ast.BlockStmt) {
			checkMapRangeReturns(p, body)
		})
	}
}

// checkMapRangeReturns flags `for k := range m { s = append(s, ...) }`
// when s is later returned by the same function without being sorted.
func checkMapRangeReturns(p *Pass, body *ast.BlockStmt) {
	// Objects appended to inside a map range, keyed by variable object.
	appended := map[types.Object]*ast.RangeStmt{}
	inspectShallow(body, func(n ast.Node) bool {
		rng, isRange := n.(*ast.RangeStmt)
		if !isRange {
			return true
		}
		t := p.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		inspectShallow(rng.Body, func(m ast.Node) bool {
			asg, isAsg := m.(*ast.AssignStmt)
			if !isAsg || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
				return true
			}
			lhs, isID := asg.Lhs[0].(*ast.Ident)
			if !isID {
				return true
			}
			call, isCall := asg.Rhs[0].(*ast.CallExpr)
			if !isCall || !isBuiltinCall(p, call, "append") {
				return true
			}
			if obj := p.ObjectOf(lhs); obj != nil {
				if _, dup := appended[obj]; !dup {
					appended[obj] = rng
				}
			}
			return true
		})
		return true
	})
	if len(appended) == 0 {
		return
	}
	returned := map[types.Object]bool{}
	sorted := map[types.Object]bool{}
	inspectShallow(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if id, isID := res.(*ast.Ident); isID {
					if obj := p.ObjectOf(id); obj != nil {
						returned[obj] = true
					}
				}
			}
		case *ast.CallExpr:
			pkgPath, _, ok := pkgFuncCall(p, s)
			if !ok || (pkgPath != "sort" && pkgPath != "slices") {
				return true
			}
			for _, arg := range s.Args {
				ast.Inspect(arg, func(a ast.Node) bool {
					if id, isID := a.(*ast.Ident); isID {
						if obj := p.ObjectOf(id); obj != nil {
							sorted[obj] = true
						}
					}
					return true
				})
			}
		}
		return true
	})
	for obj, rng := range appended {
		if returned[obj] && !sorted[obj] {
			p.Reportf(rng.Pos(), "range over map feeds returned slice %q; map iteration order is nondeterministic — sort before returning", obj.Name())
		}
	}
}
