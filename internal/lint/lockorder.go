package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"pdspbench/internal/lint/flow"
)

// LockOrder builds a cross-package mutex acquisition-order graph and
// reports edges that participate in a cycle: if one code path acquires
// A before B and another acquires B before A, two goroutines can each
// hold one lock and wait forever for the other. The rule also pins the
// documented internal/storage contract — Store.mu is the fabric's leaf
// lock, so nothing may be acquired while holding it.
func LockOrder() *Analyzer {
	return &Analyzer{
		Name: "lock-order",
		Doc: "Cross-package sync.Mutex/RWMutex acquisition order must be acyclic. The rule " +
			"tracks held locks through static call chains (e.g. internal/queue holding " +
			"Queue.mu while calling into internal/storage) and reports every acquisition " +
			"edge that closes a cycle, plus any lock acquired while holding the leaf lock " +
			"internal/storage Store.mu.",
		RunWhole: runLockOrder,
	}
}

// storageLeafLock is the documented leaf of the fabric's lock order:
// internal/storage serializes all file operations under one mutex and
// must never wait on another lock while holding it.
const storageLeafLock = "pdspbench/internal/storage.Store.mu"

type lockEdge struct {
	from, to string
	pos      token.Pos
}

func runLockOrder(w *WholePass) {
	var edges []lockEdge
	seen := make(map[[2]string]bool)
	acq := lockAcquires(w.Program)
	for _, fn := range w.Program.All() {
		lw := &lockWalker{
			fn:   fn,
			prog: w.Program,
			acq:  acq,
			emit: func(from, to string, pos token.Pos) {
				key := [2]string{from, to}
				if seen[key] {
					return
				}
				seen[key] = true
				edges = append(edges, lockEdge{from: from, to: to, pos: pos})
			},
		}
		lw.block(fn.Decl.Body.List, nil)
	}

	adjacency := make(map[string][]string)
	for _, e := range edges {
		adjacency[e.from] = append(adjacency[e.from], e.to)
	}
	for _, e := range edges {
		if e.from == storageLeafLock {
			w.Reportf(e.pos,
				"acquiring %s while holding %s violates the storage locking contract: Store.mu is the fabric's leaf lock and nothing may be acquired under it",
				e.to, e.from)
			continue
		}
		if reachesClass(adjacency, e.to, e.from) {
			w.Reportf(e.pos,
				"acquiring %s while holding %s creates a lock-order cycle: %s is elsewhere (transitively) acquired before %s; pick one order and use it everywhere",
				e.to, e.from, e.from, e.to)
		}
	}
}

// reachesClass reports whether `to` can reach `from` over acquisition
// edges, i.e. the edge from→to closes a cycle.
func reachesClass(adj map[string][]string, start, target string) bool {
	seen := map[string]bool{}
	stack := []string{start}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == target {
			return true
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, adj[n]...)
	}
	return false
}

// lockAcquires is the per-function fact: which lock classes a function
// (transitively) acquires. Shared via the program memo so one fixpoint
// serves the whole run.
func lockAcquires(prog *flow.Program) map[*flow.Func]map[string]bool {
	return prog.Memo("lint.lock-acquires", func() any {
		acq := make(map[*flow.Func]map[string]bool, len(prog.All()))
		for _, fn := range prog.All() {
			classes := map[string]bool{}
			ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
				if call, isCall := n.(*ast.CallExpr); isCall {
					if class, op := lockOp(fn.Unit, call); op == lockAcquire && class != "" {
						classes[class] = true
					}
				}
				return true
			})
			acq[fn] = classes
		}
		for changed := true; changed; {
			changed = false
			for _, fn := range prog.All() {
				for _, callee := range fn.Calls {
					for class := range acq[callee] {
						if !acq[fn][class] {
							acq[fn][class] = true
							changed = true
						}
					}
				}
			}
		}
		return acq
	}).(map[*flow.Func]map[string]bool)
}

// lockWalker scans one function in statement order, maintaining the set
// of held lock classes. Branch bodies run on a copy of the held set and
// do not leak acquisitions past the branch — conservative in the
// may-miss direction, never inventing a held lock.
type lockWalker struct {
	fn   *flow.Func
	prog *flow.Program
	acq  map[*flow.Func]map[string]bool
	emit func(from, to string, pos token.Pos)
}

func (lw *lockWalker) block(list []ast.Stmt, held []string) []string {
	for _, st := range list {
		held = lw.stmt(st, held)
	}
	return held
}

func copyHeld(held []string) []string {
	return append([]string(nil), held...)
}

func (lw *lockWalker) acquire(held []string, class string, pos token.Pos) []string {
	for _, h := range held {
		if h != class {
			lw.emit(h, class, pos)
		}
	}
	return append(copyHeld(held), class)
}

func (lw *lockWalker) release(held []string, class string) []string {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i] == class {
			out := copyHeld(held[:i])
			return append(out, held[i+1:]...)
		}
	}
	return held
}

func (lw *lockWalker) stmt(st ast.Stmt, held []string) []string {
	switch s := st.(type) {
	case *ast.ExprStmt:
		if call, isCall := s.X.(*ast.CallExpr); isCall {
			if class, op := lockOp(lw.fn.Unit, call); op != lockNone {
				if class == "" {
					return held
				}
				if op == lockAcquire {
					return lw.acquire(held, class, call.Pos())
				}
				return lw.release(held, class)
			}
		}
		lw.calls(s.X, held)
	case *ast.DeferStmt:
		if class, op := lockOp(lw.fn.Unit, s.Call); op != lockNone {
			if op == lockAcquire && class != "" {
				return lw.acquire(held, class, s.Call.Pos())
			}
			// Deferred unlock releases at function exit: the lock stays
			// held for every statement below, which is exactly how the
			// ordering must be computed.
			return held
		}
		lw.calls(s.Call, held)
	case *ast.GoStmt:
		// A spawned goroutine starts with an empty held set; its
		// arguments are evaluated in the current one.
		if lit, isLit := s.Call.Fun.(*ast.FuncLit); isLit {
			lw.block(lit.Body.List, nil)
		}
		for _, arg := range s.Call.Args {
			lw.calls(arg, held)
		}
	case *ast.BlockStmt:
		return lw.block(s.List, held)
	case *ast.LabeledStmt:
		return lw.stmt(s.Stmt, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held = lw.stmt(s.Init, held)
		}
		lw.calls(s.Cond, held)
		lw.block(s.Body.List, copyHeld(held))
		if s.Else != nil {
			lw.stmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held = lw.stmt(s.Init, held)
		}
		if s.Cond != nil {
			lw.calls(s.Cond, held)
		}
		lw.block(s.Body.List, copyHeld(held))
	case *ast.RangeStmt:
		lw.calls(s.X, held)
		lw.block(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = lw.stmt(s.Init, held)
		}
		if s.Tag != nil {
			lw.calls(s.Tag, held)
		}
		lw.clauses(s.Body, held)
	case *ast.TypeSwitchStmt:
		lw.clauses(s.Body, held)
	case *ast.SelectStmt:
		lw.clauses(s.Body, held)
	default:
		lw.calls(st, held)
	}
	return held
}

func (lw *lockWalker) clauses(body *ast.BlockStmt, held []string) {
	for _, clause := range body.List {
		switch c := clause.(type) {
		case *ast.CaseClause:
			lw.block(c.Body, copyHeld(held))
		case *ast.CommClause:
			lw.block(c.Body, copyHeld(held))
		}
	}
}

// calls emits edges for every statically resolved call in n using the
// callee's transitive acquire set, and scans function literals with the
// current held set (a closure invoked here runs in this frame).
func (lw *lockWalker) calls(n ast.Node, held []string) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch e := x.(type) {
		case *ast.FuncLit:
			lw.block(e.Body.List, copyHeld(held))
			return false
		case *ast.CallExpr:
			if class, op := lockOp(lw.fn.Unit, e); op != lockNone {
				if op == lockAcquire && class != "" {
					for _, h := range held {
						if h != class {
							lw.emit(h, class, e.Pos())
						}
					}
				}
				return true
			}
			obj := flow.CalleeOf(lw.fn.Unit, e)
			if obj == nil {
				return true
			}
			callee := lw.prog.FuncOf(obj)
			if callee == nil {
				return true
			}
			for class := range lw.acq[callee] {
				for _, h := range held {
					if h != class {
						lw.emit(h, class, e.Pos())
					}
				}
			}
		}
		return true
	})
}

type lockOpKind int

const (
	lockNone lockOpKind = iota
	lockAcquire
	lockRelease
)

// lockOp classifies a call as a mutex acquire/release and names the
// lock class it operates on ("" when the class is untrackable, e.g. a
// local mutex variable).
func lockOp(u *flow.Unit, call *ast.CallExpr) (string, lockOpKind) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", lockNone
	}
	obj, isFunc := u.ObjectOf(sel.Sel).(*types.Func)
	if !isFunc || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", lockNone
	}
	recv := flow.NamedRecv(obj)
	if recv == nil {
		return "", lockNone
	}
	if name := recv.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		return "", lockNone
	}
	var kind lockOpKind
	switch obj.Name() {
	case "Lock", "RLock":
		kind = lockAcquire
	case "Unlock", "RUnlock":
		kind = lockRelease
	default:
		return "", lockNone
	}
	return lockClass(u, sel.X), kind
}

// lockClass names the lock a receiver expression denotes. Classes are
// identity-by-declaration: "pkgpath.Type.field" for struct-field
// mutexes, "pkgpath.var" for package-level mutexes, and
// "pkgpath.Type.(embedded)" for types embedding a mutex. Local mutex
// variables have no cross-function identity and return "".
func lockClass(u *flow.Unit, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		v, isVar := u.ObjectOf(x.Sel).(*types.Var)
		if !isVar {
			return ""
		}
		if v.IsField() {
			if named := namedOfType(u.TypeOf(x.X)); named != nil {
				return qualifiedTypeName(named) + "." + v.Name()
			}
			return ""
		}
		return packageVarClass(v)
	case *ast.Ident:
		v, isVar := u.ObjectOf(x).(*types.Var)
		if !isVar {
			return ""
		}
		if class := packageVarClass(v); class != "" {
			return class
		}
		// Receiver or local of a named type embedding the mutex.
		if named := namedOfType(v.Type()); named != nil && namedPkgPath(named) != "sync" {
			return qualifiedTypeName(named) + ".(embedded)"
		}
	}
	return ""
}

func packageVarClass(v *types.Var) string {
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return v.Pkg().Path() + "." + v.Name()
	}
	return ""
}

func namedOfType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func namedPkgPath(n *types.Named) string {
	if n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path()
}

func qualifiedTypeName(n *types.Named) string {
	if n.Obj().Pkg() == nil {
		return n.Obj().Name()
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name()
}
