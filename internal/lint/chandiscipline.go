package lint

import (
	"go/ast"
	"go/types"

	"pdspbench/internal/lint/flow"
)

// ChanDiscipline checks the channel ownership rules the fabric's
// goroutine topology depends on: only the goroutine that creates and
// sends on a channel may close it, nothing may send on a channel that
// may already be closed, and every goroutine running an unbounded loop
// needs a way to be told to stop.
func ChanDiscipline() *Analyzer {
	return &Analyzer{
		Name: "chan-discipline",
		Doc: "Channel ownership: close() on a channel received as a parameter is " +
			"close-by-non-owner (a second closer panics); sending on a channel after " +
			"close() on the same path panics unconditionally; a goroutine whose body is an " +
			"unbounded for-loop with no return or break (e.g. no ctx.Done() case that " +
			"exits) can never be stopped and leaks.",
		DefaultDirs: []string{"internal/queue", "internal/server", "internal/storage", "internal/storm", "cmd"},
		RunWhole:    runChanDiscipline,
	}
}

func runChanDiscipline(w *WholePass) {
	for _, fn := range w.Program.All() {
		checkCloseOwnership(w, fn)
		checkGoroutineCancellation(w, fn)
		cs := &closeScan{u: fn.Unit, w: w}
		cs.block(fn.Decl.Body.List, map[string]bool{})
	}
}

// checkCloseOwnership flags close() on channels the function received
// as parameters: the closer did not create the channel, so it cannot
// know it is the unique owner, and a double close panics.
func checkCloseOwnership(w *WholePass, fn *flow.Func) {
	params := map[types.Object]bool{}
	if fn.Decl.Type.Params != nil {
		for _, field := range fn.Decl.Type.Params.List {
			for _, name := range field.Names {
				if obj := fn.Unit.ObjectOf(name); obj != nil {
					params[obj] = true
				}
			}
		}
	}
	if len(params) == 0 {
		return
	}
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall || len(call.Args) != 1 || !isBuiltinClose(fn.Unit, call) {
			return true
		}
		id, isIdent := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !isIdent {
			return true
		}
		if obj := fn.Unit.ObjectOf(id); obj != nil && params[obj] {
			w.Reportf(call.Pos(),
				"close(%s) closes a channel received as a parameter; only the owner that created the channel (and is the sole sender) may close it", id.Name)
		}
		return true
	})
}

func isBuiltinClose(u *flow.Unit, call *ast.CallExpr) bool {
	id, isIdent := ast.Unparen(call.Fun).(*ast.Ident)
	if !isIdent || id.Name != "close" {
		return false
	}
	_, isBuiltin := u.ObjectOf(id).(*types.Builtin)
	return isBuiltin
}

// closeScan walks statements in order tracking channels closed on the
// current path; a send on one is a guaranteed panic. Branch bodies use
// a copy of the closed set and terminating branches don't leak it,
// mirroring the lease scan's path sensitivity.
type closeScan struct {
	u *flow.Unit
	w *WholePass
}

func (cs *closeScan) block(list []ast.Stmt, closed map[string]bool) {
	for _, st := range list {
		cs.stmt(st, closed)
	}
}

func copyClosed(c map[string]bool) map[string]bool {
	out := make(map[string]bool, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

func (cs *closeScan) branch(list []ast.Stmt, closed map[string]bool) {
	inner := copyClosed(closed)
	cs.block(list, inner)
	if !terminates(list) {
		for k := range inner {
			closed[k] = true
		}
	}
}

func (cs *closeScan) stmt(st ast.Stmt, closed map[string]bool) {
	switch s := st.(type) {
	case *ast.ExprStmt:
		if call, isCall := s.X.(*ast.CallExpr); isCall && len(call.Args) == 1 && isBuiltinClose(cs.u, call) {
			closed[types.ExprString(ast.Unparen(call.Args[0]))] = true
			return
		}
	case *ast.SendStmt:
		if closed[types.ExprString(ast.Unparen(s.Chan))] {
			w := cs.w
			w.Reportf(s.Pos(),
				"send on %s after close() on the same path; sending on a closed channel panics", types.ExprString(s.Chan))
		}
	case *ast.BlockStmt:
		cs.block(s.List, closed)
	case *ast.LabeledStmt:
		cs.stmt(s.Stmt, closed)
	case *ast.IfStmt:
		if s.Init != nil {
			cs.stmt(s.Init, closed)
		}
		cs.branch(s.Body.List, closed)
		if s.Else != nil {
			cs.stmt(s.Else, closed)
		}
	case *ast.ForStmt:
		cs.branch(s.Body.List, closed)
	case *ast.RangeStmt:
		cs.branch(s.Body.List, closed)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var body *ast.BlockStmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			body = sw.Body
		case *ast.TypeSwitchStmt:
			body = sw.Body
		case *ast.SelectStmt:
			body = sw.Body
		}
		for _, clause := range body.List {
			switch c := clause.(type) {
			case *ast.CaseClause:
				cs.branch(c.Body, closed)
			case *ast.CommClause:
				cs.branch(c.Body, closed)
			}
		}
	}
}

// checkGoroutineCancellation flags `go func() { for { ... } }()` where
// the unbounded loop has no exit: no return, no break binding to the
// loop, no panic. Such a goroutine cannot be cancelled or joined — the
// leak gate in internal/testutil catches them at test time, this rule
// catches them at lint time.
func checkGoroutineCancellation(w *WholePass, fn *flow.Func) {
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		g, isGo := n.(*ast.GoStmt)
		if !isGo {
			return true
		}
		lit, isLit := g.Call.Fun.(*ast.FuncLit)
		if !isLit {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			loop, isFor := m.(*ast.ForStmt)
			if !isFor || loop.Cond != nil {
				return true
			}
			if !loopHasExit(loop.Body.List, true) {
				w.Reportf(g.Pos(),
					"goroutine runs an unbounded loop with no cancellation path (no return, break, or ctx.Done() case that exits); it can never be stopped")
				return false
			}
			return true
		})
		return true
	})
}

// loopHasExit reports whether the loop body can leave the loop:
// a return anywhere, a panic, or a break that binds to this loop.
// breakBinds tracks whether an unlabeled break at the current nesting
// level still targets the loop (false inside nested for/switch/select,
// where break binds to the inner construct).
func loopHasExit(list []ast.Stmt, breakBinds bool) bool {
	for _, st := range list {
		if stmtHasExit(st, breakBinds) {
			return true
		}
	}
	return false
}

func stmtHasExit(st ast.Stmt, breakBinds bool) bool {
	switch s := st.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		// A labeled break/continue/goto targets an enclosing construct —
		// conservatively assume it leaves this loop.
		if s.Label != nil {
			return true
		}
		return s.Tok.String() == "break" && breakBinds
	case *ast.ExprStmt:
		if call, isCall := s.X.(*ast.CallExpr); isCall {
			if id, isIdent := call.Fun.(*ast.Ident); isIdent && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return loopHasExit(s.List, breakBinds)
	case *ast.LabeledStmt:
		return stmtHasExit(s.Stmt, breakBinds)
	case *ast.IfStmt:
		if loopHasExit(s.Body.List, breakBinds) {
			return true
		}
		if s.Else != nil {
			return stmtHasExit(s.Else, breakBinds)
		}
	case *ast.ForStmt:
		return loopHasExit(s.Body.List, false)
	case *ast.RangeStmt:
		return loopHasExit(s.Body.List, false)
	case *ast.SwitchStmt:
		return clausesHaveExit(s.Body)
	case *ast.TypeSwitchStmt:
		return clausesHaveExit(s.Body)
	case *ast.SelectStmt:
		return clausesHaveExit(s.Body)
	}
	return false
}

func clausesHaveExit(body *ast.BlockStmt) bool {
	for _, clause := range body.List {
		switch c := clause.(type) {
		case *ast.CaseClause:
			if loopHasExit(c.Body, false) {
				return true
			}
		case *ast.CommClause:
			if loopHasExit(c.Body, false) {
				return true
			}
		}
	}
	return false
}
