package lint

import (
	"go/ast"
	"regexp"
)

// faultRouteName matches identifiers that plausibly route a recovered
// panic into the typed-error machinery: constructing a *CrashError or
// *chaos.FaultError, or calling a recorder like recordUDOPanic.
var faultRouteName = regexp.MustCompile(`Error|Fault|Crash|Panic`)

// RecoverDiscipline enforces the fault-layer contract on recover():
// data-plane and supervisor code may intercept a panic only to turn it
// into a typed error (or re-panic). A recover() whose result is
// discarded swallows crashes silently — an injected operator kill, or a
// real bug, would vanish instead of surfacing as a *chaos.FaultError in
// the run record. See DESIGN.md "Fault injection & recovery".
func RecoverDiscipline() *Analyzer {
	return &Analyzer{
		Name: "recover-discipline",
		Doc: "recover() in execution-layer code must not swallow panics: its result must be " +
			"used, and the recovering function must either re-panic or route the value into a " +
			"typed error (construct or call something matching Error|Fault|Crash|Panic). Bare " +
			"`recover()` statements and recoveries with no error path are reported.",
		DefaultDirs: []string{
			"internal/engine", "internal/simengine", "internal/des",
			"internal/backend", "internal/chaos",
		},
		Run: runRecoverDiscipline,
	}
}

func runRecoverDiscipline(p *Pass) {
	for _, f := range p.Pkg.Files {
		walkFunctions(f, func(fn ast.Node, body *ast.BlockStmt) {
			checkRecovers(p, body)
		})
	}
}

// checkRecovers inspects one function body (not nested literals — each
// literal is its own recovery scope) for recover() misuse.
func checkRecovers(p *Pass, body *ast.BlockStmt) {
	var recovers []*ast.CallExpr
	discarded := map[*ast.CallExpr]bool{}
	inspectShallow(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if call, isCall := s.X.(*ast.CallExpr); isCall && isBuiltinCall(p, call, "recover") {
				discarded[call] = true
			}
		case *ast.AssignStmt:
			// `_ = recover()` discards the value just as silently.
			for i, rhs := range s.Rhs {
				call, isCall := rhs.(*ast.CallExpr)
				if !isCall || !isBuiltinCall(p, call, "recover") || i >= len(s.Lhs) {
					continue
				}
				if id, isID := s.Lhs[i].(*ast.Ident); isID && id.Name == "_" {
					discarded[call] = true
				}
			}
		case *ast.CallExpr:
			if isBuiltinCall(p, s, "recover") {
				recovers = append(recovers, s)
			}
		}
		return true
	})
	if len(recovers) == 0 {
		return
	}
	for _, call := range recovers {
		if discarded[call] {
			p.Reportf(call.Pos(), "recover() result discarded; a swallowed panic hides crashes — re-panic or wrap it in a typed error")
		}
	}
	if len(discarded) == len(recovers) {
		return
	}
	if !hasFaultRoute(p, body) {
		p.Reportf(recovers[0].Pos(), "recover() without an error path; the recovering function must re-panic or route the value into a typed error (Error/Fault/Crash/Panic)")
	}
}

// hasFaultRoute reports whether the function body re-panics or touches
// the typed-error machinery: a panic() call, a call to a function whose
// name matches the fault-route pattern, or a composite literal of such
// a type.
func hasFaultRoute(p *Pass, body *ast.BlockStmt) bool {
	found := false
	inspectShallow(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch s := n.(type) {
		case *ast.CallExpr:
			if isBuiltinCall(p, s, "panic") {
				found = true
				return false
			}
			switch fun := s.Fun.(type) {
			case *ast.Ident:
				if faultRouteName.MatchString(fun.Name) {
					found = true
				}
			case *ast.SelectorExpr:
				if faultRouteName.MatchString(fun.Sel.Name) {
					found = true
				}
			}
		case *ast.CompositeLit:
			switch t := s.Type.(type) {
			case *ast.Ident:
				if faultRouteName.MatchString(t.Name) {
					found = true
				}
			case *ast.SelectorExpr:
				if faultRouteName.MatchString(t.Sel.Name) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
