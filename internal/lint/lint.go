// Package lint is pdsplint's analysis framework: a stdlib-only
// (go/ast, go/parser, go/token, go/types) static-analysis harness with
// composable analyzers, per-directory policy configuration, and
// //lint:ignore suppression.
//
// The rules it ships exist to machine-check the properties PDSP-Bench's
// reproducibility story depends on: the discrete-event simulation must
// stay deterministic (virtual clock, injected seeded randomness, no map
// iteration order leaking into results), the goroutine dataflow engine
// must stay leak- and race-free, and benchmark plumbing must not drop
// errors or invent metric names. See DESIGN.md "Static guarantees".
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"pdspbench/internal/lint/flow"
)

// Diagnostic is one finding, addressed by position so callers can print
// file:line:col output and tests can match expectations.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path (module path + relative directory).
	Path string
	// Dir is the package directory relative to the module root, using
	// forward slashes; policy scoping matches against it.
	Dir string
	// Fset positions all Files.
	Fset *token.FileSet
	// Files are the parsed non-test sources.
	Files []*ast.File
	// Types is the checked package; Info carries uses/defs/types.
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects soft type-check problems; analyzers still run
	// because most rules are syntactic, but the runner reports them.
	TypeErrors []error
}

// Pass is the per-(analyzer, package) invocation context.
type Pass struct {
	Pkg    *Package
	Config *Config
	report func(rule string, pos token.Pos, format string, args ...any)
	rule   string
}

// Reportf records a diagnostic at pos for the pass's rule.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(p.rule, pos, format, args...)
}

// TypeOf returns the type of e, or nil when type information is absent
// (analyzers must tolerate nil: fixtures and damaged packages may have
// holes).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Pkg.Info == nil {
		return nil
	}
	return p.Pkg.Info.TypeOf(e)
}

// ObjectOf resolves an identifier to its object, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if p.Pkg.Info == nil {
		return nil
	}
	if o := p.Pkg.Info.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// WholePass is the invocation context of a whole-program analyzer: one
// call sees every loaded package plus the shared flow.Program (call
// graph + fact store), built once per Runner.Run and shared by all
// whole-program rules.
type WholePass struct {
	// Pkgs are all loaded packages, in dependency order.
	Pkgs []*Package
	// Program is the shared call graph over Pkgs.
	Program *flow.Program
	Config  *Config

	analyzer  *Analyzer
	fset      *token.FileSet
	pkgByFile map[string]*Package
	report    func(rule string, pos token.Pos, format string, args ...any)
}

// Fset positions the whole program (whole-program analysis requires all
// packages to come from one Loader, hence one FileSet).
func (w *WholePass) Fset() *token.FileSet { return w.fset }

// Reportf records a diagnostic. Findings whose position falls outside
// the rule's directory scope are dropped, so a whole-program rule may
// analyse everything while reporting only inside its policy scope.
func (w *WholePass) Reportf(pos token.Pos, format string, args ...any) {
	pkg := w.pkgByFile[w.fset.Position(pos).Filename]
	if pkg == nil || !w.Config.Applies(w.analyzer, pkg.Dir) {
		return
	}
	w.report(w.analyzer.Name, pos, format, args...)
}

// Analyzer is one named rule.
type Analyzer struct {
	// Name is the rule identifier used in diagnostics, policy config and
	// //lint:ignore directives (kebab-case).
	Name string
	// Doc is a one-paragraph description shown by `pdsplint -list`.
	Doc string
	// DefaultDirs restricts the rule to packages whose Dir has one of
	// these slash-separated prefixes; nil means the whole module. The
	// policy config can override per rule. For whole-program rules the
	// scope filters where diagnostics may land, not what is analysed.
	DefaultDirs []string
	// Run inspects one package and reports diagnostics. Exactly one of
	// Run and RunWhole is set.
	Run func(*Pass)
	// RunWhole inspects the whole loaded program at once; cross-package
	// rules (call-graph reachability, lock ordering) use this form.
	RunWhole func(*WholePass)
}

// Analyzers returns the full rule set in stable order.
func Analyzers() []*Analyzer {
	as := []*Analyzer{
		SimDeterminism(),
		GoroutineHygiene(),
		LockDiscipline(),
		ErrorDiscipline(),
		MetricLabels(),
		APIBoundary(),
		HotPathAlloc(),
		RecoverDiscipline(),
		CtxPropagation(),
		LockOrder(),
		LeaseLinearity(),
		ChanDiscipline(),
	}
	sort.Slice(as, func(i, j int) bool { return as[i].Name < as[j].Name })
	return as
}

// AnalyzerByName returns the named rule, or nil.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
