package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"pdspbench/internal/lint/flow"
)

// CtxPropagation enforces end-to-end cancellation across the fabric: a
// campaign the dispatcher abandons, a worker daemon the operator stops,
// or an HTTP client that disconnects must be able to interrupt every
// blocking operation its request started, no matter how deep in the
// call chain.
func CtxPropagation() *Analyzer {
	return &Analyzer{
		Name: "ctx-propagation",
		Doc: "Functions reachable from fabric entry points (HTTP handlers, queue.Worker " +
			"methods, CLI commands) that block — channel operations, time.Sleep, net/http " +
			"requests — must accept a context.Context, and context.Background()/TODO() may " +
			"not be introduced below the entry layer: both sever the cancellation chain.",
		DefaultDirs: []string{"internal/queue", "internal/server", "internal/storage", "internal/storm", "cmd"},
		RunWhole:    runCtxPropagation,
	}
}

func runCtxPropagation(w *WholePass) {
	prog := w.Program
	entries, cliEntries := ctxEntryPoints(prog)
	if len(entries) == 0 {
		return
	}
	reach := prog.Reachable(entries)
	blocking := prog.Blocking()
	entrySet := make(map[*flow.Func]bool, len(entries))
	for _, fn := range entries {
		entrySet[fn] = true
	}
	for _, fn := range prog.All() {
		if !reach[fn] {
			continue
		}
		if !entrySet[fn] && !fn.HasCtx {
			if b := blocking[fn]; b != nil {
				w.Reportf(fn.Decl.Name.Pos(),
					"%s is reachable from a fabric entry point and blocks (%s) but accepts no context.Context; thread ctx through so cancellation reaches it",
					fn.Name(), b.Describe(w.Fset()))
			}
		}
		// The entry layer is where contexts are born: main-package
		// commands get signal.NotifyContext, handlers get r.Context().
		// Below it, a fresh root context detaches the work from its
		// caller's lifetime.
		if cliEntries[fn] {
			continue
		}
		for _, call := range contextRootCalls(fn) {
			w.Reportf(call.pos,
				"context.%s() below the fabric entry layer severs the cancellation chain; derive from the caller's ctx (or context.WithoutCancel for intentional detachment)",
				call.name)
		}
	}
}

// ctxEntryPoints returns the reachability roots: every top-level
// function of a main package (the CLI command layer), every func with
// the net/http handler signature, and every method on a type named
// Worker in a package named queue (the daemon surface). cliEntries marks
// the subset additionally licensed to mint root contexts.
func ctxEntryPoints(prog *flow.Program) (roots []*flow.Func, cliEntries map[*flow.Func]bool) {
	cliEntries = make(map[*flow.Func]bool)
	for _, fn := range prog.All() {
		switch {
		case fn.Unit.Pkg != nil && fn.Unit.Pkg.Name() == "main":
			roots = append(roots, fn)
			cliEntries[fn] = true
		case isHTTPHandler(fn.Obj):
			roots = append(roots, fn)
		case isWorkerMethod(fn.Obj):
			roots = append(roots, fn)
		}
	}
	return roots, cliEntries
}

// isHTTPHandler matches the net/http handler shape: parameters
// (http.ResponseWriter, *http.Request).
func isHTTPHandler(obj *types.Func) bool {
	sig, isSig := obj.Type().(*types.Signature)
	if !isSig || sig.Params().Len() != 2 {
		return false
	}
	first, isNamed := sig.Params().At(0).Type().(*types.Named)
	if !isNamed || !isNetHTTP(first.Obj().Pkg()) || first.Obj().Name() != "ResponseWriter" {
		return false
	}
	ptr, isPtr := sig.Params().At(1).Type().(*types.Pointer)
	if !isPtr {
		return false
	}
	second, isNamed := ptr.Elem().(*types.Named)
	return isNamed && isNetHTTP(second.Obj().Pkg()) && second.Obj().Name() == "Request"
}

func isNetHTTP(pkg *types.Package) bool {
	return pkg != nil && pkg.Path() == "net/http"
}

// isWorkerMethod matches the fabric daemon's surface: exported methods
// of a type named Worker declared in a package named queue. Unexported
// Worker helpers sit below the entry layer and must thread ctx.
func isWorkerMethod(obj *types.Func) bool {
	if !obj.Exported() {
		return false
	}
	named := flow.NamedRecv(obj)
	return named != nil && named.Obj().Name() == "Worker" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Name() == "queue"
}

type ctxRootCall struct {
	pos  token.Pos
	name string // "Background" or "TODO"
}

// contextRootCalls lists context.Background()/context.TODO() calls in
// fn's body (closures included).
func contextRootCalls(fn *flow.Func) []ctxRootCall {
	var out []ctxRootCall
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		obj := flow.CalleeOf(fn.Unit, call)
		if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
			return true
		}
		if obj.Name() == "Background" || obj.Name() == "TODO" {
			out = append(out, ctxRootCall{pos: call.Pos(), name: obj.Name()})
		}
		return true
	})
	return out
}
