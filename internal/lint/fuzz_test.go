package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzLintLoader feeds arbitrary (mostly malformed) Go source through
// the whole v2 pipeline: parse, type-check with the module importer,
// build the flow graph, and run every analyzer. Broken input must
// surface as a load error or soft type errors — never a panic. The
// seeds cover the shapes the protocol analyzers dig into: channels,
// mutexes, lease fields, goroutines, directives.
func FuzzLintLoader(f *testing.F) {
	f.Add("package p\n\nfunc ok() {}\n")
	f.Add("package p\nfunc ( {")
	f.Add("package p\nimport \"no/such/pkg\"\nfunc x() { }\n")
	f.Add("package main\n\nimport \"time\"\n\nfunc main() { time.Sleep(1) }\n")
	f.Add("package queue\n\ntype Job struct{ LeaseID string }\n\ntype Client struct{}\n\nfunc (c *Client) Complete(id string) error { return nil }\n")
	f.Add("package p\n\nimport \"sync\"\n\nvar a, b sync.Mutex\n\nfunc x() { a.Lock(); b.Lock(); b.Unlock(); a.Unlock() }\n")
	f.Add("package p\n\nfunc x(ch chan int) { close(ch); ch <- 1 }\n")
	f.Add("package p\n\nfunc x() { go func() { for { } }() }\n")
	f.Add("package p\n\n//lint:ignore chan-discipline reason\nfunc x() {}\n")
	f.Add("package p\n\nfunc x() { select {} }\nfunc y() { <-make(chan int) }\n")
	f.Fuzz(func(t *testing.T, src string) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "fuzz.go"), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		loader := &Loader{Root: dir, ModulePath: "fuzz"}
		pkgs, err := loader.Load("./...")
		if err != nil {
			// Unparsable input is a diagnostic, not a crash.
			return
		}
		runner := &Runner{}
		_ = runner.Run(pkgs)
	})
}
