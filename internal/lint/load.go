package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Loader parses and type-checks the packages of one module without any
// external tooling: intra-module imports are resolved from the loaded
// set in dependency order, everything else (the stdlib) comes from the
// compiler's export data with a from-source fallback.
type Loader struct {
	// Root is the module root directory (where go.mod lives).
	Root string
	// ModulePath overrides the module path from go.mod (used by fixture
	// tests, whose trees carry no go.mod).
	ModulePath string
	// IncludeTests parses _test.go files too. The shipped rules exempt
	// tests, so the default is off.
	IncludeTests bool

	fset *token.FileSet
}

// Load expands the patterns (import-path patterns relative to the module
// root: "./...", "./internal/...", or plain directories) and returns the
// matched packages plus every intra-module dependency needed to check
// them, in dependency order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if l.fset == nil {
		l.fset = token.NewFileSet()
	}
	if l.ModulePath == "" {
		mp, err := modulePath(filepath.Join(l.Root, "go.mod"))
		if err != nil {
			return nil, err
		}
		l.ModulePath = mp
	}
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	parsed := make(map[string]*Package) // import path → package
	var order []string
	for _, dir := range dirs {
		if err := l.parseDir(dir, parsed, &order); err != nil {
			return nil, err
		}
	}
	// Pull in intra-module dependencies that the patterns missed so the
	// type checker sees complete information.
	for changed := true; changed; {
		changed = false
		for _, path := range append([]string(nil), order...) {
			for _, imp := range imports(parsed[path]) {
				if !strings.HasPrefix(imp, l.ModulePath) {
					continue
				}
				if _, ok := parsed[imp]; ok {
					continue
				}
				dir := filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(imp, l.ModulePath), "/")))
				if err := l.parseDir(dir, parsed, &order); err != nil {
					return nil, err
				}
				changed = true
			}
		}
	}
	sorted, err := topoSort(parsed, order, l.ModulePath)
	if err != nil {
		return nil, err
	}
	l.check(sorted)
	return sorted, nil
}

// expand resolves patterns to package directories (absolute paths).
func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		recursive := false
		if pat == "..." {
			pat, recursive = "", true
		} else if strings.HasSuffix(pat, "/...") {
			pat, recursive = strings.TrimSuffix(pat, "/..."), true
		}
		base := filepath.Join(l.Root, filepath.FromSlash(pat))
		if !recursive {
			if hasGoFiles(base) {
				add(base)
			}
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// parseDir parses one package directory into the set.
func (l *Loader) parseDir(dir string, parsed map[string]*Package, order *[]string) error {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return err
	}
	rel = filepath.ToSlash(rel)
	path := l.ModulePath
	if rel != "." {
		path += "/" + rel
	}
	if _, ok := parsed[path]; ok {
		return nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("lint: read %s: %w", dir, err)
	}
	pkg := &Package{Path: path, Dir: rel, Fset: l.fset}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !l.IncludeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("lint: parse: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil
	}
	// Split out external test packages (package foo_test) if tests were
	// requested; keeping them would break the type checker.
	base := pkg.Files[0].Name.Name
	var kept []*ast.File
	for _, f := range pkg.Files {
		if f.Name.Name == base {
			kept = append(kept, f)
		}
	}
	pkg.Files = kept
	parsed[path] = pkg
	*order = append(*order, path)
	return nil
}

func imports(p *Package) []string {
	var out []string
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil {
				out = append(out, path)
			}
		}
	}
	return out
}

// topoSort orders packages so every intra-module dependency precedes its
// importers.
func topoSort(parsed map[string]*Package, order []string, modulePath string) ([]*Package, error) {
	const (
		white = iota
		grey
		black
	)
	state := make(map[string]int, len(parsed))
	var out []*Package
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("lint: import cycle through %s", path)
		}
		state[path] = grey
		for _, imp := range imports(parsed[path]) {
			if strings.HasPrefix(imp, modulePath) {
				if _, ok := parsed[imp]; ok {
					if err := visit(imp); err != nil {
						return err
					}
				}
			}
		}
		state[path] = black
		out = append(out, parsed[path])
		return nil
	}
	sort.Strings(order)
	for _, path := range order {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// moduleImporter resolves intra-module imports from the checked set and
// defers the rest to the gc export-data importer, falling back to
// compiling from source when export data is unavailable.
type moduleImporter struct {
	local  map[string]*types.Package
	gc     types.Importer
	source types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.local[path]; ok {
		return p, nil
	}
	p, err := m.gc.Import(path)
	if err == nil {
		return p, nil
	}
	return m.source.Import(path)
}

// check type-checks packages in order, recording soft errors.
func (l *Loader) check(pkgs []*Package) {
	imp := &moduleImporter{
		local:  make(map[string]*types.Package, len(pkgs)),
		gc:     importer.Default(),
		source: importer.ForCompiler(l.fset, "source", nil),
	}
	for _, pkg := range pkgs {
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{
			Importer: imp,
			Error: func(err error) {
				pkg.TypeErrors = append(pkg.TypeErrors, err)
			},
		}
		tp, _ := conf.Check(pkg.Path, l.fset, pkg.Files, info)
		pkg.Types = tp
		pkg.Info = info
		if tp != nil {
			imp.local[pkg.Path] = tp
		}
	}
}

// modulePath reads the module directive from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: %w (set Loader.ModulePath for module-less trees)", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}
