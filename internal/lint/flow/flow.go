// Package flow is pdsplint's whole-program layer: it folds every
// type-checked package of one load into a single static call graph with
// a per-function fact store, so cross-package protocol rules (context
// propagation, lock ordering, lease linearity, channel discipline) share
// one traversal of the typed AST instead of re-walking it per rule.
//
// The graph is deliberately conservative and cheap:
//
//   - Nodes are declared functions and methods with bodies. Function
//     literals are folded into their enclosing declaration — a blocking
//     operation inside a closure (including a launched goroutine) counts
//     against the function that owns the closure, because that is the
//     frame a cancellation signal must reach.
//   - Edges are static calls only: direct package-level calls and method
//     calls whose callee the type checker resolves to a concrete
//     *types.Func declared in the program. Interface dispatch and calls
//     through function values produce no edge; analyses built on the
//     graph are therefore may-miss, never may-crash.
//   - Facts are memoised per program. Program.Memo gives each analyzer a
//     compute-once slot (e.g. the transitive blocking classification) so
//     four rules running over one Runner invocation pay for one fixpoint.
package flow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Unit is one loaded, type-checked package — the slice of a lint load
// the flow layer needs, without importing the lint package itself.
type Unit struct {
	// Path is the import path, Dir the module-relative directory.
	Path string
	Dir  string
	Fset *token.FileSet
	// Files are the parsed sources of the package.
	Files []*ast.File
	// Pkg and Info come from the shared type-check pass; either may be
	// nil for damaged packages, and the graph degrades to fewer edges.
	Pkg  *types.Package
	Info *types.Info
}

// TypeOf returns the type of e under this unit's type information, or
// nil when absent.
func (u *Unit) TypeOf(e ast.Expr) types.Type {
	if u.Info == nil {
		return nil
	}
	return u.Info.TypeOf(e)
}

// ObjectOf resolves an identifier, or nil.
func (u *Unit) ObjectOf(id *ast.Ident) types.Object {
	if u.Info == nil {
		return nil
	}
	return u.Info.ObjectOf(id)
}

// Blocker is one direct blocking operation inside a function body.
type Blocker struct {
	Pos  token.Pos
	What string // e.g. "channel receive", "time.Sleep"
}

// Func is one call-graph node: a declared function or method with a
// body, literals folded in.
type Func struct {
	// Obj is the type checker's object for the declaration.
	Obj *types.Func
	// Decl is the syntax; Decl.Body is non-nil.
	Decl *ast.FuncDecl
	// Unit is the package the function is declared in.
	Unit *Unit
	// HasCtx reports whether some parameter's type is context.Context.
	HasCtx bool
	// Blockers lists the function's own blocking operations, in source
	// order (channel send/receive/select, time.Sleep, net/http requests,
	// sync.WaitGroup.Wait — the operations a cancellation signal must be
	// able to interrupt).
	Blockers []Blocker
	// Calls are the statically resolved callees declared in the program,
	// deduplicated in first-call order.
	Calls []*Func
	// Callers is the reverse adjacency, in deterministic order.
	Callers []*Func

	callSites map[*Func]token.Pos
}

// Name renders a diagnostic-friendly qualified name, e.g.
// "pdspbench/internal/queue.(*Queue).Complete".
func (f *Func) Name() string {
	if f.Obj == nil {
		return f.Decl.Name.Name
	}
	if recv := f.Obj.Type().(*types.Signature).Recv(); recv != nil {
		return fmt.Sprintf("%s.(%s).%s", f.Obj.Pkg().Path(), typeShort(recv.Type()), f.Obj.Name())
	}
	return f.Obj.Pkg().Path() + "." + f.Obj.Name()
}

// CallSite returns the first position where f calls callee.
func (f *Func) CallSite(callee *Func) token.Pos {
	return f.callSites[callee]
}

func typeShort(t types.Type) string {
	ptr := ""
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
		ptr = "*"
	}
	if n, isNamed := t.(*types.Named); isNamed {
		return ptr + n.Obj().Name()
	}
	return ptr + t.String()
}

// Program is the whole-program view over one load.
type Program struct {
	Units []*Unit

	funcs  map[*types.Func]*Func
	sorted []*Func // declaration order across units
	memo   map[string]any
}

// Build constructs the call graph over the units. It never fails:
// type-check holes simply drop facts or edges.
func Build(units []*Unit) *Program {
	p := &Program{
		Units: units,
		funcs: make(map[*types.Func]*Func),
		memo:  make(map[string]any),
	}
	// Pass 1: nodes.
	for _, u := range units {
		for _, file := range u.Files {
			for _, decl := range file.Decls {
				fd, isFunc := decl.(*ast.FuncDecl)
				if !isFunc || fd.Body == nil || u.Info == nil {
					continue
				}
				obj, isObj := u.Info.Defs[fd.Name].(*types.Func)
				if !isObj {
					continue
				}
				fn := &Func{Obj: obj, Decl: fd, Unit: u, callSites: map[*Func]token.Pos{}}
				fn.HasCtx = hasCtxParam(obj)
				p.funcs[obj] = fn
				p.sorted = append(p.sorted, fn)
			}
		}
	}
	// Pass 2: edges and direct blockers.
	for _, fn := range p.sorted {
		p.scanBody(fn)
	}
	for _, fn := range p.sorted {
		for _, callee := range fn.Calls {
			callee.Callers = append(callee.Callers, fn)
		}
	}
	return p
}

// All returns every function in deterministic (declaration) order.
func (p *Program) All() []*Func { return p.sorted }

// FuncOf returns the node for a declaration's object, or nil.
func (p *Program) FuncOf(obj *types.Func) *Func { return p.funcs[obj] }

// FuncOfDecl resolves a syntax declaration to its node, or nil.
func (p *Program) FuncOfDecl(u *Unit, fd *ast.FuncDecl) *Func {
	if u.Info == nil {
		return nil
	}
	if obj, isObj := u.Info.Defs[fd.Name].(*types.Func); isObj {
		return p.funcs[obj]
	}
	return nil
}

// Memo returns the cached value for key, computing it once via build.
// Analyzers use it to share whole-program facts (the fact store's
// program-level half).
func (p *Program) Memo(key string, build func() any) any {
	if v, ok := p.memo[key]; ok {
		return v
	}
	v := build()
	p.memo[key] = v
	return v
}

// Reachable returns the set of functions reachable from roots over
// static call edges, roots included.
func (p *Program) Reachable(roots []*Func) map[*Func]bool {
	seen := make(map[*Func]bool, len(roots))
	queue := append([]*Func(nil), roots...)
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		if fn == nil || seen[fn] {
			continue
		}
		seen[fn] = true
		queue = append(queue, fn.Calls...)
	}
	return seen
}

// BlockInfo explains why a function is classified as blocking: a direct
// operation, or a static call to a blocking callee.
type BlockInfo struct {
	Direct *Blocker
	Via    *Func // callee that blocks, when Direct is nil
}

// Describe renders the classification for diagnostics.
func (b *BlockInfo) Describe(fset *token.FileSet) string {
	if b.Direct != nil {
		return fmt.Sprintf("%s at line %d", b.Direct.What, fset.Position(b.Direct.Pos).Line)
	}
	return fmt.Sprintf("calls %s, which blocks", b.Via.Name())
}

// Blocking computes the transitive blocking classification: a function
// blocks if it performs a blocking operation or statically calls a
// function that does. Memoised; all analyzers share one fixpoint.
func (p *Program) Blocking() map[*Func]*BlockInfo {
	return p.Memo("flow.blocking", func() any {
		out := make(map[*Func]*BlockInfo)
		var queue []*Func
		for _, fn := range p.sorted {
			if len(fn.Blockers) > 0 {
				out[fn] = &BlockInfo{Direct: &fn.Blockers[0]}
				queue = append(queue, fn)
			}
		}
		for len(queue) > 0 {
			fn := queue[0]
			queue = queue[1:]
			for _, caller := range fn.Callers {
				if out[caller] == nil {
					out[caller] = &BlockInfo{Via: fn}
					queue = append(queue, caller)
				}
			}
		}
		return out
	}).(map[*Func]*BlockInfo)
}

// scanBody folds fn's body (nested literals included) into edges and
// direct blockers.
func (p *Program) scanBody(fn *Func) {
	u := fn.Unit
	addCall := func(obj *types.Func, pos token.Pos) {
		callee, known := p.funcs[obj]
		if !known {
			return
		}
		if _, dup := fn.callSites[callee]; !dup {
			fn.callSites[callee] = pos
			fn.Calls = append(fn.Calls, callee)
		}
	}
	block := func(pos token.Pos, what string) {
		fn.Blockers = append(fn.Blockers, Blocker{Pos: pos, What: what})
	}
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			obj := CalleeOf(u, s)
			if obj == nil {
				return true
			}
			addCall(obj, s.Pos())
			if what := blockingCall(obj); what != "" {
				block(s.Pos(), what)
			}
		case *ast.SendStmt:
			block(s.Pos(), "channel send")
		case *ast.UnaryExpr:
			if s.Op == token.ARROW {
				block(s.Pos(), "channel receive")
			}
		case *ast.SelectStmt:
			if !selectHasDefault(s) {
				block(s.Pos(), "select")
			}
		case *ast.RangeStmt:
			if t := u.TypeOf(s.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					block(s.Pos(), "range over channel")
				}
			}
		}
		return true
	})
	sort.Slice(fn.Blockers, func(i, j int) bool { return fn.Blockers[i].Pos < fn.Blockers[j].Pos })
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, clause := range s.Body.List {
		if c, isComm := clause.(*ast.CommClause); isComm && c.Comm == nil {
			return true
		}
	}
	return false
}

// CalleeOf resolves a call expression to the concrete function object it
// invokes, or nil for builtins, conversions, interface dispatch and
// calls through function values.
func CalleeOf(u *Unit, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	if obj, isFunc := u.ObjectOf(id).(*types.Func); isFunc {
		return obj
	}
	return nil
}

// blockingOps classifies well-known stdlib calls that park the calling
// goroutine until an external event. Keys are "pkgpath.Func" for
// package-level functions and "pkgpath.Type.Method" for methods.
var blockingOps = map[string]string{
	"time.Sleep":                        "time.Sleep",
	"net/http.Get":                      "net/http request",
	"net/http.Post":                     "net/http request",
	"net/http.PostForm":                 "net/http request",
	"net/http.Head":                     "net/http request",
	"net/http.Client.Do":                "net/http request",
	"net/http.Client.Get":               "net/http request",
	"net/http.Client.Post":              "net/http request",
	"net/http.Client.PostForm":          "net/http request",
	"net/http.Client.Head":              "net/http request",
	"net/http.Server.Serve":             "http.Server.Serve",
	"net/http.Server.ListenAndServe":    "http.Server.ListenAndServe",
	"net/http.Server.ListenAndServeTLS": "http.Server.ListenAndServeTLS",
	"sync.WaitGroup.Wait":               "sync.WaitGroup.Wait",
	"sync.Cond.Wait":                    "sync.Cond.Wait",
}

func blockingCall(obj *types.Func) string {
	pkg := obj.Pkg()
	if pkg == nil {
		return ""
	}
	sig, isSig := obj.Type().(*types.Signature)
	if !isSig {
		return ""
	}
	key := pkg.Path() + "." + obj.Name()
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if ptr, isPtr := t.(*types.Pointer); isPtr {
			t = ptr.Elem()
		}
		named, isNamed := t.(*types.Named)
		if !isNamed {
			return ""
		}
		key = pkg.Path() + "." + named.Obj().Name() + "." + obj.Name()
	}
	return blockingOps[key]
}

// hasCtxParam reports whether a parameter (not the receiver) has type
// context.Context.
func hasCtxParam(obj *types.Func) bool {
	sig, isSig := obj.Type().(*types.Signature)
	if !isSig {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if IsContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// NamedRecv returns the receiver's named type (pointers unwrapped) for a
// method object, or nil for plain functions.
func NamedRecv(obj *types.Func) *types.Named {
	sig, isSig := obj.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
