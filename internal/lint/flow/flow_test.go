package flow_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"testing"

	"pdspbench/internal/lint/flow"
	"pdspbench/internal/testutil"
)

func TestMain(m *testing.M) { os.Exit(testutil.RunMain(m)) }

// loadUnit type-checks one in-memory file into a flow.Unit, the same
// shape the lint loader hands to Build.
func loadUnit(t *testing.T, src string) *flow.Unit {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "unit.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("unit", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &flow.Unit{Path: "unit", Dir: ".", Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info}
}

func fnByName(t *testing.T, prog *flow.Program, name string) *flow.Func {
	t.Helper()
	for _, fn := range prog.All() {
		if fn.Decl.Name.Name == name {
			return fn
		}
	}
	t.Fatalf("function %s not in program", name)
	return nil
}

func TestCallGraphAndBlocking(t *testing.T) {
	prog := flow.Build([]*flow.Unit{loadUnit(t, `package unit

import (
	"context"
	"time"
)

func entry() { middle() }

func middle() { leaf() }

func leaf() { time.Sleep(time.Millisecond) }

func pure(a, b int) int { return a + b }

func withCtx(ctx context.Context) {
	// Literals fold into the declaring function: the receive inside the
	// spawned goroutine is withCtx's blocker.
	ch := make(chan int)
	go func() { <-ch }()
}
`)})
	if got := len(prog.All()); got != 5 {
		t.Fatalf("want 5 functions, got %d", got)
	}
	entry := fnByName(t, prog, "entry")
	middle := fnByName(t, prog, "middle")
	leaf := fnByName(t, prog, "leaf")
	pure := fnByName(t, prog, "pure")
	withCtx := fnByName(t, prog, "withCtx")

	if len(entry.Calls) != 1 || entry.Calls[0] != middle {
		t.Errorf("entry.Calls = %v, want [middle]", entry.Calls)
	}
	if len(middle.Callers) != 1 || middle.Callers[0] != entry {
		t.Errorf("middle.Callers = %v, want [entry]", middle.Callers)
	}
	if pos := entry.CallSite(middle); !pos.IsValid() {
		t.Error("entry→middle call site should be recorded")
	}

	reach := prog.Reachable([]*flow.Func{entry})
	for fn, want := range map[*flow.Func]bool{entry: true, middle: true, leaf: true, pure: false, withCtx: false} {
		if reach[fn] != want {
			t.Errorf("Reachable[%s] = %v, want %v", fn.Name(), reach[fn], want)
		}
	}

	blocking := prog.Blocking()
	if b := blocking[leaf]; b == nil || b.Direct == nil || b.Direct.What != "time.Sleep" {
		t.Errorf("leaf should block directly via time.Sleep, got %+v", b)
	}
	if b := blocking[entry]; b == nil || b.Via != middle {
		t.Errorf("entry should block via middle, got %+v", b)
	}
	if blocking[pure] != nil {
		t.Error("pure must not be classified as blocking")
	}
	if b := blocking[withCtx]; b == nil || b.Direct == nil {
		t.Errorf("withCtx's goroutine receive should fold into its blockers, got %+v", b)
	}
	if !withCtx.HasCtx || entry.HasCtx {
		t.Errorf("HasCtx: withCtx=%v entry=%v, want true/false", withCtx.HasCtx, entry.HasCtx)
	}
}

func TestMemoComputesOnce(t *testing.T) {
	prog := flow.Build(nil)
	calls := 0
	build := func() any { calls++; return calls }
	if got := prog.Memo("k", build); got != 1 {
		t.Fatalf("first Memo = %v, want 1", got)
	}
	if got := prog.Memo("k", build); got != 1 {
		t.Fatalf("second Memo = %v, want cached 1", got)
	}
	if calls != 1 {
		t.Fatalf("build ran %d times, want 1", calls)
	}
}
