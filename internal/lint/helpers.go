package lint

import (
	"go/ast"
	"go/types"
)

// pkgFuncCall reports whether call invokes a package-level function and
// returns the package path and function name (e.g. "time", "Now").
func pkgFuncCall(p *Pass, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isID := sel.X.(*ast.Ident)
	if !isID {
		return "", "", false
	}
	obj := p.ObjectOf(id)
	pn, isPkg := obj.(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// methodCallOn reports whether call is a method call and returns the
// receiver expression plus the defining package path and named type of
// the receiver (pointers unwrapped), e.g. ("sync", "WaitGroup").
func methodCallOn(p *Pass, call *ast.CallExpr) (recv ast.Expr, pkgPath, typeName, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", "", "", false
	}
	t := p.TypeOf(sel.X)
	if t == nil {
		return nil, "", "", "", false
	}
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return nil, "", "", "", false
	}
	obj := named.Obj()
	path := ""
	if obj.Pkg() != nil {
		path = obj.Pkg().Path()
	}
	return sel.X, path, obj.Name(), sel.Sel.Name, true
}

// isBuiltinCall reports whether call invokes the named builtin.
func isBuiltinCall(p *Pass, call *ast.CallExpr, name string) bool {
	id, isID := call.Fun.(*ast.Ident)
	if !isID || id.Name != name {
		return false
	}
	_, isBuiltin := p.ObjectOf(id).(*types.Builtin)
	return isBuiltin
}

// containsLock returns the name of the first sync primitive found when
// traversing t by value (struct fields, arrays, embedded), or "".
func containsLock(t types.Type) string {
	return lockIn(t, map[types.Type]bool{})
}

var lockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true, "Once": true, "Cond": true,
}

func lockIn(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	switch tt := t.(type) {
	case *types.Named:
		obj := tt.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && lockTypes[obj.Name()] {
			return "sync." + obj.Name()
		}
		return lockIn(tt.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < tt.NumFields(); i++ {
			if found := lockIn(tt.Field(i).Type(), seen); found != "" {
				return found
			}
		}
	case *types.Array:
		return lockIn(tt.Elem(), seen)
	}
	return ""
}

// inspectShallow walks n without descending into nested function
// literals, so per-function analyses see only their own statements.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(child ast.Node) bool {
		if _, isLit := child.(*ast.FuncLit); isLit && child != n {
			return false
		}
		return fn(child)
	})
}

// walkFunctions visits every function (declaration or literal) in the
// file exactly once.
func walkFunctions(f *ast.File, visit func(fn ast.Node, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				visit(fn, fn.Body)
			}
		case *ast.FuncLit:
			visit(fn, fn.Body)
		}
		return true
	})
}

// modulePathOf derives the module path from a package's import path and
// module-relative directory.
func modulePathOf(pkg *Package) string {
	if pkg.Dir == "." {
		return pkg.Path
	}
	if n := len(pkg.Path) - len(pkg.Dir) - 1; n > 0 && pkg.Path[n:] == "/"+pkg.Dir {
		return pkg.Path[:n]
	}
	return pkg.Path
}
