package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockDiscipline catches the two lock-handling mistakes that corrupt
// measurements silently: copying a sync primitive by value (the copy
// guards nothing) and taking a Lock with no matching Unlock in the same
// function (a latent deadlock under contention).
func LockDiscipline() *Analyzer {
	return &Analyzer{
		Name: "lock-discipline",
		Doc: "sync.Mutex/RWMutex/WaitGroup/Once/Cond must not be passed or copied by value, " +
			"and every Lock()/RLock() must have a matching (usually deferred) Unlock in the " +
			"same function.",
		Run: runLockDiscipline,
	}
}

func runLockDiscipline(p *Pass) {
	for _, f := range p.Pkg.Files {
		checkLockCopies(p, f)
		walkFunctions(f, func(fn ast.Node, body *ast.BlockStmt) {
			checkLockPairs(p, body)
		})
	}
}

// checkLockCopies flags by-value parameters/receivers whose type
// contains a sync primitive, and assignments or call arguments that copy
// an existing lock-containing value.
func checkLockCopies(p *Pass, f *ast.File) {
	checkFieldList := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := p.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.(*types.Pointer); isPtr {
				continue
			}
			if lock := containsLock(t); lock != "" {
				p.Reportf(field.Type.Pos(), "%s passes %s by value; the copy guards nothing — use a pointer", what, lock)
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncDecl:
			checkFieldList(s.Recv, "receiver")
			checkFieldList(s.Type.Params, "parameter")
		case *ast.FuncLit:
			checkFieldList(s.Type.Params, "parameter")
		case *ast.AssignStmt:
			for _, rhs := range s.Rhs {
				if copiesLockValue(p, rhs) {
					p.Reportf(rhs.Pos(), "assignment copies a value containing %s; use a pointer", containsLock(p.TypeOf(rhs)))
				}
			}
		case *ast.CallExpr:
			for _, arg := range s.Args {
				if copiesLockValue(p, arg) {
					p.Reportf(arg.Pos(), "call passes a value containing %s by value; use a pointer", containsLock(p.TypeOf(arg)))
				}
			}
		}
		return true
	})
}

// copiesLockValue reports whether evaluating expr copies an existing
// value whose type contains a sync primitive. Creation forms (composite
// literals, constructor calls) and pointers are fine; reads of existing
// variables (idents, selectors, derefs, indexing) are copies.
func copiesLockValue(p *Pass, expr ast.Expr) bool {
	switch e := expr.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		t := p.TypeOf(expr)
		if t == nil {
			return false
		}
		if _, isPtr := t.(*types.Pointer); isPtr {
			return false
		}
		if id, isID := e.(*ast.Ident); isID {
			// A bare type name or nil is not a value copy.
			if _, isVar := p.ObjectOf(id).(*types.Var); !isVar {
				return false
			}
		}
		return containsLock(t) != ""
	}
	return false
}

// lockMethods maps a locking method to its required counterpart.
var lockMethods = map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}

// checkLockPairs requires every mutex Lock/RLock in a function to be
// followed by its Unlock counterpart (deferred or direct) on the same
// lock expression within that function.
func checkLockPairs(p *Pass, body *ast.BlockStmt) {
	type lockCall struct {
		call   *ast.CallExpr
		lockee string
		method string
	}
	var locks []lockCall
	unlocked := map[string]bool{} // "expr.Unlock" seen
	record := func(call *ast.CallExpr) {
		recv, pkgPath, typeName, method, ok := methodCallOn(p, call)
		if !ok || pkgPath != "sync" || (typeName != "Mutex" && typeName != "RWMutex") {
			return
		}
		lockee := types.ExprString(recv)
		if _, isLock := lockMethods[method]; isLock {
			locks = append(locks, lockCall{call: call, lockee: lockee, method: method})
		}
		if strings.HasSuffix(method, "Unlock") {
			unlocked[lockee+"."+method] = true
		}
	}
	inspectShallow(body, func(n ast.Node) bool {
		if call, isCall := n.(*ast.CallExpr); isCall {
			record(call)
		}
		return true
	})
	for _, l := range locks {
		want := lockMethods[l.method]
		if !unlocked[l.lockee+"."+want] {
			p.Reportf(l.call.Pos(), "%s.%s() without a matching %s in the same function; defer %s.%s() after locking", l.lockee, l.method, want, l.lockee, want)
		}
	}
}
