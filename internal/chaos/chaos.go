// Package chaos is the deterministic fault-injection layer of
// PDSP-Bench. The paper benchmarks Apache Flink — a system whose
// defining operational property is surviving worker loss — so a
// reproduction that only ever measures the happy path measures the
// wrong system. This package describes degradations (operator-instance
// crashes, node failure and recovery, slow nodes, source stalls, link
// delay/drop) as a seeded Plan and expands it into one instance-scoped
// Event schedule that both execution backends replay identically:
// the same Plan, plan and placement always produce the same events in
// the same order, on the simulator's virtual clock and on the real
// engine's wall clock alike.
//
// The determinism contract: Schedule draws every random choice (target
// operator, node, fault time) from rand.New(rand.NewSource(Seed)) in
// fault-declaration order, and event times are seconds from run start
// — simulated seconds on the sim backend, wall-clock seconds on the
// real one — so a schedule is a pure function of (Plan, PQP, cluster,
// placement strategy) and Hash gives it a stable fingerprint the
// parity harness compares across backends.
package chaos

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"pdspbench/internal/cluster"
	"pdspbench/internal/core"
)

// Kind names a fault in a plan. The first six are user-facing fault
// kinds; Schedule expands them into the primitive event kinds below.
type Kind string

const (
	// KindCrash kills operator instances; the engine's supervisor (or
	// the simulator's recovery event) restarts them while the plan's
	// restart budget lasts.
	KindCrash Kind = "crash"
	// KindNodeDown takes every instance placed on one node down for
	// Duration seconds, then recovers them — recovery is scheduled, so
	// it never consumes the restart budget.
	KindNodeDown Kind = "node-down"
	// KindSlowNode multiplies the service cost of every instance on one
	// node by Factor for Duration seconds.
	KindSlowNode Kind = "slow-node"
	// KindSourceStall pauses a source operator's emission for Duration
	// seconds.
	KindSourceStall Kind = "source-stall"
	// KindLinkDelay adds Factor seconds to every delivery into the
	// target operator for Duration seconds.
	KindLinkDelay Kind = "link-delay"
	// KindLinkDrop discards the Factor fraction of tuples delivered
	// into the target operator for Duration seconds.
	KindLinkDrop Kind = "link-drop"
)

// Primitive event kinds emitted by Schedule. Crash and the link kinds
// reuse the fault-kind names; node faults expand to per-instance
// down/slow events via the placement.
const (
	// EvDown takes one instance down for Duration, with recovery
	// scheduled (not budgeted) — the expansion of KindNodeDown.
	EvDown Kind = "down"
	// EvSlow is the per-instance expansion of KindSlowNode.
	EvSlow Kind = "slow"
	// EvStall is the per-instance expansion of KindSourceStall.
	EvStall Kind = "stall"
)

// Fault is one declared degradation in a fault plan.
type Fault struct {
	Kind Kind `json:"kind"`
	// Op targets a logical operator by ID. Empty means a seeded random
	// pick among eligible operators (non-source non-sink for crashes,
	// sources for stalls, non-source for link faults).
	Op string `json:"op,omitempty"`
	// Instance targets one parallel instance of Op (default 0); any
	// negative value targets every instance. Ignored by node and link
	// faults.
	Instance int `json:"instance,omitempty"`
	// Node is the cluster node index for node faults; a negative value
	// means a seeded random pick.
	Node int `json:"node,omitempty"`
	// At is the injection time in seconds from run start (default 0);
	// a negative value means a seeded uniform draw over [0, Horizon).
	At float64 `json:"at,omitempty"`
	// Duration in seconds of the degradation window (node-down outage,
	// slow/stall/link window). 0 means the kind's default.
	Duration float64 `json:"duration,omitempty"`
	// Factor parameterizes the kind: slow-node service multiplier
	// (default 4), link-delay extra seconds per delivery (default
	// 0.005), link-drop fraction dropped in [0,1] (default 1).
	Factor float64 `json:"factor,omitempty"`
}

// Plan is a seeded, reproducible fault schedule specification — the
// FaultPlan a RunSpec carries into both backends.
type Plan struct {
	// Seed drives every random choice in Schedule (default 1). It is
	// independent of the run seed so repeated runs of one spec share
	// one fault schedule.
	Seed int64 `json:"seed,omitempty"`
	// Horizon is the window in seconds over which randomized fault
	// times (At < 0) are drawn (default 1).
	Horizon float64 `json:"horizon,omitempty"`
	// MaxRestarts is the per-instance crash-restart budget: 0 means
	// the default of 1; any negative value disables restarts, so the
	// first crash of an instance is final.
	MaxRestarts int `json:"max_restarts,omitempty"`
	// RestartDelay is the downtime in seconds a budgeted restart costs
	// (default 0.02); the real engine doubles it per consecutive
	// restart of one instance (bounded exponential backoff).
	RestartDelay float64 `json:"restart_delay,omitempty"`
	// Faults are the declared degradations, expanded in order.
	Faults []Fault `json:"faults"`
}

// Empty reports whether the plan injects nothing — the contract for
// the zero-cost happy path in both backends.
func (p *Plan) Empty() bool { return p == nil || len(p.Faults) == 0 }

// Restarts resolves the restart budget (see MaxRestarts).
func (p *Plan) Restarts() int {
	switch {
	case p == nil || p.MaxRestarts < 0:
		return 0
	case p.MaxRestarts == 0:
		return 1
	default:
		return p.MaxRestarts
	}
}

// Delay resolves the per-restart downtime in seconds.
func (p *Plan) Delay() float64 {
	if p == nil || p.RestartDelay <= 0 {
		return 0.02
	}
	return p.RestartDelay
}

func (p *Plan) horizon() float64 {
	if p.Horizon <= 0 {
		return 1
	}
	return p.Horizon
}

// Event is one primitive, instance-scoped fault occurrence — the unit
// both backends consume. Instance is -1 for op-scoped link events.
type Event struct {
	At       float64 `json:"at"`
	Kind     Kind    `json:"kind"`
	Op       string  `json:"op"`
	Instance int     `json:"instance"`
	Duration float64 `json:"duration,omitempty"`
	Factor   float64 `json:"factor,omitempty"`
}

// FaultError is the typed failure both backends return when a fault
// leaves an operator with no live instance and no restart budget — the
// engine reports it instead of hanging, the simulator instead of
// running a plan that can no longer produce output.
type FaultError struct {
	// Op is the operator that lost its last instance.
	Op string
	// Kind is the fault kind that killed it.
	Kind Kind
}

func (e *FaultError) Error() string {
	return "chaos: operator " + strconv.Quote(e.Op) + " lost its last instance to " +
		string(e.Kind) + " with no restart budget"
}

// defaultDuration is the degradation window used when a fault omits one.
func defaultDuration(k Kind) float64 {
	switch k {
	case KindNodeDown:
		return 0.05
	case KindSlowNode:
		return 0.1
	default:
		return 0.05
	}
}

// Schedule expands the plan into the deterministic primitive-event
// schedule for the given query plan on the given cluster. Node faults
// resolve to per-instance events through cluster.Place with the same
// strategy the run uses, so both backends see identical targets. The
// returned events are sorted by time with a stable (op, instance,
// kind) tie-break.
func (p *Plan) Schedule(q *core.PQP, cl *cluster.Cluster, strat cluster.Strategy) ([]Event, error) {
	if p.Empty() {
		return nil, nil
	}
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	pl, err := cluster.Place(q, cl, strat)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	var events []Event
	for fi, f := range p.Faults {
		at := f.At
		if at < 0 {
			at = rng.Float64() * p.horizon()
		}
		dur := f.Duration
		if dur <= 0 {
			dur = defaultDuration(f.Kind)
		}
		switch f.Kind {
		case KindCrash:
			op, err := p.resolveOp(q, rng, f.Op, eligibleMid)
			if err != nil {
				return nil, fmt.Errorf("chaos: fault %d: %w", fi, err)
			}
			for _, idx := range instanceTargets(q.Op(op).Parallelism, f.Instance) {
				events = append(events, Event{At: at, Kind: KindCrash, Op: op, Instance: idx})
			}
		case KindNodeDown, KindSlowNode:
			node := f.Node
			if node < 0 {
				node = rng.Intn(len(cl.Nodes))
			}
			if node >= len(cl.Nodes) {
				return nil, fmt.Errorf("chaos: fault %d: node %d out of range (cluster has %d)", fi, node, len(cl.Nodes))
			}
			kind, factor := EvDown, 0.0
			if f.Kind == KindSlowNode {
				kind = EvSlow
				factor = f.Factor
				if factor <= 1 {
					factor = 4
				}
			}
			for _, op := range q.Operators {
				for idx, n := range pl.NodeOf[op.ID] {
					if n == node {
						events = append(events, Event{At: at, Kind: kind, Op: op.ID, Instance: idx, Duration: dur, Factor: factor})
					}
				}
			}
		case KindSourceStall:
			op, err := p.resolveOp(q, rng, f.Op, eligibleSource)
			if err != nil {
				return nil, fmt.Errorf("chaos: fault %d: %w", fi, err)
			}
			for _, idx := range instanceTargets(q.Op(op).Parallelism, f.Instance) {
				events = append(events, Event{At: at, Kind: EvStall, Op: op, Instance: idx, Duration: dur})
			}
		case KindLinkDelay, KindLinkDrop:
			op, err := p.resolveOp(q, rng, f.Op, eligibleNonSource)
			if err != nil {
				return nil, fmt.Errorf("chaos: fault %d: %w", fi, err)
			}
			factor := f.Factor
			if factor <= 0 {
				if f.Kind == KindLinkDelay {
					factor = 0.005
				} else {
					factor = 1
				}
			}
			if f.Kind == KindLinkDrop && factor > 1 {
				factor = 1
			}
			events = append(events, Event{At: at, Kind: f.Kind, Op: op, Instance: -1, Duration: dur, Factor: factor})
		default:
			return nil, fmt.Errorf("chaos: fault %d: unknown kind %q", fi, f.Kind)
		}
	}
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		if a.Instance != b.Instance {
			return a.Instance < b.Instance
		}
		return a.Kind < b.Kind
	})
	return events, nil
}

// eligibility filters for random operator picks.
func eligibleMid(op *core.Operator) bool {
	return op.Kind != core.OpSource && op.Kind != core.OpSink
}
func eligibleSource(op *core.Operator) bool    { return op.Kind == core.OpSource }
func eligibleNonSource(op *core.Operator) bool { return op.Kind != core.OpSource }

// resolveOp validates an explicit target or draws one among eligible
// operators in plan order (deterministic for a fixed seed).
func (p *Plan) resolveOp(q *core.PQP, rng *rand.Rand, explicit string, ok func(*core.Operator) bool) (string, error) {
	if explicit != "" {
		if q.Op(explicit) == nil {
			return "", fmt.Errorf("no operator %q in plan %s", explicit, q.Name)
		}
		return explicit, nil
	}
	var pool []string
	for _, op := range q.Operators {
		if ok(op) {
			pool = append(pool, op.ID)
		}
	}
	if len(pool) == 0 {
		return "", fmt.Errorf("no eligible target operator in plan %s", q.Name)
	}
	return pool[rng.Intn(len(pool))], nil
}

// instanceTargets expands an instance selector against a parallelism.
func instanceTargets(parallelism, sel int) []int {
	if sel >= 0 {
		if sel >= parallelism {
			sel = parallelism - 1
		}
		return []int{sel}
	}
	out := make([]int, parallelism)
	for i := range out {
		out[i] = i
	}
	return out
}

// Hash fingerprints a schedule (FNV-1a over a canonical rendering) so
// the parity harness can assert both backends ran the same events.
func Hash(events []Event) string {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	write := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
	}
	for _, ev := range events {
		write(strconv.FormatFloat(ev.At, 'g', -1, 64))
		write("|")
		write(string(ev.Kind))
		write("|")
		write(ev.Op)
		write("|")
		write(strconv.Itoa(ev.Instance))
		write("|")
		write(strconv.FormatFloat(ev.Duration, 'g', -1, 64))
		write("|")
		write(strconv.FormatFloat(ev.Factor, 'g', -1, 64))
		write(";")
	}
	return strconv.FormatUint(h, 16)
}

// ParseSpec parses the compact CLI fault syntax: semicolon-separated
// entries of `kind:key=value,...`. Keys are op, inst (index or "all"),
// node (index or "any"), at (seconds, a Go duration, or "rand"), dur,
// factor; the pseudo-entry `plan:seed=...,horizon=...,restarts=...,
// delay=...` sets plan-level knobs. Examples:
//
//	crash:op=f1,at=30ms
//	node-down:node=1,at=rand,dur=50ms;slow-node:node=0,factor=8
//	plan:seed=7,restarts=2;crash:op=f1,inst=all
func ParseSpec(spec string) (*Plan, error) {
	p := &Plan{}
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		kind, rest, _ := strings.Cut(entry, ":")
		kind = strings.TrimSpace(kind)
		kv, err := parsePairs(rest)
		if err != nil {
			return nil, fmt.Errorf("chaos: entry %q: %w", entry, err)
		}
		if kind == "plan" {
			if err := p.applyPlanPairs(kv); err != nil {
				return nil, fmt.Errorf("chaos: entry %q: %w", entry, err)
			}
			continue
		}
		f, err := parseFault(Kind(kind), kv)
		if err != nil {
			return nil, fmt.Errorf("chaos: entry %q: %w", entry, err)
		}
		p.Faults = append(p.Faults, f)
	}
	if len(p.Faults) == 0 {
		return nil, fmt.Errorf("chaos: spec %q declares no faults", spec)
	}
	return p, nil
}

func parsePairs(s string) (map[string]string, error) {
	kv := map[string]string{}
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		k, v, found := strings.Cut(pair, "=")
		if !found {
			return nil, fmt.Errorf("malformed pair %q (want key=value)", pair)
		}
		kv[strings.TrimSpace(k)] = strings.TrimSpace(v)
	}
	return kv, nil
}

func (p *Plan) applyPlanPairs(kv map[string]string) error {
	for k, v := range kv {
		switch k {
		case "seed":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return fmt.Errorf("seed: %w", err)
			}
			p.Seed = n
		case "horizon":
			sec, err := parseSeconds(v)
			if err != nil {
				return fmt.Errorf("horizon: %w", err)
			}
			p.Horizon = sec
		case "restarts":
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("restarts: %w", err)
			}
			p.MaxRestarts = n
		case "delay":
			sec, err := parseSeconds(v)
			if err != nil {
				return fmt.Errorf("delay: %w", err)
			}
			p.RestartDelay = sec
		default:
			return fmt.Errorf("unknown plan key %q", k)
		}
	}
	return nil
}

func parseFault(kind Kind, kv map[string]string) (Fault, error) {
	switch kind {
	case KindCrash, KindNodeDown, KindSlowNode, KindSourceStall, KindLinkDelay, KindLinkDrop:
	default:
		return Fault{}, fmt.Errorf("unknown fault kind %q", kind)
	}
	f := Fault{Kind: kind}
	for k, v := range kv {
		switch k {
		case "op":
			f.Op = v
		case "inst":
			if v == "all" {
				f.Instance = -1
				break
			}
			n, err := strconv.Atoi(v)
			if err != nil {
				return Fault{}, fmt.Errorf("inst: %w", err)
			}
			f.Instance = n
		case "node":
			if v == "any" {
				f.Node = -1
				break
			}
			n, err := strconv.Atoi(v)
			if err != nil {
				return Fault{}, fmt.Errorf("node: %w", err)
			}
			f.Node = n
		case "at":
			if v == "rand" {
				f.At = -1
				break
			}
			sec, err := parseSeconds(v)
			if err != nil {
				return Fault{}, fmt.Errorf("at: %w", err)
			}
			f.At = sec
		case "dur":
			sec, err := parseSeconds(v)
			if err != nil {
				return Fault{}, fmt.Errorf("dur: %w", err)
			}
			f.Duration = sec
		case "factor":
			x, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return Fault{}, fmt.Errorf("factor: %w", err)
			}
			f.Factor = x
		default:
			return Fault{}, fmt.Errorf("unknown key %q", k)
		}
	}
	return f, nil
}

// parseSeconds accepts plain seconds ("0.05") or Go durations ("50ms").
func parseSeconds(v string) (float64, error) {
	if x, err := strconv.ParseFloat(v, 64); err == nil {
		return x, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, fmt.Errorf("%q is neither seconds nor a duration", v)
	}
	return d.Seconds(), nil
}

// FromArg resolves a CLI --faults argument: "@path" or an existing
// .json path loads a JSON Plan; anything else parses as a compact spec.
func FromArg(arg string) (*Plan, error) {
	path := ""
	if strings.HasPrefix(arg, "@") {
		path = arg[1:]
	} else if strings.HasSuffix(arg, ".json") {
		path = arg
	}
	if path == "" {
		return ParseSpec(arg)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	p := &Plan{}
	if err := json.Unmarshal(data, p); err != nil {
		return nil, fmt.Errorf("chaos: parse %s: %w", path, err)
	}
	if p.Empty() {
		return nil, fmt.Errorf("chaos: %s declares no faults", path)
	}
	return p, nil
}
