package chaos

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"pdspbench/internal/cluster"
	"pdspbench/internal/core"
	"pdspbench/internal/tuple"
	"pdspbench/internal/workload"
)

func testPlan(t *testing.T) *core.PQP {
	t.Helper()
	plan, err := workload.Build(workload.StructTwoFilter, workload.Params{
		EventRate:  10_000,
		TupleWidth: 3,
		FieldTypes: []tuple.Type{tuple.TypeInt, tuple.TypeInt, tuple.TypeDouble},
		Window: core.WindowSpec{
			Type: core.WindowTumbling, Policy: core.PolicyTime, LengthMs: 250,
		},
		AggFn:        core.AggSum,
		FilterFn:     core.FilterLess,
		Selectivity:  0.5,
		Partition:    core.PartitionRebalance,
		Distribution: "poisson",
	})
	if err != nil {
		t.Fatal(err)
	}
	plan.SetUniformParallelism(2)
	return plan
}

func testCluster() *cluster.Cluster {
	return cluster.NewHomogeneous("test", cluster.M510, 4)
}

func TestScheduleDeterministic(t *testing.T) {
	plan, cl := testPlan(t), testCluster()
	p := &Plan{
		Seed: 42,
		Faults: []Fault{
			{Kind: KindCrash, At: -1},              // random op, random time
			{Kind: KindNodeDown, Node: -1, At: -1}, // random node
			{Kind: KindSourceStall, At: 0.1},       // random source (only one eligible set)
			{Kind: KindLinkDelay, Op: "sink", At: 0.2},
		},
	}
	a, err := p.Schedule(plan, cl, cluster.PlaceRoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Schedule(plan, cl, cluster.PlaceRoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", a, b)
	}
	if Hash(a) != Hash(b) {
		t.Fatalf("same schedule, different hashes: %s vs %s", Hash(a), Hash(b))
	}
	if len(a) == 0 {
		t.Fatal("schedule is empty")
	}
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatalf("schedule not sorted by time: %v", a)
		}
	}
}

func TestScheduleSeedsDiffer(t *testing.T) {
	plan, cl := testPlan(t), testCluster()
	mk := func(seed int64) []Event {
		p := &Plan{Seed: seed, Faults: []Fault{
			{Kind: KindCrash, At: -1},
			{Kind: KindNodeDown, Node: -1, At: -1},
		}}
		ev, err := p.Schedule(plan, cl, cluster.PlaceRoundRobin)
		if err != nil {
			t.Fatal(err)
		}
		return ev
	}
	if Hash(mk(1)) == Hash(mk(2)) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestScheduleExpansion(t *testing.T) {
	plan, cl := testPlan(t), testCluster()
	p := &Plan{Faults: []Fault{
		{Kind: KindCrash, Op: "filter1", Instance: -1, At: 0.01},
		{Kind: KindNodeDown, Node: 0, At: 0.02, Duration: 0.03},
	}}
	events, err := p.Schedule(plan, cl, cluster.PlaceRoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	crashes := 0
	downs := 0
	for _, ev := range events {
		switch ev.Kind {
		case KindCrash:
			crashes++
			if ev.Op != "filter1" {
				t.Fatalf("crash targets %q, want filter1", ev.Op)
			}
		case EvDown:
			downs++
			if ev.Duration != 0.03 {
				t.Fatalf("down duration %v, want 0.03", ev.Duration)
			}
		}
	}
	if crashes != 2 {
		t.Fatalf("crash on inst=all of a parallelism-2 operator expanded to %d events, want 2", crashes)
	}
	if downs == 0 {
		t.Fatal("node-down expanded to no per-instance events")
	}
}

func TestScheduleRejectsUnknownOp(t *testing.T) {
	plan, cl := testPlan(t), testCluster()
	p := &Plan{Faults: []Fault{{Kind: KindCrash, Op: "nope"}}}
	if _, err := p.Schedule(plan, cl, cluster.PlaceRoundRobin); err == nil {
		t.Fatal("unknown target operator accepted")
	}
}

func TestParseSpec(t *testing.T) {
	p, err := ParseSpec("plan:seed=7,restarts=2,delay=10ms;crash:op=f1,inst=all,at=30ms;node-down:node=any,at=rand,dur=50ms")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || p.MaxRestarts != 2 || p.RestartDelay != 0.01 {
		t.Fatalf("plan knobs not applied: %+v", p)
	}
	if len(p.Faults) != 2 {
		t.Fatalf("got %d faults, want 2", len(p.Faults))
	}
	f := p.Faults[0]
	if f.Kind != KindCrash || f.Op != "f1" || f.Instance != -1 || f.At != 0.03 {
		t.Fatalf("crash fault parsed wrong: %+v", f)
	}
	if p.Faults[1].Node != -1 || p.Faults[1].At != -1 || p.Faults[1].Duration != 0.05 {
		t.Fatalf("node-down fault parsed wrong: %+v", p.Faults[1])
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"explode:op=f1",
		"crash:op",
		"crash:wat=1",
		"plan:seed=x",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestFromArgJSON(t *testing.T) {
	p := &Plan{Seed: 3, Faults: []Fault{{Kind: KindCrash, Op: "f1"}}}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "faults.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, arg := range []string{path, "@" + path} {
		got, err := FromArg(arg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Fatalf("FromArg(%q) = %+v, want %+v", arg, got, p)
		}
	}
	if _, err := FromArg("crash:op=f1"); err != nil {
		t.Fatalf("spec fallthrough failed: %v", err)
	}
}

func TestPlanDefaults(t *testing.T) {
	var nilPlan *Plan
	if !nilPlan.Empty() {
		t.Fatal("nil plan not Empty")
	}
	if nilPlan.Restarts() != 0 {
		t.Fatal("nil plan has restart budget")
	}
	p := &Plan{}
	if p.Restarts() != 1 {
		t.Fatalf("default restart budget %d, want 1", p.Restarts())
	}
	p.MaxRestarts = -1
	if p.Restarts() != 0 {
		t.Fatal("MaxRestarts<0 should disable restarts")
	}
	if (&Plan{}).Delay() != 0.02 {
		t.Fatal("default restart delay wrong")
	}
}

func TestFaultErrorAs(t *testing.T) {
	var fe *FaultError
	wrapped := errors.Join(errors.New("outer"), &FaultError{Op: "f1", Kind: KindCrash})
	if !errors.As(wrapped, &fe) || fe.Op != "f1" {
		t.Fatal("FaultError does not survive wrapping")
	}
	if fe.Error() == "" {
		t.Fatal("empty error string")
	}
}
