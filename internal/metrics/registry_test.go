package metrics

import "testing"

func TestKnownFigureIDs(t *testing.T) {
	ids := KnownFigureIDs()
	if len(ids) == 0 {
		t.Fatal("empty registry")
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Errorf("duplicate figure ID %q", id)
		}
		seen[id] = true
		if !KnownFigureID(id) {
			t.Errorf("KnownFigureID(%q) = false for a registered ID", id)
		}
	}
	if KnownFigureID("fig-rogue") {
		t.Error("KnownFigureID accepted an unregistered name")
	}
}
