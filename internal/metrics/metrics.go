// Package metrics defines the result records PDSP-Bench collects and the
// figure/table rendering used to report them — the role of the paper's
// metric collection plus the textual half of its WUI visualisations.
// Every experiment produces a Figure whose series mirror the lines/bars
// of the corresponding paper figure.
package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Point is one x/y pair of a series; X is a category label (parallelism
// category, application code, …).
type Point struct {
	X string  `json:"x"`
	Y float64 `json:"y"`
}

// Series is one line/bar group of a figure.
type Series struct {
	Label  string  `json:"label"`
	Points []Point `json:"points"`
}

// Get returns the Y value at label x, and whether it exists.
func (s *Series) Get(x string) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// Figure is the data behind one paper figure.
type Figure struct {
	ID     string   `json:"id"` // e.g. "fig3-top"
	Title  string   `json:"title"`
	XLabel string   `json:"x_label"`
	YLabel string   `json:"y_label"`
	Series []Series `json:"series"`
}

// Series returns the series with the given label, or nil.
func (f *Figure) SeriesByLabel(label string) *Series {
	for i := range f.Series {
		if f.Series[i].Label == label {
			return &f.Series[i]
		}
	}
	return nil
}

// Render prints the figure as an aligned text table: rows are series,
// columns are the union of X labels in first-appearance order.
func (f *Figure) Render() string {
	var xs []string
	seen := map[string]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "%-22s", f.XLabel+`\`+f.YLabel)
	for _, x := range xs {
		fmt.Fprintf(&b, " %12s", x)
	}
	b.WriteByte('\n')
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%-22s", s.Label)
		for _, x := range xs {
			if y, ok := s.Get(x); ok {
				fmt.Fprintf(&b, " %12.2f", y)
			} else {
				fmt.Fprintf(&b, " %12s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RunRecord is one benchmarked query execution — the unit stored in the
// run database (the paper's MongoDB) and consumed as an ML training row.
type RunRecord struct {
	ID          string  `json:"id"`
	Backend     string  `json:"backend,omitempty"` // executing backend ("sim", "real")
	Workload    string  `json:"workload"`          // structure name or app code
	Cluster     string  `json:"cluster"`
	Category    string  `json:"category"` // parallelism category
	MaxDegree   int     `json:"max_degree"`
	EventRate   float64 `json:"event_rate"`
	LatencyP50  float64 `json:"latency_p50"`
	LatencyP95  float64 `json:"latency_p95"`
	LatencyP99  float64 `json:"latency_p99,omitempty"`
	LatencyMean float64 `json:"latency_mean"`
	Throughput  float64 `json:"throughput"`
	TuplesIn    uint64  `json:"tuples_in,omitempty"`
	TuplesOut   uint64  `json:"tuples_out,omitempty"`
	ElapsedSec  float64 `json:"elapsed_sec,omitempty"`
	Saturated   bool    `json:"saturated"`
	Runs        int     `json:"runs"`

	// LateDrops counts tuples that arrived at a time-policy window or
	// join beyond the allowed lateness and were dropped-and-counted by
	// the event-time plane (summed across the record's runs; zero for
	// in-order sources). The sim backend reports its analytic expected
	// count rounded to the nearest tuple.
	LateDrops uint64 `json:"late_drops,omitempty"`

	// Recovery accounting, populated when the run carried a fault plan
	// (see internal/chaos). FaultsInjected counts primitive fault
	// events applied across the record's runs; Restarts counts
	// instance revivals; DowntimeMS is the summed instance downtime;
	// RecoveredTuples counts work the fault machinery salvaged (tuples
	// processed by revived instances on the real engine, service
	// re-routed to surviving siblings on the simulator). FaultSchedule
	// is the chaos.Hash fingerprint of the expanded schedule, which
	// the parity harness compares across backends.
	FaultsInjected  uint64  `json:"faults_injected,omitempty"`
	Restarts        uint64  `json:"restarts,omitempty"`
	DowntimeMS      float64 `json:"downtime_ms,omitempty"`
	RecoveredTuples uint64  `json:"recovered_tuples,omitempty"`
	FaultSchedule   string  `json:"fault_schedule,omitempty"`
}

// Table renders records as an aligned table sorted by workload then
// category, the layout the CLI reports.
func Table(records []RunRecord) string {
	sorted := append([]RunRecord(nil), records...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Workload != sorted[j].Workload {
			return sorted[i].Workload < sorted[j].Workload
		}
		return sorted[i].MaxDegree < sorted[j].MaxDegree
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %-8s %-12s %-5s %10s %12s %12s %12s %5s\n",
		"workload", "backend", "cluster", "cat", "rate", "p50(ms)", "p95(ms)", "tput(ev/s)", "sat")
	for _, r := range sorted {
		sat := ""
		if r.Saturated {
			sat = "SAT"
		}
		backend := r.Backend
		if backend == "" {
			backend = "-"
		}
		fmt.Fprintf(&b, "%-20s %-8s %-12s %-5s %10.0f %12.2f %12.2f %12.0f %5s\n",
			r.Workload, backend, r.Cluster, r.Category, r.EventRate,
			r.LatencyP50*1000, r.LatencyP95*1000, r.Throughput, sat)
	}
	return b.String()
}
