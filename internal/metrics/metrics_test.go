package metrics

import (
	"strings"
	"testing"
)

func sampleFigure() *Figure {
	return &Figure{
		ID: "fig-test", Title: "test", XLabel: "structure", YLabel: "latency",
		Series: []Series{
			{Label: "XS", Points: []Point{{X: "linear", Y: 10}, {X: "join", Y: 20}}},
			{Label: "M", Points: []Point{{X: "linear", Y: 5}}},
		},
	}
}

func TestSeriesGet(t *testing.T) {
	f := sampleFigure()
	if y, ok := f.Series[0].Get("join"); !ok || y != 20 {
		t.Errorf("Get(join) = %v, %v", y, ok)
	}
	if _, ok := f.Series[0].Get("missing"); ok {
		t.Error("Get returned value for missing label")
	}
}

func TestSeriesByLabel(t *testing.T) {
	f := sampleFigure()
	if s := f.SeriesByLabel("M"); s == nil || len(s.Points) != 1 {
		t.Errorf("SeriesByLabel(M) = %v", s)
	}
	if f.SeriesByLabel("XXL") != nil {
		t.Error("SeriesByLabel returned non-existent series")
	}
}

func TestRenderAlignsColumnsAndMarksGaps(t *testing.T) {
	out := sampleFigure().Render()
	if !strings.Contains(out, "fig-test") {
		t.Error("render missing figure ID")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + 2 series rows + title line.
	if len(lines) != 4 {
		t.Fatalf("render has %d lines: %q", len(lines), out)
	}
	// The M series has no "join" point; its row must show a dash.
	if !strings.Contains(lines[3], "-") {
		t.Errorf("missing point not marked: %q", lines[3])
	}
	if !strings.Contains(lines[1], "linear") || !strings.Contains(lines[1], "join") {
		t.Errorf("header missing x labels: %q", lines[1])
	}
}

func TestTableSortsAndFormats(t *testing.T) {
	records := []RunRecord{
		{Workload: "b", Cluster: "m510", Category: "M", MaxDegree: 8, EventRate: 1000, LatencyP50: 0.5, Throughput: 100},
		{Workload: "a", Cluster: "m510", Category: "XS", MaxDegree: 1, EventRate: 1000, LatencyP50: 0.25, Throughput: 50, Saturated: true},
		{Workload: "a", Cluster: "m510", Category: "L", MaxDegree: 32, EventRate: 1000, LatencyP50: 0.1, Throughput: 200},
	}
	out := Table(records)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d", len(lines))
	}
	// Sorted by workload then degree: a/1, a/32, b/8.
	if !strings.Contains(lines[1], "XS") || !strings.Contains(lines[2], "L") || !strings.Contains(lines[3], "M") {
		t.Errorf("table order wrong:\n%s", out)
	}
	if !strings.Contains(lines[1], "SAT") {
		t.Error("saturated run not marked")
	}
	if strings.Contains(lines[2], "SAT") {
		t.Error("non-saturated run marked SAT")
	}
	// Latency is rendered in milliseconds.
	if !strings.Contains(lines[1], "250.00") {
		t.Errorf("p50 not converted to ms:\n%s", out)
	}
}
