package metrics

import "sort"

// Serving statistics: the front door's RunRecord-adjacent counters.
// Where a RunRecord describes one benchmark execution, a
// ServingSnapshot describes how the HTTP serving layer treated the
// *requests* for executions — admitted, rejected at the token bucket,
// shed from the fair-share queue — per tenant and in aggregate. The
// dispatcher serves it at GET /api/serving/stats and `pdspbench storm`
// folds it into its load report.

// TenantServing counts one tenant's requests by outcome.
type TenantServing struct {
	// Admitted counts requests that passed the token bucket and entered
	// the fair-share queue.
	Admitted uint64 `json:"admitted"`
	// Rejected counts 429s: the tenant (or global) token bucket was dry.
	Rejected uint64 `json:"rejected"`
	// Shed counts 503s: admitted but queued past the shed deadline, or
	// bounced off a full per-tenant queue.
	Shed uint64 `json:"shed"`
	// Completed / Failed count executions that finished under this
	// tenant's flag.
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
}

// ServingSnapshot is the aggregate view of the serving front door at a
// point in time.
type ServingSnapshot struct {
	Admitted    uint64 `json:"admitted"`
	Rejected429 uint64 `json:"rejected_429"`
	Shed        uint64 `json:"shed"`
	Completed   uint64 `json:"completed"`
	Failed      uint64 `json:"failed"`
	// ActiveRuns / QueuedRuns gauge the bounded worker pool: executing
	// now, and waiting in per-tenant fair-share queues.
	ActiveRuns int `json:"active_runs"`
	QueuedRuns int `json:"queued_runs"`
	// AdmissionP50MS / AdmissionP99MS are queue-wait quantiles over the
	// most recent admitted requests (time from admission to execution
	// slot), in milliseconds.
	AdmissionP50MS float64 `json:"admission_p50_ms"`
	AdmissionP99MS float64 `json:"admission_p99_ms"`
	// Tenants breaks the counters down by X-Tenant key.
	Tenants map[string]TenantServing `json:"tenants,omitempty"`
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by sorting a copy
// and indexing with the nearest-rank rule; 0 for an empty slice. Shared
// by the serving layer's admission-latency snapshot and the storm
// harness's client-side latency report.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(q * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
