package metrics

import "testing"

// Quantile backs both the serving snapshot's admission-wait figures and
// the storm report's client latencies; pin the nearest-rank behaviour.
func TestQuantile(t *testing.T) {
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(nil) = %v", got)
	}
	if got := Quantile([]float64{7}, 0.99); got != 7 {
		t.Errorf("single-element p99 = %v", got)
	}
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(100 - i) // reversed: Quantile must sort a copy
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("p0 = %v, want 1", got)
	}
	if got := Quantile(xs, 1); got != 100 {
		t.Errorf("p100 = %v, want 100", got)
	}
	if got := Quantile(xs, 0.5); got != 51 {
		t.Errorf("p50 = %v, want 51 (nearest rank)", got)
	}
	if got := Quantile(xs, 0.99); got != 100 {
		t.Errorf("p99 = %v, want 100", got)
	}
	// The input must not be mutated by the sort.
	if xs[0] != 100 {
		t.Error("Quantile sorted its input in place")
	}
}
