package metrics

// Figure-ID registry: the single closed namespace of result identifiers
// produced by the experiment pipelines. Every metrics.Figure must take
// its ID from here — the metric-label-consistency lint rule rejects
// literal IDs that are not declared below, so two experiments can never
// silently fork the result namespace with near-miss spellings.
const (
	// FigComplexitySynthetic and FigComplexityRealWorld are the paper's
	// Figure 3: end-to-end latency vs parallelism category, for synthetic
	// structures (top) and real-world applications (bottom) on the
	// homogeneous m510 cluster.
	FigComplexitySynthetic = "fig3-top"
	FigComplexityRealWorld = "fig3-bottom"

	// FigHardwareRealWorld and FigHardwareSynthetic are Figure 4:
	// homogeneous vs heterogeneous hardware, real-world applications
	// (top) and synthetic structures (bottom).
	FigHardwareRealWorld = "fig4-top"
	FigHardwareSynthetic = "fig4-bottom"

	// FigCostModels is Figure 5: learned cost-model q-error per
	// synthetic query structure.
	FigCostModels = "fig5"

	// FigEnumAccuracy and FigEnumTime are Figure 6: GNN accuracy (a) and
	// collection+training time (b) vs number of training queries, per
	// enumeration strategy.
	FigEnumAccuracy = "fig6a"
	FigEnumTime     = "fig6b"

	// FigThroughput is the sustainable-event-rate sweep per parallelism
	// category.
	FigThroughput = "throughput"

	// FigSUTComparison compares system-under-test profiles on identical
	// workloads.
	FigSUTComparison = "sut-comparison"

	// FigAblationPartitioning and FigAblationAutoscaler are the repo's
	// ablation studies: partitioning strategies under key skew, and
	// static rule-based vs reactive parallelism selection.
	FigAblationPartitioning = "ablation-partitioning"
	FigAblationAutoscaler   = "ablation-autoscaler"
)

// KnownFigureIDs lists every registered figure ID in declaration order.
func KnownFigureIDs() []string {
	return []string{
		FigComplexitySynthetic, FigComplexityRealWorld,
		FigHardwareRealWorld, FigHardwareSynthetic,
		FigCostModels, FigEnumAccuracy, FigEnumTime,
		FigThroughput, FigSUTComparison,
		FigAblationPartitioning, FigAblationAutoscaler,
	}
}

// KnownFigureID reports whether id is registered.
func KnownFigureID(id string) bool {
	for _, known := range KnownFigureIDs() {
		if known == id {
			return true
		}
	}
	return false
}
