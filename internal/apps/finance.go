package apps

import (
	"math"
	"math/rand"

	"pdspbench/internal/core"
	"pdspbench/internal/engine"
	"pdspbench/internal/tuple"
)

// --- FD: Fraud Detection ------------------------------------------------------

var fdSchema = tuple.NewSchema(
	tuple.Field{Name: "account", Type: tuple.TypeInt},
	tuple.Field{Name: "amount", Type: tuple.TypeDouble},
	tuple.Field{Name: "merchant", Type: tuple.TypeInt},
)

// FraudDetection [DSPBench] scores each card transaction with a
// per-account Markov transition model over merchant categories and flags
// improbable transitions.
var FraudDetection = &App{
	Code: "FD", Name: "Fraud Detection", Area: "Finance",
	Description: "Scores transactions with a per-account Markov model; flags improbable merchant transitions.",
	Build: func(rate float64) *core.PQP {
		p := core.NewPQP("FD", "fraud-detection")
		p.Add(&core.Operator{ID: "src", Kind: core.OpSource, Name: "transactions", Parallelism: 1,
			Source: &core.SourceSpec{Schema: fdSchema, EventRate: rate}, OutWidth: 3})
		p.Add(&core.Operator{ID: "score", Kind: core.OpUDO, Name: "markov-score", Parallelism: 1,
			Partition: core.PartitionHash,
			UDO:       &core.UDOSpec{Name: "fd/markov", CostFactor: 9, StateFactor: 0.3, Selectivity: 1},
			OutWidth:  3})
		p.Add(&core.Operator{ID: "flag", Kind: core.OpFilter, Name: "suspicious", Parallelism: 1,
			Partition: core.PartitionRebalance,
			Filter:    &core.FilterSpec{Field: 2, Fn: core.FilterLess, Literal: tuple.Double(0.05), Selectivity: 0.05},
			OutWidth:  3})
		p.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1, Partition: core.PartitionRebalance})
		p.Connect("src", "score")
		p.Connect("score", "flag")
		p.Connect("flag", "sink")
		return p
	},
	Sources: func(seed int64, max int) map[string]engine.SourceFactory {
		return map[string]engine.SourceFactory{
			"src": sourceFactory(seed, max, 1000, func(rng *rand.Rand, i int) []tuple.Value {
				acct := rng.Intn(150)
				// Accounts habitually shop in a home cluster of merchants;
				// rare out-of-pattern hops look fraudulent.
				merchant := (acct*3 + rng.Intn(4)) % 64
				if rng.Float64() < 0.04 {
					merchant = rng.Intn(64)
				}
				return []tuple.Value{
					tuple.Int(int64(acct)),
					tuple.Double(5 + 200*rng.ExpFloat64()),
					tuple.Int(int64(merchant)),
				}
			}),
		}
	},
	UDOs: func() map[string]engine.UDOFactory {
		return map[string]engine.UDOFactory{
			"fd/markov": func(int) engine.UDO {
				return &markovScorer{last: make(map[int64]int64), trans: make(map[int64]map[int64]int64)}
			},
		}
	},
}

// markovScorer learns per-account merchant transition counts online and
// replaces the merchant field with the transition probability.
type markovScorer struct {
	last  map[int64]int64
	trans map[int64]map[int64]int64
}

func (m *markovScorer) Process(t *tuple.Tuple, emit func(*tuple.Tuple)) {
	acct, merch := t.At(0).I, t.At(2).I
	prob := 0.5 // uninformed prior before history accumulates
	if prev, ok := m.last[acct]; ok {
		key := acct<<8 | prev
		row := m.trans[key]
		if row == nil {
			row = make(map[int64]int64)
			m.trans[key] = row
		}
		var total int64
		for _, c := range row {
			total += c
		}
		if total >= 3 {
			prob = float64(row[merch]) / float64(total)
		}
		row[merch]++
	}
	m.last[acct] = merch
	emit(&tuple.Tuple{
		Values:    []tuple.Value{t.At(0), t.At(1), tuple.Double(prob)},
		EventTime: t.EventTime, Ingest: t.Ingest,
	})
}

func (m *markovScorer) Flush(func(*tuple.Tuple)) {}

// --- BI: Bargain Index ----------------------------------------------------------

var biSchema = tuple.NewSchema(
	tuple.Field{Name: "symbol", Type: tuple.TypeInt},
	tuple.Field{Name: "price", Type: tuple.TypeDouble},
	tuple.Field{Name: "volume", Type: tuple.TypeDouble},
)

// BargainIndex [IBM InfoSphere Streams example] computes the VWAP per
// symbol and emits a bargain index whenever the ask price undercuts it.
var BargainIndex = &App{
	Code: "BI", Name: "Bargain Index", Area: "Finance",
	Description: "Computes per-symbol VWAP and flags quotes priced below it (bargains).",
	Build: func(rate float64) *core.PQP {
		p := core.NewPQP("BI", "bargain-index")
		p.Add(&core.Operator{ID: "src", Kind: core.OpSource, Name: "quotes", Parallelism: 1,
			Source: &core.SourceSpec{Schema: biSchema, EventRate: rate}, OutWidth: 3})
		p.Add(&core.Operator{ID: "vwap", Kind: core.OpUDO, Name: "vwap", Parallelism: 1,
			Partition: core.PartitionHash,
			UDO:       &core.UDOSpec{Name: "bi/vwap", CostFactor: 6, StateFactor: 0.2, Selectivity: 0.3},
			OutWidth:  3})
		p.Add(&core.Operator{ID: "top", Kind: core.OpAggregate, Name: "max-index", Parallelism: 1,
			Partition: core.PartitionHash,
			Agg: &core.AggregateSpec{
				Window: core.WindowSpec{Type: core.WindowTumbling, Policy: core.PolicyTime, LengthMs: 1000},
				Fn:     core.AggMax, Field: 1, KeyField: 0,
			}, OutWidth: 2})
		p.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1, Partition: core.PartitionRebalance})
		p.Connect("src", "vwap")
		p.Connect("vwap", "top")
		p.Connect("top", "sink")
		return p
	},
	Sources: func(seed int64, max int) map[string]engine.SourceFactory {
		return map[string]engine.SourceFactory{
			"src": sourceFactory(seed, max, 1000, func(rng *rand.Rand, i int) []tuple.Value {
				sym := rng.Intn(100)
				base := 50 + float64(sym)
				return []tuple.Value{
					tuple.Int(int64(sym)),
					tuple.Double(base * (1 + 0.02*rng.NormFloat64())),
					tuple.Double(100 + 900*rng.Float64()),
				}
			}),
		}
	},
	UDOs: func() map[string]engine.UDOFactory {
		return map[string]engine.UDOFactory{
			"bi/vwap": func(int) engine.UDO { return &vwapIndex{pv: make(map[int64]float64), vol: make(map[int64]float64)} },
		}
	},
}

// vwapIndex maintains per-symbol VWAP and emits (symbol, bargainIndex)
// when price < VWAP; index = (vwap − price)/vwap × volume.
type vwapIndex struct {
	pv  map[int64]float64
	vol map[int64]float64
}

func (b *vwapIndex) Process(t *tuple.Tuple, emit func(*tuple.Tuple)) {
	sym, price, vol := t.At(0).I, t.At(1).D, t.At(2).D
	b.pv[sym] += price * vol
	b.vol[sym] += vol
	vwap := b.pv[sym] / b.vol[sym]
	if price < vwap {
		index := (vwap - price) / vwap * vol
		emit(&tuple.Tuple{
			Values:    []tuple.Value{t.At(0), tuple.Double(index), tuple.Double(vwap)},
			EventTime: t.EventTime, Ingest: t.Ingest,
		})
	}
}

func (b *vwapIndex) Flush(func(*tuple.Tuple)) {}

// --- TPCH: streaming TPC-H ----------------------------------------------------

var tpchSchema = tuple.NewSchema(
	tuple.Field{Name: "orderkey", Type: tuple.TypeInt},
	tuple.Field{Name: "price", Type: tuple.TypeDouble},
	tuple.Field{Name: "discount", Type: tuple.TypeDouble},
	tuple.Field{Name: "quantity", Type: tuple.TypeInt},
	tuple.Field{Name: "shipmode", Type: tuple.TypeInt},
)

// TPCH streams lineitem-like rows through the revenue query shape of
// TPC-H Q6: filter on discount and quantity, then windowed revenue
// aggregation — all standard operators (the paper's TPCH row in Table 2).
var TPCH = &App{
	Code: "TPCH", Name: "TPC-H", Area: "E-commerce",
	Description: "Streaming TPC-H Q6: discount/quantity filters and windowed revenue sums per ship mode.",
	Build: func(rate float64) *core.PQP {
		p := core.NewPQP("TPCH", "tpch")
		p.Add(&core.Operator{ID: "src", Kind: core.OpSource, Name: "lineitems", Parallelism: 1,
			Source: &core.SourceSpec{Schema: tpchSchema, EventRate: rate}, OutWidth: 5})
		p.Add(&core.Operator{ID: "fdisc", Kind: core.OpFilter, Name: "discount-band", Parallelism: 1,
			Partition: core.PartitionRebalance,
			Filter:    &core.FilterSpec{Field: 2, Fn: core.FilterGreaterEq, Literal: tuple.Double(0.05), Selectivity: 0.5},
			OutWidth:  5})
		p.Add(&core.Operator{ID: "fqty", Kind: core.OpFilter, Name: "quantity", Parallelism: 1,
			Partition: core.PartitionRebalance,
			Filter:    &core.FilterSpec{Field: 3, Fn: core.FilterLess, Literal: tuple.Int(24), Selectivity: 0.48},
			OutWidth:  5})
		p.Add(&core.Operator{ID: "revenue", Kind: core.OpUDO, Name: "revenue", Parallelism: 1,
			Partition: core.PartitionRebalance,
			UDO:       &core.UDOSpec{Name: "tpch/revenue", CostFactor: 2, Selectivity: 1},
			OutWidth:  2})
		p.Add(&core.Operator{ID: "sum", Kind: core.OpAggregate, Name: "revenue-sum", Parallelism: 1,
			Partition: core.PartitionHash,
			Agg: &core.AggregateSpec{
				Window: core.WindowSpec{Type: core.WindowTumbling, Policy: core.PolicyTime, LengthMs: 1000},
				Fn:     core.AggSum, Field: 1, KeyField: 0,
			}, OutWidth: 2})
		p.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1, Partition: core.PartitionRebalance})
		p.Connect("src", "fdisc")
		p.Connect("fdisc", "fqty")
		p.Connect("fqty", "revenue")
		p.Connect("revenue", "sum")
		p.Connect("sum", "sink")
		return p
	},
	Sources: func(seed int64, max int) map[string]engine.SourceFactory {
		return map[string]engine.SourceFactory{
			"src": sourceFactory(seed, max, 1000, func(rng *rand.Rand, i int) []tuple.Value {
				return []tuple.Value{
					tuple.Int(int64(i)),
					tuple.Double(100 + 900*rng.Float64()),
					tuple.Double(math.Round(rng.Float64()*10) / 100), // 0.00 … 0.10
					tuple.Int(int64(1 + rng.Intn(50))),
					tuple.Int(int64(rng.Intn(7))),
				}
			}),
		}
	},
	UDOs: func() map[string]engine.UDOFactory {
		return map[string]engine.UDOFactory{
			"tpch/revenue": func(int) engine.UDO { return revenueMapper{} },
		}
	},
}

// revenueMapper projects (shipmode, price×discount) — Q6's revenue term.
type revenueMapper struct{}

func (revenueMapper) Process(t *tuple.Tuple, emit func(*tuple.Tuple)) {
	emit(&tuple.Tuple{
		Values:    []tuple.Value{t.At(4), tuple.Double(t.At(1).D * t.At(2).D)},
		EventTime: t.EventTime, Ingest: t.Ingest,
	})
}

func (revenueMapper) Flush(func(*tuple.Tuple)) {}
