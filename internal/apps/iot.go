package apps

import (
	"math"
	"math/rand"

	"pdspbench/internal/core"
	"pdspbench/internal/engine"
	"pdspbench/internal/tuple"
)

// --- MO: Machine Outlier ----------------------------------------------------

var moSchema = tuple.NewSchema(
	tuple.Field{Name: "machine", Type: tuple.TypeInt},
	tuple.Field{Name: "cpu", Type: tuple.TypeDouble},
	tuple.Field{Name: "mem", Type: tuple.TypeDouble},
)

// MachineOutlier [stream-outlier] flags machines whose CPU usage deviates
// from the fleet median — a median/MAD outlier UDO over a sliding sample.
var MachineOutlier = &App{
	Code: "MO", Name: "Machine Outlier", Area: "Data-center monitoring",
	Description: "Detects anomalous machines by median/MAD deviation of CPU usage.",
	Build: func(rate float64) *core.PQP {
		p := core.NewPQP("MO", "machine-outlier")
		p.Add(&core.Operator{ID: "src", Kind: core.OpSource, Name: "metrics", Parallelism: 1,
			Source: &core.SourceSpec{Schema: moSchema, EventRate: rate}, OutWidth: 3})
		p.Add(&core.Operator{ID: "detect", Kind: core.OpUDO, Name: "outlier", Parallelism: 1,
			Partition: core.PartitionHash,
			UDO:       &core.UDOSpec{Name: "mo/detect", CostFactor: 8, StateFactor: 0.3, Selectivity: 1},
			OutWidth:  3})
		p.Add(&core.Operator{ID: "alerts", Kind: core.OpFilter, Name: "alerts", Parallelism: 1,
			Partition: core.PartitionRebalance,
			Filter:    &core.FilterSpec{Field: 2, Fn: core.FilterGreater, Literal: tuple.Double(3), Selectivity: 0.05},
			OutWidth:  3})
		p.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1, Partition: core.PartitionRebalance})
		p.Connect("src", "detect")
		p.Connect("detect", "alerts")
		p.Connect("alerts", "sink")
		return p
	},
	Sources: func(seed int64, max int) map[string]engine.SourceFactory {
		return map[string]engine.SourceFactory{
			"src": sourceFactory(seed, max, 1000, func(rng *rand.Rand, i int) []tuple.Value {
				cpu := 0.4 + 0.1*rng.NormFloat64()
				if rng.Float64() < 0.02 { // rare genuine outliers
					cpu = 0.95 + 0.05*rng.Float64()
				}
				return []tuple.Value{
					tuple.Int(int64(rng.Intn(200))),
					tuple.Double(clamp01(cpu)),
					tuple.Double(clamp01(0.5 + 0.1*rng.NormFloat64())),
				}
			}),
		}
	},
	UDOs: func() map[string]engine.UDOFactory {
		return map[string]engine.UDOFactory{
			"mo/detect": func(int) engine.UDO { return &outlierDetector{med: newSlidingMedian(128)} },
		}
	},
}

// outlierDetector replaces (machine, cpu, mem) with (machine, cpu, score)
// where score is the MAD-normalized deviation from the sliding median.
type outlierDetector struct {
	med *slidingMedian
}

func (d *outlierDetector) Process(t *tuple.Tuple, emit func(*tuple.Tuple)) {
	v := t.At(1).D
	m := d.med.median()
	d.med.add(v)
	score := 0.0
	if len(d.med.vals) >= 8 {
		// MAD estimate from the same window.
		mad := 0.0
		for _, x := range d.med.vals {
			mad += math.Abs(x - m)
		}
		mad /= float64(len(d.med.vals))
		if mad > 1e-9 {
			score = math.Abs(v-m) / mad
		}
	}
	emit(&tuple.Tuple{
		Values:    []tuple.Value{t.At(0), tuple.Double(v), tuple.Double(score)},
		EventTime: t.EventTime, Ingest: t.Ingest,
	})
}

func (d *outlierDetector) Flush(func(*tuple.Tuple)) {}

// --- SG: Smart Grid ----------------------------------------------------------

var sgSchema = tuple.NewSchema(
	tuple.Field{Name: "house", Type: tuple.TypeInt},
	tuple.Field{Name: "plug", Type: tuple.TypeInt},
	tuple.Field{Name: "load", Type: tuple.TypeDouble},
)

// SmartGrid mirrors the DEBS 2014 Grand Challenge: per-house load
// aggregation over sliding windows followed by a global-median outlier
// UDO. Its windowed per-plug state makes it data-intensive — the paper's
// O1/O4 shows SG improving dramatically only at parallelism ≥ 64.
var SmartGrid = &App{
	Code: "SG", Name: "Smart Grid", Area: "Energy / IoT",
	Description:   "DEBS'14 smart-plug load monitoring: sliding per-house averages and global outlier houses.",
	DataIntensive: true,
	Build: func(rate float64) *core.PQP {
		p := core.NewPQP("SG", "smart-grid")
		p.Add(&core.Operator{ID: "src", Kind: core.OpSource, Name: "plugs", Parallelism: 1,
			Source: &core.SourceSpec{Schema: sgSchema, EventRate: rate}, OutWidth: 3})
		p.Add(&core.Operator{ID: "enrich", Kind: core.OpUDO, Name: "per-plug-stats", Parallelism: 1,
			Partition: core.PartitionHash,
			UDO:       &core.UDOSpec{Name: "sg/plugstats", CostFactor: 14, StateFactor: 0.2, Selectivity: 1},
			OutWidth:  3})
		p.Add(&core.Operator{ID: "houseavg", Kind: core.OpAggregate, Name: "house-average", Parallelism: 1,
			Partition: core.PartitionHash,
			Agg: &core.AggregateSpec{
				Window: core.WindowSpec{Type: core.WindowSliding, Policy: core.PolicyTime, LengthMs: 2000, SlideRatio: 0.5},
				Fn:     core.AggAvg, Field: 2, KeyField: 0,
			}, OutWidth: 2})
		p.Add(&core.Operator{ID: "outlier", Kind: core.OpUDO, Name: "median-outlier", Parallelism: 1,
			Partition: core.PartitionHash,
			UDO:       &core.UDOSpec{Name: "sg/outlier", CostFactor: 6, StateFactor: 0.3, Selectivity: 0.2},
			OutWidth:  2})
		p.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1, Partition: core.PartitionRebalance})
		p.Connect("src", "enrich")
		p.Connect("enrich", "houseavg")
		p.Connect("houseavg", "outlier")
		p.Connect("outlier", "sink")
		return p
	},
	Sources: func(seed int64, max int) map[string]engine.SourceFactory {
		return map[string]engine.SourceFactory{
			"src": sourceFactory(seed, max, 1000, func(rng *rand.Rand, i int) []tuple.Value {
				house := rng.Intn(40)
				base := 100 + 50*math.Sin(float64(i)/500) // diurnal-ish cycle
				load := base + 30*rng.Float64() + float64(house)
				if house%13 == 0 { // a few heavy-consumption households
					load *= 2.5
				}
				return []tuple.Value{
					tuple.Int(int64(house)),
					tuple.Int(int64(rng.Intn(8))),
					tuple.Double(load),
				}
			}),
		}
	},
	UDOs: func() map[string]engine.UDOFactory {
		return map[string]engine.UDOFactory{
			"sg/plugstats": func(int) engine.UDO { return &plugStats{ema: make(map[int64]float64)} },
			"sg/outlier":   func(int) engine.UDO { return &loadOutlier{med: newSlidingMedian(64)} },
		}
	},
}

// plugStats smooths each plug's load with an EMA, the DEBS'14 per-plug
// prediction step.
type plugStats struct {
	ema map[int64]float64
}

func (s *plugStats) Process(t *tuple.Tuple, emit func(*tuple.Tuple)) {
	key := t.At(0).I*16 + t.At(1).I
	load := t.At(2).D
	prev, ok := s.ema[key]
	if !ok {
		prev = load
	}
	sm := 0.8*prev + 0.2*load
	s.ema[key] = sm
	emit(&tuple.Tuple{
		Values:    []tuple.Value{t.At(0), t.At(1), tuple.Double(sm)},
		EventTime: t.EventTime, Ingest: t.Ingest,
	})
}

func (s *plugStats) Flush(func(*tuple.Tuple)) {}

// loadOutlier emits houses whose windowed average exceeds twice the
// global sliding median.
type loadOutlier struct {
	med *slidingMedian
}

func (o *loadOutlier) Process(t *tuple.Tuple, emit func(*tuple.Tuple)) {
	avg := t.At(1).D
	m := o.med.median()
	o.med.add(avg)
	if len(o.med.vals) >= 8 && avg > 1.2*m {
		emit(t)
	}
}

func (o *loadOutlier) Flush(func(*tuple.Tuple)) {}

// --- SD: Spike Detection -------------------------------------------------------

var sdSchema = tuple.NewSchema(
	tuple.Field{Name: "sensor", Type: tuple.TypeInt},
	tuple.Field{Name: "value", Type: tuple.TypeDouble},
)

// SpikeDetection [RIoTBench] flags sensor readings exceeding a moving
// average by a threshold. Per-sensor state over high-rate streams makes
// it data-intensive (paper: SD gains strongly from parallelism ≥ 64).
var SpikeDetection = &App{
	Code: "SD", Name: "Spike Detection", Area: "IoT sensing",
	Description:   "Flags sensor values above 1.03× their moving average.",
	DataIntensive: true,
	Build: func(rate float64) *core.PQP {
		p := core.NewPQP("SD", "spike-detection")
		p.Add(&core.Operator{ID: "src", Kind: core.OpSource, Name: "sensors", Parallelism: 1,
			Source: &core.SourceSpec{Schema: sdSchema, EventRate: rate}, OutWidth: 2})
		p.Add(&core.Operator{ID: "spike", Kind: core.OpUDO, Name: "moving-average", Parallelism: 1,
			Partition: core.PartitionHash,
			UDO:       &core.UDOSpec{Name: "sd/spike", CostFactor: 13, StateFactor: 0.1, Selectivity: 0.1},
			OutWidth:  3})
		p.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1, Partition: core.PartitionRebalance})
		p.Connect("src", "spike")
		p.Connect("spike", "sink")
		return p
	},
	Sources: func(seed int64, max int) map[string]engine.SourceFactory {
		return map[string]engine.SourceFactory{
			"src": sourceFactory(seed, max, 1000, func(rng *rand.Rand, i int) []tuple.Value {
				v := 20 + 2*rng.NormFloat64()
				if rng.Float64() < 0.03 {
					v *= 1.3 // genuine spike
				}
				return []tuple.Value{
					tuple.Int(int64(rng.Intn(500))),
					tuple.Double(v),
				}
			}),
		}
	},
	UDOs: func() map[string]engine.UDOFactory {
		return map[string]engine.UDOFactory{
			"sd/spike": func(int) engine.UDO {
				return &spikeDetector{avg: make(map[int64]*window16)}
			},
		}
	},
}

// window16 is a 16-slot moving average.
type window16 struct {
	vals [16]float64
	n    int
	next int
	sum  float64
}

func (w *window16) add(v float64) {
	if w.n < len(w.vals) {
		w.n++
	} else {
		w.sum -= w.vals[w.next]
	}
	w.vals[w.next] = v
	w.sum += v
	w.next = (w.next + 1) % len(w.vals)
}

func (w *window16) mean() float64 {
	if w.n == 0 {
		return 0
	}
	return w.sum / float64(w.n)
}

// spikeDetector emits (sensor, value, avg) when value > 1.03 × moving avg.
type spikeDetector struct {
	avg map[int64]*window16
}

func (d *spikeDetector) Process(t *tuple.Tuple, emit func(*tuple.Tuple)) {
	id := t.At(0).I
	v := t.At(1).D
	w, ok := d.avg[id]
	if !ok {
		w = &window16{}
		d.avg[id] = w
	}
	m := w.mean()
	w.add(v)
	if w.n >= 4 && v > 1.03*m {
		emit(&tuple.Tuple{
			Values:    []tuple.Value{t.At(0), tuple.Double(v), tuple.Double(m)},
			EventTime: t.EventTime, Ingest: t.Ingest,
		})
	}
}

func (d *spikeDetector) Flush(func(*tuple.Tuple)) {}

// --- TM: Traffic Monitoring -----------------------------------------------------

var tmSchema = tuple.NewSchema(
	tuple.Field{Name: "vehicle", Type: tuple.TypeInt},
	tuple.Field{Name: "lat", Type: tuple.TypeDouble},
	tuple.Field{Name: "lon", Type: tuple.TypeDouble},
	tuple.Field{Name: "speed", Type: tuple.TypeDouble},
)

// TrafficMonitoring [GeoTools-based in DSPBench] map-matches GPS fixes to
// a road grid and aggregates per-road average speeds. Map matching is
// the expensive step (geometric candidate search), so the UDO carries a
// high cost factor.
var TrafficMonitoring = &App{
	Code: "TM", Name: "Traffic Monitoring", Area: "Transportation",
	Description:   "Map-matches GPS fixes to roads and tracks per-road average speed.",
	DataIntensive: true,
	Build: func(rate float64) *core.PQP {
		p := core.NewPQP("TM", "traffic-monitoring")
		p.Add(&core.Operator{ID: "src", Kind: core.OpSource, Name: "gps", Parallelism: 1,
			Source: &core.SourceSpec{Schema: tmSchema, EventRate: rate}, OutWidth: 4})
		p.Add(&core.Operator{ID: "match", Kind: core.OpUDO, Name: "map-match", Parallelism: 1,
			Partition: core.PartitionRebalance,
			UDO:       &core.UDOSpec{Name: "tm/match", CostFactor: 20, Selectivity: 1},
			OutWidth:  2})
		p.Add(&core.Operator{ID: "speed", Kind: core.OpAggregate, Name: "road-speed", Parallelism: 1,
			Partition: core.PartitionHash,
			Agg: &core.AggregateSpec{
				Window: core.WindowSpec{Type: core.WindowSliding, Policy: core.PolicyTime, LengthMs: 3000, SlideRatio: 0.5},
				Fn:     core.AggAvg, Field: 1, KeyField: 0,
			}, OutWidth: 2})
		p.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1, Partition: core.PartitionRebalance})
		p.Connect("src", "match")
		p.Connect("match", "speed")
		p.Connect("speed", "sink")
		return p
	},
	Sources: func(seed int64, max int) map[string]engine.SourceFactory {
		return map[string]engine.SourceFactory{
			"src": sourceFactory(seed, max, 1000, func(rng *rand.Rand, i int) []tuple.Value {
				return []tuple.Value{
					tuple.Int(int64(rng.Intn(2000))),
					tuple.Double(48 + rng.Float64()), // ~1° city bounding box
					tuple.Double(8.5 + rng.Float64()),
					tuple.Double(20 + 60*rng.Float64()),
				}
			}),
		}
	},
	UDOs: func() map[string]engine.UDOFactory {
		return map[string]engine.UDOFactory{
			"tm/match": func(int) engine.UDO { return mapMatcher{} },
		}
	},
}

// mapMatcher snaps a GPS fix to the nearest cell of a synthetic road
// grid by scanning candidate cells — intentionally O(candidates) per
// tuple like real map matching against a road index.
type mapMatcher struct{}

func (mapMatcher) Process(t *tuple.Tuple, emit func(*tuple.Tuple)) {
	lat, lon := t.At(1).D, t.At(2).D
	// 3×3 candidate cells around the fix; pick the nearest cell centre.
	cellLat, cellLon := math.Floor(lat*100), math.Floor(lon*100)
	bestRoad, bestDist := int64(0), math.Inf(1)
	for dy := -1.0; dy <= 1; dy++ {
		for dx := -1.0; dx <= 1; dx++ {
			cy, cx := cellLat+dy, cellLon+dx
			centLat, centLon := (cy+0.5)/100, (cx+0.5)/100
			d := (lat-centLat)*(lat-centLat) + (lon-centLon)*(lon-centLon)
			if d < bestDist {
				bestDist = d
				bestRoad = int64(cy)*36000 + int64(cx)
			}
		}
	}
	emit(&tuple.Tuple{
		Values:    []tuple.Value{tuple.Int(bestRoad), t.At(3)},
		EventTime: t.EventTime, Ingest: t.Ingest,
	})
}

func (mapMatcher) Flush(func(*tuple.Tuple)) {}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
