package apps

import (
	"context"
	"strings"
	"sync"
	"testing"

	"pdspbench/internal/core"
	"pdspbench/internal/engine"
	"pdspbench/internal/tuple"
)

func TestRegistryHasAll14Applications(t *testing.T) {
	if len(Registry) != 14 {
		t.Fatalf("Registry has %d applications, Table 2 lists 14", len(Registry))
	}
	want := []string{"WC", "MO", "LR", "TT", "SA", "TPCH", "BI", "CA", "LP", "SG", "SD", "TM", "FD", "AD"}
	codes := Codes()
	seen := map[string]bool{}
	for _, c := range codes {
		seen[c] = true
	}
	for _, w := range want {
		if !seen[w] {
			t.Errorf("application %s missing from registry", w)
		}
	}
}

func TestByCode(t *testing.T) {
	a, err := ByCode("SG")
	if err != nil || a.Name != "Smart Grid" {
		t.Errorf("ByCode(SG) = %v, %v", a, err)
	}
	if _, err := ByCode("nope"); err == nil {
		t.Error("ByCode accepted unknown code")
	}
}

func TestEveryAppPlanValidates(t *testing.T) {
	for _, a := range Registry {
		plan := a.Build(100_000)
		if err := plan.Validate(); err != nil {
			t.Errorf("%s: plan invalid: %v", a.Code, err)
		}
		// Every UDO referenced in the plan must be implemented.
		udos := a.UDOs()
		for _, op := range plan.Operators {
			if op.UDO != nil {
				if _, ok := udos[op.UDO.Name]; !ok {
					t.Errorf("%s: operator %s references unimplemented UDO %q", a.Code, op.ID, op.UDO.Name)
				}
			}
		}
		// Every source must have a generator.
		srcs := a.Sources(1, 10)
		for _, s := range plan.Sources() {
			if _, ok := srcs[s.ID]; !ok {
				t.Errorf("%s: source %s has no generator", a.Code, s.ID)
			}
		}
	}
}

// runApp executes an application end to end on the real engine with
// bounded sources and returns the sink deliveries.
func runApp(t *testing.T, a *App, maxTuples int, parallelism int) []*tuple.Tuple {
	t.Helper()
	plan := a.Build(100_000)
	if parallelism > 1 {
		plan.SetUniformParallelism(parallelism)
	}
	var mu sync.Mutex
	var out []*tuple.Tuple
	rt, err := engine.New(plan, engine.Options{
		Sources: a.Sources(42, maxTuples),
		UDOs:    a.UDOs(),
		SinkTap: func(op string, tp *tuple.Tuple) {
			mu.Lock()
			out = append(out, tp.Clone())
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("%s: engine.New: %v", a.Code, err)
	}
	if _, err := rt.Run(context.Background()); err != nil {
		t.Fatalf("%s: Run: %v", a.Code, err)
	}
	mu.Lock()
	defer mu.Unlock()
	res := out
	out = nil
	return res
}

func TestEveryAppRunsEndToEnd(t *testing.T) {
	for _, a := range Registry {
		a := a
		t.Run(a.Code, func(t *testing.T) {
			t.Parallel()
			out := runApp(t, a, 3000, 1)
			if len(out) == 0 {
				t.Fatalf("%s produced no output over 3000 input tuples", a.Code)
			}
		})
	}
}

func TestEveryAppRunsWithParallelism(t *testing.T) {
	for _, a := range Registry {
		a := a
		t.Run(a.Code, func(t *testing.T) {
			t.Parallel()
			out := runApp(t, a, 2000, 4)
			if len(out) == 0 {
				t.Fatalf("%s with parallelism 4 produced no output", a.Code)
			}
		})
	}
}

func TestWordCountCountsWords(t *testing.T) {
	out := runApp(t, WordCount, 2000, 1)
	// Output tuples are (word, count); counts are per tumbling 100-tuple
	// count window (plus a flush remainder) and must be ≥ 1.
	var total float64
	for _, o := range out {
		if o.Width() != 2 {
			t.Fatalf("WC output width %d, want 2", o.Width())
		}
		c := o.At(1).D
		if c < 1 {
			t.Errorf("word %q count %v < 1", o.At(0).S, c)
		}
		total += c
	}
	// Total counted words must be near 2000 sentences × mean 7 words.
	if total < 6000 || total > 22000 {
		t.Errorf("total words counted = %v, expected roughly 2000×[3,10]", total)
	}
}

func TestSentimentScoresAreBounded(t *testing.T) {
	out := runApp(t, SentimentAnalysis, 2000, 1)
	for _, o := range out {
		score := o.At(1).D
		// Mean polarity per window: lexicon scores are within [-1, 0.5] per
		// word and tweets have ≤ 14 words, so window means stay inside.
		if score < -15 || score > 8 {
			t.Errorf("mean polarity %v outside plausible range", score)
		}
	}
}

func TestSpikeDetectionOnlyEmitsSpikes(t *testing.T) {
	out := runApp(t, SpikeDetection, 4000, 1)
	if len(out) == 0 {
		t.Fatal("no spikes detected over 4000 readings with 3% spike rate")
	}
	for _, o := range out {
		v, avg := o.At(1).D, o.At(2).D
		if v <= 1.03*avg {
			t.Errorf("non-spike emitted: value %v vs avg %v", v, avg)
		}
	}
	// The 3% spike injection bounds expected output loosely.
	if len(out) > 1200 {
		t.Errorf("detected %d spikes in 4000 readings; detector fires far too often", len(out))
	}
}

func TestTrendingTopicsEmitsHashtags(t *testing.T) {
	out := runApp(t, TrendingTopics, 3000, 1)
	if len(out) == 0 {
		t.Fatal("no trending topics emitted")
	}
	for _, o := range out {
		if !strings.HasPrefix(o.At(0).S, "#") {
			t.Errorf("ranked topic %q is not a hashtag", o.At(0).S)
		}
		rank := o.At(1).I
		if rank < 1 || rank > 10 {
			t.Errorf("rank %d outside top-10", rank)
		}
	}
}

func TestFraudDetectionFlagsMinority(t *testing.T) {
	out := runApp(t, FraudDetection, 5000, 1)
	// With a 4% out-of-pattern rate plus the cold-start prior, flags must
	// be a small minority of the stream, not the bulk of it.
	if len(out) == 0 {
		t.Fatal("fraud detection flagged nothing")
	}
	if len(out) > 1500 {
		t.Errorf("flagged %d of 5000 transactions; threshold far too loose", len(out))
	}
	for _, o := range out {
		if p := o.At(2).D; p >= 0.05 {
			t.Errorf("flagged transaction with probability %v ≥ 0.05", p)
		}
	}
}

func TestLinearRoadTollsOnlyCongestedSegments(t *testing.T) {
	out := runApp(t, LinearRoad, 4000, 1)
	if len(out) == 0 {
		t.Fatal("no tolls emitted despite congested segments in the trace")
	}
	for _, o := range out {
		if toll := o.At(1).D; toll <= 0 {
			t.Errorf("non-positive toll %v", toll)
		}
	}
}

func TestAdAnalyticsCTRWithinUnitRange(t *testing.T) {
	out := runApp(t, AdAnalytics, 2500, 1)
	if len(out) == 0 {
		t.Fatal("no CTR outputs")
	}
	for _, o := range out {
		ctr := o.At(1).D
		if ctr <= 0 || ctr > 1.0001 {
			t.Errorf("CTR %v outside (0, 1]", ctr)
		}
	}
}

func TestLogProcessingCountsOnlyErrors(t *testing.T) {
	out := runApp(t, LogProcessing, 4000, 1)
	if len(out) == 0 {
		t.Fatal("no status-count windows emitted")
	}
	for _, o := range out {
		status := o.At(0).I
		if status < 400 {
			t.Errorf("status %d passed the ≥400 error filter", status)
		}
	}
}

func TestBargainIndexOnlyBelowVWAP(t *testing.T) {
	out := runApp(t, BargainIndex, 3000, 1)
	if len(out) == 0 {
		t.Fatal("no bargain indices emitted")
	}
	for _, o := range out {
		if idx := o.At(1).D; idx <= 0 {
			t.Errorf("bargain index %v not positive", idx)
		}
	}
}

func TestMachineOutlierScores(t *testing.T) {
	out := runApp(t, MachineOutlier, 4000, 1)
	if len(out) == 0 {
		t.Fatal("no outlier alerts over 4000 metrics with 2% anomalies")
	}
	if len(out) > 2000 {
		t.Errorf("alerted on %d of 4000; detector fires on half the fleet", len(out))
	}
	for _, o := range out {
		if s := o.At(2).D; s <= 3 {
			t.Errorf("alert with score %v ≤ 3 passed the filter", s)
		}
	}
}

func TestDataIntensiveFlagsMatchPaper(t *testing.T) {
	// The paper's O1/O5 name SA, SG, SD (and CA, TM) as the data-intensive
	// winners from parallelism; WC, LR, TPCH, LP are standard-operator apps.
	intensive := map[string]bool{}
	for _, a := range Registry {
		intensive[a.Code] = a.DataIntensive
	}
	for _, code := range []string{"SA", "SG", "SD", "CA", "TM"} {
		if !intensive[code] {
			t.Errorf("%s should be marked data-intensive", code)
		}
	}
	for _, code := range []string{"WC", "LR", "TPCH", "LP"} {
		if intensive[code] {
			t.Errorf("%s should not be marked data-intensive", code)
		}
	}
}

func TestAppUDOCostFactorsExceedStandardOps(t *testing.T) {
	// Data-intensive apps must carry UDO cost factors above the join cost
	// (6), so the simulator reproduces their saturation at low parallelism.
	for _, a := range Registry {
		if !a.DataIntensive {
			continue
		}
		plan := a.Build(100_000)
		maxCost := 0.0
		for _, op := range plan.Operators {
			if op.UDO != nil && op.UDO.CostFactor > maxCost {
				maxCost = op.UDO.CostFactor
			}
		}
		if maxCost < 8 {
			t.Errorf("%s: max UDO cost factor %v too low for a data-intensive app", a.Code, maxCost)
		}
	}
}

func TestAdAnalyticsHasJoinAndHighStateFactor(t *testing.T) {
	plan := AdAnalytics.Build(100_000)
	if plan.CountKind(core.OpJoin) != 1 {
		t.Error("AD plan should contain the view-click join of Figure 2 (right)")
	}
	var sf float64
	for _, op := range plan.Operators {
		if op.UDO != nil && op.UDO.StateFactor > sf {
			sf = op.UDO.StateFactor
		}
	}
	if sf < 1 {
		t.Errorf("AD max StateFactor %v; must be the suite's heaviest to reproduce its O5 plateau", sf)
	}
}
