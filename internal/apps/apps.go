// Package apps ships the PDSP-Bench application suite: the 14 real-world
// streaming applications of the paper's Table 2, spanning text analytics,
// IoT sensing, finance, advertising, e-commerce and transportation. Each
// application bundles
//
//   - a parallel query plan (PQP) combining standard stream operators
//     with user-defined operators (UDOs),
//   - a trace-mimicking data generator standing in for the original
//     sources (DEBS grand-challenge datasets, ad click logs, stock
//     feeds, …) that are replayed through Kafka in the paper, and
//   - executable UDO logic for the real engine, with cost coefficients
//     calibrated for the cluster simulator.
package apps

import (
	"fmt"
	"math/rand"
	"sort"

	"pdspbench/internal/core"
	"pdspbench/internal/engine"
	"pdspbench/internal/stats"
	"pdspbench/internal/tuple"
)

// App is one benchmark application.
type App struct {
	Code        string // figure label, e.g. "WC"
	Name        string
	Area        string
	Description string
	// DataIntensive marks applications whose UDOs dominate CPU — the ones
	// the paper observes benefiting most from parallelism (SA, SG, SD…).
	DataIntensive bool

	// Build constructs the PQP at the given source event rate (events/s).
	Build func(eventRate float64) *core.PQP
	// Sources returns generator factories for every source operator,
	// emitting at most maxTuples per source instance (≤0 = unbounded).
	Sources func(seed int64, maxTuples int) map[string]engine.SourceFactory
	// UDOs returns the operator implementations the plan references.
	UDOs func() map[string]engine.UDOFactory
}

// Registry lists all applications in Table 2 order.
var Registry = []*App{
	WordCount, MachineOutlier, LinearRoad, TrendingTopics, SentimentAnalysis,
	TPCH, BargainIndex, ClickAnalytics, LogProcessing, SmartGrid,
	SpikeDetection, TrafficMonitoring, FraudDetection, AdAnalytics,
}

// ByCode resolves an application by its figure label ("SG"), falling
// back to the extension suite ("YSB", "NXQ11") so the CLI and server
// can run extensions without a separate lookup path.
func ByCode(code string) (*App, error) {
	for _, a := range Registry {
		if a.Code == code {
			return a, nil
		}
	}
	if a, ok := ExtensionByCode(code); ok {
		return a, nil
	}
	return nil, fmt.Errorf("apps: unknown application %q", code)
}

// Codes returns all application codes in registry order.
func Codes() []string {
	out := make([]string, len(Registry))
	for i, a := range Registry {
		out[i] = a.Code
	}
	return out
}

// --- generator plumbing -------------------------------------------------

// rowFunc produces the values of the i-th tuple of a source instance.
type rowFunc func(rng *rand.Rand, i int) []tuple.Value

// sourceFactory builds an engine.SourceFactory emitting Poisson-spaced
// logical event times at the given rate. Each instance derives its own
// seed so parallel sources do not duplicate data.
func sourceFactory(seed int64, maxTuples int, rate float64, row rowFunc) engine.SourceFactory {
	if rate <= 0 {
		rate = 1000
	}
	return func(idx int) engine.SourceGenerator {
		rng := rand.New(rand.NewSource(seed + int64(idx)*104729))
		var now float64 // ns of synthetic event time; zero is a real time now
		i := 0
		return genFunc(func() (*tuple.Tuple, bool) {
			if maxTuples > 0 && i >= maxTuples {
				return nil, false
			}
			now += stats.Exponential(rng, rate) * 1e9
			t := &tuple.Tuple{Values: row(rng, i), EventTime: int64(now)}
			i++
			return t, true
		})
	}
}

// genFunc adapts a closure to engine.SourceGenerator.
type genFunc func() (*tuple.Tuple, bool)

func (g genFunc) Next() (*tuple.Tuple, bool) { return g() }

// --- shared UDO helpers ---------------------------------------------------

// topK tracks counts and returns the k most frequent keys.
type topK struct {
	counts map[string]int64
	k      int
}

func newTopK(k int) *topK { return &topK{counts: make(map[string]int64), k: k} }

func (t *topK) add(key string) { t.counts[key]++ }

type rankedKey struct {
	Key   string
	Count int64
}

func (t *topK) ranking() []rankedKey {
	out := make([]rankedKey, 0, len(t.counts))
	for k, c := range t.counts {
		out = append(out, rankedKey{k, c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if len(out) > t.k {
		out = out[:t.k]
	}
	return out
}

// slidingMedian keeps the last n values and reports their median.
type slidingMedian struct {
	vals []float64
	cap  int
}

func newSlidingMedian(cap int) *slidingMedian { return &slidingMedian{cap: cap} }

func (m *slidingMedian) add(v float64) {
	m.vals = append(m.vals, v)
	if len(m.vals) > m.cap {
		m.vals = m.vals[1:]
	}
}

func (m *slidingMedian) median() float64 {
	if len(m.vals) == 0 {
		return 0
	}
	tmp := make([]float64, len(m.vals))
	copy(tmp, m.vals)
	sort.Float64s(tmp)
	n := len(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}
