package apps

import (
	"math/rand"
	"strings"

	"pdspbench/internal/core"
	"pdspbench/internal/engine"
	"pdspbench/internal/stream"
	"pdspbench/internal/tuple"
)

// --- WC: Word Count -------------------------------------------------------

var wcSchema = tuple.NewSchema(tuple.Field{Name: "sentence", Type: tuple.TypeString})

// WordCount is the canonical WC application [Twitter Heron]: sentences
// are split into words by a flatMap and counted per word over tumbling
// count windows. Its operators are standard and nearly stateless, which
// is why the paper sees it scale almost linearly (O3).
var WordCount = &App{
	Code: "WC", Name: "Word Count", Area: "Text processing",
	Description: "Counts word frequencies in a sentence stream (flatMap → keyed count window).",
	Build: func(rate float64) *core.PQP {
		p := core.NewPQP("WC", "word-count")
		p.Add(&core.Operator{ID: "src", Kind: core.OpSource, Name: "sentences", Parallelism: 1,
			Source: &core.SourceSpec{Schema: wcSchema, EventRate: rate}, OutWidth: 1})
		p.Add(&core.Operator{ID: "split", Kind: core.OpFlatMap, Name: "splitter", Parallelism: 1,
			Partition: core.PartitionRebalance,
			UDO:       &core.UDOSpec{Name: "wc/splitter", CostFactor: 2, Selectivity: 6},
			OutWidth:  2})
		p.Add(&core.Operator{ID: "count", Kind: core.OpAggregate, Name: "word-count", Parallelism: 1,
			Partition: core.PartitionHash,
			// Counting needs no per-tuple arithmetic; scale the generic
			// aggregate cost down so WC stays the light application the
			// paper groups with the consistently-performing ones.
			CostScale: 0.3,
			Agg: &core.AggregateSpec{
				Window: core.WindowSpec{Type: core.WindowTumbling, Policy: core.PolicyCount, LengthTups: 100},
				Fn:     core.AggCount, Field: 1, KeyField: 0,
			}, OutWidth: 2})
		p.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1, Partition: core.PartitionRebalance})
		p.Connect("src", "split")
		p.Connect("split", "count")
		p.Connect("count", "sink")
		return p
	},
	Sources: func(seed int64, max int) map[string]engine.SourceFactory {
		return map[string]engine.SourceFactory{
			"src": sourceFactory(seed, max, 1000, func(rng *rand.Rand, i int) []tuple.Value {
				n := 3 + rng.Intn(8)
				words := make([]string, n)
				for j := range words {
					words[j] = stream.Word(rng.Intn(stream.VocabularySize))
				}
				return []tuple.Value{tuple.String(strings.Join(words, " "))}
			}),
		}
	},
	UDOs: func() map[string]engine.UDOFactory {
		return map[string]engine.UDOFactory{
			"wc/splitter": func(int) engine.UDO { return splitter{} },
		}
	},
}

// splitter emits one (word, 1) tuple per word of the sentence field.
type splitter struct{}

func (splitter) Process(t *tuple.Tuple, emit func(*tuple.Tuple)) {
	for _, w := range strings.Fields(t.At(0).S) {
		emit(&tuple.Tuple{
			Values:    []tuple.Value{tuple.String(w), tuple.Int(1)},
			EventTime: t.EventTime, Ingest: t.Ingest,
		})
	}
}

func (splitter) Flush(func(*tuple.Tuple)) {}

// --- TT: Trending Topics ---------------------------------------------------

var ttSchema = tuple.NewSchema(tuple.Field{Name: "tweet", Type: tuple.TypeString})

// TrendingTopics [TwitterMonitor] extracts hashtags from a tweet stream
// and maintains the top-k trending set — a stateful ranking UDO after a
// keyed count window.
var TrendingTopics = &App{
	Code: "TT", Name: "Trending Topics", Area: "Social media",
	Description: "Extracts hashtags and ranks the top-k trending topics over count windows.",
	Build: func(rate float64) *core.PQP {
		p := core.NewPQP("TT", "trending-topics")
		p.Add(&core.Operator{ID: "src", Kind: core.OpSource, Name: "tweets", Parallelism: 1,
			Source: &core.SourceSpec{Schema: ttSchema, EventRate: rate}, OutWidth: 1})
		p.Add(&core.Operator{ID: "extract", Kind: core.OpFlatMap, Name: "hashtags", Parallelism: 1,
			Partition: core.PartitionRebalance,
			UDO:       &core.UDOSpec{Name: "tt/extract", CostFactor: 3, Selectivity: 1.5},
			OutWidth:  2})
		p.Add(&core.Operator{ID: "count", Kind: core.OpAggregate, Name: "topic-count", Parallelism: 1,
			Partition: core.PartitionHash,
			Agg: &core.AggregateSpec{
				Window: core.WindowSpec{Type: core.WindowSliding, Policy: core.PolicyCount, LengthTups: 250, SlideRatio: 0.4},
				Fn:     core.AggCount, Field: 1, KeyField: 0,
			}, OutWidth: 2})
		p.Add(&core.Operator{ID: "rank", Kind: core.OpUDO, Name: "ranker", Parallelism: 1,
			Partition: core.PartitionHash,
			UDO:       &core.UDOSpec{Name: "tt/rank", CostFactor: 5, StateFactor: 0.5, Selectivity: 0.1},
			OutWidth:  2})
		p.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1, Partition: core.PartitionRebalance})
		p.Connect("src", "extract")
		p.Connect("extract", "count")
		p.Connect("count", "rank")
		p.Connect("rank", "sink")
		return p
	},
	Sources: func(seed int64, max int) map[string]engine.SourceFactory {
		return map[string]engine.SourceFactory{
			"src": sourceFactory(seed, max, 1000, func(rng *rand.Rand, i int) []tuple.Value {
				var b strings.Builder
				n := 4 + rng.Intn(8)
				for j := 0; j < n; j++ {
					if j > 0 {
						b.WriteByte(' ')
					}
					// ~30% of words are hashtags with skewed popularity.
					if rng.Float64() < 0.3 {
						b.WriteByte('#')
						b.WriteString(stream.Word(int(rng.ExpFloat64() * 10)))
					} else {
						b.WriteString(stream.Word(rng.Intn(stream.VocabularySize)))
					}
				}
				return []tuple.Value{tuple.String(b.String())}
			}),
		}
	},
	UDOs: func() map[string]engine.UDOFactory {
		return map[string]engine.UDOFactory{
			"tt/extract": func(int) engine.UDO { return hashtagExtractor{} },
			"tt/rank":    func(int) engine.UDO { return &topicRanker{top: newTopK(10), every: 25} },
		}
	},
}

// hashtagExtractor emits (hashtag, 1) for every #word in the tweet.
type hashtagExtractor struct{}

func (hashtagExtractor) Process(t *tuple.Tuple, emit func(*tuple.Tuple)) {
	for _, w := range strings.Fields(t.At(0).S) {
		if strings.HasPrefix(w, "#") && len(w) > 1 {
			emit(&tuple.Tuple{
				Values:    []tuple.Value{tuple.String(w), tuple.Int(1)},
				EventTime: t.EventTime, Ingest: t.Ingest,
			})
		}
	}
}

func (hashtagExtractor) Flush(func(*tuple.Tuple)) {}

// topicRanker folds (topic, count) window results and periodically emits
// the current top-k as (topic, rank) tuples.
type topicRanker struct {
	top   *topK
	every int
	seen  int
	maxET int64
	maxIn int64
}

func (r *topicRanker) Process(t *tuple.Tuple, emit func(*tuple.Tuple)) {
	r.top.counts[t.At(0).S] += int64(t.At(1).D)
	if t.EventTime > r.maxET {
		r.maxET = t.EventTime
	}
	if t.Ingest > r.maxIn {
		r.maxIn = t.Ingest
	}
	r.seen++
	if r.seen%r.every == 0 {
		r.emitRanking(emit)
	}
}

func (r *topicRanker) emitRanking(emit func(*tuple.Tuple)) {
	for rank, e := range r.top.ranking() {
		emit(&tuple.Tuple{
			Values:    []tuple.Value{tuple.String(e.Key), tuple.Int(int64(rank + 1))},
			EventTime: r.maxET, Ingest: r.maxIn,
		})
	}
}

func (r *topicRanker) Flush(emit func(*tuple.Tuple)) {
	if r.seen > 0 && r.seen%r.every != 0 {
		r.emitRanking(emit)
	}
}

// --- SA: Sentiment Analysis ------------------------------------------------

var saSchema = tuple.NewSchema(
	tuple.Field{Name: "user", Type: tuple.TypeInt},
	tuple.Field{Name: "tweet", Type: tuple.TypeString},
)

// sentimentLexicon is a small embedded polarity lexicon over the
// synthetic vocabulary: even words lean positive, words divisible by 7
// strongly negative — enough structure for deterministic tests.
var sentimentLexicon = func() map[string]float64 {
	lex := make(map[string]float64, stream.VocabularySize)
	for i := 0; i < stream.VocabularySize; i++ {
		switch {
		case i%7 == 0:
			lex[stream.Word(i)] = -1
		case i%2 == 0:
			lex[stream.Word(i)] = 0.5
		default:
			lex[stream.Word(i)] = -0.25
		}
	}
	return lex
}()

// SentimentAnalysis [voltas/real-time-sentiment-analytic] scores tweets
// against a polarity lexicon — a data-intensive UDO (every word is
// looked up and scored), which is why the paper sees SA gain strongly
// from parallelism (O1) and heterogeneous hardware (O5).
var SentimentAnalysis = &App{
	Code: "SA", Name: "Sentiment Analysis", Area: "Social media",
	Description:   "Scores tweet sentiment with a lexicon UDO, aggregates mean polarity per user window.",
	DataIntensive: true,
	Build: func(rate float64) *core.PQP {
		p := core.NewPQP("SA", "sentiment-analysis")
		p.Add(&core.Operator{ID: "src", Kind: core.OpSource, Name: "tweets", Parallelism: 1,
			Source: &core.SourceSpec{Schema: saSchema, EventRate: rate}, OutWidth: 2})
		p.Add(&core.Operator{ID: "score", Kind: core.OpUDO, Name: "sentiment", Parallelism: 1,
			Partition: core.PartitionRebalance,
			UDO:       &core.UDOSpec{Name: "sa/score", CostFactor: 16, Selectivity: 1},
			OutWidth:  2})
		p.Add(&core.Operator{ID: "agg", Kind: core.OpAggregate, Name: "mean-polarity", Parallelism: 1,
			Partition: core.PartitionHash,
			Agg: &core.AggregateSpec{
				Window: core.WindowSpec{Type: core.WindowSliding, Policy: core.PolicyTime, LengthMs: 1000, SlideRatio: 0.5},
				Fn:     core.AggMean, Field: 1, KeyField: 0,
			}, OutWidth: 2})
		p.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1, Partition: core.PartitionRebalance})
		p.Connect("src", "score")
		p.Connect("score", "agg")
		p.Connect("agg", "sink")
		return p
	},
	Sources: func(seed int64, max int) map[string]engine.SourceFactory {
		return map[string]engine.SourceFactory{
			"src": sourceFactory(seed, max, 1000, func(rng *rand.Rand, i int) []tuple.Value {
				n := 5 + rng.Intn(10)
				words := make([]string, n)
				for j := range words {
					words[j] = stream.Word(rng.Intn(stream.VocabularySize))
				}
				return []tuple.Value{
					tuple.Int(int64(rng.Intn(500))),
					tuple.String(strings.Join(words, " ")),
				}
			}),
		}
	},
	UDOs: func() map[string]engine.UDOFactory {
		return map[string]engine.UDOFactory{
			"sa/score": func(int) engine.UDO { return sentimentScorer{} },
		}
	},
}

// sentimentScorer replaces the tweet text with its lexicon score.
type sentimentScorer struct{}

func (sentimentScorer) Process(t *tuple.Tuple, emit func(*tuple.Tuple)) {
	var score float64
	for _, w := range strings.Fields(t.At(1).S) {
		score += sentimentLexicon[w]
	}
	emit(&tuple.Tuple{
		Values:    []tuple.Value{t.At(0), tuple.Double(score)},
		EventTime: t.EventTime, Ingest: t.Ingest,
	})
}

func (sentimentScorer) Flush(func(*tuple.Tuple)) {}
