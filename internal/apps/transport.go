package apps

import (
	"math/rand"

	"pdspbench/internal/core"
	"pdspbench/internal/engine"
	"pdspbench/internal/tuple"
)

// --- LR: Linear Road -----------------------------------------------------------

var lrSchema = tuple.NewSchema(
	tuple.Field{Name: "vehicle", Type: tuple.TypeInt},
	tuple.Field{Name: "speed", Type: tuple.TypeDouble},
	tuple.Field{Name: "segment", Type: tuple.TypeInt},
	tuple.Field{Name: "lane", Type: tuple.TypeInt},
)

// LinearRoad [Arasu et al., VLDB'04] is the classic variable-tolling
// benchmark: per-segment average speeds over sliding windows drive toll
// notifications. Its operators are standard, which is why the paper
// groups LR with the consistently-performing applications (O1).
var LinearRoad = &App{
	Code: "LR", Name: "Linear Road", Area: "Transportation",
	Description: "Variable tolling: sliding per-segment speed averages drive toll notifications.",
	Build: func(rate float64) *core.PQP {
		p := core.NewPQP("LR", "linear-road")
		p.Add(&core.Operator{ID: "src", Kind: core.OpSource, Name: "positions", Parallelism: 1,
			Source: &core.SourceSpec{Schema: lrSchema, EventRate: rate}, OutWidth: 4})
		p.Add(&core.Operator{ID: "moving", Kind: core.OpFilter, Name: "moving-vehicles", Parallelism: 1,
			Partition: core.PartitionRebalance,
			Filter:    &core.FilterSpec{Field: 1, Fn: core.FilterGreater, Literal: tuple.Double(0), Selectivity: 0.95},
			OutWidth:  4})
		p.Add(&core.Operator{ID: "segspeed", Kind: core.OpAggregate, Name: "segment-speed", Parallelism: 1,
			Partition: core.PartitionHash,
			Agg: &core.AggregateSpec{
				Window: core.WindowSpec{Type: core.WindowSliding, Policy: core.PolicyTime, LengthMs: 3000, SlideRatio: 0.3},
				Fn:     core.AggAvg, Field: 1, KeyField: 2,
			}, OutWidth: 2})
		p.Add(&core.Operator{ID: "toll", Kind: core.OpUDO, Name: "toll", Parallelism: 1,
			Partition: core.PartitionRebalance,
			UDO:       &core.UDOSpec{Name: "lr/toll", CostFactor: 2, Selectivity: 0.6},
			OutWidth:  2})
		p.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1, Partition: core.PartitionRebalance})
		p.Connect("src", "moving")
		p.Connect("moving", "segspeed")
		p.Connect("segspeed", "toll")
		p.Connect("toll", "sink")
		return p
	},
	Sources: func(seed int64, max int) map[string]engine.SourceFactory {
		return map[string]engine.SourceFactory{
			"src": sourceFactory(seed, max, 1000, func(rng *rand.Rand, i int) []tuple.Value {
				seg := rng.Intn(100)
				speed := 55 + 25*rng.NormFloat64()
				if seg%17 == 0 { // congested segments
					speed = 15 + 10*rng.Float64()
				}
				if speed < 0 {
					speed = 0
				}
				return []tuple.Value{
					tuple.Int(int64(rng.Intn(5000))),
					tuple.Double(speed),
					tuple.Int(int64(seg)),
					tuple.Int(int64(rng.Intn(4))),
				}
			}),
		}
	},
	UDOs: func() map[string]engine.UDOFactory {
		return map[string]engine.UDOFactory{
			"lr/toll": func(int) engine.UDO { return tollCalculator{} },
		}
	},
}

// tollCalculator emits (segment, toll) for congested segments: LRB's
// toll formula charges quadratically below the 40 mph threshold.
type tollCalculator struct{}

func (tollCalculator) Process(t *tuple.Tuple, emit func(*tuple.Tuple)) {
	avgSpeed := t.At(1).D
	if avgSpeed >= 40 {
		return // free-flowing: no toll
	}
	deficit := 40 - avgSpeed
	emit(&tuple.Tuple{
		Values:    []tuple.Value{t.At(0), tuple.Double(2 * deficit * deficit / 100)},
		EventTime: t.EventTime, Ingest: t.Ingest,
	})
}

func (tollCalculator) Flush(func(*tuple.Tuple)) {}
