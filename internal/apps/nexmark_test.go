package apps

import (
	"testing"
)

func TestExtensionsRegistered(t *testing.T) {
	if len(Extensions) != 5 {
		t.Fatalf("Extensions = %d, want 5 (YSB + 4 Nexmark queries)", len(Extensions))
	}
	for _, code := range []string{"YSB", "NXQ1", "NXQ3", "NXQ5", "NXQ11"} {
		if _, ok := ExtensionByCode(code); !ok {
			t.Errorf("extension %s missing", code)
		}
	}
	if _, ok := ExtensionByCode("NXQ8"); ok {
		t.Error("unknown extension resolved")
	}
}

func TestExtensionPlansValidate(t *testing.T) {
	for _, a := range Extensions {
		plan := a.Build(100_000)
		if err := plan.Validate(); err != nil {
			t.Errorf("%s: %v", a.Code, err)
		}
		udos := a.UDOs()
		for _, op := range plan.Operators {
			if op.UDO != nil {
				if _, ok := udos[op.UDO.Name]; !ok {
					t.Errorf("%s: UDO %q unimplemented", a.Code, op.UDO.Name)
				}
			}
		}
	}
}

func TestExtensionsRunEndToEnd(t *testing.T) {
	for _, a := range Extensions {
		a := a
		t.Run(a.Code, func(t *testing.T) {
			t.Parallel()
			out := runApp(t, a, 4000, 1)
			if len(out) == 0 {
				t.Fatalf("%s produced no output", a.Code)
			}
		})
	}
}

func TestYSBCountsOnlyViews(t *testing.T) {
	// YSB filters to view events (~1/3 of the stream); windowed campaign
	// counts must total ≈ views, well below the full stream.
	out := runApp(t, YSB, 6000, 1)
	var total float64
	for _, o := range out {
		total += o.At(1).D
	}
	if total < 1000 || total > 3000 {
		t.Errorf("counted %v events from 6000 with a 1/3 view filter", total)
	}
}

func TestNexmarkQ1ConvertsCurrency(t *testing.T) {
	out := runApp(t, NexmarkQ1, 1000, 1)
	if len(out) != 1000 {
		t.Fatalf("Q1 is 1:1 but emitted %d of 1000", len(out))
	}
	for _, o := range out {
		if eur := o.At(2).D; eur <= 0 {
			t.Errorf("converted price %v", eur)
		}
	}
}

func TestNexmarkQ3JoinsMatchingAuctions(t *testing.T) {
	out := runApp(t, NexmarkQ3, 5000, 1)
	if len(out) == 0 {
		t.Fatal("Q3 join produced no matches")
	}
	for _, o := range out {
		if !o.At(0).Equal(o.At(3)) {
			t.Errorf("joined rows disagree on auction: %v vs %v", o.At(0), o.At(3))
		}
	}
}

func TestNexmarkQ5EmitsMonotoneLeaders(t *testing.T) {
	out := runApp(t, NexmarkQ5, 8000, 1)
	if len(out) == 0 {
		t.Fatal("Q5 emitted no hot items")
	}
	if len(out) > 200 {
		t.Errorf("Q5 emitted %d leaders; the tracker fires far too often", len(out))
	}
}

func TestNexmarkQ11CountsBidsPerSession(t *testing.T) {
	// Q11 counts bids per (bidder, session); session counts are positive
	// integers and must total exactly the input — sessions partition the
	// stream, and bounded disorder never drops a bid.
	out := runApp(t, NexmarkQ11, 5000, 1)
	if len(out) == 0 {
		t.Fatal("Q11 emitted no sessions")
	}
	var total float64
	for _, o := range out {
		n := o.At(1).D
		if n < 1 {
			t.Fatalf("session with count %v", n)
		}
		total += n
	}
	if total != 5000 {
		t.Errorf("session counts total %v, want 5000 (sessions partition the stream)", total)
	}
}

func TestExtensionsRunWithParallelism(t *testing.T) {
	for _, a := range Extensions {
		a := a
		t.Run(a.Code, func(t *testing.T) {
			t.Parallel()
			out := runApp(t, a, 3000, 4)
			if len(out) == 0 {
				t.Fatalf("%s with parallelism 4 produced no output", a.Code)
			}
		})
	}
}
