package apps

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"pdspbench/internal/core"
	"pdspbench/internal/engine"
	"pdspbench/internal/tuple"
)

// --- CA: Click Analytics -----------------------------------------------------

var caSchema = tuple.NewSchema(
	tuple.Field{Name: "user", Type: tuple.TypeInt},
	tuple.Field{Name: "url", Type: tuple.TypeString},
	tuple.Field{Name: "dwell_ms", Type: tuple.TypeInt},
)

// ClickAnalytics [click-topology] sessionizes click streams per user and
// counts page popularity over windows.
var ClickAnalytics = &App{
	Code: "CA", Name: "Click Analytics", Area: "Web analytics",
	Description:   "Sessionizes user clicks and counts per-page visits over sliding windows.",
	DataIntensive: true,
	Build: func(rate float64) *core.PQP {
		p := core.NewPQP("CA", "click-analytics")
		p.Add(&core.Operator{ID: "src", Kind: core.OpSource, Name: "clicks", Parallelism: 1,
			Source: &core.SourceSpec{Schema: caSchema, EventRate: rate}, OutWidth: 3})
		p.Add(&core.Operator{ID: "session", Kind: core.OpUDO, Name: "sessionizer", Parallelism: 1,
			Partition: core.PartitionHash,
			UDO:       &core.UDOSpec{Name: "ca/session", CostFactor: 10, StateFactor: 0.4, Selectivity: 1},
			OutWidth:  3})
		p.Add(&core.Operator{ID: "visits", Kind: core.OpAggregate, Name: "page-visits", Parallelism: 1,
			Partition: core.PartitionHash,
			Agg: &core.AggregateSpec{
				Window: core.WindowSpec{Type: core.WindowSliding, Policy: core.PolicyCount, LengthTups: 500, SlideRatio: 0.5},
				Fn:     core.AggCount, Field: 2, KeyField: 1,
			}, OutWidth: 2})
		p.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1, Partition: core.PartitionRebalance})
		p.Connect("src", "session")
		p.Connect("session", "visits")
		p.Connect("visits", "sink")
		return p
	},
	Sources: func(seed int64, max int) map[string]engine.SourceFactory {
		return map[string]engine.SourceFactory{
			"src": sourceFactory(seed, max, 1000, func(rng *rand.Rand, i int) []tuple.Value {
				return []tuple.Value{
					tuple.Int(int64(rng.Intn(1000))),
					tuple.String(fmt.Sprintf("/page/%d", int(rng.ExpFloat64()*8)%50)),
					tuple.Int(int64(100 + rng.Intn(30000))),
				}
			}),
		}
	},
	UDOs: func() map[string]engine.UDOFactory {
		return map[string]engine.UDOFactory{
			"ca/session": func(int) engine.UDO {
				return &sessionizer{last: make(map[int64]int64), id: make(map[int64]int64)}
			},
		}
	},
}

// sessionizer assigns a session ID per user: a gap over 30 minutes of
// event time opens a new session. Output: (session, url, dwell).
type sessionizer struct {
	last map[int64]int64 // user → last event time
	id   map[int64]int64 // user → session counter
}

const sessionGapNs = int64(30) * 60 * 1e9

func (s *sessionizer) Process(t *tuple.Tuple, emit func(*tuple.Tuple)) {
	user := t.At(0).I
	if last, ok := s.last[user]; !ok || t.EventTime-last > sessionGapNs {
		s.id[user]++
	}
	s.last[user] = t.EventTime
	session := user*1_000_000 + s.id[user]
	emit(&tuple.Tuple{
		Values:    []tuple.Value{tuple.Int(session), t.At(1), t.At(2)},
		EventTime: t.EventTime, Ingest: t.Ingest,
	})
}

func (s *sessionizer) Flush(func(*tuple.Tuple)) {}

// --- LP: Log Processing --------------------------------------------------------

var lpSchema = tuple.NewSchema(tuple.Field{Name: "line", Type: tuple.TypeString})

// LogProcessing [DSPBench] parses web-server log lines and counts status
// codes over tumbling windows, alerting on error bursts.
var LogProcessing = &App{
	Code: "LP", Name: "Log Processing", Area: "Operations",
	Description: "Parses access-log lines, counts status codes per window, filters error bursts.",
	Build: func(rate float64) *core.PQP {
		p := core.NewPQP("LP", "log-processing")
		p.Add(&core.Operator{ID: "src", Kind: core.OpSource, Name: "logs", Parallelism: 1,
			Source: &core.SourceSpec{Schema: lpSchema, EventRate: rate}, OutWidth: 1})
		p.Add(&core.Operator{ID: "parse", Kind: core.OpMap, Name: "parser", Parallelism: 1,
			Partition: core.PartitionRebalance,
			UDO:       &core.UDOSpec{Name: "lp/parse", CostFactor: 3, Selectivity: 1},
			OutWidth:  3})
		p.Add(&core.Operator{ID: "errors", Kind: core.OpFilter, Name: "errors", Parallelism: 1,
			Partition: core.PartitionRebalance,
			Filter:    &core.FilterSpec{Field: 1, Fn: core.FilterGreaterEq, Literal: tuple.Int(400), Selectivity: 0.12},
			OutWidth:  3})
		p.Add(&core.Operator{ID: "counts", Kind: core.OpAggregate, Name: "status-count", Parallelism: 1,
			Partition: core.PartitionHash,
			Agg: &core.AggregateSpec{
				Window: core.WindowSpec{Type: core.WindowTumbling, Policy: core.PolicyCount, LengthTups: 100},
				Fn:     core.AggCount, Field: 2, KeyField: 1,
			}, OutWidth: 2})
		p.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1, Partition: core.PartitionRebalance})
		p.Connect("src", "parse")
		p.Connect("parse", "errors")
		p.Connect("errors", "counts")
		p.Connect("counts", "sink")
		return p
	},
	Sources: func(seed int64, max int) map[string]engine.SourceFactory {
		statuses := []int{200, 200, 200, 200, 200, 301, 304, 404, 500, 503}
		return map[string]engine.SourceFactory{
			"src": sourceFactory(seed, max, 1000, func(rng *rand.Rand, i int) []tuple.Value {
				return []tuple.Value{tuple.String(fmt.Sprintf(
					"host%03d %d %d /res/%d",
					rng.Intn(100), statuses[rng.Intn(len(statuses))], 200+rng.Intn(40000), rng.Intn(300),
				))}
			}),
		}
	},
	UDOs: func() map[string]engine.UDOFactory {
		return map[string]engine.UDOFactory{
			"lp/parse": func(int) engine.UDO { return logParser{} },
		}
	},
}

// logParser extracts (host, status, bytes) from "host status bytes url".
type logParser struct{}

func (logParser) Process(t *tuple.Tuple, emit func(*tuple.Tuple)) {
	parts := strings.Fields(t.At(0).S)
	if len(parts) < 3 {
		return // malformed line: drop, as real log pipelines do
	}
	// Malformed numeric fields parse as 0, as real log pipelines tolerate.
	status, _ := strconv.ParseInt(parts[1], 10, 64)
	bytes, _ := strconv.ParseInt(parts[2], 10, 64)
	emit(&tuple.Tuple{
		Values:    []tuple.Value{tuple.String(parts[0]), tuple.Int(status), tuple.Int(bytes)},
		EventTime: t.EventTime, Ingest: t.Ingest,
	})
}

func (logParser) Flush(func(*tuple.Tuple)) {}

// --- AD: Ad Analytics ------------------------------------------------------------

var adSchema = tuple.NewSchema(
	tuple.Field{Name: "campaign", Type: tuple.TypeInt},
	tuple.Field{Name: "ad", Type: tuple.TypeInt},
	tuple.Field{Name: "cost", Type: tuple.TypeDouble},
)

// AdAnalytics follows the paper's Figure 2 (right): impression and click
// streams are filtered, joined on the ad within a sliding window, then a
// custom CTR aggregation runs per campaign. Its "custom aggregation and
// joining logic on a sliding window" is exactly the UDO the paper blames
// for AD's non-linear scaling and its plateau beyond parallelism 128
// (O3, O5): the CTR state must be coordinated across every instance,
// so its StateFactor is the highest in the suite.
var AdAnalytics = &App{
	Code: "AD", Name: "Ad Analytics", Area: "Advertising",
	Description: "Joins impressions with clicks per ad over sliding windows and computes campaign CTR.",
	Build: func(rate float64) *core.PQP {
		p := core.NewPQP("AD", "ad-analytics")
		for _, id := range []string{"views", "clicks"} {
			p.Add(&core.Operator{ID: id, Kind: core.OpSource, Name: id, Parallelism: 1,
				Source: &core.SourceSpec{Schema: adSchema, EventRate: rate}, OutWidth: 3})
		}
		p.Add(&core.Operator{ID: "fviews", Kind: core.OpFilter, Name: "valid-views", Parallelism: 1,
			Partition: core.PartitionRebalance,
			Filter:    &core.FilterSpec{Field: 2, Fn: core.FilterGreater, Literal: tuple.Double(0.01), Selectivity: 0.9},
			OutWidth:  3})
		p.Add(&core.Operator{ID: "fclicks", Kind: core.OpFilter, Name: "valid-clicks", Parallelism: 1,
			Partition: core.PartitionRebalance,
			Filter:    &core.FilterSpec{Field: 2, Fn: core.FilterGreater, Literal: tuple.Double(0.01), Selectivity: 0.9},
			OutWidth:  3})
		p.Add(&core.Operator{ID: "join", Kind: core.OpJoin, Name: "view-click-join", Parallelism: 1,
			Partition: core.PartitionHash,
			Join: &core.JoinSpec{
				Window:    core.WindowSpec{Type: core.WindowSliding, Policy: core.PolicyTime, LengthMs: 2000, SlideRatio: 0.5},
				LeftField: 1, RightField: 1,
			}, OutWidth: 6})
		p.Add(&core.Operator{ID: "ctr", Kind: core.OpUDO, Name: "campaign-ctr", Parallelism: 1,
			Partition: core.PartitionHash,
			UDO:       &core.UDOSpec{Name: "ad/ctr", CostFactor: 8, StateFactor: 2.0, Selectivity: 0.05},
			OutWidth:  2})
		p.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1, Partition: core.PartitionRebalance})
		p.Connect("views", "fviews")
		p.Connect("clicks", "fclicks")
		p.Connect("fviews", "join")
		p.Connect("fclicks", "join")
		p.Connect("join", "ctr")
		p.Connect("ctr", "sink")
		return p
	},
	Sources: func(seed int64, max int) map[string]engine.SourceFactory {
		row := func(rng *rand.Rand, i int) []tuple.Value {
			campaign := int64(rng.Intn(20))
			return []tuple.Value{
				tuple.Int(campaign),
				tuple.Int(campaign*100 + int64(rng.Intn(10))),
				tuple.Double(0.02 + rng.Float64()),
			}
		}
		return map[string]engine.SourceFactory{
			"views":  sourceFactory(seed, max, 1000, row),
			"clicks": sourceFactory(seed+1, max, 1000, row),
		}
	},
	UDOs: func() map[string]engine.UDOFactory {
		return map[string]engine.UDOFactory{
			"ad/ctr": func(int) engine.UDO {
				return &ctrAggregator{views: make(map[int64]int64), clicks: make(map[int64]int64), every: 64}
			},
		}
	},
}

// ctrAggregator consumes joined (view, click) pairs and periodically
// emits per-campaign click-through rates.
type ctrAggregator struct {
	views  map[int64]int64
	clicks map[int64]int64
	seen   int
	every  int
	maxET  int64
	maxIn  int64
}

func (c *ctrAggregator) Process(t *tuple.Tuple, emit func(*tuple.Tuple)) {
	campaign := t.At(0).I
	c.views[campaign]++
	c.clicks[campaign]++ // joined tuples carry one view and one click
	if t.EventTime > c.maxET {
		c.maxET = t.EventTime
	}
	if t.Ingest > c.maxIn {
		c.maxIn = t.Ingest
	}
	c.seen++
	if c.seen%c.every == 0 {
		c.emitCTR(emit)
	}
}

func (c *ctrAggregator) emitCTR(emit func(*tuple.Tuple)) {
	for campaign, v := range c.views {
		if v == 0 {
			continue
		}
		ctr := float64(c.clicks[campaign]) / float64(v)
		emit(&tuple.Tuple{
			Values:    []tuple.Value{tuple.Int(campaign), tuple.Double(ctr)},
			EventTime: c.maxET, Ingest: c.maxIn,
		})
	}
}

func (c *ctrAggregator) Flush(emit func(*tuple.Tuple)) {
	if c.seen%c.every != 0 {
		c.emitCTR(emit)
	}
}
