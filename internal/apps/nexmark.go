package apps

// Extension applications: the paper notes PDSP-Bench "can be easily
// extended by integrating new jobs from other benchmarks like YSB [18]
// and Nexmark [57]". This file integrates both: the Yahoo Streaming
// Benchmark ad-event pipeline and four representative Nexmark auction
// queries (Q1 currency conversion, Q3 seller join, Q5 hot items, Q11
// bid sessions). They are registered separately from the core Table 2
// suite via Extensions.

import (
	"math/rand"

	"pdspbench/internal/core"
	"pdspbench/internal/engine"
	"pdspbench/internal/tuple"
)

// Extensions lists the add-on applications from other benchmark suites.
var Extensions = []*App{YSB, NexmarkQ1, NexmarkQ3, NexmarkQ5, NexmarkQ11}

// ExtensionByCode resolves an extension application.
func ExtensionByCode(code string) (*App, bool) {
	for _, a := range Extensions {
		if a.Code == code {
			return a, true
		}
	}
	return nil, false
}

// --- YSB: Yahoo Streaming Benchmark ------------------------------------------

var ysbSchema = tuple.NewSchema(
	tuple.Field{Name: "ad", Type: tuple.TypeInt},
	tuple.Field{Name: "campaign", Type: tuple.TypeInt},
	tuple.Field{Name: "event_type", Type: tuple.TypeInt}, // 0=view 1=click 2=purchase
)

// YSB reproduces the Yahoo Streaming Benchmark pipeline: filter to view
// events, project to (campaign), and count per campaign over 10-second
// tumbling event-time windows.
var YSB = &App{
	Code: "YSB", Name: "Yahoo Streaming Benchmark", Area: "Advertising",
	Description: "YSB pipeline: filter views, project to campaign, windowed campaign counts.",
	Build: func(rate float64) *core.PQP {
		p := core.NewPQP("YSB", "ysb")
		p.Add(&core.Operator{ID: "src", Kind: core.OpSource, Name: "ad-events", Parallelism: 1,
			Source: &core.SourceSpec{Schema: ysbSchema, EventRate: rate}, OutWidth: 3})
		p.Add(&core.Operator{ID: "views", Kind: core.OpFilter, Name: "views-only", Parallelism: 1,
			Partition: core.PartitionRebalance,
			Filter:    &core.FilterSpec{Field: 2, Fn: core.FilterEq, Literal: tuple.Int(0), Selectivity: 0.33},
			OutWidth:  3})
		p.Add(&core.Operator{ID: "project", Kind: core.OpMap, Name: "project", Parallelism: 1,
			Partition: core.PartitionRebalance,
			UDO:       &core.UDOSpec{Name: "ysb/project", CostFactor: 1, Selectivity: 1},
			OutWidth:  2})
		p.Add(&core.Operator{ID: "count", Kind: core.OpAggregate, Name: "campaign-count", Parallelism: 1,
			Partition: core.PartitionHash, CostScale: 0.3,
			Agg: &core.AggregateSpec{
				Window: core.WindowSpec{Type: core.WindowTumbling, Policy: core.PolicyTime, LengthMs: 10_000},
				Fn:     core.AggCount, Field: 1, KeyField: 0,
			}, OutWidth: 2})
		p.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1, Partition: core.PartitionRebalance})
		p.Connect("src", "views")
		p.Connect("views", "project")
		p.Connect("project", "count")
		p.Connect("count", "sink")
		return p
	},
	Sources: func(seed int64, max int) map[string]engine.SourceFactory {
		return map[string]engine.SourceFactory{
			"src": sourceFactory(seed, max, 1000, func(rng *rand.Rand, i int) []tuple.Value {
				campaign := int64(rng.Intn(100))
				return []tuple.Value{
					tuple.Int(campaign*10 + int64(rng.Intn(10))),
					tuple.Int(campaign),
					tuple.Int(int64(rng.Intn(3))),
				}
			}),
		}
	},
	UDOs: func() map[string]engine.UDOFactory {
		return map[string]engine.UDOFactory{
			"ysb/project": func(int) engine.UDO { return ysbProjector{} },
		}
	},
}

// ysbProjector keeps (campaign, 1) as YSB's projection step.
type ysbProjector struct{}

func (ysbProjector) Process(t *tuple.Tuple, emit func(*tuple.Tuple)) {
	emit(&tuple.Tuple{
		Values:    []tuple.Value{t.At(1), tuple.Int(1)},
		EventTime: t.EventTime, Ingest: t.Ingest,
	})
}

func (ysbProjector) Flush(func(*tuple.Tuple)) {}

// --- Nexmark -------------------------------------------------------------------

var nexmarkBidSchema = tuple.NewSchema(
	tuple.Field{Name: "auction", Type: tuple.TypeInt},
	tuple.Field{Name: "bidder", Type: tuple.TypeInt},
	tuple.Field{Name: "price_usd", Type: tuple.TypeDouble},
)

var nexmarkAuctionSchema = tuple.NewSchema(
	tuple.Field{Name: "auction", Type: tuple.TypeInt},
	tuple.Field{Name: "seller", Type: tuple.TypeInt},
	tuple.Field{Name: "category", Type: tuple.TypeInt},
)

func nexmarkBidRow(rng *rand.Rand, i int) []tuple.Value {
	return []tuple.Value{
		tuple.Int(int64(rng.Intn(500))),
		tuple.Int(int64(rng.Intn(2000))),
		tuple.Double(1 + 100*rng.ExpFloat64()),
	}
}

// NexmarkQ1 is the currency-conversion query: every bid price converted
// from USD to EUR by a stateless map.
var NexmarkQ1 = &App{
	Code: "NXQ1", Name: "Nexmark Q1 (currency)", Area: "Auctions",
	Description: "Converts every bid price from USD to EUR (stateless map).",
	Build: func(rate float64) *core.PQP {
		p := core.NewPQP("NXQ1", "nexmark-q1")
		p.Add(&core.Operator{ID: "bids", Kind: core.OpSource, Name: "bids", Parallelism: 1,
			Source: &core.SourceSpec{Schema: nexmarkBidSchema, EventRate: rate}, OutWidth: 3})
		p.Add(&core.Operator{ID: "convert", Kind: core.OpMap, Name: "usd-to-eur", Parallelism: 1,
			Partition: core.PartitionRebalance,
			UDO:       &core.UDOSpec{Name: "nexmark/convert", CostFactor: 1, Selectivity: 1},
			OutWidth:  3})
		p.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1, Partition: core.PartitionRebalance})
		p.Connect("bids", "convert")
		p.Connect("convert", "sink")
		return p
	},
	Sources: func(seed int64, max int) map[string]engine.SourceFactory {
		return map[string]engine.SourceFactory{
			"bids": sourceFactory(seed, max, 1000, nexmarkBidRow),
		}
	},
	UDOs: func() map[string]engine.UDOFactory {
		return map[string]engine.UDOFactory{
			"nexmark/convert": func(int) engine.UDO { return currencyConverter{} },
		}
	},
}

// currencyConverter applies Nexmark's fixed USD→EUR rate of 0.908.
type currencyConverter struct{}

func (currencyConverter) Process(t *tuple.Tuple, emit func(*tuple.Tuple)) {
	emit(&tuple.Tuple{
		Values:    []tuple.Value{t.At(0), t.At(1), tuple.Double(t.At(2).D * 0.908)},
		EventTime: t.EventTime, Ingest: t.Ingest,
	})
}

func (currencyConverter) Flush(func(*tuple.Tuple)) {}

// NexmarkQ3 joins new auctions with bids per auction over a sliding
// window (the local-item-suggestion query reduced to its join shape).
var NexmarkQ3 = &App{
	Code: "NXQ3", Name: "Nexmark Q3 (auction join)", Area: "Auctions",
	Description: "Joins the auction stream with the bid stream per auction over a sliding window.",
	Build: func(rate float64) *core.PQP {
		p := core.NewPQP("NXQ3", "nexmark-q3")
		p.Add(&core.Operator{ID: "auctions", Kind: core.OpSource, Name: "auctions", Parallelism: 1,
			Source: &core.SourceSpec{Schema: nexmarkAuctionSchema, EventRate: rate / 10}, OutWidth: 3})
		p.Add(&core.Operator{ID: "bids", Kind: core.OpSource, Name: "bids", Parallelism: 1,
			Source: &core.SourceSpec{Schema: nexmarkBidSchema, EventRate: rate}, OutWidth: 3})
		p.Add(&core.Operator{ID: "cat", Kind: core.OpFilter, Name: "category-10", Parallelism: 1,
			Partition: core.PartitionRebalance,
			Filter:    &core.FilterSpec{Field: 2, Fn: core.FilterLess, Literal: tuple.Int(10), Selectivity: 0.5},
			OutWidth:  3})
		p.Add(&core.Operator{ID: "join", Kind: core.OpJoin, Name: "auction-bid-join", Parallelism: 1,
			Partition: core.PartitionHash,
			Join: &core.JoinSpec{
				Window:    core.WindowSpec{Type: core.WindowSliding, Policy: core.PolicyTime, LengthMs: 2000, SlideRatio: 0.5},
				LeftField: 0, RightField: 0,
			}, OutWidth: 6})
		p.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1, Partition: core.PartitionRebalance})
		p.Connect("auctions", "cat")
		p.Connect("cat", "join")
		p.Connect("bids", "join")
		p.Connect("join", "sink")
		return p
	},
	Sources: func(seed int64, max int) map[string]engine.SourceFactory {
		return map[string]engine.SourceFactory{
			"auctions": sourceFactory(seed, max/10+1, 100, func(rng *rand.Rand, i int) []tuple.Value {
				return []tuple.Value{
					tuple.Int(int64(rng.Intn(500))),
					tuple.Int(int64(rng.Intn(300))),
					tuple.Int(int64(rng.Intn(20))),
				}
			}),
			"bids": sourceFactory(seed+1, max, 1000, nexmarkBidRow),
		}
	},
	UDOs: func() map[string]engine.UDOFactory {
		return map[string]engine.UDOFactory{}
	},
}

// NexmarkQ5 finds hot items: the auction with the most bids in a sliding
// window (count per auction, then a running-max UDO).
var NexmarkQ5 = &App{
	Code: "NXQ5", Name: "Nexmark Q5 (hot items)", Area: "Auctions",
	Description: "Counts bids per auction over sliding windows and reports the hottest auction.",
	Build: func(rate float64) *core.PQP {
		p := core.NewPQP("NXQ5", "nexmark-q5")
		p.Add(&core.Operator{ID: "bids", Kind: core.OpSource, Name: "bids", Parallelism: 1,
			Source: &core.SourceSpec{Schema: nexmarkBidSchema, EventRate: rate}, OutWidth: 3})
		p.Add(&core.Operator{ID: "count", Kind: core.OpAggregate, Name: "bids-per-auction", Parallelism: 1,
			Partition: core.PartitionHash, CostScale: 0.3,
			Agg: &core.AggregateSpec{
				Window: core.WindowSpec{Type: core.WindowSliding, Policy: core.PolicyTime, LengthMs: 2000, SlideRatio: 0.5},
				Fn:     core.AggCount, Field: 2, KeyField: 0,
			}, OutWidth: 2})
		p.Add(&core.Operator{ID: "hottest", Kind: core.OpUDO, Name: "hottest", Parallelism: 1,
			Partition: core.PartitionHash,
			UDO:       &core.UDOSpec{Name: "nexmark/hottest", CostFactor: 2, StateFactor: 0.2, Selectivity: 0.05},
			OutWidth:  2})
		p.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1, Partition: core.PartitionRebalance})
		p.Connect("bids", "count")
		p.Connect("count", "hottest")
		p.Connect("hottest", "sink")
		return p
	},
	Sources: func(seed int64, max int) map[string]engine.SourceFactory {
		return map[string]engine.SourceFactory{
			"bids": sourceFactory(seed, max, 1000, nexmarkBidRow),
		}
	},
	UDOs: func() map[string]engine.UDOFactory {
		return map[string]engine.UDOFactory{
			"nexmark/hottest": func(int) engine.UDO { return &hottestTracker{} },
		}
	},
}

// NexmarkQ11 answers "how many bids did each user make in each of their
// activity sessions?": bids keyed by bidder, counted over gap-based
// session windows. The bid source carries bounded event-time disorder,
// so the query exercises the watermark plane end to end — session spans
// merge across out-of-order arrivals, and bounded skew with a matching
// lateness allowance must never drop a bid.
var NexmarkQ11 = &App{
	Code: "NXQ11", Name: "Nexmark Q11 (bid sessions)", Area: "Auctions",
	Description: "Counts bids per bidder over gap-based session windows under out-of-order arrivals.",
	Build: func(rate float64) *core.PQP {
		p := core.NewPQP("NXQ11", "nexmark-q11")
		p.Add(&core.Operator{ID: "bids", Kind: core.OpSource, Name: "bids", Parallelism: 1,
			Source: &core.SourceSpec{Schema: nexmarkBidSchema, EventRate: rate,
				Disorder: &core.DisorderSpec{Kind: core.DisorderBounded, MaxSkewMs: 100}},
			OutWidth: 3})
		p.Add(&core.Operator{ID: "sessions", Kind: core.OpAggregate, Name: "bids-per-session", Parallelism: 1,
			Partition: core.PartitionHash, CostScale: 0.3,
			Agg: &core.AggregateSpec{
				Window: core.WindowSpec{Type: core.WindowSession, Policy: core.PolicyTime, GapMs: 500},
				Fn:     core.AggCount, Field: 2, KeyField: 1,
			}, OutWidth: 2})
		p.Add(&core.Operator{ID: "sink", Kind: core.OpSink, Parallelism: 1, Partition: core.PartitionRebalance})
		p.Connect("bids", "sessions")
		p.Connect("sessions", "sink")
		return p
	},
	Sources: func(seed int64, max int) map[string]engine.SourceFactory {
		return map[string]engine.SourceFactory{
			"bids": sourceFactory(seed, max, 1000, nexmarkBidRow),
		}
	},
	UDOs: func() map[string]engine.UDOFactory {
		return map[string]engine.UDOFactory{}
	},
}

// hottestTracker emits a new (auction, count) leader whenever the
// windowed bid count beats the current maximum; the max decays so new
// leaders can emerge after quiet periods.
type hottestTracker struct {
	bestAuction int64
	bestCount   float64
	seen        int
}

func (h *hottestTracker) Process(t *tuple.Tuple, emit func(*tuple.Tuple)) {
	count := t.At(1).D
	h.seen++
	if h.seen%64 == 0 {
		h.bestCount *= 0.9 // decay
	}
	if count > h.bestCount {
		h.bestCount = count
		h.bestAuction = t.At(0).I
		emit(t.Clone())
	}
}

func (h *hottestTracker) Flush(func(*tuple.Tuple)) {}
