package queue

import (
	"errors"
	"testing"
	"time"
)

// Backoff-edge coverage for the retry machinery: attempt exhaustion at
// exactly MaxAttempts, extend-after-reap rejection, and the deliberate
// divergence between reported-failure backoff (exponential) and lease
// reclaim (immediate requeue). All driven by the fake clock — nothing
// here sleeps.

// TestFailureExhaustsAtExactlyMaxAttempts walks a job through every
// permitted attempt and asserts the pending/failed boundary lands on
// attempt == MaxAttempts, not one before or after.
func TestFailureExhaustsAtExactlyMaxAttempts(t *testing.T) {
	clock := &fakeClock{}
	q, _ := testQueue(t, clock) // MaxAttempts: 3, RetryBackoff: 100ms
	job, err := q.Enqueue(testSpec("doomed", 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	w := q.RegisterWorker("wk", 1, nil)

	for attempt := 1; attempt <= 3; attempt++ {
		j, err := q.Lease(w.ID)
		if err != nil || j == nil {
			t.Fatalf("attempt %d lease: %+v %v", attempt, j, err)
		}
		if j.Attempts != attempt {
			t.Fatalf("attempt counter = %d, want %d", j.Attempts, attempt)
		}
		if _, err := q.Fail(j.ID, j.LeaseID, "boom"); err != nil {
			t.Fatalf("attempt %d fail: %v", attempt, err)
		}
		got, _ := q.Job(job.ID)
		if attempt < 3 {
			// Attempts remain: pending again, behind exponential backoff.
			if got.Status != StatusPending {
				t.Fatalf("after failed attempt %d: status %q, want pending", attempt, got.Status)
			}
			wantNotBefore := clock.Now() + (100 << (attempt - 1))
			if got.NotBeforeMS != wantNotBefore {
				t.Errorf("after failed attempt %d: not_before %d, want %d (backoff %dms)",
					attempt, got.NotBeforeMS, wantNotBefore, 100<<(attempt-1))
			}
			clock.Advance(time.Duration(100<<(attempt-1)) * time.Millisecond)
		} else if got.Status != StatusFailed {
			t.Fatalf("after final attempt: status %q, want failed", got.Status)
		}
	}

	// A parked-failed job is not leasable ever again.
	if j, err := q.Lease(w.ID); err != nil || j != nil {
		t.Errorf("lease after exhaustion: %+v %v", j, err)
	}
	got, _ := q.Job(job.ID)
	if got.Attempts != 3 {
		t.Errorf("final attempts = %d, want 3", got.Attempts)
	}
}

// TestExtendAfterReapIsRejected: once any entry point reaps an expired
// lease, the old holder's extend must bounce off ErrStaleLease — it
// cannot resurrect a lease the queue already reassigned to the pool.
func TestExtendAfterReapIsRejected(t *testing.T) {
	clock := &fakeClock{}
	q, _ := testQueue(t, clock) // LeaseTTL: 1s
	job, err := q.Enqueue(testSpec("slow", 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	w := q.RegisterWorker("wk", 1, nil)
	j, err := q.Lease(w.ID)
	if err != nil || j == nil {
		t.Fatalf("lease: %+v %v", j, err)
	}

	clock.Advance(time.Second) // lease deadline passes exactly
	q.Jobs("")                 // any listing/worker entry point reaps

	if _, err := q.Extend(j.ID, j.LeaseID); !errors.Is(err, ErrStaleLease) {
		t.Errorf("extend after reap: %v, want ErrStaleLease", err)
	}
	got, _ := q.Job(job.ID)
	if got.Status != StatusPending {
		t.Errorf("reaped job status %q, want pending", got.Status)
	}
	// Reclaim requeues immediately: the lapsed TTL was already the wait.
	if got.NotBeforeMS != clock.Now() {
		t.Errorf("reclaimed not_before %d, want %d (no extra backoff)", got.NotBeforeMS, clock.Now())
	}
	// Completion under the dead token is equally rejected.
	if _, err := q.Complete(j.ID, j.LeaseID, 1, nil); !errors.Is(err, ErrStaleLease) {
		t.Errorf("complete after reap: %v, want ErrStaleLease", err)
	}
}

// TestReportedFailureBacksOffButReclaimDoesNot pins the asymmetry the
// queue documents: a worker-reported failure means the workload itself
// is suspect, so retries back off exponentially; a reaped lease only
// means the worker died, so the job requeues with no additional delay.
func TestReportedFailureBacksOffButReclaimDoesNot(t *testing.T) {
	clock := &fakeClock{}
	q, _ := testQueue(t, clock) // RetryBackoff: 100ms, LeaseTTL: 1s
	a, _ := q.Enqueue(testSpec("a", 1), 0)
	b, _ := q.Enqueue(testSpec("b", 2), 0)
	w := q.RegisterWorker("wk", 2, nil)

	ja, _ := q.Lease(w.ID)
	jb, _ := q.Lease(w.ID)
	if ja == nil || jb == nil || ja.ID != a.ID || jb.ID != b.ID {
		t.Fatalf("seed leases: %+v %+v", ja, jb)
	}

	// Reported failure at t=0: first-attempt backoff is RetryBackoff<<0.
	if _, err := q.Fail(ja.ID, ja.LeaseID, "boom"); err != nil {
		t.Fatal(err)
	}
	gotA, _ := q.Job(a.ID)
	if gotA.NotBeforeMS != clock.Now()+100 {
		t.Errorf("reported-failure not_before %d, want now+100", gotA.NotBeforeMS)
	}

	// The backoff gate is exclusive: one ms before it opens, nothing
	// leases; at the boundary, the job is eligible again.
	clock.Advance(99 * time.Millisecond)
	if j, _ := q.Lease(w.ID); j != nil {
		t.Fatalf("leased %s before its backoff elapsed", j.ID)
	}
	clock.Advance(1 * time.Millisecond)

	// b's lease dies by TTL at t=1000; reclaim requeues it for *now*.
	clock.Advance(900 * time.Millisecond)
	q.Jobs("")
	gotB, _ := q.Job(b.ID)
	if gotB.Status != StatusPending || gotB.NotBeforeMS != clock.Now() {
		t.Errorf("reclaimed job: status %q not_before %d, want pending at now=%d",
			gotB.Status, gotB.NotBeforeMS, clock.Now())
	}

	// Second reported failure doubles the backoff: RetryBackoff<<1.
	ja2, err := q.Lease(w.ID)
	if err != nil || ja2 == nil || ja2.ID != a.ID {
		t.Fatalf("re-lease a: %+v %v", ja2, err)
	}
	if ja2.Attempts != 2 {
		t.Fatalf("second attempt counter = %d", ja2.Attempts)
	}
	if _, err := q.Fail(ja2.ID, ja2.LeaseID, "boom again"); err != nil {
		t.Fatal(err)
	}
	gotA2, _ := q.Job(a.ID)
	if gotA2.NotBeforeMS != clock.Now()+200 {
		t.Errorf("second-failure not_before %d, want now+200 (doubled)", gotA2.NotBeforeMS)
	}
}
