package queue

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pdspbench/internal/controller"
	"pdspbench/internal/storage"
)

// fakeClock is an injectable monotonic millisecond source.
type fakeClock struct{ ms atomic.Int64 }

func (c *fakeClock) Now() int64              { return c.ms.Load() }
func (c *fakeClock) Advance(d time.Duration) { c.ms.Add(d.Milliseconds()) }

func testSpec(name string, degree int) controller.Spec {
	return controller.Spec{
		Name:      name,
		EventRate: 50_000,
		Runs:      1,
		Workloads: []controller.WorkloadSpec{{Structure: "linear", Degrees: []int{degree}}},
	}
}

func testQueue(t *testing.T, clock *fakeClock) (*Queue, *storage.Store) {
	t.Helper()
	st, err := storage.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	q, err := New(st, Options{
		LeaseTTL:     time.Second,
		HeartbeatTTL: 3 * time.Second,
		RetryBackoff: 100 * time.Millisecond,
		MaxAttempts:  3,
		NowMS:        clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	return q, st
}

func TestEnqueueAssignsDeterministicIDsAndValidates(t *testing.T) {
	clock := &fakeClock{}
	q, _ := testQueue(t, clock)
	j1, err := q.Enqueue(testSpec("c", 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := q.Enqueue(testSpec("c", 4), 0)
	if err != nil {
		t.Fatal(err)
	}
	if j1.ID == j2.ID {
		t.Fatalf("distinct jobs share ID %s", j1.ID)
	}
	if !strings.HasPrefix(j1.ID, "j001-") || !strings.HasPrefix(j2.ID, "j002-") {
		t.Errorf("IDs not ordinal-prefixed: %s %s", j1.ID, j2.ID)
	}
	// Same spec at the same ordinal must hash identically: a fresh queue
	// over a fresh store reproduces j1's ID for the same first enqueue.
	q2, _ := testQueue(t, clock)
	again, err := q2.Enqueue(testSpec("c", 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != j1.ID {
		t.Errorf("job ID not deterministic: %s vs %s", again.ID, j1.ID)
	}
	// Invalid campaigns are rejected before they hit the journal.
	if _, err := q.Enqueue(controller.Spec{Name: "empty"}, 0); err == nil {
		t.Error("enqueue accepted a campaign with no workloads")
	}
}

func TestLeaseFIFOAndLeaseProtocol(t *testing.T) {
	clock := &fakeClock{}
	q, _ := testQueue(t, clock)
	a, _ := q.Enqueue(testSpec("a", 1), 0)
	b, _ := q.Enqueue(testSpec("b", 2), 0)
	w := q.RegisterWorker("wk", 2, nil)

	j1, err := q.Lease(w.ID)
	if err != nil || j1 == nil {
		t.Fatalf("lease: %v %v", j1, err)
	}
	if j1.ID != a.ID {
		t.Errorf("lease order: got %s, want FIFO %s", j1.ID, a.ID)
	}
	j2, err := q.Lease(w.ID)
	if err != nil || j2 == nil || j2.ID != b.ID {
		t.Fatalf("second lease: %+v %v", j2, err)
	}
	// Capacity 2 exhausted.
	if j3, err := q.Lease(w.ID); err != nil || j3 != nil {
		t.Errorf("lease beyond capacity: %+v %v", j3, err)
	}
	// Extend with the live token works; with a stale one it does not.
	if _, err := q.Extend(j1.ID, j1.LeaseID); err != nil {
		t.Errorf("extend: %v", err)
	}
	if _, err := q.Extend(j1.ID, "bogus"); !errors.Is(err, ErrStaleLease) {
		t.Errorf("extend with bogus token: %v", err)
	}
	// Complete is exactly-once: the second completion is rejected and
	// the completion gauge stays at 1.
	if _, err := q.Complete(j1.ID, j1.LeaseID, 3, nil); err != nil {
		t.Fatalf("complete: %v", err)
	}
	if _, err := q.Complete(j1.ID, j1.LeaseID, 3, nil); !errors.Is(err, ErrStaleLease) {
		t.Errorf("duplicate complete: %v", err)
	}
	got, _ := q.Job(j1.ID)
	if got.Status != StatusCompleted || got.Completions != 1 || got.Records != 3 {
		t.Errorf("completed job state: %+v", got)
	}
	// Unknown worker must re-register.
	if _, err := q.Lease("w99"); !errors.Is(err, ErrUnknownWorker) {
		t.Errorf("unknown worker lease: %v", err)
	}
}

func TestBackendCapabilityMatching(t *testing.T) {
	clock := &fakeClock{}
	q, _ := testQueue(t, clock)
	spec := testSpec("real-only", 2)
	spec.Backend = "real"
	if _, err := q.Enqueue(spec, 0); err != nil {
		t.Fatal(err)
	}
	simOnly := q.RegisterWorker("sim-only", 1, []string{"sim"})
	if j, err := q.Lease(simOnly.ID); err != nil || j != nil {
		t.Errorf("sim-only worker leased a real job: %+v %v", j, err)
	}
	realWorker := q.RegisterWorker("real", 1, []string{"sim", "real"})
	j, err := q.Lease(realWorker.ID)
	if err != nil || j == nil {
		t.Fatalf("capable worker got no job: %v", err)
	}
}

func TestFailRetriesWithBackoffThenParksFailed(t *testing.T) {
	clock := &fakeClock{}
	q, _ := testQueue(t, clock)
	job, _ := q.Enqueue(testSpec("flaky", 1), 2) // 2 attempts
	w := q.RegisterWorker("wk", 1, nil)

	j, _ := q.Lease(w.ID)
	if _, err := q.Fail(j.ID, j.LeaseID, "boom"); err != nil {
		t.Fatal(err)
	}
	got, _ := q.Job(job.ID)
	if got.Status != StatusPending || got.Error != "boom" {
		t.Fatalf("after first fail: %+v", got)
	}
	// Backoff: not leasable until RetryBackoff elapses.
	if j, err := q.Lease(w.ID); err != nil || j != nil {
		t.Errorf("leased during backoff: %+v %v", j, err)
	}
	clock.Advance(150 * time.Millisecond)
	j, err := q.Lease(w.ID)
	if err != nil || j == nil {
		t.Fatalf("lease after backoff: %v", err)
	}
	if j.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", j.Attempts)
	}
	// Final attempt fails → terminal.
	if _, err := q.Fail(j.ID, j.LeaseID, "boom again"); err != nil {
		t.Fatal(err)
	}
	got, _ = q.Job(job.ID)
	if got.Status != StatusFailed {
		t.Errorf("after exhausting attempts: %+v", got)
	}
}

func TestLeaseExpiryAndDeadWorkerReclaim(t *testing.T) {
	clock := &fakeClock{}
	q, _ := testQueue(t, clock)
	if _, err := q.Enqueue(testSpec("x", 1), 0); err != nil {
		t.Fatal(err)
	}
	victim := q.RegisterWorker("victim", 1, nil)
	j, _ := q.Lease(victim.ID)
	if j == nil {
		t.Fatal("no lease")
	}
	// LeaseTTL is 1s: past it, any worker-driven entry point reclaims,
	// and a reclaim (unlike a reported failure) carries no extra backoff
	// — the lapsed TTL was the wait.
	clock.Advance(1100 * time.Millisecond)
	other := q.RegisterWorker("other", 1, nil)
	j2, err := q.Lease(other.ID)
	if err != nil || j2 == nil {
		t.Fatalf("reclaimed job not leasable: %v", err)
	}
	if j2.ID != j.ID || j2.Attempts != 2 {
		t.Errorf("reclaimed lease: %+v", j2)
	}
	// The victim's completion is now stale and must be rejected.
	if _, err := q.Complete(j.ID, j.LeaseID, 1, nil); !errors.Is(err, ErrStaleLease) {
		t.Errorf("stale complete: %v", err)
	}
	// Dead-worker path: the new leaseholder stops heartbeating; keep the
	// lease fresh via Extend but let the heartbeat TTL (3s) lapse.
	for i := 0; i < 4; i++ {
		clock.Advance(900 * time.Millisecond)
		if _, err := q.Extend(j2.ID, j2.LeaseID); err != nil {
			t.Fatalf("extend %d: %v", i, err)
		}
	}
	// other.LastSeen is 3.6s+ old now; a heartbeat from a third worker
	// triggers the reap even though the lease itself is unexpired.
	third := q.RegisterWorker("third", 1, nil)
	if _, err := q.Heartbeat(third.ID); err != nil {
		t.Fatal(err)
	}
	got, _ := q.Job(j.ID)
	if got.Status != StatusPending {
		t.Errorf("dead-worker job not reclaimed: %+v", got)
	}
}

func TestJournalReplaySurvivesDispatcherRestart(t *testing.T) {
	clock := &fakeClock{}
	st, err := storage.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	open := func() *Queue {
		q, err := New(st, Options{LeaseTTL: time.Second, MaxAttempts: 3, NowMS: clock.Now})
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	q := open()
	done, _ := q.Enqueue(testSpec("done", 1), 0)
	inflight, _ := q.Enqueue(testSpec("inflight", 2), 0)
	pending, _ := q.Enqueue(testSpec("pending", 4), 0)
	w := q.RegisterWorker("wk", 2, nil)
	j1, _ := q.Lease(w.ID)
	if _, err := q.Complete(j1.ID, j1.LeaseID, 2, nil); err != nil {
		t.Fatal(err)
	}
	if j2, _ := q.Lease(w.ID); j2.ID != inflight.ID {
		t.Fatalf("expected to lease %s, got %s", inflight.ID, j2.ID)
	}

	// "Restart": a fresh queue over the same store.
	q2 := open()
	if got, _ := q2.Job(done.ID); got.Status != StatusCompleted || got.Records != 2 {
		t.Errorf("completed job after replay: %+v", got)
	}
	// The in-flight lease belonged to the dead process: reclaimed.
	if got, _ := q2.Job(inflight.ID); got.Status != StatusPending {
		t.Errorf("in-flight job after replay: %+v", got)
	}
	if got, _ := q2.Job(pending.ID); got.Status != StatusPending {
		t.Errorf("pending job after replay: %+v", got)
	}
	// IDs are stable across the replay.
	jobs := q2.Jobs("")
	if len(jobs) != 3 || jobs[0].ID != done.ID || jobs[1].ID != inflight.ID || jobs[2].ID != pending.ID {
		t.Errorf("replayed jobs: %+v", jobs)
	}
	// Workers are ephemeral: the old ID is gone until re-registration.
	if _, err := q2.Lease(w.ID); !errors.Is(err, ErrUnknownWorker) {
		t.Errorf("stale worker after restart: %v", err)
	}
	// A third restart reaches the same state (replay is idempotent).
	q3 := open()
	if got, _ := q3.Job(inflight.ID); got.Status != StatusPending {
		t.Errorf("in-flight job after second replay: %+v", got)
	}
}

// A persist failure must abort the completion with the lease intact so
// the worker can retry with the same token — and a stale lease must be
// rejected before persist ever runs.
func TestCompletePersistFailureKeepsLeaseRetryable(t *testing.T) {
	clock := &fakeClock{}
	q, _ := testQueue(t, clock)
	if _, err := q.Enqueue(testSpec("p", 1), 0); err != nil {
		t.Fatal(err)
	}
	w := q.RegisterWorker("wk", 1, nil)
	j, _ := q.Lease(w.ID)
	boom := errors.New("disk full")
	if _, err := q.Complete(j.ID, j.LeaseID, 1, func() error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("complete with failing persist: %v", err)
	}
	got, _ := q.Job(j.ID)
	if got.Status != StatusLeased || got.LeaseID != j.LeaseID || got.Completions != 0 {
		t.Fatalf("job after persist failure: %+v", got)
	}
	// Same token, working persist: the retry lands.
	persisted := false
	if _, err := q.Complete(j.ID, j.LeaseID, 1, func() error { persisted = true; return nil }); err != nil {
		t.Fatalf("retried complete: %v", err)
	}
	if !persisted {
		t.Error("persist not invoked on retry")
	}
	// A stale token must be rejected without touching persist.
	if _, err := q.Complete(j.ID, j.LeaseID, 1, func() error {
		t.Error("persist ran for a stale lease")
		return nil
	}); !errors.Is(err, ErrStaleLease) {
		t.Errorf("stale complete: %v", err)
	}
}

// EnqueueAll is all-or-nothing: one invalid spec in the batch means no
// job is enqueued and nothing hits the journal.
func TestEnqueueAllIsAtomic(t *testing.T) {
	clock := &fakeClock{}
	q, st := testQueue(t, clock)
	batch := []controller.Spec{testSpec("ok1", 1), {Name: "bad"}, testSpec("ok2", 2)}
	if _, err := q.EnqueueAll(batch, 0, ""); err == nil {
		t.Fatal("batch with an invalid spec was accepted")
	}
	if jobs := q.Jobs(""); len(jobs) != 0 {
		t.Errorf("partial batch enqueued: %+v", jobs)
	}
	if n, _ := st.Count("fabricjournal"); n != 0 {
		t.Errorf("journal has %d entries after rejected batch", n)
	}
	// A valid batch lands whole, with ordinal-contiguous FIFO IDs.
	jobs, err := q.EnqueueAll([]controller.Spec{testSpec("a", 1), testSpec("b", 2)}, 0, "acme")
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 || jobs[0].Seq != 1 || jobs[1].Seq != 2 {
		t.Errorf("batch jobs: %+v", jobs)
	}
}

func TestSnapshotCounts(t *testing.T) {
	clock := &fakeClock{}
	q, _ := testQueue(t, clock)
	for i := 1; i <= 3; i++ {
		if _, err := q.Enqueue(testSpec("s", i), 0); err != nil {
			t.Fatal(err)
		}
	}
	w := q.RegisterWorker("wk", 1, nil)
	j, _ := q.Lease(w.ID)
	if _, err := q.Complete(j.ID, j.LeaseID, 1, nil); err != nil {
		t.Fatal(err)
	}
	j, _ = q.Lease(w.ID)
	_ = j
	s := q.Snapshot()
	if s.Pending != 1 || s.Leased != 1 || s.Completed != 1 || s.Failed != 0 || s.Workers != 1 {
		t.Errorf("snapshot: %+v", s)
	}
}
