package queue_test

// End-to-end exercise of the distributed campaign fabric: a real
// dispatcher (internal/server over httptest), a sharded 12-job campaign
// enqueued through POST /api/jobs, and three worker daemons draining it
// over HTTP — with one worker killed mid-lease to prove the lease
// machinery turns a crash into a retry, not a lost or doubled job.
//
// It lives in package queue_test because it imports internal/server,
// which imports internal/queue.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"pdspbench/internal/controller"
	"pdspbench/internal/metrics"
	"pdspbench/internal/queue"
	"pdspbench/internal/server"
	"pdspbench/internal/storage"
)

func TestFabricDrainsCampaignWithWorkerKill(t *testing.T) {
	st, err := storage.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Wall-clock queue options tuned so a dead worker's lease lapses in
	// tens of milliseconds, not the 30s production default.
	srv, err := server.New(st, server.WithQueueOptions(queue.Options{
		LeaseTTL:     150 * time.Millisecond,
		HeartbeatTTL: 450 * time.Millisecond,
		RetryBackoff: 10 * time.Millisecond,
		MaxAttempts:  5,
	}))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	httpClient := &http.Client{}
	defer httpClient.CloseIdleConnections()
	client := func() *queue.Client {
		c := queue.NewClient(ts.URL)
		c.HTTP = httpClient
		return c
	}

	// One degree sweep with 12 points shards into exactly 12 jobs.
	spec := controller.Spec{
		Name: "fabric-e2e",
		Workloads: []controller.WorkloadSpec{
			{Structure: "linear", Degrees: []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}},
		},
	}
	jobs, err := client().Enqueue(context.Background(), spec, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 12 {
		t.Fatalf("enqueued %d jobs, want 12", len(jobs))
	}

	// The victim blocks inside its first execution until its daemon
	// context is cancelled — a worker crash from the dispatcher's point
	// of view: no fail report, no completion, just silence.
	victimCtx, killVictim := context.WithCancel(context.Background())
	defer killVictim()
	var leasedOnce sync.Once
	victimLeased := make(chan struct{})
	victim := &queue.Worker{
		Client: client(),
		Name:   "victim",
		Poll:   5 * time.Millisecond,
		Execute: func(ctx context.Context, spec *controller.Spec) ([]metrics.RunRecord, error) {
			leasedOnce.Do(func() { close(victimLeased) })
			<-ctx.Done()
			return nil, ctx.Err()
		},
	}

	fakeRun := func(ctx context.Context, spec *controller.Spec) ([]metrics.RunRecord, error) {
		return []metrics.RunRecord{{ID: spec.Name, Workload: "linear"}}, nil
	}
	drainers := []*queue.Worker{
		{Client: client(), Name: "alpha", Once: true, Poll: 5 * time.Millisecond, Execute: fakeRun},
		{Client: client(), Name: "beta", Once: true, Poll: 5 * time.Millisecond, Execute: fakeRun},
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// A killed daemon reports the cancellation; anything else is a bug.
		if err := victim.Run(victimCtx); err != context.Canceled {
			t.Errorf("victim exit: %v", err)
		}
	}()
	// Let the victim grab a job before the drainers start competing, then
	// kill it mid-lease.
	select {
	case <-victimLeased:
	case <-time.After(10 * time.Second):
		t.Fatal("victim never leased a job")
	}
	killVictim()

	errs := make([]error, len(drainers))
	for i, w := range drainers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = w.Run(context.Background())
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("drainer %d: %v", i, err)
		}
	}

	// Every job completed exactly once, including the one abandoned by
	// the victim's crash.
	q := srv.Queue()
	all := q.Jobs("")
	if len(all) != 12 {
		t.Fatalf("queue has %d jobs", len(all))
	}
	reclaimed := 0
	for _, j := range all {
		if j.Status != queue.StatusCompleted {
			t.Errorf("job %s: status %q (attempts %d, err %q)", j.ID, j.Status, j.Attempts, j.Error)
		}
		if j.Completions != 1 {
			t.Errorf("job %s completed %d times", j.ID, j.Completions)
		}
		if j.Records != 1 {
			t.Errorf("job %s recorded %d records", j.ID, j.Records)
		}
		if j.Attempts > 1 {
			reclaimed++
		}
	}
	// The victim held a lease when it died, so at least one job must
	// show a second attempt.
	if reclaimed == 0 {
		t.Error("no job was reclaimed from the killed worker")
	}

	// The dispatcher appended exactly one RunRecord per completed job to
	// the same "runs" collection in-process campaigns use.
	n, err := st.Count("runs")
	if err != nil {
		t.Fatal(err)
	}
	if n != 12 {
		t.Errorf("runs collection has %d records, want 12", n)
	}
}

// Regression: a healthy worker whose job runs for several lease TTLs
// must keep the lease alive through timely extends. The original bug
// paced extends on the advertised heartbeat cadence, which with default
// options equals the lease TTL — so the first extend landed at expiry,
// the worker's own heartbeat reaped its live lease, and any job longer
// than one TTL burned every attempt and parked as failed.
func TestLongJobOutlivesLeaseTTL(t *testing.T) {
	st, err := storage.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// HeartbeatTTL = 3×LeaseTTL mirrors the production default ratio —
	// exactly the geometry that used to self-reap.
	srv, err := server.New(st, server.WithQueueOptions(queue.Options{
		LeaseTTL:     100 * time.Millisecond,
		HeartbeatTTL: 300 * time.Millisecond,
		RetryBackoff: 10 * time.Millisecond,
		MaxAttempts:  3,
	}))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := controller.Spec{
		Name:      "long-job",
		Workloads: []controller.WorkloadSpec{{Structure: "linear", Degrees: []int{2}}},
	}
	if _, err := queue.NewClient(ts.URL).Enqueue(context.Background(), spec, false, 0); err != nil {
		t.Fatal(err)
	}

	w := &queue.Worker{
		Client: queue.NewClient(ts.URL),
		Name:   "slow",
		Once:   true,
		Poll:   5 * time.Millisecond,
		Execute: func(ctx context.Context, spec *controller.Spec) ([]metrics.RunRecord, error) {
			// 4+ lease TTLs of work; abort early if the lease is lost.
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(450 * time.Millisecond):
				return []metrics.RunRecord{{ID: spec.Name, Workload: "linear"}}, nil
			}
		},
	}
	if err := w.Run(context.Background()); err != nil {
		t.Fatalf("worker: %v", err)
	}

	jobs := srv.Queue().Jobs("")
	if len(jobs) != 1 {
		t.Fatalf("queue has %d jobs", len(jobs))
	}
	j := jobs[0]
	if j.Status != queue.StatusCompleted || j.Completions != 1 || j.Attempts != 1 {
		t.Errorf("long job was not kept alive: status %q, completions %d, attempts %d (err %q)",
			j.Status, j.Completions, j.Attempts, j.Error)
	}
}
