package queue

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"pdspbench/internal/controller"
	"pdspbench/internal/metrics"
)

// Wire DTOs of the fabric protocol. The dispatcher (internal/server)
// decodes requests and encodes responses with these exact types, and
// Client mirrors them, so the HTTP surface documented in docs/API.md has
// a single source of truth.

// EnqueueRequest is the POST /api/jobs body.
type EnqueueRequest struct {
	// Spec is the campaign to enqueue (same schema as `pdspbench bench
	// --spec`).
	Spec controller.Spec `json:"spec"`
	// Split shards the campaign into one job per swept measurement
	// point (see controller.Spec.Shard) so workers drain it in parallel.
	Split bool `json:"split,omitempty"`
	// MaxAttempts bounds lease attempts per job (≤0 = queue default).
	MaxAttempts int `json:"max_attempts,omitempty"`
}

// EnqueueResponse lists the created jobs in enqueue order.
type EnqueueResponse struct {
	Jobs []Job `json:"jobs"`
}

// RegisterRequest is the POST /api/workers/register body.
type RegisterRequest struct {
	Name string `json:"name"`
	// Capacity bounds concurrent leases (≤0 = 1).
	Capacity int `json:"capacity,omitempty"`
	// Backends lists runnable execution backends; empty means any.
	Backends []string `json:"backends,omitempty"`
}

// RegisterResponse returns the worker identity and the cadence the
// dispatcher expects: heartbeat at least every HeartbeatMS, extend
// leases well inside LeaseTTLMS.
type RegisterResponse struct {
	Worker      WorkerInfo `json:"worker"`
	LeaseTTLMS  int64      `json:"lease_ttl_ms"`
	HeartbeatMS int64      `json:"heartbeat_ms"`
}

// HeartbeatResponse acknowledges liveness and piggybacks queue counts.
type HeartbeatResponse struct {
	Worker WorkerInfo `json:"worker"`
	Stats  Stats      `json:"stats"`
}

// LeaseRequest is the POST /api/jobs/lease (or /api/jobs/{id}/lease)
// body.
type LeaseRequest struct {
	WorkerID string `json:"worker_id"`
}

// LeaseResponse carries the leased job — nil when nothing is leasable —
// plus queue counts so pollers can detect a drained queue.
type LeaseResponse struct {
	Job   *Job  `json:"job,omitempty"`
	Stats Stats `json:"stats"`
}

// ExtendRequest is the POST /api/jobs/{id}/extend body.
type ExtendRequest struct {
	LeaseID string `json:"lease_id"`
}

// CompleteRequest is the POST /api/jobs/{id}/complete body: the lease
// token plus every RunRecord the campaign produced. The dispatcher
// appends the records to the shared run store only when the lease is
// still live (exactly-once recording).
type CompleteRequest struct {
	LeaseID string              `json:"lease_id"`
	Records []metrics.RunRecord `json:"records"`
}

// FailRequest is the POST /api/jobs/{id}/fail body.
type FailRequest struct {
	LeaseID string `json:"lease_id"`
	Error   string `json:"error"`
}

// Client is the fabric's HTTP client — what `pdspbench worker` and the
// `pdspbench jobs` subcommands speak to the dispatcher.
type Client struct {
	// BaseURL is the dispatcher root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP defaults to http.DefaultClient.
	HTTP *http.Client
	// Tenant, when set, is sent as the TenantHeader on every request so
	// enqueues are attributed and the front door applies this tenant's
	// quota instead of the default's.
	Tenant string
}

// NewClient builds a client over the dispatcher base URL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do POSTs (or GETs when in is nil and method says so) JSON and decodes
// the response into out, mapping non-2xx statuses to errors carrying
// the server's error body.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("queue: client marshal: %w", err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return fmt.Errorf("queue: client: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Tenant != "" {
		req.Header.Set(TenantHeader, c.Tenant)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("queue: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var apiErr struct {
			Error string `json:"error"`
		}
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if json.Unmarshal(data, &apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("queue: %s %s: %s (HTTP %d)", method, path, apiErr.Error, resp.StatusCode)
		}
		return fmt.Errorf("queue: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("queue: %s %s: decode: %w", method, path, err)
	}
	return nil
}

// Enqueue submits a campaign; with split it shards first.
func (c *Client) Enqueue(ctx context.Context, spec controller.Spec, split bool, maxAttempts int) ([]Job, error) {
	var resp EnqueueResponse
	err := c.do(ctx, http.MethodPost, "/api/jobs", EnqueueRequest{Spec: spec, Split: split, MaxAttempts: maxAttempts}, &resp)
	return resp.Jobs, err
}

// Jobs lists jobs, optionally filtered by status.
func (c *Client) Jobs(ctx context.Context, status Status) ([]Job, error) {
	path := "/api/jobs"
	if status != "" {
		path += "?status=" + url.QueryEscape(string(status))
	}
	var jobs []Job
	err := c.do(ctx, http.MethodGet, path, nil, &jobs)
	return jobs, err
}

// Register announces a worker daemon to the dispatcher.
func (c *Client) Register(ctx context.Context, req RegisterRequest) (RegisterResponse, error) {
	var resp RegisterResponse
	err := c.do(ctx, http.MethodPost, "/api/workers/register", req, &resp)
	return resp, err
}

// Heartbeat refreshes worker liveness.
func (c *Client) Heartbeat(ctx context.Context, workerID string) (HeartbeatResponse, error) {
	var resp HeartbeatResponse
	err := c.do(ctx, http.MethodPost, "/api/workers/"+url.PathEscape(workerID)+"/heartbeat", struct{}{}, &resp)
	return resp, err
}

// Lease asks for the next leasable job; resp.Job is nil when none.
func (c *Client) Lease(ctx context.Context, workerID string) (LeaseResponse, error) {
	var resp LeaseResponse
	err := c.do(ctx, http.MethodPost, "/api/jobs/lease", LeaseRequest{WorkerID: workerID}, &resp)
	return resp, err
}

// Extend renews a job lease.
func (c *Client) Extend(ctx context.Context, jobID, leaseID string) error {
	return c.do(ctx, http.MethodPost, "/api/jobs/"+url.PathEscape(jobID)+"/extend", ExtendRequest{LeaseID: leaseID}, nil)
}

// Complete reports success with the campaign's records.
func (c *Client) Complete(ctx context.Context, jobID, leaseID string, records []metrics.RunRecord) error {
	return c.do(ctx, http.MethodPost, "/api/jobs/"+url.PathEscape(jobID)+"/complete",
		CompleteRequest{LeaseID: leaseID, Records: records}, nil)
}

// Fail reports an execution error; the job retries or parks failed.
func (c *Client) Fail(ctx context.Context, jobID, leaseID, msg string) error {
	return c.do(ctx, http.MethodPost, "/api/jobs/"+url.PathEscape(jobID)+"/fail",
		FailRequest{LeaseID: leaseID, Error: msg}, nil)
}

// Workers lists registered workers.
func (c *Client) Workers(ctx context.Context) ([]WorkerInfo, error) {
	var out []WorkerInfo
	err := c.do(ctx, http.MethodGet, "/api/workers", nil, &out)
	return out, err
}
