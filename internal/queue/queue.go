// Package queue is the durable heart of PDSP-Bench's distributed
// campaign fabric: a lease-based job queue of benchmark campaigns
// (controller.Spec, including fault plans) that the dispatcher
// (internal/server) exposes over HTTP and `pdspbench worker` daemons
// drain. It turns the single-process campaign runner into the
// coordinator/driver split that distributed benchmarking harnesses use
// (Karimov et al.; SProBench), so the ML corpus grows with the number
// of workers instead of the speed of one machine.
//
// Ownership rules and invariants:
//
//   - Durability is a journal. Every state transition appends one
//     journalEntry to a storage collection (append-only, see
//     internal/storage) and is applied in memory only after the append
//     succeeds, so a storage failure aborts the transition cleanly
//     instead of leaving memory ahead of the journal; Open replays the
//     journal to rebuild state, so the queue survives dispatcher
//     restarts. Nothing is ever rewritten in place.
//   - Job IDs are deterministic: a job's ID is derived from its
//     campaign spec and its enqueue ordinal, so replaying the same
//     enqueue sequence reproduces the same IDs, and records can be
//     traced back to jobs across restarts.
//   - Leases are the only execution grant. A job is executed by at most
//     one worker at a time: Lease hands out a single-use lease token,
//     and Extend/Complete/Fail all require the current token. A worker
//     that loses its lease (expiry, missed heartbeats, dispatcher
//     restart) can still finish computing, but its Complete is rejected
//     with ErrStaleLease — execution is at-least-once, *completion* is
//     exactly-once (Job.Completions can only ever reach 1).
//   - Time is monotonic and injected. All deadlines (lease expiry,
//     retry backoff, heartbeat staleness) live on a process-local
//     monotonic millisecond clock (NowMS), never the wall clock, so
//     the queue is immune to wall-clock jumps and stays lint-clean
//     under the determinism analyzers. Journal timestamps are
//     meaningless across processes — which is exactly why replay
//     reclaims every leased job (see Open).
//   - Retries are bounded. Each Lease consumes one attempt; a failed or
//     reclaimed job re-enters the pending state with exponential
//     backoff until MaxAttempts is exhausted, then parks as failed.
//
// Only the dispatcher (internal/server), the controller layer and the
// CLI may import this package — enforced by pdsplint's api-boundary
// restricted-import rule.
package queue

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"pdspbench/internal/controller"
	"pdspbench/internal/storage"
)

// Status is a job's lifecycle state.
type Status string

// Job lifecycle: pending → leased → completed, with leased → pending
// retries (lease expiry, reported failure, dispatcher restart) until
// attempts are exhausted, then leased → failed.
const (
	StatusPending   Status = "pending"
	StatusLeased    Status = "leased"
	StatusCompleted Status = "completed"
	StatusFailed    Status = "failed"
)

// Multi-tenant accounting: every job carries the tenant that enqueued
// it (the serving front door's X-Tenant header, see internal/server),
// so queue listings and stats can be partitioned per tenant and the
// storm harness can verify quota isolation end to end.
const (
	// DefaultTenant labels jobs enqueued without a tenant.
	DefaultTenant = "default"
	// TenantHeader is the HTTP header that names the tenant; the
	// dispatcher reads it and Client sends it.
	TenantHeader = "X-Tenant"
)

// ValidStatus reports whether s names a job state (for API filters).
func ValidStatus(s Status) bool {
	switch s {
	case StatusPending, StatusLeased, StatusCompleted, StatusFailed:
		return true
	}
	return false
}

// Job is one queued campaign execution.
type Job struct {
	// ID is deterministic: derived from the campaign spec and the
	// enqueue ordinal (see jobID), stable across journal replays.
	ID string `json:"id"`
	// Seq is the enqueue ordinal; jobs lease in Seq (FIFO) order.
	Seq int `json:"seq"`
	// Campaign is the work: a full declarative benchmark campaign,
	// including Faults. Treat as read-only once enqueued.
	Campaign controller.Spec `json:"campaign"`
	// Tenant is the enqueuing tenant (DefaultTenant when none given).
	Tenant string `json:"tenant,omitempty"`
	Status Status `json:"status"`
	// Attempts counts leases handed out for this job; bounded by
	// MaxAttempts.
	Attempts    int `json:"attempts"`
	MaxAttempts int `json:"max_attempts"`
	// Worker is the current (status leased) or last leaseholder.
	Worker string `json:"worker,omitempty"`
	// LeaseID is the single-use token Extend/Complete/Fail must echo.
	LeaseID string `json:"lease_id,omitempty"`
	// LeaseExpiresMS / NotBeforeMS are process-monotonic deadlines:
	// when the lease is reclaimed, and when a retrying job becomes
	// leasable again.
	LeaseExpiresMS int64 `json:"lease_expires_ms,omitempty"`
	NotBeforeMS    int64 `json:"not_before_ms,omitempty"`
	// Completions is the exactly-once gauge: 0 or 1, only Complete
	// with the live lease token increments it.
	Completions int `json:"completions"`
	// Records counts the RunRecords the completing worker reported.
	Records int `json:"records,omitempty"`
	// Error is the most recent failure message (reported or reclaim).
	Error string `json:"error,omitempty"`
}

// Backend names the execution backend the job needs ("" means sim).
func (j *Job) Backend() string {
	if j.Campaign.Backend == "" {
		return "sim"
	}
	return j.Campaign.Backend
}

// WorkerInfo is one registered worker daemon. Workers are ephemeral and
// not journaled: after a dispatcher restart every daemon re-registers on
// its next heartbeat cycle and receives a fresh ID.
type WorkerInfo struct {
	ID   string `json:"id"`
	Name string `json:"name"`
	// Capacity bounds concurrent leases held by this worker (≤0 = 1).
	Capacity int `json:"capacity"`
	// Backends lists the execution backends the worker can run; empty
	// means any.
	Backends []string `json:"backends,omitempty"`
	// LastSeenMS is the monotonic time of the last register/heartbeat/
	// lease; staleness past the heartbeat TTL reclaims the worker's
	// leases.
	LastSeenMS int64 `json:"last_seen_ms"`
	// Leased counts jobs currently leased to this worker.
	Leased int `json:"leased"`
}

// Options tune a queue; the zero value gets defaults from New.
type Options struct {
	// Collection is the journal's storage collection (default
	// "fabric-journal" is invalid — storage forbids dashes — so the
	// default is "fabricjournal").
	Collection string
	// LeaseTTL is how long a lease lives without Extend (default 30s).
	LeaseTTL time.Duration
	// HeartbeatTTL is how stale a worker's last contact may grow before
	// its leases are reclaimed (default 3×LeaseTTL).
	HeartbeatTTL time.Duration
	// RetryBackoff is the base retry delay; attempt n waits
	// RetryBackoff << (n-1) (default 1s).
	RetryBackoff time.Duration
	// MaxAttempts bounds leases per job (default 3).
	MaxAttempts int
	// NowMS supplies monotonic milliseconds; the default measures
	// time.Since a process-start anchor (monotonic reading, immune to
	// wall-clock jumps). Tests inject a fake.
	NowMS func() int64
}

// Sentinel errors of the lease protocol; the dispatcher maps them to
// HTTP statuses (404, 409).
var (
	ErrUnknownJob    = errors.New("queue: unknown job")
	ErrUnknownWorker = errors.New("queue: unknown worker (re-register after a dispatcher restart)")
	ErrStaleLease    = errors.New("queue: stale or missing lease")
	ErrNotLeasable   = errors.New("queue: job is not leasable")
)

// monotonicStart anchors the default clock; time.Since carries the
// monotonic reading, so the scale never jumps with the wall clock.
var monotonicStart = time.Now()

func defaultNowMS() int64 { return time.Since(monotonicStart).Milliseconds() }

// Queue is a durable, lease-based campaign job queue. All methods are
// safe for concurrent use; one mutex guards the whole state, and every
// mutation is journaled to the store under the same critical section,
// so the journal order is the state's serialization order.
type Queue struct {
	store *storage.Store
	opts  Options

	mu      sync.Mutex
	jobs    map[string]*Job
	order   []string // job IDs in enqueue order
	workers map[string]*WorkerInfo
	seq     int // enqueue ordinal
	wseq    int // worker ordinal
}

// New opens a queue over the store, replaying the journal collection to
// rebuild state. Jobs found leased in the journal belonged to a previous
// dispatcher process (their monotonic deadlines are meaningless here),
// so replay reclaims them: back to pending if attempts remain, failed
// otherwise.
func New(store *storage.Store, opts Options) (*Queue, error) {
	if opts.Collection == "" {
		opts.Collection = "fabricjournal"
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 30 * time.Second
	}
	if opts.HeartbeatTTL <= 0 {
		opts.HeartbeatTTL = 3 * opts.LeaseTTL
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = time.Second
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 3
	}
	if opts.NowMS == nil {
		opts.NowMS = defaultNowMS
	}
	q := &Queue{
		store:   store,
		opts:    opts,
		jobs:    map[string]*Job{},
		workers: map[string]*WorkerInfo{},
	}
	if err := q.replay(); err != nil {
		return nil, err
	}
	return q, nil
}

// journalEntry is one durable state transition. Enqueue snapshots the
// whole job; later ops reference it by ID and carry the fields the
// transition changed, so replay is a pure fold over the entries.
type journalEntry struct {
	Op          string `json:"op"` // enqueue|lease|extend|complete|fail|requeue
	Job         *Job   `json:"job,omitempty"`
	JobID       string `json:"job_id,omitempty"`
	Worker      string `json:"worker,omitempty"`
	LeaseID     string `json:"lease_id,omitempty"`
	ExpiresMS   int64  `json:"expires_ms,omitempty"`
	NotBeforeMS int64  `json:"not_before_ms,omitempty"`
	Status      Status `json:"status,omitempty"`
	Records     int    `json:"records,omitempty"`
	Error       string `json:"error,omitempty"`
}

// replay rebuilds in-memory state from the journal.
func (q *Queue) replay() error {
	entries, err := storage.Load[journalEntry](q.store, q.opts.Collection)
	if err != nil {
		return fmt.Errorf("queue: replay: %w", err)
	}
	for i, e := range entries {
		if err := q.apply(&e); err != nil {
			return fmt.Errorf("queue: replay entry %d: %w", i, err)
		}
	}
	// Reclaim leases from the previous process: their monotonic
	// deadlines are meaningless on this process's clock, and the worker
	// IDs they reference no longer exist. A second replay of the
	// resulting journal reaches the same conclusion.
	now := q.opts.NowMS()
	for _, id := range q.order {
		j := q.jobs[id]
		if j.Status == StatusLeased {
			q.reclaim(j, now, "dispatcher restart reclaimed lease")
		}
	}
	return nil
}

// apply folds one journal entry into the state (no journaling; replay
// and live mutation share this).
func (q *Queue) apply(e *journalEntry) error {
	switch e.Op {
	case "enqueue":
		if e.Job == nil {
			return errors.New("enqueue entry without job")
		}
		j := *e.Job
		if j.Tenant == "" {
			j.Tenant = DefaultTenant // journals from before tenancy
		}
		q.jobs[j.ID] = &j
		q.order = append(q.order, j.ID)
		if j.Seq > q.seq {
			q.seq = j.Seq
		}
	case "lease":
		j, ok := q.jobs[e.JobID]
		if !ok {
			return fmt.Errorf("lease of unknown job %s", e.JobID)
		}
		j.Status = StatusLeased
		j.Worker = e.Worker
		j.LeaseID = e.LeaseID
		j.LeaseExpiresMS = e.ExpiresMS
		j.Attempts++
		j.Error = ""
	case "extend":
		j, ok := q.jobs[e.JobID]
		if !ok {
			return fmt.Errorf("extend of unknown job %s", e.JobID)
		}
		j.LeaseExpiresMS = e.ExpiresMS
	case "complete":
		j, ok := q.jobs[e.JobID]
		if !ok {
			return fmt.Errorf("complete of unknown job %s", e.JobID)
		}
		j.Status = StatusCompleted
		j.Completions++
		j.Records = e.Records
		j.LeaseID = ""
		j.LeaseExpiresMS = 0
	case "fail", "requeue":
		j, ok := q.jobs[e.JobID]
		if !ok {
			return fmt.Errorf("%s of unknown job %s", e.Op, e.JobID)
		}
		j.Status = e.Status
		j.NotBeforeMS = e.NotBeforeMS
		j.Error = e.Error
		j.LeaseID = ""
		j.LeaseExpiresMS = 0
	default:
		return fmt.Errorf("unknown journal op %q", e.Op)
	}
	return nil
}

// journal appends the entry to the store and only then applies it to
// memory. Append-first means a storage failure leaves the in-memory
// state untouched: the transition simply did not happen, the caller
// sees the error, and the operation can be retried. For Complete this
// is what keeps the lease intact when the journal write fails, so the
// worker's retry is accepted instead of bouncing off ErrStaleLease
// against a half-applied completion.
func (q *Queue) journal(e *journalEntry) error {
	if err := q.store.Append(q.opts.Collection, e); err != nil {
		return fmt.Errorf("queue: journal: %w", err)
	}
	return q.apply(e)
}

// jobID derives the deterministic job identifier: a hash of the
// campaign's canonical JSON and the enqueue ordinal, prefixed with the
// ordinal for human-readable FIFO listings.
func jobID(spec *controller.Spec, seq int) string {
	data, err := json.Marshal(spec)
	if err != nil {
		data = []byte(spec.Name) // specs are plain data; marshal cannot realistically fail
	}
	h := sha256.New()
	h.Write(data)
	fmt.Fprintf(h, "#%d", seq)
	return fmt.Sprintf("j%03d-%x", seq, h.Sum(nil)[:5])
}

// Enqueue validates and appends one campaign job. maxAttempts ≤ 0 uses
// the queue default.
func (q *Queue) Enqueue(spec controller.Spec, maxAttempts int) (Job, error) {
	jobs, err := q.EnqueueAll([]controller.Spec{spec}, maxAttempts, "")
	if err != nil {
		return Job{}, err
	}
	return jobs[0], nil
}

// EnqueueAll validates and appends a batch of campaign jobs atomically:
// every spec is validated up front, then all journal entries land in a
// single AppendAll write, so either the whole batch is durably enqueued
// or none of it is. The dispatcher shards campaigns through this so a
// failed POST /api/jobs can be retried without duplicating the shards
// that made it in before the error. tenant attributes the batch
// (DefaultTenant when empty).
func (q *Queue) EnqueueAll(specs []controller.Spec, maxAttempts int, tenant string) ([]Job, error) {
	if len(specs) == 0 {
		return nil, errors.New("queue: enqueue of empty batch")
	}
	if tenant == "" {
		tenant = DefaultTenant
	}
	for i := range specs {
		if err := specs[i].Validate(); err != nil {
			return nil, err
		}
	}
	if maxAttempts <= 0 {
		maxAttempts = q.opts.MaxAttempts
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	jobs := make([]Job, len(specs))
	entries := make([]any, len(specs))
	for i := range specs {
		seq := q.seq + i + 1
		jobs[i] = Job{
			ID:          jobID(&specs[i], seq),
			Seq:         seq,
			Campaign:    specs[i],
			Tenant:      tenant,
			Status:      StatusPending,
			MaxAttempts: maxAttempts,
		}
		entries[i] = &journalEntry{Op: "enqueue", Job: &jobs[i]}
	}
	if err := q.store.AppendAll(q.opts.Collection, entries...); err != nil {
		return nil, fmt.Errorf("queue: journal: %w", err)
	}
	for _, e := range entries {
		if err := q.apply(e.(*journalEntry)); err != nil {
			return nil, err
		}
	}
	return jobs, nil
}

// RegisterWorker adds (or re-adds) a worker daemon and returns its
// assigned ID. Worker IDs are ordinal per dispatcher process.
func (q *Queue) RegisterWorker(name string, capacity int, backends []string) WorkerInfo {
	q.mu.Lock()
	defer q.mu.Unlock()
	if capacity <= 0 {
		capacity = 1
	}
	q.wseq++
	w := &WorkerInfo{
		ID:         fmt.Sprintf("w%d", q.wseq),
		Name:       name,
		Capacity:   capacity,
		Backends:   append([]string(nil), backends...),
		LastSeenMS: q.opts.NowMS(),
	}
	q.workers[w.ID] = w
	return *w
}

// Heartbeat refreshes the worker's liveness and reaps expired leases
// queue-wide (the fabric has no background reaper goroutine; liveness
// work rides on worker traffic).
func (q *Queue) Heartbeat(workerID string) (WorkerInfo, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	w, ok := q.workers[workerID]
	if !ok {
		return WorkerInfo{}, ErrUnknownWorker
	}
	now := q.opts.NowMS()
	w.LastSeenMS = now
	q.reapLocked(now)
	return *w, nil
}

// Lease hands the oldest eligible pending job to the worker: FIFO over
// jobs whose backoff has elapsed, whose backend the worker can run, and
// while the worker has capacity. Returns (nil, nil) when nothing is
// leasable.
func (q *Queue) Lease(workerID string) (*Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	w, ok := q.workers[workerID]
	if !ok {
		return nil, ErrUnknownWorker
	}
	now := q.opts.NowMS()
	w.LastSeenMS = now
	q.reapLocked(now)
	if w.Leased >= w.Capacity {
		return nil, nil
	}
	for _, id := range q.order {
		j := q.jobs[id]
		if j.Status != StatusPending || j.NotBeforeMS > now || !workerCanRun(w, j) {
			continue
		}
		return q.leaseLocked(w, j, now)
	}
	return nil, nil
}

// LeaseJob leases one specific job to the worker (the targeted variant
// of Lease for callers that picked a job from GET /api/jobs). Returns
// ErrNotLeasable when the job exists but is not currently grantable to
// this worker.
func (q *Queue) LeaseJob(workerID, jobID string) (*Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	w, ok := q.workers[workerID]
	if !ok {
		return nil, ErrUnknownWorker
	}
	now := q.opts.NowMS()
	w.LastSeenMS = now
	q.reapLocked(now)
	j, ok := q.jobs[jobID]
	if !ok {
		return nil, ErrUnknownJob
	}
	if w.Leased >= w.Capacity || j.Status != StatusPending || j.NotBeforeMS > now || !workerCanRun(w, j) {
		return nil, ErrNotLeasable
	}
	return q.leaseLocked(w, j, now)
}

// leaseLocked grants the lease; callers hold q.mu and have verified
// eligibility.
func (q *Queue) leaseLocked(w *WorkerInfo, j *Job, now int64) (*Job, error) {
	e := &journalEntry{
		Op:        "lease",
		JobID:     j.ID,
		Worker:    w.ID,
		LeaseID:   fmt.Sprintf("%s.%s.a%d", j.ID, w.ID, j.Attempts+1),
		ExpiresMS: now + q.opts.LeaseTTL.Milliseconds(),
	}
	if err := q.journal(e); err != nil {
		return nil, err
	}
	w.Leased++
	out := *j
	return &out, nil
}

// workerCanRun checks backend capability.
func workerCanRun(w *WorkerInfo, j *Job) bool {
	if len(w.Backends) == 0 {
		return true
	}
	need := j.Backend()
	for _, b := range w.Backends {
		if b == need {
			return true
		}
	}
	return false
}

// Extend renews the lease; only the current leaseholder's token works.
func (q *Queue) Extend(id, leaseID string) (Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Job{}, ErrUnknownJob
	}
	if j.Status != StatusLeased || j.LeaseID != leaseID {
		return Job{}, ErrStaleLease
	}
	e := &journalEntry{Op: "extend", JobID: id, ExpiresMS: q.opts.NowMS() + q.opts.LeaseTTL.Milliseconds()}
	if err := q.journal(e); err != nil {
		return Job{}, err
	}
	return *j, nil
}

// Complete marks the job done. It is the exactly-once gate: expired or
// superseded leases get ErrStaleLease and the job's results must be
// discarded by the caller.
//
// persist, when non-nil, is the caller's hook for landing the job's
// RunRecords; it runs under the queue lock after the lease check passes
// and before the completion is journaled. That ordering gives the
// dispatcher three guarantees: a stale completion never persists
// anything, concurrent completions cannot interleave their batches, and
// a persist failure aborts the completion with the lease intact — the
// worker's retry of the same Complete (same token) is accepted. The one
// window left is crash-grade: if persist succeeds and the journal
// append then fails, a retried Complete persists the batch again, so
// persist should tolerate duplicates across storage-failure retries.
func (q *Queue) Complete(id, leaseID string, records int, persist func() error) (Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.opts.NowMS()
	q.reapLocked(now)
	j, ok := q.jobs[id]
	if !ok {
		return Job{}, ErrUnknownJob
	}
	if j.Status != StatusLeased || j.LeaseID != leaseID {
		return Job{}, ErrStaleLease
	}
	if persist != nil {
		if err := persist(); err != nil {
			return Job{}, fmt.Errorf("queue: persist records: %w", err)
		}
	}
	if err := q.journal(&journalEntry{Op: "complete", JobID: id, Records: records}); err != nil {
		return Job{}, err
	}
	q.releaseWorker(j.Worker)
	return *j, nil
}

// Fail reports an execution error from the leaseholder; the job retries
// with exponential backoff until MaxAttempts, then parks as failed.
func (q *Queue) Fail(id, leaseID, msg string) (Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.opts.NowMS()
	j, ok := q.jobs[id]
	if !ok {
		return Job{}, ErrUnknownJob
	}
	if j.Status != StatusLeased || j.LeaseID != leaseID {
		return Job{}, ErrStaleLease
	}
	if err := q.journal(q.retryEntry(j, now, "fail", msg, true)); err != nil {
		return Job{}, err
	}
	q.releaseWorker(j.Worker)
	return *j, nil
}

// retryEntry builds the fail/requeue transition: pending while attempts
// remain, failed otherwise. Exponential backoff applies only to
// *reported* failures (the workload itself is suspect); lease reclaims
// requeue immediately — the lapsed lease TTL was already the wait, and
// the attempt bound still caps crash loops.
func (q *Queue) retryEntry(j *Job, now int64, op, msg string, backoff bool) *journalEntry {
	e := &journalEntry{Op: op, JobID: j.ID, Error: msg}
	if j.Attempts >= j.MaxAttempts {
		e.Status = StatusFailed
		return e
	}
	e.Status = StatusPending
	e.NotBeforeMS = now
	if backoff {
		e.NotBeforeMS += q.opts.RetryBackoff.Milliseconds() << uint(j.Attempts-1)
	}
	return e
}

// reapLocked reclaims leases whose deadline passed or whose worker has
// gone silent past the heartbeat TTL. Called with q.mu held, on every
// worker-driven entry point — the queue has no timer goroutine.
func (q *Queue) reapLocked(now int64) {
	for _, id := range q.order {
		j := q.jobs[id]
		if j.Status != StatusLeased {
			continue
		}
		expired := j.LeaseExpiresMS <= now
		w, known := q.workers[j.Worker]
		dead := !known || now-w.LastSeenMS > q.opts.HeartbeatTTL.Milliseconds()
		if !expired && !dead {
			continue
		}
		reason := fmt.Sprintf("lease expired on worker %s", j.Worker)
		if dead && !expired {
			reason = fmt.Sprintf("worker %s missed heartbeats", j.Worker)
		}
		q.reclaim(j, now, reason)
	}
}

// reclaim requeues or fails a leased job, best-effort. Journaling is
// append-first, so a failed write leaves the job leased in memory too —
// the next worker-driven entry point (or replay, after a restart)
// retries the reap, which is why the error is deliberately dropped
// rather than propagated. The worker's lease slot is released only when
// the transition actually applied.
func (q *Queue) reclaim(j *Job, now int64, reason string) {
	if err := q.journal(q.retryEntry(j, now, "requeue", reason, false)); err == nil {
		q.releaseWorker(j.Worker)
	}
}

// releaseWorker decrements the worker's lease count if it is known.
func (q *Queue) releaseWorker(workerID string) {
	if w, ok := q.workers[workerID]; ok && w.Leased > 0 {
		w.Leased--
	}
}

// Job returns a snapshot of one job.
func (q *Queue) Job(id string) (Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// Jobs lists snapshots in enqueue order, optionally filtered by status
// ("" = all). It reaps first so listings reflect lease expiry.
func (q *Queue) Jobs(status Status) []Job {
	return q.JobsTenant(status, "")
}

// JobsTenant is Jobs with an additional tenant filter ("" = all
// tenants).
func (q *Queue) JobsTenant(status Status, tenant string) []Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.reapLocked(q.opts.NowMS())
	out := make([]Job, 0, len(q.order))
	for _, id := range q.order {
		j := q.jobs[id]
		if status != "" && j.Status != status {
			continue
		}
		if tenant != "" && j.Tenant != tenant {
			continue
		}
		out = append(out, *j)
	}
	return out
}

// Workers lists registered workers in registration order.
func (q *Queue) Workers() []WorkerInfo {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]WorkerInfo, 0, len(q.workers))
	for i := 1; i <= q.wseq; i++ {
		if w, ok := q.workers[fmt.Sprintf("w%d", i)]; ok {
			out = append(out, *w)
		}
	}
	return out
}

// TenantCounts is one tenant's slice of the queue, by job status.
type TenantCounts struct {
	Pending   int `json:"pending"`
	Leased    int `json:"leased"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
}

// Stats summarizes the queue for listings and drain detection.
type Stats struct {
	Pending   int `json:"pending"`
	Leased    int `json:"leased"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Workers   int `json:"workers"`
	// ByTenant partitions the job counts by enqueuing tenant.
	ByTenant map[string]TenantCounts `json:"by_tenant,omitempty"`
}

// Snapshot reaps and counts jobs by status, totalled and per tenant.
func (q *Queue) Snapshot() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.reapLocked(q.opts.NowMS())
	s := Stats{ByTenant: map[string]TenantCounts{}}
	for _, id := range q.order {
		j := q.jobs[id]
		tc := s.ByTenant[j.Tenant]
		switch j.Status {
		case StatusPending:
			s.Pending++
			tc.Pending++
		case StatusLeased:
			s.Leased++
			tc.Leased++
		case StatusCompleted:
			s.Completed++
			tc.Completed++
		case StatusFailed:
			s.Failed++
			tc.Failed++
		}
		s.ByTenant[j.Tenant] = tc
	}
	s.Workers = len(q.workers)
	return s
}

// LeaseTTL exposes the configured lease lifetime (the dispatcher
// advertises it to registering workers).
func (q *Queue) LeaseTTL() time.Duration { return q.opts.LeaseTTL }

// HeartbeatTTL exposes the configured heartbeat staleness bound.
func (q *Queue) HeartbeatTTL() time.Duration { return q.opts.HeartbeatTTL }
