package queue

import (
	"os"
	"testing"

	"pdspbench/internal/testutil"
)

// TestMain gates the package on goroutine hygiene: a worker daemon,
// heartbeat ticker or fabric test that leaves a goroutine running after
// its test returns fails the whole package.
func TestMain(m *testing.M) { os.Exit(testutil.RunMain(m)) }
